#include <algorithm>
#include <cctype>
#include <cstddef>
#include <filesystem>
#include <set>
#include <string>
#include <vector>

#include "analysis/source.hpp"
#include "analysis/suppress.hpp"
#include "qopt_perf/perf.hpp"

namespace qopt::perf {

namespace {

constexpr const char* kTool = "qopt-perf";

using analysis::allowed;
using analysis::Annotations;
using analysis::is_ident_char;
using analysis::line_of_offset;
using analysis::match_angle_brackets;
using analysis::read_identifier;
using analysis::split_lines;
using analysis::strip_comments_and_literals;

// ------------------------------------------------------- token utilities

/// True when [pos, pos+len) is a whole identifier token (word-bounded).
bool token_at(const std::string& text, std::size_t pos, std::size_t len) {
  if (pos > 0 && is_ident_char(text[pos - 1])) return false;
  if (pos + len < text.size() && is_ident_char(text[pos + len])) return false;
  return true;
}

std::size_t skip_ws(const std::string& text, std::size_t pos) {
  while (pos < text.size() &&
         std::isspace(static_cast<unsigned char>(text[pos]))) {
    ++pos;
  }
  return pos;
}

/// Index of the last non-whitespace char strictly before `pos`, or npos.
std::size_t prev_nonspace(const std::string& text, std::size_t pos) {
  while (pos > 0) {
    --pos;
    if (!std::isspace(static_cast<unsigned char>(text[pos]))) return pos;
  }
  return std::string::npos;
}

/// Reads the identifier ending at (and including) `end`; `start` receives
/// its first index. Empty when text[end] is not an identifier char.
std::string ident_ending_at(const std::string& text, std::size_t end,
                            std::size_t& start) {
  if (end == std::string::npos || !is_ident_char(text[end])) {
    start = end;
    return {};
  }
  start = end;
  while (start > 0 && is_ident_char(text[start - 1])) --start;
  return text.substr(start, end - start + 1);
}

/// Offset one past the ')' matching the '(' at `open`, or npos.
std::size_t match_parens(const std::string& text, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < text.size(); ++i) {
    if (text[i] == '(') {
      ++depth;
    } else if (text[i] == ')') {
      if (--depth == 0) return i + 1;
    }
  }
  return std::string::npos;
}

/// Offset of the '}' matching the '{' at `open`, or npos.
std::size_t match_braces(const std::string& text, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < text.size(); ++i) {
    if (text[i] == '{') {
      ++depth;
    } else if (text[i] == '}') {
      if (--depth == 0) return i;
    }
  }
  return std::string::npos;
}

/// Given the offset one past a parameter list's ')', skips trailing
/// qualifiers (const/noexcept[(...)]/override/final/mutable, `-> Type`, a
/// constructor init list) and returns the offset of the function body's
/// '{', or npos when the signature is a declaration (`;`) or the text is
/// not a function definition after all.
std::size_t body_open_after(const std::string& text, std::size_t pos) {
  for (;;) {
    pos = skip_ws(text, pos);
    if (pos >= text.size()) return std::string::npos;
    const char c = text[pos];
    if (c == '{') return pos;
    if (c == ';') return std::string::npos;
    if (c == '(') {  // noexcept(...)
      pos = match_parens(text, pos);
      if (pos == std::string::npos) return std::string::npos;
      continue;
    }
    if (c == ':') {
      // Constructor init list: the body '{' is the first brace at paren
      // depth 0 whose predecessor is ')' or '}' (an initializer closer);
      // a brace preceded by an identifier is a member brace-init.
      int depth = 0;
      for (std::size_t i = pos + 1; i < text.size(); ++i) {
        if (text[i] == '(') {
          ++depth;
        } else if (text[i] == ')') {
          --depth;
        } else if (text[i] == ';') {
          return std::string::npos;
        } else if (text[i] == '{' && depth == 0) {
          const std::size_t p = prev_nonspace(text, i);
          if (p != std::string::npos &&
              (text[p] == ')' || text[p] == '}')) {
            return i;
          }
          const std::size_t close = match_braces(text, i);
          if (close == std::string::npos) return std::string::npos;
          i = close;
        }
      }
      return std::string::npos;
    }
    if (c == '-' && pos + 1 < text.size() && text[pos + 1] == '>') {
      pos += 2;  // trailing return type: its tokens are skipped below
      continue;
    }
    if (c == '<') {
      pos = match_angle_brackets(text, pos);
      if (pos == std::string::npos) return std::string::npos;
      continue;
    }
    if (c == '&' || c == '*') {
      ++pos;
      continue;
    }
    if (is_ident_char(c)) {
      while (pos < text.size() && is_ident_char(text[pos])) ++pos;
      continue;
    }
    return std::string::npos;
  }
}

struct BodyRange {
  std::size_t open = 0;   // offset of '{'
  std::size_t close = 0;  // offset of '}'
};

/// Every '{...}' block that looks like executable code: the '{' follows a
/// ')' (function bodies, and harmlessly also if/for/while blocks — those
/// nest inside a function body, and callers take the *outermost* enclosing
/// range), possibly with trailing qualifiers or a `-> Type` between.
std::vector<BodyRange> body_ranges(const std::string& text) {
  std::vector<BodyRange> out;
  for (std::size_t i = 0; i < text.size(); ++i) {
    if (text[i] != '{') continue;
    bool opener = false;
    std::size_t p = prev_nonspace(text, i);
    for (int guard = 0; p != std::string::npos && guard < 8; ++guard) {
      const char c = text[p];
      if (c == ')') {
        opener = true;
        break;
      }
      if (is_ident_char(c)) {
        std::size_t start = p;
        const std::string tok = ident_ending_at(text, p, start);
        if (tok == "const" || tok == "noexcept" || tok == "override" ||
            tok == "final" || tok == "mutable" || tok == "try") {
          p = prev_nonspace(text, start);
          continue;
        }
        // A trailing return type's identifier: `... ) -> Time {`.
        const std::size_t q = prev_nonspace(text, start);
        if (q != std::string::npos && q > 0 && text[q] == '>' &&
            text[q - 1] == '-') {
          p = prev_nonspace(text, q - 1);
          continue;
        }
        if (q != std::string::npos && q > 0 && text[q] == ':' &&
            text[q - 1] == ':') {
          p = q >= 2 ? prev_nonspace(text, q - 1) : std::string::npos;
          continue;
        }
        break;
      }
      break;
    }
    if (!opener) continue;
    const std::size_t close = match_braces(text, i);
    if (close == std::string::npos) continue;
    out.push_back({i, close});
  }
  return out;
}

/// The outermost recorded body containing `offset`, or nullptr.
const BodyRange* enclosing_body(const std::vector<BodyRange>& bodies,
                                std::size_t offset) {
  const BodyRange* best = nullptr;
  for (const BodyRange& b : bodies) {
    if (b.open <= offset && offset <= b.close) {
      if (best == nullptr || b.open < best->open) best = &b;
    }
  }
  return best;
}

bool inside_any_body(const std::vector<BodyRange>& bodies,
                     std::size_t offset) {
  return enclosing_body(bodies, offset) != nullptr;
}

/// True when the line holding `pos` is a preprocessor directive (so a
/// token inside `#include <regex>` is not a use of std::regex).
bool on_directive_line(const std::string& text, std::size_t pos) {
  std::size_t start = text.rfind('\n', pos);
  start = start == std::string::npos ? 0 : start + 1;
  start = skip_ws(text, start);
  return start < text.size() && text[start] == '#';
}

/// True when the token at `pos` is qualified by exactly `std::`.
bool std_qualified(const std::string& text, std::size_t pos) {
  std::size_t q = prev_nonspace(text, pos);
  if (q == std::string::npos || q == 0 || text[q] != ':' ||
      text[q - 1] != ':') {
    return false;
  }
  q = q >= 2 ? prev_nonspace(text, q - 1) : std::string::npos;
  std::size_t start = 0;
  return ident_ending_at(text, q, start) == "std";
}

// ------------------------------------------------------------- the rules

struct Context {
  const std::string& path;
  const std::string& stripped;
  const std::string& header_stripped;
  const std::vector<bool>& hot;  // 1-based line mask
  const std::vector<BodyRange>& bodies;
  const Annotations& ann;
  const Options& options;
  std::vector<Finding>& findings;

  bool hot_line(std::size_t lineno) const {
    return lineno < hot.size() && hot[lineno];
  }
  void add(std::size_t lineno, const std::string& rule,
           const std::string& message) const {
    if (options.disabled_rules.count(rule) > 0) return;
    if (allowed(ann, lineno, rule)) return;
    findings.push_back({path, lineno, rule, message});
  }
};

/// Calls `fn(offset)` for every word-bounded occurrence of `token`.
template <typename Fn>
void for_each_token(const std::string& text, const std::string& token,
                    Fn&& fn) {
  std::size_t pos = 0;
  while ((pos = text.find(token, pos)) != std::string::npos) {
    if (token_at(text, pos, token.size())) fn(pos);
    pos += token.size();
  }
}

void check_heap_alloc(const Context& ctx) {
  const std::string& text = ctx.stripped;
  const auto flag = [&](std::size_t offset, const std::string& message) {
    const std::size_t lineno = line_of_offset(text, offset);
    if (ctx.hot_line(lineno)) ctx.add(lineno, "heap-alloc-hot", message);
  };

  for_each_token(text, "new", [&](std::size_t pos) {
    // `operator new` declarations (the alloc-gate hook) are not call sites.
    std::size_t start = 0;
    const std::size_t q = prev_nonspace(text, pos);
    if (ident_ending_at(text, q, start) == "operator") return;
    flag(pos,
         "`new` on a hot path: every simulated event pays this allocation; "
         "use an arena, a pool, or a preallocated slot");
  });
  for_each_token(text, "make_unique", [&](std::size_t pos) {
    flag(pos, "`make_unique` allocates on a hot path; preallocate or pool");
  });
  for_each_token(text, "make_shared", [&](std::size_t pos) {
    flag(pos,
         "`make_shared` allocates (and refcounts) on a hot path; "
         "preallocate or pool");
  });
  for_each_token(text, "function", [&](std::size_t pos) {
    if (!std_qualified(text, pos)) return;
    flag(pos,
         "`std::function` on a hot path: construction/assignment "
         "heap-allocates for non-trivial captures; use a flat event record "
         "or a template parameter");
  });
  for_each_token(text, "to_string", [&](std::size_t pos) {
    if (!std_qualified(text, pos)) return;
    flag(pos,
         "`std::to_string` allocates a string per call on a hot path; "
         "format into a reused buffer or defer to report time");
  });

  // String concatenation with a literal operand: `+ "..."`, `"..." +`,
  // `+= "..."`. Literal bodies are blanked but the quotes survive, so the
  // patterns are visible in the stripped text.
  const std::vector<std::string> lines = split_lines(text);
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const std::size_t lineno = i + 1;
    if (!ctx.hot_line(lineno)) continue;
    const std::string& line = lines[i];
    if (line.find("+ \"") != std::string::npos ||
        line.find("\" +") != std::string::npos ||
        line.find("+= \"") != std::string::npos) {
      ctx.add(lineno, "heap-alloc-hot",
              "string concatenation on a hot path allocates; build "
              "human-readable text at report time, not per event");
    }
  }
}

/// Names declared with an ordered node-container type — variables, data
/// members, and functions returning (references to) them.
void collect_node_container_names(const std::string& stripped,
                                  std::set<std::string>& names) {
  for (const char* token : {"map", "set", "multimap", "multiset"}) {
    for_each_token(stripped, token, [&](std::size_t pos) {
      std::size_t after = skip_ws(stripped, pos + std::string(token).size());
      if (after >= stripped.size() || stripped[after] != '<') return;
      const std::size_t close = match_angle_brackets(stripped, after);
      if (close == std::string::npos) return;
      std::size_t cursor = close;
      const std::string name = read_identifier(stripped, cursor);
      if (!name.empty()) names.insert(name);
    });
  }
}

void check_map_churn(const Context& ctx) {
  const std::string& text = ctx.stripped;
  static const std::set<std::string> kChurnOps = {
      "insert", "emplace", "try_emplace", "erase", "clear",
      "insert_or_assign"};

  std::set<std::string> names;
  collect_node_container_names(text, names);
  collect_node_container_names(ctx.header_stripped, names);

  for (const std::string& name : names) {
    for_each_token(text, name, [&](std::size_t pos) {
      const std::size_t lineno = line_of_offset(text, pos);
      if (!ctx.hot_line(lineno)) return;
      std::size_t after = skip_ws(text, pos + name.size());
      if (after >= text.size()) return;
      if (text[after] == '[') {
        ctx.add(lineno, "map-churn-hot",
                "operator[] on node container `" + name +
                    "` in a hot region: a miss allocates a node per event; "
                    "use find() or a flat/intrusive structure");
        return;
      }
      if (text[after] != '.') return;
      std::size_t cursor = after + 1;
      const std::string member = analysis::read_identifier(text, cursor);
      if (kChurnOps.count(member) > 0) {
        ctx.add(lineno, "map-churn-hot",
                "`" + name + "." + member +
                    "` in a hot region: node-container churn allocates per "
                    "event; use a flat/intrusive structure or hoist the "
                    "container out of the per-event path");
      }
    });
  }

  // A std::map/std::set constructed inside a hot function body is churn by
  // construction (one node allocation per element, every event).
  for (const char* token : {"map", "set", "multimap", "multiset"}) {
    for_each_token(text, token, [&](std::size_t pos) {
      const std::size_t lineno = line_of_offset(text, pos);
      if (!ctx.hot_line(lineno)) return;
      if (!inside_any_body(ctx.bodies, pos)) return;
      std::size_t after = skip_ws(text, pos + std::string(token).size());
      if (after >= text.size() || text[after] != '<') return;
      const std::size_t close = match_angle_brackets(text, after);
      if (close == std::string::npos) return;
      const std::size_t next = skip_ws(text, close);
      // Only a declaration of a by-value local: references, pointers, and
      // nested-type uses (`::iterator`) do not construct a container.
      if (next >= text.size() || !is_ident_char(text[next]) ||
          std::isdigit(static_cast<unsigned char>(text[next]))) {
        return;
      }
      ctx.add(lineno, "map-churn-hot",
              "node container constructed inside a hot function: one "
              "allocation per inserted element, every event; reuse a "
              "member scratch structure instead");
    });
  }
}

void check_vector_growth(const Context& ctx) {
  const std::string& text = ctx.stripped;
  for (const char* token : {"push_back", "emplace_back"}) {
    for_each_token(text, token, [&](std::size_t pos) {
      const std::size_t lineno = line_of_offset(text, pos);
      if (!ctx.hot_line(lineno)) return;
      const std::size_t q = prev_nonspace(text, pos);
      const bool member_call =
          q != std::string::npos &&
          (text[q] == '.' || (text[q] == '>' && q > 0 && text[q - 1] == '-'));
      if (!member_call) return;
      const BodyRange* body = enclosing_body(ctx.bodies, pos);
      if (body == nullptr) return;
      const std::string scope =
          text.substr(body->open, body->close - body->open + 1);
      bool reserved = false;
      for_each_token(scope, "reserve", [&](std::size_t) { reserved = true; });
      if (reserved) return;
      ctx.add(lineno, "vector-growth-hot",
              std::string("`") + token +
                  "` in a hot function with no `reserve` in scope: growth "
                  "reallocates and copies per event; reserve the known "
                  "bound first");
    });
  }
}

void check_byval_message(const Context& ctx,
                         const std::vector<std::string>& message_types) {
  const std::string& text = ctx.stripped;
  for (const std::string& type : message_types) {
    for_each_token(text, type, [&](std::size_t pos) {
      // Following token must be a parameter name (possibly east-const).
      std::size_t after = skip_ws(text, pos + type.size());
      if (after >= text.size() || !is_ident_char(text[after]) ||
          std::isdigit(static_cast<unsigned char>(text[after]))) {
        return;
      }
      std::size_t cursor = after;
      std::string name;
      while (cursor < text.size() && is_ident_char(text[cursor])) {
        name += text[cursor++];
      }
      if (name == "const") {
        const std::size_t next = skip_ws(text, cursor);
        if (next < text.size() && (text[next] == '&' || text[next] == '*')) {
          return;  // east-const reference/pointer
        }
      }
      // Preceding context must be a parameter list: '(' or ',' (skipping
      // back over `ns::` qualifiers and a `const`).
      std::size_t q = prev_nonspace(text, pos);
      while (q != std::string::npos && q > 0 && text[q] == ':' &&
             text[q - 1] == ':') {
        std::size_t start = 0;
        const std::size_t before =
            q >= 2 ? prev_nonspace(text, q - 1) : std::string::npos;
        if (ident_ending_at(text, before, start).empty()) return;
        q = start > 0 ? prev_nonspace(text, start) : std::string::npos;
      }
      if (q != std::string::npos && is_ident_char(text[q])) {
        std::size_t start = 0;
        if (ident_ending_at(text, q, start) != "const") return;
        q = start > 0 ? prev_nonspace(text, start) : std::string::npos;
      }
      if (q == std::string::npos || (text[q] != '(' && text[q] != ',')) {
        return;
      }
      const std::size_t lineno = line_of_offset(text, pos);
      ctx.add(lineno, "byval-message",
              "wire message `" + type +
                  "` passed by value: payload bytes are copied on every "
                  "hop; take `const " +
                  type + "&`");
    });
  }
}

void check_regex(const Context& ctx) {
  const std::string& text = ctx.stripped;
  for (const char* token :
       {"regex", "wregex", "regex_match", "regex_search", "regex_replace",
        "sregex_iterator", "smatch"}) {
    for_each_token(text, token, [&](std::size_t pos) {
      const std::size_t lineno = line_of_offset(text, pos);
      if (!ctx.hot_line(lineno)) return;
      if (on_directive_line(text, pos)) return;
      ctx.add(lineno, "regex-hot",
              "std::regex machinery in a hot region: compilation and "
              "matching allocate heavily; match tokens by hand or move "
              "the work off the per-event path");
    });
  }
}

void check_throw(const Context& ctx) {
  const std::string& text = ctx.stripped;
  for_each_token(text, "throw", [&](std::size_t pos) {
    const std::size_t lineno = line_of_offset(text, pos);
    if (!ctx.hot_line(lineno)) return;
    ctx.add(lineno, "throw-hot",
            "`throw` in a hot region: exception dispatch allocates and "
            "breaks branch prediction; signal per-event outcomes with "
            "return values");
  });
}

std::string companion_header_source(const std::string& path) {
  namespace fs = std::filesystem;
  const fs::path p(path);
  const std::string ext = p.extension().string();
  if (ext != ".cpp" && ext != ".cc") return {};
  for (const char* header_ext : {".hpp", ".h"}) {
    fs::path header = p;
    header.replace_extension(header_ext);
    std::string header_source;
    if (analysis::read_file(header.string(), header_source)) {
      return header_source;
    }
  }
  return {};
}

}  // namespace

const std::vector<std::string>& rule_names() {
  static const std::vector<std::string> kRules = {
      "heap-alloc-hot", "map-churn-hot", "vector-growth-hot",
      "byval-message",  "regex-hot",     "throw-hot"};
  return kRules;
}

std::vector<bool> hot_lines(const std::string& rel_path,
                            const std::string& stripped,
                            const Manifest& manifest) {
  const std::size_t nlines =
      static_cast<std::size_t>(
          std::count(stripped.begin(), stripped.end(), '\n')) +
      1;
  std::vector<bool> hot(nlines + 1, false);
  for (const HotRegion& region : manifest.regions) {
    if (region.path.empty() || !rel_path.starts_with(region.path)) continue;
    if (region.functions.empty()) {
      std::fill(hot.begin() + 1, hot.end(), true);
      continue;
    }
    for (const std::string& fn : region.functions) {
      for_each_token(stripped, fn, [&](std::size_t pos) {
        std::size_t after = skip_ws(stripped, pos + fn.size());
        if (after >= stripped.size() || stripped[after] != '(') return;
        const std::size_t params = match_parens(stripped, after);
        if (params == std::string::npos) return;
        const std::size_t open = body_open_after(stripped, params);
        if (open == std::string::npos) return;
        const std::size_t close = match_braces(stripped, open);
        if (close == std::string::npos) return;
        const std::size_t first = line_of_offset(stripped, pos);
        const std::size_t last = line_of_offset(stripped, close);
        for (std::size_t l = first; l <= last && l < hot.size(); ++l) {
          hot[l] = true;
        }
      });
    }
  }
  return hot;
}

std::vector<Finding> analyze_source(const std::string& rel_path,
                                    const std::string& source,
                                    const std::string& header_source,
                                    const Manifest& manifest,
                                    const Options& options) {
  std::vector<Finding> findings;
  const std::vector<std::string> raw_lines = split_lines(source);
  const Annotations ann =
      analysis::scan_annotations(kTool, rel_path, raw_lines);
  findings.insert(findings.end(), ann.findings.begin(), ann.findings.end());

  const std::string stripped = strip_comments_and_literals(source);
  const std::string header_stripped =
      header_source.empty() ? std::string{}
                            : strip_comments_and_literals(header_source);
  const std::vector<bool> hot = hot_lines(rel_path, stripped, manifest);
  const std::vector<BodyRange> bodies = body_ranges(stripped);

  const Context ctx{rel_path, stripped, header_stripped, hot,
                    bodies,   ann,      options,          findings};
  check_heap_alloc(ctx);
  check_map_churn(ctx);
  check_vector_growth(ctx);
  check_byval_message(ctx, manifest.message_types);
  check_regex(ctx);
  check_throw(ctx);

  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.line != b.line) return a.line < b.line;
              return a.rule < b.rule;
            });
  return findings;
}

std::vector<Finding> analyze_file(const std::string& root,
                                  const std::string& rel_path,
                                  const Manifest& manifest,
                                  const Options& options) {
  const std::string full =
      root.empty() ? rel_path : root + "/" + rel_path;
  std::string source;
  if (!analysis::read_file(full, source)) {
    return {{rel_path, 0, "io", "cannot read file"}};
  }
  return analyze_source(rel_path, source, companion_header_source(full),
                        manifest, options);
}

std::vector<analysis::Suppression> file_suppressions(const std::string& path) {
  std::string source;
  if (!analysis::read_file(path, source)) return {};
  return analysis::scan_annotations(kTool, path, split_lines(source))
      .suppressions;
}

std::string format_finding(const Finding& finding) {
  return analysis::format_finding(finding);
}

}  // namespace qopt::perf
