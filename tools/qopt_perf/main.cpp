// qopt_perf CLI — see perf.hpp for the rule set.
//
// Usage:
//   qopt_perf --manifest docs/HOT_PATHS.toml [--root <dir>]
//             [--baseline <file>] [--update-baseline]
//             [--suppressions] [--list-rules] <dir-or-file>...
//
// Scans the given directories (relative to --root, default ".") against the
// hot-path manifest and prints one finding per line. Findings are reported
// with repo-relative paths so the output (and the committed baseline) is
// machine-independent.
//
// Without --baseline the tool behaves like qopt_lint: exit 1 on any
// finding. With --baseline it is a ratchet gate: per-rule counts are
// compared against the committed file, only a count *rising* fails, and
// the individual findings are printed only for regressed rules (the known
// backlog stays quiet). --update-baseline rewrites the baseline from the
// current scan — counts may only go down; an attempt to raise one fails.
// Exit status: 0 when clean/within baseline, 1 on findings or ratchet
// regression, 2 on usage error.
#include <cstdio>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "analysis/suppress.hpp"
#include "qopt_perf/perf.hpp"

namespace {

constexpr const char* kUsage =
    "usage: qopt_perf --manifest <file> [--root <dir>]\n"
    "                 [--baseline <file>] [--update-baseline]\n"
    "                 [--suppressions] [--list-rules] <dir-or-file>...\n";

bool write_text(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << text;
  return static_cast<bool>(out);
}

/// `path` relative to `root` (both as given on the command line); returns
/// `path` unchanged when it does not live under `root`.
std::string relative_to(const std::string& root, const std::string& path) {
  if (root.empty() || root == ".") return path;
  std::string prefix = root;
  if (!prefix.ends_with('/')) prefix += '/';
  if (path.starts_with(prefix)) return path.substr(prefix.size());
  return path;
}

}  // namespace

int main(int argc, char** argv) {
  std::string manifest_path;
  std::string baseline_path;
  std::string root = ".";
  bool update_baseline = false;
  bool show_suppressions = false;
  std::vector<std::string> paths;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* flag) -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "qopt-perf: %s needs a value\n%s", flag, kUsage);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--manifest") {
      manifest_path = next("--manifest");
    } else if (arg == "--root") {
      root = next("--root");
    } else if (arg == "--baseline") {
      baseline_path = next("--baseline");
    } else if (arg == "--update-baseline") {
      update_baseline = true;
    } else if (arg == "--suppressions") {
      show_suppressions = true;
    } else if (arg == "--list-rules") {
      std::printf(
          "heap-alloc-hot     new/make_unique/make_shared/std::function/"
          "std::to_string/\n"
          "                   string concatenation inside a hot region\n"
          "map-churn-hot      std::map/std::set operator[]/insert/erase on "
          "a per-event path\n"
          "vector-growth-hot  push_back/emplace_back in a hot function "
          "with no reserve in scope\n"
          "byval-message      wire message type passed by value "
          "(tree-wide)\n"
          "regex-hot          std::regex machinery in a hot region\n"
          "throw-hot          throw in a hot region\n"
          "bare-allow         allow() suppression without a justification\n");
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      std::printf("%s", kUsage);
      return 0;
    } else {
      paths.push_back(arg);
    }
  }
  if (manifest_path.empty() || paths.empty() ||
      (update_baseline && baseline_path.empty())) {
    std::fprintf(stderr, "%s", kUsage);
    return 2;
  }

  const qopt::perf::Manifest manifest =
      qopt::perf::load_manifest(manifest_path);
  std::vector<qopt::perf::Finding> findings = manifest.errors;

  const std::vector<std::string> files =
      qopt::analysis::collect_sources(paths);
  std::vector<qopt::analysis::Suppression> suppressions;
  for (const std::string& file : files) {
    const std::string rel = relative_to(root, file);
    const auto file_findings =
        qopt::perf::analyze_file(root, rel, manifest);
    findings.insert(findings.end(), file_findings.begin(),
                    file_findings.end());
    if (show_suppressions) {
      for (qopt::analysis::Suppression s :
           qopt::perf::file_suppressions(file)) {
        s.file = rel;
        suppressions.push_back(std::move(s));
      }
    }
  }

  const std::map<std::string, int> counts =
      qopt::perf::count_by_rule(findings);

  if (update_baseline) {
    // The ratchet only turns one way: refuse to raise any committed count.
    const qopt::perf::Baseline existing =
        qopt::perf::load_baseline(baseline_path);
    if (existing.errors.empty()) {
      bool raised = false;
      for (const auto& [rule, count] : counts) {
        if (!qopt::perf::baselinable(rule)) continue;
        const auto it = existing.counts.find(rule);
        const int allowed = it == existing.counts.end() ? 0 : it->second;
        if (count > allowed) {
          std::fprintf(stderr,
                       "qopt-perf: refusing to raise baseline for %s "
                       "(%d -> %d); fix or suppress the new violations\n",
                       rule.c_str(), allowed, count);
          raised = true;
        }
      }
      if (raised) return 1;
    }
    if (!write_text(baseline_path, qopt::perf::format_baseline(counts))) {
      std::fprintf(stderr, "qopt-perf: cannot write %s\n",
                   baseline_path.c_str());
      return 2;
    }
    for (const auto& [rule, count] : counts) {
      std::printf("%s %d\n", rule.c_str(), count);
    }
    std::fprintf(stderr, "qopt-perf: baseline %s updated (%zu file(s) "
                 "scanned)\n",
                 baseline_path.c_str(), files.size());
    return 0;
  }

  if (show_suppressions) {
    for (const qopt::analysis::Suppression& s : suppressions) {
      std::printf("%s\n", qopt::analysis::format_suppression(s).c_str());
    }
  }

  if (baseline_path.empty()) {
    for (const qopt::perf::Finding& finding : findings) {
      std::printf("%s\n", qopt::perf::format_finding(finding).c_str());
    }
    if (!findings.empty()) {
      std::fprintf(stderr,
                   "qopt-perf: %zu finding(s) in %zu file(s) scanned\n",
                   findings.size(), files.size());
      return 1;
    }
    return 0;
  }

  const qopt::perf::Baseline baseline =
      qopt::perf::load_baseline(baseline_path);
  for (const qopt::perf::Finding& e : baseline.errors) {
    std::printf("%s\n", qopt::perf::format_finding(e).c_str());
  }
  const std::vector<std::string> failures =
      qopt::perf::ratchet_failures(counts, baseline);
  if (!failures.empty() || !baseline.errors.empty()) {
    // Print the individual findings only for regressed rules, so the known
    // backlog does not drown the new violation.
    std::map<std::string, int> regressed;
    for (const auto& [rule, count] : counts) {
      const auto it = baseline.counts.find(rule);
      const int allowed =
          qopt::perf::baselinable(rule) && it != baseline.counts.end()
              ? it->second
              : 0;
      if (count > allowed) regressed[rule] = count;
    }
    for (const qopt::perf::Finding& finding : findings) {
      if (regressed.count(finding.rule) > 0) {
        std::printf("%s\n", qopt::perf::format_finding(finding).c_str());
      }
    }
    for (const std::string& failure : failures) {
      std::fprintf(stderr, "qopt-perf: %s\n", failure.c_str());
    }
    std::fprintf(stderr, "qopt-perf: ratchet gate FAILED (%zu file(s) "
                 "scanned)\n",
                 files.size());
    return 1;
  }
  for (const std::string& note :
       qopt::perf::ratchet_improvements(counts, baseline)) {
    std::fprintf(stderr, "qopt-perf: note: %s\n", note.c_str());
  }
  std::fprintf(stderr,
               "qopt-perf: ratchet gate ok (%zu file(s) scanned)\n",
               files.size());
  return 0;
}
