// qopt-perf — hot-path performance linter.
//
// A token-level source scanner (no LLVM dependency, shared tools/analysis
// framework) that keeps the per-event code paths named in
// docs/HOT_PATHS.toml free of avoidable allocation and copying while the
// ROADMAP item-1 engine-speed work lands over several PRs:
//
//   heap-alloc-hot    `new`, `make_unique`, `make_shared`, `std::function`
//                     construction/storage, `std::to_string`, and string
//                     concatenation inside a hot region: each is a heap
//                     allocation multiplied by millions of events.
//   map-churn-hot     `std::map`/`std::set` operator[]/insert/emplace/erase
//                     on a per-event path, or a node container constructed
//                     inside a hot function body: node-based containers
//                     allocate per element.
//   vector-growth-hot `push_back`/`emplace_back` in a hot function whose
//                     body never calls `reserve`: growth reallocates and
//                     copies on a per-event path.
//   byval-message     a wire-protocol message type (manifest `[messages]`
//                     list) taken by value in a parameter list — checked
//                     tree-wide, not just in hot regions: copying payload
//                     bytes on every hop is never right.
//   regex-hot         `std::regex` machinery in a hot region.
//   throw-hot         `throw` in a hot region: exceptional control flow is
//                     for errors, not per-event signalling.
//   bare-allow        a `// qopt-perf: allow(<rule>)` suppression without a
//                     justification (shared grammar).
//
// Suppression: `// qopt-perf: allow(<rule>) <justification>` disables
// <rule> on its own line and the next line.
//
// Because the tree cannot go violation-free in one PR, enforcement is a
// ratchet: tools/qopt_perf/baseline.txt records the per-rule finding
// counts, the qopt_perf_tree ctest fails when any count rises above it,
// and `--update-baseline` rewrites the file when counts drop. The
// `manifest`, `io`, and `bare-allow` rules are never baselinable: those
// must stay at zero.
#pragma once

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "analysis/source.hpp"
#include "analysis/suppress.hpp"

namespace qopt::perf {

using Finding = qopt::analysis::Finding;

// ------------------------------------------------------------- manifest

/// One hot region from docs/HOT_PATHS.toml.
struct HotRegion {
  std::string name;
  /// Repo-relative path prefix; a file belongs to the region when its
  /// relative path starts with this prefix.
  std::string path;
  /// When non-empty, only the bodies of these functions are hot; when
  /// empty the whole file is.
  std::vector<std::string> functions;
};

struct Manifest {
  std::string path;
  std::vector<HotRegion> regions;
  /// Wire message types for the byval-message rule.
  std::vector<std::string> message_types;
  std::vector<Finding> errors;  // rule "manifest"
};

/// Parses the TOML subset used by docs/HOT_PATHS.toml: `[regions.<name>]`
/// sections with `path = "..."` and `functions = ["...", ...]`, plus a
/// `[messages]` section with `types = [...]`. Errors land in `errors`.
Manifest parse_manifest(const std::string& path, const std::string& text);

/// Reads and parses a manifest file; a read failure is a `manifest` error.
Manifest load_manifest(const std::string& path);

// ---------------------------------------------------------------- rules

/// The perf rules in report order (excludes the shared `bare-allow`).
const std::vector<std::string>& rule_names();

struct Options {
  /// Rules to skip — the delete-one-rule negative test proves each rule is
  /// load-bearing by disabling it and watching its fixture go clean.
  std::set<std::string> disabled_rules;
};

/// 1-based hot-line mask for `stripped` (index 0 unused): the union of
/// every manifest region matching `rel_path`.
std::vector<bool> hot_lines(const std::string& rel_path,
                            const std::string& stripped,
                            const Manifest& manifest);

/// Analyzes an in-memory buffer. `rel_path` is the repo-relative path used
/// for region matching and reporting; `header_source` is the optional
/// companion header, scanned for container declarations only.
std::vector<Finding> analyze_source(const std::string& rel_path,
                                    const std::string& source,
                                    const std::string& header_source,
                                    const Manifest& manifest,
                                    const Options& options = {});

/// Reads and analyzes `root`/`rel_path` (companion header auto-loaded); a
/// read failure is an `io` finding.
std::vector<Finding> analyze_file(const std::string& root,
                                  const std::string& rel_path,
                                  const Manifest& manifest,
                                  const Options& options = {});

/// Justified suppressions found in a file (tool tag "qopt-perf").
std::vector<analysis::Suppression> file_suppressions(const std::string& path);

// -------------------------------------------------------------- ratchet

struct Baseline {
  std::map<std::string, int> counts;  // rule -> allowed count
  std::vector<Finding> errors;        // rule "baseline"
};

/// Parses `rule count` lines (# comments and blank lines skipped).
Baseline parse_baseline(const std::string& path, const std::string& text);
Baseline load_baseline(const std::string& path);

/// Serializes counts back to the committed file shape (sorted by rule,
/// zero-count and unbaselinable rules omitted).
std::string format_baseline(const std::map<std::string, int>& counts);

std::map<std::string, int> count_by_rule(const std::vector<Finding>& findings);

/// True for rules that may appear in a baseline (manifest/io/bare-allow
/// must always be zero).
bool baselinable(const std::string& rule);

/// Human-readable ratchet regressions: any rule whose count exceeds the
/// baseline (missing entries count as 0), plus any unbaselinable rule with
/// a nonzero count. Empty result = the gate passes.
std::vector<std::string> ratchet_failures(
    const std::map<std::string, int>& counts, const Baseline& baseline);

/// Rules whose count dropped below the baseline — candidates for
/// `--update-baseline`.
std::vector<std::string> ratchet_improvements(
    const std::map<std::string, int>& counts, const Baseline& baseline);

/// One "file:line: [rule] message" diagnostic line.
std::string format_finding(const Finding& finding);

}  // namespace qopt::perf
