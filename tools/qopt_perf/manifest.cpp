#include <cctype>
#include <string>
#include <vector>

#include "analysis/source.hpp"
#include "qopt_perf/perf.hpp"

namespace qopt::perf {

namespace {

std::string trimmed(const std::string& s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string without_comment(const std::string& line) {
  // `#` starts a comment anywhere outside a quoted string.
  bool in_string = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    if (line[i] == '"') in_string = !in_string;
    if (line[i] == '#' && !in_string) return line.substr(0, i);
  }
  return line;
}

/// Extracts the double-quoted strings from an array body fragment,
/// reporting anything that is not a string, comma, or whitespace.
void parse_array_items(const std::string& path, std::size_t lineno,
                       const std::string& fragment,
                       std::vector<std::string>& out,
                       std::vector<Finding>& errors) {
  std::size_t i = 0;
  while (i < fragment.size()) {
    const char c = fragment[i];
    if (std::isspace(static_cast<unsigned char>(c)) || c == ',') {
      ++i;
      continue;
    }
    if (c == '"') {
      const std::size_t close = fragment.find('"', i + 1);
      if (close == std::string::npos) {
        errors.push_back(
            {path, lineno, "manifest", "unterminated string in array"});
        return;
      }
      out.push_back(fragment.substr(i + 1, close - i - 1));
      i = close + 1;
      continue;
    }
    errors.push_back({path, lineno, "manifest",
                      "expected a double-quoted string in array, got `" +
                          fragment.substr(i, 1) + "`"});
    return;
  }
}

}  // namespace

Manifest parse_manifest(const std::string& path, const std::string& text) {
  Manifest m;
  m.path = path;
  const std::vector<std::string> lines = analysis::split_lines(text);

  enum class Section { kNone, kRegion, kMessages };
  Section section = Section::kNone;
  HotRegion* region = nullptr;

  // Array state: key being filled, accumulated items, open until `]`.
  bool in_array = false;
  std::string array_key;
  std::size_t array_line = 0;
  std::vector<std::string> array_items;

  auto finish_array = [&]() {
    if (section == Section::kRegion && array_key == "functions") {
      region->functions = array_items;
    } else if (section == Section::kMessages && array_key == "types") {
      m.message_types = array_items;
    } else {
      m.errors.push_back({path, array_line, "manifest",
                          "unknown key `" + array_key + "` in this section"});
    }
    in_array = false;
    array_key.clear();
    array_items.clear();
  };

  for (std::size_t i = 0; i < lines.size(); ++i) {
    const std::size_t lineno = i + 1;
    const std::string line = trimmed(without_comment(lines[i]));
    if (line.empty()) continue;

    if (in_array) {
      const std::size_t close = line.find(']');
      parse_array_items(path, lineno, line.substr(0, close), array_items,
                        m.errors);
      if (close != std::string::npos) finish_array();
      continue;
    }

    if (line.front() == '[') {
      if (line == "[messages]") {
        section = Section::kMessages;
        region = nullptr;
      } else if (line.starts_with("[regions.") && line.back() == ']') {
        const std::string name = line.substr(9, line.size() - 10);
        if (name.empty()) {
          m.errors.push_back(
              {path, lineno, "manifest", "empty region name in section"});
          section = Section::kNone;
          region = nullptr;
        } else {
          section = Section::kRegion;
          m.regions.push_back({name, {}, {}});
          region = &m.regions.back();
        }
      } else {
        m.errors.push_back({path, lineno, "manifest",
                            "unknown section `" + line +
                                "` (expected [regions.<name>] or "
                                "[messages])"});
        section = Section::kNone;
        region = nullptr;
      }
      continue;
    }

    const std::size_t eq = line.find('=');
    if (eq == std::string::npos) {
      m.errors.push_back({path, lineno, "manifest",
                          "expected `key = ...`: `" + line + "`"});
      continue;
    }
    const std::string key = trimmed(line.substr(0, eq));
    const std::string value = trimmed(line.substr(eq + 1));

    // Scalar string value: `path = "src/..."`.
    if (!value.empty() && value.front() == '"') {
      const std::size_t close = value.find('"', 1);
      if (close == std::string::npos) {
        m.errors.push_back(
            {path, lineno, "manifest", "unterminated string for `" + key +
                                           "`"});
        continue;
      }
      if (section == Section::kRegion && key == "path") {
        region->path = value.substr(1, close - 1);
      } else {
        m.errors.push_back({path, lineno, "manifest",
                            "unknown key `" + key + "` in this section"});
      }
      continue;
    }

    if (value.empty() || value.front() != '[') {
      m.errors.push_back({path, lineno, "manifest",
                          "value of `" + key +
                              "` must be a string or an array"});
      continue;
    }
    in_array = true;
    array_key = key;
    array_line = lineno;
    const std::string body = value.substr(1);
    const std::size_t close = body.find(']');
    parse_array_items(path, lineno, body.substr(0, close), array_items,
                      m.errors);
    if (close != std::string::npos) finish_array();
  }
  if (in_array) {
    m.errors.push_back({path, array_line, "manifest",
                        "unterminated array for `" + array_key + "`"});
  }
  for (const HotRegion& r : m.regions) {
    if (r.path.empty()) {
      m.errors.push_back({path, 0, "manifest",
                          "region `" + r.name + "` has no `path` key"});
    }
  }
  return m;
}

Manifest load_manifest(const std::string& path) {
  std::string text;
  if (!analysis::read_file(path, text)) {
    Manifest m;
    m.path = path;
    m.errors.push_back({path, 0, "manifest", "cannot read manifest"});
    return m;
  }
  return parse_manifest(path, text);
}

}  // namespace qopt::perf
