#include <cctype>
#include <map>
#include <string>
#include <vector>

#include "analysis/source.hpp"
#include "qopt_perf/perf.hpp"

namespace qopt::perf {

namespace {

std::string trimmed(const std::string& s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

}  // namespace

bool baselinable(const std::string& rule) {
  return rule != "manifest" && rule != "io" && rule != "bare-allow" &&
         rule != "baseline";
}

Baseline parse_baseline(const std::string& path, const std::string& text) {
  Baseline b;
  const std::vector<std::string> lines = analysis::split_lines(text);
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const std::size_t lineno = i + 1;
    const std::string line = trimmed(lines[i]);
    if (line.empty() || line.front() == '#') continue;
    const std::size_t space = line.find(' ');
    if (space == std::string::npos) {
      b.errors.push_back(
          {path, lineno, "baseline", "expected `rule count`: `" + line + "`"});
      continue;
    }
    const std::string rule = trimmed(line.substr(0, space));
    const std::string count_text = trimmed(line.substr(space + 1));
    if (!baselinable(rule)) {
      b.errors.push_back({path, lineno, "baseline",
                          "rule `" + rule +
                              "` may not be baselined; its count must stay "
                              "at zero"});
      continue;
    }
    int count = 0;
    bool numeric = !count_text.empty();
    for (const char c : count_text) {
      if (!std::isdigit(static_cast<unsigned char>(c))) {
        numeric = false;
        break;
      }
      count = count * 10 + (c - '0');
    }
    if (!numeric) {
      b.errors.push_back({path, lineno, "baseline",
                          "count for `" + rule + "` is not a number: `" +
                              count_text + "`"});
      continue;
    }
    b.counts[rule] = count;
  }
  return b;
}

Baseline load_baseline(const std::string& path) {
  std::string text;
  if (!analysis::read_file(path, text)) {
    Baseline b;
    b.errors.push_back({path, 0, "baseline", "cannot read baseline"});
    return b;
  }
  return parse_baseline(path, text);
}

std::string format_baseline(const std::map<std::string, int>& counts) {
  std::string out =
      "# qopt_perf ratchet baseline — per-rule finding counts for the tree\n"
      "# scan. The qopt_perf_tree ctest fails when any rule's count rises\n"
      "# above its entry here (absent rules count as 0); counts may only go\n"
      "# down. Regenerate after fixing violations with:\n"
      "#   scripts/perf_report.sh --update-baseline\n";
  for (const auto& [rule, count] : counts) {
    if (count <= 0 || !baselinable(rule)) continue;
    out += rule + " " + std::to_string(count) + "\n";
  }
  return out;
}

std::map<std::string, int> count_by_rule(
    const std::vector<Finding>& findings) {
  std::map<std::string, int> counts;
  for (const Finding& f : findings) ++counts[f.rule];
  return counts;
}

std::vector<std::string> ratchet_failures(
    const std::map<std::string, int>& counts, const Baseline& baseline) {
  std::vector<std::string> out;
  for (const auto& [rule, count] : counts) {
    if (count <= 0) continue;
    if (!baselinable(rule)) {
      out.push_back("rule " + rule + ": " + std::to_string(count) +
                    " finding(s); this rule may never be baselined");
      continue;
    }
    const auto it = baseline.counts.find(rule);
    const int allowed = it == baseline.counts.end() ? 0 : it->second;
    if (count > allowed) {
      out.push_back("rule " + rule + ": " + std::to_string(count) +
                    " finding(s) exceeds the baseline of " +
                    std::to_string(allowed) +
                    "; fix the new violation or justify it with "
                    "`// qopt-perf: allow(" +
                    rule + ") <reason>`");
    }
  }
  return out;
}

std::vector<std::string> ratchet_improvements(
    const std::map<std::string, int>& counts, const Baseline& baseline) {
  std::vector<std::string> out;
  for (const auto& [rule, allowed] : baseline.counts) {
    const auto it = counts.find(rule);
    const int count = it == counts.end() ? 0 : it->second;
    if (count < allowed) {
      out.push_back("rule " + rule + ": " + std::to_string(count) +
                    " finding(s), baseline allows " + std::to_string(allowed) +
                    " — ratchet down with --update-baseline");
    }
  }
  return out;
}

}  // namespace qopt::perf
