// qopt_arch CLI — see arch.hpp for the rule set.
//
// Usage:
//   qopt_arch --manifest docs/ARCHITECTURE.toml [--root <dir>]
//             [--dot <out>] [--json <out>] [--suppressions]
//             <dir-or-file>...
//
// Scans the given directories (relative to --root, default ".") and prints
// one finding per line. --dot/--json write deterministic module-graph
// exports whether or not findings exist. --suppressions additionally prints
// every justified suppression in the unified
// `tool:rule:file:line: justification` summary shared with qopt_lint.
// Exit status: 0 when clean, 1 when findings exist, 2 on usage error.
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "analysis/suppress.hpp"
#include "qopt_arch/arch.hpp"

namespace {

constexpr const char* kUsage =
    "usage: qopt_arch --manifest <file> [--root <dir>] [--dot <out>]\n"
    "                 [--json <out>] [--suppressions] [--list-rules]\n"
    "                 <dir-or-file>...\n";

bool write_text(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << text;
  return static_cast<bool>(out);
}

}  // namespace

int main(int argc, char** argv) {
  std::string manifest_path;
  std::string root = ".";
  std::string dot_path;
  std::string json_path;
  bool show_suppressions = false;
  std::vector<std::string> paths;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* flag) -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "qopt-arch: %s needs a value\n%s", flag, kUsage);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--manifest") {
      manifest_path = next("--manifest");
    } else if (arg == "--root") {
      root = next("--root");
    } else if (arg == "--dot") {
      dot_path = next("--dot");
    } else if (arg == "--json") {
      json_path = next("--json");
    } else if (arg == "--suppressions") {
      show_suppressions = true;
    } else if (arg == "--list-rules") {
      std::printf(
          "forbidden-edge    include crosses a module edge the manifest "
          "does not allow\n"
          "include-cycle     cycle in the file-level include graph\n"
          "manifest          malformed or non-DAG layering manifest\n"
          "unknown-module    file outside every declared module\n"
          "relative-include  include path contains ./ or ../\n"
          "include-style     quoted system include or angled project "
          "include\n"
          "pragma-once       header without #pragma once\n"
          "unused-include    include whose provided symbols are never "
          "mentioned\n"
          "missing-include   symbol used but its owning header only "
          "reachable transitively\n"
          "bare-allow        allow() suppression without a justification\n");
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      std::printf("%s", kUsage);
      return 0;
    } else {
      paths.push_back(arg);
    }
  }
  if (manifest_path.empty() || paths.empty()) {
    std::fprintf(stderr, "%s", kUsage);
    return 2;
  }

  const qopt::arch::Manifest manifest =
      qopt::arch::load_manifest(manifest_path);
  const qopt::arch::Tree tree = qopt::arch::load_tree(root, paths);

  std::size_t total = 0;
  for (const qopt::arch::Finding& finding :
       qopt::arch::analyze(tree, manifest)) {
    std::printf("%s\n", qopt::analysis::format_finding(finding).c_str());
    ++total;
  }
  if (!dot_path.empty() &&
      !write_text(dot_path, qopt::arch::export_dot(tree, manifest))) {
    std::fprintf(stderr, "qopt-arch: cannot write %s\n", dot_path.c_str());
    return 2;
  }
  if (!json_path.empty() &&
      !write_text(json_path, qopt::arch::export_json(tree, manifest))) {
    std::fprintf(stderr, "qopt-arch: cannot write %s\n", json_path.c_str());
    return 2;
  }
  if (show_suppressions) {
    for (const qopt::analysis::Suppression& s :
         qopt::arch::suppressions(tree)) {
      std::printf("%s\n", qopt::analysis::format_suppression(s).c_str());
    }
  }
  if (total > 0) {
    std::fprintf(stderr, "qopt-arch: %zu finding(s) in %zu file(s) scanned\n",
                 total, tree.files.size());
    return 1;
  }
  return 0;
}
