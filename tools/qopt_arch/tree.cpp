#include <algorithm>
#include <filesystem>
#include <regex>
#include <string>
#include <vector>

#include "analysis/source.hpp"
#include "analysis/suppress.hpp"
#include "qopt_arch/arch.hpp"

namespace qopt::arch {

namespace {

std::string to_slashes(std::string s) {
  std::replace(s.begin(), s.end(), '\\', '/');
  return s;
}

/// Root-relative, '/'-separated path of `path` under `root`; empty when the
/// file is outside the root.
std::string relativize(const std::string& root, const std::string& path) {
  namespace fs = std::filesystem;
  std::error_code ec;
  const fs::path rel = fs::relative(path, root, ec);
  if (ec) return {};
  const std::string s = to_slashes(rel.generic_string());
  if (s.empty() || s == "." || s.starts_with("..")) return {};
  return s;
}

/// First path component, with the `src/` and `tools/` prefixes stripped so
/// `src/kv/...` -> "kv" and `tools/analysis/...` -> "analysis".
std::string module_of(const std::string& rel) {
  std::string r = rel;
  for (const char* prefix : {"src/", "tools/"}) {
    if (r.starts_with(prefix)) {
      r = r.substr(std::string(prefix).size());
      break;
    }
  }
  const std::size_t slash = r.find('/');
  if (slash == std::string::npos) return {};  // file directly at a root
  return r.substr(0, slash);
}

void parse_includes(SourceFile& file, const std::vector<std::string>& lines) {
  static const std::regex include_re(
      R"(^\s*#\s*include\s*(["<])([^">]+)([">]))");
  static const std::regex pragma_once_re(R"(^\s*#\s*pragma\s+once\b)");
  static const std::regex export_re(R"(qopt-arch:\s*export\b)");
  for (std::size_t i = 0; i < lines.size(); ++i) {
    std::smatch m;
    if (std::regex_search(lines[i], pragma_once_re)) {
      file.has_pragma_once = true;
    }
    if (std::regex_search(lines[i], m, include_re)) {
      Include inc;
      inc.spelled = m[2].str();
      inc.line = i + 1;
      inc.angled = m[1].str() == "<";
      inc.exported = std::regex_search(lines[i], export_re);
      file.includes.push_back(inc);
    }
  }
}

}  // namespace

Tree load_tree(const std::string& root,
               const std::vector<std::string>& dirs) {
  namespace fs = std::filesystem;
  Tree tree;
  tree.root = root;

  std::vector<std::string> roots;
  for (const std::string& dir : dirs) {
    const fs::path p(dir);
    roots.push_back(p.is_absolute() ? dir : (fs::path(root) / p).string());
  }
  for (const std::string& path : analysis::collect_sources(roots)) {
    SourceFile file;
    file.path = path;
    file.rel = relativize(root, path);
    if (file.rel.empty()) file.rel = to_slashes(path);
    file.module = module_of(file.rel);
    const std::string ext = fs::path(path).extension().string();
    file.is_header = ext == ".hpp" || ext == ".h";

    std::string source;
    if (!analysis::read_file(path, source)) {
      tree.errors.push_back({file.rel, 0, "io", "cannot read file"});
      continue;
    }
    const std::vector<std::string> lines = analysis::split_lines(source);
    parse_includes(file, lines);
    file.stripped = analysis::strip_comments_and_literals(source);
    file.ann = analysis::scan_annotations("qopt-arch", file.rel, lines);
    tree.files.push_back(std::move(file));
  }

  std::sort(tree.files.begin(), tree.files.end(),
            [](const SourceFile& a, const SourceFile& b) {
              return a.rel < b.rel;
            });
  for (std::size_t i = 0; i < tree.files.size(); ++i) {
    tree.index[tree.files[i].rel] = i;
  }

  // Resolve includes against the loaded tree: root-, src-, tools-relative.
  for (SourceFile& file : tree.files) {
    for (Include& inc : file.includes) {
      for (const std::string& candidate :
           {inc.spelled, "src/" + inc.spelled, "tools/" + inc.spelled}) {
        const auto it = tree.index.find(candidate);
        if (it != tree.index.end()) {
          inc.resolved = candidate;
          inc.module = tree.files[it->second].module;
          break;
        }
      }
    }
  }
  return tree;
}

std::vector<qopt::analysis::Suppression> suppressions(const Tree& tree) {
  std::vector<qopt::analysis::Suppression> out;
  for (const SourceFile& file : tree.files) {
    out.insert(out.end(), file.ann.suppressions.begin(),
               file.ann.suppressions.end());
  }
  return out;
}

}  // namespace qopt::arch
