#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "analysis/suppress.hpp"
#include "qopt_arch/arch.hpp"

namespace qopt::arch {

namespace {

using qopt::analysis::allowed;

void report(std::vector<Finding>& findings, const SourceFile& file,
            std::size_t line, const std::string& rule,
            const std::string& message) {
  if (!allowed(file.ann, line, rule)) {
    findings.push_back({file.rel, line, rule, message});
  }
}

// ----------------------------------------------------- manifest validity

void check_manifest(const Manifest& m, std::vector<Finding>& findings) {
  findings.insert(findings.end(), m.errors.begin(), m.errors.end());

  std::map<std::string, std::size_t> rank;
  for (std::size_t i = 0; i < m.order.size(); ++i) {
    const std::string& name = m.order[i];
    if (m.deps.find(name) == m.deps.end()) {
      findings.push_back({m.path, 0, "manifest",
                          "layers.order names undeclared module `" + name +
                              "` (no [modules." + name + "] section)"});
    }
    if (!rank.emplace(name, i).second) {
      findings.push_back({m.path, 0, "manifest",
                          "module `" + name +
                              "` appears twice in layers.order"});
    }
  }
  for (const auto& [name, deps] : m.deps) {
    const auto self = rank.find(name);
    if (self == rank.end()) {
      findings.push_back({m.path, 0, "manifest",
                          "module `" + name +
                              "` is declared but missing from layers.order"});
      continue;
    }
    for (const std::string& dep : deps) {
      if (dep == name) {
        findings.push_back({m.path, 0, "manifest",
                            "module `" + name +
                                "` lists itself as a dep (self-edges are "
                                "implicit)"});
        continue;
      }
      const auto it = rank.find(dep);
      if (it == rank.end()) {
        findings.push_back({m.path, 0, "manifest",
                            "module `" + name + "` depends on `" + dep +
                                "`, which is not in layers.order"});
      } else if (it->second >= self->second) {
        // Strictly-lower ranks make the allowed-edge relation a DAG by
        // construction; any cycle in deps necessarily trips this.
        findings.push_back({m.path, 0, "manifest",
                            "module `" + name + "` depends on `" + dep +
                                "`, which is not a lower layer — the deps "
                                "relation must follow layers.order (cycles "
                                "are impossible to order)"});
      }
    }
  }
}

// --------------------------------------------------- file-level cycles

/// DFS over resolved include edges; every distinct cycle is reported once,
/// at the include line that closes it (in the lexicographically-first file
/// on the cycle, thanks to sorted iteration).
void check_file_cycles(const Tree& tree, std::vector<Finding>& findings) {
  enum class Color { kWhite, kGray, kBlack };
  std::vector<Color> color(tree.files.size(), Color::kWhite);
  std::vector<std::size_t> stack;
  std::set<std::string> seen_cycles;

  // Recursive lambda via explicit stack of (node, next-include-index).
  std::vector<std::pair<std::size_t, std::size_t>> frames;
  for (std::size_t start = 0; start < tree.files.size(); ++start) {
    if (color[start] != Color::kWhite) continue;
    frames.push_back({start, 0});
    color[start] = Color::kGray;
    stack.push_back(start);
    while (!frames.empty()) {
      auto& [node, next] = frames.back();
      const SourceFile& file = tree.files[node];
      if (next >= file.includes.size()) {
        color[node] = Color::kBlack;
        stack.pop_back();
        frames.pop_back();
        continue;
      }
      const Include& inc = file.includes[next++];
      if (inc.resolved.empty()) continue;
      const std::size_t target = tree.index.at(inc.resolved);
      if (color[target] == Color::kGray) {
        // Back edge: stack from `target` to `node` is the cycle.
        const auto begin =
            std::find(stack.begin(), stack.end(), target);
        std::vector<std::string> names;
        for (auto it = begin; it != stack.end(); ++it) {
          names.push_back(tree.files[*it].rel);
        }
        // Canonical form: rotate so the smallest member leads, so the same
        // cycle found from different entry points is reported once.
        const auto min_it = std::min_element(names.begin(), names.end());
        std::rotate(names.begin(), min_it, names.end());
        std::string key;
        std::string pretty;
        for (const std::string& n : names) {
          key += n + ";";
          pretty += n + " -> ";
        }
        pretty += names.front();
        if (seen_cycles.insert(key).second) {
          report(findings, file, inc.line, "include-cycle",
                 "include cycle: " + pretty);
        }
      } else if (color[target] == Color::kWhite) {
        color[target] = Color::kGray;
        stack.push_back(target);
        frames.push_back({target, 0});
      }
    }
  }
}

}  // namespace

std::vector<Finding> check_layering(const Tree& tree,
                                    const Manifest& manifest) {
  std::vector<Finding> findings;
  check_manifest(manifest, findings);

  for (const SourceFile& file : tree.files) {
    const auto deps_it = manifest.deps.find(file.module);
    if (file.module.empty() || deps_it == manifest.deps.end()) {
      report(findings, file, 1, "unknown-module",
             "file belongs to module `" + file.module +
                 "`, which is not declared in " + manifest.path);
      continue;
    }
    for (const Include& inc : file.includes) {
      if (inc.resolved.empty() || inc.module == file.module) continue;
      if (deps_it->second.count(inc.module) == 0) {
        report(findings, file, inc.line, "forbidden-edge",
               "module `" + file.module + "` may not include `" +
                   inc.resolved + "` (module `" + inc.module +
                   "`): edge not allowed by " + manifest.path);
      }
    }
  }

  check_file_cycles(tree, findings);
  return findings;
}

std::vector<Finding> check_hygiene(const Tree& tree) {
  std::vector<Finding> findings;
  for (const SourceFile& file : tree.files) {
    if (file.is_header && !file.has_pragma_once) {
      report(findings, file, 1, "pragma-once",
             "header lacks `#pragma once` (the tree-wide include-guard "
             "convention)");
    }
    for (const Include& inc : file.includes) {
      if (inc.spelled.starts_with("./") || inc.spelled.find("../") !=
                                               std::string::npos) {
        report(findings, file, inc.line, "relative-include",
               "relative include `" + inc.spelled +
                   "`: spell project includes from a source root, e.g. "
                   "\"module/header.hpp\"");
        continue;
      }
      if (!inc.angled && inc.resolved.empty()) {
        report(findings, file, inc.line, "include-style",
               "quoted include `" + inc.spelled +
                   "` does not resolve to an in-repo header; system and "
                   "third-party headers use <...>, project headers are "
                   "spelled from a source root");
      } else if (inc.angled && !inc.resolved.empty()) {
        report(findings, file, inc.line, "include-style",
               "project header `" + inc.resolved +
                   "` included with <...>; use \"" + inc.spelled + "\"");
      }
    }
  }
  return findings;
}

std::vector<Finding> analyze(const Tree& tree, const Manifest& manifest) {
  std::vector<Finding> findings = tree.errors;
  for (const SourceFile& file : tree.files) {
    findings.insert(findings.end(), file.ann.findings.begin(),
                    file.ann.findings.end());
  }
  for (auto&& batch :
       {check_layering(tree, manifest), check_hygiene(tree),
        check_symbols(tree)}) {
    findings.insert(findings.end(), batch.begin(), batch.end());
  }
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              if (a.rule != b.rule) return a.rule < b.rule;
              return a.message < b.message;
            });
  return findings;
}

}  // namespace qopt::arch
