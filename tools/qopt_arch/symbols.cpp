// unused-include / missing-include: a generated symbol->header map for
// in-repo headers drives both directions of IWYU-lite.
//
// Symbol extraction is token-level and deliberately conservative: the map
// keeps type names (class/struct/union/enum), alias targets (`using X =`),
// constexpr constants, and function-ish names (identifier directly followed
// by `(` with a type-like token before it). Extraction noise — a name
// declared in several headers, or picked up from an inline call — simply
// removes the symbol from the *uniquely owned* set that missing-include
// requires, so imprecision degrades toward silence, not false findings.
#include <algorithm>
#include <cctype>
#include <map>
#include <regex>
#include <set>
#include <string>
#include <vector>

#include "analysis/source.hpp"
#include "analysis/suppress.hpp"
#include "qopt_arch/arch.hpp"

namespace qopt::arch {

namespace {

using qopt::analysis::allowed;
using qopt::analysis::is_ident_char;
using qopt::analysis::line_of_offset;

const std::set<std::string>& keyword_stoplist() {
  static const std::set<std::string> kKeywords = {
      "if",       "for",      "while",    "switch",   "return", "sizeof",
      "catch",    "new",      "delete",   "throw",    "else",   "do",
      "case",     "alignof",  "decltype", "noexcept", "assert", "defined",
      "operator", "static_assert",        "this",     "co_await"};
  return kKeywords;
}

/// Namespace qualifiers whose members are never in-repo symbols.
const std::set<std::string>& foreign_namespaces() {
  static const std::set<std::string> kForeign = {"std", "fs", "chrono",
                                                 "testing", "benchmark"};
  return kForeign;
}

std::string erase_template_params(std::string text) {
  // `template <class T, typename U>` would otherwise register T and U as
  // declared type names. One level of nesting is enough for this tree.
  static const std::regex template_re(R"(template\s*<[^<>]*>)");
  return std::regex_replace(text, template_re, " ");
}

/// First identifier of the `a::b::c` chain ending right before `pos`
/// (which points at the start of the final identifier).
std::string qualifier_root(const std::string& text, std::size_t pos) {
  std::string root;
  std::size_t cursor = pos;
  while (cursor >= 2 && text[cursor - 1] == ':' && text[cursor - 2] == ':') {
    std::size_t begin = cursor - 2;
    while (begin > 0 && is_ident_char(text[begin - 1])) --begin;
    if (begin == cursor - 2) break;  // leading `::` — global qualifier
    root = text.substr(begin, cursor - 2 - begin);
    cursor = begin;
  }
  return root;
}

/// Type-like symbol names (class/struct/union/enum, `using X =` aliases,
/// constexpr constants) in a stripped source buffer. These are the
/// high-confidence names missing-include is allowed to key on: a mention
/// of one is a real use, never a member access on some other type.
std::set<std::string> extract_type_symbols(const std::string& stripped_raw) {
  const std::string stripped = erase_template_params(stripped_raw);
  std::set<std::string> out;

  static const std::regex decl_re(
      R"(\b(?:class|struct|union|enum\s+class|enum\s+struct|enum)\s+([A-Za-z_]\w*))");
  static const std::regex using_re(R"(\busing\s+([A-Za-z_]\w*)\s*=)");
  static const std::regex constexpr_re(
      R"(\bconstexpr\b[^=;(){}<>]*[\s&*]([A-Za-z_]\w*)\s*=)");
  for (const auto* re : {&decl_re, &using_re, &constexpr_re}) {
    for (std::sregex_iterator it(stripped.begin(), stripped.end(), *re), end;
         it != end; ++it) {
      const std::string name = (*it)[1].str();
      if (name.size() > 1) out.insert(name);
    }
  }
  return out;
}

/// Declared/owned symbol names in a stripped source buffer: the type-like
/// set plus function-ish names. Used for the unused-include direction,
/// where over-extraction only makes the rule quieter (a member call like
/// `reg.counter_value(...)` counts as using the registry header).
std::set<std::string> extract_symbols(const std::string& stripped_raw) {
  const std::string stripped = erase_template_params(stripped_raw);
  std::set<std::string> out = extract_type_symbols(stripped_raw);

  // Function-ish names: identifier directly followed by '(', preceded (after
  // skipping spaces) by a type-like token ending in an identifier char, '>',
  // '&', '*' or '::'. Skips member access (`.x(`, `->x(`), keywords, and
  // anything qualified into a foreign namespace.
  for (std::size_t i = 0; i < stripped.size(); ++i) {
    if (!is_ident_char(stripped[i]) ||
        std::isdigit(static_cast<unsigned char>(stripped[i])) ||
        (i > 0 && is_ident_char(stripped[i - 1]))) {
      continue;
    }
    std::size_t end = i;
    while (end < stripped.size() && is_ident_char(stripped[end])) ++end;
    std::size_t after = end;
    while (after < stripped.size() && stripped[after] == ' ') ++after;
    if (after >= stripped.size() || stripped[after] != '(') {
      i = end;
      continue;
    }
    const std::string name = stripped.substr(i, end - i);
    std::size_t before = i;
    while (before > 0 && (stripped[before - 1] == ' ' ||
                          stripped[before - 1] == '\n')) {
      --before;
    }
    const char prev = before > 0 ? stripped[before - 1] : '\0';
    const bool arrow = prev == '>' && before >= 2 && stripped[before - 2] == '-';
    const bool typed_before =
        (is_ident_char(prev) || prev == '>' || prev == '&' || prev == '*' ||
         prev == ':') &&
        !arrow && prev != '.';
    if (!typed_before || name.size() <= 1 ||
        keyword_stoplist().count(name) > 0) {
      i = end;
      continue;
    }
    if (prev == ':') {
      const std::string root = qualifier_root(stripped, i);
      if (root.empty() || foreign_namespaces().count(root) > 0) {
        i = end;
        continue;
      }
    }
    out.insert(name);
    i = end;
  }
  return out;
}

/// Identifier mentions in a stripped buffer (every maximal token).
std::set<std::string> extract_mentions(const std::string& stripped) {
  std::set<std::string> out;
  for (const std::string& ident : analysis::identifiers_in(stripped)) {
    out.insert(ident);
  }
  return out;
}

/// True when `header` is the companion of `source` (same directory + stem).
bool is_companion(const std::string& source_rel, const std::string& header_rel) {
  const auto stem = [](const std::string& rel) {
    const std::size_t dot = rel.rfind('.');
    return dot == std::string::npos ? rel : rel.substr(0, dot);
  };
  return stem(source_rel) == stem(header_rel);
}

/// Transitive in-repo include closure of `rel` (including itself).
std::set<std::string> transitive_closure(const Tree& tree,
                                         const std::string& rel) {
  std::set<std::string> seen;
  std::vector<std::string> worklist{rel};
  while (!worklist.empty()) {
    const std::string current = worklist.back();
    worklist.pop_back();
    if (!seen.insert(current).second) continue;
    const auto it = tree.index.find(current);
    if (it == tree.index.end()) continue;
    for (const Include& inc : tree.files[it->second].includes) {
      if (!inc.resolved.empty()) worklist.push_back(inc.resolved);
    }
  }
  return seen;
}

/// Direct includes of `file`, expanded through `// qopt-arch: export`
/// edges: including an umbrella counts as including what it re-exports.
std::set<std::string> direct_includes(const Tree& tree,
                                      const SourceFile& file) {
  std::set<std::string> out;
  std::vector<std::string> exported_from;
  for (const Include& inc : file.includes) {
    if (inc.resolved.empty()) continue;
    out.insert(inc.resolved);
    exported_from.push_back(inc.resolved);
  }
  while (!exported_from.empty()) {
    const std::string rel = exported_from.back();
    exported_from.pop_back();
    const auto it = tree.index.find(rel);
    if (it == tree.index.end()) continue;
    for (const Include& inc : tree.files[it->second].includes) {
      if (inc.exported && !inc.resolved.empty() &&
          out.insert(inc.resolved).second) {
        exported_from.push_back(inc.resolved);
      }
    }
  }
  return out;
}

}  // namespace

std::vector<Finding> check_symbols(const Tree& tree) {
  std::vector<Finding> findings;

  // Symbol ownership across all in-repo headers. unused-include keys on the
  // broad set (types + function-ish names); missing-include keys only on the
  // type-like set, where a mention is unambiguous.
  std::map<std::string, std::set<std::string>> owned;  // header rel -> syms
  std::map<std::string, std::vector<std::string>> owners;  // type sym -> hdrs
  for (const SourceFile& file : tree.files) {
    if (!file.is_header) continue;
    owned[file.rel] = extract_symbols(file.stripped);
    for (const std::string& sym : extract_type_symbols(file.stripped)) {
      owners[sym].push_back(file.rel);
    }
  }

  for (const SourceFile& file : tree.files) {
    const std::set<std::string> mentions = extract_mentions(file.stripped);
    const std::set<std::string> declared = extract_symbols(file.stripped);
    const std::set<std::string> direct = direct_includes(tree, file);
    const std::set<std::string> reachable = transitive_closure(tree, file.rel);

    // unused-include: nothing from the include's whole transitive provide
    // set is mentioned.
    for (const Include& inc : file.includes) {
      if (inc.resolved.empty()) continue;
      if (inc.exported) continue;  // umbrella re-export: unused by design
      if (!file.is_header && is_companion(file.rel, inc.resolved)) continue;
      bool used = false;
      for (const std::string& provider :
           transitive_closure(tree, inc.resolved)) {
        const auto it = owned.find(provider);
        if (it == owned.end()) continue;
        for (const std::string& sym : it->second) {
          if (mentions.count(sym) > 0) {
            used = true;
            break;
          }
        }
        if (used) break;
      }
      if (!used && !allowed(file.ann, inc.line, "unused-include")) {
        findings.push_back(
            {file.rel, inc.line, "unused-include",
             "includes `" + inc.resolved +
                 "` but mentions nothing it (or anything it includes) "
                 "declares; drop the include or mark it "
                 "`// qopt-arch: export`"});
      }
    }

    // missing-include: a uniquely-owned type symbol is mentioned and its
    // owner is reached only transitively — a transitive-include leak. The
    // reachability requirement keeps name coincidences out: if the owner
    // is not in the file's include closure at all, the mention must refer
    // to something else (the TU compiles). In a header this is also the
    // static not-self-contained signal.
    std::map<std::string, std::vector<std::string>> missing;  // owner -> syms
    for (const std::string& sym : mentions) {
      if (declared.count(sym) > 0) continue;
      const auto it = owners.find(sym);
      if (it == owners.end() || it->second.size() != 1) continue;
      const std::string& owner = it->second.front();
      if (owner == file.rel || is_companion(file.rel, owner)) continue;
      if (direct.count(owner) > 0) continue;
      if (reachable.count(owner) == 0) continue;
      missing[owner].push_back(sym);
    }
    for (const auto& [owner, syms] : missing) {
      // Anchor at the first mention of the first (alphabetical) symbol.
      std::size_t offset = std::string::npos;
      for (std::size_t pos = 0; pos < file.stripped.size(); ++pos) {
        if (!is_ident_char(file.stripped[pos]) ||
            (pos > 0 && is_ident_char(file.stripped[pos - 1]))) {
          continue;
        }
        std::size_t end = pos;
        while (end < file.stripped.size() &&
               is_ident_char(file.stripped[end])) {
          ++end;
        }
        if (std::find(syms.begin(), syms.end(),
                      file.stripped.substr(pos, end - pos)) != syms.end()) {
          offset = pos;
          break;
        }
        pos = end;
      }
      const std::size_t line =
          offset == std::string::npos
              ? 1
              : line_of_offset(file.stripped, offset);
      std::string named = "`" + syms.front() + "`";
      if (syms.size() > 1) {
        named += " (and " + std::to_string(syms.size() - 1) + " more)";
      }
      if (!allowed(file.ann, line, "missing-include")) {
        findings.push_back(
            {file.rel, line, "missing-include",
             "mentions " + named + " from `" + owner +
                 "` without including it directly (transitive includes are "
                 "not a contract" +
                 std::string(file.is_header
                                 ? "; a header relying on them is not "
                                   "self-contained"
                                 : "") +
                 ")"});
      }
    }
  }
  return findings;
}

}  // namespace qopt::arch
