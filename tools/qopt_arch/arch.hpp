// qopt-arch — include-graph architecture conformance and header hygiene.
//
// A dependency-free (no LLVM) analyzer that parses every `#include` edge in
// the tree, builds the file- and module-level include graphs, and enforces
// the layering manifest committed at docs/ARCHITECTURE.toml. Rules:
//
//   forbidden-edge    an include crosses a module boundary the manifest does
//                     not allow (module deps form the declared DAG; lower
//                     layers such as util/sim never reach upward into
//                     protocol or policy layers).
//   include-cycle     the file-level include graph has a cycle (direct or
//                     transitive).
//   manifest          the manifest itself is malformed: unknown module in
//                     `order`, deps referencing undeclared modules, a cyclic
//                     deps relation, or a dep appearing at or above its
//                     dependent in the layer order.
//   unknown-module    a scanned file belongs to no module declared in the
//                     manifest.
//   relative-include  an include path contains `./` or `../`; project
//                     includes are always spelled from a source root
//                     ("module/header.hpp").
//   include-style     a quoted include does not resolve to an in-repo header
//                     (system headers use <>), or an angled include resolves
//                     to an in-repo header (project headers use "").
//   pragma-once       a header lacks `#pragma once` (the tree-wide guard
//                     convention; #ifndef guards are not used).
//   unused-include    a file includes an in-repo header but never mentions
//                     any symbol that header (or anything it transitively
//                     includes) provides.
//   missing-include   a file mentions a symbol whose owning in-repo header
//                     it never directly includes — an include satisfied only
//                     transitively today, or (in a header) proof the header
//                     is not self-contained.
//   bare-allow        a `// qopt-arch: allow(<rule>)` without justification.
//
// Suppression: `// qopt-arch: allow(<rule>) <justification>` on the line of
// (or the line above) the finding — the shared tools/analysis grammar, same
// as qopt_lint. An include line in an umbrella header may carry
// `// qopt-arch: export`: including the umbrella then counts as directly
// including the exported target (IWYU-style re-export).
#pragma once

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "analysis/source.hpp"
#include "analysis/suppress.hpp"

namespace qopt::arch {

using Finding = qopt::analysis::Finding;

// ------------------------------------------------------------- manifest

/// The layering manifest: a module order (low layer first) and, per module,
/// the set of other modules it may include. Self-edges are implicit.
struct Manifest {
  std::string path;                                   // for diagnostics
  std::vector<std::string> order;                     // low -> high
  std::map<std::string, std::set<std::string>> deps;  // module -> allowed
  std::vector<Finding> errors;                        // parse-time problems
};

/// Parses the TOML subset used by docs/ARCHITECTURE.toml:
/// `[layers]` with `order = [...]`, and `[modules.<name>]` sections with
/// `deps = [...]` (arrays of double-quoted strings, multi-line allowed,
/// `#` comments). Anything else is reported as a `manifest` finding.
Manifest parse_manifest(const std::string& path, const std::string& text);

/// Reads and parses; a read failure is a `manifest` finding in `errors`.
Manifest load_manifest(const std::string& path);

// ----------------------------------------------------------- the tree

struct Include {
  std::string spelled;    // path as written between the delimiters
  std::size_t line = 0;   // 1-based
  bool angled = false;    // <...> vs "..."
  bool exported = false;  // `// qopt-arch: export` on the include line
  std::string resolved;   // root-relative path of the in-repo target, or ""
  std::string module;     // module of the resolved target, or ""
};

struct SourceFile {
  std::string path;  // as opened
  std::string rel;   // root-relative, '/'-separated
  std::string module;
  bool is_header = false;
  bool has_pragma_once = false;
  std::vector<Include> includes;
  std::string stripped;  // comment/literal-stripped source
  qopt::analysis::Annotations ann;
};

struct Tree {
  std::string root;
  std::vector<SourceFile> files;              // sorted by rel
  std::map<std::string, std::size_t> index;   // rel -> index into files
  std::vector<Finding> errors;                // I/O problems
};

/// Loads every C++ source under root/<dir> for each dir (files listed
/// explicitly are taken as-is). Quoted includes resolve against the tree
/// itself, trying `<root>/`, `<root>/src/`, `<root>/tools/` in that order;
/// module = first path component, with `src/` and `tools/` stripped
/// (`src/kv/...` -> "kv", `tools/analysis/...` -> "analysis",
/// `tests/...` -> "tests").
Tree load_tree(const std::string& root, const std::vector<std::string>& dirs);

// ------------------------------------------------------------- checks

/// forbidden-edge, unknown-module, include-cycle, plus the manifest's own
/// `errors`. Pure graph checks — cheap to re-run against edited manifests
/// (the load-bearing-edge negative test does exactly that).
std::vector<Finding> check_layering(const Tree& tree,
                                    const Manifest& manifest);

/// pragma-once, relative-include, include-style.
std::vector<Finding> check_hygiene(const Tree& tree);

/// unused-include and missing-include, driven by a generated symbol->header
/// map for in-repo headers.
std::vector<Finding> check_symbols(const Tree& tree);

/// All checks plus per-file bare-allow findings and tree I/O errors, sorted
/// by (file, line, rule).
std::vector<Finding> analyze(const Tree& tree, const Manifest& manifest);

/// Every justified suppression/annotation in the tree (tool "qopt-arch").
std::vector<qopt::analysis::Suppression> suppressions(const Tree& tree);

// ------------------------------------------------------------- exports

/// Deterministic Graphviz digraph of the module graph: one node per module
/// that owns files, ranked by manifest layer, one edge per observed
/// module->module include relation (labelled with the include count).
std::string export_dot(const Tree& tree, const Manifest& manifest);

/// Deterministic JSON: modules (with layer index and allowed deps), the
/// observed edges with include counts, and the file count.
std::string export_json(const Tree& tree, const Manifest& manifest);

}  // namespace qopt::arch
