// qopt_lint CLI — see lint.hpp for the rule set.
//
// Usage: qopt_lint [--list-rules] [--suppressions] <file-or-dir>...
// Exit status: 0 when clean, 1 when findings exist, 2 on usage error.
// --suppressions additionally prints every justified suppression in the
// unified `tool:rule:file:line: justification` summary shared with
// qopt_arch.
#include <cstdio>
#include <string>
#include <vector>

#include "analysis/suppress.hpp"
#include "qopt_lint/lint.hpp"

int main(int argc, char** argv) {
  std::vector<std::string> paths;
  bool show_suppressions = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--suppressions") {
      show_suppressions = true;
      continue;
    }
    if (arg == "--list-rules") {
      std::printf(
          "wall-clock      real-time / ambient-randomness source outside "
          "src/util/rng\n"
          "unordered-iter  iteration over std::unordered_map/unordered_set\n"
          "pointer-key     std::map/std::set keyed by a pointer\n"
          "quorum-literal  QuorumConfig{r, w} / QuorumConfig::of(r, w) / "
          "QuorumStrategy::majority(r, w[, n]) with r < 1 or w < 1 (and "
          "r + w <= n when n is known inline or via "
          "`qopt-lint: quorum(n=N)`)\n"
          "bare-allow      allow() suppression without a justification\n");
      return 0;
    }
    if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: qopt_lint [--list-rules] [--suppressions] "
          "<file-or-dir>...\n");
      return 0;
    }
    paths.push_back(arg);
  }
  if (paths.empty()) {
    std::fprintf(stderr,
                 "usage: qopt_lint [--list-rules] [--suppressions] "
                 "<file-or-dir>...\n");
    return 2;
  }

  std::size_t total = 0;
  const std::vector<std::string> files = qopt::lint::collect_sources(paths);
  for (const std::string& file : files) {
    for (const qopt::lint::Finding& finding : qopt::lint::lint_file(file)) {
      std::printf("%s\n", qopt::lint::format_finding(finding).c_str());
      ++total;
    }
  }
  if (show_suppressions) {
    for (const std::string& file : files) {
      for (const qopt::analysis::Suppression& s :
           qopt::lint::file_suppressions(file)) {
        std::printf("%s\n", qopt::analysis::format_suppression(s).c_str());
      }
    }
  }
  if (total > 0) {
    std::fprintf(stderr, "qopt-lint: %zu finding(s) in %zu file(s) scanned\n",
                 total, files.size());
    return 1;
  }
  return 0;
}
