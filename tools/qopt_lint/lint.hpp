// qopt-lint — project-specific determinism & protocol-invariant checker.
//
// A token/regex-level source scanner (no LLVM dependency) enforcing the
// simulator's correctness discipline at lint time instead of at replay time:
//
//   wall-clock      no real-time or ambient-randomness source outside
//                   src/util/rng (system_clock, time(), rand(),
//                   std::random_device, ...): all time is virtual, all
//                   randomness flows through qopt::Rng.
//   unordered-iter  no iteration over std::unordered_map/unordered_set:
//                   hash-table iteration order is implementation-defined, so
//                   anything it feeds (trace/report/CSV output, protocol
//                   decisions, floating-point accumulation) silently loses
//                   the same-seed byte-identical guarantee. Order must flow
//                   through std::map or sorted-key snapshots.
//   pointer-key     no std::map/std::set (or multi- variants) keyed by a
//                   pointer: address order changes run to run.
//   quorum-literal  every literal quorum construction — QuorumConfig{r, w},
//                   QuorumConfig::of(r, w), QuorumStrategy::majority(r, w[,
//                   n]) — must satisfy r >= 1 and w >= 1; with a known
//                   replication degree (the factory's inline n argument, or
//                   `// qopt-lint: quorum(n=N)`) the strict-quorum
//                   invariant r + w > n (and r, w <= n) is checked too.
//   bare-allow      a `// qopt-lint: allow(<rule>)` suppression without a
//                   justification after the closing parenthesis.
//
// Suppression: `// qopt-lint: allow(<rule>) <justification>` disables <rule>
// on its own line and the next line. The justification is mandatory.
//
// The tokenizer (comment/literal stripping), file walker, and suppression
// grammar are the shared tools/analysis framework, common with qopt_arch;
// prose mentioning rand() (or this file's own patterns) never trips the
// checker.
#pragma once

#include <string>
#include <vector>

#include "analysis/source.hpp"
#include "analysis/suppress.hpp"

namespace qopt::lint {

using Finding = qopt::analysis::Finding;

/// Lints an in-memory source buffer; `path` is used for reporting and for
/// the wall-clock allowlist (src/util/rng is exempt). `header_source` is an
/// optional companion-header buffer scanned for container *declarations*
/// only (so a .cpp iterating a member declared in its .hpp is caught); it
/// is not itself linted.
std::vector<Finding> lint_source(const std::string& path,
                                 const std::string& source,
                                 const std::string& header_source = {});

/// Reads and lints a file; a read failure is reported as an `io` finding.
/// For a .cpp/.cc file, the sibling .hpp/.h with the same stem (if any) is
/// loaded as the companion header.
std::vector<Finding> lint_file(const std::string& path);

/// Justified suppressions and quorum(n=N) annotations found in a file, in
/// the unified summary shape shared with qopt_arch (tool tag "qopt-lint").
std::vector<analysis::Suppression> file_suppressions(const std::string& path);

/// Expands files and directories (recursively) into the C++ sources to lint
/// (.cpp/.cc/.hpp/.h); explicit file arguments are taken as-is.
std::vector<std::string> collect_sources(
    const std::vector<std::string>& paths);

/// One "file:line: [rule] message" diagnostic line.
std::string format_finding(const Finding& finding);

}  // namespace qopt::lint
