#include "qopt_lint/lint.hpp"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <regex>
#include <set>
#include <string>
#include <vector>

#include "analysis/source.hpp"
#include "analysis/suppress.hpp"

namespace qopt::lint {

namespace {

constexpr const char* kTool = "qopt-lint";

using analysis::allowed;
using analysis::Annotations;
using analysis::identifiers_in;
using analysis::is_ident_char;
using analysis::line_of_offset;
using analysis::match_angle_brackets;
using analysis::read_identifier;
using analysis::split_lines;
using analysis::strip_comments_and_literals;

// ------------------------------------------------------------- the rules

void check_wall_clock(const std::string& path, const std::string& stripped,
                      const Annotations& ann,
                      std::vector<Finding>& findings) {
  // All randomness and time in src/util/rng is *sourcing* the deterministic
  // streams; the checker itself is exempt there.
  if (path.find("src/util/rng") != std::string::npos) return;
  struct Pattern {
    std::regex re;
    const char* what;
  };
  static const std::vector<Pattern> patterns = {
      {std::regex(R"((^|[^\w])(std\s*::\s*)?(chrono\s*::\s*)?)"
                  R"((system_clock|steady_clock|high_resolution_clock)\b)"),
       "wall-clock source; use the simulator's virtual clock (qopt::Time)"},
      {std::regex(R"((^|[^\w])(std\s*::\s*)?random_device\b)"),
       "ambient randomness; seed a qopt::Rng instead"},
      {std::regex(
           R"((^|[^\w])(srand|gettimeofday|clock_gettime|timespec_get|localtime|gmtime|mktime|strftime)\s*\()"),
       "wall-clock/libc randomness API; use qopt::Rng / virtual time"},
      {std::regex(R"((^|[^\w])rand\s*\(\s*\))"),
       "rand() is non-deterministic across platforms; use qopt::Rng"},
      {std::regex(R"((^|[^.\w])(std\s*::\s*)?time\s*\(\s*(nullptr|NULL|0|\)))"),
       "time() reads the wall clock; use the simulator's virtual clock"},
  };
  const std::vector<std::string> lines = split_lines(stripped);
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const std::size_t lineno = i + 1;
    for (const Pattern& pattern : patterns) {
      if (std::regex_search(lines[i], pattern.re)) {
        if (!allowed(ann, lineno, "wall-clock")) {
          findings.push_back({path, lineno, "wall-clock", pattern.what});
        }
        break;
      }
    }
  }
}

/// Names declared with an unordered type in `stripped` — variables, data
/// members, and functions returning (references to) unordered containers.
void collect_unordered_names(const std::string& stripped,
                             std::set<std::string>& unordered_names) {
  for (const char* token : {"unordered_map", "unordered_set",
                            "unordered_multimap", "unordered_multiset"}) {
    const std::string needle = token;
    std::size_t pos = 0;
    while ((pos = stripped.find(needle, pos)) != std::string::npos) {
      const std::size_t end = pos + needle.size();
      if ((pos > 0 && is_ident_char(stripped[pos - 1])) ||
          (end < stripped.size() && is_ident_char(stripped[end]))) {
        pos = end;
        continue;  // substring of a longer identifier
      }
      std::size_t after = end;
      while (after < stripped.size() &&
             std::isspace(static_cast<unsigned char>(stripped[after]))) {
        ++after;
      }
      if (after < stripped.size() && stripped[after] == '<') {
        const std::size_t close = match_angle_brackets(stripped, after);
        if (close != std::string::npos) {
          std::size_t cursor = close;
          const std::string name = read_identifier(stripped, cursor);
          if (!name.empty()) unordered_names.insert(name);
        }
      }
      pos = end;
    }
  }
}

void check_unordered_iter(const std::string& path,
                          const std::string& stripped,
                          const std::string& header_stripped,
                          const Annotations& ann,
                          std::vector<Finding>& findings) {
  // Pass 1: unordered declarations from this file and its companion header
  // (members are declared in the .hpp but iterated in the .cpp).
  std::set<std::string> unordered_names;
  collect_unordered_names(stripped, unordered_names);
  collect_unordered_names(header_stripped, unordered_names);
  if (unordered_names.empty()) return;

  // Pass 2: `for` statements whose header mentions one of those names —
  // range-fors over the container, and iterator loops via .begin()/.end().
  std::size_t pos = 0;
  while ((pos = stripped.find("for", pos)) != std::string::npos) {
    if ((pos > 0 && is_ident_char(stripped[pos - 1])) ||
        (pos + 3 < stripped.size() && is_ident_char(stripped[pos + 3]))) {
      pos += 3;
      continue;
    }
    std::size_t open = pos + 3;
    while (open < stripped.size() &&
           std::isspace(static_cast<unsigned char>(stripped[open]))) {
      ++open;
    }
    if (open >= stripped.size() || stripped[open] != '(') {
      pos += 3;
      continue;
    }
    int depth = 0;
    std::size_t close = open;
    std::size_t colon = std::string::npos;
    bool classic = false;
    for (std::size_t i = open; i < stripped.size(); ++i) {
      const char c = stripped[i];
      if (c == '(') {
        ++depth;
      } else if (c == ')') {
        if (--depth == 0) {
          close = i;
          break;
        }
      } else if (depth == 1 && c == ';') {
        classic = true;
      } else if (depth == 1 && c == ':' && colon == std::string::npos &&
                 !classic && (i == 0 || stripped[i - 1] != ':') &&
                 (i + 1 >= stripped.size() || stripped[i + 1] != ':')) {
        colon = i;
      }
    }
    if (close == open) break;  // unbalanced; stop scanning
    const std::size_t lineno = line_of_offset(stripped, pos);
    std::string range_expr;
    if (!classic && colon != std::string::npos) {
      range_expr = stripped.substr(colon + 1, close - colon - 1);
    } else if (classic) {
      // Iterator loop: only flag when the header walks the container.
      const std::string header = stripped.substr(open, close - open + 1);
      if (header.find(".begin") != std::string::npos ||
          header.find("->begin") != std::string::npos ||
          header.find("cbegin") != std::string::npos) {
        range_expr = header;
      }
    }
    if (!range_expr.empty()) {
      for (const std::string& ident : identifiers_in(range_expr)) {
        if (unordered_names.count(ident) > 0) {
          if (!allowed(ann, lineno, "unordered-iter")) {
            findings.push_back(
                {path, lineno, "unordered-iter",
                 "iteration over unordered container `" + ident +
                     "`: hash order is implementation-defined and breaks "
                     "same-seed determinism; iterate a std::map or a "
                     "sorted-key snapshot instead"});
          }
          break;
        }
      }
    }
    pos = close;
  }
}

void check_pointer_key(const std::string& path, const std::string& stripped,
                       const Annotations& ann,
                       std::vector<Finding>& findings) {
  for (const char* token : {"map", "set", "multimap", "multiset"}) {
    const std::string needle = token;
    std::size_t pos = 0;
    while ((pos = stripped.find(needle, pos)) != std::string::npos) {
      const std::size_t end = pos + needle.size();
      if ((pos > 0 && is_ident_char(stripped[pos - 1])) ||
          (end < stripped.size() && is_ident_char(stripped[end]))) {
        pos = end;
        continue;  // unordered_map, bitset, reset(), ...
      }
      std::size_t after = end;
      while (after < stripped.size() &&
             std::isspace(static_cast<unsigned char>(stripped[after]))) {
        ++after;
      }
      if (after >= stripped.size() || stripped[after] != '<') {
        pos = end;
        continue;
      }
      const std::size_t close = match_angle_brackets(stripped, after);
      if (close == std::string::npos) {
        pos = end;
        continue;
      }
      // First template argument: up to a top-level comma (or the end).
      int depth = 0;
      std::size_t key_end = close - 1;
      for (std::size_t i = after; i < close; ++i) {
        if (stripped[i] == '<' || stripped[i] == '(') ++depth;
        if (stripped[i] == '>' || stripped[i] == ')') --depth;
        if (stripped[i] == ',' && depth == 1) {
          key_end = i;
          break;
        }
      }
      std::string key = stripped.substr(after + 1, key_end - after - 1);
      while (!key.empty() &&
             std::isspace(static_cast<unsigned char>(key.back()))) {
        key.pop_back();
      }
      if (!key.empty() && key.back() == '*') {
        const std::size_t lineno = line_of_offset(stripped, pos);
        if (!allowed(ann, lineno, "pointer-key")) {
          findings.push_back(
              {path, lineno, "pointer-key",
               "ordered container keyed by a pointer (`" + key +
                   "`): address order differs run to run; key by a stable "
                   "id instead"});
        }
      }
      pos = close;
    }
  }
}

void check_quorum_literal(const std::string& path,
                          const std::string& stripped,
                          const Annotations& ann,
                          std::vector<Finding>& findings) {
  // All three blessed spellings of a literal quorum configuration are held
  // to the same invariants: the legacy aggregate, the named QuorumConfig
  // factory, and the majority-strategy factory (whose third argument, when
  // a positive literal, supplies n inline — no annotation needed).
  static const std::regex literal_re(
      R"(QuorumConfig\s*([A-Za-z_]\w*\s*)?\{\s*(-?\d+)\s*,\s*(-?\d+)\s*\})");
  static const std::regex of_re(
      R"(QuorumConfig::of\s*\(\s*(-?\d+)\s*,\s*(-?\d+)\s*\))");
  static const std::regex majority_re(
      R"(QuorumStrategy::majority\s*\(\s*(-?\d+)\s*,\s*(-?\d+)\s*(?:,\s*(-?\d+)\s*)?\))");

  struct Literal {
    std::string spelling;
    int r = 0;
    int w = 0;
    int n = 0;  // 0 = not given inline; fall back to the annotation
  };

  const std::vector<std::string> lines = split_lines(stripped);
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const std::size_t lineno = i + 1;
    std::vector<Literal> found;
    // `base` is the capture group holding r; w follows it, an inline n (the
    // factory regex only) follows w.
    const auto scan = [&](const std::regex& re, const char* name,
                          std::size_t base, bool braces) {
      auto begin = std::sregex_iterator(lines[i].begin(), lines[i].end(), re);
      for (auto it = begin; it != std::sregex_iterator(); ++it) {
        Literal lit;
        lit.r = std::stoi((*it)[base].str());
        lit.w = std::stoi((*it)[base + 1].str());
        if (base + 2 <= it->size() - 1 && (*it)[base + 2].matched) {
          lit.n = std::stoi((*it)[base + 2].str());
        }
        const std::string args =
            std::to_string(lit.r) + ", " + std::to_string(lit.w) +
            (lit.n != 0 ? ", " + std::to_string(lit.n) : "");
        lit.spelling = braces ? std::string(name) + "{" + args + "}"
                              : std::string(name) + "(" + args + ")";
        found.push_back(std::move(lit));
      }
    };
    scan(literal_re, "QuorumConfig", 2, /*braces=*/true);
    scan(of_re, "QuorumConfig::of", 1, /*braces=*/false);
    scan(majority_re, "QuorumStrategy::majority", 1, /*braces=*/false);

    for (const Literal& lit : found) {
      if (allowed(ann, lineno, "quorum-literal")) continue;
      if (lit.r < 1 || lit.w < 1) {
        findings.push_back(
            {path, lineno, "quorum-literal",
             lit.spelling + ": quorum sizes must be >= 1 (encode 'no "
                            "quorum' as std::optional, not a {0,0} "
                            "sentinel)"});
        continue;
      }
      int n = lit.n;
      if (n == 0) {
        const auto n_it = ann.quorum_n.find(lineno);
        if (n_it != ann.quorum_n.end()) n = n_it->second;
      }
      if (n > 0 && (lit.r + lit.w <= n || lit.r > n || lit.w > n)) {
        findings.push_back(
            {path, lineno, "quorum-literal",
             lit.spelling + " violates the strict-quorum invariant for n=" +
                 std::to_string(n) + " (need r + w > n with r, w <= n)"});
      }
    }
  }
}

std::string companion_header_source(const std::string& path) {
  namespace fs = std::filesystem;
  const fs::path p(path);
  const std::string ext = p.extension().string();
  if (ext != ".cpp" && ext != ".cc") return {};
  for (const char* header_ext : {".hpp", ".h"}) {
    fs::path header = p;
    header.replace_extension(header_ext);
    std::string header_source;
    if (analysis::read_file(header.string(), header_source)) {
      return header_source;
    }
  }
  return {};
}

}  // namespace

std::vector<Finding> lint_source(const std::string& path,
                                 const std::string& source,
                                 const std::string& header_source) {
  std::vector<Finding> findings;
  const std::vector<std::string> raw_lines = split_lines(source);
  Annotations ann = analysis::scan_annotations(kTool, path, raw_lines);
  findings.insert(findings.end(), ann.findings.begin(), ann.findings.end());
  const std::string stripped = strip_comments_and_literals(source);
  const std::string header_stripped =
      header_source.empty() ? std::string{}
                            : strip_comments_and_literals(header_source);
  check_wall_clock(path, stripped, ann, findings);
  check_unordered_iter(path, stripped, header_stripped, ann, findings);
  check_pointer_key(path, stripped, ann, findings);
  check_quorum_literal(path, stripped, ann, findings);
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.line != b.line) return a.line < b.line;
              return a.rule < b.rule;
            });
  return findings;
}

std::vector<Finding> lint_file(const std::string& path) {
  std::string source;
  if (!analysis::read_file(path, source)) {
    return {{path, 0, "io", "cannot read file"}};
  }
  return lint_source(path, source, companion_header_source(path));
}

std::vector<analysis::Suppression> file_suppressions(const std::string& path) {
  std::string source;
  if (!analysis::read_file(path, source)) return {};
  return analysis::scan_annotations(kTool, path, split_lines(source))
      .suppressions;
}

std::vector<std::string> collect_sources(
    const std::vector<std::string>& paths) {
  return analysis::collect_sources(paths);
}

std::string format_finding(const Finding& finding) {
  return analysis::format_finding(finding);
}

}  // namespace qopt::lint
