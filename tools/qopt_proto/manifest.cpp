#include <cctype>
#include <set>
#include <string>
#include <vector>

#include "analysis/source.hpp"
#include "qopt_proto/proto.hpp"

namespace qopt::proto {

namespace {

std::string trimmed(const std::string& s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string without_comment(const std::string& line) {
  // `#` starts a comment anywhere outside a quoted string.
  bool in_string = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    if (line[i] == '"') in_string = !in_string;
    if (line[i] == '#' && !in_string) return line.substr(0, i);
  }
  return line;
}

/// Extracts the double-quoted strings from an array body fragment,
/// reporting anything that is not a string, comma, or whitespace.
void parse_array_items(const std::string& path, std::size_t lineno,
                       const std::string& fragment,
                       std::vector<std::string>& out,
                       std::vector<Finding>& errors) {
  std::size_t i = 0;
  while (i < fragment.size()) {
    const char c = fragment[i];
    if (std::isspace(static_cast<unsigned char>(c)) || c == ',') {
      ++i;
      continue;
    }
    if (c == '"') {
      const std::size_t close = fragment.find('"', i + 1);
      if (close == std::string::npos) {
        errors.push_back(
            {path, lineno, "manifest", "unterminated string in array"});
        return;
      }
      out.push_back(fragment.substr(i + 1, close - i - 1));
      i = close + 1;
      continue;
    }
    errors.push_back({path, lineno, "manifest",
                      "expected a double-quoted string in array, got `" +
                          fragment.substr(i, 1) + "`"});
    return;
  }
}

}  // namespace

Manifest parse_manifest(const std::string& path, const std::string& text) {
  Manifest m;
  m.path = path;
  const std::vector<std::string> lines = analysis::split_lines(text);

  enum class Section { kNone, kWire, kComponent, kMessage };
  Section section = Section::kNone;
  ComponentSpec* component = nullptr;
  MessageSpec* message = nullptr;

  // Array state: key being filled, accumulated items, open until `]`.
  bool in_array = false;
  std::string array_key;
  std::size_t array_line = 0;
  std::vector<std::string> array_items;

  auto finish_array = [&]() {
    if (section == Section::kWire && array_key == "alternatives") {
      m.wire.alternatives = array_items;
    } else if (section == Section::kMessage && array_key == "fields") {
      message->fields = array_items;
    } else {
      m.errors.push_back({path, array_line, "manifest",
                          "unknown key `" + array_key + "` in this section"});
    }
    in_array = false;
    array_key.clear();
    array_items.clear();
  };

  for (std::size_t i = 0; i < lines.size(); ++i) {
    const std::size_t lineno = i + 1;
    const std::string line = trimmed(without_comment(lines[i]));
    if (line.empty()) continue;

    if (in_array) {
      const std::size_t close = line.find(']');
      parse_array_items(path, lineno, line.substr(0, close), array_items,
                        m.errors);
      if (close != std::string::npos) finish_array();
      continue;
    }

    if (line.front() == '[') {
      component = nullptr;
      message = nullptr;
      if (line == "[wire]") {
        section = Section::kWire;
      } else if (line.starts_with("[components.") && line.back() == ']') {
        const std::string name = line.substr(12, line.size() - 13);
        if (name.empty()) {
          m.errors.push_back(
              {path, lineno, "manifest", "empty component name in section"});
          section = Section::kNone;
        } else {
          section = Section::kComponent;
          m.components.push_back({name, {}, {}, lineno});
          component = &m.components.back();
        }
      } else if (line.starts_with("[messages.") && line.back() == ']') {
        const std::string name = line.substr(10, line.size() - 11);
        if (name.empty()) {
          m.errors.push_back(
              {path, lineno, "manifest", "empty message name in section"});
          section = Section::kNone;
        } else {
          section = Section::kMessage;
          MessageSpec spec;
          spec.name = name;
          spec.line = lineno;
          m.messages.push_back(spec);
          message = &m.messages.back();
        }
      } else {
        m.errors.push_back({path, lineno, "manifest",
                            "unknown section `" + line +
                                "` (expected [wire], [components.<name>], "
                                "or [messages.<Name>])"});
        section = Section::kNone;
      }
      continue;
    }

    const std::size_t eq = line.find('=');
    if (eq == std::string::npos) {
      m.errors.push_back({path, lineno, "manifest",
                          "expected `key = ...`: `" + line + "`"});
      continue;
    }
    const std::string key = trimmed(line.substr(0, eq));
    const std::string value = trimmed(line.substr(eq + 1));

    // Scalar string value: `handler = "handle_read"`.
    if (!value.empty() && value.front() == '"') {
      const std::size_t close = value.find('"', 1);
      if (close == std::string::npos) {
        m.errors.push_back(
            {path, lineno, "manifest", "unterminated string for `" + key +
                                           "`"});
        continue;
      }
      const std::string s = value.substr(1, close - 1);
      bool known = true;
      if (section == Section::kWire) {
        if (key == "header") {
          m.wire.header = s;
        } else if (key == "variant") {
          m.wire.variant = s;
        } else {
          known = false;
        }
      } else if (section == Section::kComponent) {
        if (key == "path") {
          component->path = s;
        } else if (key == "dispatch") {
          component->dispatch = s;
        } else {
          known = false;
        }
      } else if (section == Section::kMessage) {
        if (key == "from") {
          message->from = s;
        } else if (key == "to") {
          message->to = s;
        } else if (key == "handler") {
          message->handler = s;
        } else if (key == "epoch") {
          message->epoch = s;
        } else if (key == "dedup") {
          message->dedup = s;
        } else {
          known = false;
        }
      } else {
        known = false;
      }
      if (!known) {
        m.errors.push_back({path, lineno, "manifest",
                            "unknown key `" + key + "` in this section"});
      }
      continue;
    }

    // Boolean value: `versioned = true`.
    if (value == "true" || value == "false") {
      const bool b = value == "true";
      bool known = section == Section::kMessage;
      if (known) {
        if (key == "versioned") {
          message->versioned = b;
        } else if (key == "at_least_once") {
          message->at_least_once = b;
        } else if (key == "span") {
          message->span = b;
        } else {
          known = false;
        }
      }
      if (!known) {
        m.errors.push_back({path, lineno, "manifest",
                            "unknown key `" + key + "` in this section"});
      }
      continue;
    }

    if (value.empty() || value.front() != '[') {
      m.errors.push_back({path, lineno, "manifest",
                          "value of `" + key +
                              "` must be a string, boolean, or array"});
      continue;
    }
    in_array = true;
    array_key = key;
    array_line = lineno;
    const std::string body = value.substr(1);
    const std::size_t close = body.find(']');
    parse_array_items(path, lineno, body.substr(0, close), array_items,
                      m.errors);
    if (close != std::string::npos) finish_array();
  }
  if (in_array) {
    m.errors.push_back({path, array_line, "manifest",
                        "unterminated array for `" + array_key + "`"});
  }

  // ------------------------------------------------- cross-key validation
  if (m.wire.header.empty()) {
    m.errors.push_back(
        {path, 0, "manifest", "[wire] section has no `header` key"});
  }
  if (m.wire.variant.empty()) {
    m.errors.push_back(
        {path, 0, "manifest", "[wire] section has no `variant` key"});
  }
  std::set<std::string> component_names;
  for (const ComponentSpec& c : m.components) {
    if (!component_names.insert(c.name).second) {
      m.errors.push_back({path, c.line, "manifest",
                          "duplicate component `" + c.name + "`"});
    }
    if (c.path.empty()) {
      m.errors.push_back({path, c.line, "manifest",
                          "component `" + c.name + "` has no `path` key"});
    }
  }
  std::set<std::string> message_names;
  for (const MessageSpec& msg : m.messages) {
    if (!message_names.insert(msg.name).second) {
      m.errors.push_back({path, msg.line, "manifest",
                          "duplicate message `" + msg.name + "`"});
    }
    if (msg.to.empty() != msg.handler.empty()) {
      m.errors.push_back({path, msg.line, "manifest",
                          "message `" + msg.name +
                              "` must set `to` and `handler` together"});
    }
    if (!msg.to.empty() && !component_names.contains(msg.to)) {
      m.errors.push_back({path, msg.line, "manifest",
                          "message `" + msg.name + "` routes to unknown "
                          "component `" + msg.to + "`"});
    }
    if (!msg.from.empty() && msg.from != "client" &&
        !component_names.contains(msg.from)) {
      m.errors.push_back({path, msg.line, "manifest",
                          "message `" + msg.name + "` sent from unknown "
                          "component `" + msg.from + "`"});
    }
    if (msg.fields.empty()) {
      m.errors.push_back({path, msg.line, "manifest",
                          "message `" + msg.name + "` has no `fields` list"});
    }
  }
  return m;
}

Manifest load_manifest(const std::string& path) {
  std::string text;
  if (!analysis::read_file(path, text)) {
    Manifest m;
    m.path = path;
    m.errors.push_back({path, 0, "manifest", "cannot read manifest"});
    return m;
  }
  return parse_manifest(path, text);
}

}  // namespace qopt::proto
