#include <algorithm>
#include <cctype>
#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "analysis/source.hpp"
#include "analysis/suppress.hpp"
#include "qopt_proto/proto.hpp"

namespace qopt::proto {

namespace {

constexpr const char* kTool = "qopt-proto";

using analysis::allowed;
using analysis::Annotations;
using analysis::is_ident_char;
using analysis::line_of_offset;
using analysis::match_angle_brackets;
using analysis::split_lines;
using analysis::strip_comments_and_literals;

// ------------------------------------------------------- token utilities

/// True when [pos, pos+len) is a whole identifier token (word-bounded).
bool token_at(const std::string& text, std::size_t pos, std::size_t len) {
  if (pos > 0 && is_ident_char(text[pos - 1])) return false;
  if (pos + len < text.size() && is_ident_char(text[pos + len])) return false;
  return true;
}

std::size_t skip_ws(const std::string& text, std::size_t pos) {
  while (pos < text.size() &&
         std::isspace(static_cast<unsigned char>(text[pos]))) {
    ++pos;
  }
  return pos;
}

/// Index of the last non-whitespace char strictly before `pos`, or npos.
std::size_t prev_nonspace(const std::string& text, std::size_t pos) {
  while (pos > 0) {
    --pos;
    if (!std::isspace(static_cast<unsigned char>(text[pos]))) return pos;
  }
  return std::string::npos;
}

/// Reads the identifier ending at (and including) `end`; `start` receives
/// its first index. Empty when text[end] is not an identifier char.
std::string ident_ending_at(const std::string& text, std::size_t end,
                            std::size_t& start) {
  if (end == std::string::npos || !is_ident_char(text[end])) {
    start = end;
    return {};
  }
  start = end;
  while (start > 0 && is_ident_char(text[start - 1])) --start;
  return text.substr(start, end - start + 1);
}

/// Offset one past the ')' matching the '(' at `open`, or npos.
std::size_t match_parens(const std::string& text, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < text.size(); ++i) {
    if (text[i] == '(') {
      ++depth;
    } else if (text[i] == ')') {
      if (--depth == 0) return i + 1;
    }
  }
  return std::string::npos;
}

/// Offset of the '}' matching the '{' at `open`, or npos.
std::size_t match_braces(const std::string& text, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < text.size(); ++i) {
    if (text[i] == '{') {
      ++depth;
    } else if (text[i] == '}') {
      if (--depth == 0) return i;
    }
  }
  return std::string::npos;
}

/// Given the offset one past a parameter list's ')', skips trailing
/// qualifiers (const/noexcept[(...)]/override/final, `-> Type`, a
/// constructor init list) and returns the offset of the function body's
/// '{', or npos when the signature is a declaration (`;`).
std::size_t body_open_after(const std::string& text, std::size_t pos) {
  for (;;) {
    pos = skip_ws(text, pos);
    if (pos >= text.size()) return std::string::npos;
    const char c = text[pos];
    if (c == '{') return pos;
    if (c == ';') return std::string::npos;
    if (c == '(') {  // noexcept(...)
      pos = match_parens(text, pos);
      if (pos == std::string::npos) return std::string::npos;
      continue;
    }
    if (c == ':') {
      // Constructor init list: the body '{' is the first brace at paren
      // depth 0 whose predecessor is ')' or '}' (an initializer closer).
      int depth = 0;
      for (std::size_t i = pos + 1; i < text.size(); ++i) {
        if (text[i] == '(') {
          ++depth;
        } else if (text[i] == ')') {
          --depth;
        } else if (text[i] == ';') {
          return std::string::npos;
        } else if (text[i] == '{' && depth == 0) {
          const std::size_t p = prev_nonspace(text, i);
          if (p != std::string::npos &&
              (text[p] == ')' || text[p] == '}')) {
            return i;
          }
          const std::size_t close = match_braces(text, i);
          if (close == std::string::npos) return std::string::npos;
          i = close;
        }
      }
      return std::string::npos;
    }
    if (c == '-' && pos + 1 < text.size() && text[pos + 1] == '>') {
      pos += 2;  // trailing return type
      continue;
    }
    if (c == '<') {
      pos = match_angle_brackets(text, pos);
      if (pos == std::string::npos) return std::string::npos;
      continue;
    }
    if (c == '&' || c == '*') {
      ++pos;
      continue;
    }
    if (is_ident_char(c)) {
      while (pos < text.size() && is_ident_char(text[pos])) ++pos;
      continue;
    }
    return std::string::npos;
  }
}

/// Calls `fn(offset)` for every word-bounded occurrence of `token`.
template <typename Fn>
void for_each_token(const std::string& text, const std::string& token,
                    Fn&& fn) {
  std::size_t pos = 0;
  while ((pos = text.find(token, pos)) != std::string::npos) {
    if (token_at(text, pos, token.size())) fn(pos);
    pos += token.size();
  }
}

bool contains_token(const std::string& text, const std::string& token) {
  bool found = false;
  for_each_token(text, token, [&](std::size_t) { found = true; });
  return found;
}

/// True when some word-bounded occurrence of `token` is an operand of a
/// comparison operator (<, >, <=, >=, ==, !=) — directly, or through a
/// member chain like `msg.config.epno`. `->`, `<<`, and `>>` are excluded,
/// as is plain assignment.
bool compared_in(const std::string& body, const std::string& token) {
  bool found = false;
  for_each_token(body, token, [&](std::size_t pos) {
    if (found) return;
    // Forward: `epno < x`, `epno != x`, ...
    const std::size_t k = skip_ws(body, pos + token.size());
    if (k < body.size()) {
      const char c = body[k];
      const char d = k + 1 < body.size() ? body[k + 1] : '\0';
      if ((c == '<' && d != '<') || (c == '>' && d != '>') ||
          ((c == '=' || c == '!') && d == '=')) {
        found = true;
        return;
      }
    }
    // Backward: `x < msg.config.epno` — walk back over the member chain
    // first, then look at the operator.
    std::size_t q = prev_nonspace(body, pos);
    while (q != std::string::npos && body[q] == '.') {
      q = prev_nonspace(body, q);
      std::size_t start = 0;
      if (ident_ending_at(body, q, start).empty()) {
        q = std::string::npos;
        break;
      }
      q = start > 0 ? prev_nonspace(body, start) : std::string::npos;
    }
    if (q != std::string::npos) {
      const char c = body[q];
      const char b = q > 0 ? body[q - 1] : '\0';
      if ((c == '<' && b != '<') || (c == '>' && b != '-' && b != '>') ||
          (c == '=' && (b == '=' || b == '!' || b == '<' || b == '>'))) {
        found = true;
      }
    }
  });
  return found;
}

// ------------------------------------------------------ wire-header parse

/// Parses the ordered data members of a struct body [open+1, close). The
/// grammar is the wire-struct subset: plain members with optional default
/// initializers (`= v` or `{v}`), member functions (skipped), and
/// static/using/friend members (skipped).
std::vector<std::string> parse_struct_fields(const std::string& text,
                                             std::size_t open,
                                             std::size_t close) {
  std::vector<std::string> fields;
  std::size_t i = open + 1;
  while (i < close) {
    i = skip_ws(text, i);
    if (i >= close) break;
    if (text[i] == ';') {
      ++i;
      continue;
    }
    // One member declaration.
    bool callable = false;  // saw a parameter list at member top level
    bool skip = false;      // static / using / friend member
    std::string last_ident;
    std::string name;
    bool done = false;
    while (i < close && !done) {
      const char c = text[i];
      if (is_ident_char(c)) {
        const std::size_t b = i;
        while (i < close && is_ident_char(text[i])) ++i;
        const std::string tok = text.substr(b, i - b);
        if (tok == "static" || tok == "using" || tok == "friend") skip = true;
        last_ident = tok;
        continue;
      }
      switch (c) {
        case '<': {
          const std::size_t e = match_angle_brackets(text, i);
          i = e == std::string::npos ? i + 1 : e;
          break;
        }
        case '(': {
          callable = true;
          const std::size_t e = match_parens(text, i);
          i = e == std::string::npos ? i + 1 : e;
          break;
        }
        case '=':
          if (name.empty()) name = last_ident;
          ++i;
          break;
        case '{': {
          const std::size_t e = match_braces(text, i);
          if (callable) {
            // Member function definition: its body ends the member.
            i = e == std::string::npos ? close : e + 1;
            done = true;
          } else {
            // Brace initializer: `Timestamp ts{};`.
            if (name.empty()) name = last_ident;
            i = e == std::string::npos ? i + 1 : e + 1;
          }
          break;
        }
        case ';':
          if (name.empty()) name = last_ident;
          ++i;
          done = true;
          break;
        default:
          ++i;
          break;
      }
    }
    if (!skip && !callable && !name.empty()) fields.push_back(name);
  }
  return fields;
}

}  // namespace

WireHeader parse_wire_header(const std::string& stripped,
                             const std::string& variant) {
  WireHeader header;

  for_each_token(stripped, "struct", [&](std::size_t pos) {
    std::size_t cursor = pos + 6;
    cursor = skip_ws(stripped, cursor);
    const std::size_t name_begin = cursor;
    while (cursor < stripped.size() && is_ident_char(stripped[cursor])) {
      ++cursor;
    }
    if (cursor == name_begin) return;
    const std::string name = stripped.substr(name_begin, cursor - name_begin);
    cursor = skip_ws(stripped, cursor);
    if (cursor >= stripped.size() || stripped[cursor] != '{') {
      return;  // forward declaration or `struct X` in a parameter
    }
    const std::size_t close = match_braces(stripped, cursor);
    if (close == std::string::npos) return;
    WireStruct ws;
    ws.name = name;
    ws.line = line_of_offset(stripped, pos);
    ws.fields = parse_struct_fields(stripped, cursor, close);
    header.structs.push_back(std::move(ws));
  });

  // `using <variant> = std::variant<A, B, ...>;`
  for_each_token(stripped, "using", [&](std::size_t pos) {
    if (header.variant_line != 0) return;
    std::size_t cursor = pos + 5;
    const std::string alias = analysis::read_identifier(stripped, cursor);
    if (alias != variant) return;
    cursor = skip_ws(stripped, cursor);
    if (cursor >= stripped.size() || stripped[cursor] != '=') return;
    const std::size_t open = stripped.find('<', cursor);
    if (open == std::string::npos) return;
    const std::size_t end = match_angle_brackets(stripped, open);
    if (end == std::string::npos) return;
    header.variant_line = line_of_offset(stripped, pos);
    // Split the argument list on top-level commas; keep each item's last
    // identifier (drops `kv::` qualifiers).
    int depth = 0;
    std::string item;
    const auto flush = [&]() {
      std::string last;
      std::string cur;
      for (const char c : item) {
        if (is_ident_char(c)) {
          cur += c;
        } else {
          if (!cur.empty()) last = cur;
          cur.clear();
        }
      }
      if (!cur.empty()) last = cur;
      if (!last.empty()) header.alternatives.push_back(last);
      item.clear();
    };
    for (std::size_t i = open + 1; i + 1 < end; ++i) {
      const char c = stripped[i];
      if (c == '<' || c == '(') ++depth;
      if (c == '>' || c == ')') --depth;
      if (c == ',' && depth == 0) {
        flush();
        continue;
      }
      item += c;
    }
    flush();
  });

  return header;
}

const std::vector<std::string>& rule_names() {
  static const std::vector<std::string> kRules = {
      "append-only-evolution", "handler-exhaustive", "epoch-guard",
      "dedup-before-apply", "span-propagation"};
  return kRules;
}

namespace {

/// One scanned source file of a component (or the wire header).
struct ScannedFile {
  std::string rel;
  std::string stripped;
  Annotations ann;
};

/// A located function definition inside a component's files.
struct FunctionBody {
  bool found = false;
  std::string file;       // rel path holding the definition
  std::size_t line = 0;   // line of the function name token
  std::string body;       // text between the braces (inclusive)
};

FunctionBody find_function_body(const std::vector<ScannedFile>& files,
                                const std::string& name) {
  FunctionBody out;
  for (const ScannedFile& f : files) {
    for_each_token(f.stripped, name, [&](std::size_t pos) {
      if (out.found) return;
      const std::size_t after = skip_ws(f.stripped, pos + name.size());
      if (after >= f.stripped.size() || f.stripped[after] != '(') return;
      const std::size_t params = match_parens(f.stripped, after);
      if (params == std::string::npos) return;
      const std::size_t open = body_open_after(f.stripped, params);
      if (open == std::string::npos) return;
      const std::size_t close = match_braces(f.stripped, open);
      if (close == std::string::npos) return;
      out.found = true;
      out.file = f.rel;
      out.line = line_of_offset(f.stripped, pos);
      out.body = f.stripped.substr(open, close - open + 1);
    });
    if (out.found) break;
  }
  return out;
}

struct TreeContext {
  const Manifest& manifest;
  const Options& options;
  std::map<std::string, Annotations>& annotations;  // rel path -> ann
  std::vector<Finding>& findings;

  void add(const std::string& file, std::size_t line, const std::string& rule,
           const std::string& message) const {
    if (options.disabled_rules.count(rule) > 0) return;
    const auto it = annotations.find(file);
    if (it != annotations.end() && allowed(it->second, line, rule)) return;
    findings.push_back({file, line, rule, message});
  }
};

std::string join_fields(const std::vector<std::string>& fields,
                        std::size_t from) {
  std::string out;
  for (std::size_t i = from; i < fields.size(); ++i) {
    if (!out.empty()) out += ", ";
    out += "`" + fields[i] + "`";
  }
  return out;
}

void check_append_only(const TreeContext& ctx, const WireHeader& header,
                       const std::string& wire_rel) {
  const Manifest& m = ctx.manifest;
  std::map<std::string, const WireStruct*> by_name;
  for (const WireStruct& s : header.structs) by_name[s.name] = &s;

  std::map<std::string, const MessageSpec*> spec_by_name;
  for (const MessageSpec& spec : m.messages) spec_by_name[spec.name] = &spec;

  for (const MessageSpec& spec : m.messages) {
    const auto it = by_name.find(spec.name);
    if (it == by_name.end()) {
      ctx.add(m.path, spec.line, "append-only-evolution",
              "message `" + spec.name +
                  "` is recorded here but absent from the wire header — "
                  "removing a wire struct breaks recorded traces; if "
                  "intentional, delete its manifest entry in the same diff");
      continue;
    }
    const WireStruct& s = *it->second;
    const std::size_t n = std::min(spec.fields.size(), s.fields.size());
    bool mismatched = false;
    for (std::size_t i = 0; i < n; ++i) {
      if (spec.fields[i] != s.fields[i]) {
        ctx.add(wire_rel, s.line, "append-only-evolution",
                "field #" + std::to_string(i + 1) + " of `" + spec.name +
                    "` is `" + s.fields[i] + "` but the manifest records `" +
                    spec.fields[i] +
                    "`: wire fields evolve append-only (no reorder, "
                    "removal, or mid-struct insertion)");
        mismatched = true;
        break;
      }
    }
    if (mismatched) continue;
    if (spec.fields.size() > s.fields.size()) {
      ctx.add(wire_rel, s.line, "append-only-evolution",
              "the manifest records " + std::to_string(spec.fields.size()) +
                  " fields for `" + spec.name + "` but the struct has only " +
                  std::to_string(s.fields.size()) +
                  " — wire fields cannot be removed");
      continue;
    }
    if (s.fields.size() > spec.fields.size()) {
      ctx.add(wire_rel, s.line, "append-only-evolution",
              "struct `" + spec.name + "` has unrecorded appended field(s) " +
                  join_fields(s.fields, spec.fields.size()) +
                  " — record them in the protocol manifest in the same "
                  "diff");
    }
    if (spec.versioned) {
      if (spec.fields.empty() ||
          spec.fields.back().find("version") == std::string::npos) {
        ctx.add(m.path, spec.line, "append-only-evolution",
                "versioned message `" + spec.name +
                    "` must record its version field last");
      } else if (!s.fields.empty() && s.fields.back() != spec.fields.back()) {
        ctx.add(wire_rel, s.line, "append-only-evolution",
                "versioned message `" + spec.name + "` must keep `" +
                    spec.fields.back() +
                    "` as its last field (receivers drop "
                    "frames from the future by that field)");
      }
    }
  }

  // Every struct in the wire header must be recorded.
  for (const WireStruct& s : header.structs) {
    if (spec_by_name.count(s.name) == 0) {
      ctx.add(wire_rel, s.line, "append-only-evolution",
              "struct `" + s.name +
                  "` is not recorded in the protocol manifest — every wire "
                  "struct must be");
    }
  }

  // The variant alternative order is the wire tag order: append-only too.
  if (header.variant_line == 0) {
    ctx.add(wire_rel, 0, "append-only-evolution",
            "variant `" + m.wire.variant + "` not found in the wire header");
    return;
  }
  const std::vector<std::string>& want = m.wire.alternatives;
  const std::vector<std::string>& have = header.alternatives;
  const std::size_t n = std::min(want.size(), have.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (want[i] != have[i]) {
      ctx.add(wire_rel, header.variant_line, "append-only-evolution",
              "variant alternative #" + std::to_string(i + 1) + " is `" +
                  have[i] + "` but the manifest records `" + want[i] +
                  "`: the tag order evolves append-only");
      return;
    }
  }
  if (want.size() > have.size()) {
    ctx.add(wire_rel, header.variant_line, "append-only-evolution",
            "the manifest records " + std::to_string(want.size()) +
                " variant alternatives but the variant has only " +
                std::to_string(have.size()) +
                " — alternatives cannot be removed");
  } else if (have.size() > want.size()) {
    ctx.add(wire_rel, header.variant_line, "append-only-evolution",
            "variant has unrecorded appended alternative(s) " +
                join_fields(have, want.size()) +
                " — record them in the protocol manifest in the same diff");
  }
}

void check_component(const TreeContext& ctx, const ComponentSpec& comp,
                     const std::vector<ScannedFile>& files,
                     const WireHeader& header) {
  const Manifest& m = ctx.manifest;

  std::vector<const MessageSpec*> routed;
  for (const MessageSpec& spec : m.messages) {
    if (spec.to == comp.name) routed.push_back(&spec);
  }

  if (comp.dispatch.empty()) {
    // A component with no wire inbox must have nothing routed to it.
    for (const MessageSpec* spec : routed) {
      ctx.add(m.path, spec->line, "handler-exhaustive",
              "message `" + spec->name + "` routes to `" + comp.name +
                  "`, which declares no dispatch function");
    }
    return;
  }

  const FunctionBody dispatch = find_function_body(files, comp.dispatch);
  if (!dispatch.found) {
    const std::string anchor = files.empty() ? m.path : files.front().rel;
    ctx.add(anchor, 0, "handler-exhaustive",
            "component `" + comp.name + "`: no body found for dispatch "
            "function `" + comp.dispatch + "`");
    return;
  }

  for (const MessageSpec* spec : routed) {
    const FunctionBody handler = find_function_body(files, spec->handler);
    if (!handler.found) {
      ctx.add(dispatch.file, dispatch.line, "handler-exhaustive",
              "component `" + comp.name + "`: no handler body for `" +
                  spec->name + "` (manifest names `" + spec->handler + "`)");
      continue;
    }
    if (!contains_token(dispatch.body, spec->name)) {
      ctx.add(dispatch.file, dispatch.line, "handler-exhaustive",
              "dispatch `" + comp.dispatch + "` does not mention `" +
                  spec->name + "` — the alternative is silently unrouted");
    }
    if (spec->handler != comp.dispatch &&
        !contains_token(dispatch.body, spec->handler)) {
      ctx.add(dispatch.file, dispatch.line, "handler-exhaustive",
              "dispatch `" + comp.dispatch + "` does not call `" +
                  spec->handler + "` for `" + spec->name + "`");
    }

    // -------------------------------------------------------- epoch-guard
    if (!spec->epoch.empty() && !compared_in(handler.body, spec->epoch)) {
      ctx.add(handler.file, handler.line, "epoch-guard",
              "handler `" + spec->handler + "` for `" + spec->name +
                  "` never compares its generation field `" + spec->epoch +
                  "` — a stale or reordered delivery mutates state "
                  "unfenced");
    }

    // -------------------------------------------------- dedup-before-apply
    if (spec->at_least_once) {
      if (spec->dedup.empty()) {
        ctx.add(m.path, spec->line, "dedup-before-apply",
                "at-least-once message `" + spec->name +
                    "` declares no `dedup` structure");
      } else if (!contains_token(handler.body, spec->dedup)) {
        ctx.add(handler.file, handler.line, "dedup-before-apply",
                "handler `" + spec->handler + "` for at-least-once `" +
                    spec->name + "` never consults dedup structure `" +
                    spec->dedup + "` — a retransmit applies twice");
      }
    }

    // --------------------------------------------------- span-propagation
    if (spec->span && !contains_token(handler.body, "span")) {
      ctx.add(handler.file, handler.line, "span-propagation",
              "handler `" + spec->handler + "` for `" + spec->name +
                  "` drops the message's span — causal tracing must "
                  "survive every protocol hop");
    }

    // Versioned: the handler is the drop-from-the-future point.
    if (spec->versioned && !spec->fields.empty() &&
        !compared_in(handler.body, spec->fields.back())) {
      ctx.add(handler.file, handler.line, "append-only-evolution",
              "handler `" + spec->handler + "` for versioned `" +
                  spec->name + "` never compares `" + spec->fields.back() +
                  "` — frames from a future version must be dropped, "
                  "never half-decoded");
    }
  }

  // No dispatch may handle a type the manifest routes elsewhere (or not at
  // all): a handler the manifest does not know about is protocol drift.
  std::map<std::string, const MessageSpec*> spec_by_name;
  for (const MessageSpec& spec : m.messages) spec_by_name[spec.name] = &spec;
  for (const std::string& alt : header.alternatives) {
    const auto it = spec_by_name.find(alt);
    const std::string to = it == spec_by_name.end() ? "" : it->second->to;
    if (to == comp.name) continue;
    if (contains_token(dispatch.body, alt)) {
      ctx.add(dispatch.file, dispatch.line, "handler-exhaustive",
              "dispatch `" + comp.dispatch + "` of `" + comp.name +
                  "` handles `" + alt + "` but the manifest routes it to `" +
                  (to.empty() ? std::string("no component") : to) + "`");
    }
  }
}

void check_span_fields(const TreeContext& ctx, const WireHeader& header,
                       const std::string& wire_rel) {
  std::map<std::string, const WireStruct*> by_name;
  for (const WireStruct& s : header.structs) by_name[s.name] = &s;
  for (const MessageSpec& spec : ctx.manifest.messages) {
    if (!spec.span) continue;
    const auto it = by_name.find(spec.name);
    if (it == by_name.end()) continue;  // reported by append-only already
    const WireStruct& s = *it->second;
    if (std::find(s.fields.begin(), s.fields.end(), "span") ==
        s.fields.end()) {
      ctx.add(wire_rel, s.line, "span-propagation",
              "message `" + spec.name +
                  "` is marked span-carrying but has no `span` field");
    }
  }
}

void check_routing_is_in_variant(const TreeContext& ctx,
                                 const WireHeader& header) {
  // A routed message must actually travel: it has to be an alternative of
  // the wire variant, and every alternative must be routed somewhere.
  std::map<std::string, const MessageSpec*> spec_by_name;
  for (const MessageSpec& spec : ctx.manifest.messages) {
    spec_by_name[spec.name] = &spec;
  }
  for (const MessageSpec& spec : ctx.manifest.messages) {
    if (spec.to.empty()) continue;
    if (std::find(header.alternatives.begin(), header.alternatives.end(),
                  spec.name) == header.alternatives.end()) {
      ctx.add(ctx.manifest.path, spec.line, "handler-exhaustive",
              "message `" + spec.name +
                  "` is routed but is not an alternative of the wire "
                  "variant — it can never be delivered");
    }
  }
  for (const std::string& alt : header.alternatives) {
    const auto it = spec_by_name.find(alt);
    if (it == spec_by_name.end() || it->second->to.empty()) {
      ctx.add(ctx.manifest.path, 0, "handler-exhaustive",
              "variant alternative `" + alt +
                  "` has no routed handler in the manifest");
    }
  }
}

}  // namespace

std::vector<Finding> analyze_tree(const std::string& root,
                                  const Manifest& manifest,
                                  const Options& options) {
  std::vector<Finding> findings;
  std::map<std::string, Annotations> annotations;
  const TreeContext ctx{manifest, options, annotations, findings};

  const auto load = [&](const std::string& rel, ScannedFile& out) {
    const std::string full = root.empty() ? rel : root + "/" + rel;
    std::string source;
    if (!analysis::read_file(full, source)) return false;
    out.rel = rel;
    out.ann = analysis::scan_annotations(kTool, rel, split_lines(source));
    out.stripped = strip_comments_and_literals(source);
    annotations[rel] = out.ann;
    findings.insert(findings.end(), out.ann.findings.begin(),
                    out.ann.findings.end());
    return true;
  };

  ScannedFile wire;
  if (!load(manifest.wire.header, wire)) {
    findings.push_back({manifest.wire.header, 0, "io",
                        "cannot read the wire header"});
    return findings;
  }
  const WireHeader header =
      parse_wire_header(wire.stripped, manifest.wire.variant);

  check_append_only(ctx, header, wire.rel);
  check_span_fields(ctx, header, wire.rel);
  check_routing_is_in_variant(ctx, header);

  for (const ComponentSpec& comp : manifest.components) {
    std::vector<ScannedFile> files;
    for (const char* ext : {".hpp", ".h", ".cpp", ".cc"}) {
      ScannedFile f;
      if (load(comp.path + ext, f)) files.push_back(std::move(f));
    }
    if (files.empty()) {
      findings.push_back({manifest.path, comp.line, "io",
                          "component `" + comp.name + "`: no sources at `" +
                              comp.path + "`.{hpp,h,cpp,cc}"});
      continue;
    }
    check_component(ctx, comp, files, header);
  }

  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              return a.rule < b.rule;
            });
  return findings;
}

std::string dump_wire(const WireHeader& header, const std::string& variant) {
  std::vector<const WireStruct*> sorted;
  for (const WireStruct& s : header.structs) sorted.push_back(&s);
  std::sort(sorted.begin(), sorted.end(),
            [](const WireStruct* a, const WireStruct* b) {
              return a->name < b->name;
            });
  std::string out;
  for (const WireStruct* s : sorted) {
    out += s->name + ":";
    for (const std::string& f : s->fields) out += " " + f;
    out += "\n";
  }
  out += "variant " + variant + ":";
  for (const std::string& a : header.alternatives) out += " " + a;
  out += "\n";
  return out;
}

std::string dump_manifest(const Manifest& manifest) {
  std::vector<const MessageSpec*> sorted;
  for (const MessageSpec& s : manifest.messages) sorted.push_back(&s);
  std::sort(sorted.begin(), sorted.end(),
            [](const MessageSpec* a, const MessageSpec* b) {
              return a->name < b->name;
            });
  std::string out;
  for (const MessageSpec* s : sorted) {
    out += s->name + ":";
    for (const std::string& f : s->fields) out += " " + f;
    out += "\n";
  }
  out += "variant " + manifest.wire.variant + ":";
  for (const std::string& a : manifest.wire.alternatives) out += " " + a;
  out += "\n";
  return out;
}

std::vector<analysis::Suppression> file_suppressions(const std::string& path) {
  std::string source;
  if (!analysis::read_file(path, source)) return {};
  return analysis::scan_annotations(kTool, path, split_lines(source))
      .suppressions;
}

std::string format_finding(const Finding& finding) {
  return analysis::format_finding(finding);
}

}  // namespace qopt::proto
