// qopt-proto — wire-protocol conformance analyzer.
//
// A token-level source scanner (no LLVM dependency, shared tools/analysis
// framework) that checks the tree against the committed protocol manifest
// docs/PROTOCOL.toml: every message struct in src/kv/wire.hpp, its ordered
// field list and evolution flags, and the handler entry point that consumes
// it in each component. Unlike qopt_lint/qopt_perf the scan is
// manifest-driven, not directory-driven: the files to inspect (the wire
// header and each component's sources) are named by the manifest itself.
//
//   append-only-evolution  the committed field list must be a *prefix* of
//                          the struct's current fields: reordering, removal,
//                          or mid-struct insertion fails; appended fields
//                          must be recorded in the manifest in the same
//                          diff. The committed std::variant alternative
//                          list pins the tag order identically. Versioned
//                          messages must keep their version field last and
//                          their handler must compare it (drop-from-the-
//                          future, never half-adopt).
//   handler-exhaustive     every message routed to a component has a
//                          token-level-located handler *body* in that
//                          component's files; the component's dispatch
//                          function mentions every routed message type and
//                          handler, and handles no type the manifest does
//                          not route to it.
//   epoch-guard            the handler of a message with an `epoch` key
//                          compares that generation field (epno / cfno /
//                          round) — the half-adopted-config bug class.
//   dedup-before-apply     the handler of an `at_least_once` message
//                          consults the declared dedup structure before
//                          apply; an at-least-once message with no declared
//                          dedup structure is itself a finding.
//   span-propagation       a `span = true` message carries an
//                          obs::SpanContext field named `span` and its
//                          handler forwards it.
//   bare-allow             a `// qopt-proto: allow(<rule>)` suppression
//                          without a justification (shared grammar).
//
// Suppression: `// qopt-proto: allow(<rule>) <justification>` disables
// <rule> on its own line and the next line of the *source* file a finding
// anchors to (wire header or component file). Manifest-anchored findings
// (rule `manifest`, unrecorded structs) cannot be suppressed: the manifest
// must be fixed, not excused.
#pragma once

#include <cstddef>
#include <set>
#include <string>
#include <vector>

#include "analysis/source.hpp"
#include "analysis/suppress.hpp"

namespace qopt::proto {

using Finding = qopt::analysis::Finding;

// ------------------------------------------------------------- manifest

/// The `[wire]` section: where the protocol lives.
struct WireSpec {
  std::string header;   // repo-relative path of the wire header
  std::string variant;  // name of the message variant alias ("Message")
  std::vector<std::string> alternatives;  // committed tag order
};

/// One `[components.<name>]` section.
struct ComponentSpec {
  std::string name;
  std::string path;      // repo-relative file-stem prefix (.hpp/.cpp pair)
  std::string dispatch;  // inbound dispatch function; empty = no wire inbox
  std::size_t line = 0;  // manifest line of the section header
};

/// One `[messages.<name>]` section.
struct MessageSpec {
  std::string name;
  std::string from;     // sending component (documentation)
  std::string to;       // consuming component; empty = payload helper
  std::string handler;  // handler function in the consuming component
  std::vector<std::string> fields;  // committed ordered field list
  bool versioned = false;
  bool at_least_once = false;
  bool span = false;
  std::string epoch;  // generation field the handler must compare
  std::string dedup;  // dedup structure the handler must consult
  std::size_t line = 0;  // manifest line of the section header
};

struct Manifest {
  std::string path;
  WireSpec wire;
  std::vector<ComponentSpec> components;
  std::vector<MessageSpec> messages;
  std::vector<Finding> errors;  // rule "manifest"
};

/// Parses the TOML subset used by docs/PROTOCOL.toml: `[wire]`,
/// `[components.<name>]`, and `[messages.<name>]` sections with string,
/// boolean, and string-array values. Errors land in `errors`.
Manifest parse_manifest(const std::string& path, const std::string& text);

/// Reads and parses a manifest file; a read failure is a `manifest` error.
Manifest load_manifest(const std::string& path);

// ---------------------------------------------------------- wire header

/// One message struct parsed out of the wire header.
struct WireStruct {
  std::string name;
  std::size_t line = 0;  // line of the struct keyword
  std::vector<std::string> fields;  // declaration order
};

/// Token-level parse of the wire header: every `struct` definition with its
/// ordered data members (member functions, `using`, and `static` members
/// are skipped), plus the message variant's alternative list.
struct WireHeader {
  std::vector<WireStruct> structs;
  std::vector<std::string> alternatives;  // actual variant order
  std::size_t variant_line = 0;           // 0 when the variant is absent
};

/// Parses a comment/literal-stripped wire header. `variant` names the
/// `using <variant> = std::variant<...>` alias to read the tag order from.
WireHeader parse_wire_header(const std::string& stripped,
                             const std::string& variant);

// ---------------------------------------------------------------- rules

/// The proto rules in report order (excludes the shared `bare-allow`).
const std::vector<std::string>& rule_names();

struct Options {
  /// Rules to skip — the delete-one-rule negative test proves each rule is
  /// load-bearing by disabling it and watching its fixture go clean.
  std::set<std::string> disabled_rules;
};

/// Runs the whole conformance check: loads the wire header and every
/// component's sources under `root` and checks them against the manifest.
std::vector<Finding> analyze_tree(const std::string& root,
                                  const Manifest& manifest,
                                  const Options& options = {});

/// Normalized `Name: field field ...` inventory of the *current* wire
/// header (one line per struct, sorted; the variant order last). CI diffs
/// this against dump_manifest() — append-only evolution means the two are
/// identical whenever the manifest is in sync.
std::string dump_wire(const WireHeader& header, const std::string& variant);

/// The same normalized inventory generated from the committed manifest.
std::string dump_manifest(const Manifest& manifest);

/// Justified suppressions found in a file (tool tag "qopt-proto").
std::vector<analysis::Suppression> file_suppressions(const std::string& path);

/// One "file:line: [rule] message" diagnostic line.
std::string format_finding(const Finding& finding);

}  // namespace qopt::proto
