// qopt_proto CLI — see proto.hpp for the rule set.
//
// Usage:
//   qopt_proto --manifest docs/PROTOCOL.toml [--root <dir>]
//              [--suppressions] [--list-rules]
//              [--dump-wire] [--dump-manifest]
//
// Checks the tree named by the manifest (the wire header and every
// component's sources, resolved relative to --root, default ".") against
// the committed protocol record and prints one finding per line. Exit 1
// on any finding, 2 on usage/manifest error.
//
// --dump-wire prints a normalized `Name: field field ...` inventory of the
// *current* wire header; --dump-manifest prints the same inventory from the
// committed manifest. CI diffs the two — append-only evolution means they
// are identical whenever the manifest is in sync.
#include <cstdio>
#include <string>
#include <vector>

#include "analysis/suppress.hpp"
#include "qopt_proto/proto.hpp"

namespace {

constexpr const char* kUsage =
    "usage: qopt_proto --manifest <file> [--root <dir>]\n"
    "                  [--suppressions] [--list-rules]\n"
    "                  [--dump-wire] [--dump-manifest]\n";

}  // namespace

int main(int argc, char** argv) {
  std::string manifest_path;
  std::string root = ".";
  bool show_suppressions = false;
  bool dump_wire = false;
  bool dump_manifest = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* flag) -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "qopt-proto: %s needs a value\n%s", flag,
                     kUsage);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--manifest") {
      manifest_path = next("--manifest");
    } else if (arg == "--root") {
      root = next("--root");
    } else if (arg == "--suppressions") {
      show_suppressions = true;
    } else if (arg == "--dump-wire") {
      dump_wire = true;
    } else if (arg == "--dump-manifest") {
      dump_manifest = true;
    } else if (arg == "--list-rules") {
      std::printf(
          "append-only-evolution  committed field/alternative lists must be "
          "a prefix of the\n"
          "                       current ones; versioned messages keep the "
          "version field\n"
          "                       last and their handler compares it\n"
          "handler-exhaustive     every routed message has a located "
          "handler body and its\n"
          "                       dispatch mentions it; no dispatch handles "
          "an unrouted type\n"
          "epoch-guard            handlers of epoch-carrying messages "
          "compare the generation\n"
          "                       field before mutating state\n"
          "dedup-before-apply     handlers of at-least-once messages "
          "consult the declared\n"
          "                       dedup structure\n"
          "span-propagation       span-carrying messages have a `span` "
          "field and their\n"
          "                       handler forwards it\n"
          "bare-allow             allow() suppression without a "
          "justification\n");
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      std::printf("%s", kUsage);
      return 0;
    } else {
      std::fprintf(stderr, "qopt-proto: unknown argument `%s`\n%s",
                   arg.c_str(), kUsage);
      return 2;
    }
  }
  if (manifest_path.empty()) {
    std::fprintf(stderr, "%s", kUsage);
    return 2;
  }

  const qopt::proto::Manifest manifest =
      qopt::proto::load_manifest(manifest_path);
  if (!manifest.errors.empty()) {
    for (const qopt::proto::Finding& e : manifest.errors) {
      std::fprintf(stderr, "%s\n", qopt::proto::format_finding(e).c_str());
    }
    std::fprintf(stderr, "qopt-proto: manifest %s is malformed\n",
                 manifest_path.c_str());
    return 2;
  }

  if (dump_manifest) {
    std::printf("%s", qopt::proto::dump_manifest(manifest).c_str());
    return 0;
  }
  if (dump_wire) {
    const std::string full = root.empty() || root == "."
                                 ? manifest.wire.header
                                 : root + "/" + manifest.wire.header;
    std::string source;
    if (!qopt::analysis::read_file(full, source)) {
      std::fprintf(stderr, "qopt-proto: cannot read %s\n", full.c_str());
      return 2;
    }
    const qopt::proto::WireHeader header = qopt::proto::parse_wire_header(
        qopt::analysis::strip_comments_and_literals(source),
        manifest.wire.variant);
    std::printf("%s",
                qopt::proto::dump_wire(header, manifest.wire.variant)
                    .c_str());
    return 0;
  }

  const std::vector<qopt::proto::Finding> findings =
      qopt::proto::analyze_tree(root == "." ? std::string{} : root, manifest);

  if (show_suppressions) {
    std::vector<std::string> files;
    files.push_back(manifest.wire.header);
    for (const qopt::proto::ComponentSpec& c : manifest.components) {
      for (const char* ext : {".hpp", ".h", ".cpp", ".cc"}) {
        files.push_back(c.path + ext);
      }
    }
    for (const std::string& rel : files) {
      const std::string full =
          root.empty() || root == "." ? rel : root + "/" + rel;
      for (qopt::analysis::Suppression s :
           qopt::proto::file_suppressions(full)) {
        s.file = rel;
        std::printf("%s\n", qopt::analysis::format_suppression(s).c_str());
      }
    }
  }

  for (const qopt::proto::Finding& finding : findings) {
    std::printf("%s\n", qopt::proto::format_finding(finding).c_str());
  }
  if (!findings.empty()) {
    std::fprintf(stderr, "qopt-proto: %zu finding(s)\n", findings.size());
    return 1;
  }
  std::fprintf(stderr, "qopt-proto: protocol conformance ok (%zu message(s),"
               " %zu component(s))\n",
               manifest.messages.size(), manifest.components.size());
  return 0;
}
