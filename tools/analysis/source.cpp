#include "analysis/source.hpp"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace qopt::analysis {

std::string format_finding(const Finding& finding) {
  return finding.file + ":" + std::to_string(finding.line) + ": [" +
         finding.rule + "] " + finding.message;
}

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

namespace {

/// True when the identifier characters ending at `quote` (exclusive) form a
/// raw-string prefix: R, uR, u8R, UR, or LR — and nothing longer. `FOOR"x"`
/// is an identifier next to a plain string, not a raw literal.
bool is_raw_string_prefix(const std::string& src, std::size_t quote) {
  std::size_t start = quote;
  while (start > 0 && is_ident_char(src[start - 1])) --start;
  const std::string prefix = src.substr(start, quote - start);
  return prefix == "R" || prefix == "uR" || prefix == "u8R" ||
         prefix == "UR" || prefix == "LR";
}

/// For a raw string opening at `quote` (the '"'), finds the '(' that ends
/// the d-char sequence. Returns npos when the text is not a well-formed raw
/// string opener: delimiter longer than 16 chars, or containing characters
/// the grammar forbids (space, parens, backslash, control characters).
std::size_t raw_delimiter_paren(const std::string& src, std::size_t quote) {
  const std::size_t limit = std::min(src.size(), quote + 18);  // " + 16 + (
  for (std::size_t i = quote + 1; i < limit; ++i) {
    const char c = src[i];
    if (c == '(') return i;
    const bool forbidden = c == ')' || c == '\\' || c == '"' ||
                           std::isspace(static_cast<unsigned char>(c)) ||
                           !std::isprint(static_cast<unsigned char>(c));
    if (forbidden) return std::string::npos;
  }
  return std::string::npos;
}

}  // namespace

std::string strip_comments_and_literals(const std::string& src) {
  std::string out = src;
  enum class State { kCode, kLineComment, kBlockComment, kString, kChar };
  State state = State::kCode;
  for (std::size_t i = 0; i < src.size(); ++i) {
    const char c = src[i];
    const char next = i + 1 < src.size() ? src[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          out[i] = out[i + 1] = ' ';
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          out[i] = out[i + 1] = ' ';
          ++i;
        } else if (c == '"') {
          // Raw strings: skip to the matching `)delim"` without escape
          // handling. Only a genuine opener counts — the `"` must follow a
          // raw-string prefix (R/uR/u8R/UR/LR, not a longer identifier) and
          // the d-char sequence must be well-formed (<= 16 legal chars
          // before a '('). Anything else falls through to the ordinary
          // string state; the old unbounded `find('(')` let look-alikes
          // like `R"abc";` blank the rest of the file.
          if (i > 0 && src[i - 1] == 'R' && is_raw_string_prefix(src, i)) {
            const std::size_t paren = raw_delimiter_paren(src, i);
            if (paren != std::string::npos) {
              const std::string delim =
                  ")" + src.substr(i + 1, paren - i - 1) + "\"";
              std::size_t end = src.find(delim, paren);
              if (end == std::string::npos) end = src.size();
              for (std::size_t j = i + 1;
                   j < std::min(end + delim.size() - 1, src.size()); ++j) {
                if (out[j] != '\n') out[j] = ' ';
              }
              i = std::min(end + delim.size() - 1, src.size() - 1);
              break;
            }
          }
          state = State::kString;
        } else if (c == '\'') {
          // Digit separator (8'000), not a char literal: an alnum on both
          // sides. (A prefixed literal like u8'1' would be misread, but the
          // tree has none and the lint rules only ever *ignore* more text.)
          const bool separator =
              i > 0 && std::isalnum(static_cast<unsigned char>(src[i - 1])) &&
              std::isalnum(static_cast<unsigned char>(next));
          if (!separator) state = State::kChar;
        }
        break;
      case State::kLineComment:
        if (c == '\\' && next == '\n') {
          // Line splicing: a backslash immediately before the newline keeps
          // the *next* physical line inside this `//` comment (phase-2 line
          // splicing happens before comment recognition). Blank the
          // backslash, keep the newline for line structure, and stay in the
          // comment state.
          out[i] = ' ';
          ++i;
        } else if (c == '\n') {
          state = State::kCode;
        } else {
          out[i] = ' ';
        }
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          state = State::kCode;
          out[i] = out[i + 1] = ' ';
          ++i;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kString:
        if (c == '\\') {
          out[i] = ' ';
          if (next != '\n') {
            if (i + 1 < out.size()) out[i + 1] = ' ';
            ++i;
          }
        } else if (c == '"') {
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kChar:
        if (c == '\\') {
          out[i] = ' ';
          if (next != '\n') {
            if (i + 1 < out.size()) out[i + 1] = ' ';
            ++i;
          }
        } else if (c == '\'') {
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
    }
  }
  return out;
}

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::string::size_type start = 0;
  while (start <= text.size()) {
    const auto end = text.find('\n', start);
    if (end == std::string::npos) {
      lines.push_back(text.substr(start));
      break;
    }
    lines.push_back(text.substr(start, end - start));
    start = end + 1;
  }
  return lines;
}

std::size_t line_of_offset(const std::string& text, std::size_t offset) {
  return static_cast<std::size_t>(
             std::count(text.begin(),
                        text.begin() + static_cast<std::ptrdiff_t>(
                                           std::min(offset, text.size())),
                        '\n')) +
         1;
}

std::size_t match_angle_brackets(const std::string& text, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < text.size(); ++i) {
    if (text[i] == '<') {
      ++depth;
    } else if (text[i] == '>') {
      if (--depth == 0) return i + 1;
    } else if (text[i] == ';' || text[i] == '{') {
      return std::string::npos;  // not a template argument list after all
    }
  }
  return std::string::npos;
}

std::string read_identifier(const std::string& text, std::size_t& pos) {
  while (pos < text.size() &&
         std::isspace(static_cast<unsigned char>(text[pos]))) {
    ++pos;
  }
  // Skip ref/pointer/const decorations between the template and the name.
  for (;;) {
    if (pos < text.size() && (text[pos] == '&' || text[pos] == '*')) {
      ++pos;
      continue;
    }
    if (text.compare(pos, 5, "const") == 0 &&
        (pos + 5 >= text.size() || !is_ident_char(text[pos + 5]))) {
      pos += 5;
      continue;
    }
    if (pos < text.size() &&
        std::isspace(static_cast<unsigned char>(text[pos]))) {
      ++pos;
      continue;
    }
    break;
  }
  std::string ident;
  while (pos < text.size() && is_ident_char(text[pos])) {
    ident += text[pos++];
  }
  if (!ident.empty() && std::isdigit(static_cast<unsigned char>(ident[0]))) {
    return {};
  }
  return ident;
}

std::vector<std::string> identifiers_in(const std::string& text) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < text.size()) {
    if (is_ident_char(text[i]) &&
        !std::isdigit(static_cast<unsigned char>(text[i]))) {
      std::string ident;
      while (i < text.size() && is_ident_char(text[i])) ident += text[i++];
      out.push_back(ident);
    } else {
      ++i;
    }
  }
  return out;
}

std::vector<std::string> collect_sources(
    const std::vector<std::string>& paths) {
  namespace fs = std::filesystem;
  std::vector<std::string> files;
  for (const std::string& path : paths) {
    std::error_code ec;
    if (fs::is_directory(path, ec)) {
      for (fs::recursive_directory_iterator it(path, ec), end;
           !ec && it != end; it.increment(ec)) {
        if (it->is_directory() &&
            it->path().filename().string().ends_with("_fixtures")) {
          it.disable_recursion_pending();
          continue;
        }
        if (!it->is_regular_file()) continue;
        const std::string ext = it->path().extension().string();
        if (ext == ".cpp" || ext == ".cc" || ext == ".hpp" || ext == ".h") {
          files.push_back(it->path().string());
        }
      }
    } else {
      files.push_back(path);
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());
  return files;
}

bool read_file(const std::string& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  out = buffer.str();
  return true;
}

}  // namespace qopt::analysis
