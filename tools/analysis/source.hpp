// Shared source-handling layer for the project's static-analysis tools
// (qopt_lint, qopt_arch). Everything here is dependency-free (no LLVM):
// a comment/literal-stripping state machine, small token helpers, and the
// file walker that expands directories into the C++ sources to scan.
//
// The tools share one Finding shape so their diagnostics (and suppression
// summaries, see suppress.hpp) render identically.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace qopt::analysis {

/// One diagnostic from any analysis tool.
struct Finding {
  std::string file;
  std::size_t line = 0;  // 1-based
  std::string rule;
  std::string message;
};

/// One "file:line: [rule] message" diagnostic line.
std::string format_finding(const Finding& finding);

/// True for [A-Za-z0-9_].
bool is_ident_char(char c);

/// Replaces comments and string/char literal contents (including raw
/// strings) with spaces, keeping byte offsets and line structure intact, so
/// token/regex rules never match prose or quoted text.
std::string strip_comments_and_literals(const std::string& src);

/// Splits on '\n'; a trailing newline yields a final empty line, matching
/// 1-based line numbering of the underlying buffer.
std::vector<std::string> split_lines(const std::string& text);

/// 1-based line containing byte `offset`.
std::size_t line_of_offset(const std::string& text, std::size_t offset);

/// Matches the `<...>` template argument list starting at `open` (which must
/// point at '<'); returns the offset one past the closing '>', or npos.
std::size_t match_angle_brackets(const std::string& text, std::size_t open);

/// Reads the identifier following `pos`, skipping whitespace and
/// ref/pointer/const decorations; advances `pos`. Returns {} when the next
/// token is not an identifier.
std::string read_identifier(const std::string& text, std::size_t& pos);

/// Every maximal identifier token in `text`, in order of appearance.
std::vector<std::string> identifiers_in(const std::string& text);

/// Expands files and directories (recursively) into the C++ sources to scan
/// (.cpp/.cc/.hpp/.h), sorted and deduplicated; explicit file arguments are
/// taken as-is. Directories named `*_fixtures` are skipped: they hold
/// deliberately-broken inputs for the analysis tools' own tests.
std::vector<std::string> collect_sources(
    const std::vector<std::string>& paths);

/// Reads a whole file; returns false on I/O failure.
bool read_file(const std::string& path, std::string& out);

}  // namespace qopt::analysis
