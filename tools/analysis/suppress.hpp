// Shared justified-suppression machinery for the analysis tools.
//
// Every tool uses the same comment grammar, keyed by its own tag:
//
//   // <tool>: allow(<rule>) <justification>      exempts its own line and
//                                                 the next one; the
//                                                 justification is mandatory
//   // <tool>: quorum(n=N)                        qopt_lint-specific data
//                                                 annotation (replication
//                                                 factor for the
//                                                 quorum-literal rule)
//
// A bare allow (no justification) is itself reported as `bare-allow`, and
// never suppresses anything. Both tools surface their accepted suppressions
// in one unified summary format:
//
//   tool:rule:file:line: justification
#pragma once

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "analysis/source.hpp"

namespace qopt::analysis {

/// One accepted (justified) suppression or data annotation, for the unified
/// `--suppressions` summary.
struct Suppression {
  std::string tool;  // "qopt-lint", "qopt-arch"
  std::string rule;  // suppressed rule, or "quorum" for quorum(n=N)
  std::string file;
  std::size_t line = 0;  // line the annotation is written on
  std::string justification;
};

/// `tool:rule:file:line: justification`.
std::string format_suppression(const Suppression& s);

/// Per-file annotation scan result.
struct Annotations {
  std::map<std::size_t, std::set<std::string>> allows;  // line -> rules
  std::map<std::size_t, int> quorum_n;                  // line -> N
  std::vector<Finding> findings;                        // bare-allow
  std::vector<Suppression> suppressions;                // justified ones
};

/// Scans raw (unstripped) source lines for `<tool>: allow(...)` and
/// `<tool>: quorum(n=N)` annotations. An accepted allow covers its own line
/// and the next, so it can sit on a comment line above the code it exempts.
Annotations scan_annotations(const std::string& tool, const std::string& path,
                             const std::vector<std::string>& lines);

/// True when `rule` is suppressed at `line`.
bool allowed(const Annotations& ann, std::size_t line,
             const std::string& rule);

}  // namespace qopt::analysis
