#include "analysis/suppress.hpp"

#include <regex>

namespace qopt::analysis {

std::string format_suppression(const Suppression& s) {
  return s.tool + ":" + s.rule + ":" + s.file + ":" + std::to_string(s.line) +
         ": " + s.justification;
}

Annotations scan_annotations(const std::string& tool, const std::string& path,
                             const std::vector<std::string>& lines) {
  Annotations out;
  const std::regex allow_re(tool +
                            R"(:\s*allow\(([A-Za-z0-9_-]+)\)(.*))");
  const std::regex quorum_re(tool + R"(:\s*quorum\(n\s*=\s*(\d+)\))");
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const std::size_t lineno = i + 1;
    std::smatch m;
    if (std::regex_search(lines[i], m, allow_re)) {
      std::string justification = m[2].str();
      // Strip leading punctuation/space; anything left is a justification.
      const auto first = justification.find_first_not_of(" \t:—-");
      if (first == std::string::npos) {
        out.findings.push_back(
            {path, lineno, "bare-allow",
             "allow(" + m[1].str() +
                 ") without a justification; write `// " + tool + ": allow(" +
                 m[1].str() + ") <why this is safe>`"});
      } else {
        // The suppression covers its own line and the next one, so it can
        // sit on a comment line above the code it exempts.
        out.allows[lineno].insert(m[1].str());
        out.allows[lineno + 1].insert(m[1].str());
        out.suppressions.push_back(
            {tool, m[1].str(), path, lineno, justification.substr(first)});
      }
    }
    if (std::regex_search(lines[i], m, quorum_re)) {
      out.quorum_n[lineno] = std::stoi(m[1].str());
      out.quorum_n[lineno + 1] = out.quorum_n[lineno];
      out.suppressions.push_back(
          {tool, "quorum", path, lineno, "n=" + m[1].str()});
    }
  }
  return out;
}

bool allowed(const Annotations& ann, std::size_t line,
             const std::string& rule) {
  auto it = ann.allows.find(line);
  return it != ann.allows.end() && it->second.count(rule) > 0;
}

}  // namespace qopt::analysis
