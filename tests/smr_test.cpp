// Tests for the state-machine-replication substrate (MultiPaxos) and the
// replicated configuration state machine — the mechanism the paper cites
// for removing Q-OPT's control-plane single points of failure.
#include <gtest/gtest.h>

#include "kv/types.hpp"
#include "sim/ids.hpp"
#include "sim/simulator.hpp"
#include "smr/group.hpp"
#include "smr/messages.hpp"
#include "smr/replica.hpp"
#include "util/rng.hpp"

namespace qopt::smr {
namespace {

Command make_command(std::uint64_t id, int write_q) {
  Command command;
  command.id = id;
  command.change.is_global = true;
  command.change.global = kv::QuorumConfig::of(5 - write_q + 1, write_q);
  return command;
}

struct GroupFixture : ::testing::Test {
  sim::Simulator sim;
  GroupOptions options;
  std::unique_ptr<Group> group;

  void build(std::uint32_t replicas = 3) {
    options.replicas = replicas;
    group = std::make_unique<Group>(sim, options, nullptr);
  }

  /// All live replicas applied the same sequence of command ids.
  void expect_agreement(std::size_t expected_commands) {
    std::vector<std::uint64_t> reference;
    for (std::uint32_t i = 0; i < group->size(); ++i) {
      const Replica& replica = group->replica(i);
      if (replica.crashed()) continue;
      std::vector<std::uint64_t> ids;
      for (const Command& command : replica.applied_log()) {
        ids.push_back(command.id);
      }
      if (reference.empty()) reference = ids;
      EXPECT_EQ(ids, reference) << "replica " << i << " diverged";
      EXPECT_EQ(ids.size(), expected_commands) << "replica " << i;
    }
  }
};

TEST_F(GroupFixture, SingleCommandReachesAllReplicas) {
  build();
  group->submit(0, make_command(1, 2));
  sim.run(seconds(2));
  expect_agreement(1);
}

TEST_F(GroupFixture, FollowerSubmissionForwardsToLeader) {
  build();
  group->submit(2, make_command(1, 3));  // replica 2 is not the leader
  sim.run(seconds(2));
  expect_agreement(1);
  EXPECT_TRUE(group->replica(0).is_leader());
  EXPECT_FALSE(group->replica(2).is_leader());
}

TEST_F(GroupFixture, ManyCommandsTotallyOrdered) {
  build(5);
  Rng rng(3);
  for (std::uint64_t i = 1; i <= 50; ++i) {
    group->submit(static_cast<std::uint32_t>(rng.next_below(5)),
                  make_command(i, static_cast<int>(rng.next_below(5)) + 1));
    sim.run(sim.now() + milliseconds(20));
  }
  sim.run(sim.now() + seconds(2));
  expect_agreement(50);
}

TEST_F(GroupFixture, LeaderCrashFailsOver) {
  build();
  group->submit(0, make_command(1, 2));
  sim.run(seconds(1));
  group->crash_replica(0);
  sim.run(sim.now() + seconds(1));  // detector fires, replica 1 takes over
  group->submit(1, make_command(2, 4));
  sim.run(sim.now() + seconds(2));
  EXPECT_TRUE(group->replica(1).is_leader());
  // Both survivors hold both commands in order.
  for (std::uint32_t i : {1u, 2u}) {
    ASSERT_EQ(group->replica(i).applied_log().size(), 2u) << "replica " << i;
    EXPECT_EQ(group->replica(i).applied_log()[0].id, 1u);
    EXPECT_EQ(group->replica(i).applied_log()[1].id, 2u);
  }
}

TEST_F(GroupFixture, CommandSubmittedToDeadLeaderEraIsNotLost) {
  build();
  // Crash the leader, then immediately submit through a follower before
  // anyone has been suspected: the forward chases the (dead) leader and is
  // dropped. The group tracks unapplied submissions and re-drives them
  // through the new leader once the failover happens, so the command
  // survives instead of being silently lost.
  group->crash_replica(0);
  group->submit(1, make_command(1, 2));
  sim.run(sim.now() + seconds(2));  // suspicion + takeover + resubmit
  group->submit(1, make_command(2, 3));
  sim.run(sim.now() + seconds(2));
  expect_agreement(2);
  const auto& log = group->replica(1).applied_log();
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log[0].id, 1u);
  EXPECT_EQ(log[1].id, 2u);
  EXPECT_GT(group->resubmissions(), 0u);
  EXPECT_EQ(group->unacked(), 0u);
}

TEST_F(GroupFixture, CommandSubmittedViaCrashingLeaderIsNotLost) {
  build();
  // Leader-path counterpart: the leader proposes the command and dies in
  // the same instant, so every Accept it broadcast is dropped at delivery
  // (sender crashed). Only the group-level resubmit recovers it.
  group->submit(0, make_command(1, 2));
  group->crash_replica(0);
  sim.run(sim.now() + seconds(2));
  group->submit(1, make_command(2, 3));
  sim.run(sim.now() + seconds(2));
  expect_agreement(2);
  const auto& log = group->replica(2).applied_log();
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log[0].id, 1u);
  EXPECT_EQ(log[1].id, 2u);
}

TEST_F(GroupFixture, SubmissionViaCrashedReplicaRoutesToLeader) {
  build();
  group->crash_replica(2);
  sim.run(sim.now() + seconds(1));
  // A submission handed to the crashed replica must not vanish: the group
  // reroutes it through the live leader immediately.
  group->submit(2, make_command(1, 2));
  sim.run(sim.now() + seconds(2));
  expect_agreement(1);
}

TEST_F(GroupFixture, RestartedReplicaCatchesUpAndLeads) {
  build();
  group->submit(0, make_command(1, 2));
  sim.run(seconds(1));
  group->crash_replica(0);
  sim.run(sim.now() + seconds(1));  // replica 1 takes over
  group->submit(1, make_command(2, 3));
  sim.run(sim.now() + seconds(1));
  // Restart: replica 0 rejoins with its durable acceptor state, retakes
  // leadership (lowest non-suspected), and phase 1 recovers every slot it
  // missed while down.
  group->restart_replica(0);
  sim.run(sim.now() + seconds(2));
  group->submit(0, make_command(3, 4));
  sim.run(sim.now() + seconds(2));
  EXPECT_FALSE(group->replica(0).crashed());
  EXPECT_TRUE(group->replica(0).is_leader());
  expect_agreement(3);
}

TEST_F(GroupFixture, NeverLedReplicaRestartsWithStaleBallotAndStillLeads) {
  // Replica 0 crashes before ever leading, so its durable term lags the
  // group: after restart its first Prepare is out-bid by the failover
  // leader's promises. The PrepareNack path must re-prepare with a higher
  // ballot instead of waiting forever on a majority that cannot form.
  build();
  group->crash_replica(0);
  sim.run(seconds(1));
  group->submit(1, make_command(1, 2));  // replica 1 leads at a real ballot
  sim.run(sim.now() + seconds(1));
  group->restart_replica(0);
  sim.run(sim.now() + seconds(2));
  EXPECT_TRUE(group->replica(0).is_leader())
      << "restarted replica wedged in phase 1";
  EXPECT_GE(group->replica(0).stats().prepare_rejections, 1u);
  group->submit(0, make_command(2, 3));
  sim.run(sim.now() + seconds(2));
  expect_agreement(2);
}

TEST_F(GroupFixture, MinorityCrashStillLive) {
  build(5);
  group->crash_replica(3);
  group->crash_replica(4);
  sim.run(sim.now() + seconds(1));
  for (std::uint64_t i = 1; i <= 10; ++i) {
    group->submit(0, make_command(i, 1 + static_cast<int>(i % 5)));
  }
  sim.run(sim.now() + seconds(3));
  expect_agreement(10);
}

TEST_F(GroupFixture, DuplicateCommandIdsApplyOnce) {
  build();
  group->submit(0, make_command(7, 2));
  group->submit(0, make_command(7, 2));  // client retry
  group->submit(0, make_command(8, 3));
  sim.run(seconds(3));
  // The duplicate occupies a slot but must not be applied twice.
  for (std::uint32_t i = 0; i < 3; ++i) {
    std::size_t sevens = 0;
    for (const Command& command : group->replica(i).applied_log()) {
      sevens += command.id == 7;
    }
    EXPECT_EQ(sevens, 1u) << "replica " << i;
  }
}

TEST_F(GroupFixture, FalseSuspicionOfLeaderIsSafe) {
  build();
  group->submit(0, make_command(1, 2));
  sim.run(seconds(1));
  // Falsely suspect the leader: replica 1 takes over with a higher ballot;
  // when the suspicion clears, replica 0 returns. No divergence allowed.
  group->failure_detector().inject_false_suspicion(
      sim::NodeId{sim::NodeKind::kStorage, 0}, seconds(2));
  sim.run(sim.now() + milliseconds(500));
  group->submit(1, make_command(2, 4));
  sim.run(sim.now() + seconds(3));
  group->submit(0, make_command(3, 5));
  sim.run(sim.now() + seconds(3));
  expect_agreement(3);
}

class SmrChurn : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SmrChurn, RandomScheduleNeverDiverges) {
  // Property: under random submissions, one crash, and random false
  // suspicions, all live replicas' applied logs agree (prefix property is
  // implied by checking at quiescence with equal lengths).
  sim::Simulator sim;
  GroupOptions options;
  options.replicas = 5;
  options.seed = GetParam();
  Group group(sim, options, nullptr);
  Rng rng(GetParam() * 13 + 1);
  bool crashed = false;
  std::uint64_t next_id = 1;
  for (int step = 0; step < 40; ++step) {
    const auto dice = rng.next_below(10);
    if (dice < 6) {
      group.submit(static_cast<std::uint32_t>(rng.next_below(5)),
                   make_command(next_id++,
                                static_cast<int>(rng.next_below(5)) + 1));
    } else if (dice < 8) {
      group.failure_detector().inject_false_suspicion(
          sim::NodeId{sim::NodeKind::kStorage,
                      static_cast<std::uint32_t>(rng.next_below(5))},
          milliseconds(100 + rng.next_below(400)));
    } else if (!crashed && dice == 9) {
      group.crash_replica(static_cast<std::uint32_t>(rng.next_below(5)));
      crashed = true;
    }
    sim.run(sim.now() + milliseconds(50 + rng.next_below(200)));
  }
  sim.run(sim.now() + seconds(5));  // quiesce

  std::vector<std::vector<std::uint64_t>> logs;
  for (std::uint32_t i = 0; i < 5; ++i) {
    if (group.replica(i).crashed()) continue;
    std::vector<std::uint64_t> ids;
    for (const Command& command : group.replica(i).applied_log()) {
      ids.push_back(command.id);
    }
    logs.push_back(std::move(ids));
  }
  for (std::size_t i = 1; i < logs.size(); ++i) {
    EXPECT_EQ(logs[i], logs[0]) << "replica logs diverged";
  }
  EXPECT_FALSE(logs[0].empty());
}

INSTANTIATE_TEST_SUITE_P(Seeds, SmrChurn,
                         ::testing::Range<std::uint64_t>(1, 13));

// ----------------------------------------------------- ConfigStateMachine

TEST(ConfigStateMachineTest, AppliesGlobalAndPerObjectChanges) {
  ConfigStateMachine machine({3, 3}, 5);
  Command global = make_command(1, 1);
  machine.apply(global);
  EXPECT_EQ(machine.config().default_q, (kv::QuorumConfig::of(5, 1)));
  EXPECT_EQ(machine.config().cfno, 1u);

  Command per_object;
  per_object.id = 2;
  per_object.change.is_global = false;
  per_object.change.overrides = {{42, kv::QuorumConfig::of(1, 5)}};
  machine.apply(per_object);
  EXPECT_EQ(machine.config().overrides.size(), 1u);
  EXPECT_EQ(machine.config().cfno, 2u);
  // History tracks the max read quorum per configuration.
  EXPECT_EQ(machine.config().read_q_history.back().second, 5);
}

TEST(ConfigStateMachineTest, RejectsNonStrictDeterministically) {
  ConfigStateMachine machine({3, 3}, 5);
  Command bad;
  bad.id = 1;
  bad.change.is_global = true;
  bad.change.global = kv::QuorumConfig::of(2, 3);  // 2+3 == N
  machine.apply(bad);
  EXPECT_EQ(machine.config().cfno, 0u);
  EXPECT_EQ(machine.applied(), 0u);
}

TEST(ConfigStateMachineTest, ReplicatedConfigHistoryConverges) {
  // End-to-end: three replicas each fold the decided log into their own
  // ConfigStateMachine; after submissions + a leader crash, all survivors
  // hold identical configuration state.
  sim::Simulator sim;
  GroupOptions options;
  std::vector<std::unique_ptr<ConfigStateMachine>> machines;
  for (int i = 0; i < 3; ++i) {
    machines.push_back(std::make_unique<ConfigStateMachine>(
        kv::QuorumConfig::of(3, 3), 5));
  }
  // The apply callback runs on every replica; dispatch on... each Replica
  // shares one ApplyFn, so route by inspecting which replica applied via
  // the Group API instead: simplest is replaying applied_log after the run.
  Group group(sim, options, nullptr);
  Rng rng(5);
  for (std::uint64_t i = 1; i <= 8; ++i) {
    Command command = make_command(i, static_cast<int>(rng.next_below(5)) + 1);
    group.submit(static_cast<std::uint32_t>(i % 3), command);
    sim.run(sim.now() + milliseconds(100));
    if (i == 4) {
      group.crash_replica(0);
      sim.run(sim.now() + seconds(1));
    }
  }
  sim.run(sim.now() + seconds(2));

  for (std::uint32_t i = 1; i < 3; ++i) {
    for (const Command& command : group.replica(i).applied_log()) {
      machines[i]->apply(command);
    }
  }
  EXPECT_EQ(machines[1]->config().cfno, machines[2]->config().cfno);
  EXPECT_EQ(machines[1]->config().default_q, machines[2]->config().default_q);
  EXPECT_GT(machines[1]->applied(), 0u);
}

}  // namespace
}  // namespace qopt::smr
