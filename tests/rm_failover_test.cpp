// Replicated Reconfiguration Manager: leader failover under crashes and
// partitions with zero consistency violations. The RM's canonical state is
// a replicated-log decision (smr::Group); these tests kill, isolate and
// restart the leader replica around in-flight reconfiguration rounds and
// assert the rounds still complete exactly once, the cluster stays
// consistent, and same-seed runs are byte-identical.
#include <gtest/gtest.h>

#include <string>

#include "core/cluster.hpp"
#include "kv/quorum.hpp"
#include "obs/registry.hpp"
#include "obs/report.hpp"
#include "reconfig/replicated_rm.hpp"
#include "util/time.hpp"
#include "workload/workload.hpp"

namespace qopt {
namespace {

ClusterConfig replicated_rm_config(std::uint64_t seed) {
  ClusterConfig config;
  config.num_storage = 7;
  config.num_proxies = 3;
  config.clients_per_proxy = 3;
  config.replication = 5;
  config.initial_quorum = {3, 3};
  config.seed = seed;
  config.rm_replicas = 3;
  return config;
}

std::uint64_t rm_counter(Cluster& cluster, const char* name) {
  return cluster.obs().registry().counter_value(name);
}

TEST(RmFailoverTest, ReplicatedSameSeedRerunsAreByteIdentical) {
  const auto run = [] {
    Cluster cluster(replicated_rm_config(21));
    cluster.preload(300, 1024);
    cluster.set_workload(workload::ycsb_a(300));
    cluster.run_for(seconds(2));
    cluster.reconfigure({4, 2});
    cluster.simulator().after(milliseconds(4), [&cluster] {
      cluster.crash_rm(cluster.replicated_rm()->leader());
    });
    cluster.run_for(seconds(3));
    cluster.stop_clients();
    cluster.run_for(seconds(2));
    return cluster.report().to_json();
  };
  EXPECT_EQ(run(), run());
}

TEST(RmFailoverTest, LeaderCrashMidRoundResumesAndCommits) {
  Cluster cluster(replicated_rm_config(22));
  cluster.preload(300, 1024);
  cluster.set_workload(workload::ycsb_a(300));
  cluster.run_for(seconds(1));

  reconfig::ReplicatedRm& rrm = *cluster.replicated_rm();
  const std::uint32_t old_leader = rrm.leader();
  bool first_done = false;
  bool second_done = false;
  // Two back-to-back rounds: whenever the crash lands inside the first
  // round's execution window, the replicated queue is non-empty at
  // promotion and the new leader must resume in-flight work.
  cluster.reconfigure({4, 2}, [&](bool ok) { first_done = ok; });
  cluster.reconfigure({2, 4}, [&](bool ok) { second_done = ok; });
  cluster.simulator().after(milliseconds(4), [&] {
    cluster.crash_rm(rrm.leader());
  });
  cluster.run_for(seconds(5));

  EXPECT_TRUE(first_done) << "round lost across the leader crash";
  EXPECT_TRUE(second_done) << "queued round lost across the leader crash";
  EXPECT_NE(rrm.leader(), old_leader);
  EXPECT_GE(rm_counter(cluster, "rm.leader_changes"), 1u);
  EXPECT_GE(rm_counter(cluster, "rm.rounds_resumed"), 1u);
  EXPECT_EQ(rrm.leader_rm().config().default_q.write_footprint(), 4);
  EXPECT_EQ(rrm.state_divergences(), 0u);
  EXPECT_EQ(cluster.report().consistency_violations, 0u);
}

TEST(RmFailoverTest, LeaderPartitionMidRoundFailsOverAndHeals) {
  Cluster cluster(replicated_rm_config(23));
  cluster.preload(300, 1024);
  cluster.set_workload(workload::ycsb_a(300));
  cluster.run_for(seconds(1));

  reconfig::ReplicatedRm& rrm = *cluster.replicated_rm();
  const std::uint32_t old_leader = rrm.leader();
  bool done = false;
  cluster.reconfigure({4, 2}, [&](bool ok) { done = ok; });
  std::uint64_t handle = 0;
  std::uint32_t victim = 0;
  cluster.simulator().after(milliseconds(4), [&] {
    victim = rrm.leader();
    handle = cluster.isolate_rm(victim);
  });
  cluster.simulator().after(seconds(2), [&] {
    cluster.heal_rm_partition(handle);
  });
  cluster.run_for(seconds(5));

  EXPECT_TRUE(done) << "round lost across the leader partition";
  EXPECT_GE(rm_counter(cluster, "rm.leader_changes"), 1u);
  EXPECT_EQ(rrm.leader_rm().config().default_q.read_footprint(), 4);
  // The healed replica rejoined: its log caught up to the round it missed.
  EXPECT_EQ(rrm.rm(victim).config().cfno, rrm.leader_rm().config().cfno);
  EXPECT_EQ(rrm.state_divergences(), 0u);
  EXPECT_EQ(cluster.report().consistency_violations, 0u);
  (void)old_leader;
}

TEST(RmFailoverTest, IdleFailoverThenReconfigureThroughTheNewLeader) {
  Cluster cluster(replicated_rm_config(24));
  cluster.preload(200, 1024);
  cluster.set_workload(workload::ycsb_a(200));
  cluster.run_for(seconds(1));

  reconfig::ReplicatedRm& rrm = *cluster.replicated_rm();
  const std::uint64_t cfno_before = rrm.leader_rm().config().cfno;
  cluster.crash_rm(rrm.leader());
  cluster.run_for(seconds(1));  // past the detection delay
  EXPECT_NE(rrm.leader(), 0u);

  bool done = false;
  cluster.reconfigure({4, 2}, [&](bool ok) { done = ok; });
  cluster.run_for(seconds(2));
  EXPECT_TRUE(done);
  EXPECT_EQ(rrm.leader_rm().config().cfno, cfno_before + 1);
  EXPECT_EQ(rrm.state_divergences(), 0u);
  EXPECT_EQ(cluster.report().consistency_violations, 0u);
}

TEST(RmFailoverTest, RestartedReplicaCatchesUpBeforeRetakingTheLead) {
  Cluster cluster(replicated_rm_config(25));
  cluster.preload(200, 1024);
  cluster.set_workload(workload::ycsb_a(200));
  cluster.run_for(seconds(1));

  reconfig::ReplicatedRm& rrm = *cluster.replicated_rm();
  cluster.crash_rm(0);
  cluster.run_for(seconds(1));
  ASSERT_NE(rrm.leader(), 0u);

  // Decisions replica 0 misses while down.
  bool done = false;
  cluster.reconfigure({4, 2}, [&](bool ok) { done = ok; });
  cluster.run_for(seconds(2));
  ASSERT_TRUE(done);

  cluster.restart_rm(0);
  cluster.run_for(seconds(2));
  // Lowest live replica retakes the lead — but only once its applied log
  // covers every decision taken while it was down.
  EXPECT_EQ(rrm.leader(), 0u);
  EXPECT_EQ(rrm.rm(0).config().cfno, rrm.rm(1).config().cfno);
  EXPECT_EQ(rrm.rm(0).config().default_q.read_footprint(), 4);
  EXPECT_EQ(rrm.state_divergences(), 0u);
  EXPECT_EQ(cluster.report().consistency_violations, 0u);

  // The recovered leader still drives new rounds.
  bool again = false;
  cluster.reconfigure({2, 4}, [&](bool ok) { again = ok; });
  cluster.run_for(seconds(2));
  EXPECT_TRUE(again);
}

TEST(RmFailoverTest, ReportExportsTheFailoverSectionOnlyWhenReplicated) {
  Cluster replicated(replicated_rm_config(26));
  replicated.run_for(seconds(1));
  const obs::RunReport on = replicated.report();
  EXPECT_TRUE(on.has_rm_failover);
  EXPECT_EQ(on.rm_replicas, 3u);
  EXPECT_NE(on.to_json().find("\"rm_replicas\":3"), std::string::npos);

  ClusterConfig single = replicated_rm_config(26);
  single.rm_replicas = 1;
  Cluster legacy(single);
  legacy.run_for(seconds(1));
  const obs::RunReport off = legacy.report();
  EXPECT_FALSE(off.has_rm_failover);
  EXPECT_EQ(off.to_json().find("rm_replicas"), std::string::npos);
}

}  // namespace
}  // namespace qopt
