// Tests for the Reconfiguration Manager's two-phase non-blocking protocol
// (Algorithm 2), including the failure-suspicion / epoch-change paths,
// exercised through a full (small) cluster.
#include <gtest/gtest.h>

#include "core/cluster.hpp"
#include "kv/types.hpp"
#include "workload/workload.hpp"

namespace qopt {
namespace {

ClusterConfig small_config() {
  ClusterConfig config;
  config.num_storage = 5;
  config.num_proxies = 3;
  config.clients_per_proxy = 2;
  config.replication = 5;
  config.initial_quorum = {1, 5};
  config.seed = 11;
  return config;
}

TEST(ReconfigTest, GlobalReconfigurationCompletes) {
  Cluster cluster(small_config());
  bool done = false;
  bool ok = false;
  cluster.reconfigure({4, 2}, [&](bool success) {
    done = true;
    ok = success;
  });
  cluster.run_for(seconds(1));
  EXPECT_TRUE(done);
  EXPECT_TRUE(ok);
  EXPECT_EQ(cluster.rm().config().default_q, (kv::QuorumConfig::of(4, 2)));
  EXPECT_EQ(cluster.rm().config().cfno, 1u);
  for (std::uint32_t i = 0; i < 3; ++i) {
    EXPECT_EQ(cluster.proxy(i).default_quorum(), (kv::QuorumConfig::of(4, 2)));
    EXPECT_FALSE(cluster.proxy(i).in_transition());
  }
  EXPECT_EQ(cluster.obs().registry().counter_value("rm.epoch_changes"), 0u);
}

TEST(ReconfigTest, InvalidChangeRejected) {
  Cluster cluster(small_config());
  bool ok = true;
  cluster.reconfigure({2, 3}, [&](bool success) { ok = success; });  // 2+3=5
  cluster.run_for(seconds(1));
  EXPECT_FALSE(ok);
  EXPECT_EQ(cluster.obs().registry().counter_value("rm.rejected_invalid"), 1u);
  EXPECT_EQ(cluster.rm().config().default_q, (kv::QuorumConfig::of(1, 5)));
}

TEST(ReconfigTest, EmptyPerObjectChangeRejected) {
  Cluster cluster(small_config());
  bool ok = true;
  cluster.reconfigure_objects({}, [&](bool success) { ok = success; });
  cluster.run_for(seconds(1));
  EXPECT_FALSE(ok);
}

TEST(ReconfigTest, ReconfigurationsSerialize) {
  Cluster cluster(small_config());
  std::vector<int> completion_order;
  cluster.reconfigure({4, 2}, [&](bool) { completion_order.push_back(1); });
  cluster.reconfigure({3, 3}, [&](bool) { completion_order.push_back(2); });
  cluster.reconfigure({2, 4}, [&](bool) { completion_order.push_back(3); });
  EXPECT_GE(cluster.rm().queued() + (cluster.rm().busy() ? 1u : 0u), 3u);
  cluster.run_for(seconds(2));
  EXPECT_EQ(completion_order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(cluster.rm().config().default_q, (kv::QuorumConfig::of(2, 4)));
  EXPECT_EQ(cluster.rm().config().cfno, 3u);
}

TEST(ReconfigTest, PerObjectOverridesInstalled) {
  Cluster cluster(small_config());
  cluster.reconfigure_objects({{100, {5, 1}}, {200, {3, 3}}});
  cluster.run_for(seconds(1));
  EXPECT_EQ(cluster.rm().quorum_for(100), (kv::QuorumConfig::of(5, 1)));
  EXPECT_EQ(cluster.rm().quorum_for(200), (kv::QuorumConfig::of(3, 3)));
  EXPECT_EQ(cluster.rm().quorum_for(300), (kv::QuorumConfig::of(1, 5)));
  for (std::uint32_t i = 0; i < 3; ++i) {
    EXPECT_EQ(cluster.proxy(i).effective_quorum(100),
              (kv::QuorumConfig::of(5, 1)));
  }
}

TEST(ReconfigTest, OverrideReplacedByLaterChange) {
  Cluster cluster(small_config());
  cluster.reconfigure_objects({{100, {5, 1}}});
  cluster.reconfigure_objects({{100, {2, 4}}});
  cluster.run_for(seconds(1));
  EXPECT_EQ(cluster.rm().quorum_for(100), (kv::QuorumConfig::of(2, 4)));
  // The canonical override list must not contain duplicates.
  EXPECT_EQ(cluster.rm().config().overrides.size(), 1u);
}

TEST(ReconfigTest, GlobalChangeKeepsOverrides) {
  Cluster cluster(small_config());
  cluster.reconfigure_objects({{100, {5, 1}}});
  cluster.reconfigure({3, 3});
  cluster.run_for(seconds(1));
  EXPECT_EQ(cluster.rm().quorum_for(100), (kv::QuorumConfig::of(5, 1)));
  EXPECT_EQ(cluster.rm().config().default_q, (kv::QuorumConfig::of(3, 3)));
}

TEST(ReconfigTest, CrashedProxyTriggersEpochChangeAndCompletes) {
  Cluster cluster(small_config());
  cluster.crash_proxy(2);
  bool ok = false;
  cluster.reconfigure({4, 2}, [&](bool success) { ok = success; });
  cluster.run_for(seconds(5));
  EXPECT_TRUE(ok) << "reconfiguration must terminate despite a crashed proxy";
  EXPECT_GE(cluster.obs().registry().counter_value("rm.epoch_changes"), 1u);
  // Live proxies reach the new configuration.
  EXPECT_EQ(cluster.proxy(0).default_quorum(), (kv::QuorumConfig::of(4, 2)));
  EXPECT_EQ(cluster.proxy(1).default_quorum(), (kv::QuorumConfig::of(4, 2)));
  // Storage nodes advanced their epoch.
  EXPECT_GE(cluster.storage(0).epoch(), 1u);
}

TEST(ReconfigTest, FalselySuspectedProxyRecoversViaNack) {
  Cluster cluster(small_config());
  cluster.preload(100, 1024);
  cluster.set_workload(workload::ycsb_a(100));
  cluster.run_for(seconds(1));

  // Indefinite false suspicion: the RM proceeds without proxy 2 and fences
  // the old epoch; proxy 2 (alive!) must learn the new configuration from
  // storage NACKs and keep serving (indulgence, Section 5.3).
  cluster.inject_false_suspicion(2, seconds(30));
  bool ok = false;
  cluster.reconfigure({4, 2}, [&](bool success) { ok = success; });
  cluster.run_for(seconds(10));
  EXPECT_TRUE(ok);
  EXPECT_GE(cluster.obs().registry().counter_value("rm.epoch_changes"), 1u);
  EXPECT_EQ(cluster.proxy(2).default_quorum(), (kv::QuorumConfig::of(4, 2)))
      << "falsely suspected proxy failed to resynchronize";
  EXPECT_GE(cluster.obs().registry().counter_value(obs::instrument_name("proxy", 2, "nacks_received")), 1u);
  EXPECT_TRUE(cluster.checker().clean());
  // Clients of the suspected proxy kept completing operations.
  EXPECT_GT(cluster.client(4).ops_completed(), 0u);
}

TEST(ReconfigTest, ReconfigurationUnderLoadPreservesConsistency) {
  ClusterConfig config = small_config();
  Cluster cluster(config);
  cluster.preload(500, 1024);
  cluster.set_workload(workload::ycsb_a(500));
  cluster.run_for(seconds(1));
  // Ping-pong between extreme configurations while traffic flows.
  for (const kv::QuorumConfig q :
       {kv::QuorumConfig::of(5, 1), kv::QuorumConfig::of(1, 5), kv::QuorumConfig::of(3, 3),
        kv::QuorumConfig::of(2, 4)}) {
    cluster.reconfigure(q);
    cluster.run_for(seconds(2));
  }
  EXPECT_TRUE(cluster.checker().clean())
      << cluster.checker().violations().size() << " violations";
  EXPECT_GT(cluster.checker().reads_checked(), 1000u);
  EXPECT_EQ(cluster.obs().registry().counter_value("rm.reconfigurations_completed"), 4u);
}

TEST(ReconfigTest, NonBlockingDuringReconfiguration) {
  // Operations must keep completing *during* the transition window.
  ClusterConfig config = small_config();
  config.network.base = milliseconds(5);  // slow control plane
  Cluster cluster(config);
  cluster.preload(100, 1024);
  cluster.set_workload(workload::ycsb_a(100));
  cluster.run_for(seconds(1));
  const std::uint64_t ops_before = cluster.metrics().total_ops();
  cluster.reconfigure({4, 2});
  // A handful of milliseconds in: reconfig still in flight.
  cluster.run_for(milliseconds(8));
  EXPECT_TRUE(cluster.rm().busy());
  cluster.run_for(milliseconds(100));
  EXPECT_GT(cluster.metrics().total_ops(), ops_before)
      << "operations blocked during reconfiguration";
}

TEST(ReconfigTest, EpochChangeQuorumReachesEnoughStorageNodes) {
  Cluster cluster(small_config());
  cluster.crash_proxy(0);
  cluster.reconfigure({3, 3});
  cluster.run_for(seconds(5));
  int advanced = 0;
  for (std::uint32_t i = 0; i < 5; ++i) {
    if (cluster.storage(i).epoch() >= 1) ++advanced;
  }
  // Epoch-change quorum after phase 1 is max(oldR, oldW) = 5 here.
  EXPECT_GE(advanced, 5);
}

TEST(ReconfigTest, ManyReconfigurationsAccumulateHistory) {
  Cluster cluster(small_config());
  for (int i = 0; i < 10; ++i) {
    cluster.reconfigure(i % 2 ? kv::QuorumConfig::of(5, 1)
                              : kv::QuorumConfig::of(1, 5));
  }
  cluster.run_for(seconds(5));
  EXPECT_EQ(cluster.rm().config().cfno, 10u);
  EXPECT_EQ(cluster.obs().registry().counter_value("rm.reconfigurations_completed"), 10u);
  // History covers every installed configuration (prunable per the paper).
  EXPECT_GE(cluster.rm().config().read_q_history.size(), 10u);
}

}  // namespace
}  // namespace qopt
