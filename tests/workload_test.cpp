#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "kv/types.hpp"
#include "util/rng.hpp"
#include "workload/workload.hpp"

namespace qopt::workload {
namespace {

TEST(UniformKeysTest, CoversRangeUniformly) {
  UniformKeys keys(10);
  Rng rng(1);
  std::map<kv::ObjectId, int> counts;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) ++counts[keys.sample(rng)];
  EXPECT_EQ(counts.size(), 10u);
  for (const auto& [key, count] : counts) {
    EXPECT_LT(key, 10u);
    EXPECT_NEAR(count, n / 10, n / 10 * 0.1);
  }
}

TEST(UniformKeysTest, EmptySpaceThrows) {
  EXPECT_THROW(UniformKeys(0), std::invalid_argument);
}

TEST(ZipfianKeysTest, UnscrambledRankZeroIsHottest) {
  ZipfianKeys keys(1000, 0.99, /*scramble=*/false);
  Rng rng(2);
  std::map<kv::ObjectId, int> counts;
  for (int i = 0; i < 200'000; ++i) ++counts[keys.sample(rng)];
  // Rank 0 should be the most frequent, with roughly 1/zeta(n) of mass.
  int max_count = 0;
  kv::ObjectId max_key = 0;
  for (const auto& [key, count] : counts) {
    if (count > max_count) {
      max_count = count;
      max_key = key;
    }
  }
  EXPECT_EQ(max_key, 0u);
  EXPECT_GT(max_count, 200'000 / 20);  // clearly skewed
}

TEST(ZipfianKeysTest, ZipfLawRatio) {
  ZipfianKeys keys(10'000, 0.99, /*scramble=*/false);
  Rng rng(3);
  std::map<kv::ObjectId, int> counts;
  for (int i = 0; i < 500'000; ++i) ++counts[keys.sample(rng)];
  // P(rank 0) / P(rank 1) ~ 2^0.99 ~ 1.99.
  const double ratio =
      static_cast<double>(counts[0]) / static_cast<double>(counts[1]);
  EXPECT_NEAR(ratio, 1.99, 0.4);
}

TEST(ZipfianKeysTest, ScrambleSpreadsHotKeys) {
  ZipfianKeys keys(100'000, 0.99, /*scramble=*/true);
  Rng rng(4);
  std::map<kv::ObjectId, int> counts;
  for (int i = 0; i < 100'000; ++i) ++counts[keys.sample(rng)];
  // With scrambling, the hottest key should typically NOT be id 0.
  int max_count = 0;
  kv::ObjectId max_key = 0;
  for (const auto& [key, count] : counts) {
    if (count > max_count) {
      max_count = count;
      max_key = key;
    }
  }
  EXPECT_NE(max_key, 0u);
}

TEST(ZipfianKeysTest, SamplesInRange) {
  ZipfianKeys keys(50, 0.8);
  Rng rng(5);
  for (int i = 0; i < 10'000; ++i) EXPECT_LT(keys.sample(rng), 50u);
}

TEST(ZipfianKeysTest, InvalidParamsThrow) {
  EXPECT_THROW(ZipfianKeys(0), std::invalid_argument);
  EXPECT_THROW(ZipfianKeys(10, 0.0), std::invalid_argument);
  EXPECT_THROW(ZipfianKeys(10, 1.0), std::invalid_argument);
}

TEST(HotspotKeysTest, HotSetGetsConfiguredShare) {
  HotspotKeys keys(1000, 0.1, 0.9);  // 10% of keys get 90% of traffic
  Rng rng(6);
  int hot = 0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) {
    if (keys.sample(rng) < 100) ++hot;
  }
  EXPECT_NEAR(static_cast<double>(hot) / n, 0.9, 0.02);
}

TEST(HotspotKeysTest, AllKeysReachable) {
  HotspotKeys keys(20, 0.25, 0.5);
  Rng rng(7);
  std::map<kv::ObjectId, int> counts;
  for (int i = 0; i < 50'000; ++i) ++counts[keys.sample(rng)];
  EXPECT_EQ(counts.size(), 20u);
}

TEST(SizeDistributionTest, FixedAlwaysSame) {
  const SizeDistribution dist = SizeDistribution::fixed_size(4096);
  Rng rng(8);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(dist.sample(rng), 4096u);
}

TEST(SizeDistributionTest, UniformWithinBounds) {
  const SizeDistribution dist = SizeDistribution::uniform(1000, 2000);
  Rng rng(9);
  for (int i = 0; i < 10'000; ++i) {
    const std::uint64_t size = dist.sample(rng);
    EXPECT_GE(size, 1000u);
    EXPECT_LE(size, 2000u);
  }
}

TEST(BasicWorkloadTest, WriteRatioHonoured) {
  WorkloadSpec spec;
  spec.write_ratio = 0.3;
  spec.keys = std::make_shared<UniformKeys>(100);
  BasicWorkload load(spec);
  Rng rng(10);
  int writes = 0;
  const int n = 50'000;
  for (int i = 0; i < n; ++i) writes += load.next(rng, 0).is_write;
  EXPECT_NEAR(static_cast<double>(writes) / n, 0.3, 0.02);
}

TEST(BasicWorkloadTest, KeyOffsetShiftsNamespace) {
  WorkloadSpec spec;
  spec.keys = std::make_shared<UniformKeys>(10);
  spec.key_offset = 1'000'000;
  BasicWorkload load(spec);
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const kv::ObjectId oid = load.next(rng, 0).oid;
    EXPECT_GE(oid, 1'000'000u);
    EXPECT_LT(oid, 1'000'010u);
  }
}

TEST(BasicWorkloadTest, NullKeysThrow) {
  WorkloadSpec spec;
  EXPECT_THROW(BasicWorkload{spec}, std::invalid_argument);
}

TEST(PhasedWorkloadTest, SwitchesAtBoundaries) {
  auto writes = std::make_shared<BasicWorkload>(WorkloadSpec{
      1.0, std::make_shared<UniformKeys>(10), {}, 0, "writes"});
  auto reads = std::make_shared<BasicWorkload>(WorkloadSpec{
      0.0, std::make_shared<UniformKeys>(10), {}, 0, "reads"});
  PhasedWorkload phased(
      {{seconds(10), writes}, {seconds(10), reads}});
  Rng rng(12);
  EXPECT_TRUE(phased.next(rng, seconds(1)).is_write);
  EXPECT_FALSE(phased.next(rng, seconds(15)).is_write);
  EXPECT_EQ(phased.phase_at(seconds(5)), 0u);
  EXPECT_EQ(phased.phase_at(seconds(15)), 1u);
}

TEST(PhasedWorkloadTest, CyclesByDefault) {
  auto writes = std::make_shared<BasicWorkload>(WorkloadSpec{
      1.0, std::make_shared<UniformKeys>(10), {}, 0, "writes"});
  auto reads = std::make_shared<BasicWorkload>(WorkloadSpec{
      0.0, std::make_shared<UniformKeys>(10), {}, 0, "reads"});
  PhasedWorkload phased(
      {{seconds(10), writes}, {seconds(10), reads}});
  Rng rng(13);
  EXPECT_TRUE(phased.next(rng, seconds(21)).is_write);   // wrapped
  EXPECT_FALSE(phased.next(rng, seconds(35)).is_write);  // wrapped
}

TEST(PhasedWorkloadTest, NonCyclingStaysInLastPhase) {
  auto writes = std::make_shared<BasicWorkload>(WorkloadSpec{
      1.0, std::make_shared<UniformKeys>(10), {}, 0, "writes"});
  auto reads = std::make_shared<BasicWorkload>(WorkloadSpec{
      0.0, std::make_shared<UniformKeys>(10), {}, 0, "reads"});
  PhasedWorkload phased({{seconds(10), writes}, {seconds(10), reads}},
                        /*cycle=*/false);
  Rng rng(14);
  EXPECT_FALSE(phased.next(rng, seconds(100)).is_write);
}

TEST(PhasedWorkloadTest, InvalidPhasesThrow) {
  EXPECT_THROW(PhasedWorkload({}), std::invalid_argument);
  auto src = std::make_shared<BasicWorkload>(WorkloadSpec{
      0.5, std::make_shared<UniformKeys>(10), {}, 0, "x"});
  EXPECT_THROW(PhasedWorkload({{0, src}}), std::invalid_argument);
  EXPECT_THROW(PhasedWorkload({{seconds(1), nullptr}}),
               std::invalid_argument);
}

TEST(PresetTest, YcsbMixes) {
  Rng rng(15);
  int writes_a = 0;
  int writes_b = 0;
  int writes_c = 0;
  auto a = ycsb_a(1000);
  auto b = ycsb_b(1000);
  auto c = backup_c(1000);
  const int n = 20'000;
  for (int i = 0; i < n; ++i) {
    writes_a += a->next(rng, 0).is_write;
    writes_b += b->next(rng, 0).is_write;
    writes_c += c->next(rng, 0).is_write;
  }
  EXPECT_NEAR(writes_a / static_cast<double>(n), 0.50, 0.02);
  EXPECT_NEAR(writes_b / static_cast<double>(n), 0.05, 0.01);
  EXPECT_NEAR(writes_c / static_cast<double>(n), 0.99, 0.01);
}

TEST(PresetTest, SweepPointUsesUniformKeysAndRatio) {
  auto sweep = sweep_point(0.7, 8192, 100);
  Rng rng(16);
  int writes = 0;
  const int n = 20'000;
  for (int i = 0; i < n; ++i) {
    const Operation op = sweep->next(rng, 0);
    EXPECT_LT(op.oid, 100u);
    EXPECT_EQ(op.size_bytes, 8192u);
    writes += op.is_write;
  }
  EXPECT_NEAR(writes / static_cast<double>(n), 0.7, 0.02);
}

TEST(PresetTest, DescribeNames) {
  EXPECT_EQ(ycsb_a(10)->describe(), "ycsb-a");
  EXPECT_EQ(ycsb_b(10)->describe(), "ycsb-b");
  EXPECT_EQ(backup_c(10)->describe(), "backup-c");
}

}  // namespace
}  // namespace qopt::workload
