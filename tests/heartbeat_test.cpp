// Tests for the heartbeat-driven failure detector: suspicion arises from
// actual message traffic (crash = beats stop; pause = organic false
// suspicion that later clears), and the reconfiguration protocol's
// indulgence holds under it end to end.
#include <gtest/gtest.h>

#include "autonomic/autonomic_manager.hpp"
#include "core/cluster.hpp"
#include "kv/types.hpp"
#include "workload/workload.hpp"

namespace qopt {
namespace {

ClusterConfig hb_config() {
  ClusterConfig config;
  config.num_storage = 5;
  config.num_proxies = 3;
  config.clients_per_proxy = 2;
  config.replication = 5;
  config.initial_quorum = {3, 3};
  config.heartbeat_fd = true;
  config.heartbeat_interval = milliseconds(100);
  config.heartbeat_timeout = milliseconds(500);
  config.seed = 13;
  return config;
}

TEST(HeartbeatTest, NoSuspicionsWhileHealthy) {
  Cluster cluster(hb_config());
  cluster.preload(100, 1024);
  cluster.set_workload(workload::ycsb_a(100));
  cluster.run_for(seconds(10));
  for (std::uint32_t i = 0; i < 3; ++i) {
    EXPECT_FALSE(cluster.failure_detector().suspects(sim::proxy_id(i)));
  }
  EXPECT_EQ(cluster.heartbeat_watcher()->suspicions_raised(), 0u);
}

TEST(HeartbeatTest, CrashDetectedFromMissingBeats) {
  Cluster cluster(hb_config());
  cluster.preload(100, 1024);
  cluster.set_workload(workload::ycsb_a(100));
  cluster.run_for(seconds(2));
  cluster.crash_proxy(1);
  EXPECT_FALSE(cluster.failure_detector().suspects(sim::proxy_id(1)));
  cluster.run_for(seconds(1));  // > timeout + check interval
  EXPECT_TRUE(cluster.failure_detector().suspects(sim::proxy_id(1)));
  EXPECT_GE(cluster.heartbeat_watcher()->suspicions_raised(), 1u);
}

TEST(HeartbeatTest, PausedBeatsCauseFalseSuspicionThatClears) {
  Cluster cluster(hb_config());
  cluster.preload(100, 1024);
  cluster.set_workload(workload::ycsb_a(100));
  cluster.run_for(seconds(2));
  cluster.proxy(2).set_heartbeats_paused(true);
  cluster.run_for(seconds(1));
  EXPECT_TRUE(cluster.failure_detector().suspects(sim::proxy_id(2)))
      << "silent (but live) proxy not suspected";
  cluster.proxy(2).set_heartbeats_paused(false);
  cluster.run_for(seconds(1));
  EXPECT_FALSE(cluster.failure_detector().suspects(sim::proxy_id(2)))
      << "suspicion not cleared after beats resumed (eventual accuracy)";
  EXPECT_GE(cluster.heartbeat_watcher()->suspicions_cleared(), 1u);
}

TEST(HeartbeatTest, ReconfigurationDuringOrganicFalseSuspicionIsSafe) {
  // The falsely suspected proxy keeps serving; the RM epoch-changes past
  // it; the proxy resynchronizes through NACKs — all with suspicion derived
  // purely from (paused) heartbeat traffic.
  Cluster cluster(hb_config());
  cluster.preload(200, 1024);
  cluster.set_workload(workload::ycsb_a(200));
  cluster.run_for(seconds(2));
  cluster.proxy(0).set_heartbeats_paused(true);
  cluster.run_for(seconds(1));
  bool ok = false;
  cluster.reconfigure({4, 2}, [&](bool success) { ok = success; });
  cluster.run_for(seconds(3));
  EXPECT_TRUE(ok);
  EXPECT_GE(cluster.obs().registry().counter_value("rm.epoch_changes"), 1u);
  EXPECT_EQ(cluster.proxy(0).default_quorum(), (kv::QuorumConfig::of(4, 2)));
  cluster.proxy(0).set_heartbeats_paused(false);
  cluster.run_for(seconds(2));
  EXPECT_FALSE(cluster.failure_detector().suspects(sim::proxy_id(0)));
  EXPECT_TRUE(cluster.checker().clean());
  EXPECT_GT(cluster.client(0).ops_completed(), 0u);
}

TEST(HeartbeatTest, CrashedProxyReconfigStillTerminates) {
  Cluster cluster(hb_config());
  cluster.preload(100, 1024);
  cluster.set_workload(workload::ycsb_a(100));
  cluster.run_for(seconds(1));
  cluster.crash_proxy(2);
  bool ok = false;
  cluster.reconfigure({5, 1}, [&](bool success) { ok = success; });
  cluster.run_for(seconds(5));
  EXPECT_TRUE(ok) << "reconfiguration blocked on a heartbeat-detected crash";
  EXPECT_TRUE(cluster.checker().clean());
}

TEST(HeartbeatTest, AutotuningRunsOverHeartbeatDetector) {
  ClusterConfig config = hb_config();
  config.clients_per_proxy = 4;
  Cluster cluster(config);
  cluster.preload(2000, 4096);
  cluster.set_workload(workload::ycsb_b(2000));
  autonomic::AutonomicOptions tuning;
  tuning.round_window = seconds(2);
  tuning.quarantine = seconds(1);
  cluster.enable_autotuning(tuning);
  cluster.run_for(seconds(60));
  EXPECT_TRUE(cluster.am()->converged());
  EXPECT_EQ(cluster.rm().config().default_q, (kv::QuorumConfig::of(1, 5)));
  EXPECT_TRUE(cluster.checker().clean());
}

}  // namespace
}  // namespace qopt
