#include <gtest/gtest.h>

#include "util/flags.hpp"

namespace qopt {
namespace {

Flags parse(std::initializer_list<const char*> args) {
  std::vector<const char*> argv{"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return Flags(static_cast<int>(argv.size()), argv.data());
}

TEST(FlagsTest, EqualsSyntax) {
  const Flags flags = parse({"--name=value", "--count=42"});
  EXPECT_EQ(flags.get_string("name", ""), "value");
  EXPECT_EQ(flags.get_int("count", 0), 42);
}

TEST(FlagsTest, SpaceSyntax) {
  const Flags flags = parse({"--name", "value", "--count", "7"});
  EXPECT_EQ(flags.get_string("name", ""), "value");
  EXPECT_EQ(flags.get_int("count", 0), 7);
}

TEST(FlagsTest, BooleanForms) {
  const Flags flags = parse({"--verbose", "--no-color", "--flag=false"});
  EXPECT_TRUE(flags.get_bool("verbose", false));
  EXPECT_FALSE(flags.get_bool("color", true));
  EXPECT_FALSE(flags.get_bool("flag", true));
  EXPECT_TRUE(flags.get_bool("absent", true));
  EXPECT_FALSE(flags.get_bool("absent2", false));
}

TEST(FlagsTest, DoubleValues) {
  const Flags flags = parse({"--ratio=0.75"});
  EXPECT_DOUBLE_EQ(flags.get_double("ratio", 0), 0.75);
  EXPECT_DOUBLE_EQ(flags.get_double("missing", 1.5), 1.5);
}

TEST(FlagsTest, PositionalArguments) {
  const Flags flags = parse({"input.csv", "--opt=1", "output.csv"});
  ASSERT_EQ(flags.positional().size(), 2u);
  EXPECT_EQ(flags.positional()[0], "input.csv");
  EXPECT_EQ(flags.positional()[1], "output.csv");
}

TEST(FlagsTest, FlagFollowedByFlagIsBoolean) {
  const Flags flags = parse({"--a", "--b", "value"});
  EXPECT_TRUE(flags.get_bool("a", false));
  EXPECT_EQ(flags.get_string("b", ""), "value");
}

TEST(FlagsTest, HasAndUnused) {
  const Flags flags = parse({"--used=1", "--typo=2"});
  EXPECT_TRUE(flags.has("used"));
  (void)flags.get_int("used", 0);
  const auto unused = flags.unused();
  ASSERT_EQ(unused.size(), 1u);
  EXPECT_EQ(unused[0], "typo");
}

TEST(FlagsTest, EmptyArgv) {
  const Flags flags = parse({});
  EXPECT_FALSE(flags.has("anything"));
  EXPECT_TRUE(flags.positional().empty());
  EXPECT_EQ(flags.get_int("n", -3), -3);
}

TEST(FlagsTest, LastOccurrenceWins) {
  const Flags flags = parse({"--n=1", "--n=2"});
  EXPECT_EQ(flags.get_int("n", 0), 2);
}

}  // namespace
}  // namespace qopt
