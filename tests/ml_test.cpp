#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "ml/cross_validation.hpp"
#include "ml/dataset.hpp"
#include "ml/decision_tree.hpp"
#include "util/rng.hpp"

namespace qopt::ml {
namespace {

Dataset make_xor_like() {
  // Two features; class = (x > 0.5) XOR (y > 0.5). Requires depth-2 splits.
  Dataset data({"x", "y"});
  Rng rng(3);
  for (int i = 0; i < 400; ++i) {
    const double x = rng.next_double();
    const double y = rng.next_double();
    const int label = ((x > 0.5) != (y > 0.5)) ? 1 : 0;
    data.add_row({x, y}, label);
  }
  return data;
}

TEST(DatasetTest, BasicAccessors) {
  Dataset data({"a", "b"});
  data.add_row({1.0, 2.0}, 0);
  data.add_row({3.0, 4.0}, 2);
  EXPECT_EQ(data.size(), 2u);
  EXPECT_EQ(data.num_features(), 2u);
  EXPECT_EQ(data.num_classes(), 3);  // labels 0..2
  EXPECT_DOUBLE_EQ(data.feature(1, 0), 3.0);
  EXPECT_EQ(data.label(1), 2);
  EXPECT_EQ(data.row(0).size(), 2u);
  EXPECT_DOUBLE_EQ(data.row(0)[1], 2.0);
}

TEST(DatasetTest, ArityMismatchThrows) {
  Dataset data({"a", "b"});
  EXPECT_THROW(data.add_row({1.0}, 0), std::invalid_argument);
  EXPECT_THROW(data.add_row({1.0, 2.0, 3.0}, 0), std::invalid_argument);
  EXPECT_THROW(data.add_row({1.0, 2.0}, -1), std::invalid_argument);
}

TEST(DatasetTest, SubsetSelectsRows) {
  Dataset data({"a"});
  for (int i = 0; i < 10; ++i) data.add_row({static_cast<double>(i)}, i % 2);
  const std::vector<std::size_t> idx{1, 3, 5};
  const Dataset sub = data.subset(idx);
  EXPECT_EQ(sub.size(), 3u);
  EXPECT_DOUBLE_EQ(sub.feature(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(sub.feature(2, 0), 5.0);
  EXPECT_EQ(sub.label(1), 1);
}

TEST(DecisionTreeTest, UntrainedThrows) {
  DecisionTree tree;
  const std::vector<double> row{0.0};
  EXPECT_THROW(tree.predict(row), std::logic_error);
  EXPECT_THROW((void)DecisionTree().train(Dataset({"a"})),
               std::invalid_argument);
}

TEST(DecisionTreeTest, LearnsSingleThreshold) {
  Dataset data({"x"});
  for (int i = 0; i < 50; ++i) {
    data.add_row({static_cast<double>(i)}, i < 25 ? 0 : 1);
  }
  DecisionTree tree;
  tree.train(data);
  const std::vector<double> low{3.0};
  const std::vector<double> high{40.0};
  EXPECT_EQ(tree.predict(low), 0);
  EXPECT_EQ(tree.predict(high), 1);
  EXPECT_LE(tree.depth(), 2);
}

TEST(DecisionTreeTest, LearnsXorInteraction) {
  const Dataset data = make_xor_like();
  DecisionTree tree;
  tree.train(data);
  int correct = 0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    if (tree.predict(data.row(i)) == data.label(i)) ++correct;
  }
  EXPECT_GT(static_cast<double>(correct) / static_cast<double>(data.size()),
            0.95);
  EXPECT_GE(tree.depth(), 2);  // a single split cannot express XOR
}

TEST(DecisionTreeTest, PureDatasetYieldsSingleLeaf) {
  Dataset data({"x"});
  for (int i = 0; i < 20; ++i) data.add_row({static_cast<double>(i)}, 3);
  DecisionTree tree;
  tree.train(data);
  EXPECT_EQ(tree.leaf_count(), 1u);
  const std::vector<double> any{100.0};
  EXPECT_EQ(tree.predict(any), 3);
}

TEST(DecisionTreeTest, MaxDepthRespected) {
  const Dataset data = make_xor_like();
  DecisionTree tree;
  TreeParams params;
  params.max_depth = 1;
  params.prune = false;
  tree.train(data, params);
  EXPECT_LE(tree.depth(), 2);  // root split + leaves
}

TEST(DecisionTreeTest, MinLeafPreventsTinySplits) {
  Dataset data({"x"});
  for (int i = 0; i < 10; ++i) data.add_row({static_cast<double>(i)}, i == 0);
  TreeParams params;
  params.min_leaf = 6;  // no binary split of 10 rows has both sides >= 6
  params.prune = false;
  DecisionTree tree;
  tree.train(data, params);
  EXPECT_EQ(tree.leaf_count(), 1u);

  // min_leaf = 5 admits exactly the 5/5 split, which has positive gain.
  params.min_leaf = 5;
  tree.train(data, params);
  EXPECT_EQ(tree.leaf_count(), 2u);
}

TEST(DecisionTreeTest, PruningReducesOrKeepsSize) {
  // Noisy labels: pruning should collapse spurious structure.
  Dataset data({"x"});
  Rng rng(17);
  for (int i = 0; i < 300; ++i) {
    const double x = rng.next_double();
    int label = x > 0.5 ? 1 : 0;
    if (rng.chance(0.15)) label = 1 - label;  // 15% label noise
    data.add_row({x}, label);
  }
  DecisionTree unpruned;
  TreeParams no_prune;
  no_prune.prune = false;
  unpruned.train(data, no_prune);

  DecisionTree pruned;
  pruned.train(data);  // default: pruning on
  EXPECT_LE(pruned.leaf_count(), unpruned.leaf_count());
  const std::vector<double> low{0.1};
  const std::vector<double> high{0.9};
  EXPECT_EQ(pruned.predict(low), 0);
  EXPECT_EQ(pruned.predict(high), 1);
}

TEST(DecisionTreeTest, DistributionSumsToLeafExamples) {
  Dataset data({"x"});
  for (int i = 0; i < 30; ++i) {
    data.add_row({static_cast<double>(i)}, i < 10 ? 0 : 1);
  }
  DecisionTree tree;
  tree.train(data);
  const std::vector<double> probe{5.0};
  const std::vector<double> dist = tree.predict_distribution(probe);
  double total = 0;
  for (double c : dist) total += c;
  EXPECT_GT(total, 0.0);
  EXPECT_EQ(dist.size(), 2u);
}

TEST(DecisionTreeTest, ToStringMentionsFeatureNames) {
  Dataset data({"write_ratio"});
  for (int i = 0; i < 40; ++i) {
    data.add_row({static_cast<double>(i) / 40.0}, i < 20 ? 0 : 1);
  }
  DecisionTree tree;
  tree.train(data);
  const std::string dump = tree.to_string(data.feature_names());
  EXPECT_NE(dump.find("write_ratio"), std::string::npos);
  EXPECT_NE(dump.find("class"), std::string::npos);
}

TEST(DecisionTreeTest, MulticlassSeparableBands) {
  // Class = floor(x * 5): five bands on one feature.
  Dataset data({"x"});
  Rng rng(23);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.next_double();
    data.add_row({x}, static_cast<int>(x * 5.0));
  }
  DecisionTree tree;
  tree.train(data);
  int correct = 0;
  for (int i = 0; i < 100; ++i) {
    const double x = (i + 0.5) / 100.0;
    const std::vector<double> row{x};
    if (tree.predict(row) == static_cast<int>(x * 5.0)) ++correct;
  }
  EXPECT_GE(correct, 95);
}

// -------------------------------------------------------- cross-validation

TEST(CrossValidationTest, HighAccuracyOnSeparableData) {
  Dataset data({"x", "y"});
  Rng rng(29);
  for (int i = 0; i < 300; ++i) {
    const double x = rng.next_double();
    const double y = rng.next_double();
    data.add_row({x, y}, x + y > 1.0 ? 1 : 0);
  }
  const CvResult result = cross_validate(data, 10);
  EXPECT_EQ(result.total, 300u);
  EXPECT_GT(result.accuracy(), 0.9);
  EXPECT_GE(result.within_one_accuracy(), result.accuracy());
}

TEST(CrossValidationTest, ConfusionMatrixSumsToTotal) {
  Dataset data({"x"});
  Rng rng(31);
  for (int i = 0; i < 120; ++i) {
    const double x = rng.next_double();
    data.add_row({x}, x > 0.5 ? 1 : 0);
  }
  const CvResult result = cross_validate(data, 6);
  std::size_t sum = 0;
  for (const auto& row : result.confusion) {
    for (std::size_t c : row) sum += c;
  }
  EXPECT_EQ(sum, result.total);
}

TEST(CrossValidationTest, DeterministicForSameSeed) {
  const Dataset data = make_xor_like();
  const CvResult a = cross_validate(data, 5, {}, 99);
  const CvResult b = cross_validate(data, 5, {}, 99);
  EXPECT_EQ(a.correct, b.correct);
  EXPECT_EQ(a.within_one, b.within_one);
}

TEST(CrossValidationTest, InvalidArgumentsThrow) {
  Dataset data({"x"});
  data.add_row({1.0}, 0);
  data.add_row({2.0}, 1);
  EXPECT_THROW(cross_validate(data, 1), std::invalid_argument);
  EXPECT_THROW(cross_validate(data, 5), std::invalid_argument);
}

TEST(CrossValidationTest, WithinOneCountsAdjacentClasses) {
  // Classes 0..4 by bands with noise pushing to neighbours: within_one
  // should be clearly higher than exact accuracy.
  Dataset data({"x"});
  Rng rng(37);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.next_double();
    int label = static_cast<int>(x * 5.0);
    if (rng.chance(0.3)) label = std::min(4, label + 1);
    data.add_row({x}, label);
  }
  const CvResult result = cross_validate(data, 5);
  EXPECT_GT(result.within_one_accuracy(), result.accuracy() + 0.1);
}

}  // namespace
}  // namespace qopt::ml
