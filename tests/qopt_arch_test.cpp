// qopt_arch's own test suite: every rule must fire on a fixture tree that
// contains a known violation, stay silent on clean trees, and honour the
// shared justified-suppression grammar. Fixture trees live under
// tests/arch_fixtures/<case>/src/...; the shared file walker skips any
// directory ending in `_fixtures`, so the tree-wide qopt_arch_tree and
// qopt_lint_tree ctests never see the deliberately-broken files.
//
// The two real-tree tests at the bottom are the acceptance criteria: the
// repository itself scans clean against docs/ARCHITECTURE.toml, and every
// edge the manifest allows is load-bearing (deleting any single one makes
// the scan fail).
#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "qopt_arch/arch.hpp"

namespace {

using qopt::arch::Finding;
using qopt::arch::Manifest;
using qopt::arch::Tree;

std::string fixture_root(const std::string& name) {
  return std::string(QOPT_ARCH_FIXTURE_DIR) + "/" + name;
}

/// Loads `tests/arch_fixtures/<name>/src` and analyzes it against an
/// inline manifest body (the `[layers]`/`[modules.*]` sections).
std::vector<Finding> analyze_fixture(const std::string& name,
                                     const std::string& manifest_text) {
  const Tree tree = qopt::arch::load_tree(fixture_root(name), {"src"});
  EXPECT_TRUE(tree.errors.empty()) << "fixture tree failed to load: " << name;
  const Manifest manifest =
      qopt::arch::parse_manifest("test.toml", manifest_text);
  return qopt::arch::analyze(tree, manifest);
}

std::map<std::string, int> count_by_rule(const std::vector<Finding>& fs) {
  std::map<std::string, int> counts;
  for (const Finding& f : fs) ++counts[f.rule];
  return counts;
}

bool has_finding(const std::vector<Finding>& fs, const std::string& rule,
                 const std::string& file, std::size_t line) {
  return std::any_of(fs.begin(), fs.end(), [&](const Finding& f) {
    return f.rule == rule && f.file == file && f.line == line;
  });
}

std::string describe(const std::vector<Finding>& fs) {
  std::string out;
  for (const Finding& f : fs) out += qopt::analysis::format_finding(f) + "\n";
  return out;
}

constexpr const char* kSingleModuleA =
    "[layers]\norder = [\"a\"]\n[modules.a]\ndeps = []\n";

// ------------------------------------------------------------- manifest

TEST(QoptArchTest, ManifestParsesOrderAndDeps) {
  const Manifest m = qopt::arch::parse_manifest("m.toml",
                                                "# comment\n"
                                                "[layers]\n"
                                                "order = [\n"
                                                "  \"util\",  # low\n"
                                                "  \"core\",\n"
                                                "]\n"
                                                "[modules.util]\n"
                                                "deps = []\n"
                                                "[modules.core]\n"
                                                "deps = [\"util\"]\n");
  EXPECT_TRUE(m.errors.empty()) << describe(m.errors);
  ASSERT_EQ(m.order.size(), 2u);
  EXPECT_EQ(m.order[0], "util");
  EXPECT_EQ(m.order[1], "core");
  EXPECT_TRUE(m.deps.at("util").empty());
  EXPECT_EQ(m.deps.at("core").count("util"), 1u);
}

TEST(QoptArchTest, ManifestRejectsUpwardAndUnknownDeps) {
  // core dep on itself, util dep on a *higher* layer, dep on a module that
  // does not exist, and a module declared but missing from the order.
  const Manifest m = qopt::arch::parse_manifest(
      "m.toml",
      "[layers]\norder = [\"util\", \"core\"]\n"
      "[modules.util]\ndeps = [\"core\", \"ghost\"]\n"
      "[modules.core]\ndeps = [\"core\"]\n"
      "[modules.stray]\ndeps = []\n");
  const Tree empty_tree;
  const auto findings = qopt::arch::check_layering(empty_tree, m);
  const auto counts = count_by_rule(findings);
  EXPECT_EQ(counts.at("manifest"), 4) << describe(findings);
}

TEST(QoptArchTest, ManifestOrderMustNameDeclaredModulesOnce) {
  const Manifest m = qopt::arch::parse_manifest(
      "m.toml",
      "[layers]\norder = [\"util\", \"util\", \"phantom\"]\n"
      "[modules.util]\ndeps = []\n");
  const Tree empty_tree;
  const auto findings = qopt::arch::check_layering(empty_tree, m);
  const auto counts = count_by_rule(findings);
  // duplicate `util` + undeclared `phantom`.
  EXPECT_EQ(counts.at("manifest"), 2) << describe(findings);
}

// ------------------------------------------------------------- layering

TEST(QoptArchTest, ForbiddenEdgeAndUnknownModuleFixture) {
  const auto findings = analyze_fixture(
      "layering",
      "[layers]\norder = [\"util\", \"core\"]\n"
      "[modules.util]\ndeps = []\n"
      "[modules.core]\ndeps = [\"util\"]\n");
  const auto counts = count_by_rule(findings);
  EXPECT_EQ(counts.at("forbidden-edge"), 1) << describe(findings);
  EXPECT_EQ(counts.at("unknown-module"), 1) << describe(findings);
  EXPECT_EQ(counts.size(), 2u) << describe(findings);
  EXPECT_TRUE(has_finding(findings, "forbidden-edge", "src/util/low.hpp", 4));
  EXPECT_TRUE(has_finding(findings, "unknown-module", "src/rogue/stray.hpp", 1));
}

TEST(QoptArchTest, IncludeCycleFixtureReportsTheCycleOnce) {
  const auto findings = analyze_fixture("cycle", kSingleModuleA);
  const auto counts = count_by_rule(findings);
  EXPECT_EQ(counts.at("include-cycle"), 1) << describe(findings);
  EXPECT_EQ(counts.size(), 1u) << describe(findings);
  EXPECT_NE(findings[0].message.find("src/a/x.hpp -> src/a/y.hpp"),
            std::string::npos)
      << findings[0].message;
}

// -------------------------------------------------------------- hygiene

TEST(QoptArchTest, HygieneFixtureFlagsGuardStyleAndRelativeIncludes) {
  const auto findings = analyze_fixture(
      "hygiene", "[layers]\norder = [\"h\"]\n[modules.h]\ndeps = []\n");
  EXPECT_TRUE(has_finding(findings, "pragma-once", "src/h/noguard.hpp", 1));
  EXPECT_TRUE(has_finding(findings, "include-style", "src/h/style.cpp", 2))
      << describe(findings);  // in-repo header spelled with <...>
  EXPECT_TRUE(has_finding(findings, "relative-include", "src/h/style.cpp", 5));
  EXPECT_TRUE(has_finding(findings, "include-style", "src/h/style.cpp", 6))
      << describe(findings);  // quoted include that resolves nowhere
  const auto counts = count_by_rule(findings);
  EXPECT_EQ(counts.at("pragma-once"), 1);
  EXPECT_EQ(counts.at("include-style"), 2);
  EXPECT_EQ(counts.at("relative-include"), 1);
  EXPECT_EQ(counts.size(), 3u) << describe(findings);
}

// ------------------------------------------------------------ IWYU-lite

TEST(QoptArchTest, UnusedIncludeFixture) {
  const auto findings = analyze_fixture("unused", kSingleModuleA);
  const auto counts = count_by_rule(findings);
  EXPECT_EQ(counts.at("unused-include"), 1) << describe(findings);
  EXPECT_EQ(counts.size(), 1u) << describe(findings);
  EXPECT_TRUE(has_finding(findings, "unused-include", "src/a/main.cpp", 2));
}

TEST(QoptArchTest, MissingIncludeFixtureFlagsTheTransitiveLeak) {
  const auto findings = analyze_fixture("missing", kSingleModuleA);
  const auto counts = count_by_rule(findings);
  EXPECT_EQ(counts.at("missing-include"), 1) << describe(findings);
  EXPECT_EQ(counts.size(), 1u) << describe(findings);
  ASSERT_TRUE(has_finding(findings, "missing-include", "src/a/use.cpp", 4));
  EXPECT_NE(findings[0].message.find("`Widget`"), std::string::npos);
  EXPECT_NE(findings[0].message.find("src/a/types.hpp"), std::string::npos);
}

TEST(QoptArchTest, NonSelfContainedHeaderIsCalledOut) {
  const auto findings = analyze_fixture("nonself", kSingleModuleA);
  ASSERT_EQ(findings.size(), 1u) << describe(findings);
  EXPECT_EQ(findings[0].rule, "missing-include");
  EXPECT_EQ(findings[0].file, "src/a/user.hpp");
  EXPECT_NE(findings[0].message.find("not self-contained"), std::string::npos)
      << findings[0].message;
}

TEST(QoptArchTest, ExportMarkerMakesUmbrellaIncludesDirect) {
  const auto findings = analyze_fixture("exportmark", kSingleModuleA);
  EXPECT_TRUE(findings.empty()) << describe(findings);
}

// --------------------------------------------------------- suppressions

TEST(QoptArchTest, BareAllowIsAFindingAndDoesNotSuppress) {
  const auto findings = analyze_fixture("badsuppress", kSingleModuleA);
  const auto counts = count_by_rule(findings);
  EXPECT_EQ(counts.at("bare-allow"), 1) << describe(findings);
  EXPECT_EQ(counts.at("unused-include"), 1) << describe(findings);
  EXPECT_EQ(counts.size(), 2u) << describe(findings);
  // The justified allow on the uu.hpp include suppressed that finding.
  EXPECT_TRUE(has_finding(findings, "unused-include", "src/a/s.cpp", 4));
}

TEST(QoptArchTest, SuppressionsReportInUnifiedFormat) {
  const Tree tree = qopt::arch::load_tree(fixture_root("badsuppress"), {"src"});
  const auto sups = qopt::arch::suppressions(tree);
  ASSERT_EQ(sups.size(), 1u);
  EXPECT_EQ(qopt::analysis::format_suppression(sups[0]),
            "qopt-arch:unused-include:src/a/s.cpp:5: kept for ABI reasons");
}

// -------------------------------------------------------------- exports

TEST(QoptArchTest, ModuleGraphExportsAreDeterministic) {
  const Tree tree = qopt::arch::load_tree(fixture_root("clean"), {"src"});
  const Manifest manifest = qopt::arch::parse_manifest(
      "m.toml",
      "[layers]\norder = [\"low\", \"high\"]\n"
      "[modules.low]\ndeps = []\n"
      "[modules.high]\ndeps = [\"low\"]\n");
  EXPECT_TRUE(qopt::arch::analyze(tree, manifest).empty())
      << describe(qopt::arch::analyze(tree, manifest));

  const std::string dot = qopt::arch::export_dot(tree, manifest);
  EXPECT_EQ(dot, qopt::arch::export_dot(tree, manifest));
  EXPECT_NE(dot.find("\"high\" -> \"low\" [label=\"1\"]"), std::string::npos)
      << dot;
  EXPECT_NE(dot.find("\"low\" [label=\"low\\nlayer 0\"]"), std::string::npos)
      << dot;

  const std::string json = qopt::arch::export_json(tree, manifest);
  EXPECT_EQ(json, qopt::arch::export_json(tree, manifest));
  EXPECT_NE(json.find("{\"from\": \"high\", \"to\": \"low\", "
                      "\"includes\": 1}"),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"files\": 3"), std::string::npos) << json;
}

// ------------------------------------------------------- the real tree

TEST(QoptArchTest, RepositoryScansCleanAgainstItsManifest) {
  const std::string root = QOPT_SOURCE_ROOT;
  const Manifest manifest =
      qopt::arch::load_manifest(root + "/docs/ARCHITECTURE.toml");
  EXPECT_TRUE(manifest.errors.empty()) << describe(manifest.errors);
  const Tree tree = qopt::arch::load_tree(
      root, {"src", "tools", "tests", "bench", "examples"});
  const auto findings = qopt::arch::analyze(tree, manifest);
  EXPECT_TRUE(findings.empty()) << describe(findings);
}

TEST(QoptArchTest, EveryAllowedEdgeIsLoadBearing) {
  // Deleting any single allowed edge from the manifest must make the tree
  // scan fail: the manifest documents reality, with no slack that would
  // let an architecture violation hide behind an unused allowance.
  const std::string root = QOPT_SOURCE_ROOT;
  const Manifest manifest =
      qopt::arch::load_manifest(root + "/docs/ARCHITECTURE.toml");
  const Tree tree = qopt::arch::load_tree(
      root, {"src", "tools", "tests", "bench", "examples"});
  ASSERT_TRUE(qopt::arch::check_layering(tree, manifest).empty());

  for (const auto& [module, deps] : manifest.deps) {
    for (const std::string& dep : deps) {
      Manifest pruned = manifest;
      pruned.deps[module].erase(dep);
      const auto findings = qopt::arch::check_layering(tree, pruned);
      EXPECT_FALSE(findings.empty())
          << "edge " << module << " -> " << dep
          << " is allowed by docs/ARCHITECTURE.toml but exercised by no "
             "include; delete it from the manifest";
      for (const Finding& f : findings) {
        EXPECT_EQ(f.rule, "forbidden-edge") << qopt::analysis::format_finding(f);
      }
    }
  }
}

}  // namespace
