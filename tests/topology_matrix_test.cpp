// Topology generality: the core invariants (quorum fan-out, consistency,
// reconfiguration, self-tuning direction) must hold across replication
// degrees and cluster shapes, not just the paper's N=5 testbed.
#include <gtest/gtest.h>

#include <tuple>

#include "autonomic/autonomic_manager.hpp"
#include "core/cluster.hpp"
#include "kv/types.hpp"
#include "util/rng.hpp"
#include "workload/workload.hpp"

namespace qopt {
namespace {

// (replication, storage nodes, proxies)
using Topology = std::tuple<int, std::uint32_t, std::uint32_t>;

class TopologyMatrix : public ::testing::TestWithParam<Topology> {
 protected:
  ClusterConfig make_config() const {
    const auto [replication, storage, proxies] = GetParam();
    ClusterConfig config;
    config.replication = replication;
    config.num_storage = storage;
    config.num_proxies = proxies;
    config.clients_per_proxy = 3;
    config.initial_quorum = {replication / 2 + 1, replication / 2 + 1};
    config.seed = 7 + replication;
    return config;
  }
};

TEST_P(TopologyMatrix, DataPathAndConsistency) {
  Cluster cluster(make_config());
  cluster.preload(300, 1024);
  cluster.set_workload(workload::ycsb_a(300));
  cluster.run_for(seconds(3));
  EXPECT_GT(cluster.metrics().total_ops(), 500u);
  EXPECT_TRUE(cluster.checker().clean());
  for (std::uint32_t c = 0; c < cluster.num_clients(); ++c) {
    EXPECT_GT(cluster.client(c).ops_completed(), 0u);
  }
}

TEST_P(TopologyMatrix, EveryStrictQuorumWorks) {
  const auto [replication, storage, proxies] = GetParam();
  Cluster cluster(make_config());
  cluster.preload(200, 1024);
  cluster.set_workload(workload::ycsb_a(200));
  cluster.run_for(milliseconds(500));
  for (int w = 1; w <= replication; ++w) {
    cluster.reconfigure({replication - w + 1, w});
    cluster.run_for(seconds(1));
    EXPECT_EQ(cluster.rm().config().default_q.write_footprint(), w);
  }
  EXPECT_EQ(cluster.obs().registry().counter_value("rm.reconfigurations_completed"),
            static_cast<std::uint64_t>(replication));
  EXPECT_TRUE(cluster.checker().clean());
}

TEST_P(TopologyMatrix, WriteLandsOnExactlyWriteQuorumReplicas) {
  const auto [replication, storage, proxies] = GetParam();
  ClusterConfig config = make_config();
  const int w = std::max(1, replication - 1);
  config.initial_quorum = {replication - w + 1, w};
  Cluster cluster(config);
  // One client, write-only, tiny keyspace: inspect replica counts.
  workload::WorkloadSpec spec;
  spec.write_ratio = 1.0;
  spec.keys = std::make_shared<workload::UniformKeys>(20);
  cluster.set_workload(std::make_shared<workload::BasicWorkload>(spec));
  cluster.run_for(seconds(1));
  cluster.stop_clients();
  cluster.run_for(seconds(1));
  for (kv::ObjectId oid = 0; oid < 20; ++oid) {
    int holders = 0;
    for (std::uint32_t replica : cluster.placement().replicas(oid)) {
      holders += cluster.storage(replica).peek(oid) != nullptr;
    }
    if (holders == 0) continue;  // key never written by the workload
    EXPECT_GE(holders, w) << "oid " << oid;
    EXPECT_LE(holders, replication) << "oid " << oid;
  }
}

TEST_P(TopologyMatrix, AutotuningMovesInTheRightDirection) {
  const auto [replication, storage, proxies] = GetParam();
  Cluster cluster(make_config());
  cluster.preload(1000, 4096);
  cluster.set_workload(workload::ycsb_b(1000));  // read-heavy
  autonomic::AutonomicOptions tuning;
  tuning.round_window = seconds(2);
  tuning.quarantine = seconds(1);
  cluster.enable_autotuning(tuning);
  cluster.run_for(seconds(45));
  // Read-heavy: the tuned default must have a read quorum no larger than
  // the balanced start (and typically R=1).
  EXPECT_LE(cluster.rm().config().default_q.read_footprint(),
            replication / 2 + 1);
  EXPECT_TRUE(cluster.checker().clean());
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, TopologyMatrix,
    ::testing::Values(Topology{3, 5, 1}, Topology{3, 9, 3},
                      Topology{5, 7, 2}, Topology{5, 16, 4},
                      Topology{7, 9, 2}, Topology{9, 12, 3}),
    [](const auto& param_info) {
      return "n" + std::to_string(std::get<0>(param_info.param)) + "_s" +
             std::to_string(std::get<1>(param_info.param)) + "_p" +
             std::to_string(std::get<2>(param_info.param));
    });

// ---------------------------------------------------- inserting workload

TEST(InsertingWorkloadTest, KeyspaceGrows) {
  workload::InsertingWorkload::Spec spec;
  spec.insert_ratio = 0.5;
  spec.initial_keys = 10;
  workload::InsertingWorkload load(spec);
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) load.next(rng, 0);
  EXPECT_NEAR(static_cast<double>(load.keys_inserted()), 500.0, 60.0);
  EXPECT_EQ(load.key_count(), 10 + load.keys_inserted());
}

TEST(InsertingWorkloadTest, NonInsertOpsSkewTowardRecentKeys) {
  workload::InsertingWorkload::Spec spec;
  spec.insert_ratio = 0.0;  // fixed keyspace to measure the skew
  spec.initial_keys = 10'000;
  workload::InsertingWorkload load(spec);
  Rng rng(5);
  int in_newest_decile = 0;
  const int n = 20'000;
  for (int i = 0; i < n; ++i) {
    if (load.next(rng, 0).oid >= 9'000) ++in_newest_decile;
  }
  EXPECT_GT(in_newest_decile, n * 0.8)
      << "latest distribution not recency-skewed";
}

TEST(InsertingWorkloadTest, InsertsAreWritesWithFreshKeys) {
  workload::InsertingWorkload::Spec spec;
  spec.insert_ratio = 1.0;
  spec.initial_keys = 5;
  spec.key_offset = 1'000;
  workload::InsertingWorkload load(spec);
  Rng rng(7);
  for (std::uint64_t i = 0; i < 50; ++i) {
    const workload::Operation op = load.next(rng, 0);
    EXPECT_TRUE(op.is_write);
    EXPECT_EQ(op.oid, 1'005 + i);  // strictly appending
  }
}

TEST(InsertingWorkloadTest, ZeroInitialKeysThrows) {
  workload::InsertingWorkload::Spec spec;
  spec.initial_keys = 0;
  EXPECT_THROW(workload::InsertingWorkload{spec}, std::invalid_argument);
}

TEST(InsertingWorkloadTest, EndToEndUploadScenario) {
  // Upload-dominated personal storage: inserts + recent reads; the cluster
  // serves it consistently and Q-OPT tunes toward small write quorums.
  ClusterConfig config;
  config.num_storage = 5;
  config.num_proxies = 2;
  config.clients_per_proxy = 4;
  config.replication = 5;
  config.initial_quorum = {3, 3};
  config.seed = 77;
  Cluster cluster(config);
  workload::InsertingWorkload::Spec spec;
  spec.insert_ratio = 0.7;
  spec.write_ratio = 0.3;
  spec.initial_keys = 100;
  cluster.preload(100, 4096);
  auto load = std::make_shared<workload::InsertingWorkload>(spec);
  cluster.set_workload(load);
  autonomic::AutonomicOptions tuning;
  tuning.round_window = seconds(2);
  tuning.quarantine = seconds(1);
  cluster.enable_autotuning(tuning);
  cluster.run_for(seconds(40));
  EXPECT_GT(load->keys_inserted(), 1'000u);
  EXPECT_TRUE(cluster.checker().clean());
  // ~80% of operations are writes: small W wins.
  EXPECT_LE(cluster.rm().config().default_q.write_footprint(), 2);
}

}  // namespace
}  // namespace qopt
