// Tests for the Autonomic Manager's round-based optimization (Algorithm 1):
// fine-grain hotspot tuning, the γ/θ stopping rule, tail optimization,
// steady-state drift handling, and workload-change restarts.
#include <gtest/gtest.h>

#include "autonomic/autonomic_manager.hpp"
#include "core/cluster.hpp"
#include "kv/types.hpp"
#include "util/time.hpp"
#include "workload/workload.hpp"

namespace qopt {
namespace {

ClusterConfig am_config() {
  ClusterConfig config;
  config.num_storage = 5;
  config.num_proxies = 2;
  config.clients_per_proxy = 5;
  config.replication = 5;
  config.initial_quorum = {3, 3};
  config.seed = 21;
  return config;
}

autonomic::AutonomicOptions fast_tuning() {
  autonomic::AutonomicOptions options;
  options.round_window = seconds(2);
  options.quarantine = seconds(1);
  options.topk_per_round = 4;
  return options;
}

TEST(AutonomicTest, ConvergesToLargeWForReadHeavyTail) {
  Cluster cluster(am_config());
  cluster.preload(2000, 4096);
  cluster.set_workload(workload::ycsb_b(2000));
  cluster.enable_autotuning(fast_tuning());
  cluster.run_for(seconds(60));
  ASSERT_TRUE(cluster.am()->converged());
  // 95% reads -> oracle picks W=5 (R=1) for the tail.
  EXPECT_EQ(cluster.rm().config().default_q, (kv::QuorumConfig::of(1, 5)));
  EXPECT_GE(cluster.obs().registry().counter_value("am.tail_reconfigs"), 1u);
  EXPECT_TRUE(cluster.checker().clean());
}

TEST(AutonomicTest, ConvergesToSmallWForWriteHeavyTail) {
  Cluster cluster(am_config());
  cluster.preload(2000, 4096);
  cluster.set_workload(workload::backup_c(2000));
  cluster.enable_autotuning(fast_tuning());
  cluster.run_for(seconds(60));
  ASSERT_TRUE(cluster.am()->converged());
  EXPECT_EQ(cluster.rm().config().default_q, (kv::QuorumConfig::of(5, 1)));
  EXPECT_TRUE(cluster.checker().clean());
}

TEST(AutonomicTest, HotspotObjectsGetPerObjectOverrides) {
  Cluster cluster(am_config());
  cluster.preload(5000, 4096);
  // Zipfian read-heavy traffic: hot objects exist and differ from the tail.
  cluster.set_workload(workload::ycsb_b(5000));
  cluster.enable_autotuning(fast_tuning());
  cluster.run_for(seconds(40));
  EXPECT_GT(cluster.obs().registry().counter_value("am.objects_tuned"), 0u);
  EXPECT_GT(cluster.rm().config().overrides.size(), 0u);
  // Every installed override must be strict.
  for (const auto& [oid, q] : cluster.rm().config().overrides) {
    EXPECT_TRUE(q.valid(5));
  }
}

TEST(AutonomicTest, StopsFineGrainWhenImprovementFades) {
  Cluster cluster(am_config());
  cluster.preload(2000, 4096);
  cluster.set_workload(workload::ycsb_b(2000));
  cluster.enable_autotuning(fast_tuning());
  cluster.run_for(seconds(90));
  ASSERT_TRUE(cluster.am()->converged());
  // Convergence implies rounds stopped triggering fine-grain reconfigs;
  // steady rounds continue but tuned-object count stabilizes.
  const std::uint64_t tuned = cluster.obs().registry().counter_value("am.objects_tuned");
  cluster.run_for(seconds(20));
  EXPECT_LE(cluster.obs().registry().counter_value("am.objects_tuned"), tuned + 4)
      << "fine-grain tuning kept churning after convergence";
}

TEST(AutonomicTest, ConstraintsRestrictChosenQuorums) {
  Cluster cluster(am_config());
  cluster.preload(2000, 4096);
  cluster.set_workload(workload::ycsb_b(2000));  // would want W=5
  autonomic::AutonomicOptions options = fast_tuning();
  options.constraints.min_read = 2;  // fault-tolerance SLA: R >= 2 -> W <= 4
  cluster.enable_autotuning(options);
  cluster.run_for(seconds(60));
  EXPECT_LE(cluster.rm().config().default_q.write_footprint(), 4);
  EXPECT_GE(cluster.rm().config().default_q.read_footprint(), 2);
  for (const auto& [oid, q] : cluster.rm().config().overrides) {
    EXPECT_GE(q.read_footprint(), 2);
  }
}

TEST(AutonomicTest, RestartsAfterWorkloadShift) {
  Cluster cluster(am_config());
  cluster.preload(2000, 4096);
  // Dropbox commute pattern: read-heavy day, write-heavy evening.
  auto day = workload::ycsb_b(2000);
  auto evening = workload::backup_c(2000);
  cluster.set_workload(std::make_shared<workload::PhasedWorkload>(
      std::vector<workload::PhasedWorkload::Phase>{
          {seconds(70), day}, {seconds(200), evening}}));
  cluster.enable_autotuning(fast_tuning());
  cluster.run_for(seconds(60));
  ASSERT_TRUE(cluster.am()->converged());
  EXPECT_EQ(cluster.rm().config().default_q.write_footprint(), 5);  // read-optimized
  cluster.run_for(seconds(150));
  // After the shift the manager must have detected the KPI change and
  // re-optimized toward a write-friendly configuration.
  EXPECT_LE(cluster.rm().config().default_q.write_footprint(), 2)
      << "did not adapt to the write-heavy phase";
  EXPECT_TRUE(cluster.checker().clean());
}

TEST(AutonomicTest, EventCallbackEmitsTrace) {
  Cluster cluster(am_config());
  cluster.preload(1000, 4096);
  cluster.set_workload(workload::ycsb_b(1000));
  cluster.enable_autotuning(fast_tuning());
  std::vector<std::string> events;
  cluster.am()->set_event_callback(
      [&](Time, const std::string& what) { events.push_back(what); });
  cluster.run_for(seconds(60));
  EXPECT_FALSE(events.empty());
}

TEST(AutonomicTest, SurvivesProxyCrashDuringTuning) {
  Cluster cluster(am_config());
  cluster.preload(1000, 4096);
  cluster.set_workload(workload::ycsb_b(1000));
  cluster.enable_autotuning(fast_tuning());
  cluster.run_for(seconds(5));
  cluster.crash_proxy(1);
  cluster.run_for(seconds(60));
  // Rounds keep progressing using the surviving proxy's reports.
  EXPECT_TRUE(cluster.am()->converged());
  EXPECT_EQ(cluster.rm().config().default_q, (kv::QuorumConfig::of(1, 5)));
  EXPECT_TRUE(cluster.checker().clean());
}

TEST(AutonomicTest, DoubleEnableThrows) {
  Cluster cluster(am_config());
  cluster.enable_autotuning(fast_tuning());
  EXPECT_THROW(cluster.enable_autotuning(fast_tuning()), std::logic_error);
}

TEST(AutonomicTest, StopHaltsRounds) {
  Cluster cluster(am_config());
  cluster.preload(500, 4096);
  cluster.set_workload(workload::ycsb_a(500));
  cluster.enable_autotuning(fast_tuning());
  cluster.run_for(seconds(10));
  cluster.am()->stop();
  const std::uint64_t rounds = cluster.obs().registry().counter_value("am.rounds");
  cluster.run_for(seconds(20));
  EXPECT_EQ(cluster.obs().registry().counter_value("am.rounds"), rounds);
}

TEST(AutonomicTest, LatencyKpiAlsoConverges) {
  Cluster cluster(am_config());
  cluster.preload(2000, 4096);
  cluster.set_workload(workload::ycsb_b(2000));
  autonomic::AutonomicOptions options = fast_tuning();
  options.kpi = autonomic::Kpi::kLatency;
  cluster.enable_autotuning(options);
  cluster.run_for(seconds(60));
  EXPECT_TRUE(cluster.am()->converged());
  EXPECT_EQ(cluster.rm().config().default_q.write_footprint(), 5);
}

}  // namespace
}  // namespace qopt
