// Fixture: one bare allow (a finding in itself, suppresses nothing) and
// one justified allow (suppresses the unused-include on its line).
// qopt-arch: allow(unused-include)
#include "a/tt.hpp"
#include "a/uu.hpp"  // qopt-arch: allow(unused-include) kept for ABI reasons

int suppress_entry() { return 0; }
