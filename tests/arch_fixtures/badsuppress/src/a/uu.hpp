// Fixture: unused header behind a *justified* allow (which suppresses).
#pragma once

struct Uu {
  int v = 0;
};
