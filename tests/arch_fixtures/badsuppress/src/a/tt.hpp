// Fixture: unused header behind a *bare* allow (which must not suppress).
#pragma once

struct Tt {
  int v = 0;
};
