// Fixture: one half of a deliberate file-level include cycle.
#pragma once

#include "a/y.hpp"

struct CycleX {
  CycleY* peer = nullptr;
};
