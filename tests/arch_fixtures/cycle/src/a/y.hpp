// Fixture: the other half of the cycle.
#pragma once

#include "a/x.hpp"

struct CycleY {
  CycleX* peer = nullptr;
};
