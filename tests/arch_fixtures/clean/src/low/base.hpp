// Fixture: foundation module of the clean two-layer tree.
#pragma once

struct Base {
  int v = 0;
};
