#include "high/top.hpp"

Top make_top() { return Top{}; }
