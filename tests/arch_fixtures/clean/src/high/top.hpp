// Fixture: upper module, legally depending downward on low.
#pragma once

#include "low/base.hpp"

struct Top {
  Base base;
};
