// Fixture: header whose only symbol the includer never mentions.
#pragma once

struct UnusedThing {
  int v = 0;
};
