// Fixture: includes a header and uses nothing from it.
#include "a/used.hpp"

int fixture_entry() { return 0; }
