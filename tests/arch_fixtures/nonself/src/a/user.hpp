// Fixture: a *header* that names `Gadget` without including its owner —
// it compiles only inside a TU that happens to pull types.hpp in first,
// i.e. it is not self-contained.
#pragma once

#include "a/mid.hpp"

struct Holder {
  Gadget* g = nullptr;
};
