// Fixture: middleman that leaks `Gadget` transitively.
#pragma once

#include "a/types.hpp"

using GadgetRef = Gadget&;
