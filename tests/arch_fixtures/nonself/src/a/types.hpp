// Fixture: the uniquely-owning header of `Gadget`.
#pragma once

struct Gadget {
  int v = 0;
};
