// Fixture: reaches `Sprocket` through the umbrella, which counts as a
// direct include thanks to the export marker.
#include "a/umbrella.hpp"

int sprocket_value(const Sprocket& s) { return s.v; }
