// Fixture: the uniquely-owning header of `Sprocket`.
#pragma once

struct Sprocket {
  int v = 0;
};
