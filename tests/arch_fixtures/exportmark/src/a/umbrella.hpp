// Fixture: umbrella header that deliberately re-exports types.hpp.
#pragma once

#include "a/types.hpp"  // qopt-arch: export
