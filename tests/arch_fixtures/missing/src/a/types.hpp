// Fixture: the uniquely-owning header of `Widget`.
#pragma once

struct Widget {
  int v = 0;
};
