// Fixture: middleman that leaks `Widget` transitively to its includers.
#pragma once

#include "a/types.hpp"

using WidgetRef = Widget&;
