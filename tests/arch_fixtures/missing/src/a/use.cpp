// Fixture: names `Widget` but only reaches types.hpp through mid.hpp.
#include "a/mid.hpp"

int widget_value(const Widget& w) { return w.v; }
