// Fixture: lives in a module the manifest does not declare.
#pragma once

struct StrayThing {
  int id = 0;
};
