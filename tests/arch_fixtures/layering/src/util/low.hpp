// Fixture: a foundation-layer header reaching *upward* into core.
#pragma once

#include "core/high.hpp"

struct LowThing {
  HighThing* owner = nullptr;
};
