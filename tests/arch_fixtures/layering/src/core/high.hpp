// Fixture: top-layer header (the illegal target of util's include).
#pragma once

struct HighThing {
  int weight = 0;
};
