// Fixture: every include-spelling mistake in one file.
#include <h/noguard.hpp>
#include <vector>

#include "../h/noguard.hpp"
#include "no/such/header.hpp"

int style_entry(const NoGuard& g) { return g.v; }
