// Fixture: header without `#pragma once`.

struct NoGuard {
  int v = 0;
};
