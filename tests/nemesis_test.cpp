// Nemesis-driven chaos testing: dense randomized schedules of
// reconfigurations, suspicions, heartbeat pauses, and bounded crashes, with
// the Dynamic Quorum Consistency checker as the oracle.
#include <gtest/gtest.h>

#include "core/cluster.hpp"
#include "core/nemesis.hpp"
#include "workload/workload.hpp"

namespace qopt {
namespace {

ClusterConfig chaos_config(std::uint64_t seed, bool heartbeat) {
  ClusterConfig config;
  config.num_storage = 7;
  config.num_proxies = 3;
  config.clients_per_proxy = 3;
  config.replication = 5;
  config.initial_quorum = {3, 3};
  config.seed = seed;
  config.heartbeat_fd = heartbeat;
  config.client_retry_timeout = milliseconds(500);
  return config;
}

TEST(NemesisTest, InjectsConfiguredEventMix) {
  Cluster cluster(chaos_config(3, false));
  cluster.preload(500, 1024);
  cluster.set_workload(workload::ycsb_a(500));
  NemesisOptions options;
  options.mean_interval = milliseconds(200);
  options.seed = 3;
  Nemesis nemesis(cluster, options);
  nemesis.start();
  cluster.run_for(seconds(20));
  nemesis.stop();
  EXPECT_GT(nemesis.stats().total(), 30u);
  EXPECT_GT(nemesis.stats().reconfigurations, 0u);
  EXPECT_GT(nemesis.stats().false_suspicions, 0u);
  EXPECT_LE(nemesis.stats().proxy_crashes, 1u);
  EXPECT_LE(nemesis.stats().storage_crashes, 1u);
}

TEST(NemesisTest, StopHaltsInjection) {
  Cluster cluster(chaos_config(5, false));
  cluster.preload(100, 1024);
  cluster.set_workload(workload::ycsb_a(100));
  NemesisOptions options;
  options.mean_interval = milliseconds(100);
  Nemesis nemesis(cluster, options);
  nemesis.start();
  cluster.run_for(seconds(2));
  nemesis.stop();
  const std::uint64_t events = nemesis.stats().total();
  cluster.run_for(seconds(2));
  EXPECT_EQ(nemesis.stats().total(), events);
}

class NemesisChaos
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, bool>> {};

TEST_P(NemesisChaos, ConsistencyAndLivenessUnderDenseChaos) {
  const auto [seed, heartbeat] = GetParam();
  Cluster cluster(chaos_config(seed, heartbeat));
  cluster.preload(500, 1024);
  workload::WorkloadSpec spec;
  spec.write_ratio = 0.5;
  spec.keys = std::make_shared<workload::ZipfianKeys>(500);
  cluster.set_workload(std::make_shared<workload::BasicWorkload>(spec));

  NemesisOptions options;
  options.mean_interval = milliseconds(250);
  options.seed = seed * 17 + 1;
  Nemesis nemesis(cluster, options);
  nemesis.start();
  cluster.run_for(seconds(25));
  nemesis.stop();
  cluster.run_for(seconds(5));  // quiesce

  // Safety: no stale read, ever.
  ASSERT_TRUE(cluster.checker().clean())
      << cluster.checker().violations().size() << " violations under chaos";
  EXPECT_GT(cluster.checker().reads_checked(), 1'000u);
  // Liveness: the RM drained its queue and clients kept making progress.
  EXPECT_FALSE(cluster.rm().busy());
  EXPECT_EQ(cluster.rm().queued(), 0u);
  const std::uint64_t ops_before = cluster.metrics().total_ops();
  cluster.run_for(seconds(2));
  EXPECT_GT(cluster.metrics().total_ops(), ops_before)
      << "cluster wedged after the chaos schedule";
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, NemesisChaos,
    ::testing::Combine(::testing::Range<std::uint64_t>(1, 9),
                       ::testing::Bool()),
    [](const auto& param_info) {
      return "seed" + std::to_string(std::get<0>(param_info.param)) +
             (std::get<1>(param_info.param) ? "_hb" : "_oracle");
    });

}  // namespace
}  // namespace qopt
