#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "util/rng.hpp"
#include "workload/trace.hpp"
#include "workload/workload.hpp"

namespace qopt::workload {
namespace {

std::shared_ptr<OperationSource> make_source() {
  WorkloadSpec spec;
  spec.write_ratio = 0.4;
  spec.keys = std::make_shared<ZipfianKeys>(100);
  spec.sizes = SizeDistribution::uniform(100, 1000);
  return std::make_shared<BasicWorkload>(spec);
}

TEST(RecordingSourceTest, PassesThroughAndRecords) {
  RecordingSource recorder(make_source());
  Rng rng(1);
  std::vector<Operation> emitted;
  for (int i = 0; i < 50; ++i) {
    emitted.push_back(recorder.next(rng, seconds(i)));
  }
  ASSERT_EQ(recorder.trace().size(), 50u);
  for (int i = 0; i < 50; ++i) {
    const auto idx = static_cast<std::size_t>(i);
    EXPECT_EQ(recorder.trace()[idx].op.oid, emitted[idx].oid);
    EXPECT_EQ(recorder.trace()[idx].op.is_write, emitted[idx].is_write);
    EXPECT_EQ(recorder.trace()[idx].at, seconds(i));
  }
}

TEST(RecordingSourceTest, NullInnerThrows) {
  EXPECT_THROW(RecordingSource{nullptr}, std::invalid_argument);
}

TEST(TraceSourceTest, ReplaysInOrder) {
  std::vector<TraceEntry> trace;
  for (std::uint64_t i = 0; i < 10; ++i) {
    trace.push_back(TraceEntry{0, Operation{i, i % 2 == 0, 512}});
  }
  TraceSource source(trace, /*loop=*/false);
  Rng rng(2);
  for (std::uint64_t i = 0; i < 10; ++i) {
    const Operation op = source.next(rng, 0);
    EXPECT_EQ(op.oid, i);
    EXPECT_EQ(op.is_write, i % 2 == 0);
  }
  // Exhausted, non-looping: last operation repeats.
  EXPECT_EQ(source.next(rng, 0).oid, 9u);
  EXPECT_EQ(source.next(rng, 0).oid, 9u);
}

TEST(TraceSourceTest, LoopsWhenConfigured) {
  std::vector<TraceEntry> trace;
  for (std::uint64_t i = 0; i < 3; ++i) {
    trace.push_back(TraceEntry{0, Operation{i, false, 1}});
  }
  TraceSource source(trace, /*loop=*/true);
  Rng rng(3);
  for (int cycle = 0; cycle < 4; ++cycle) {
    for (std::uint64_t i = 0; i < 3; ++i) {
      EXPECT_EQ(source.next(rng, 0).oid, i);
    }
  }
}

TEST(TraceSourceTest, EmptyTraceThrows) {
  EXPECT_THROW(TraceSource({}, true), std::invalid_argument);
}

TEST(TracePersistenceTest, SaveLoadRoundTrip) {
  RecordingSource recorder(make_source());
  Rng rng(4);
  for (int i = 0; i < 200; ++i) recorder.next(rng, milliseconds(i));
  const std::string path = "trace_test_roundtrip.csv";
  save_trace(path, recorder.trace());
  const std::vector<TraceEntry> loaded = load_trace(path);
  ASSERT_EQ(loaded.size(), recorder.trace().size());
  for (std::size_t i = 0; i < loaded.size(); ++i) {
    EXPECT_EQ(loaded[i].at, recorder.trace()[i].at);
    EXPECT_EQ(loaded[i].op.oid, recorder.trace()[i].op.oid);
    EXPECT_EQ(loaded[i].op.is_write, recorder.trace()[i].op.is_write);
    EXPECT_EQ(loaded[i].op.size_bytes, recorder.trace()[i].op.size_bytes);
  }
  std::filesystem::remove(path);
}

TEST(TracePersistenceTest, MissingFileThrows) {
  EXPECT_THROW(load_trace("definitely_not_here.csv"), std::runtime_error);
}

TEST(TraceReplayTest, ReplayReproducesWorkloadProfile) {
  // Record a 40%-write workload, replay it, verify the replay has exactly
  // the same write ratio (bitwise-identical operation stream).
  RecordingSource recorder(make_source());
  Rng rng(5);
  int writes_recorded = 0;
  for (int i = 0; i < 1000; ++i) {
    writes_recorded += recorder.next(rng, 0).is_write;
  }
  TraceSource replay(recorder.trace(), false);
  Rng rng2(999);  // replay ignores the rng
  int writes_replayed = 0;
  for (int i = 0; i < 1000; ++i) {
    writes_replayed += replay.next(rng2, 0).is_write;
  }
  EXPECT_EQ(writes_recorded, writes_replayed);
}

}  // namespace
}  // namespace qopt::workload
