// Integration tests for the Cluster facade: end-to-end data path, metrics,
// preload, workload assignment, and the performance trends from Section 2.2.
#include <gtest/gtest.h>

#include "core/cluster.hpp"
#include "core/experiment.hpp"
#include "workload/workload.hpp"

namespace qopt {
namespace {

ClusterConfig tiny() {
  ClusterConfig config;
  config.num_storage = 5;
  config.num_proxies = 2;
  config.clients_per_proxy = 3;
  config.replication = 3;
  config.initial_quorum = {2, 2};
  config.seed = 5;
  return config;
}

TEST(ClusterTest, InvalidConfigurationThrows) {
  ClusterConfig config = tiny();
  config.initial_quorum = {1, 2};  // 1+2 == N
  EXPECT_THROW(Cluster{config}, std::invalid_argument);
  config = tiny();
  config.num_proxies = 0;
  EXPECT_THROW(Cluster{config}, std::invalid_argument);
  config = tiny();
  config.replication = 7;  // > storage nodes
  EXPECT_THROW(Cluster{config}, std::invalid_argument);
}

TEST(ClusterTest, ClosedLoopClientsCompleteOps) {
  Cluster cluster(tiny());
  cluster.preload(100, 1024);
  cluster.set_workload(workload::ycsb_a(100));
  cluster.run_for(seconds(2));
  EXPECT_GT(cluster.metrics().total_ops(), 100u);
  EXPECT_GT(cluster.metrics().total_reads(), 0u);
  EXPECT_GT(cluster.metrics().total_writes(), 0u);
  for (std::uint32_t i = 0; i < cluster.num_clients(); ++i) {
    EXPECT_GT(cluster.client(i).ops_completed(), 0u) << "client " << i;
  }
}

TEST(ClusterTest, PreloadMakesReadsFindData) {
  Cluster cluster(tiny());
  cluster.preload(50, 2048);
  // Read-only workload: every read must find a preloaded version.
  workload::WorkloadSpec spec;
  spec.write_ratio = 0.0;
  spec.keys = std::make_shared<workload::UniformKeys>(50);
  spec.name = "read-only";
  cluster.set_workload(std::make_shared<workload::BasicWorkload>(spec));
  cluster.run_for(seconds(1));
  EXPECT_GT(cluster.metrics().total_reads(), 0u);
  for (std::uint32_t i = 0; i < 2; ++i) {
    EXPECT_EQ(cluster.obs().registry().counter_value(obs::instrument_name("proxy", i, "not_found_reads")), 0u);
  }
}

TEST(ClusterTest, WithoutPreloadReadsMissGracefully) {
  Cluster cluster(tiny());
  workload::WorkloadSpec spec;
  spec.write_ratio = 0.0;
  spec.keys = std::make_shared<workload::UniformKeys>(50);
  cluster.set_workload(std::make_shared<workload::BasicWorkload>(spec));
  cluster.run_for(milliseconds(200));
  EXPECT_GT(cluster.metrics().total_reads(), 0u);  // not-found still completes
}

TEST(ClusterTest, MetricsTimelineBucketsSum) {
  Cluster cluster(tiny());
  cluster.preload(100, 1024);
  cluster.set_workload(workload::ycsb_a(100));
  cluster.run_for(seconds(2));
  const std::uint64_t total = cluster.metrics().total_ops();
  EXPECT_EQ(cluster.metrics().ops_between(0, cluster.now() + 1), total);
  const double tput = cluster.metrics().throughput(0, cluster.now());
  EXPECT_GT(tput, 0.0);
}

TEST(ClusterTest, LatencyHistogramsPopulated) {
  Cluster cluster(tiny());
  cluster.preload(100, 1024);
  cluster.set_workload(workload::ycsb_a(100));
  cluster.run_for(seconds(1));
  EXPECT_GT(cluster.metrics().read_latency().count(), 0u);
  EXPECT_GT(cluster.metrics().write_latency().count(), 0u);
  // End-to-end latency at least the network round trips.
  EXPECT_GT(cluster.metrics().read_latency().percentile(50),
            static_cast<double>(2 * cluster.config().network.base));
}

TEST(ClusterTest, PerProxyWorkloadAssignment) {
  Cluster cluster(tiny());
  cluster.preload(200, 1024);
  // Proxy 0's tenant: objects 0..99 write-only; proxy 1: 100..199 read-only.
  workload::WorkloadSpec writes;
  writes.write_ratio = 1.0;
  writes.keys = std::make_shared<workload::UniformKeys>(100);
  cluster.set_workload_for_proxy(
      0, std::make_shared<workload::BasicWorkload>(writes));
  workload::WorkloadSpec reads;
  reads.write_ratio = 0.0;
  reads.keys = std::make_shared<workload::UniformKeys>(100);
  reads.key_offset = 100;
  cluster.set_workload_for_proxy(
      1, std::make_shared<workload::BasicWorkload>(reads));
  cluster.run_for(seconds(1));
  EXPECT_EQ(cluster.obs().registry().counter_value(obs::instrument_name("proxy", 0, "client_reads")), 0u);
  EXPECT_GT(cluster.obs().registry().counter_value(obs::instrument_name("proxy", 0, "client_writes")), 0u);
  EXPECT_EQ(cluster.obs().registry().counter_value(obs::instrument_name("proxy", 1, "client_writes")), 0u);
  EXPECT_GT(cluster.obs().registry().counter_value(obs::instrument_name("proxy", 1, "client_reads")), 0u);
}

TEST(ClusterTest, StopClientsHaltsTraffic) {
  Cluster cluster(tiny());
  cluster.preload(100, 1024);
  cluster.set_workload(workload::ycsb_a(100));
  cluster.run_for(seconds(1));
  cluster.stop_clients();
  cluster.run_for(milliseconds(500));
  const std::uint64_t ops = cluster.metrics().total_ops();
  cluster.run_for(seconds(1));
  EXPECT_EQ(cluster.metrics().total_ops(), ops);
}

TEST(ClusterTest, DeterministicForSameSeed) {
  auto run = [] {
    Cluster cluster(tiny());
    cluster.preload(100, 1024);
    cluster.set_workload(workload::ycsb_a(100));
    cluster.run_for(seconds(2));
    return cluster.metrics().total_ops();
  };
  EXPECT_EQ(run(), run());
}

TEST(ClusterTest, SeedChangesExecution) {
  auto run = [](std::uint64_t seed) {
    ClusterConfig config = tiny();
    config.seed = seed;
    Cluster cluster(config);
    cluster.preload(100, 1024);
    cluster.set_workload(workload::ycsb_a(100));
    cluster.run_for(seconds(2));
    return cluster.metrics().total_ops();
  };
  EXPECT_NE(run(1), run(2));
}

TEST(ClusterTest, CrashStorageWithinQuorumToleranceKeepsServing) {
  ClusterConfig config = tiny();
  config.initial_quorum = {2, 2};  // N=3: tolerate 1 storage crash
  Cluster cluster(config);
  cluster.preload(100, 1024);
  cluster.set_workload(workload::ycsb_a(100));
  cluster.run_for(seconds(1));
  cluster.crash_storage(0);
  const std::uint64_t ops = cluster.metrics().total_ops();
  cluster.run_for(seconds(2));
  EXPECT_GT(cluster.metrics().total_ops(), ops);
  EXPECT_TRUE(cluster.checker().clean());
}

// ------------------------------------------------- Section 2.2 trends

struct QuorumTrendTest : ::testing::Test {
  ExperimentSpec spec;
  void SetUp() override {
    spec.cluster.num_storage = 10;
    spec.cluster.num_proxies = 2;
    spec.cluster.clients_per_proxy = 10;
    spec.cluster.replication = 5;
    spec.cluster.seed = 9;
    spec.preload_objects = 2000;
    spec.warmup = seconds(1);
    spec.measure = seconds(5);
  }
};

TEST_F(QuorumTrendTest, ReadHeavyPrefersSmallReadQuorum) {
  spec.workload = workload::ycsb_b(2000);
  const ExperimentResult small_r = run_static(spec, {1, 5});
  const ExperimentResult large_r = run_static(spec, {5, 1});
  EXPECT_GT(small_r.throughput_ops, large_r.throughput_ops * 1.2)
      << "R=1 should clearly beat R=5 on a 95%-read workload";
}

TEST_F(QuorumTrendTest, WriteHeavyPrefersSmallWriteQuorum) {
  spec.workload = workload::backup_c(2000);
  const ExperimentResult small_w = run_static(spec, {5, 1});
  const ExperimentResult large_w = run_static(spec, {1, 5});
  EXPECT_GT(small_w.throughput_ops, large_w.throughput_ops * 1.5)
      << "W=1 should clearly beat W=5 on a 99%-write workload";
}

TEST_F(QuorumTrendTest, SweepCoversAllStrictConfigs) {
  spec.workload = workload::ycsb_a(2000);
  spec.measure = seconds(2);
  const auto results = sweep_quorums(spec);
  ASSERT_EQ(results.size(), 5u);
  for (int w = 1; w <= 5; ++w) {
    EXPECT_EQ(results[static_cast<size_t>(w - 1)].quorum.write_q, w);
    EXPECT_TRUE(results[static_cast<size_t>(w - 1)].consistent);
    EXPECT_GT(results[static_cast<size_t>(w - 1)].throughput_ops, 0.0);
  }
}

TEST_F(QuorumTrendTest, OptimalWriteQuorumMatchesWorkloadDirection) {
  spec.workload = workload::ycsb_b(2000);
  spec.measure = seconds(4);
  EXPECT_GE(optimal_write_quorum(spec), 4);
  spec.workload = workload::backup_c(2000);
  EXPECT_LE(optimal_write_quorum(spec), 2);
}

}  // namespace
}  // namespace qopt
