// Whole-system determinism: identical seeds must give bit-identical
// executions across every feature combination. This is the regression net
// that keeps experiments reproducible (and is what makes the consistency
// property tests meaningful as evidence).
#include <gtest/gtest.h>

#include <string>
#include <tuple>
#include <utility>

#include "autonomic/autonomic_manager.hpp"
#include "core/cluster.hpp"
#include "core/nemesis.hpp"
#include "kv/replicator.hpp"
#include "obs/span_export.hpp"
#include "workload/workload.hpp"

namespace qopt {
namespace {

struct Fingerprint {
  std::uint64_t ops = 0;
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t messages = 0;
  std::uint64_t reconfigs = 0;
  std::uint64_t cfno = 0;
  std::size_t overrides = 0;
  std::uint64_t nacks = 0;

  friend bool operator==(const Fingerprint&, const Fingerprint&) = default;
};

Fingerprint run_scenario(std::uint64_t seed, bool autotune, bool heartbeat,
                         bool anti_entropy, bool failures) {
  ClusterConfig config;
  config.num_storage = 6;
  config.num_proxies = 3;
  config.clients_per_proxy = 3;
  config.replication = 5;
  config.initial_quorum = {3, 3};
  config.seed = seed;
  config.heartbeat_fd = heartbeat;
  config.client_retry_timeout = failures ? milliseconds(300) : 0;
  Cluster cluster(config);
  cluster.preload(500, 2048);
  cluster.set_workload(workload::ycsb_a(500));
  if (autotune) {
    autonomic::AutonomicOptions tuning;
    tuning.round_window = seconds(2);
    tuning.quarantine = seconds(1);
    cluster.enable_autotuning(tuning);
  }
  if (anti_entropy) {
    kv::ReplicatorOptions options;
    options.interval = seconds(2);
    cluster.enable_anti_entropy(options);
  }
  cluster.run_for(seconds(3));
  if (failures) {
    cluster.inject_false_suspicion(1, seconds(2));
    cluster.reconfigure({4, 2});
    cluster.run_for(seconds(2));
    cluster.crash_proxy(2);
  }
  cluster.run_for(seconds(10));

  Fingerprint fp;
  fp.ops = cluster.metrics().total_ops();
  fp.reads = cluster.metrics().total_reads();
  fp.writes = cluster.metrics().total_writes();
  fp.messages = cluster.network_stats().messages_sent;
  fp.reconfigs = cluster.obs().registry().counter_value("rm.reconfigurations_completed");
  fp.cfno = cluster.rm().config().cfno;
  fp.overrides = cluster.rm().config().overrides.size();
  for (std::uint32_t i = 0; i < 3; ++i) {
    fp.nacks += cluster.obs().registry().counter_value(obs::instrument_name("proxy", i, "nacks_received"));
  }
  return fp;
}

class Determinism
    : public ::testing::TestWithParam<std::tuple<bool, bool, bool, bool>> {};

TEST_P(Determinism, IdenticalSeedsIdenticalExecutions) {
  const auto [autotune, heartbeat, anti_entropy, failures] = GetParam();
  const Fingerprint a =
      run_scenario(99, autotune, heartbeat, anti_entropy, failures);
  const Fingerprint b =
      run_scenario(99, autotune, heartbeat, anti_entropy, failures);
  EXPECT_EQ(a.ops, b.ops);
  EXPECT_EQ(a.messages, b.messages);
  EXPECT_EQ(a.reconfigs, b.reconfigs);
  EXPECT_EQ(a.cfno, b.cfno);
  EXPECT_EQ(a.overrides, b.overrides);
  EXPECT_EQ(a.nacks, b.nacks);
  EXPECT_GT(a.ops, 0u);
}

TEST_P(Determinism, DifferentSeedsDiverge) {
  const auto [autotune, heartbeat, anti_entropy, failures] = GetParam();
  const Fingerprint a =
      run_scenario(99, autotune, heartbeat, anti_entropy, failures);
  const Fingerprint b =
      run_scenario(100, autotune, heartbeat, anti_entropy, failures);
  EXPECT_NE(a.messages, b.messages);
}

// Span exports are part of the determinism contract: the trace layer rides
// the same virtual clock and deterministic ids as everything else, so two
// same-seed runs — even under chaos injection — must produce byte-identical
// Chrome and CSV exports.
std::pair<std::string, std::string> traced_chaos_run(std::uint64_t seed) {
  ClusterConfig config;
  config.num_storage = 6;
  config.num_proxies = 3;
  config.clients_per_proxy = 3;
  config.replication = 5;
  config.initial_quorum = {3, 3};
  config.seed = seed;
  config.heartbeat_fd = true;
  config.client_retry_timeout = milliseconds(300);
  config.span_sample_every = 1;
  Cluster cluster(config);
  cluster.preload(500, 2048);
  cluster.set_workload(workload::ycsb_a(500));
  NemesisOptions chaos;
  chaos.mean_interval = milliseconds(400);
  chaos.seed = seed;
  Nemesis nemesis(cluster, chaos);
  nemesis.start();
  cluster.run_for(seconds(8));
  const auto& completed = cluster.obs().spans().completed();
  return {obs::to_chrome_json(completed), obs::to_span_csv(completed)};
}

TEST(SpanDeterminism, ByteIdenticalExportsUnderNemesisFaults) {
  const auto [chrome_a, csv_a] = traced_chaos_run(23);
  const auto [chrome_b, csv_b] = traced_chaos_run(23);
  EXPECT_EQ(chrome_a, chrome_b);
  EXPECT_EQ(csv_a, csv_b);
  EXPECT_GT(csv_a.size(), csv_a.find('\n'));  // more than just the header
}

INSTANTIATE_TEST_SUITE_P(
    Features, Determinism,
    ::testing::Values(std::make_tuple(false, false, false, false),
                      std::make_tuple(true, false, false, false),
                      std::make_tuple(false, true, false, true),
                      std::make_tuple(true, false, true, false),
                      std::make_tuple(true, true, true, true)),
    [](const auto& param_info) {
      std::string name;
      name += std::get<0>(param_info.param) ? "tune" : "static";
      name += std::get<1>(param_info.param) ? "_hb" : "";
      name += std::get<2>(param_info.param) ? "_ae" : "";
      name += std::get<3>(param_info.param) ? "_fail" : "";
      return name;
    });

}  // namespace
}  // namespace qopt
