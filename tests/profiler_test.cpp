// Engine self-profiler: histogram edge cases, attribution accounting,
// byte-identity with profiling on vs off, deterministic exports, and the
// overhead gate (< 2% events/sec with the profiler enabled).
//
// Note on allocation counts: the profiler's per-subsystem `allocs` comes
// from a *weak* global operator new. Sanitizer runtimes (and the strong
// replacement in alloc_gate_test) legitimately preempt it, leaving the
// counter at zero — so nothing here asserts allocs > 0.
#include <chrono>
#include <cstdint>
#include <string>

#include <gtest/gtest.h>

#include "core/cluster.hpp"
#include "obs/profiler.hpp"
#include "obs/registry.hpp"
#include "obs/report.hpp"
#include "util/time.hpp"
#include "workload/workload.hpp"

namespace qopt {
namespace {

// ------------------------------------------------------------- LogHistogram

TEST(ProfilerHistogramTest, EmptyHistogramReportsZeroes) {
  obs::LogHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.percentile(0.0), 0u);
  EXPECT_EQ(h.percentile(50.0), 0u);
  EXPECT_EQ(h.percentile(100.0), 0u);
  const obs::HistogramSummary s = h.summary();
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.max, 0.0);
}

TEST(ProfilerHistogramTest, SingleValueOwnsEveryPercentile) {
  obs::LogHistogram h;
  h.record(42);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min(), 42u);
  EXPECT_EQ(h.max(), 42u);
  EXPECT_DOUBLE_EQ(h.mean(), 42.0);
  // Every percentile lands in the one occupied bucket; the result is the
  // bucket upper bound clamped to the observed max — exactly 42.
  EXPECT_EQ(h.percentile(0.0), 42u);
  EXPECT_EQ(h.percentile(50.0), 42u);
  EXPECT_EQ(h.percentile(99.0), 42u);
  EXPECT_EQ(h.percentile(100.0), 42u);
}

TEST(ProfilerHistogramTest, SmallValuesAreExact) {
  // Values below 2^kSubBits get one bucket each — no quantization.
  for (std::uint64_t v = 0;
       v < (std::uint64_t{1} << obs::LogHistogram::kSubBits); ++v) {
    EXPECT_EQ(obs::LogHistogram::bucket_for(v), v);
    EXPECT_EQ(obs::LogHistogram::bucket_lower(v), v);
    EXPECT_EQ(obs::LogHistogram::bucket_upper(v), v);
  }
}

TEST(ProfilerHistogramTest, BucketBoundsRoundTrip) {
  // For a spread of magnitudes: a value's bucket must cover the value, and
  // the bucket bounds must map back to the same bucket.
  for (const std::uint64_t v :
       {std::uint64_t{8}, std::uint64_t{9}, std::uint64_t{255},
        std::uint64_t{256}, std::uint64_t{1000}, std::uint64_t{4095},
        std::uint64_t{1} << 20, (std::uint64_t{1} << 32) + 12345,
        std::uint64_t{1} << 62}) {
    const std::size_t b = obs::LogHistogram::bucket_for(v);
    ASSERT_LT(b, obs::LogHistogram::kBucketCount) << "value " << v;
    EXPECT_LE(obs::LogHistogram::bucket_lower(b), v) << "value " << v;
    EXPECT_GE(obs::LogHistogram::bucket_upper(b), v) << "value " << v;
    EXPECT_EQ(obs::LogHistogram::bucket_for(obs::LogHistogram::bucket_lower(b)),
              b);
    EXPECT_EQ(obs::LogHistogram::bucket_for(obs::LogHistogram::bucket_upper(b)),
              b);
  }
}

TEST(ProfilerHistogramTest, OverflowValueLandsInLastBucket) {
  const std::uint64_t top = ~std::uint64_t{0};
  EXPECT_EQ(obs::LogHistogram::bucket_for(top),
            obs::LogHistogram::kBucketCount - 1);
  obs::LogHistogram h;
  h.record(top);
  EXPECT_EQ(h.max(), top);
  // The overflow bucket's upper bound is clamped to the observed max.
  EXPECT_EQ(h.percentile(100.0), top);
}

TEST(ProfilerHistogramTest, PercentilesAreMonotoneAndBracketed) {
  obs::LogHistogram h;
  for (std::uint64_t v = 1; v <= 1000; ++v) h.record(v);
  std::uint64_t prev = 0;
  for (const double pct : {1.0, 25.0, 50.0, 75.0, 95.0, 99.0, 100.0}) {
    const std::uint64_t value = h.percentile(pct);
    EXPECT_GE(value, prev) << "pct " << pct;
    EXPECT_GE(value, h.min());
    EXPECT_LE(value, h.max());
    prev = value;
  }
  // p50 of 1..1000 must sit near 500 within one bucket's ~12.5% resolution.
  EXPECT_GE(h.percentile(50.0), 440u);
  EXPECT_LE(h.percentile(50.0), 576u);
  EXPECT_EQ(h.percentile(100.0), 1000u);
}

TEST(ProfilerHistogramTest, MergeMatchesCombinedRecording) {
  obs::LogHistogram a;
  obs::LogHistogram b;
  obs::LogHistogram combined;
  for (std::uint64_t v = 1; v < 100; v += 2) {
    a.record(v);
    combined.record(v);
  }
  for (std::uint64_t v = 1000; v < 5000; v += 17) {
    b.record(v);
    combined.record(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), combined.count());
  EXPECT_EQ(a.min(), combined.min());
  EXPECT_EQ(a.max(), combined.max());
  EXPECT_DOUBLE_EQ(a.mean(), combined.mean());
  for (const double pct : {10.0, 50.0, 90.0, 99.0}) {
    EXPECT_EQ(a.percentile(pct), combined.percentile(pct)) << "pct " << pct;
  }
}

TEST(ProfilerHistogramTest, MergeWithEmptyIsIdentityBothWays) {
  obs::LogHistogram filled;
  filled.record(7);
  filled.record(70);

  obs::LogHistogram lhs = filled;
  const obs::LogHistogram empty;
  lhs.merge(empty);
  EXPECT_EQ(lhs.count(), 2u);
  EXPECT_EQ(lhs.min(), 7u);
  EXPECT_EQ(lhs.max(), 70u);

  obs::LogHistogram from_empty;
  from_empty.merge(filled);
  EXPECT_EQ(from_empty.count(), 2u);
  EXPECT_EQ(from_empty.min(), 7u);
  EXPECT_EQ(from_empty.max(), 70u);
}

TEST(ProfilerHistogramTest, ResetClearsEverything) {
  obs::LogHistogram h;
  h.record(5);
  h.record(500);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_EQ(h.percentile(99.0), 0u);
}

// -------------------------------------------------------------- attribution

ClusterConfig small_config(bool profile) {
  ClusterConfig config;
  config.num_storage = 5;
  config.num_proxies = 2;
  config.clients_per_proxy = 4;
  config.replication = 3;
  config.seed = 1234;
  config.profile = profile;
  return config;
}

TEST(ProfilerAttributionTest, SubsystemEventsSumToEngineTotal) {
  if (!obs::EngineProfiler::compiled_on()) GTEST_SKIP();
  Cluster cluster(small_config(true));
  cluster.preload(512, 1024);
  cluster.set_workload(workload::ycsb_a(512));
  cluster.run_for(seconds(10));

  const obs::ProfileReport prof = cluster.obs().profiler().report();
  ASSERT_TRUE(prof.compiled);
  std::uint64_t by_subsystem = 0;
  for (const obs::ProfilePhaseRow& row : prof.subsystems) {
    by_subsystem += row.events;
  }
  EXPECT_EQ(by_subsystem, prof.events_total);
  EXPECT_EQ(prof.events_total, cluster.simulator().events_processed());
  // The workload actually exercised the attributed subsystems.
  EXPECT_GT(prof.subsystems[static_cast<std::size_t>(
                                obs::ProfSubsystem::kProxy)]
                .events,
            0u);
  EXPECT_GT(prof.subsystems[static_cast<std::size_t>(
                                obs::ProfSubsystem::kStorage)]
                .events,
            0u);
  EXPECT_GT(prof.subsystems[static_cast<std::size_t>(
                                obs::ProfSubsystem::kClient)]
                .events,
            0u);
}

TEST(ProfilerAttributionTest, MessageCountsSumToDeliveredTotal) {
  if (!obs::EngineProfiler::compiled_on()) GTEST_SKIP();
  Cluster cluster(small_config(true));
  cluster.preload(512, 1024);
  cluster.set_workload(workload::ycsb_a(512));
  cluster.run_for(seconds(10));

  const obs::ProfileReport prof = cluster.obs().profiler().report();
  const obs::RunReport report = cluster.report(0, cluster.now());
  std::uint64_t by_type = 0;
  for (const obs::ProfileMessageRow& row : prof.messages) {
    by_type += row.count;
  }
  EXPECT_EQ(by_type, report.messages_delivered);
  // Queue telemetry saw traffic.
  EXPECT_GT(prof.schedules, 0u);
  EXPECT_GT(prof.max_depth, 0u);
  EXPECT_GT(prof.queue_depth.count, 0u);
  EXPECT_GT(prof.dwell_ns.count, 0u);
}

// ------------------------------------------------------------ byte identity

std::string run_report_json(bool profile) {
  Cluster cluster(small_config(profile));
  cluster.preload(512, 1024);
  cluster.set_workload(workload::ycsb_a(512));
  cluster.run_for(seconds(10));
  obs::RunReport report = cluster.report(0, cluster.now());
  // Strip the profile section; everything else must match byte-for-byte.
  report.has_profile = false;
  return report.to_json();
}

TEST(ProfilerIdentityTest, ProfilingOnChangesNoSimulationBytes) {
  // The profiler observes, never steers: the full report of a profiled run
  // (minus the profile section itself) is byte-identical to an unprofiled
  // same-seed run. This is the runtime half of the zero-cost guarantee; the
  // CI diff of QOPT_PROFILE=OFF builds is the compile-time half.
  EXPECT_EQ(run_report_json(false), run_report_json(true));
}

TEST(ProfilerIdentityTest, DeterministicProfileExportIsStable) {
  if (!obs::EngineProfiler::compiled_on()) GTEST_SKIP();
  const auto run_profile_json = [] {
    Cluster cluster(small_config(true));
    cluster.preload(512, 1024);
    cluster.set_workload(workload::ycsb_a(512));
    cluster.run_for(seconds(10));
    obs::ProfileReport prof = cluster.obs().profiler().report();
    prof.zero_wall();
    return prof.to_json();
  };
  const std::string first = run_profile_json();
  const std::string second = run_profile_json();
  EXPECT_EQ(first, second);
  // Wall fields really are zeroed in the deterministic form.
  EXPECT_EQ(first.find("\"wall_ns\":0,"), first.find("\"wall_ns\":"));
}

// ------------------------------------------------------------ overhead gate

// Wall-seconds for one fixed simulated run with the profiler off/on.
double timed_run(bool profile) {
  Cluster cluster(small_config(profile));
  cluster.preload(512, 1024);
  cluster.set_workload(workload::ycsb_a(512));
  // qopt-lint: allow(wall-clock) overhead gate measures host cost of the profiler
  const auto wall0 = std::chrono::steady_clock::now();
  cluster.run_for(seconds(60));
  // qopt-lint: allow(wall-clock) overhead gate measures host cost of the profiler
  const auto wall1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(wall1 - wall0).count();
}

TEST(ProfilerOverheadTest, EnabledProfilerStaysUnderBudget) {
  if (!obs::EngineProfiler::compiled_on()) GTEST_SKIP();
  // Alternate off/on and keep each side's best time: the minimum over
  // repetitions is the standard way to strip scheduler noise from a
  // CPU-bound measurement. Budget is < 2% events/sec; on noisy hosts
  // (off-side spread > 3%) the gate relaxes to 5% instead of flaking.
  constexpr int kRounds = 5;
  double best_off = 1e300;
  double worst_off = 0;
  double best_on = 1e300;
  timed_run(false);  // warm caches/allocator before measuring
  for (int i = 0; i < kRounds; ++i) {
    const double off = timed_run(false);
    const double on = timed_run(true);
    if (off < best_off) best_off = off;
    if (off > worst_off) worst_off = off;
    if (on < best_on) best_on = on;
  }
  ASSERT_GT(best_off, 0.0);
  const double noise = worst_off / best_off - 1.0;
  const double budget = noise > 0.03 ? 0.05 : 0.02;
  const double overhead = best_on / best_off - 1.0;
  EXPECT_LT(overhead, budget)
      << "profiler on: " << best_on << "s, off: " << best_off
      << "s (off-side noise " << noise * 100 << "%)";
}

}  // namespace
}  // namespace qopt
