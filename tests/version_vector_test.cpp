#include <gtest/gtest.h>

#include <vector>

#include "kv/version_vector.hpp"
#include "util/rng.hpp"

namespace qopt::kv {
namespace {

TEST(VersionVectorTest, EmptyVectorsEqual) {
  VersionVector a;
  VersionVector b;
  EXPECT_EQ(a.compare(b), CausalOrder::kEqual);
  EXPECT_TRUE(a.dominates(b));
  EXPECT_TRUE(a.empty());
}

TEST(VersionVectorTest, IncrementCreatesHappensBefore) {
  VersionVector a;
  VersionVector b = a;
  b.increment(0);
  EXPECT_EQ(a.compare(b), CausalOrder::kBefore);
  EXPECT_EQ(b.compare(a), CausalOrder::kAfter);
  EXPECT_TRUE(b.dominates(a));
  EXPECT_FALSE(a.dominates(b));
}

TEST(VersionVectorTest, IndependentIncrementsAreConcurrent) {
  VersionVector base;
  base.increment(0);
  VersionVector a = base;
  VersionVector b = base;
  a.increment(1);
  b.increment(2);
  EXPECT_EQ(a.compare(b), CausalOrder::kConcurrent);
  EXPECT_TRUE(a.concurrent_with(b));
  EXPECT_FALSE(a.dominates(b));
  EXPECT_FALSE(b.dominates(a));
}

TEST(VersionVectorTest, CounterAccessor) {
  VersionVector v;
  EXPECT_EQ(v.counter(3), 0u);
  EXPECT_EQ(v.increment(3), 1u);
  EXPECT_EQ(v.increment(3), 2u);
  EXPECT_EQ(v.counter(3), 2u);
  EXPECT_EQ(v.size(), 1u);
}

TEST(VersionVectorTest, MergeDominatesBothBranches) {
  VersionVector base;
  base.increment(0);
  VersionVector a = base;
  VersionVector b = base;
  a.increment(1);
  b.increment(2);
  const VersionVector merged = a.merged(b);
  EXPECT_TRUE(merged.dominates(a));
  EXPECT_TRUE(merged.dominates(b));
  EXPECT_EQ(merged.counter(0), 1u);
  EXPECT_EQ(merged.counter(1), 1u);
  EXPECT_EQ(merged.counter(2), 1u);
}

TEST(VersionVectorTest, MergeIsCommutativeAssociativeIdempotent) {
  Rng rng(5);
  for (int trial = 0; trial < 100; ++trial) {
    auto random_vv = [&] {
      VersionVector v;
      for (int i = 0; i < 5; ++i) {
        const auto proxy = static_cast<std::uint32_t>(rng.next_below(4));
        for (std::uint64_t k = rng.next_below(3); k > 0; --k) {
          v.increment(proxy);
        }
      }
      return v;
    };
    const VersionVector a = random_vv();
    const VersionVector b = random_vv();
    const VersionVector c = random_vv();
    EXPECT_EQ(a.merged(b), b.merged(a));                          // commut.
    EXPECT_EQ(a.merged(b).merged(c), a.merged(b.merged(c)));      // assoc.
    EXPECT_EQ(a.merged(a), a);                                    // idemp.
  }
}

TEST(VersionVectorTest, CausalChainThroughMessagePassing) {
  // p0 writes, p1 reads (merges) then writes: p1's version must dominate.
  VersionVector stored;
  stored.increment(0);  // p0's write
  VersionVector p1 = stored.merged(VersionVector{});
  p1.increment(1);  // p1's dependent write
  EXPECT_EQ(stored.compare(p1), CausalOrder::kBefore);
}

TEST(VersionVectorTest, TotalOrderRespectsCausality) {
  VersionVector a;
  a.increment(0);
  VersionVector b = a;
  b.increment(0);
  EXPECT_TRUE(a.totally_before(b, 0, 0));
  EXPECT_FALSE(b.totally_before(a, 0, 0));
}

TEST(VersionVectorTest, TotalOrderBreaksConcurrentTiesDeterministically) {
  VersionVector a;
  a.increment(1);
  VersionVector b;
  b.increment(2);
  // Equal sums -> writer proxy id decides; antisymmetric.
  EXPECT_TRUE(a.totally_before(b, 1, 2));
  EXPECT_FALSE(b.totally_before(a, 2, 1));
}

TEST(VersionVectorTest, TotalOrderIsTotalOverRandomPairs) {
  Rng rng(7);
  for (int trial = 0; trial < 200; ++trial) {
    VersionVector a;
    VersionVector b;
    for (int i = 0; i < 4; ++i) {
      if (rng.chance(0.6)) {
        a.increment(static_cast<std::uint32_t>(rng.next_below(3)));
      }
      if (rng.chance(0.6)) {
        b.increment(static_cast<std::uint32_t>(rng.next_below(3)));
      }
    }
    const bool ab = a.totally_before(b, 0, 1);
    const bool ba = b.totally_before(a, 1, 0);
    EXPECT_FALSE(ab && ba) << "both before: " << a.to_string() << " vs "
                           << b.to_string();
    if (a == b) continue;  // equality handled by proxy tiebreak only
    EXPECT_TRUE(ab || ba) << "neither before: " << a.to_string() << " vs "
                          << b.to_string();
  }
}

TEST(VersionVectorTest, ToStringReadable) {
  VersionVector v;
  v.increment(0);
  v.increment(2);
  v.increment(2);
  EXPECT_EQ(v.to_string(), "{p0:1,p2:2}");
  EXPECT_EQ(VersionVector{}.to_string(), "{}");
}

}  // namespace
}  // namespace qopt::kv
