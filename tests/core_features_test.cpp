// Tests for the core-layer features beyond the basic data path: metrics,
// the consistency checker itself, the experiment runner, the anti-entropy
// replicator, and client proxy failover.
#include <gtest/gtest.h>

#include <filesystem>

#include "core/cluster.hpp"
#include "core/consistency.hpp"
#include "core/experiment.hpp"
#include "core/metrics.hpp"
#include "kv/replicator.hpp"
#include "kv/types.hpp"
#include "ml/dataset.hpp"
#include "workload/workload.hpp"

namespace qopt {
namespace {

// ------------------------------------------------------------------ metrics

TEST(MetricsTest, RecordsAndBuckets) {
  Metrics metrics(milliseconds(100));
  metrics.record({1, false, 0, milliseconds(50), 0, 0, {}});
  metrics.record({2, true, 0, milliseconds(150), 0, 0, {}});
  metrics.record({3, false, milliseconds(100), milliseconds(250), 0, 0, {}});
  EXPECT_EQ(metrics.total_ops(), 3u);
  EXPECT_EQ(metrics.total_reads(), 2u);
  EXPECT_EQ(metrics.total_writes(), 1u);
  EXPECT_EQ(metrics.ops_between(0, milliseconds(100)), 1u);
  EXPECT_EQ(metrics.ops_between(0, milliseconds(300)), 3u);
  EXPECT_EQ(metrics.ops_between(milliseconds(100), milliseconds(200)), 1u);
}

TEST(MetricsTest, ThroughputComputation) {
  Metrics metrics(milliseconds(100));
  for (int i = 0; i < 1000; ++i) {
    metrics.record({0, false, 0, milliseconds(i), 0, 0, {}});
  }
  EXPECT_NEAR(metrics.throughput(0, seconds(1)), 1000.0, 1.0);
}

TEST(MetricsTest, LatencySeparatedByKind) {
  Metrics metrics;
  metrics.record({0, false, 0, milliseconds(1), 0, 0, {}});
  metrics.record({0, true, 0, milliseconds(10), 0, 0, {}});
  EXPECT_NEAR(metrics.read_latency().mean(),
              static_cast<double>(milliseconds(1)), 1.0);
  EXPECT_NEAR(metrics.write_latency().mean(),
              static_cast<double>(milliseconds(10)), 1.0);
}

TEST(MetricsTest, ResetClears) {
  Metrics metrics;
  metrics.record({0, false, 0, milliseconds(1), 0, 0, {}});
  metrics.reset();
  EXPECT_EQ(metrics.total_ops(), 0u);
  EXPECT_EQ(metrics.ops_between(0, seconds(10)), 0u);
}

TEST(MetricsTest, EmptyRangeIsZero) {
  Metrics metrics;
  EXPECT_EQ(metrics.ops_between(seconds(5), seconds(5)), 0u);
  EXPECT_DOUBLE_EQ(metrics.throughput(seconds(5), seconds(4)), 0.0);
}

// ----------------------------------------------------- consistency checker

TEST(ConsistencyCheckerTest, CleanWhenReadsAreFresh) {
  ConsistencyChecker checker;
  checker.write_completed(1, {100, 0, 1});
  const kv::Timestamp snap = checker.snapshot(1);
  checker.read_completed(1, 200, 210, true, {100, 0, 1}, snap);
  checker.read_completed(1, 200, 210, true, {150, 2, 1}, snap);  // fresher ok
  EXPECT_TRUE(checker.clean());
  EXPECT_EQ(checker.reads_checked(), 2u);
}

TEST(ConsistencyCheckerTest, FlagsStaleRead) {
  ConsistencyChecker checker;
  checker.write_completed(1, {100, 0, 1});
  checker.write_completed(1, {200, 0, 2});
  const kv::Timestamp snap = checker.snapshot(1);
  checker.read_completed(1, 300, 310, true, {100, 0, 1}, snap);
  ASSERT_EQ(checker.violations().size(), 1u);
  EXPECT_EQ(checker.violations()[0].oid, 1u);
}

TEST(ConsistencyCheckerTest, FlagsNotFoundAfterWrite) {
  ConsistencyChecker checker;
  checker.write_completed(7, {100, 0, 1});
  checker.read_completed(7, 200, 210, false, {}, checker.snapshot(7));
  EXPECT_FALSE(checker.clean());
}

TEST(ConsistencyCheckerTest, NotFoundBeforeAnyWriteIsFine) {
  ConsistencyChecker checker;
  checker.read_completed(7, 10, 20, false, {}, checker.snapshot(7));
  EXPECT_TRUE(checker.clean());
}

TEST(ConsistencyCheckerTest, SnapshotMonotone) {
  ConsistencyChecker checker;
  checker.write_completed(1, {200, 0, 1});
  checker.write_completed(1, {100, 0, 1});  // older completion later
  EXPECT_EQ(checker.snapshot(1), (kv::Timestamp{200, 0, 1}));
}

// -------------------------------------------------------- experiment runner

TEST(ExperimentTest, RunStaticIsDeterministic) {
  ExperimentSpec spec;
  spec.cluster.num_storage = 5;
  spec.cluster.num_proxies = 1;
  spec.cluster.clients_per_proxy = 4;
  spec.cluster.replication = 3;
  spec.preload_objects = 200;
  spec.warmup = milliseconds(500);
  spec.measure = seconds(2);
  spec.workload = workload::ycsb_a(200);
  const ExperimentResult a = run_static(spec, {2, 2});
  const ExperimentResult b = run_static(spec, {2, 2});
  EXPECT_EQ(a.ops, b.ops);
  EXPECT_DOUBLE_EQ(a.throughput_ops, b.throughput_ops);
  EXPECT_TRUE(a.consistent);
  EXPECT_GT(a.read_p50_ms, 0.0);
  EXPECT_GT(a.write_p99_ms, a.write_p50_ms * 0.99);
}

TEST(ExperimentTest, MissingWorkloadThrows) {
  ExperimentSpec spec;
  EXPECT_THROW(run_static(spec, {3, 3}), std::invalid_argument);
}

TEST(ExperimentTest, CorpusCsvRoundTrip) {
  std::vector<CorpusPoint> corpus;
  for (int i = 0; i < 5; ++i) {
    CorpusPoint point;
    point.write_ratio = 0.1 * i;
    point.object_bytes = 1024u << i;
    point.optimal_w = i + 1;
    point.best_throughput = 1000.0 + i;
    point.worst_throughput = 500.0 + i;
    point.features = {0.1 * i, static_cast<double>(1 << i), 100.0 * i};
    corpus.push_back(point);
  }
  const std::string path = "corpus_roundtrip_test.csv";
  save_corpus(path, corpus);
  const std::vector<CorpusPoint> loaded = load_corpus(path);
  ASSERT_EQ(loaded.size(), corpus.size());
  for (std::size_t i = 0; i < corpus.size(); ++i) {
    EXPECT_DOUBLE_EQ(loaded[i].write_ratio, corpus[i].write_ratio);
    EXPECT_EQ(loaded[i].object_bytes, corpus[i].object_bytes);
    EXPECT_EQ(loaded[i].optimal_w, corpus[i].optimal_w);
    EXPECT_DOUBLE_EQ(loaded[i].features.ops_per_sec,
                     corpus[i].features.ops_per_sec);
  }
  std::filesystem::remove(path);
}

TEST(ExperimentTest, LoadCorpusMissingReturnsEmpty) {
  EXPECT_TRUE(load_corpus("no_such_corpus.csv").empty());
}

TEST(ExperimentTest, CorpusToDatasetLabelsAreWriteQuorums) {
  std::vector<CorpusPoint> corpus(3);
  corpus[0].optimal_w = 1;
  corpus[1].optimal_w = 5;
  corpus[2].optimal_w = 3;
  const ml::Dataset data = corpus_to_dataset(corpus);
  EXPECT_EQ(data.size(), 3u);
  EXPECT_EQ(data.label(1), 5);
  EXPECT_EQ(data.num_features(), 3u);
}

TEST(ExperimentTest, PaperGridIs170Points) {
  EXPECT_EQ(paper_write_ratios().size() * paper_object_sizes().size(), 170u);
}

// ------------------------------------------------------------ anti-entropy

TEST(AntiEntropyTest, RestoresFullRedundancyAfterSmallQuorumWrites) {
  ClusterConfig config;
  config.num_storage = 5;
  config.num_proxies = 1;
  config.clients_per_proxy = 2;
  config.replication = 5;
  config.initial_quorum = {5, 1};  // writes land on a single replica
  config.seed = 3;
  Cluster cluster(config);
  cluster.preload(50, 1024);
  workload::WorkloadSpec spec;
  spec.write_ratio = 1.0;
  spec.keys = std::make_shared<workload::UniformKeys>(50);
  cluster.set_workload(std::make_shared<workload::BasicWorkload>(spec));
  kv::ReplicatorOptions options;
  options.interval = seconds(1);
  options.max_repairs_per_sweep = 10'000;
  cluster.enable_anti_entropy(options);
  cluster.run_for(seconds(5));
  cluster.stop_clients();
  cluster.run_for(seconds(4));  // quiesce + let sweeps finish

  EXPECT_GT(cluster.replicator()->stats().repairs_pushed, 0u);
  // Every object's replicas must agree on the freshest version.
  int divergent = 0;
  for (kv::ObjectId oid = 0; oid < 50; ++oid) {
    kv::Timestamp freshest{};
    for (std::uint32_t r : cluster.placement().replicas(oid)) {
      const kv::Version* version = cluster.storage(r).peek(oid);
      if (version && version->ts > freshest) freshest = version->ts;
    }
    for (std::uint32_t r : cluster.placement().replicas(oid)) {
      const kv::Version* version = cluster.storage(r).peek(oid);
      if (!version || version->ts != freshest) ++divergent;
    }
  }
  EXPECT_EQ(divergent, 0);
  EXPECT_TRUE(cluster.checker().clean());
}

TEST(AntiEntropyTest, DoubleEnableThrows) {
  ClusterConfig config;
  config.num_storage = 3;
  config.num_proxies = 1;
  config.clients_per_proxy = 1;
  config.replication = 3;
  config.initial_quorum = {2, 2};
  Cluster cluster(config);
  cluster.enable_anti_entropy();
  EXPECT_THROW(cluster.enable_anti_entropy(), std::logic_error);
}

TEST(AntiEntropyTest, ThrottleLimitsRepairsPerSweep) {
  ClusterConfig config;
  config.num_storage = 5;
  config.num_proxies = 1;
  config.clients_per_proxy = 2;
  config.replication = 5;
  config.initial_quorum = {5, 1};
  config.seed = 5;
  Cluster cluster(config);
  workload::WorkloadSpec spec;
  spec.write_ratio = 1.0;
  spec.keys = std::make_shared<workload::UniformKeys>(500);
  cluster.set_workload(std::make_shared<workload::BasicWorkload>(spec));
  cluster.run_for(seconds(2));
  cluster.stop_clients();
  cluster.run_for(seconds(1));
  kv::ReplicatorOptions options;
  options.interval = seconds(1);
  options.max_repairs_per_sweep = 20;
  cluster.enable_anti_entropy(options);
  cluster.run_for(milliseconds(1100));  // exactly one sweep
  EXPECT_LE(cluster.replicator()->stats().repairs_pushed, 23u)
      << "throttle exceeded (one object may add up to N-1 pushes)";
}

// --------------------------------------------------------- client failover

TEST(ClientFailoverTest, ClientsSurviveProxyCrash) {
  ClusterConfig config;
  config.num_storage = 5;
  config.num_proxies = 3;
  config.clients_per_proxy = 3;
  config.replication = 5;
  config.initial_quorum = {3, 3};
  config.client_retry_timeout = milliseconds(200);
  config.seed = 7;
  Cluster cluster(config);
  cluster.preload(100, 1024);
  cluster.set_workload(workload::ycsb_a(100));
  cluster.run_for(seconds(1));
  cluster.crash_proxy(0);
  cluster.run_for(seconds(3));
  // The crashed proxy's clients failed over and kept completing work.
  for (std::uint32_t c = 0; c < 3; ++c) {
    const std::uint64_t before = cluster.client(c).ops_completed();
    cluster.run_for(seconds(1));
    EXPECT_GT(cluster.client(c).ops_completed(), before)
        << "client " << c << " stalled after proxy crash";
    EXPECT_GT(cluster.client(c).retries(), 0u);
    EXPECT_NE(cluster.client(c).current_proxy(), sim::proxy_id(0));
  }
  EXPECT_TRUE(cluster.checker().clean());
}

TEST(ClientFailoverTest, DisabledByDefaultClientsStall) {
  ClusterConfig config;
  config.num_storage = 5;
  config.num_proxies = 2;
  config.clients_per_proxy = 2;
  config.replication = 5;
  config.initial_quorum = {3, 3};
  config.seed = 9;
  Cluster cluster(config);
  cluster.preload(100, 1024);
  cluster.set_workload(workload::ycsb_a(100));
  cluster.run_for(seconds(1));
  cluster.crash_proxy(0);
  cluster.run_for(seconds(1));
  const std::uint64_t stalled = cluster.client(0).ops_completed();
  cluster.run_for(seconds(2));
  EXPECT_EQ(cluster.client(0).ops_completed(), stalled);
  // Other proxy's clients unaffected.
  EXPECT_GT(cluster.client(2).ops_completed(), 0u);
}

TEST(ClientFailoverTest, NoSpuriousRetriesWhenHealthy) {
  ClusterConfig config;
  config.num_storage = 5;
  config.num_proxies = 2;
  config.clients_per_proxy = 2;
  config.replication = 5;
  config.initial_quorum = {3, 3};
  config.client_retry_timeout = seconds(2);  // far above any latency
  config.seed = 11;
  Cluster cluster(config);
  cluster.preload(100, 1024);
  cluster.set_workload(workload::ycsb_a(100));
  cluster.run_for(seconds(5));
  for (std::uint32_t c = 0; c < cluster.num_clients(); ++c) {
    EXPECT_EQ(cluster.client(c).retries(), 0u);
  }
}

}  // namespace
}  // namespace qopt
