// Same-seed replay gate for the QuorumStrategy redesign: the scenario below
// was run against the pre-redesign (r, w)-only build and its RunReport JSON
// committed as tests/data/replay_baseline.json. Re-running it through the
// QuorumStrategy::majority factories must reproduce that export byte for
// byte — proof that the strategy generalization left the majority path's
// event schedule, RNG draws, and wire traffic untouched.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "core/cluster.hpp"
#include "kv/quorum.hpp"
#include "kv/types.hpp"
#include "util/time.hpp"
#include "workload/workload.hpp"

namespace qopt {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

std::string run_replay_scenario() {
  ClusterConfig config;
  config.num_storage = 10;
  config.num_proxies = 2;
  config.clients_per_proxy = 4;
  config.replication = 5;
  config.initial_quorum = kv::QuorumConfig::of(3, 3);
  config.seed = 0xB0B0;
  Cluster cluster(config);
  cluster.preload(2000, 4096);
  cluster.set_workload(workload::ycsb_a(2000));
  cluster.run_for(seconds(2));
  // Store-wide and per-object reconfigurations through the strategy API:
  // majority strategies must take the exact legacy path.
  cluster.reconfigure_strategy(kv::QuorumStrategy::majority(2, 4, 5));
  cluster.run_for(seconds(2));
  cluster.reconfigure_objects({{7, kv::QuorumConfig::of(5, 1)},
                               {11, kv::QuorumConfig::of(4, 2)}});
  cluster.run_for(seconds(2));
  cluster.stop_clients();
  cluster.run_for(seconds(1));
  return cluster.report().to_json();
}

TEST(ReplayGateTest, MajorityStrategyReplaysPreRedesignBaseline) {
  const std::string baseline =
      read_file(std::string(QOPT_TEST_DATA_DIR) + "/replay_baseline.json");
  ASSERT_FALSE(baseline.empty()) << "baseline export missing";
  const std::string now = run_replay_scenario();
  // Compare sizes first for a readable failure before the full diff.
  ASSERT_EQ(baseline.size(), now.size())
      << "replay diverged from the pre-redesign baseline";
  EXPECT_EQ(baseline, now);
}

}  // namespace
}  // namespace qopt
