// Deeper edge cases of the reconfiguration and data-path protocols that the
// main suites do not reach: NACKs landing mid-repair, reconfigurations
// queued behind epoch changes, drain interaction with retried operations,
// storage-side write NACKs, and monitoring isolation from internal traffic.
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "core/cluster.hpp"
#include "kv/quorum.hpp"
#include "kv/storage_node.hpp"
#include "kv/types.hpp"
#include "kv/wire.hpp"
#include "proxy/proxy.hpp"
#include "qopt_proto/proto.hpp"
#include "sim/ids.hpp"
#include "workload/workload.hpp"

namespace qopt {
namespace {

ClusterConfig small_config() {
  ClusterConfig config;
  config.num_storage = 5;
  config.num_proxies = 2;
  config.clients_per_proxy = 2;
  config.replication = 5;
  config.initial_quorum = {3, 3};
  config.seed = 31;
  return config;
}

TEST(ProtocolEdgeTest, ReconfigQueuedDuringSuspicionDrivenEpochChange) {
  Cluster cluster(small_config());
  cluster.preload(100, 1024);
  cluster.set_workload(workload::ycsb_a(100));
  cluster.run_for(milliseconds(500));
  cluster.inject_false_suspicion(1, seconds(5));
  int completed = 0;
  // Three reconfigurations queued while the first triggers epoch changes.
  cluster.reconfigure({5, 1}, [&](bool ok) { completed += ok; });
  cluster.reconfigure({1, 5}, [&](bool ok) { completed += ok; });
  cluster.reconfigure({4, 2}, [&](bool ok) { completed += ok; });
  cluster.run_for(seconds(10));
  EXPECT_EQ(completed, 3);
  EXPECT_EQ(cluster.rm().config().default_q, (kv::QuorumConfig::of(4, 2)));
  EXPECT_GE(cluster.obs().registry().counter_value("rm.epoch_changes"), 2u);
  EXPECT_TRUE(cluster.checker().clean());
}

TEST(ProtocolEdgeTest, BackToBackSuspicionsOfDifferentProxies) {
  Cluster cluster(small_config());
  cluster.preload(100, 1024);
  cluster.set_workload(workload::ycsb_a(100));
  cluster.run_for(milliseconds(500));
  cluster.inject_false_suspicion(0, seconds(2));
  cluster.reconfigure({5, 1});
  cluster.run_for(seconds(3));
  cluster.inject_false_suspicion(1, seconds(2));
  cluster.reconfigure({1, 5});
  cluster.run_for(seconds(5));
  EXPECT_EQ(cluster.obs().registry().counter_value("rm.reconfigurations_completed"), 2u);
  // Both proxies converged to the final configuration.
  EXPECT_EQ(cluster.proxy(0).default_quorum(), (kv::QuorumConfig::of(1, 5)));
  EXPECT_EQ(cluster.proxy(1).default_quorum(), (kv::QuorumConfig::of(1, 5)));
  EXPECT_TRUE(cluster.checker().clean());
}

TEST(ProtocolEdgeTest, EpochsAreMonotoneAcrossStorageNodes) {
  Cluster cluster(small_config());
  cluster.preload(50, 1024);
  cluster.set_workload(workload::ycsb_a(50));
  cluster.run_for(milliseconds(300));
  for (int round = 0; round < 4; ++round) {
    cluster.inject_false_suspicion(round % 2, milliseconds(800));
    cluster.reconfigure(round % 2 ? kv::QuorumConfig::of(1, 5)
                                  : kv::QuorumConfig::of(5, 1));
    cluster.run_for(seconds(2));
  }
  const std::uint64_t rm_epoch = cluster.rm().config().epno;
  EXPECT_GE(rm_epoch, 4u);
  for (std::uint32_t i = 0; i < 5; ++i) {
    EXPECT_LE(cluster.storage(i).epoch(), rm_epoch);
  }
  EXPECT_TRUE(cluster.checker().clean());
}

TEST(ProtocolEdgeTest, WritebacksInvisibleToMonitoringAndClients) {
  // Force read repairs, then verify the repair write-backs neither reach
  // clients nor inflate the op metrics.
  Cluster cluster(small_config());
  cluster.preload(50, 1024);
  workload::WorkloadSpec spec;
  spec.write_ratio = 0.5;
  spec.keys = std::make_shared<workload::UniformKeys>(50);
  cluster.set_workload(std::make_shared<workload::BasicWorkload>(spec));
  cluster.run_for(seconds(1));
  cluster.reconfigure({5, 1});
  cluster.run_for(seconds(2));
  cluster.reconfigure({1, 5});
  cluster.run_for(seconds(3));
  std::uint64_t repairs = 0;
  std::uint64_t writebacks = 0;
  for (std::uint32_t i = 0; i < 2; ++i) {
    repairs += cluster.obs().registry().counter_value(obs::instrument_name("proxy", i, "repair_reads"));
    writebacks += cluster.obs().registry().counter_value(obs::instrument_name("proxy", i, "writebacks"));
  }
  EXPECT_GT(repairs, 0u) << "scenario failed to trigger read repair";
  EXPECT_GT(writebacks, 0u);
  // Client-visible op count equals client ops (no write-back leakage):
  std::uint64_t client_ops = 0;
  for (std::uint32_t c = 0; c < cluster.num_clients(); ++c) {
    client_ops += cluster.client(c).ops_completed();
  }
  EXPECT_EQ(cluster.metrics().total_ops(), client_ops);
  EXPECT_TRUE(cluster.checker().clean());
}

TEST(ProtocolEdgeTest, StorageWriteNackAlsoResynchronizes) {
  // Direct wire-level check that the *write* NACK path works (the proxy
  // suite covers reads in detail): advance storage epochs behind a
  // write-only workload's back.
  Cluster cluster(small_config());
  cluster.preload(10, 1024);
  workload::WorkloadSpec spec;
  spec.write_ratio = 1.0;
  spec.keys = std::make_shared<workload::UniformKeys>(10);
  cluster.set_workload(std::make_shared<workload::BasicWorkload>(spec));
  cluster.run_for(milliseconds(500));
  cluster.inject_false_suspicion(0, seconds(3));
  cluster.reconfigure({2, 4});
  cluster.run_for(seconds(5));
  EXPECT_GE(cluster.obs().registry().counter_value(obs::instrument_name("proxy", 0, "nacks_received")), 1u);
  EXPECT_EQ(cluster.proxy(0).default_quorum(), (kv::QuorumConfig::of(2, 4)));
  // The falsely suspected proxy's clients never stalled.
  EXPECT_GT(cluster.client(0).ops_completed(), 100u);
  EXPECT_TRUE(cluster.checker().clean());
}

TEST(ProtocolEdgeTest, PerObjectAndGlobalChangesInterleavedUnderLoad) {
  Cluster cluster(small_config());
  cluster.preload(100, 1024);
  cluster.set_workload(workload::ycsb_a(100));
  cluster.run_for(milliseconds(300));
  cluster.reconfigure_objects({{1, {5, 1}}, {2, {1, 5}}});
  cluster.reconfigure({4, 2});
  cluster.reconfigure_objects({{1, {3, 3}}});
  cluster.reconfigure({2, 4});
  cluster.run_for(seconds(5));
  EXPECT_EQ(cluster.rm().quorum_for(1), (kv::QuorumConfig::of(3, 3)));
  EXPECT_EQ(cluster.rm().quorum_for(2), (kv::QuorumConfig::of(1, 5)));
  EXPECT_EQ(cluster.rm().config().default_q, (kv::QuorumConfig::of(2, 4)));
  for (std::uint32_t i = 0; i < 2; ++i) {
    EXPECT_EQ(cluster.proxy(i).effective_quorum(1), (kv::QuorumConfig::of(3, 3)));
    EXPECT_EQ(cluster.proxy(i).effective_quorum(2), (kv::QuorumConfig::of(1, 5)));
    EXPECT_EQ(cluster.proxy(i).effective_quorum(99),
              (kv::QuorumConfig::of(2, 4)));
  }
  EXPECT_TRUE(cluster.checker().clean());
}

TEST(ProtocolEdgeTest, ReadRepairAcrossManyConfigGenerations) {
  // A version written many configurations ago must still be repaired using
  // the max historical read quorum, even after the config history grows.
  Cluster cluster(small_config());
  cluster.preload(20, 1024);
  // One write burst at W=5 (visible everywhere), then none.
  workload::WorkloadSpec writes;
  writes.write_ratio = 1.0;
  writes.keys = std::make_shared<workload::UniformKeys>(20);
  cluster.reconfigure({1, 5});
  cluster.set_workload(std::make_shared<workload::BasicWorkload>(writes));
  cluster.run_for(seconds(1));
  cluster.stop_clients();
  cluster.run_for(milliseconds(500));
  // Now a W=1 write generation, pinning fresh versions to single replicas.
  cluster.reconfigure({5, 1});
  for (std::uint32_t c = 0; c < cluster.num_clients(); ++c) {
    cluster.client(c).set_source(
        std::make_shared<workload::BasicWorkload>(writes));
    cluster.client(c).start();
  }
  cluster.run_for(seconds(1));
  cluster.stop_clients();
  cluster.run_for(milliseconds(500));
  // Several no-op config flips to deepen the history, then read at R=1.
  cluster.reconfigure({3, 3});
  cluster.run_for(seconds(1));
  cluster.reconfigure({1, 5});
  cluster.run_for(seconds(1));
  workload::WorkloadSpec reads;
  reads.write_ratio = 0.0;
  reads.keys = std::make_shared<workload::UniformKeys>(20);
  for (std::uint32_t c = 0; c < cluster.num_clients(); ++c) {
    cluster.client(c).set_source(
        std::make_shared<workload::BasicWorkload>(reads));
    cluster.client(c).start();
  }
  cluster.run_for(seconds(3));
  EXPECT_TRUE(cluster.checker().clean())
      << "stale read: historical-quorum repair failed across generations";
  EXPECT_GT(cluster.checker().reads_checked(), 100u);
}

// ------------------------------------------------- wire-evolution symmetry
//
// Driven by the committed protocol manifest: every message recorded as
// `versioned = true` in docs/PROTOCOL.toml must have a driver below proving
// (a) the message survives the wire round trip unchanged and (b) a frame
// stamped with a future version is dropped by its handler without touching
// receiver state — while the same frame with the current version applies.
// The closing assertion compares the driver set against the manifest, so a
// newly versioned message fails this test until it gains a driver here.

TEST(WireSymmetryTest, VersionedMessagesRoundTripAndDropFutureFrames) {
  const proto::Manifest manifest = proto::load_manifest(
      std::string(QOPT_SOURCE_ROOT) + "/docs/PROTOCOL.toml");
  ASSERT_TRUE(manifest.errors.empty())
      << proto::format_finding(manifest.errors.front());
  std::set<std::string> versioned;
  for (const auto& message : manifest.messages) {
    if (message.versioned) versioned.insert(message.name);
  }
  ASSERT_FALSE(versioned.empty());

  // One quiescent cluster provides wired-up receivers for the drop checks.
  Cluster cluster(small_config());
  cluster.run_for(milliseconds(100));
  std::set<std::string> covered;

  {  // NewQuorumMsg — RM -> proxy, phase 1 of the two-phase install.
    covered.insert("NewQuorumMsg");
    proxy::Proxy& proxy = cluster.proxy(0);
    kv::NewQuorumMsg msg;
    msg.epno = proxy.epoch();
    msg.cfno = 100;  // far beyond anything the quiescent cluster installed
    msg.change.is_global = true;
    msg.change.global = kv::QuorumStrategy::majority(4, 2, 5);

    kv::Message frame = msg;        // onto the wire
    const kv::Message copy = frame;  // delivery copies the frame
    const auto* decoded = std::get_if<kv::NewQuorumMsg>(&copy);
    ASSERT_NE(decoded, nullptr);
    EXPECT_EQ(decoded->epno, msg.epno);
    EXPECT_EQ(decoded->cfno, msg.cfno);
    EXPECT_EQ(decoded->change.is_global, msg.change.is_global);
    EXPECT_EQ(decoded->change.global, msg.change.global);
    EXPECT_EQ(decoded->strategy_version, kv::QuorumStrategy::kWireVersion);

    const kv::QuorumConfig before = proxy.effective_quorum(0);
    kv::NewQuorumMsg future = msg;
    future.strategy_version = kv::QuorumStrategy::kWireVersion + 1;
    proxy.on_message(sim::rm_id(), kv::Message{future});
    EXPECT_EQ(proxy.effective_quorum(0), before)
        << "future-version NEWQ must be dropped";
    proxy.on_message(sim::rm_id(), kv::Message{msg});
    EXPECT_NE(proxy.effective_quorum(0), before)
        << "current-version NEWQ must apply (the drop above was the tag)";
  }

  {  // NewEpochMsg — RM -> storage, epoch installation.
    covered.insert("NewEpochMsg");
    kv::StorageNode& node = cluster.storage(0);
    kv::NewEpochMsg msg;
    msg.config.epno = node.epoch() + 5;
    msg.config.cfno = 100;
    msg.config.default_q = kv::QuorumStrategy::majority(4, 2, 5);

    kv::Message frame = msg;
    const kv::Message copy = frame;
    const auto* decoded = std::get_if<kv::NewEpochMsg>(&copy);
    ASSERT_NE(decoded, nullptr);
    EXPECT_EQ(decoded->config.epno, msg.config.epno);
    EXPECT_EQ(decoded->config.cfno, msg.config.cfno);
    EXPECT_EQ(decoded->config.default_q, msg.config.default_q);
    EXPECT_EQ(decoded->strategy_version, kv::QuorumStrategy::kWireVersion);

    const std::uint64_t before = node.epoch();
    kv::NewEpochMsg future = msg;
    future.strategy_version = kv::QuorumStrategy::kWireVersion + 1;
    node.on_message(sim::rm_id(), kv::Message{future});
    EXPECT_EQ(node.epoch(), before)
        << "future-version NEWEP must be dropped";
    node.on_message(sim::rm_id(), kv::Message{msg});
    EXPECT_EQ(node.epoch(), msg.config.epno)
        << "current-version NEWEP must apply (the drop above was the tag)";
  }

  EXPECT_EQ(covered, versioned)
      << "every `versioned = true` message in docs/PROTOCOL.toml needs a "
         "round-trip + future-version-drop driver in this test";
}

}  // namespace
}  // namespace qopt
