#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "topk/space_saving.hpp"
#include "util/rng.hpp"
#include "workload/workload.hpp"

namespace qopt::topk {
namespace {

TEST(SpaceSavingTest, ExactWhenUnderCapacity) {
  SpaceSaving summary(10);
  for (int i = 0; i < 5; ++i) {
    for (int rep = 0; rep <= i; ++rep) summary.add(static_cast<uint64_t>(i));
  }
  // key i appears i+1 times; all monitored exactly.
  const auto top = summary.top(3);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0].key, 4u);
  EXPECT_EQ(top[0].count, 5u);
  EXPECT_EQ(top[0].error, 0u);
  EXPECT_EQ(top[1].key, 3u);
  EXPECT_EQ(top[2].key, 2u);
}

TEST(SpaceSavingTest, EstimateReturnsZeroForUnknown) {
  SpaceSaving summary(4);
  summary.add(1);
  EXPECT_EQ(summary.estimate(1), 1u);
  EXPECT_EQ(summary.estimate(99), 0u);
}

TEST(SpaceSavingTest, EvictionInheritsMinCountAsError) {
  SpaceSaving summary(2);
  summary.add(1, 10);
  summary.add(2, 5);
  summary.add(3);  // evicts key 2 (count 5): key 3 gets count 6, error 5
  EXPECT_EQ(summary.estimate(3), 6u);
  EXPECT_EQ(summary.estimate(2), 0u);
  const auto top = summary.top(2);
  const auto it = std::find_if(top.begin(), top.end(),
                               [](const TopKEntry& e) { return e.key == 3; });
  ASSERT_NE(it, top.end());
  EXPECT_EQ(it->error, 5u);
}

TEST(SpaceSavingTest, CountUpperBoundsTrueFrequency) {
  // Space-Saving invariant: estimate(key) >= true frequency for monitored
  // keys, and count - error <= true frequency.
  SpaceSaving summary(20);
  std::map<std::uint64_t, std::uint64_t> truth;
  Rng rng(7);
  workload::ZipfianKeys zipf(500, 0.99, /*scramble=*/false);
  for (int i = 0; i < 50'000; ++i) {
    const std::uint64_t key = zipf.sample(rng);
    ++truth[key];
    summary.add(key);
  }
  for (const TopKEntry& entry : summary.top(20)) {
    const std::uint64_t actual = truth[entry.key];
    EXPECT_GE(entry.count, actual) << "key " << entry.key;
    EXPECT_LE(entry.count - entry.error, actual) << "key " << entry.key;
  }
}

TEST(SpaceSavingTest, FindsTrueHeavyHittersOnZipf) {
  SpaceSaving summary(64);
  std::map<std::uint64_t, std::uint64_t> truth;
  Rng rng(11);
  workload::ZipfianKeys zipf(10'000, 0.99, /*scramble=*/false);
  for (int i = 0; i < 200'000; ++i) {
    const std::uint64_t key = zipf.sample(rng);
    ++truth[key];
    summary.add(key);
  }
  // The true top-8 must all be monitored in the summary's top-16.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> sorted(truth.begin(),
                                                              truth.end());
  std::sort(sorted.begin(), sorted.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  const auto reported = summary.top(16);
  for (int i = 0; i < 8; ++i) {
    const std::uint64_t key = sorted[static_cast<size_t>(i)].first;
    EXPECT_TRUE(std::any_of(
        reported.begin(), reported.end(),
        [&](const TopKEntry& e) { return e.key == key; }))
        << "true hot key " << key << " missing from summary top";
  }
}

TEST(SpaceSavingTest, StreamLengthTracksIncrements) {
  SpaceSaving summary(4);
  summary.add(1, 5);
  summary.add(2, 3);
  EXPECT_EQ(summary.stream_length(), 8u);
}

TEST(SpaceSavingTest, GuaranteedAboveUsesLowerBound) {
  SpaceSaving summary(2);
  summary.add(1, 100);
  summary.add(2, 5);
  summary.add(3, 10);  // count 15, error 5 -> lower bound 10
  EXPECT_TRUE(summary.guaranteed_above(1, 50));
  EXPECT_TRUE(summary.guaranteed_above(3, 9));
  EXPECT_FALSE(summary.guaranteed_above(3, 10));
  EXPECT_FALSE(summary.guaranteed_above(42, 0));
}

TEST(SpaceSavingTest, ClearResets) {
  SpaceSaving summary(4);
  summary.add(1);
  summary.clear();
  EXPECT_EQ(summary.size(), 0u);
  EXPECT_EQ(summary.stream_length(), 0u);
  EXPECT_EQ(summary.estimate(1), 0u);
}

TEST(SpaceSavingTest, TopMoreThanSizeReturnsAll) {
  SpaceSaving summary(8);
  summary.add(1);
  summary.add(2);
  EXPECT_EQ(summary.top(100).size(), 2u);
}

TEST(SpaceSavingTest, MergeAddsCountsForSharedKeys) {
  SpaceSaving a(8);
  SpaceSaving b(8);
  a.add(1, 10);
  a.add(2, 5);
  b.add(1, 7);
  b.add(3, 2);
  a.merge(b);
  EXPECT_EQ(a.estimate(1), 17u);
  EXPECT_EQ(a.stream_length(), 24u);
  EXPECT_GE(a.estimate(3), 2u);
}

TEST(SpaceSavingTest, MergePreservesHeavyHitterDetection) {
  // Split one zipfian stream across 4 summaries (as Q-OPT proxies do),
  // merge, and confirm the global hot keys surface.
  std::vector<SpaceSaving> parts(4, SpaceSaving(64));
  std::map<std::uint64_t, std::uint64_t> truth;
  Rng rng(13);
  workload::ZipfianKeys zipf(5'000, 0.99, /*scramble=*/false);
  for (int i = 0; i < 100'000; ++i) {
    const std::uint64_t key = zipf.sample(rng);
    ++truth[key];
    parts[static_cast<size_t>(i % 4)].add(key);
  }
  SpaceSaving merged(64);
  for (const auto& part : parts) merged.merge(part);
  std::vector<std::pair<std::uint64_t, std::uint64_t>> sorted(truth.begin(),
                                                              truth.end());
  std::sort(sorted.begin(), sorted.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  const auto reported = merged.top(32);
  for (int i = 0; i < 5; ++i) {
    const std::uint64_t key = sorted[static_cast<size_t>(i)].first;
    EXPECT_TRUE(std::any_of(
        reported.begin(), reported.end(),
        [&](const TopKEntry& e) { return e.key == key; }))
        << "hot key " << key << " lost in merge";
  }
}

TEST(SpaceSavingTest, CapacityOneDegeneratesGracefully) {
  SpaceSaving summary(1);
  for (int i = 0; i < 100; ++i) summary.add(static_cast<uint64_t>(i % 3));
  EXPECT_EQ(summary.size(), 1u);
  EXPECT_EQ(summary.stream_length(), 100u);
  EXPECT_EQ(summary.top(1).size(), 1u);
}

TEST(SpaceSavingTest, DeterministicTieBreakByKey) {
  SpaceSaving summary(8);
  summary.add(5, 3);
  summary.add(2, 3);
  summary.add(9, 3);
  const auto top = summary.top(3);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0].key, 2u);
  EXPECT_EQ(top[1].key, 5u);
  EXPECT_EQ(top[2].key, 9u);
}

}  // namespace
}  // namespace qopt::topk
