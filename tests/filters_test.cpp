#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "autonomic/filters.hpp"
#include "util/rng.hpp"

namespace qopt::autonomic {
namespace {

// ---------------------------------------------------------- OutlierFilter

TEST(OutlierFilterTest, MostlyPassesNormalSamples) {
  // A small Hampel false-positive rate is statistically inherent with a
  // 7-sample window over uniform noise; what matters for the autonomic loop
  // is that false rejections are rare and replaced by a nearby median.
  OutlierFilter filter;  // default window/threshold
  Rng rng(1);
  const int n = 2000;
  for (int i = 0; i < n; ++i) {
    const double sample = 1000.0 + rng.uniform(-50, 50);
    const double filtered = filter.filter(sample);
    EXPECT_NEAR(filtered, 1000.0, 51.0);  // never far from the true level
  }
  EXPECT_LT(filter.outliers_rejected(), static_cast<std::size_t>(n / 20));
}

TEST(OutlierFilterTest, RejectsSpike) {
  OutlierFilter filter;
  Rng rng(2);
  for (int i = 0; i < 40; ++i) filter.filter(1000.0 + rng.uniform(-30, 30));
  const std::size_t rejected_before = filter.outliers_rejected();
  const double filtered = filter.filter(5000.0);  // momentary spike
  EXPECT_TRUE(filter.last_was_outlier());
  EXPECT_NEAR(filtered, 1000.0, 60.0);  // replaced by rolling median
  EXPECT_EQ(filter.outliers_rejected(), rejected_before + 1);
}

TEST(OutlierFilterTest, RejectsDip) {
  OutlierFilter filter(7, 3.0);
  Rng rng(3);
  for (int i = 0; i < 20; ++i) filter.filter(1000.0 + rng.uniform(-30, 30));
  filter.filter(10.0);
  EXPECT_TRUE(filter.last_was_outlier());
}

TEST(OutlierFilterTest, SpikeBurstDoesNotDragMedian) {
  // Because rejected samples never enter the window, a burst of identical
  // spikes keeps being rejected (a genuine regime change must come through
  // gradual values, which is what the ShiftDetector is for).
  OutlierFilter filter(7, 3.0);
  Rng rng(4);
  for (int i = 0; i < 20; ++i) filter.filter(1000.0 + rng.uniform(-30, 30));
  for (int i = 0; i < 5; ++i) filter.filter(6000.0);
  EXPECT_EQ(filter.outliers_rejected(), 5u);
}

TEST(OutlierFilterTest, TooFewSamplesNeverRejects) {
  OutlierFilter filter(7, 3.0);
  EXPECT_DOUBLE_EQ(filter.filter(1.0), 1.0);
  EXPECT_DOUBLE_EQ(filter.filter(1e9), 1e9);  // only 2nd sample
  EXPECT_FALSE(filter.last_was_outlier());
}

TEST(OutlierFilterTest, ConstantHistoryDegenerateMad) {
  OutlierFilter filter(5, 3.0);
  for (int i = 0; i < 10; ++i) filter.filter(100.0);
  filter.filter(101.0);  // tiny deviation but MAD == 0
  EXPECT_TRUE(filter.last_was_outlier());
  EXPECT_DOUBLE_EQ(filter.filter(100.0), 100.0);
}

TEST(OutlierFilterTest, ResetClearsState) {
  OutlierFilter filter(5, 3.0);
  for (int i = 0; i < 10; ++i) filter.filter(100.0);
  filter.filter(9999.0);
  filter.reset();
  EXPECT_EQ(filter.outliers_rejected(), 0u);
  EXPECT_DOUBLE_EQ(filter.filter(9999.0), 9999.0);  // fresh window
}

// ---------------------------------------------------------- ShiftDetector

TEST(ShiftDetectorTest, NoShiftOnStationarySignal) {
  ShiftDetector detector(0.05, 0.6);
  Rng rng(5);
  for (int i = 0; i < 500; ++i) {
    EXPECT_FALSE(detector.update(1000.0 + rng.uniform(-20, 20)));
  }
  EXPECT_EQ(detector.shifts_detected(), 0u);
}

TEST(ShiftDetectorTest, DetectsUpwardShift) {
  ShiftDetector detector(0.05, 0.6);
  Rng rng(6);
  for (int i = 0; i < 50; ++i) detector.update(1000.0 + rng.uniform(-20, 20));
  bool detected = false;
  for (int i = 0; i < 30 && !detected; ++i) {
    detected = detector.update(1600.0 + rng.uniform(-20, 20));
  }
  EXPECT_TRUE(detected);
}

TEST(ShiftDetectorTest, DetectsDownwardShift) {
  ShiftDetector detector(0.05, 0.6);
  Rng rng(7);
  for (int i = 0; i < 50; ++i) detector.update(1000.0 + rng.uniform(-20, 20));
  bool detected = false;
  for (int i = 0; i < 30 && !detected; ++i) {
    detected = detector.update(500.0 + rng.uniform(-20, 20));
  }
  EXPECT_TRUE(detected);
}

TEST(ShiftDetectorTest, ReadyForNextShiftAfterDetection) {
  ShiftDetector detector(0.05, 0.6);
  Rng rng(8);
  auto feed_until_shift = [&](double level) {
    for (int i = 0; i < 100; ++i) {
      if (detector.update(level + rng.uniform(-10, 10))) return true;
    }
    return false;
  };
  for (int i = 0; i < 50; ++i) detector.update(1000.0 + rng.uniform(-10, 10));
  EXPECT_TRUE(feed_until_shift(1500.0));
  EXPECT_TRUE(feed_until_shift(800.0));
  EXPECT_EQ(detector.shifts_detected(), 2u);
}

TEST(ShiftDetectorTest, WorksOnWriteRatioScale) {
  // The AM feeds write ratios in [0,1]; the detector must work there too.
  ShiftDetector detector(0.05, 0.5);
  Rng rng(9);
  for (int i = 0; i < 60; ++i) {
    detector.update(0.05 + rng.uniform(-0.01, 0.01));
  }
  bool detected = false;
  for (int i = 0; i < 30 && !detected; ++i) {
    detected = detector.update(0.95 + rng.uniform(-0.01, 0.01));
  }
  EXPECT_TRUE(detected);
}

TEST(ShiftDetectorTest, SmallDriftWithinDeltaIgnored) {
  ShiftDetector detector(0.10, 1.0);  // tolerate 10% drift
  Rng rng(10);
  for (int i = 0; i < 300; ++i) {
    // Slow 5% wander around the mean: inside the dead zone.
    const double level = 1000.0 * (1.0 + 0.05 * std::sin(i / 25.0));
    EXPECT_FALSE(detector.update(level + rng.uniform(-5, 5)));
  }
}

// --------------------------------------------------------- TrendPredictor

TEST(TrendPredictorTest, FlatSignalForecastsFlat) {
  TrendPredictor predictor;
  for (int i = 0; i < 50; ++i) predictor.update(100.0);
  EXPECT_NEAR(predictor.forecast(5), 100.0, 1e-6);
  EXPECT_NEAR(predictor.trend(), 0.0, 1e-6);
}

TEST(TrendPredictorTest, LinearSignalExtrapolates) {
  TrendPredictor predictor(0.5, 0.3);
  for (int i = 0; i < 100; ++i) {
    predictor.update(100.0 + 10.0 * i);
  }
  // Next value should be ~ 100 + 10*100 = 1100.
  EXPECT_NEAR(predictor.forecast(1), 1100.0, 20.0);
  EXPECT_NEAR(predictor.trend(), 10.0, 1.0);
}

TEST(TrendPredictorTest, NotReadyBeforeTwoSamples) {
  TrendPredictor predictor;
  EXPECT_FALSE(predictor.ready());
  predictor.update(1.0);
  EXPECT_FALSE(predictor.ready());
  predictor.update(2.0);
  EXPECT_TRUE(predictor.ready());
}

TEST(TrendPredictorTest, AdaptsAfterTrendReversal) {
  TrendPredictor predictor(0.6, 0.4);
  for (int i = 0; i < 50; ++i) predictor.update(1000.0 + 10.0 * i);
  for (int i = 0; i < 50; ++i) predictor.update(1500.0 - 10.0 * i);
  EXPECT_LT(predictor.trend(), 0.0);
}

TEST(TrendPredictorTest, ResetForgets) {
  TrendPredictor predictor;
  for (int i = 0; i < 10; ++i) predictor.update(50.0 + i);
  predictor.reset();
  EXPECT_FALSE(predictor.ready());
  EXPECT_DOUBLE_EQ(predictor.forecast(3), 0.0);
}

}  // namespace
}  // namespace qopt::autonomic
