#include <gtest/gtest.h>

#include <set>
#include <string>

#include "core/cluster.hpp"
#include "kv/naming.hpp"
#include "kv/types.hpp"
#include "workload/trace.hpp"
#include "workload/workload.hpp"

namespace qopt::kv {
namespace {

TEST(NamingTest, StableAcrossCalls) {
  const ObjectId a = object_id_for("acct", "photos", "trip/001.jpg");
  const ObjectId b = object_id_for("acct", "photos", "trip/001.jpg");
  EXPECT_EQ(a, b);
}

TEST(NamingTest, DistinctPathsDistinctIds) {
  std::set<ObjectId> ids;
  for (int account = 0; account < 10; ++account) {
    for (int object = 0; object < 100; ++object) {
      ids.insert(object_id_for("acct" + std::to_string(account), "c",
                               "o" + std::to_string(object)));
    }
  }
  EXPECT_EQ(ids.size(), 1000u);
}

TEST(NamingTest, PathComponentsAreNotConcatenationAmbiguous) {
  // "a/bc" + "d" must differ from "a/b" + "cd" etc.
  EXPECT_NE(object_id_for("a", "bc", "d"), object_id_for("a", "b", "cd"));
  EXPECT_NE(object_id_for("ab", "c", "d"), object_id_for("a", "bc", "d"));
}

TEST(ObjectNamerTest, ResolveAndReverse) {
  ObjectNamer namer;
  const ObjectId oid = namer.resolve("tenant1", "backup", "disk.img");
  EXPECT_EQ(namer.name_of(oid), std::optional<std::string>(
                                    "tenant1/backup/disk.img"));
  EXPECT_EQ(namer.name_of(12345), std::nullopt);
  EXPECT_EQ(namer.size(), 1u);
  // Re-resolving the same path is idempotent.
  EXPECT_EQ(namer.resolve("tenant1", "backup", "disk.img"), oid);
  EXPECT_EQ(namer.size(), 1u);
}

TEST(ObjectNamerTest, ManyPathsNoCollision) {
  ObjectNamer namer;
  for (int i = 0; i < 20'000; ++i) {
    EXPECT_NO_THROW(namer.resolve("acct", "container",
                                  "object-" + std::to_string(i)));
  }
  EXPECT_EQ(namer.size(), 20'000u);
}

TEST(NamingTest, EndToEndNamedObjects) {
  // The ids drive placement and the full data path like any other object.
  ClusterConfig config;
  config.num_storage = 5;
  config.num_proxies = 1;
  config.clients_per_proxy = 1;
  config.replication = 3;
  config.initial_quorum = {2, 2};
  Cluster cluster(config);

  ObjectNamer namer;
  const ObjectId oid = namer.resolve("alice", "docs", "thesis.pdf");
  cluster.preload(0, 0);  // nothing
  // Drive a single named object through a write-then-read workload.
  std::vector<workload::TraceEntry> script = {
      {0, workload::Operation{oid, true, 2048}},
      {0, workload::Operation{oid, false, 0}},
  };
  cluster.set_workload(
      std::make_shared<workload::TraceSource>(script, /*loop=*/true));
  cluster.run_for(seconds(1));
  EXPECT_GT(cluster.metrics().total_writes(), 0u);
  EXPECT_GT(cluster.metrics().total_reads(), 0u);
  EXPECT_TRUE(cluster.checker().clean());
  // The object landed on its placement replicas under its hashed id.
  int holders = 0;
  for (std::uint32_t replica : cluster.placement().replicas(oid)) {
    holders += cluster.storage(replica).peek(oid) != nullptr;
  }
  EXPECT_GE(holders, 2);  // W=2
}

}  // namespace
}  // namespace qopt::kv
