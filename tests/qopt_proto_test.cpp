// qopt_proto's own test suite: the protocol-manifest parser, the wire-header
// struct/variant extractor, each conformance rule firing on a fixture tree
// with a known defect and staying silent on the clean one, justified
// suppressions, the delete-one-rule sweep proving every rule load-bearing,
// and the committed docs/PROTOCOL.toml matching the real tree. Fixture
// sources live in a `*_fixtures` directory so the tree-wide scans of the
// other analyzers never see them.
#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "qopt_proto/proto.hpp"

namespace {

using qopt::proto::Finding;
using qopt::proto::Manifest;
using qopt::proto::Options;
using qopt::proto::WireHeader;

/// The standard fixture manifest: one component consuming both messages.
/// `wire` and `node` select which fixture header/component files to scan.
std::string manifest_text(const std::string& wire, const std::string& node) {
  return "[wire]\n"
         "header = \"" + wire + ".hpp\"\n"
         "variant = \"Message\"\n"
         "alternatives = [\"PingMsg\", \"PongMsg\"]\n"
         "[components.node]\n"
         "path = \"" + node + "\"\n"
         "dispatch = \"on_message\"\n"
         "[messages.SpanContext]\n"
         "fields = [\"trace_id\"]\n"
         "[messages.PingMsg]\n"
         "from = \"node\"\n"
         "to = \"node\"\n"
         "handler = \"handle_ping\"\n"
         "fields = [\"seq\", \"epno\", \"span\", \"version\"]\n"
         "versioned = true\n"
         "span = true\n"
         "epoch = \"epno\"\n"
         "at_least_once = true\n"
         "dedup = \"seen_\"\n"
         "[messages.PongMsg]\n"
         "from = \"node\"\n"
         "to = \"node\"\n"
         "handler = \"handle_pong\"\n"
         "fields = [\"seq\"]\n";
}

Manifest fixture_manifest(const std::string& wire, const std::string& node) {
  Manifest m =
      qopt::proto::parse_manifest("fixture.toml", manifest_text(wire, node));
  EXPECT_TRUE(m.errors.empty());
  return m;
}

std::vector<Finding> analyze(const std::string& wire, const std::string& node,
                             const Options& options = {}) {
  return qopt::proto::analyze_tree(QOPT_PROTO_FIXTURE_DIR,
                                   fixture_manifest(wire, node), options);
}

std::map<std::string, int> count_by_rule(const std::vector<Finding>& fs) {
  std::map<std::string, int> counts;
  for (const Finding& f : fs) ++counts[f.rule];
  return counts;
}

bool has_rule(const std::vector<Finding>& fs, const std::string& rule) {
  return std::any_of(fs.begin(), fs.end(),
                     [&](const Finding& f) { return f.rule == rule; });
}

std::string describe(const std::vector<Finding>& fs) {
  std::string out;
  for (const Finding& f : fs) out += qopt::proto::format_finding(f) + "\n";
  return out;
}

// ------------------------------------------------------------- manifest

TEST(QoptProtoManifest, ParsesWireComponentsAndMessages) {
  const Manifest m = fixture_manifest("wire_clean", "node_clean");
  EXPECT_EQ(m.wire.header, "wire_clean.hpp");
  EXPECT_EQ(m.wire.variant, "Message");
  ASSERT_EQ(m.wire.alternatives.size(), 2u);
  EXPECT_EQ(m.wire.alternatives[0], "PingMsg");
  ASSERT_EQ(m.components.size(), 1u);
  EXPECT_EQ(m.components[0].name, "node");
  EXPECT_EQ(m.components[0].dispatch, "on_message");
  ASSERT_EQ(m.messages.size(), 3u);  // SpanContext helper + the two routed
  const auto& ping = m.messages[1];
  EXPECT_EQ(ping.name, "PingMsg");
  EXPECT_EQ(ping.handler, "handle_ping");
  ASSERT_EQ(ping.fields.size(), 4u);
  EXPECT_EQ(ping.fields[3], "version");
  EXPECT_TRUE(ping.versioned);
  EXPECT_TRUE(ping.span);
  EXPECT_TRUE(ping.at_least_once);
  EXPECT_EQ(ping.epoch, "epno");
  EXPECT_EQ(ping.dedup, "seen_");
  const auto& pong = m.messages[2];
  EXPECT_FALSE(pong.versioned);
  EXPECT_FALSE(pong.at_least_once);
  EXPECT_TRUE(pong.epoch.empty());
}

TEST(QoptProtoManifest, RejectsMalformedInput) {
  const auto errors_of = [](const std::string& text) {
    return qopt::proto::parse_manifest("t.toml", text).errors;
  };
  // Unknown section / unknown key / non-boolean flag.
  EXPECT_FALSE(errors_of("[quorums]\n").empty());
  EXPECT_FALSE(errors_of("[wire]\nheader = \"w.hpp\"\nvariant = \"M\"\n"
                         "bogus = \"x\"\n")
                   .empty());
  EXPECT_FALSE(errors_of("[wire]\nheader = \"w.hpp\"\nvariant = \"M\"\n"
                         "[messages.X]\nfields = [\"a\"]\nversioned = 7\n")
                   .empty());
  // `to` without `handler`, unknown routing target, missing fields.
  EXPECT_FALSE(errors_of("[wire]\nheader = \"w.hpp\"\nvariant = \"M\"\n"
                         "[messages.X]\nto = \"node\"\nfields = [\"a\"]\n")
                   .empty());
  EXPECT_FALSE(errors_of("[wire]\nheader = \"w.hpp\"\nvariant = \"M\"\n"
                         "[messages.X]\nto = \"ghost\"\n"
                         "handler = \"h\"\nfields = [\"a\"]\n")
                   .empty());
  EXPECT_FALSE(errors_of("[wire]\nheader = \"w.hpp\"\nvariant = \"M\"\n"
                         "[messages.X]\n")
                   .empty());
  // Duplicates and structural breakage.
  EXPECT_FALSE(errors_of("[wire]\nheader = \"w.hpp\"\nvariant = \"M\"\n"
                         "[messages.X]\nfields = [\"a\"]\n"
                         "[messages.X]\nfields = [\"a\"]\n")
                   .empty());
  EXPECT_FALSE(errors_of("[wire]\nalternatives = [\"A\",\n\"B\"\n").empty());
  EXPECT_FALSE(errors_of("[components.]\n").empty());
}

// ----------------------------------------------------------- wire parse

TEST(QoptProtoWire, ParsesStructsFieldsAndVariantOrder) {
  const std::string src =
      "struct SpanContext { unsigned long trace_id = 0; };\n"
      "struct PingMsg {\n"
      "  unsigned long seq = 0;\n"
      "  Timestamp ts{};\n"                      // brace-init member
      "  std::vector<Item> items;\n"             // template member
      "  static constexpr int kKind = 1;\n"      // skipped: static
      "  using Self = PingMsg;\n"                // skipped: using
      "  double ratio() const { return 0.0; }\n" // skipped: function
      "  unsigned version = 1;\n"
      "};\n"
      "using Message = std::variant<ns::PingMsg, SpanContext>;\n";
  const WireHeader h = qopt::proto::parse_wire_header(src, "Message");
  ASSERT_EQ(h.structs.size(), 2u);
  EXPECT_EQ(h.structs[0].name, "SpanContext");
  ASSERT_EQ(h.structs[0].fields.size(), 1u);
  EXPECT_EQ(h.structs[0].fields[0], "trace_id");
  const auto& ping = h.structs[1];
  EXPECT_EQ(ping.name, "PingMsg");
  ASSERT_EQ(ping.fields.size(), 4u) << describe({});
  EXPECT_EQ(ping.fields[0], "seq");
  EXPECT_EQ(ping.fields[1], "ts");
  EXPECT_EQ(ping.fields[2], "items");
  EXPECT_EQ(ping.fields[3], "version");
  // Qualifiers are dropped from variant alternatives; order is preserved.
  ASSERT_EQ(h.alternatives.size(), 2u);
  EXPECT_EQ(h.alternatives[0], "PingMsg");
  EXPECT_EQ(h.alternatives[1], "SpanContext");
  EXPECT_GT(h.variant_line, 0u);
}

// ---------------------------------------------------------------- rules

TEST(QoptProtoRules, CleanTreeIsSilent) {
  const auto findings = analyze("wire_clean", "node_clean");
  EXPECT_TRUE(findings.empty()) << describe(findings);
}

TEST(QoptProtoRules, ReorderedFieldsFailAppendOnly) {
  const auto findings = analyze("wire_reorder", "node_clean");
  ASSERT_EQ(findings.size(), 1u) << describe(findings);
  EXPECT_EQ(findings[0].rule, "append-only-evolution");
  EXPECT_EQ(findings[0].file, "wire_reorder.hpp");
}

TEST(QoptProtoRules, RemovedFieldFailsAppendOnly) {
  const auto findings = analyze("wire_removed", "node_clean");
  ASSERT_EQ(findings.size(), 1u) << describe(findings);
  EXPECT_EQ(findings[0].rule, "append-only-evolution");
  EXPECT_NE(findings[0].message.find("cannot be removed"),
            std::string::npos);
}

TEST(QoptProtoRules, UnrecordedAppendedFieldFailsAppendOnly) {
  const auto findings = analyze("wire_extra", "node_clean");
  ASSERT_EQ(findings.size(), 1u) << describe(findings);
  EXPECT_EQ(findings[0].rule, "append-only-evolution");
  EXPECT_NE(findings[0].message.find("unrecorded appended"),
            std::string::npos);
}

TEST(QoptProtoRules, DeletedStructIsReportedAgainstTheManifest) {
  const auto findings = analyze("wire_missing_struct", "node_clean");
  // The struct vanished, the variant lost its alternative, and the message
  // is now routed without being deliverable.
  const auto counts = count_by_rule(findings);
  EXPECT_EQ(counts.at("append-only-evolution"), 2) << describe(findings);
  EXPECT_EQ(counts.at("handler-exhaustive"), 1) << describe(findings);
}

TEST(QoptProtoRules, UnrecordedStructFailsAppendOnly) {
  const auto findings = analyze("wire_stray", "node_clean");
  // The stray struct itself, plus its absence from the routed-variant map.
  ASSERT_EQ(findings.size(), 1u) << describe(findings);
  EXPECT_EQ(findings[0].rule, "append-only-evolution");
  EXPECT_NE(findings[0].message.find("StrayMsg"), std::string::npos);
}

TEST(QoptProtoRules, VariantTagReorderFailsAppendOnly) {
  const auto findings = analyze("wire_variant_drift", "node_clean");
  ASSERT_EQ(findings.size(), 1u) << describe(findings);
  EXPECT_EQ(findings[0].rule, "append-only-evolution");
  EXPECT_NE(findings[0].message.find("tag order"), std::string::npos);
}

TEST(QoptProtoRules, FieldAppendedAfterVersionFails) {
  const auto findings = analyze("wire_version_tail", "node_clean");
  const auto counts = count_by_rule(findings);
  // Both the unrecorded append and the version-no-longer-last violation.
  EXPECT_EQ(counts.at("append-only-evolution"), 2) << describe(findings);
  EXPECT_EQ(counts.size(), 1u) << describe(findings);
}

TEST(QoptProtoRules, MissingEpochComparisonFailsEpochGuard) {
  const auto findings = analyze("wire_clean", "node_noguard");
  ASSERT_EQ(findings.size(), 1u) << describe(findings);
  EXPECT_EQ(findings[0].rule, "epoch-guard");
  EXPECT_EQ(findings[0].file, "node_noguard.cpp");
}

TEST(QoptProtoRules, MissingDedupConsultFailsDedupBeforeApply) {
  const auto findings = analyze("wire_clean", "node_nodedup");
  ASSERT_EQ(findings.size(), 1u) << describe(findings);
  EXPECT_EQ(findings[0].rule, "dedup-before-apply");
}

TEST(QoptProtoRules, AtLeastOnceWithoutDeclaredDedupIsAFinding) {
  // Same clean tree, but the manifest forgets the dedup key.
  std::string text = manifest_text("wire_clean", "node_clean");
  const std::size_t pos = text.find("dedup = \"seen_\"\n");
  ASSERT_NE(pos, std::string::npos);
  text.erase(pos, std::string("dedup = \"seen_\"\n").size());
  Manifest m = qopt::proto::parse_manifest("fixture.toml", text);
  ASSERT_TRUE(m.errors.empty()) << describe(m.errors);
  const auto findings =
      qopt::proto::analyze_tree(QOPT_PROTO_FIXTURE_DIR, m);
  ASSERT_EQ(findings.size(), 1u) << describe(findings);
  EXPECT_EQ(findings[0].rule, "dedup-before-apply");
  EXPECT_NE(findings[0].message.find("declares no"), std::string::npos);
}

TEST(QoptProtoRules, DroppedSpanFailsSpanPropagation) {
  const auto findings = analyze("wire_clean", "node_nospan");
  ASSERT_EQ(findings.size(), 1u) << describe(findings);
  EXPECT_EQ(findings[0].rule, "span-propagation");
  EXPECT_EQ(findings[0].file, "node_nospan.cpp");
}

TEST(QoptProtoRules, SpanCarryingMessageNeedsASpanField) {
  // wire_nospan_field's PingMsg has fields seq/epno/version only.
  std::string text = manifest_text("wire_nospan_field", "node_clean");
  const std::size_t pos =
      text.find("fields = [\"seq\", \"epno\", \"span\", \"version\"]");
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, std::string("fields = [\"seq\", \"epno\", \"span\", "
                                "\"version\"]")
                        .size(),
               "fields = [\"seq\", \"epno\", \"version\"]");
  Manifest m = qopt::proto::parse_manifest("fixture.toml", text);
  ASSERT_TRUE(m.errors.empty()) << describe(m.errors);
  const auto findings =
      qopt::proto::analyze_tree(QOPT_PROTO_FIXTURE_DIR, m);
  EXPECT_TRUE(has_rule(findings, "span-propagation")) << describe(findings);
  for (const Finding& f : findings) {
    if (f.rule == "span-propagation") {
      EXPECT_EQ(f.file, "wire_nospan_field.hpp");
      EXPECT_NE(f.message.find("no `span` field"), std::string::npos);
    }
  }
}

TEST(QoptProtoRules, MissingVersionComparisonFailsAppendOnly) {
  const auto findings = analyze("wire_clean", "node_noversion");
  ASSERT_EQ(findings.size(), 1u) << describe(findings);
  EXPECT_EQ(findings[0].rule, "append-only-evolution");
  EXPECT_NE(findings[0].message.find("future version"), std::string::npos);
}

TEST(QoptProtoRules, UnroutedAlternativeFailsHandlerExhaustive) {
  const auto findings = analyze("wire_clean", "node_unrouted");
  // The dispatch neither mentions PongMsg nor calls handle_pong.
  const auto counts = count_by_rule(findings);
  EXPECT_EQ(counts.at("handler-exhaustive"), 2) << describe(findings);
  EXPECT_EQ(counts.size(), 1u) << describe(findings);
}

TEST(QoptProtoRules, MissingHandlerBodyFailsHandlerExhaustive) {
  const auto findings = analyze("wire_clean", "node_nohandler");
  ASSERT_EQ(findings.size(), 1u) << describe(findings);
  EXPECT_EQ(findings[0].rule, "handler-exhaustive");
  EXPECT_NE(findings[0].message.find("no handler body"), std::string::npos);
}

TEST(QoptProtoRules, DispatchMayNotHandleATypeRoutedElsewhere) {
  // Two components; PongMsg routes to `other`, yet node_clean's dispatch
  // still handles it.
  const std::string text =
      "[wire]\n"
      "header = \"wire_clean.hpp\"\n"
      "variant = \"Message\"\n"
      "alternatives = [\"PingMsg\", \"PongMsg\"]\n"
      "[components.node]\n"
      "path = \"node_clean\"\n"
      "dispatch = \"on_message\"\n"
      "[components.other]\n"
      "path = \"node_other\"\n"
      "dispatch = \"on_message\"\n"
      "[messages.SpanContext]\n"
      "fields = [\"trace_id\"]\n"
      "[messages.PingMsg]\n"
      "from = \"node\"\n"
      "to = \"node\"\n"
      "handler = \"handle_ping\"\n"
      "fields = [\"seq\", \"epno\", \"span\", \"version\"]\n"
      "versioned = true\n"
      "span = true\n"
      "epoch = \"epno\"\n"
      "at_least_once = true\n"
      "dedup = \"seen_\"\n"
      "[messages.PongMsg]\n"
      "from = \"node\"\n"
      "to = \"other\"\n"
      "handler = \"handle_pong\"\n"
      "fields = [\"seq\"]\n";
  Manifest m = qopt::proto::parse_manifest("fixture.toml", text);
  ASSERT_TRUE(m.errors.empty()) << describe(m.errors);
  const auto findings =
      qopt::proto::analyze_tree(QOPT_PROTO_FIXTURE_DIR, m);
  ASSERT_EQ(findings.size(), 1u) << describe(findings);
  EXPECT_EQ(findings[0].rule, "handler-exhaustive");
  EXPECT_NE(findings[0].message.find("routes it to `other`"),
            std::string::npos);
}

// ---------------------------------------------------------- suppressions

TEST(QoptProtoSuppress, JustifiedAllowSilencesBareAllowDoesNot) {
  const auto findings = analyze("wire_clean", "node_suppress");
  // The justified epoch-guard allow removes that finding entirely; the
  // bare allow suppresses nothing and is itself reported.
  ASSERT_EQ(findings.size(), 1u) << describe(findings);
  EXPECT_EQ(findings[0].rule, "bare-allow");
  EXPECT_EQ(findings[0].file, "node_suppress.cpp");
}

TEST(QoptProtoSuppress, SuppressionsAreEnumerable) {
  const auto sups = qopt::proto::file_suppressions(
      std::string(QOPT_PROTO_FIXTURE_DIR) + "/node_suppress.cpp");
  ASSERT_EQ(sups.size(), 1u);
  EXPECT_EQ(sups[0].rule, "epoch-guard");
  EXPECT_FALSE(sups[0].justification.empty());
}

// ---------------------------------------------- delete-one-rule negative

TEST(QoptProtoRules, EveryRuleIsLoadBearing) {
  // Disabling any single rule makes its fixture findings vanish while the
  // other scenarios keep firing — proves no rule is dead weight.
  const std::vector<std::pair<std::string, std::string>> scenarios = {
      {"wire_reorder", "node_clean"},    // append-only-evolution
      {"wire_clean", "node_unrouted"},   // handler-exhaustive
      {"wire_clean", "node_noguard"},    // epoch-guard
      {"wire_clean", "node_nodedup"},    // dedup-before-apply
      {"wire_clean", "node_nospan"},     // span-propagation
  };
  for (const std::string& rule : qopt::proto::rule_names()) {
    int baseline_hits = 0;
    for (const auto& [wire, node] : scenarios) {
      const auto all = analyze(wire, node);
      const auto counts = count_by_rule(all);
      const auto it = counts.find(rule);
      const int hits = it == counts.end() ? 0 : it->second;
      baseline_hits += hits;

      Options without;
      without.disabled_rules.insert(rule);
      const auto rest = analyze(wire, node, without);
      EXPECT_EQ(count_by_rule(rest).count(rule), 0u)
          << rule << " still fires when disabled on " << wire << "/" << node;
      EXPECT_EQ(rest.size(), all.size() - static_cast<std::size_t>(hits))
          << "disabling " << rule << " changed other rules on " << wire
          << "/" << node;
    }
    EXPECT_GT(baseline_hits, 0) << "no scenario exercises rule " << rule;
  }
}

// ------------------------------------------------------------------- io

TEST(QoptProtoIo, MissingWireHeaderIsAnIoFinding) {
  Manifest m = qopt::proto::parse_manifest(
      "t.toml", manifest_text("wire_nonexistent", "node_clean"));
  ASSERT_TRUE(m.errors.empty());
  const auto findings =
      qopt::proto::analyze_tree(QOPT_PROTO_FIXTURE_DIR, m);
  ASSERT_EQ(findings.size(), 1u) << describe(findings);
  EXPECT_EQ(findings[0].rule, "io");
}

TEST(QoptProtoIo, MissingComponentSourcesAreAnIoFinding) {
  Manifest m = qopt::proto::parse_manifest(
      "t.toml", manifest_text("wire_clean", "node_nonexistent"));
  ASSERT_TRUE(m.errors.empty());
  const auto findings =
      qopt::proto::analyze_tree(QOPT_PROTO_FIXTURE_DIR, m);
  ASSERT_EQ(findings.size(), 1u) << describe(findings);
  EXPECT_EQ(findings[0].rule, "io");
}

// --------------------------------------------------- the real PROTOCOL

TEST(QoptProtoTree, CommittedManifestMatchesTheRealTree) {
  const std::string root = QOPT_SOURCE_ROOT;
  const Manifest m =
      qopt::proto::load_manifest(root + "/docs/PROTOCOL.toml");
  ASSERT_TRUE(m.errors.empty()) << describe(m.errors);
  EXPECT_GE(m.messages.size(), 19u);  // every wire.hpp struct is recorded
  EXPECT_GE(m.components.size(), 7u);
  const auto findings = qopt::proto::analyze_tree(root, m);
  EXPECT_TRUE(findings.empty()) << describe(findings);
}

TEST(QoptProtoTree, WireInventoryAndManifestInventoryAgree) {
  const std::string root = QOPT_SOURCE_ROOT;
  const Manifest m =
      qopt::proto::load_manifest(root + "/docs/PROTOCOL.toml");
  ASSERT_TRUE(m.errors.empty()) << describe(m.errors);
  std::string source;
  ASSERT_TRUE(
      qopt::analysis::read_file(root + "/" + m.wire.header, source));
  const WireHeader header = qopt::proto::parse_wire_header(
      qopt::analysis::strip_comments_and_literals(source), m.wire.variant);
  EXPECT_EQ(qopt::proto::dump_wire(header, m.wire.variant),
            qopt::proto::dump_manifest(m));
}

}  // namespace
