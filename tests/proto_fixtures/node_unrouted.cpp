// Fixture: the dispatch silently ignores PongMsg (the handler body exists
// but nothing routes to it).
#include <set>

#include "wire_clean.hpp"

struct Node {
  void on_message(const Message& msg);
  void handle_ping(const PingMsg& ping);
  void handle_pong(const PongMsg& pong);

  std::set<unsigned long> seen_;
  unsigned long epno_ = 0;
  unsigned long last_pong_ = 0;
  SpanContext last_span_;
};

void Node::on_message(const Message& msg) {
  if (const auto* ping = std::get_if<PingMsg>(&msg)) {
    handle_ping(*ping);
  }
}

void Node::handle_ping(const PingMsg& ping) {
  if (ping.version > 1) return;
  if (ping.epno < epno_) return;
  if (seen_.count(ping.seq) > 0) return;
  last_span_ = ping.span;
  seen_.insert(ping.seq);
}

void Node::handle_pong(const PongMsg& pong) { last_pong_ = pong.seq; }
