// Fixture: handle_ping applies without ever consulting the dedup set.
#include <set>

#include "wire_clean.hpp"

struct Node {
  void on_message(const Message& msg);
  void handle_ping(const PingMsg& ping);
  void handle_pong(const PongMsg& pong);

  std::set<unsigned long> applied_;
  unsigned long epno_ = 0;
  unsigned long last_pong_ = 0;
  SpanContext last_span_;
};

void Node::on_message(const Message& msg) {
  if (const auto* ping = std::get_if<PingMsg>(&msg)) {
    handle_ping(*ping);
    return;
  }
  if (const auto* pong = std::get_if<PongMsg>(&msg)) {
    handle_pong(*pong);
  }
}

void Node::handle_ping(const PingMsg& ping) {
  if (ping.version > 1) return;
  if (ping.epno < epno_) return;
  last_span_ = ping.span;
  applied_.insert(ping.seq);  // re-applies on every retransmit
}

void Node::handle_pong(const PongMsg& pong) { last_pong_ = pong.seq; }
