// Fixture: PingMsg is declared span-carrying but has no `span` field.
#pragma once

#include <variant>

struct SpanContext {
  unsigned long trace_id = 0;
};

struct PingMsg {
  unsigned long seq = 0;
  unsigned long epno = 0;
  unsigned version = 1;
};

struct PongMsg {
  unsigned long seq = 0;
};

using Message = std::variant<PingMsg, PongMsg>;
