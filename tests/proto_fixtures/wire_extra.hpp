// Fixture: PongMsg grew an appended field the manifest does not record.
#pragma once

#include <variant>

struct SpanContext {
  unsigned long trace_id = 0;
};

struct PingMsg {
  unsigned long seq = 0;
  unsigned long epno = 0;
  SpanContext span;
  unsigned version = 1;
};

struct PongMsg {
  unsigned long seq = 0;
  unsigned hops = 0;
};

using Message = std::variant<PingMsg, PongMsg>;
