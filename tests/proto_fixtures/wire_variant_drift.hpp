// Fixture: the variant's tag order was swapped relative to the manifest.
#pragma once

#include <variant>

struct SpanContext {
  unsigned long trace_id = 0;
};

struct PingMsg {
  unsigned long seq = 0;
  unsigned long epno = 0;
  SpanContext span;
  unsigned version = 1;
};

struct PongMsg {
  unsigned long seq = 0;
};

using Message = std::variant<PongMsg, PingMsg>;
