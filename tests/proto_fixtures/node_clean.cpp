// Fixture component: a fully conformant consumer of the fixture protocol.
#include "node_clean.hpp"

void Node::on_message(const Message& msg) {
  if (const auto* ping = std::get_if<PingMsg>(&msg)) {
    handle_ping(*ping);
    return;
  }
  if (const auto* pong = std::get_if<PongMsg>(&msg)) {
    handle_pong(*pong);
  }
}

void Node::handle_ping(const PingMsg& ping) {
  if (ping.version > 1) return;            // drop frames from the future
  if (ping.epno < epno_) return;           // epoch fence
  if (seen_.count(ping.seq) > 0) return;   // dedup before apply
  last_span_ = ping.span;                  // propagate the span
  seen_.insert(ping.seq);
}

void Node::handle_pong(const PongMsg& pong) { last_pong_ = pong.seq; }
