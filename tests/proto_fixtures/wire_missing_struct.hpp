// Fixture: the recorded PongMsg struct was deleted outright.
#pragma once

#include <variant>

struct SpanContext {
  unsigned long trace_id = 0;
};

struct PingMsg {
  unsigned long seq = 0;
  unsigned long epno = 0;
  SpanContext span;
  unsigned version = 1;
};

using Message = std::variant<PingMsg>;
