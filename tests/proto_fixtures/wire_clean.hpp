// Fixture wire header: the shape qopt_proto expects of src/kv/wire.hpp.
#pragma once

#include <variant>

struct SpanContext {
  unsigned long trace_id = 0;
};

struct PingMsg {
  unsigned long seq = 0;
  unsigned long epno = 0;
  SpanContext span;
  unsigned version = 1;
};

struct PongMsg {
  unsigned long seq = 0;

  static constexpr unsigned kKind = 2;  // skipped: not a wire field
  bool is_late() const { return false; }  // skipped: member function
};

using Message = std::variant<PingMsg, PongMsg>;
