// Fixture: a second component that consumes only PongMsg — used to prove a
// dispatch may not handle a type the manifest routes elsewhere.
#include "wire_clean.hpp"

struct Other {
  void on_message(const Message& msg);
  void handle_pong(const PongMsg& pong);

  unsigned long last_pong_ = 0;
};

void Other::on_message(const Message& msg) {
  if (const auto* pong = std::get_if<PongMsg>(&msg)) {
    handle_pong(*pong);
  }
}

void Other::handle_pong(const PongMsg& pong) { last_pong_ = pong.seq; }
