// Fixture: PingMsg's first two fields are swapped relative to the manifest.
#pragma once

#include <variant>

struct SpanContext {
  unsigned long trace_id = 0;
};

struct PingMsg {
  unsigned long epno = 0;
  unsigned long seq = 0;
  SpanContext span;
  unsigned version = 1;
};

struct PongMsg {
  unsigned long seq = 0;
};

using Message = std::variant<PingMsg, PongMsg>;
