// Fixture component header: declarations only — qopt_proto must find the
// handler *bodies* in the .cpp, not mistake these declarations for them.
#pragma once

#include <set>

#include "wire_clean.hpp"

struct Node {
  void on_message(const Message& msg);
  void handle_ping(const PingMsg& ping);
  void handle_pong(const PongMsg& pong);

  std::set<unsigned long> seen_;
  unsigned long epno_ = 0;
  unsigned long last_pong_ = 0;
  SpanContext last_span_;
};
