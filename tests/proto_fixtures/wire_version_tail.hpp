// Fixture: a field was appended *after* the version field of a versioned
// message — the version field must stay last.
#pragma once

#include <variant>

struct SpanContext {
  unsigned long trace_id = 0;
};

struct PingMsg {
  unsigned long seq = 0;
  unsigned long epno = 0;
  SpanContext span;
  unsigned version = 1;
  unsigned hops = 0;
};

struct PongMsg {
  unsigned long seq = 0;
};

using Message = std::variant<PingMsg, PongMsg>;
