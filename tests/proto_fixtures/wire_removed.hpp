// Fixture: PongMsg lost its recorded `seq` field.
#pragma once

#include <variant>

struct SpanContext {
  unsigned long trace_id = 0;
};

struct PingMsg {
  unsigned long seq = 0;
  unsigned long epno = 0;
  SpanContext span;
  unsigned version = 1;
};

struct PongMsg {};

using Message = std::variant<PingMsg, PongMsg>;
