// qopt_perf's own test suite: the hot-path manifest parser, hot-region
// scoping (whole-file and function-scoped), each rule firing on a fixture
// with a known violation and staying silent on clean code, justified
// suppressions, and the ratchet-baseline machinery. Fixtures use a
// `.fixture` extension (and live in a `*_fixtures` directory) so the
// tree-wide scans never see them.
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "qopt_perf/perf.hpp"

namespace {

using qopt::perf::Baseline;
using qopt::perf::Finding;
using qopt::perf::Manifest;
using qopt::perf::Options;

// Exercises both region shapes: a whole-file region (everything under
// `hot/` is hot) and a function-scoped one (only the named bodies under
// `funcs/` are).
constexpr const char* kTestManifest = R"toml(
[regions.hot_file]
path = "hot/"

[regions.hot_funcs]
path = "funcs/"
functions = ["on_event", "sweep"]

[messages]
types = ["PingMsg"]
)toml";

Manifest test_manifest() {
  Manifest m = qopt::perf::parse_manifest("test.toml", kTestManifest);
  EXPECT_TRUE(m.errors.empty());
  return m;
}

std::string fixture_path(const std::string& name) {
  return std::string(QOPT_PERF_FIXTURE_DIR) + "/" + name;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing fixture: " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

std::vector<Finding> analyze_fixture(const std::string& name,
                                     const std::string& rel_path,
                                     const Options& options = {}) {
  return qopt::perf::analyze_source(rel_path, slurp(fixture_path(name)),
                                    /*header_source=*/{}, test_manifest(),
                                    options);
}

std::map<std::string, int> count_by_rule(const std::vector<Finding>& fs) {
  std::map<std::string, int> counts;
  for (const Finding& f : fs) ++counts[f.rule];
  return counts;
}

bool has_finding(const std::vector<Finding>& fs, const std::string& rule,
                 std::size_t line) {
  return std::any_of(fs.begin(), fs.end(), [&](const Finding& f) {
    return f.rule == rule && f.line == line;
  });
}

std::string describe(const std::vector<Finding>& fs) {
  std::string out;
  for (const Finding& f : fs) out += qopt::perf::format_finding(f) + "\n";
  return out;
}

// ------------------------------------------------------------- manifest

TEST(QoptPerfManifest, ParsesRegionsFunctionsAndMessages) {
  const Manifest m = test_manifest();
  ASSERT_EQ(m.regions.size(), 2u);
  EXPECT_EQ(m.regions[0].name, "hot_file");
  EXPECT_EQ(m.regions[0].path, "hot/");
  EXPECT_TRUE(m.regions[0].functions.empty());
  EXPECT_EQ(m.regions[1].name, "hot_funcs");
  ASSERT_EQ(m.regions[1].functions.size(), 2u);
  EXPECT_EQ(m.regions[1].functions[0], "on_event");
  ASSERT_EQ(m.message_types.size(), 1u);
  EXPECT_EQ(m.message_types[0], "PingMsg");
}

TEST(QoptPerfManifest, RejectsMalformedInput) {
  const Manifest no_path =
      qopt::perf::parse_manifest("t.toml", "[regions.broken]\n");
  ASSERT_EQ(no_path.errors.size(), 1u);
  EXPECT_EQ(no_path.errors[0].rule, "manifest");

  const Manifest bad_key = qopt::perf::parse_manifest(
      "t.toml", "[messages]\nbogus = [\"X\"]\n");
  ASSERT_EQ(bad_key.errors.size(), 1u);

  const Manifest bad_section =
      qopt::perf::parse_manifest("t.toml", "[quorums]\n");
  ASSERT_EQ(bad_section.errors.size(), 1u);

  const Manifest open_array = qopt::perf::parse_manifest(
      "t.toml", "[messages]\ntypes = [\"A\",\n\"B\"\n");
  ASSERT_FALSE(open_array.errors.empty());
}

TEST(QoptPerfManifest, RepoHotPathManifestIsValidAndPointsAtRealFiles) {
  namespace fs = std::filesystem;
  const std::string root = QOPT_SOURCE_ROOT;
  const Manifest m =
      qopt::perf::load_manifest(root + "/docs/HOT_PATHS.toml");
  EXPECT_TRUE(m.errors.empty()) << describe(m.errors);
  EXPECT_FALSE(m.regions.empty());
  EXPECT_FALSE(m.message_types.empty());
  for (const auto& region : m.regions) {
    const std::string base = root + "/" + region.path;
    const bool exists = fs::exists(base) || fs::exists(base + ".hpp") ||
                        fs::exists(base + ".cpp") || fs::exists(base + ".h");
    EXPECT_TRUE(exists) << "region `" << region.name
                        << "` names a missing path: " << region.path;
  }
}

// ------------------------------------------------------- region scoping

TEST(QoptPerfRegions, WholeFileRegionMarksEveryLineHot) {
  const Manifest m = test_manifest();
  const std::string stripped = "int a;\nint b;\nint c;\n";
  const auto hot = qopt::perf::hot_lines("hot/x.cpp", stripped, m);
  for (std::size_t l = 1; l <= 3; ++l) EXPECT_TRUE(hot[l]) << l;
  const auto cold = qopt::perf::hot_lines("cold/x.cpp", stripped, m);
  for (std::size_t l = 1; l <= 3; ++l) EXPECT_FALSE(cold[l]) << l;
}

TEST(QoptPerfRegions, ColdPathSilencesEveryHotGatedRule) {
  const auto findings = analyze_fixture("heap_alloc.fixture",
                                        "cold/heap_alloc.cpp");
  EXPECT_TRUE(findings.empty()) << describe(findings);
}

// ---------------------------------------------------------------- rules

TEST(QoptPerfRules, HeapAllocFixtureFlagsEveryAllocation) {
  const auto findings =
      analyze_fixture("heap_alloc.fixture", "hot/heap_alloc.cpp");
  const auto counts = count_by_rule(findings);
  // new, make_unique, make_shared, std::function, std::to_string, and the
  // string concatenation — one per line.
  EXPECT_EQ(counts.at("heap-alloc-hot"), 6) << describe(findings);
  EXPECT_EQ(counts.size(), 1u) << describe(findings);
  for (std::size_t line = 8; line <= 13; ++line) {
    EXPECT_TRUE(has_finding(findings, "heap-alloc-hot", line)) << line;
  }
}

TEST(QoptPerfRules, CleanFixtureIsSilent) {
  const auto findings = analyze_fixture("clean.fixture", "hot/clean.cpp");
  EXPECT_TRUE(findings.empty()) << describe(findings);
}

TEST(QoptPerfRules, MapChurnFixtureFlagsChurnAndLocalConstruction) {
  const auto findings =
      analyze_fixture("map_churn.fixture", "hot/map_churn.cpp");
  const auto counts = count_by_rule(findings);
  // operator[], insert, erase, the local std::set construction, and the
  // churn on that local.
  EXPECT_EQ(counts.at("map-churn-hot"), 5) << describe(findings);
  EXPECT_EQ(counts.size(), 1u) << describe(findings);
  EXPECT_TRUE(has_finding(findings, "map-churn-hot", 11));  // stats_[key]
  EXPECT_TRUE(has_finding(findings, "map-churn-hot", 14));  // local set
}

TEST(QoptPerfRules, MapChurnGoodFixtureIsSilent) {
  const auto findings =
      analyze_fixture("map_churn_good.fixture", "hot/map_churn_good.cpp");
  EXPECT_TRUE(findings.empty()) << describe(findings);
}

TEST(QoptPerfRules, VectorGrowthOnlyInHotFunctionsWithoutReserve) {
  const auto findings =
      analyze_fixture("vector_growth.fixture", "funcs/vector_growth.cpp");
  // on_event's push_back fires; cold_helper is outside the named hot
  // functions and sweep reserves first.
  ASSERT_EQ(findings.size(), 1u) << describe(findings);
  EXPECT_EQ(findings[0].rule, "vector-growth-hot");
  EXPECT_EQ(findings[0].line, 9u);
}

TEST(QoptPerfRules, ByvalMessageFiresTreeWideOutsideHotRegions) {
  const auto findings =
      analyze_fixture("byval_message.fixture", "lib/wire.hpp");
  const auto counts = count_by_rule(findings);
  EXPECT_EQ(counts.at("byval-message"), 2) << describe(findings);
  EXPECT_EQ(counts.size(), 1u) << describe(findings);
  EXPECT_TRUE(has_finding(findings, "byval-message", 7));   // PingMsg msg
  EXPECT_TRUE(has_finding(findings, "byval-message", 11));  // PingMsg copy
}

TEST(QoptPerfRules, RegexAndThrowFlaggedInHotRegion) {
  const auto findings =
      analyze_fixture("regex_throw.fixture", "hot/regex_throw.cpp");
  const auto counts = count_by_rule(findings);
  EXPECT_EQ(counts.at("regex-hot"), 2) << describe(findings);
  EXPECT_EQ(counts.at("throw-hot"), 1) << describe(findings);
  EXPECT_EQ(counts.size(), 2u) << describe(findings);
}

// ---------------------------------------------------------- suppressions

TEST(QoptPerfSuppress, JustifiedAllowSilencesBareAllowDoesNot) {
  const auto findings =
      analyze_fixture("suppress.fixture", "hot/suppress.cpp");
  const auto counts = count_by_rule(findings);
  // hot_setup's justified allow removes its violation entirely; hot_bare's
  // bare allow is itself a finding and suppresses nothing.
  EXPECT_EQ(counts.at("bare-allow"), 1) << describe(findings);
  EXPECT_EQ(counts.at("heap-alloc-hot"), 1) << describe(findings);
  EXPECT_TRUE(has_finding(findings, "bare-allow", 12));
  EXPECT_TRUE(has_finding(findings, "heap-alloc-hot", 13));
}

TEST(QoptPerfSuppress, AllowForOneRuleDoesNotSuppressAnother) {
  const std::string src =
      "// qopt-perf: allow(throw-hot) wrong rule for this line\n"
      "auto p = std::make_unique<int>(1);\n";
  const auto findings = qopt::perf::analyze_source(
      "hot/x.cpp", src, /*header_source=*/{}, test_manifest());
  ASSERT_EQ(findings.size(), 1u) << describe(findings);
  EXPECT_EQ(findings[0].rule, "heap-alloc-hot");
}

// ---------------------------------------------- delete-one-rule negative

TEST(QoptPerfRules, EveryRuleIsLoadBearing) {
  // Disabling any single rule makes its fixture findings vanish while the
  // other rules keep firing — proves no rule is dead weight and no finding
  // is double-reported by two rules.
  const std::vector<std::pair<std::string, std::string>> fixture_for = {
      {"heap_alloc.fixture", "hot/heap_alloc.cpp"},
      {"map_churn.fixture", "hot/map_churn.cpp"},
      {"vector_growth.fixture", "funcs/vector_growth.cpp"},
      {"byval_message.fixture", "lib/wire.hpp"},
      {"regex_throw.fixture", "hot/regex_throw.cpp"},
  };
  for (const std::string& rule : qopt::perf::rule_names()) {
    int baseline_hits = 0;
    for (const auto& [fixture, rel] : fixture_for) {
      const auto all = analyze_fixture(fixture, rel);
      const auto counts = count_by_rule(all);
      const auto it = counts.find(rule);
      const int hits = it == counts.end() ? 0 : it->second;
      baseline_hits += hits;

      Options without;
      without.disabled_rules.insert(rule);
      const auto rest = analyze_fixture(fixture, rel, without);
      EXPECT_EQ(count_by_rule(rest).count(rule), 0u)
          << rule << " still fires when disabled in " << fixture;
      EXPECT_EQ(rest.size(), all.size() - static_cast<std::size_t>(hits))
          << "disabling " << rule << " changed other rules in " << fixture;
    }
    EXPECT_GT(baseline_hits, 0) << "no fixture exercises rule " << rule;
  }
}

// -------------------------------------------------------------- ratchet

TEST(QoptPerfRatchet, BaselineParsesCountsAndRejectsBadLines) {
  const Baseline b = qopt::perf::parse_baseline(
      "b.txt",
      "# comment\n"
      "heap-alloc-hot 7\n"
      "map-churn-hot 11\n");
  EXPECT_TRUE(b.errors.empty()) << describe(b.errors);
  EXPECT_EQ(b.counts.at("heap-alloc-hot"), 7);
  EXPECT_EQ(b.counts.at("map-churn-hot"), 11);

  const Baseline junk = qopt::perf::parse_baseline(
      "b.txt", "heap-alloc-hot\nmap-churn-hot many\n");
  EXPECT_EQ(junk.errors.size(), 2u);
}

TEST(QoptPerfRatchet, UnbaselinableRulesMayNotAppearInABaseline) {
  for (const char* rule : {"manifest", "io", "bare-allow", "baseline"}) {
    EXPECT_FALSE(qopt::perf::baselinable(rule)) << rule;
    const Baseline b = qopt::perf::parse_baseline(
        "b.txt", std::string(rule) + " 1\n");
    EXPECT_EQ(b.errors.size(), 1u) << rule;
  }
  EXPECT_TRUE(qopt::perf::baselinable("heap-alloc-hot"));
}

TEST(QoptPerfRatchet, CountAboveBaselineFailsAtOrBelowPasses) {
  Baseline baseline;
  baseline.counts["heap-alloc-hot"] = 3;

  // Up: regression.
  EXPECT_FALSE(
      qopt::perf::ratchet_failures({{"heap-alloc-hot", 4}}, baseline)
          .empty());
  // A rule with no baseline entry counts against an allowance of zero.
  EXPECT_FALSE(
      qopt::perf::ratchet_failures({{"throw-hot", 1}}, baseline).empty());
  // An unbaselinable rule fails even at count 1.
  EXPECT_FALSE(
      qopt::perf::ratchet_failures({{"bare-allow", 1}}, baseline).empty());

  // At: pass, no improvement to report.
  EXPECT_TRUE(
      qopt::perf::ratchet_failures({{"heap-alloc-hot", 3}}, baseline)
          .empty());
  EXPECT_TRUE(
      qopt::perf::ratchet_improvements({{"heap-alloc-hot", 3}}, baseline)
          .empty());

  // Down: pass, and the drop is reported for --update-baseline.
  EXPECT_TRUE(
      qopt::perf::ratchet_failures({{"heap-alloc-hot", 2}}, baseline)
          .empty());
  EXPECT_EQ(
      qopt::perf::ratchet_improvements({{"heap-alloc-hot", 2}}, baseline)
          .size(),
      1u);
}

TEST(QoptPerfRatchet, FormatBaselineRoundTripsAndDropsNoise) {
  const std::map<std::string, int> counts = {{"heap-alloc-hot", 2},
                                             {"map-churn-hot", 0},
                                             {"bare-allow", 3}};
  const std::string text = qopt::perf::format_baseline(counts);
  const Baseline reparsed = qopt::perf::parse_baseline("b.txt", text);
  EXPECT_TRUE(reparsed.errors.empty()) << describe(reparsed.errors);
  // Zero-count and unbaselinable rules are omitted from the file.
  EXPECT_EQ(reparsed.counts.size(), 1u);
  EXPECT_EQ(reparsed.counts.at("heap-alloc-hot"), 2);
}

TEST(QoptPerfRatchet, CommittedBaselineMatchesTheTreeScanShape) {
  const Baseline b = qopt::perf::load_baseline(
      std::string(QOPT_SOURCE_ROOT) + "/tools/qopt_perf/baseline.txt");
  EXPECT_TRUE(b.errors.empty()) << describe(b.errors);
  for (const auto& [rule, count] : b.counts) {
    EXPECT_TRUE(qopt::perf::baselinable(rule)) << rule;
    EXPECT_GT(count, 0) << rule;
  }
}

// ------------------------------------------------------------------- io

TEST(QoptPerfIo, MissingFileIsAnIoFinding) {
  const auto findings = qopt::perf::analyze_file(
      "/nonexistent-root", "nope.cpp", test_manifest());
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "io");
}

}  // namespace
