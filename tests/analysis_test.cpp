// tools/analysis shared-framework tests: the tokenizer (comment/literal
// stripping), the file walker, and the justified-suppression grammar that
// qopt_lint and qopt_arch both build on. The tokenizer cases pin the
// behaviour qopt_lint relied on before the refactor, plus the digit-
// separator handling qopt_arch's symbol map depends on.
#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/source.hpp"
#include "analysis/suppress.hpp"

namespace {

using qopt::analysis::scan_annotations;
using qopt::analysis::split_lines;
using qopt::analysis::strip_comments_and_literals;

// ------------------------------------------------------------ tokenizer

TEST(AnalysisTest, StripBlanksCommentsAndLiteralBodies) {
  const std::string src =
      "int a = 1; // trailing rand()\n"
      "/* block time(nullptr) */ int b = 2;\n"
      "const char* s = \"system_clock in prose\";\n";
  const std::string out = strip_comments_and_literals(src);
  ASSERT_EQ(out.size(), src.size());  // offsets are preserved
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 3);
  EXPECT_EQ(out.find("rand"), std::string::npos);
  EXPECT_EQ(out.find("time"), std::string::npos);
  EXPECT_EQ(out.find("system_clock"), std::string::npos);
  EXPECT_NE(out.find("int a = 1;"), std::string::npos);
  EXPECT_NE(out.find("int b = 2;"), std::string::npos);
  // The string's delimiters survive, its body does not.
  EXPECT_NE(out.find("const char* s = \""), std::string::npos);
}

TEST(AnalysisTest, StripHandlesEscapesRawStringsAndCharLiterals) {
  const std::string src =
      "const char* a = \"esc \\\" quote\"; int x = 1;\n"
      "const char* r = R\"(raw \" contents)\"; int y = 2;\n"
      "char c = '\\''; int z = 3;\n";
  const std::string out = strip_comments_and_literals(src);
  EXPECT_NE(out.find("int x = 1;"), std::string::npos) << out;
  EXPECT_NE(out.find("int y = 2;"), std::string::npos) << out;
  EXPECT_NE(out.find("int z = 3;"), std::string::npos) << out;
  EXPECT_EQ(out.find("raw"), std::string::npos);
}

TEST(AnalysisTest, StripHandlesCustomDelimiterRawStrings) {
  const std::string src =
      "const char* p = R\"re(match )\" rand( here)re\"; int x = 1;\n"
      "const char* q = u8R\"_x(multi\nline \"quoted\")_x\"; int y = 2;\n"
      "const char* s = LR\"(plain)\"; int z = 3;\n";
  const std::string out = strip_comments_and_literals(src);
  ASSERT_EQ(out.size(), src.size());  // offsets are preserved
  EXPECT_NE(out.find("int x = 1;"), std::string::npos) << out;
  EXPECT_NE(out.find("int y = 2;"), std::string::npos) << out;
  EXPECT_NE(out.find("int z = 3;"), std::string::npos) << out;
  EXPECT_EQ(out.find("rand"), std::string::npos) << out;
  EXPECT_EQ(out.find("match"), std::string::npos) << out;
  EXPECT_EQ(out.find("quoted"), std::string::npos) << out;
}

TEST(AnalysisTest, RawStringLookAlikesDoNotSwallowTheFile) {
  // Regression: a `"` preceded by `R` used to trigger an unbounded search
  // for '(' — `R"abc";` (no d-char '(' at all) or `FOOR"str"` (identifier
  // ending in R before a plain string) latched onto a later unrelated
  // paren, built a garbage delimiter, and blanked the rest of the file,
  // silently disabling every token rule downstream.
  {
    const std::string src =
        "const char* a = FOOR\"str\"; g(rand());\n"
        "int tail = 1;\n";
    const std::string out = strip_comments_and_literals(src);
    ASSERT_EQ(out.size(), src.size());
    EXPECT_NE(out.find("rand"), std::string::npos) << out;
    EXPECT_NE(out.find("int tail = 1;"), std::string::npos) << out;
    EXPECT_EQ(out.find("str"), std::string::npos) << out;
  }
  {
    // No '(' within the 16-char delimiter window: not a raw string.
    const std::string src =
        "const char* a = R\"abc\"; use(rand());\n"
        "int tail = 2;\n";
    const std::string out = strip_comments_and_literals(src);
    ASSERT_EQ(out.size(), src.size());
    EXPECT_NE(out.find("rand"), std::string::npos) << out;
    EXPECT_NE(out.find("int tail = 2;"), std::string::npos) << out;
  }
  {
    // Delimiter containing a space is ill-formed; treat as a plain string
    // rather than scanning forward for a ')… "' that will never match.
    const std::string src =
        "const char* a = R\"no delim(x)\"; use(rand());\n"
        "int tail = 3;\n";
    const std::string out = strip_comments_and_literals(src);
    ASSERT_EQ(out.size(), src.size());
    EXPECT_NE(out.find("int tail = 3;"), std::string::npos) << out;
  }
}

TEST(AnalysisTest, AdjacentRawStringsStripIndependently) {
  const std::string src =
      "f(R\"(one)\", R\"(two)\"); int mid = 4;\n";
  const std::string out = strip_comments_and_literals(src);
  ASSERT_EQ(out.size(), src.size());
  EXPECT_EQ(out.find("one"), std::string::npos) << out;
  EXPECT_EQ(out.find("two"), std::string::npos) << out;
  EXPECT_NE(out.find("int mid = 4;"), std::string::npos) << out;
}

TEST(AnalysisTest, DigitSeparatorIsNotACharLiteral) {
  // Regression: `8'000` once opened a char-literal state that swallowed
  // everything to the next apostrophe, hiding entire files from the
  // symbol map.
  const std::string src =
      "constexpr int kOps = 8'000;\n"
      "Cluster cluster(config);\n";
  const std::string out = strip_comments_and_literals(src);
  EXPECT_NE(out.find("Cluster cluster(config);"), std::string::npos) << out;
}

TEST(AnalysisTest, LineContinuationExtendsLineComment) {
  // Phase-2 line splicing runs before comment recognition, so a backslash
  // immediately before the newline keeps the next *physical* line inside
  // the `//` comment. The tokenizer used to drop back to code state at the
  // newline, letting commented-out text like this reach the token rules.
  const std::string src =
      "int a = 1; // disabled: \\\n"
      "rand(); system_clock x;\n"
      "int b = 2;\n";
  const std::string out = strip_comments_and_literals(src);
  ASSERT_EQ(out.size(), src.size());  // offsets are preserved
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 3);
  EXPECT_EQ(out.find("rand"), std::string::npos) << out;
  EXPECT_EQ(out.find("system_clock"), std::string::npos) << out;
  EXPECT_NE(out.find("int a = 1;"), std::string::npos) << out;
  EXPECT_NE(out.find("int b = 2;"), std::string::npos) << out;
}

TEST(AnalysisTest, ChainedLineContinuationsStayInComment) {
  const std::string src =
      "// one \\\n"
      "two \\\n"
      "three rand()\n"
      "int live = 1;\n";
  const std::string out = strip_comments_and_literals(src);
  ASSERT_EQ(out.size(), src.size());
  EXPECT_EQ(out.find("rand"), std::string::npos) << out;
  EXPECT_EQ(out.find("three"), std::string::npos) << out;
  EXPECT_NE(out.find("int live = 1;"), std::string::npos) << out;
}

TEST(AnalysisTest, BackslashInsideCommentBodyIsNotASplice) {
  // Only a backslash *immediately before* the newline splices; a backslash
  // mid-comment (e.g. a Windows path) must not extend the comment.
  const std::string src =
      "// path C:\\temp ends here\n"
      "int live = 2;\n";
  const std::string out = strip_comments_and_literals(src);
  ASSERT_EQ(out.size(), src.size());
  EXPECT_NE(out.find("int live = 2;"), std::string::npos) << out;
}

TEST(AnalysisTest, AdjacentStringLiteralsStripIndependently) {
  // Adjacent string-literal concatenation: each literal opens and closes
  // its own string state; the code between and after must survive.
  const std::string src =
      "const char* m = \"one rand()\" \" two time()\"; int x = 5;\n"
      "f(\"a\"\n"
      "  \"b\", rand());\n";
  const std::string out = strip_comments_and_literals(src);
  ASSERT_EQ(out.size(), src.size());
  EXPECT_EQ(out.find("one"), std::string::npos) << out;
  EXPECT_EQ(out.find("two"), std::string::npos) << out;
  EXPECT_EQ(out.find("time"), std::string::npos) << out;
  EXPECT_NE(out.find("int x = 5;"), std::string::npos) << out;
  // The second literal's body is blanked but the call's rand() is live.
  EXPECT_NE(out.find("rand()"), std::string::npos) << out;
}

TEST(AnalysisTest, SplitLinesAndLineOfOffsetAgree) {
  const std::string text = "one\ntwo\nthree";
  const auto lines = split_lines(text);
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[0], "one");
  EXPECT_EQ(lines[2], "three");
  EXPECT_EQ(qopt::analysis::line_of_offset(text, 0), 1u);
  EXPECT_EQ(qopt::analysis::line_of_offset(text, 4), 2u);
  EXPECT_EQ(qopt::analysis::line_of_offset(text, text.size() - 1), 3u);
}

// ---------------------------------------------------------- file walker

TEST(AnalysisTest, WalkerSkipsFixtureDirectories) {
  // tests/arch_fixtures holds deliberately-broken .hpp/.cpp files; the
  // `*_fixtures` skip is what keeps them out of the tree-wide scans.
  const auto files =
      qopt::analysis::collect_sources({std::string(QOPT_SOURCE_ROOT) +
                                       "/tests"});
  EXPECT_FALSE(files.empty());
  for (const std::string& f : files) {
    EXPECT_EQ(f.find("_fixtures"), std::string::npos) << f;
  }
}

// --------------------------------------------------------- suppressions

TEST(AnalysisTest, JustifiedAllowRecordsSuppressionForTwoLines) {
  const auto ann = scan_annotations(
      "qopt-arch", "f.cpp",
      split_lines("// qopt-arch: allow(unused-include) vendor umbrella\n"
                  "#include \"a/b.hpp\"\n"));
  EXPECT_TRUE(ann.findings.empty());
  EXPECT_TRUE(qopt::analysis::allowed(ann, 1, "unused-include"));
  EXPECT_TRUE(qopt::analysis::allowed(ann, 2, "unused-include"));
  EXPECT_FALSE(qopt::analysis::allowed(ann, 3, "unused-include"));
  EXPECT_FALSE(qopt::analysis::allowed(ann, 2, "missing-include"));
  ASSERT_EQ(ann.suppressions.size(), 1u);
  EXPECT_EQ(qopt::analysis::format_suppression(ann.suppressions[0]),
            "qopt-arch:unused-include:f.cpp:1: vendor umbrella");
}

TEST(AnalysisTest, BareAllowIsAFindingNotASuppression) {
  const auto ann = scan_annotations(
      "qopt-lint", "f.cpp", split_lines("// qopt-lint: allow(wall-clock)\n"));
  ASSERT_EQ(ann.findings.size(), 1u);
  EXPECT_EQ(ann.findings[0].rule, "bare-allow");
  EXPECT_TRUE(ann.suppressions.empty());
  EXPECT_FALSE(qopt::analysis::allowed(ann, 1, "wall-clock"));
}

TEST(AnalysisTest, ToolTagsDoNotCrossTalk) {
  const auto ann = scan_annotations(
      "qopt-arch", "f.cpp",
      split_lines("// qopt-lint: allow(wall-clock) replay tooling\n"));
  EXPECT_TRUE(ann.allows.empty());
  EXPECT_TRUE(ann.findings.empty());
  EXPECT_TRUE(ann.suppressions.empty());
}

TEST(AnalysisTest, QuorumAnnotationReportsInUnifiedFormat) {
  const auto ann = scan_annotations(
      "qopt-lint", "f.cpp",
      split_lines("// qopt-lint: quorum(n=5)\n"
                  "kv::QuorumConfig q{3, 3};\n"));
  ASSERT_EQ(ann.suppressions.size(), 1u);
  EXPECT_EQ(qopt::analysis::format_suppression(ann.suppressions[0]),
            "qopt-lint:quorum:f.cpp:1: n=5");
  EXPECT_EQ(ann.quorum_n.at(1), 5);
  EXPECT_EQ(ann.quorum_n.at(2), 5);
}

}  // namespace
