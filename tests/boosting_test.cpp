#include <gtest/gtest.h>

#include <vector>

#include "ml/boosting.hpp"
#include "ml/cross_validation.hpp"
#include "ml/dataset.hpp"
#include "ml/decision_tree.hpp"
#include "util/rng.hpp"

namespace qopt::ml {
namespace {

Dataset noisy_bands(std::uint64_t seed, double noise) {
  // Class = band of x in [0,1), with `noise` fraction of labels flipped to
  // a neighbouring band.
  Dataset data({"x", "y"});
  Rng rng(seed);
  for (int i = 0; i < 800; ++i) {
    const double x = rng.next_double();
    const double y = rng.next_double();
    int label = static_cast<int>(x * 4.0);
    if (rng.chance(noise)) label = std::min(3, label + 1);
    data.add_row({x, y}, label);
  }
  return data;
}

TEST(BoostingTest, TrainsAndPredicts) {
  const Dataset data = noisy_bands(1, 0.0);
  BoostedTrees ensemble;
  ensemble.train(data);
  EXPECT_TRUE(ensemble.trained());
  const std::vector<double> low{0.1, 0.5};
  const std::vector<double> high{0.9, 0.5};
  EXPECT_EQ(ensemble.predict(low), 0);
  EXPECT_EQ(ensemble.predict(high), 3);
}

TEST(BoostingTest, EmptyDatasetThrows) {
  BoostedTrees ensemble;
  EXPECT_THROW(ensemble.train(Dataset({"x"})), std::invalid_argument);
  const std::vector<double> row{0.0};
  EXPECT_THROW(ensemble.predict(row), std::logic_error);
}

TEST(BoostingTest, PerfectSeparableStopsEarly) {
  // A clean dataset is learned by the first tree; AdaBoost stops instead of
  // burning the remaining rounds.
  Dataset data({"x"});
  for (int i = 0; i < 100; ++i) {
    data.add_row({static_cast<double>(i)}, i < 50 ? 0 : 1);
  }
  BoostParams params;
  params.rounds = 20;
  BoostedTrees ensemble;
  ensemble.train(data, params);
  EXPECT_LE(ensemble.rounds_used(), 2u);
}

TEST(BoostingTest, UsesMultipleRoundsOnNoisyData) {
  const Dataset data = noisy_bands(2, 0.2);
  BoostParams params;
  params.rounds = 8;
  BoostedTrees ensemble;
  ensemble.train(data, params);
  EXPECT_GT(ensemble.rounds_used(), 1u);
}

TEST(BoostingTest, VotesSumMatchesPrediction) {
  const Dataset data = noisy_bands(3, 0.1);
  BoostedTrees ensemble;
  ensemble.train(data);
  const std::vector<double> probe{0.6, 0.2};
  const std::vector<double> votes = ensemble.predict_votes(probe);
  int argmax = 0;
  for (std::size_t c = 1; c < votes.size(); ++c) {
    if (votes[c] > votes[static_cast<std::size_t>(argmax)]) {
      argmax = static_cast<int>(c);
    }
  }
  EXPECT_EQ(ensemble.predict(probe), argmax);
}

TEST(BoostingTest, DeterministicForSameSeed) {
  const Dataset data = noisy_bands(4, 0.15);
  BoostParams params;
  params.seed = 99;
  BoostedTrees a;
  BoostedTrees b;
  a.train(data, params);
  b.train(data, params);
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    const std::vector<double> row{rng.next_double(), rng.next_double()};
    EXPECT_EQ(a.predict(row), b.predict(row));
  }
}

TEST(BoostingTest, CrossValidationNotWorseThanSingleTreeOnNoise) {
  const Dataset data = noisy_bands(6, 0.25);
  TreeParams tree_params;
  const CvResult single =
      cross_validate_model<DecisionTree>(data, 5, tree_params, 7);
  BoostParams boost_params;
  boost_params.rounds = 10;
  const CvResult boosted =
      cross_validate_model<BoostedTrees>(data, 5, boost_params, 7);
  // Boosting must be at least competitive (within a small margin) and
  // usually better on noisy multi-class data.
  EXPECT_GE(boosted.accuracy() + 0.03, single.accuracy());
}

TEST(BoostingTest, GenericCvMatchesDedicatedCvForTrees) {
  const Dataset data = noisy_bands(8, 0.1);
  TreeParams params;
  const CvResult dedicated = cross_validate(data, 5, params, 11);
  const CvResult generic =
      cross_validate_model<DecisionTree>(data, 5, params, 11);
  EXPECT_EQ(dedicated.correct, generic.correct);
  EXPECT_EQ(dedicated.total, generic.total);
}

// ------------------------------------------------------- tree persistence

TEST(TreeSerializationTest, RoundTripsExactly) {
  const Dataset data = noisy_bands(9, 0.1);
  DecisionTree tree;
  tree.train(data);
  const std::string blob = tree.serialize();
  const DecisionTree restored = DecisionTree::deserialize(blob);
  Rng rng(10);
  for (int i = 0; i < 500; ++i) {
    const std::vector<double> row{rng.next_double(), rng.next_double()};
    EXPECT_EQ(tree.predict(row), restored.predict(row));
  }
  EXPECT_EQ(tree.node_count(), restored.node_count());
}

TEST(TreeSerializationTest, RejectsGarbage) {
  EXPECT_THROW(DecisionTree::deserialize("not a model"),
               std::invalid_argument);
  EXPECT_THROW(DecisionTree::deserialize("qopt-dtree 2 2 0 1\n"),
               std::invalid_argument);
  EXPECT_THROW(DecisionTree::deserialize("qopt-dtree 1 2 5 1\n-1 0 -1 -1 0 0\n"),
               std::invalid_argument);  // root out of range
}

TEST(TreeSerializationTest, TruncatedInputThrows) {
  const Dataset data = noisy_bands(11, 0.0);
  DecisionTree tree;
  tree.train(data);
  std::string blob = tree.serialize();
  blob.resize(blob.size() / 2);
  EXPECT_THROW(DecisionTree::deserialize(blob), std::invalid_argument);
}

}  // namespace
}  // namespace qopt::ml
