#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/obs.hpp"
#include "obs/registry.hpp"
#include "sim/failure_detector.hpp"
#include "sim/ids.hpp"
#include "sim/network.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"

namespace qopt::sim {
namespace {

// -------------------------------------------------------------- simulator

TEST(SimulatorTest, RunsEventsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.at(30, [&] { order.push_back(3); });
  sim.at(10, [&] { order.push_back(1); });
  sim.at(20, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 30);
}

TEST(SimulatorTest, SameTimeFifoBySchedulingOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.at(5, [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(SimulatorTest, AfterSchedulesRelative) {
  Simulator sim;
  sim.at(100, [] {});
  sim.run();
  Time fired_at = -1;
  sim.after(50, [&] { fired_at = sim.now(); });
  sim.run();
  EXPECT_EQ(fired_at, 150);
}

TEST(SimulatorTest, PastEventsClampToNow) {
  Simulator sim;
  sim.at(100, [] {});
  sim.run();
  Time fired_at = -1;
  sim.at(10, [&] { fired_at = sim.now(); });  // in the past
  sim.run();
  EXPECT_EQ(fired_at, 100);
}

TEST(SimulatorTest, RunUntilHorizonStopsAndAdvancesClock) {
  Simulator sim;
  int fired = 0;
  sim.at(10, [&] { ++fired; });
  sim.at(100, [&] { ++fired; });
  sim.run(50);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), 50);  // clock advanced to horizon
  sim.run(200);
  EXPECT_EQ(fired, 2);
}

TEST(SimulatorTest, EventsCanScheduleEvents) {
  Simulator sim;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) sim.after(10, recurse);
  };
  sim.after(10, recurse);
  sim.run();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(sim.now(), 50);
}

TEST(SimulatorTest, StopHaltsRun) {
  Simulator sim;
  int fired = 0;
  sim.at(10, [&] {
    ++fired;
    sim.stop();
  });
  sim.at(20, [&] { ++fired; });
  sim.run();
  EXPECT_EQ(fired, 1);
  sim.run();  // resumes
  EXPECT_EQ(fired, 2);
}

TEST(SimulatorTest, StepProcessesOneEvent) {
  Simulator sim;
  int fired = 0;
  sim.at(1, [&] { ++fired; });
  sim.at(2, [&] { ++fired; });
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(sim.step());
  EXPECT_FALSE(sim.step());
}

// ---------------------------------------------------------------- node ids

TEST(NodeIdTest, OrderingAndEquality) {
  EXPECT_EQ(proxy_id(1), proxy_id(1));
  EXPECT_NE(proxy_id(1), proxy_id(2));
  EXPECT_NE(proxy_id(1), storage_id(1));
  EXPECT_LT(client_id(0), proxy_id(0));  // enum order
}

TEST(NodeIdTest, ToString) {
  EXPECT_EQ(to_string(proxy_id(3)), "proxy-3");
  EXPECT_EQ(to_string(storage_id(0)), "storage-0");
  EXPECT_EQ(to_string(rm_id()), "rm-0");
  EXPECT_EQ(to_string(am_id()), "am-0");
  EXPECT_EQ(to_string(client_id(12)), "client-12");
}

// ---------------------------------------------------------------- network

using TestNet = Network<std::string>;

struct NetFixture : ::testing::Test {
  Simulator sim;
  Rng rng{99};
  LatencyModel latency{microseconds(100), microseconds(50)};
  TestNet net{sim, latency, rng};
};

TEST_F(NetFixture, DeliversToRegisteredHandler) {
  std::vector<std::string> received;
  net.register_node(proxy_id(0),
                    [&](const NodeId&, const std::string& m) {
                      received.push_back(m);
                    });
  net.send(client_id(0), proxy_id(0), "hello");
  sim.run();
  ASSERT_EQ(received.size(), 1u);
  EXPECT_EQ(received[0], "hello");
  EXPECT_EQ(net.stats().messages_delivered, 1u);
}

TEST_F(NetFixture, DeliveryTakesLatency) {
  Time delivered_at = -1;
  net.register_node(proxy_id(0), [&](const NodeId&, const std::string&) {
    delivered_at = sim.now();
  });
  net.send(client_id(0), proxy_id(0), "x");
  sim.run();
  EXPECT_GE(delivered_at, microseconds(100));
  EXPECT_LT(delivered_at, microseconds(150) + 1);
}

TEST_F(NetFixture, FifoPerSenderReceiverPair) {
  std::vector<int> received;
  net.register_node(proxy_id(0), [&](const NodeId&, const std::string& m) {
    received.push_back(std::stoi(m));
  });
  for (int i = 0; i < 200; ++i) {
    net.send(client_id(0), proxy_id(0), std::to_string(i));
  }
  sim.run();
  ASSERT_EQ(received.size(), 200u);
  for (int i = 0; i < 200; ++i) EXPECT_EQ(received[static_cast<size_t>(i)], i);
}

TEST_F(NetFixture, CrashedReceiverDropsInFlight) {
  int received = 0;
  net.register_node(proxy_id(0),
                    [&](const NodeId&, const std::string&) { ++received; });
  net.send(client_id(0), proxy_id(0), "x");
  net.set_crashed(proxy_id(0));
  sim.run();
  EXPECT_EQ(received, 0);
  EXPECT_EQ(net.stats().messages_dropped, 1u);
  EXPECT_EQ(net.stats().dropped_receiver_crashed, 1u);
  EXPECT_EQ(net.stats().dropped_sender_crashed, 0u);
  EXPECT_EQ(net.stats().dropped_unroutable, 0u);
}

TEST_F(NetFixture, CrashedSenderCannotSend) {
  int received = 0;
  net.register_node(proxy_id(0),
                    [&](const NodeId&, const std::string&) { ++received; });
  net.set_crashed(client_id(0));
  // The sender must be registered for crash state to apply.
  net.register_node(client_id(0), [](const NodeId&, const std::string&) {});
  net.set_crashed(client_id(0));
  net.send(client_id(0), proxy_id(0), "x");
  sim.run();
  EXPECT_EQ(received, 0);
  EXPECT_EQ(net.stats().dropped_sender_crashed, 1u);
  EXPECT_EQ(net.stats().dropped_receiver_crashed, 0u);
}

TEST_F(NetFixture, BroadcastReachesAllTargets) {
  int received = 0;
  for (std::uint32_t i = 0; i < 5; ++i) {
    net.register_node(storage_id(i),
                      [&](const NodeId&, const std::string&) { ++received; });
  }
  std::vector<NodeId> targets;
  for (std::uint32_t i = 0; i < 5; ++i) targets.push_back(storage_id(i));
  net.broadcast(proxy_id(0), targets, "w");
  sim.run();
  EXPECT_EQ(received, 5);
}

TEST_F(NetFixture, SenderIdentityPassedToHandler) {
  NodeId seen_from{};
  net.register_node(proxy_id(0), [&](const NodeId& from, const std::string&) {
    seen_from = from;
  });
  net.send(client_id(7), proxy_id(0), "x");
  sim.run();
  EXPECT_EQ(seen_from, client_id(7));
}

TEST_F(NetFixture, UnregisteredTargetCountsAsDropped) {
  net.send(client_id(0), proxy_id(9), "x");
  sim.run();
  EXPECT_EQ(net.stats().messages_dropped, 1u);
  EXPECT_EQ(net.stats().dropped_unroutable, 1u);
}

TEST_F(NetFixture, DropReasonsSumToTotalAndMirrorIntoRegistry) {
  obs::Observability telemetry;
  net.bind_observability(&telemetry);
  net.register_node(proxy_id(0), [](const NodeId&, const std::string&) {});
  net.register_node(client_id(0), [](const NodeId&, const std::string&) {});

  net.send(client_id(0), proxy_id(9), "unroutable");
  net.send(client_id(0), proxy_id(0), "in flight when receiver dies");
  net.set_crashed(proxy_id(0));
  net.set_crashed(client_id(0));
  net.send(client_id(0), proxy_id(0), "sender dead");
  sim.run();

  const NetworkStats& stats = net.stats();
  EXPECT_EQ(stats.dropped_unroutable, 1u);
  EXPECT_EQ(stats.dropped_receiver_crashed, 1u);
  EXPECT_EQ(stats.dropped_sender_crashed, 1u);
  EXPECT_EQ(stats.messages_dropped, stats.dropped_sender_crashed +
                                        stats.dropped_receiver_crashed +
                                        stats.dropped_unroutable);
  EXPECT_EQ(stats.messages_sent, 3u);
  EXPECT_EQ(stats.messages_delivered, 0u);

  // Registry mirrors count only what happened after binding.
  const obs::MetricRegistry& reg = telemetry.registry();
  EXPECT_EQ(reg.counter_value("net.messages_sent"), 3u);
  EXPECT_EQ(reg.counter_value("net.dropped.unroutable"), 1u);
  EXPECT_EQ(reg.counter_value("net.dropped.receiver_crashed"), 1u);
  EXPECT_EQ(reg.counter_value("net.dropped.sender_crashed"), 1u);
  EXPECT_EQ(reg.counter_value("net.messages_delivered"), 0u);
}

// -------------------------------------------------------- failure detector

TEST(FailureDetectorTest, SuspectsCrashedNodeAfterDelay) {
  Simulator sim;
  FailureDetector fd(sim, milliseconds(100));
  fd.node_crashed(proxy_id(0));
  EXPECT_FALSE(fd.suspects(proxy_id(0)));
  sim.run(milliseconds(50));
  EXPECT_FALSE(fd.suspects(proxy_id(0)));
  sim.run(milliseconds(200));
  EXPECT_TRUE(fd.suspects(proxy_id(0)));
}

TEST(FailureDetectorTest, FalseSuspicionClearsAfterDuration) {
  Simulator sim;
  FailureDetector fd(sim, milliseconds(100));
  fd.inject_false_suspicion(proxy_id(1), milliseconds(500));
  EXPECT_TRUE(fd.suspects(proxy_id(1)));
  sim.run(milliseconds(600));
  EXPECT_FALSE(fd.suspects(proxy_id(1)));
}

TEST(FailureDetectorTest, ManualClear) {
  Simulator sim;
  FailureDetector fd(sim, milliseconds(100));
  fd.inject_false_suspicion(proxy_id(1), 0);  // indefinite
  EXPECT_TRUE(fd.suspects(proxy_id(1)));
  fd.clear_suspicion(proxy_id(1));
  EXPECT_FALSE(fd.suspects(proxy_id(1)));
}

TEST(FailureDetectorTest, CrashOverridesFalseSuspicionClearing) {
  Simulator sim;
  FailureDetector fd(sim, milliseconds(100));
  fd.inject_false_suspicion(proxy_id(2), milliseconds(300));
  fd.node_crashed(proxy_id(2));
  sim.run(milliseconds(1000));
  // The scheduled un-suspect must not clear a real crash.
  EXPECT_TRUE(fd.suspects(proxy_id(2)));
}

TEST(FailureDetectorTest, ListenersNotifiedOnChange) {
  Simulator sim;
  FailureDetector fd(sim, milliseconds(10));
  std::vector<std::pair<NodeId, bool>> events;
  fd.subscribe([&](const NodeId& id, bool suspected) {
    events.emplace_back(id, suspected);
  });
  fd.inject_false_suspicion(proxy_id(0), milliseconds(100));
  sim.run(milliseconds(500));
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0], std::make_pair(proxy_id(0), true));
  EXPECT_EQ(events[1], std::make_pair(proxy_id(0), false));
}

TEST(FailureDetectorTest, UnknownNodeNotSuspected) {
  Simulator sim;
  FailureDetector fd(sim, milliseconds(10));
  EXPECT_FALSE(fd.suspects(proxy_id(9)));
}

TEST(FailureDetectorTest, FalseSuspicionOnCrashedNodeIgnored) {
  Simulator sim;
  FailureDetector fd(sim, milliseconds(10));
  fd.node_crashed(proxy_id(0));
  sim.run(milliseconds(50));
  EXPECT_TRUE(fd.suspects(proxy_id(0)));
  fd.inject_false_suspicion(proxy_id(0), milliseconds(10));
  sim.run(milliseconds(100));
  EXPECT_TRUE(fd.suspects(proxy_id(0)));  // stays suspected forever
}

}  // namespace
}  // namespace qopt::sim
