// Robustness under an unreliable network: the link-fault plane (loss,
// duplication, delay spikes, partitions), at-least-once retransmits with
// storage-side dedup, lossy-link heartbeat behaviour, crash-recovery, and
// the dense chaos acceptance scenario — all with the Dynamic Quorum
// Consistency checker as the safety oracle and "no stuck client operation"
// as the liveness oracle.
#include <gtest/gtest.h>

#include <string>
#include <variant>
#include <vector>

#include "core/cluster.hpp"
#include "core/nemesis.hpp"
#include "kv/service_model.hpp"
#include "kv/storage_node.hpp"
#include "kv/types.hpp"
#include "kv/wire.hpp"
#include "obs/registry.hpp"
#include "obs/report.hpp"
#include "sim/failure_detector.hpp"
#include "sim/ids.hpp"
#include "sim/network.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"
#include "workload/workload.hpp"

namespace qopt {
namespace {

// ---------------------------------------------------- network fault plane

struct NetFixture : ::testing::Test {
  using Net = sim::Network<int>;

  sim::Simulator sim;
  Net net{sim, sim::LatencyModel{microseconds(100), 0}, Rng(42)};
  std::vector<int> inbox_a;
  std::vector<int> inbox_b;

  void SetUp() override {
    net.register_node(sim::storage_id(0),
                      [this](const sim::NodeId&, int m) {
                        inbox_a.push_back(m);
                      });
    net.register_node(sim::storage_id(1),
                      [this](const sim::NodeId&, int m) {
                        inbox_b.push_back(m);
                      });
  }
};

TEST_F(NetFixture, LinkLossDropsWithItsOwnReason) {
  net.set_loss(1.0);
  for (int i = 0; i < 10; ++i) {
    net.send(sim::storage_id(0), sim::storage_id(1), i);
  }
  sim.run();
  EXPECT_TRUE(inbox_b.empty());
  EXPECT_EQ(net.stats().dropped_link_loss, 10u);
  EXPECT_EQ(net.stats().messages_dropped, 10u);
  net.set_loss(0.0);
  net.send(sim::storage_id(0), sim::storage_id(1), 99);
  sim.run();
  EXPECT_EQ(inbox_b.size(), 1u);
}

TEST_F(NetFixture, DuplicationDeliversASecondCopyAfterTheFirst) {
  net.set_duplication(1.0);
  net.send(sim::storage_id(0), sim::storage_id(1), 7);
  sim.run();
  ASSERT_EQ(inbox_b.size(), 2u);
  EXPECT_EQ(inbox_b[0], 7);
  EXPECT_EQ(inbox_b[1], 7);
  EXPECT_EQ(net.stats().duplicates_delivered, 1u);
  // Duplicates are deliveries, not drops.
  EXPECT_EQ(net.stats().messages_dropped, 0u);
  EXPECT_EQ(net.stats().messages_delivered, 2u);
}

TEST_F(NetFixture, DelaySpikeAddsLatencyWithoutLosingTheMessage) {
  net.set_delay_spike(1.0, milliseconds(50));
  const Time t0 = sim.now();
  Time delivered_at = 0;
  net.register_node(sim::storage_id(2),
                    [&](const sim::NodeId&, int) {
                      delivered_at = sim.now();
                    });
  net.send(sim::storage_id(0), sim::storage_id(2), 1);
  sim.run();
  EXPECT_GE(delivered_at - t0, milliseconds(50));
  EXPECT_EQ(net.stats().delay_spikes, 1u);
  EXPECT_EQ(net.stats().messages_delivered, 1u);
}

TEST_F(NetFixture, SymmetricPartitionCutsBothDirectionsUntilHealed) {
  const std::uint64_t id = net.add_partition({sim::storage_id(0)},
                                             {sim::storage_id(1)},
                                             /*symmetric=*/true);
  net.send(sim::storage_id(0), sim::storage_id(1), 1);
  net.send(sim::storage_id(1), sim::storage_id(0), 2);
  sim.run();
  EXPECT_TRUE(inbox_a.empty());
  EXPECT_TRUE(inbox_b.empty());
  EXPECT_EQ(net.stats().dropped_partitioned, 2u);
  EXPECT_TRUE(net.heal_partition(id));
  EXPECT_FALSE(net.heal_partition(id));  // already healed
  net.send(sim::storage_id(0), sim::storage_id(1), 3);
  sim.run();
  EXPECT_EQ(inbox_b.size(), 1u);
}

TEST_F(NetFixture, OneWayPartitionOnlyBlocksTheNamedDirection) {
  net.add_partition({sim::storage_id(0)}, {sim::storage_id(1)},
                    /*symmetric=*/false);
  net.send(sim::storage_id(0), sim::storage_id(1), 1);  // blocked
  net.send(sim::storage_id(1), sim::storage_id(0), 2);  // passes
  sim.run();
  EXPECT_TRUE(inbox_b.empty());
  ASSERT_EQ(inbox_a.size(), 1u);
  EXPECT_EQ(inbox_a[0], 2);
}

TEST_F(NetFixture, PartitionCutsMessagesAlreadyInFlight) {
  net.send(sim::storage_id(0), sim::storage_id(1), 1);
  // The partition lands while the message is still in the air (delivery
  // checks run at arrival time, like a crashed receiver).
  net.add_partition({sim::storage_id(0)}, {sim::storage_id(1)});
  sim.run();
  EXPECT_TRUE(inbox_b.empty());
  EXPECT_EQ(net.stats().dropped_partitioned, 1u);
}

TEST(NetworkFaultDeterminism, SameSeedSameFaultSchedule) {
  const auto run = [] {
    sim::Simulator sim;
    sim::Network<int> net{sim, sim::LatencyModel{microseconds(100),
                                                 microseconds(200)},
                          Rng(7)};
    std::uint64_t received = 0;
    net.register_node(sim::storage_id(1),
                      [&](const sim::NodeId&, int) { ++received; });
    net.set_loss(0.2);
    net.set_duplication(0.1);
    net.set_delay_spike(0.05, milliseconds(10));
    for (int i = 0; i < 500; ++i) {
      net.send(sim::storage_id(0), sim::storage_id(1), i);
    }
    sim.run();
    return std::tuple{received, net.stats().dropped_link_loss,
                      net.stats().duplicates_delivered,
                      net.stats().delay_spikes};
  };
  EXPECT_EQ(run(), run());
}

// ------------------------------------------------ storage-side idempotence

struct DedupFixture : ::testing::Test {
  using Net = sim::Network<kv::Message>;

  sim::Simulator sim;
  Net net{sim, sim::LatencyModel{microseconds(50), 0}, Rng(17)};
  kv::ServiceTimes service;
  std::unique_ptr<kv::StorageNode> node;
  std::vector<kv::Message> proxy_inbox;

  void SetUp() override {
    service.read_jitter = 0;
    service.write_jitter = 0;
    node = std::make_unique<kv::StorageNode>(sim, net, sim::storage_id(0),
                                             service, 2, Rng(1));
    net.register_node(sim::storage_id(0),
                      [this](const sim::NodeId& from, const kv::Message& m) {
                        node->on_message(from, m);
                      });
    net.register_node(sim::proxy_id(0),
                      [this](const sim::NodeId&, const kv::Message& m) {
                        proxy_inbox.push_back(m);
                      });
  }

  std::uint64_t counter(const char* name) const {
    return node->observability().registry().counter_value(
        obs::instrument_name("storage", 0, name));
  }
};

TEST_F(DedupFixture, TwiceDeliveredWriteIsAppliedOnceAndAckedTwice) {
  kv::Version v;
  v.ts = {100, 0, 1};
  v.value = 5;
  const kv::StorageWriteReq req{7, /*op_id=*/1, /*epno=*/0, v, {}};
  net.send(sim::proxy_id(0), sim::storage_id(0), req);
  sim.run();
  net.send(sim::proxy_id(0), sim::storage_id(0), req);  // retransmit / dup
  sim.run();
  // Both copies answered (the proxy's reply may have been the lost one),
  // but the write ran once.
  ASSERT_EQ(proxy_inbox.size(), 2u);
  EXPECT_TRUE(std::holds_alternative<kv::StorageWriteResp>(proxy_inbox[0]));
  EXPECT_TRUE(std::holds_alternative<kv::StorageWriteResp>(proxy_inbox[1]));
  EXPECT_EQ(counter("writes_applied"), 1u);
  EXPECT_EQ(counter("dup_writes_ignored"), 1u);
  ASSERT_NE(node->peek(7), nullptr);
  EXPECT_EQ(node->peek(7)->value, 5u);
}

TEST_F(DedupFixture, DedupIsPerProxyOpIdNotGlobal) {
  net.register_node(sim::proxy_id(1),
                    [](const sim::NodeId&, const kv::Message&) {});
  kv::Version v;
  v.ts = {100, 0, 1};
  v.value = 5;
  // Same op id from two different proxies: distinct operations, both run.
  net.send(sim::proxy_id(0), sim::storage_id(0),
           kv::StorageWriteReq{7, 1, 0, v, {}});
  sim.run();
  kv::Version newer = v;
  newer.ts = {200, 1, 1};
  newer.value = 6;
  net.send(sim::proxy_id(1), sim::storage_id(0),
           kv::StorageWriteReq{7, 1, 0, newer, {}});
  sim.run();
  EXPECT_EQ(counter("dup_writes_ignored"), 0u);
  EXPECT_EQ(counter("writes_applied"), 2u);
}

TEST_F(DedupFixture, CrashClearsTheDedupTableWithTheRam) {
  kv::Version v;
  v.ts = {100, 0, 1};
  v.value = 5;
  const kv::StorageWriteReq req{7, 1, 0, v, {}};
  net.send(sim::proxy_id(0), sim::storage_id(0), req);
  sim.run();
  node->crash();
  node->restart();
  // Post-restart re-delivery re-applies (freshest-wins keeps it harmless).
  net.send(sim::proxy_id(0), sim::storage_id(0), req);
  sim.run();
  EXPECT_EQ(counter("dup_writes_ignored"), 0u);
  EXPECT_EQ(counter("restarts"), 1u);
  ASSERT_NE(node->peek(7), nullptr);  // durable across the crash
  EXPECT_EQ(node->peek(7)->value, 5u);
}

// ---------------------------------------------------- cluster-level faults

ClusterConfig lossy_config(std::uint64_t seed) {
  ClusterConfig config;
  config.num_storage = 7;
  config.num_proxies = 3;
  config.clients_per_proxy = 3;
  config.replication = 5;
  config.initial_quorum = {3, 3};
  config.seed = seed;
  config.client_retry_timeout = milliseconds(500);
  return config;
}

// Every in-flight client operation must resolve: completed, or reported
// failed within the proxy's retry budget. Quiesce long enough for the
// slowest full backoff ladder (~16 s at the defaults) and check no client
// is still waiting.
void expect_no_stuck_clients(Cluster& cluster) {
  cluster.stop_clients();
  cluster.run_for(seconds(20));
  for (std::uint32_t i = 0; i < cluster.num_clients(); ++i) {
    EXPECT_FALSE(cluster.client(i).op_in_flight())
        << "client " << i << " stuck mid-operation";
  }
}

TEST(LossyClusterTest, RetransmitsKeepEveryOperationLive) {
  ClusterConfig config = lossy_config(11);
  config.net_loss = 0.05;
  Cluster cluster(config);
  cluster.preload(500, 1024);
  cluster.set_workload(workload::ycsb_a(500));
  cluster.run_for(seconds(20));

  const obs::RunReport report = cluster.report();
  EXPECT_GT(report.dropped_link_loss, 0u);
  EXPECT_EQ(report.consistency_violations, 0u);
  std::uint64_t retries = 0;
  for (std::uint32_t i = 0; i < config.num_proxies; ++i) {
    retries += cluster.obs().registry().counter_value(
        obs::instrument_name("proxy", i, "retries"));
  }
  EXPECT_GT(retries, 0u) << "5% loss must trigger proxy retransmits";
  std::uint64_t completed = 0;
  for (std::uint32_t i = 0; i < cluster.num_clients(); ++i) {
    completed += cluster.client(i).ops_completed();
  }
  EXPECT_GT(completed, 1'000u);
  expect_no_stuck_clients(cluster);
}

TEST(LossyClusterTest, DuplicateDeliveryIsHarmlessEndToEnd) {
  ClusterConfig config = lossy_config(12);
  config.net_duplication = 0.05;
  Cluster cluster(config);
  cluster.preload(500, 1024);
  cluster.set_workload(workload::ycsb_a(500));
  cluster.run_for(seconds(15));

  const obs::RunReport report = cluster.report();
  EXPECT_GT(report.duplicates_delivered, 0u);
  EXPECT_EQ(report.consistency_violations, 0u);
  // Both dedup layers saw action: replicas ignoring replayed writes and
  // proxies ignoring replayed replies.
  std::uint64_t dup_replies = 0;
  for (std::uint32_t i = 0; i < config.num_proxies; ++i) {
    dup_replies += cluster.obs().registry().counter_value(
        obs::instrument_name("proxy", i, "duplicate_replies"));
  }
  EXPECT_GT(dup_replies, 0u);
  expect_no_stuck_clients(cluster);
}

TEST(LossyClusterTest, HeartbeatsTolerateLossWithoutPermanentSuspicion) {
  ClusterConfig config = lossy_config(13);
  config.heartbeat_fd = true;
  config.heartbeat_interval = milliseconds(100);
  config.heartbeat_timeout = milliseconds(500);
  // 5% loss: a false timeout needs ~5 consecutive losses (p ~ 3e-7 per
  // sweep), so the watcher must stay quiet; a permanently suspected live
  // proxy would be a ◇P accuracy violation.
  config.net_loss = 0.05;
  Cluster cluster(config);
  cluster.preload(200, 1024);
  cluster.set_workload(workload::ycsb_a(200));
  cluster.run_for(seconds(30));

  for (std::uint32_t i = 0; i < config.num_proxies; ++i) {
    EXPECT_FALSE(cluster.failure_detector().suspects(sim::proxy_id(i)))
        << "live proxy " << i << " left suspected under lossy heartbeats";
  }
  EXPECT_EQ(cluster.report().consistency_violations, 0u);
}

TEST(CrashRecoveryTest, StorageNodeRejoinsWithDurableState) {
  ClusterConfig config = lossy_config(14);
  Cluster cluster(config);
  cluster.preload(500, 1024);
  cluster.set_workload(workload::ycsb_a(500));
  cluster.run_for(seconds(3));
  cluster.crash_storage(0);
  // A reconfiguration (with its epoch change) happens while the node is
  // down, so it rejoins with a stale epoch and resynchronizes via NACK.
  cluster.reconfigure({4, 2});
  cluster.run_for(seconds(3));
  const std::uint64_t reads_while_down =
      cluster.obs().registry().counter_value(
          obs::instrument_name("storage", 0, "reads_served"));
  cluster.restart_storage(0);
  cluster.run_for(seconds(5));

  EXPECT_EQ(cluster.obs().registry().counter_value(
                obs::instrument_name("storage", 0, "restarts")),
            1u);
  EXPECT_GT(cluster.obs().registry().counter_value(
                obs::instrument_name("storage", 0, "reads_served")),
            reads_while_down)
      << "restarted node never served again";
  EXPECT_EQ(cluster.report().consistency_violations, 0u);
  expect_no_stuck_clients(cluster);
}

TEST(CrashRecoveryTest, ProxyRelearnsTheEpochThroughTheNackPath) {
  ClusterConfig config = lossy_config(15);
  Cluster cluster(config);
  cluster.preload(500, 1024);
  cluster.set_workload(workload::ycsb_a(500));
  cluster.run_for(seconds(2));
  cluster.crash_proxy(0);
  bool reconfigured = false;
  cluster.reconfigure({4, 2}, [&](bool ok) { reconfigured = ok; });
  cluster.run_for(seconds(3));
  ASSERT_TRUE(reconfigured);
  cluster.restart_proxy(0);
  // Drive an operation through the restarted proxy directly: its epoch is
  // stale, so the first storage contact NACKs and resynchronizes it.
  cluster.network().send(sim::client_id(0), sim::proxy_id(0),
                         kv::Message{kv::ClientReadReq{1, 1 << 20}});
  cluster.run_for(seconds(3));

  const auto proxy_counter = [&](const char* name) {
    return cluster.obs().registry().counter_value(
        obs::instrument_name("proxy", 0, name));
  };
  EXPECT_EQ(proxy_counter("restarts"), 1u);
  EXPECT_GE(proxy_counter("nacks_received"), 1u)
      << "stale restarted proxy should have been NACKed into the new epoch";
  EXPECT_EQ(cluster.report().consistency_violations, 0u);
  expect_no_stuck_clients(cluster);
}

// ------------------------------------------------- acceptance: dense chaos

// The issue's acceptance scenario: 1% link loss, duplicate delivery, a
// partition/heal cycle and crash-recovery events in one schedule — zero
// violations, zero stuck clients, and a byte-identical report on rerun.
struct ChaosOutcome {
  std::string report_json;
  NemesisStats nemesis;
  bool clean = false;
  bool all_resolved = false;
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
};

ChaosOutcome run_dense_chaos(std::uint64_t seed) {
  ClusterConfig config = lossy_config(seed);
  config.net_loss = 0.01;
  config.net_duplication = 0.005;
  Cluster cluster(config);
  cluster.preload(500, 1024);
  cluster.set_workload(workload::ycsb_a(500));

  NemesisOptions options;
  options.mean_interval = milliseconds(250);
  options.partition = 2.0;
  options.loss_burst = 1.0;
  options.restart = 4.0;
  options.seed = seed * 31 + 5;
  Nemesis nemesis(cluster, options);
  nemesis.start();
  cluster.run_for(seconds(30));
  nemesis.stop();
  cluster.heal_all_partitions();
  cluster.stop_clients();
  cluster.run_for(seconds(20));  // quiesce past the longest backoff ladder

  ChaosOutcome out;
  out.nemesis = nemesis.stats();
  out.clean = cluster.checker().clean();
  out.all_resolved = true;
  for (std::uint32_t i = 0; i < cluster.num_clients(); ++i) {
    out.all_resolved &= !cluster.client(i).op_in_flight();
    out.completed += cluster.client(i).ops_completed();
    out.failed += cluster.client(i).failures();
  }
  out.report_json = cluster.report().to_json();
  return out;
}

TEST(ChaosAcceptanceTest, DenseScheduleIsSafeLiveAndDeterministic) {
  const ChaosOutcome out = run_dense_chaos(3);
  EXPECT_TRUE(out.clean) << "consistency violations under dense chaos";
  EXPECT_TRUE(out.all_resolved) << "a client operation is stuck";
  EXPECT_GT(out.completed, 1'000u);
  // The schedule really exercised the new fault kinds.
  EXPECT_GE(out.nemesis.partitions, 1u);
  EXPECT_EQ(out.nemesis.partitions, out.nemesis.heals);
  EXPECT_GE(out.nemesis.loss_bursts, 1u);
  EXPECT_GE(out.nemesis.restarts, 2u);

  // Byte-identical rerun: the whole scenario, fault plane included, is a
  // pure function of the seed.
  const ChaosOutcome again = run_dense_chaos(3);
  EXPECT_EQ(out.report_json, again.report_json);
  EXPECT_EQ(out.completed, again.completed);
  EXPECT_EQ(out.failed, again.failed);
}

// ------------------------------------------- acceptance: RM leader chaos

// The replicated-RM acceptance scenario: the nemesis repeatedly crashes and
// partitions the RM leader while its own reconfiguration events keep rounds
// in flight — rounds must survive failovers (no lost or doubled commits),
// clients must never get stuck, and the whole run must replay byte-identical
// from the seed.
ChaosOutcome run_rm_chaos(std::uint64_t seed) {
  ClusterConfig config = lossy_config(seed);
  config.rm_replicas = 3;
  Cluster cluster(config);
  cluster.preload(500, 1024);
  cluster.set_workload(workload::ycsb_a(500));

  NemesisOptions options;
  options.mean_interval = milliseconds(250);
  options.rm_crash = 2.0;
  options.rm_partition = 2.0;
  options.max_rm_outage = seconds(1);
  options.seed = seed * 17 + 9;
  Nemesis nemesis(cluster, options);
  nemesis.start();
  cluster.run_for(seconds(30));
  nemesis.stop();
  cluster.stop_clients();
  cluster.run_for(seconds(20));  // pending RM restarts/heals fire in here

  ChaosOutcome out;
  out.nemesis = nemesis.stats();
  out.clean = cluster.checker().clean();
  out.all_resolved = true;
  for (std::uint32_t i = 0; i < cluster.num_clients(); ++i) {
    out.all_resolved &= !cluster.client(i).op_in_flight();
    out.completed += cluster.client(i).ops_completed();
    out.failed += cluster.client(i).failures();
  }
  out.report_json = cluster.report().to_json();
  return out;
}

TEST(RmChaosAcceptanceTest, LeaderFaultsAreSafeLiveAndDeterministic) {
  const ChaosOutcome out = run_rm_chaos(4);
  EXPECT_TRUE(out.clean) << "consistency violations under RM leader chaos";
  EXPECT_TRUE(out.all_resolved) << "a client operation is stuck";
  EXPECT_GT(out.completed, 1'000u);
  // The schedule really exercised both RM fault kinds, alongside the
  // reconfiguration traffic that keeps rounds in flight when they strike.
  EXPECT_GE(out.nemesis.rm_crashes, 1u);
  EXPECT_GE(out.nemesis.rm_partitions, 1u);
  EXPECT_GE(out.nemesis.reconfigurations, 1u);
  EXPECT_NE(out.report_json.find("\"rm_leader_changes\":"),
            std::string::npos);

  const ChaosOutcome again = run_rm_chaos(4);
  EXPECT_EQ(out.report_json, again.report_json);
  EXPECT_EQ(out.completed, again.completed);
  EXPECT_EQ(out.failed, again.failed);
}

}  // namespace
}  // namespace qopt
