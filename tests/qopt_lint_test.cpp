// qopt_lint's own test suite: each rule must fire on a fixture containing a
// known violation, stay silent on clean code, and honour justified
// suppressions. Fixtures use a `.fixture` extension so the tree-wide
// `qopt_lint src tests bench examples` scan (which only picks up
// .cpp/.cc/.hpp/.h) never sees them.
#include <algorithm>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "qopt_lint/lint.hpp"

namespace {

using qopt::lint::Finding;
using qopt::lint::lint_source;

std::string fixture_path(const std::string& name) {
  return std::string(QOPT_LINT_FIXTURE_DIR) + "/" + name;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing fixture: " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

std::vector<Finding> lint_fixture(const std::string& name) {
  const std::string path = fixture_path(name);
  return lint_source(path, slurp(path));
}

std::map<std::string, int> count_by_rule(const std::vector<Finding>& fs) {
  std::map<std::string, int> counts;
  for (const Finding& f : fs) ++counts[f.rule];
  return counts;
}

bool has_finding(const std::vector<Finding>& fs, const std::string& rule,
                 std::size_t line) {
  return std::any_of(fs.begin(), fs.end(), [&](const Finding& f) {
    return f.rule == rule && f.line == line;
  });
}

// ----------------------------------------------------------- wall-clock

TEST(QoptLintTest, WallClockFixtureFlagsEveryAmbientTimeSource) {
  const auto findings = lint_fixture("wall_clock.fixture");
  const auto counts = count_by_rule(findings);
  // system_clock, steady_clock, rand(), random_device, time(nullptr) — and
  // NOT the justified-allow line at the bottom.
  EXPECT_EQ(counts.at("wall-clock"), 5) << qopt::lint::format_finding(
      findings.empty() ? Finding{} : findings.front());
  EXPECT_EQ(counts.size(), 1u);  // no other rules fire
}

TEST(QoptLintTest, JustifiedAllowSuppressesTheNextLine) {
  const std::string src =
      "#include <ctime>\n"
      "// qopt-lint: allow(wall-clock) replay tooling stamps real time\n"
      "long t = time(nullptr);\n";
  EXPECT_TRUE(lint_source("x.cpp", src).empty());
}

TEST(QoptLintTest, AllowForOneRuleDoesNotSuppressAnother) {
  const std::string src =
      "// qopt-lint: allow(unordered-iter) wrong rule for this line\n"
      "long t = time(nullptr);\n";
  const auto findings = lint_source("x.cpp", src);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "wall-clock");
}

TEST(QoptLintTest, RngUtilityIsExemptFromWallClock) {
  const std::string src = "unsigned s = std::random_device{}();\n";
  EXPECT_TRUE(lint_source("src/util/rng.hpp", src).empty());
  EXPECT_FALSE(lint_source("src/kv/proxy.hpp", src).empty());
}

// -------------------------------------------------------- unordered-iter

TEST(QoptLintTest, UnorderedIterFixtureFlagsBothLoopForms) {
  const auto findings = lint_fixture("unordered_iter.fixture");
  const auto counts = count_by_rule(findings);
  EXPECT_EQ(counts.at("unordered-iter"), 2);  // range-for + classic for
  EXPECT_EQ(counts.size(), 1u);
}

TEST(QoptLintTest, CompanionHeaderMembersAreSeenFromTheCpp) {
  // Member declared in the .hpp, iterated in the .cpp — the single-file
  // scan would miss it; the companion-header scan must not.
  const std::string header =
      "struct Exporter {\n"
      "  std::unordered_map<int, double> rows_;\n"
      "  void dump() const;\n"
      "};\n";
  const std::string source =
      "void Exporter::dump() const {\n"
      "  for (const auto& [k, v] : rows_) { (void)k; (void)v; }\n"
      "}\n";
  const auto findings = lint_source("exporter.cpp", source, header);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "unordered-iter");
  EXPECT_EQ(findings[0].line, 2u);
}

// ---------------------------------------------------------- pointer-key

TEST(QoptLintTest, PointerKeyFixtureFlagsOrderedContainersKeyedByPointer) {
  const auto findings = lint_fixture("pointer_key.fixture");
  const auto counts = count_by_rule(findings);
  EXPECT_EQ(counts.at("pointer-key"), 3);  // map, set, multimap
  EXPECT_EQ(counts.size(), 1u);
}

TEST(QoptLintTest, PointerValuesAreFine) {
  const std::string src = "std::map<std::string, Node*> by_name;\n";
  EXPECT_TRUE(lint_source("x.hpp", src).empty());
}

// ------------------------------------------------------- quorum-literal

TEST(QoptLintTest, QuorumLiteralFixtureFlagsInvariantViolations) {
  const auto findings = lint_fixture("quorum_literal.fixture");
  const auto counts = count_by_rule(findings);
  // Aggregates: {0,3}, {3,0}, annotated {3,2} with n=5, annotated {6,1}
  // with n=5. Factories: of(0,3), annotated of(2,3) with n=5,
  // majority(2,3,5), majority(6,1,5).
  EXPECT_EQ(counts.at("quorum-literal"), 8);
  EXPECT_EQ(counts.size(), 1u);
}

TEST(QoptLintTest, NamedFactoriesAreCheckedLikeLiterals) {
  const auto bad = lint_source(
      "x.cpp", "auto s = kv::QuorumStrategy::majority(2, 3, 5);\n");
  ASSERT_EQ(bad.size(), 1u);
  EXPECT_EQ(bad[0].rule, "quorum-literal");

  // Annotation supplies n for the two-argument spellings.
  const auto annotated = lint_source(
      "x.cpp",
      "// qopt-lint: quorum(n=5)\n"
      "auto q = kv::QuorumConfig::of(2, 3);\n");
  ASSERT_EQ(annotated.size(), 1u);
  EXPECT_EQ(annotated[0].line, 2u);

  EXPECT_TRUE(lint_source(
                  "x.cpp", "auto s = kv::QuorumStrategy::majority(3, 3, 5);\n")
                  .empty());
  EXPECT_TRUE(
      lint_source("x.cpp", "auto q = kv::QuorumConfig::of(2, 3);\n").empty());
}

TEST(QoptLintTest, QuorumAnnotationEnablesIntersectionCheck) {
  const std::string bad =
      "// qopt-lint: quorum(n=5)\n"
      "kv::QuorumConfig q{2, 3};\n";  // 2 + 3 == 5: quorums may miss
  const auto findings = lint_source("x.cpp", bad);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "quorum-literal");
  EXPECT_EQ(findings[0].line, 2u);

  const std::string good =
      "// qopt-lint: quorum(n=5)\n"
      "kv::QuorumConfig q{3, 3};\n";
  EXPECT_TRUE(lint_source("x.cpp", good).empty());
}

// ----------------------------------------------------------- bare-allow

TEST(QoptLintTest, BareAllowIsItselfAFindingAndDoesNotSuppress) {
  const auto findings = lint_fixture("bare_allow.fixture");
  const auto counts = count_by_rule(findings);
  EXPECT_EQ(counts.at("bare-allow"), 1);
  EXPECT_EQ(counts.at("wall-clock"), 1);  // the bare allow did not suppress
}

// ----------------------------------------------------------- clean code

TEST(QoptLintTest, CleanFixtureProducesNoFindings) {
  const auto findings = lint_fixture("clean.fixture");
  for (const Finding& f : findings) {
    ADD_FAILURE() << qopt::lint::format_finding(f);
  }
}

TEST(QoptLintTest, CommentsAndStringsAreNotScanned) {
  const std::string src =
      "// calls rand() and time(nullptr) in prose only\n"
      "const char* doc = \"std::chrono::system_clock::now()\";\n"
      "/* for (auto& kv : some_unordered_map) {} */\n";
  EXPECT_TRUE(lint_source("x.cpp", src).empty());
}

// --------------------------------------------------- reporting plumbing

TEST(QoptLintTest, FindingsCarryFileLineAndRule) {
  const auto findings = lint_fixture("wall_clock.fixture");
  ASSERT_FALSE(findings.empty());
  EXPECT_TRUE(has_finding(findings, "wall-clock", 12));
  for (const Finding& f : findings) {
    EXPECT_EQ(f.file, fixture_path("wall_clock.fixture"));
    EXPECT_GT(f.line, 0u);
    const std::string rendered = qopt::lint::format_finding(f);
    EXPECT_NE(rendered.find(f.rule), std::string::npos);
    EXPECT_NE(rendered.find(":" + std::to_string(f.line) + ":"),
              std::string::npos);
  }
}

}  // namespace
