// QuorumStrategy: the quorum-system algebra (footprints, intersection,
// transition), the property that every sampled read/write quorum pair
// intersects, byte-identical majority replay, explicit-strategy installs
// through the full protocol, and survival of the chaos schedule with the
// intersection audit as the safety oracle.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "core/cluster.hpp"
#include "core/nemesis.hpp"
#include "kv/quorum.hpp"
#include "kv/types.hpp"
#include "kv/wire.hpp"
#include "oracle/oracle.hpp"
#include "oracle/strategy_optimizer.hpp"
#include "sim/ids.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"
#include "workload/workload.hpp"

namespace qopt {
namespace {

using kv::QuorumConfig;
using kv::QuorumStrategy;
using kv::WeightedQuorum;

// ------------------------------------------------------------- the algebra

TEST(QuorumStrategyTest, MajorityEqualsConvertedConfig) {
  const QuorumStrategy a = QuorumStrategy::majority(3, 3, 5);
  const QuorumStrategy b = QuorumConfig::of(3, 3);  // implicit conversion
  EXPECT_EQ(a, b);
  EXPECT_TRUE(a.is_majority());
  EXPECT_EQ(a.footprint(), QuorumConfig::of(3, 3));
  EXPECT_EQ(a.min_read_size(), 3);
  EXPECT_EQ(a.min_write_size(), 3);
  EXPECT_TRUE(a.valid(5));
  EXPECT_FALSE(QuorumStrategy(QuorumConfig::of(2, 3)).valid(5));  // 2+3 == N
}

TEST(QuorumStrategyTest, ExplicitFootprintCountsOverlap) {
  // Rows {0,1},{2,3},{4} as reads; all 4 transversals of size 3 as writes.
  std::vector<WeightedQuorum> reads = {{{0, 1}, 1.0}, {{2, 3}, 1.0},
                                       {{4}, 1.0}};
  std::vector<WeightedQuorum> writes = {{{0, 2, 4}, 1.0}, {{0, 3, 4}, 1.0},
                                        {{1, 2, 4}, 1.0}, {{1, 3, 4}, 1.0}};
  const QuorumStrategy s = QuorumStrategy::explicit_sets(5, reads, writes);
  EXPECT_TRUE(s.valid(5));
  EXPECT_FALSE(s.is_majority());
  EXPECT_EQ(s.min_read_size(), 1);
  EXPECT_EQ(s.min_write_size(), 3);
  // Any n - min_write + 1 = 3 slots hit every write quorum; any
  // n - min_read + 1 = 5 slots hit every read quorum.
  EXPECT_EQ(s.read_footprint(), 3);
  EXPECT_EQ(s.write_footprint(), 5);
}

TEST(QuorumStrategyTest, ValidRejectsDisjointSystems) {
  // Read {0,1} and write {2,3} never meet.
  const QuorumStrategy s = QuorumStrategy::explicit_sets(
      5, {{{0, 1}, 1.0}}, {{{2, 3}, 1.0}});
  EXPECT_FALSE(s.valid(5));
}

TEST(QuorumStrategyTest, ValidRequiresCountingCompositionality) {
  // reads = writes = {[0,1,2]} passes pairwise intersection, but the proxy's
  // counting path would let a 1-reply write (footprint n - rmin + 1 = 1)
  // miss a 1-reply read entirely: rmin + wmin = 6 > n + 1 = 4.
  const QuorumStrategy s = QuorumStrategy::explicit_sets(
      3, {{{0, 1, 2}, 1.0}}, {{{0, 1, 2}, 1.0}});
  EXPECT_FALSE(s.valid(3));

  // Boundary case rmin + wmin == n + 1 is exactly admissible: footprints
  // 2 and 3 overlap in any pair of subsets of [4].
  const QuorumStrategy b = QuorumStrategy::explicit_sets(
      4, {{{0, 1}, 1.0}}, {{{1, 2, 3}, 1.0}});
  EXPECT_TRUE(b.valid(4));
  EXPECT_EQ(b.read_footprint() + b.write_footprint(), 4 + 1);
}

TEST(QuorumStrategyTest, EmptySidesAreInvalidButSafe) {
  const QuorumStrategy no_writes =
      QuorumStrategy::explicit_sets(5, {{{0, 1, 2}, 1.0}}, {});
  const QuorumStrategy no_reads =
      QuorumStrategy::explicit_sets(5, {}, {{{0, 1, 2}, 1.0}});
  const QuorumStrategy nothing = QuorumStrategy::explicit_sets(0, {}, {});
  for (const QuorumStrategy* s : {&no_writes, &no_reads, &nothing}) {
    for (int replication = 0; replication <= 5; ++replication) {
      EXPECT_FALSE(s->valid(replication)) << s->describe();
    }
    // Footprints stay conservative (full-set where defined) instead of
    // reflecting min_size() == 0 nonsense.
    EXPECT_GE(s->read_footprint(), 1);
    EXPECT_GE(s->write_footprint(), 1);
  }
  EXPECT_EQ(no_writes.read_footprint(), 5);
  EXPECT_EQ(no_reads.write_footprint(), 5);
  // The grid mirror keeps its default for malformed strategies.
  EXPECT_EQ(nothing.grid, QuorumConfig::of(1, 1));
}

TEST(QuorumStrategyTest, TransitionGeneralizesComponentwiseMax) {
  const QuorumStrategy a = QuorumStrategy::majority(2, 4, 5);
  const QuorumStrategy b = QuorumStrategy::majority(4, 2, 5);
  const QuorumStrategy t = kv::transition(a, b);
  EXPECT_TRUE(t.is_majority());
  EXPECT_EQ(t.grid, QuorumConfig::of(4, 4));  // the paper's max rule

  // Against an explicit strategy the rule maxes the footprints, so the
  // transition still intersects every quorum of both systems by counting.
  const QuorumStrategy e = QuorumStrategy::explicit_sets(
      5, {{{0, 1}, 1.0}, {{2, 3}, 1.0}, {{4}, 1.0}},
      {{{0, 2, 4}, 1.0}, {{1, 3, 4}, 1.0}});
  const QuorumStrategy t2 = kv::transition(a, e);
  EXPECT_TRUE(t2.is_majority());
  EXPECT_GE(t2.grid.read_q, e.read_footprint());
  EXPECT_GE(t2.grid.write_q, e.write_footprint());
}

// --------------------------------------------- property: sampling is safe

// Every sampled read quorum must intersect every sampled write quorum —
// across a spread of deterministic seeds and a family of explicit systems.
TEST(QuorumStrategyPropertyTest, SampledReadWritePairsAlwaysIntersect) {
  std::vector<QuorumStrategy> systems;
  // Rows/transversals at n = 5 with skewed weights.
  systems.push_back(QuorumStrategy::explicit_sets(
      5, {{{0, 1}, 0.7}, {{2, 3}, 0.2}, {{4}, 0.1}},
      {{{0, 2, 4}, 1.0}, {{0, 3, 4}, 2.0}, {{1, 2, 4}, 3.0},
       {{1, 3, 4}, 4.0}}));
  // Degenerate single-quorum system.
  systems.push_back(QuorumStrategy::explicit_sets(
      4, {{{0, 1}, 1.0}}, {{{1, 2, 3}, 1.0}}));
  // Majority grids expressed explicitly (every 2-subset vs every 2-subset
  // of [3] intersects).
  systems.push_back(QuorumStrategy::explicit_sets(
      3, {{{0, 1}, 1.0}, {{0, 2}, 2.0}, {{1, 2}, 3.0}},
      {{{0, 1}, 3.0}, {{0, 2}, 2.0}, {{1, 2}, 1.0}}));

  for (const QuorumStrategy& s : systems) {
    ASSERT_TRUE(s.valid(s.n)) << s.describe();
    for (std::uint64_t seed = 1; seed <= 25; ++seed) {
      Rng rng(seed * 977);
      for (int i = 0; i < 200; ++i) {
        const WeightedQuorum& r = s.sample_read(rng);
        const WeightedQuorum& w = s.sample_write(rng);
        EXPECT_TRUE(kv::sets_intersect(r.members, w.members))
            << s.describe() << " seed=" << seed;
      }
    }
  }
}

// Weighted sampling respects the distribution (coarse check: a zero-ish
// weight is drawn essentially never, a dominant weight most of the time).
TEST(QuorumStrategyPropertyTest, SamplingFollowsWeights) {
  const QuorumStrategy s = QuorumStrategy::explicit_sets(
      5, {{{0, 1}, 1000.0}, {{2, 3}, 1.0}}, {{{0, 2, 4}, 1.0}});
  Rng rng(7);
  int dominant = 0;
  for (int i = 0; i < 1000; ++i) {
    if (s.sample_read(rng).members == std::vector<std::uint32_t>{0, 1}) {
      ++dominant;
    }
  }
  EXPECT_GT(dominant, 950);
}

// -------------------------------------- install through the full protocol

ClusterConfig small_cluster(std::uint64_t seed) {
  ClusterConfig config;
  config.num_storage = 10;
  config.num_proxies = 2;
  config.clients_per_proxy = 3;
  config.replication = 5;
  config.initial_quorum = QuorumConfig::of(3, 3);
  config.seed = seed;
  return config;
}

QuorumStrategy rows_and_transversals() {
  return QuorumStrategy::explicit_sets(
      5, {{{0, 1}, 1.0}, {{2, 3}, 1.0}},
      {{{0, 2, 4}, 1.0}, {{0, 3, 4}, 1.0}, {{1, 2, 4}, 1.0},
       {{1, 3, 4}, 1.0}});
}

TEST(StrategyInstallTest, ExplicitStrategyInstallsAndStaysConsistent) {
  Cluster cluster(small_cluster(91));
  cluster.preload(500, 2048);
  cluster.set_workload(workload::ycsb_a(500));
  cluster.run_for(seconds(2));

  bool installed = false;
  cluster.reconfigure_strategy(rows_and_transversals(),
                               [&](bool ok) { installed = ok; });
  cluster.run_for(seconds(3));
  EXPECT_TRUE(installed);
  EXPECT_FALSE(cluster.rm().config().default_q.is_majority());

  cluster.stop_clients();
  cluster.run_for(seconds(1));
  EXPECT_TRUE(cluster.checker().clean());
  EXPECT_TRUE(cluster.checker().quorum_violations().empty());
  EXPECT_GT(cluster.checker().reads_checked(), 100u);
}

TEST(StrategyInstallTest, ExplicitStrategyRunsAreDeterministic) {
  auto run = [](std::uint64_t seed) {
    Cluster cluster(small_cluster(seed));
    cluster.preload(300, 1024);
    cluster.set_workload(workload::ycsb_b(300));
    cluster.run_for(seconds(1));
    cluster.reconfigure_strategy(rows_and_transversals());
    cluster.run_for(seconds(2));
    cluster.stop_clients();
    cluster.run_for(seconds(1));
    return cluster.report().to_json();
  };
  EXPECT_EQ(run(17), run(17));
  EXPECT_NE(run(17), run(18));
}

// Future-versioned strategy payloads must stall the handshake (no adoption)
// rather than corrupt receivers; the RM's change then never completes, but
// the cluster keeps serving under the old configuration.
TEST(StrategyInstallTest, FutureWireVersionIsNotAdopted) {
  Cluster cluster(small_cluster(23));
  cluster.preload(100, 1024);
  cluster.set_workload(workload::ycsb_a(100));
  cluster.run_for(seconds(1));

  kv::NewQuorumMsg msg;
  msg.epno = cluster.rm().config().epno;
  msg.cfno = cluster.rm().config().cfno + 1;
  msg.change.is_global = true;
  msg.change.global = QuorumConfig::of(1, 5);
  msg.strategy_version = QuorumStrategy::kWireVersion + 1;
  cluster.network().send(sim::rm_id(), sim::proxy_id(0), msg);
  cluster.run_for(seconds(1));
  EXPECT_EQ(cluster.proxy(0).default_quorum(), QuorumConfig::of(3, 3));
  EXPECT_FALSE(cluster.proxy(0).in_transition());
}

// ---------------------------------------------- chaos with a strategy live

// The tab8-style chaos schedule with an explicit strategy installed mid-run:
// zero consistency violations, zero intersection-audit findings, and a
// byte-identical rerun.
TEST(StrategyChaosTest, ExplicitStrategySurvivesChaos) {
  ClusterConfig config = small_cluster(5);
  config.net_loss = 0.01;
  config.net_duplication = 0.005;
  config.client_retry_timeout = milliseconds(500);
  Cluster cluster(config);
  cluster.preload(400, 1024);
  cluster.set_workload(workload::ycsb_a(400));
  cluster.run_for(seconds(2));
  cluster.reconfigure_strategy(rows_and_transversals());

  NemesisOptions options;
  options.mean_interval = milliseconds(400);
  options.partition = 1.0;
  options.loss_burst = 1.0;
  options.restart = 3.0;
  options.seed = 66;
  Nemesis nemesis(cluster, options);
  nemesis.start();
  cluster.run_for(seconds(20));
  nemesis.stop();
  cluster.heal_all_partitions();
  cluster.stop_clients();
  cluster.run_for(seconds(20));

  EXPECT_TRUE(cluster.checker().clean());
  EXPECT_TRUE(cluster.checker().quorum_violations().empty());
  for (std::uint32_t i = 0; i < cluster.num_clients(); ++i) {
    EXPECT_FALSE(cluster.client(i).op_in_flight()) << "client " << i;
  }
}

// --------------------------------------------------- optimizer smoke tests

TEST(StrategyOptimizerTest, BeatsBestUniformGridOnBalancedMix) {
  const oracle::StrategyOptimizer optimizer(5);
  oracle::WorkloadFeatures features;
  features.write_ratio = 0.5;
  const QuorumStrategy best = optimizer.optimize(features);
  const auto best_score = optimizer.evaluate(best, 0.5);
  // Best uniform grid at a 50/50 mix carries (fr*r + fw*w)/n = 0.6 load;
  // the rows/transversal system reaches 0.5.
  double best_grid = 1.0;
  for (int w = 1; w <= 5; ++w) {
    const auto score = optimizer.evaluate(
        QuorumStrategy::majority(5 - w + 1, w, 5), 0.5);
    best_grid = std::min(best_grid, score.max_load);
  }
  EXPECT_LT(best_score.max_load, best_grid);
  EXPECT_TRUE(best.valid(5));
  EXPECT_FALSE(best.is_majority());
}

TEST(StrategyOptimizerTest, RespectsConstraints) {
  oracle::QuorumConstraints constraints;
  constraints.min_write = 4;  // every write quorum >= 4 replicas
  const oracle::StrategyOptimizer optimizer(5, constraints);
  oracle::WorkloadFeatures features;
  features.write_ratio = 0.2;
  const QuorumStrategy best = optimizer.optimize(features);
  EXPECT_TRUE(best.valid(5));
  EXPECT_GE(best.min_write_size(), 4);
}

TEST(StrategyOptimizerTest, OptimizationIsDeterministic) {
  const oracle::StrategyOptimizer optimizer(5);
  oracle::WorkloadFeatures features;
  features.write_ratio = 0.3;
  EXPECT_EQ(optimizer.optimize(features), optimizer.optimize(features));
}

}  // namespace
}  // namespace qopt
