// Dynamic complement to the qopt_perf static linter: a counting global
// operator new hook runs a steady-state cluster workload and asserts the
// engine's per-event allocation count stays under an explicit budget.
// The static rules catch patterns; this gate catches what they cannot see
// (allocations behind aliases, library internals, growth that never
// plateaus). The budget is amortized per simulator event over a long
// window, so one-off warm-up growth does not dominate.
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <new>
#include <string>

#include <gtest/gtest.h>

#include "core/cluster.hpp"
#include "util/time.hpp"
#include "workload/workload.hpp"

namespace {

std::atomic<std::uint64_t> g_alloc_count{0};
std::atomic<bool> g_counting{false};

void* counted_alloc(std::size_t size) {
  if (g_counting.load(std::memory_order_relaxed)) {
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  }
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

}  // namespace

// Replaceable global allocation functions: every `new` in the binary —
// engine, library internals, test harness — routes through here. Counting
// is gated so only the measurement window below is recorded.
void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

TEST(AllocGateTest, SteadyStateStaysWithinPerEventBudget) {
  qopt::ClusterConfig config;
  // The gate measures the engine, not the test harness: the consistency
  // checker's history log grows per operation by design and span tracing
  // is off by default.
  config.check_consistency = false;
  config.seed = 7;
  qopt::Cluster cluster(config);
  cluster.preload(1024, 4096);
  cluster.set_workload(qopt::workload::ycsb_b(1024));

  // Warm-up: dedup windows, vector capacities, metrics reservoirs, and the
  // placement scratch all reach their steady-state footprint.
  cluster.run_for(qopt::seconds(2));

  const std::uint64_t events_before = cluster.simulator().events_processed();
  g_alloc_count.store(0);
  g_counting.store(true);
  cluster.run_for(qopt::seconds(8));
  g_counting.store(false);

  const std::uint64_t events =
      cluster.simulator().events_processed() - events_before;
  const std::uint64_t allocs = g_alloc_count.load();
  ASSERT_GT(events, 10'000u) << "workload did not reach steady state";

  // Budget: at most 2 heap allocations per simulated event, amortized.
  // Today's engine measures ~1.3: roughly one std::function per scheduled
  // event plus per-operation PendingOp bookkeeping (both tracked as the
  // qopt_perf baseline backlog). The bound leaves jitter headroom but any
  // systematic +1-per-event regression — reintroduced container churn,
  // message copies, per-event formatting — fails the gate.
  const double per_event =
      static_cast<double>(allocs) / static_cast<double>(events);
  RecordProperty("allocs_per_event", std::to_string(per_event));
  std::printf("[alloc-gate] %llu allocations / %llu events = %.3f per event\n",
              static_cast<unsigned long long>(allocs),
              static_cast<unsigned long long>(events), per_event);
  EXPECT_LE(per_event, 2.0)
      << allocs << " allocations over " << events << " events ("
      << per_event << " per event)";
}

}  // namespace
