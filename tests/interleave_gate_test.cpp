// Exhaustive small-scope interleaving gate (the dynamic complement of the
// qopt_proto static analyzer).
//
// The deterministic simulator gained a schedule-override hook
// (sim::Simulator::set_schedule_chooser): when installed, each step stages
// the up-to-W earliest pending events and lets the chooser decide which one
// runs next. This test drives that hook with a DFS over choice-sequence
// prefixes — the standard stateless-exploration trick — to enumerate EVERY
// delivery ordering (within window W, branching depth D) of the in-flight
// messages of a tiny cluster pushed through a concurrent read/write/
// reconfiguration window.
//
// For every explored schedule the gate asserts the full consistency
// contract:
//   * zero Dynamic Quorum Consistency violations (stale reads),
//   * the reconfiguration completes (no stuck two-phase protocol),
//   * no client is left with an operation in flight after the drain,
//   * all replicas converge to identical contents once in-flight traffic
//     drains (messages are reordered, never lost).
// A second full pass re-runs the exploration and must reproduce the exact
// schedule set and per-schedule outcomes (same-seed determinism).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "core/cluster.hpp"
#include "kv/replicator.hpp"
#include "kv/types.hpp"
#include "workload/workload.hpp"

namespace qopt {
namespace {

// Exploration bounds: window W = how many earliest events compete at each
// decision point, depth D = how many leading decision points branch (later
// decisions take the canonical earliest-first event). W^D bounds the
// schedule count; the run below must surface at least kMinSchedules
// distinct interleavings to satisfy the gate.
constexpr std::size_t kWindow = 2;
constexpr std::size_t kDepth = 11;
constexpr std::size_t kMinSchedules = 1000;

constexpr std::uint64_t kObjects = 4;
constexpr std::uint64_t kObjectBytes = 64;

struct RunOutcome {
  // Number of candidates offered at each of the first kDepth decision
  // points (drives the DFS frontier).
  std::vector<std::size_t> branching;
  std::uint64_t violations = 0;
  std::uint64_t ops_completed = 0;
  bool reconfig_done = false;
  bool reconfig_ok = false;
  bool client_stuck = false;
  bool replicas_converged = false;
  std::uint64_t fingerprint = 0;  // FNV-1a over the decision trace + outcome
};

void fnv_mix(std::uint64_t& h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xffu;
    h *= 1099511628211ull;
  }
}

// Runs one schedule: decisions 0..prefix.size()-1 follow `prefix`, later
// decisions take candidate 0 (the canonical earliest event). Fully
// deterministic: same prefix, same everything.
RunOutcome run_schedule(const std::vector<std::size_t>& prefix) {
  ClusterConfig config;
  config.num_storage = 3;
  config.num_proxies = 2;
  config.clients_per_proxy = 1;
  config.replication = 3;
  config.initial_quorum = kv::QuorumConfig::of(2, 2);
  config.client_think_time = 0;
  config.check_consistency = true;
  config.seed = 7;

  Cluster cluster(config);
  cluster.preload(kObjects, kObjectBytes);
  cluster.set_workload(workload::ycsb_a(kObjects, kObjectBytes));
  // Writes stop at the write quorum; anti-entropy is what carries fresh
  // versions to the remaining replicas, so the drain below can insist on
  // full convergence (and the replicator runs under reordering too).
  kv::ReplicatorOptions anti_entropy;
  anti_entropy.interval = milliseconds(100);
  cluster.enable_anti_entropy(anti_entropy);

  // Warmup in canonical order: clients reach steady state, so the perturbed
  // window starts with reads, writes, and acks genuinely in flight.
  cluster.run_for(milliseconds(5));

  RunOutcome out;
  out.fingerprint = 1469598103934665603ull;  // FNV offset basis
  std::size_t depth = 0;
  cluster.simulator().set_schedule_chooser(
      [&](std::size_t candidates) {
        std::size_t pick = depth < prefix.size() ? prefix[depth] : 0;
        if (pick >= candidates) pick = 0;
        if (depth < kDepth) out.branching.push_back(candidates);
        ++depth;
        fnv_mix(out.fingerprint, (depth << 8) | pick);
        return pick;
      },
      kWindow);

  // The reconfiguration races the client traffic through the perturbed
  // window: NEWQ / ACKNEWQ / CONFIRM / ACKCONFIRM interleave with reads,
  // writes, and their quorum acks in every order the window allows.
  cluster.reconfigure(kv::QuorumConfig::of(3, 1), [&](bool ok) {
    out.reconfig_done = true;
    out.reconfig_ok = ok;
  });
  cluster.run_for(milliseconds(4));

  // Back to canonical order; let everything in flight drain.
  cluster.simulator().clear_schedule_chooser();
  cluster.stop_clients();
  cluster.run_for(seconds(1));

  out.violations = cluster.checker().violations().size();
  for (std::uint32_t c = 0; c < cluster.num_clients(); ++c) {
    if (cluster.client(c).op_in_flight()) out.client_stuck = true;
    out.ops_completed += cluster.client(c).ops_completed();
  }

  // Convergence: no message is ever lost, so once the queue drains every
  // replica must hold byte-identical contents.
  out.replicas_converged = true;
  const auto reference = cluster.storage(0).sorted_contents();
  for (std::uint32_t s = 1; s < config.num_storage; ++s) {
    const auto contents = cluster.storage(s).sorted_contents();
    if (contents.size() != reference.size()) {
      out.replicas_converged = false;
      break;
    }
    for (const auto& [oid, version] : reference) {
      const auto it = contents.find(oid);
      if (it == contents.end() || it->second.ts != version.ts ||
          it->second.value != version.value) {
        out.replicas_converged = false;
        break;
      }
    }
    if (!out.replicas_converged) break;
  }

  fnv_mix(out.fingerprint, out.violations);
  fnv_mix(out.fingerprint, out.ops_completed);
  fnv_mix(out.fingerprint, (out.reconfig_done ? 1u : 0u) |
                               (out.reconfig_ok ? 2u : 0u) |
                               (out.client_stuck ? 4u : 0u) |
                               (out.replicas_converged ? 8u : 0u));
  return out;
}

struct ExplorationResult {
  std::size_t schedules = 0;
  std::uint64_t set_hash = 0;  // order-independent hash of the schedule set
  std::size_t max_branch_depth = 0;
};

std::string prefix_label(const std::vector<std::size_t>& prefix) {
  std::string label = "[";
  for (std::size_t i = 0; i < prefix.size(); ++i) {
    if (i > 0) label += ' ';
    label += std::to_string(prefix[i]);
  }
  return label + "]";
}

// DFS over choice-sequence prefixes. Each explored prefix (trailing zeros
// implied) is one distinct execution; its children extend the prefix at its
// own length with every non-default candidate seen there. Every explored
// schedule must satisfy the full consistency contract.
void explore(ExplorationResult& result) {
  std::vector<std::vector<std::size_t>> frontier;
  frontier.push_back({});
  std::set<std::vector<std::size_t>> seen;  // DFS sanity: no duplicates

  while (!frontier.empty()) {
    const std::vector<std::size_t> prefix = std::move(frontier.back());
    frontier.pop_back();
    ASSERT_TRUE(seen.insert(prefix).second)
        << "duplicate schedule " << prefix_label(prefix);

    const RunOutcome out = run_schedule(prefix);
    ++result.schedules;
    fnv_mix(result.set_hash, out.fingerprint);

    ASSERT_EQ(out.violations, 0u)
        << "consistency violation under schedule " << prefix_label(prefix);
    ASSERT_TRUE(out.reconfig_done)
        << "reconfiguration wedged under schedule " << prefix_label(prefix);
    ASSERT_TRUE(out.reconfig_ok)
        << "reconfiguration failed under schedule " << prefix_label(prefix);
    ASSERT_FALSE(out.client_stuck)
        << "client stuck under schedule " << prefix_label(prefix);
    ASSERT_TRUE(out.replicas_converged)
        << "replicas diverged under schedule " << prefix_label(prefix);
    ASSERT_GT(out.ops_completed, 0u);

    // Children: this run took the default (earliest) event at every
    // decision point past its prefix. Branching any one of those points to
    // a non-default candidate — zero-padded up to it — yields a schedule
    // not seen before, and together they cover the whole choice tree.
    const std::size_t limit = std::min(kDepth, out.branching.size());
    for (std::size_t at = prefix.size(); at < limit; ++at) {
      result.max_branch_depth = std::max(result.max_branch_depth, at + 1);
      for (std::size_t c = 1; c < out.branching[at]; ++c) {
        std::vector<std::size_t> child = prefix;
        child.resize(at, 0);
        child.push_back(c);
        frontier.push_back(std::move(child));
      }
    }
  }
}

TEST(InterleaveGateTest, AllSmallScopeSchedulesPreserveTheContract) {
  ExplorationResult first;
  ASSERT_NO_FATAL_FAILURE(explore(first));
  EXPECT_GE(first.schedules, kMinSchedules)
      << "exploration bounds too tight: raise kDepth or kWindow";
  EXPECT_EQ(first.max_branch_depth, kDepth)
      << "window too short to reach the full branching depth";

  // Same-seed rerun: the schedule set and every per-schedule outcome must
  // be byte-identical.
  ExplorationResult second;
  ASSERT_NO_FATAL_FAILURE(explore(second));
  EXPECT_EQ(first.schedules, second.schedules);
  EXPECT_EQ(first.set_hash, second.set_hash);
}

// The hook itself: choosing the default candidate everywhere must replay
// the canonical schedule bit-for-bit.
TEST(InterleaveGateTest, NullChoiceMatchesCanonicalOrder) {
  const RunOutcome a = run_schedule({});
  const RunOutcome b = run_schedule({});
  EXPECT_EQ(a.fingerprint, b.fingerprint);
  EXPECT_EQ(a.ops_completed, b.ops_completed);
  EXPECT_EQ(a.violations, 0u);
}

}  // namespace
}  // namespace qopt
