#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/histogram.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/time.hpp"

namespace qopt {
namespace {

// ------------------------------------------------------------------- time

TEST(TimeTest, UnitConversions) {
  EXPECT_EQ(microseconds(1), 1000);
  EXPECT_EQ(milliseconds(1), 1'000'000);
  EXPECT_EQ(seconds(1.0), 1'000'000'000);
  EXPECT_DOUBLE_EQ(to_seconds(seconds(2.5)), 2.5);
  EXPECT_DOUBLE_EQ(to_millis(milliseconds(7)), 7.0);
}

TEST(TimeTest, FractionalSeconds) {
  EXPECT_EQ(seconds(0.5), 500'000'000);
  EXPECT_EQ(seconds(0.001), milliseconds(1));
}

// -------------------------------------------------------------------- rng

TEST(RngTest, DeterministicFromSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(RngTest, NextBelowIsInRange) {
  Rng rng(7);
  for (std::uint64_t bound : {1ULL, 2ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.next_below(bound), bound);
  }
}

TEST(RngTest, NextBelowOneAlwaysZero) {
  Rng rng(9);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.next_below(1), 0u);
}

TEST(RngTest, UniformIntInclusiveBounds) {
  Rng rng(11);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t v = rng.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.next_double();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, NextBelowIsApproximatelyUniform) {
  Rng rng(17);
  std::vector<int> counts(10, 0);
  const int n = 100'000;
  for (int i = 0; i < n; ++i) ++counts[rng.next_below(10)];
  for (int c : counts) {
    EXPECT_NEAR(c, n / 10, n / 10 * 0.1);
  }
}

TEST(RngTest, ChanceExtremes) {
  Rng rng(19);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(RngTest, ChanceMatchesProbability) {
  Rng rng(23);
  int hits = 0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) hits += rng.chance(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(29);
  double sum = 0;
  const int n = 200'000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(5.0);
  EXPECT_NEAR(sum / n, 5.0, 0.1);
}

TEST(RngTest, NormalMoments) {
  Rng rng(31);
  RunningStats stats;
  for (int i = 0; i < 200'000; ++i) stats.add(rng.normal(10.0, 2.0));
  EXPECT_NEAR(stats.mean(), 10.0, 0.05);
  EXPECT_NEAR(stats.stddev(), 2.0, 0.05);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(37);
  Rng child = parent.fork(1);
  Rng child2 = parent.fork(1);  // parent state advanced -> different child
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (child.next() == child2.next()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(RngTest, Mix64IsDeterministicAndSpreads) {
  EXPECT_EQ(mix64(123), mix64(123));
  EXPECT_NE(mix64(123), mix64(124));
}

// ------------------------------------------------------------------ stats

TEST(RunningStatsTest, EmptyDefaults) {
  RunningStats stats;
  EXPECT_TRUE(stats.empty());
  EXPECT_EQ(stats.count(), 0u);
  EXPECT_DOUBLE_EQ(stats.mean(), 0.0);
  EXPECT_DOUBLE_EQ(stats.variance(), 0.0);
}

TEST(RunningStatsTest, KnownSequence) {
  RunningStats stats;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) stats.add(v);
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  EXPECT_DOUBLE_EQ(stats.variance(), 4.0);
  EXPECT_DOUBLE_EQ(stats.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(stats.min(), 2.0);
  EXPECT_DOUBLE_EQ(stats.max(), 9.0);
  EXPECT_DOUBLE_EQ(stats.sum(), 40.0);
}

TEST(RunningStatsTest, MergeMatchesCombined) {
  RunningStats a;
  RunningStats b;
  RunningStats all;
  Rng rng(41);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(-5, 5);
    (i % 2 ? a : b).add(v);
    all.add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStatsTest, MergeWithEmpty) {
  RunningStats a;
  a.add(1.0);
  a.add(3.0);
  RunningStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_DOUBLE_EQ(empty.mean(), 2.0);
}

TEST(ReservoirSampleTest, ExactWhenUnderCapacity) {
  ReservoirSample sample(100);
  for (int i = 1; i <= 99; ++i) sample.add(i);
  EXPECT_DOUBLE_EQ(sample.percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(sample.percentile(100), 99.0);
  EXPECT_DOUBLE_EQ(sample.median(), 50.0);
}

TEST(ReservoirSampleTest, ApproximatesLargeStream) {
  ReservoirSample sample(2048, 5);
  for (int i = 0; i < 100'000; ++i) sample.add(i % 1000);
  EXPECT_NEAR(sample.median(), 500.0, 50.0);
  EXPECT_NEAR(sample.percentile(90), 900.0, 50.0);
}

TEST(ReservoirSampleTest, EmptyReturnsZero) {
  ReservoirSample sample(10);
  EXPECT_DOUBLE_EQ(sample.percentile(50), 0.0);
}

TEST(MovingAverageTest, WindowEviction) {
  MovingAverage avg(3);
  avg.add(1);
  avg.add(2);
  avg.add(3);
  EXPECT_DOUBLE_EQ(avg.mean(), 2.0);
  avg.add(10);  // evicts 1
  EXPECT_DOUBLE_EQ(avg.mean(), 5.0);
  EXPECT_TRUE(avg.full());
}

TEST(MovingAverageTest, PartialWindow) {
  MovingAverage avg(10);
  avg.add(4);
  EXPECT_DOUBLE_EQ(avg.mean(), 4.0);
  EXPECT_FALSE(avg.full());
  avg.reset();
  EXPECT_DOUBLE_EQ(avg.mean(), 0.0);
  EXPECT_EQ(avg.size(), 0u);
}

TEST(ExactPercentileTest, Interpolates) {
  EXPECT_DOUBLE_EQ(exact_percentile({1, 2, 3, 4}, 50), 2.5);
  EXPECT_DOUBLE_EQ(exact_percentile({5}, 99), 5.0);
  EXPECT_DOUBLE_EQ(exact_percentile({}, 50), 0.0);
}

// -------------------------------------------------------------- histogram

TEST(HistogramTest, BasicStats) {
  LatencyHistogram hist;
  for (double v : {1000.0, 2000.0, 3000.0}) hist.record(v);
  EXPECT_EQ(hist.count(), 3u);
  EXPECT_DOUBLE_EQ(hist.mean(), 2000.0);
  EXPECT_DOUBLE_EQ(hist.min(), 1000.0);
  EXPECT_DOUBLE_EQ(hist.max(), 3000.0);
}

TEST(HistogramTest, PercentileWithinResolution) {
  LatencyHistogram hist;
  Rng rng(43);
  std::vector<double> values;
  for (int i = 0; i < 50'000; ++i) {
    const double v = rng.uniform(1e3, 1e7);
    values.push_back(v);
    hist.record(v);
  }
  for (double pct : {10.0, 50.0, 90.0, 99.0}) {
    const double expected = exact_percentile(values, pct);
    EXPECT_NEAR(hist.percentile(pct), expected, expected * 0.05)
        << "pct=" << pct;
  }
}

TEST(HistogramTest, MergeEquivalentToUnion) {
  LatencyHistogram a;
  LatencyHistogram b;
  LatencyHistogram all;
  Rng rng(47);
  for (int i = 0; i < 10'000; ++i) {
    const double v = rng.uniform(1e3, 1e6);
    (i % 2 ? a : b).record(v);
    all.record(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.percentile(50), all.percentile(50), all.percentile(50) * 0.01);
  // Summation order differs between the two paths; allow float slack.
  EXPECT_NEAR(a.mean(), all.mean(), all.mean() * 1e-12);
}

TEST(HistogramTest, ResetClears) {
  LatencyHistogram hist;
  hist.record(5000.0);
  hist.reset();
  EXPECT_EQ(hist.count(), 0u);
  EXPECT_DOUBLE_EQ(hist.percentile(50), 0.0);
}

TEST(HistogramTest, ValuesBelowFloorClampToFirstBucket) {
  LatencyHistogram hist(100.0);
  hist.record(1.0);
  hist.record(50.0);
  EXPECT_EQ(hist.count(), 2u);
  EXPECT_LE(hist.percentile(99), 100.0);
}

}  // namespace
}  // namespace qopt
