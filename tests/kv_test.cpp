#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "kv/placement.hpp"
#include "kv/quorum.hpp"
#include "kv/service_model.hpp"
#include "kv/storage_node.hpp"
#include "kv/types.hpp"
#include "kv/wire.hpp"
#include "sim/ids.hpp"
#include "sim/network.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"

namespace qopt::kv {
namespace {

// ------------------------------------------------------------------ types

TEST(TimestampTest, TotalOrder) {
  const Timestamp a{100, 0, 1};
  const Timestamp b{100, 1, 0};
  const Timestamp c{200, 0, 0};
  EXPECT_LT(a, b);  // proxy id breaks time ties
  EXPECT_LT(b, c);
  EXPECT_LT(a, c);
  EXPECT_EQ(a, (Timestamp{100, 0, 1}));
}

TEST(QuorumConfigTest, Strictness) {
  EXPECT_TRUE(is_strict({3, 3}, 5));
  EXPECT_TRUE(is_strict({1, 5}, 5));
  EXPECT_TRUE(is_strict({5, 1}, 5));
  EXPECT_FALSE(is_strict({2, 3}, 5));  // 2+3 == 5, not >
  EXPECT_FALSE(is_strict({0, 6}, 5));  // out of range
  EXPECT_FALSE(is_strict({6, 1}, 5));
  EXPECT_TRUE(is_strict({1, 1}, 1));
  EXPECT_TRUE(is_strict({2, 2}, 3));
}

TEST(QuorumConfigTest, TransitionIsComponentwiseMax) {
  const QuorumConfig t = transition({1, 5}, {4, 2});
  EXPECT_EQ(t.read_q, 4);
  EXPECT_EQ(t.write_q, 5);
  // Transition with itself is identity.
  EXPECT_EQ(transition({3, 3}, {3, 3}), (QuorumConfig::of(3, 3)));
}

TEST(QuorumConfigTest, TransitionIntersectsBothConfigs) {
  // For strict old/new configs, the transition quorum must intersect the
  // read and write quorums of both (Section 5.1).
  const int n = 5;
  for (int w_old = 1; w_old <= n; ++w_old) {
    for (int w_new = 1; w_new <= n; ++w_new) {
      const QuorumConfig old_q{n - w_old + 1, w_old};
      const QuorumConfig new_q{n - w_new + 1, w_new};
      const QuorumConfig tran = transition(old_q, new_q);
      EXPECT_GT(tran.read_q + old_q.write_q, n);
      EXPECT_GT(tran.read_q + new_q.write_q, n);
      EXPECT_GT(tran.write_q + old_q.read_q, n);
      EXPECT_GT(tran.write_q + new_q.read_q, n);
    }
  }
}

// -------------------------------------------------------------- placement

TEST(PlacementTest, ReplicasAreDistinctAndInRange) {
  const Placement placement(10, 5, 1);
  for (ObjectId oid = 0; oid < 500; ++oid) {
    const auto replicas = placement.replicas(oid);
    ASSERT_EQ(replicas.size(), 5u);
    std::set<std::uint32_t> unique(replicas.begin(), replicas.end());
    EXPECT_EQ(unique.size(), 5u) << "duplicate replica for oid " << oid;
    for (std::uint32_t r : replicas) EXPECT_LT(r, 10u);
  }
}

TEST(PlacementTest, Deterministic) {
  const Placement a(10, 3, 42);
  const Placement b(10, 3, 42);
  for (ObjectId oid = 0; oid < 100; ++oid) {
    EXPECT_EQ(a.replicas(oid), b.replicas(oid));
  }
}

TEST(PlacementTest, SeedChangesLayout) {
  const Placement a(10, 3, 1);
  const Placement b(10, 3, 2);
  int different = 0;
  for (ObjectId oid = 0; oid < 100; ++oid) {
    if (a.replicas(oid) != b.replicas(oid)) ++different;
  }
  EXPECT_GT(different, 50);
}

TEST(PlacementTest, LoadIsRoughlyBalanced) {
  const Placement placement(10, 5, 7);
  std::map<std::uint32_t, int> counts;
  const int objects = 20'000;
  for (ObjectId oid = 0; oid < objects; ++oid) {
    for (std::uint32_t r : placement.replicas(oid)) ++counts[r];
  }
  const double expected = objects * 5 / 10.0;
  for (const auto& [node, count] : counts) {
    EXPECT_NEAR(count, expected, expected * 0.05) << "node " << node;
  }
}

TEST(PlacementTest, FullReplicationUsesAllNodes) {
  const Placement placement(5, 5, 3);
  const auto replicas = placement.replicas(123);
  std::set<std::uint32_t> unique(replicas.begin(), replicas.end());
  EXPECT_EQ(unique.size(), 5u);
}

TEST(PlacementTest, InvalidReplicationThrows) {
  EXPECT_THROW(Placement(3, 5, 0), std::invalid_argument);
  EXPECT_THROW(Placement(3, 0, 0), std::invalid_argument);
}

// ---------------------------------------------------------- service model

TEST(ServiceModelTest, WritesSlowerThanReads) {
  ServiceTimes service;
  Rng rng(5);
  double read_sum = 0;
  double write_sum = 0;
  for (int i = 0; i < 5000; ++i) {
    read_sum += static_cast<double>(service.read_time(4096, rng));
    write_sum += static_cast<double>(service.write_time(4096, rng));
  }
  EXPECT_GT(write_sum, read_sum);
}

TEST(ServiceModelTest, SizeIncreasesServiceTime) {
  ServiceTimes service;
  service.read_jitter = 0;  // deterministic part only
  service.write_jitter = 0;
  Rng rng(5);
  EXPECT_GT(service.read_time(1 << 20, rng), service.read_time(1024, rng));
  EXPECT_GT(service.write_time(1 << 20, rng), service.write_time(1024, rng));
}

TEST(ServicePoolTest, SerializesOnSingleServer) {
  ServicePool pool(1);
  const Time t1 = pool.submit(0, 100);
  const Time t2 = pool.submit(0, 100);
  EXPECT_EQ(t1, 100);
  EXPECT_EQ(t2, 200);  // queued behind the first
}

TEST(ServicePoolTest, ParallelServers) {
  ServicePool pool(2);
  EXPECT_EQ(pool.submit(0, 100), 100);
  EXPECT_EQ(pool.submit(0, 100), 100);
  EXPECT_EQ(pool.submit(0, 100), 200);  // third op queues
}

TEST(ServicePoolTest, IdleServerStartsAtNow) {
  ServicePool pool(1);
  pool.submit(0, 50);
  EXPECT_EQ(pool.submit(1000, 50), 1050);
}

TEST(ServicePoolTest, UtilizationTracksBusyTime) {
  ServicePool pool(2);
  pool.submit(0, 100);
  pool.submit(0, 100);
  EXPECT_DOUBLE_EQ(pool.utilization(100), 1.0);
  EXPECT_DOUBLE_EQ(pool.utilization(200), 0.5);
}

// ------------------------------------------------------------ storage node

struct StorageFixture : ::testing::Test {
  using Net = sim::Network<Message>;

  sim::Simulator sim;
  Rng rng{17};
  Net net{sim, sim::LatencyModel{microseconds(50), 0}, rng};
  kv::ServiceTimes service;
  std::unique_ptr<StorageNode> node;
  std::vector<Message> proxy_inbox;

  void SetUp() override {
    service.read_jitter = 0;
    service.write_jitter = 0;
    node = std::make_unique<StorageNode>(sim, net, sim::storage_id(0),
                                         service, 2, Rng(1));
    net.register_node(sim::storage_id(0),
                      [this](const sim::NodeId& from, const Message& m) {
                        node->on_message(from, m);
                      });
    net.register_node(sim::proxy_id(0),
                      [this](const sim::NodeId&, const Message& m) {
                        proxy_inbox.push_back(m);
                      });
  }

  void send(const Message& m) {
    net.send(sim::proxy_id(0), sim::storage_id(0), m);
  }
};

TEST_F(StorageFixture, WriteThenReadReturnsVersion) {
  Version v;
  v.ts = {100, 0, 1};
  v.cfno = 0;
  v.value = 99;
  v.size_bytes = 4096;
  send(StorageWriteReq{7, 1, 0, v, {}});
  sim.run();
  ASSERT_EQ(proxy_inbox.size(), 1u);
  EXPECT_TRUE(std::holds_alternative<StorageWriteResp>(proxy_inbox[0]));

  send(StorageReadReq{7, 2, 0, {}});
  sim.run();
  ASSERT_EQ(proxy_inbox.size(), 2u);
  const auto& resp = std::get<StorageReadResp>(proxy_inbox[1]);
  EXPECT_TRUE(resp.found);
  EXPECT_EQ(resp.version.value, 99u);
  EXPECT_EQ(resp.version.ts, v.ts);
}

TEST_F(StorageFixture, ReadOfMissingObjectNotFound) {
  send(StorageReadReq{42, 1, 0, {}});
  sim.run();
  const auto& resp = std::get<StorageReadResp>(proxy_inbox.at(0));
  EXPECT_FALSE(resp.found);
}

TEST_F(StorageFixture, OlderWriteDiscardedButAcked) {
  Version newer;
  newer.ts = {200, 0, 1};
  newer.value = 2;
  Version older;
  older.ts = {100, 0, 1};
  older.value = 1;
  send(StorageWriteReq{7, 1, 0, newer, {}});
  sim.run();
  send(StorageWriteReq{7, 2, 0, older, {}});
  sim.run();
  EXPECT_EQ(proxy_inbox.size(), 2u);  // both acked
  EXPECT_TRUE(std::holds_alternative<StorageWriteResp>(proxy_inbox[1]));
  EXPECT_EQ(node->peek(7)->value, 2u);
  EXPECT_EQ(node->observability().registry().counter_value(
                obs::instrument_name("storage", 0, "writes_discarded")),
            1u);
}

TEST_F(StorageFixture, EqualTimestampHigherCfnoRefreshesTag) {
  Version v;
  v.ts = {100, 0, 1};
  v.cfno = 0;
  v.value = 5;
  send(StorageWriteReq{7, 1, 0, v, {}});
  sim.run();
  Version writeback = v;
  writeback.cfno = 3;  // read-repair write-back under a newer config
  send(StorageWriteReq{7, 2, 0, writeback, {}});
  sim.run();
  EXPECT_EQ(node->peek(7)->cfno, 3u);
  EXPECT_EQ(node->peek(7)->value, 5u);
}

TEST_F(StorageFixture, StaleEpochGetsNack) {
  FullConfig config;
  config.epno = 2;
  config.cfno = 1;
  config.default_q = QuorumConfig::of(2, 4);
  net.send(sim::rm_id(), sim::storage_id(0), NewEpochMsg{config, {}});
  sim.run();
  EXPECT_EQ(node->epoch(), 2u);

  send(StorageReadReq{7, 9, /*epno=*/1, {}});
  sim.run();
  bool got_nack = false;
  for (const Message& m : proxy_inbox) {
    if (const auto* nack = std::get_if<EpochNack>(&m)) {
      got_nack = true;
      EXPECT_EQ(nack->op_id, 9u);
      EXPECT_EQ(nack->config.epno, 2u);
      EXPECT_EQ(nack->config.default_q, (QuorumConfig::of(2, 4)));
    }
  }
  EXPECT_TRUE(got_nack);
  EXPECT_EQ(node->observability().registry().counter_value(
                obs::instrument_name("storage", 0, "nacks_sent")),
            1u);
}

TEST_F(StorageFixture, CurrentEpochOperationsServed) {
  FullConfig config;
  config.epno = 2;
  net.send(sim::rm_id(), sim::storage_id(0), NewEpochMsg{config, {}});
  sim.run();
  send(StorageReadReq{7, 1, /*epno=*/2, {}});
  sim.run();
  // One ACKNEWEP went to the RM; the proxy should see a read reply.
  bool got_read = false;
  for (const Message& m : proxy_inbox) {
    got_read |= std::holds_alternative<StorageReadResp>(m);
  }
  EXPECT_TRUE(got_read);
}

TEST_F(StorageFixture, OlderEpochMessageDoesNotRegress) {
  FullConfig newer;
  newer.epno = 5;
  net.send(sim::rm_id(), sim::storage_id(0), NewEpochMsg{newer, {}});
  sim.run();
  FullConfig older;
  older.epno = 3;
  net.send(sim::rm_id(), sim::storage_id(0), NewEpochMsg{older, {}});
  sim.run();
  EXPECT_EQ(node->epoch(), 5u);
}

TEST_F(StorageFixture, WritesQueueOnServicePool) {
  // Two servers: three concurrent writes, the third completes later.
  Version v;
  v.ts = {100, 0, 1};
  v.size_bytes = 0;
  send(StorageWriteReq{1, 1, 0, v, {}});
  send(StorageWriteReq{2, 2, 0, v, {}});
  send(StorageWriteReq{3, 3, 0, v, {}});
  sim.run();
  EXPECT_EQ(proxy_inbox.size(), 3u);
  EXPECT_EQ(node->object_count(), 3u);
  // Utilization over the busy interval must be positive.
  EXPECT_GT(node->service_pool().total_busy(), 0);
}

TEST_F(StorageFixture, CrashedNodeIsSilent) {
  node->crash();
  send(StorageReadReq{7, 1, 0, {}});
  sim.run();
  EXPECT_TRUE(proxy_inbox.empty());
}

TEST_F(StorageFixture, PreloadBypassesProtocol) {
  Version v;
  v.ts = {0, 0, 0};
  v.value = 77;
  node->preload(123, v);
  send(StorageReadReq{123, 1, 0, {}});
  sim.run();
  const auto& resp = std::get<StorageReadResp>(proxy_inbox.at(0));
  EXPECT_TRUE(resp.found);
  EXPECT_EQ(resp.version.value, 77u);
}

}  // namespace
}  // namespace qopt::kv
