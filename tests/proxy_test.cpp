// Unit tests for the proxy's quorum read/write logic (Algorithms 3-5),
// driven through a mini-harness: real storage nodes and a real proxy, with
// the client / RM ends faked by capturing raw wire messages.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "kv/placement.hpp"
#include "kv/quorum.hpp"
#include "kv/service_model.hpp"
#include "kv/storage_node.hpp"
#include "kv/types.hpp"
#include "kv/wire.hpp"
#include "obs/obs.hpp"
#include "proxy/proxy.hpp"
#include "sim/ids.hpp"
#include "sim/network.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace qopt::proxy {
namespace {

using kv::Message;
using kv::QuorumConfig;

constexpr std::uint32_t kStorage = 5;
constexpr int kReplication = 5;  // every object on every node: deterministic

struct ProxyHarness : ::testing::Test {
  using Net = sim::Network<Message>;

  sim::Simulator sim;
  Net net{sim, sim::LatencyModel{microseconds(100), 0}, Rng(1)};
  kv::Placement placement{kStorage, kReplication, 0};
  obs::Observability telemetry;  // shared by the proxy and all storage nodes
  std::vector<std::unique_ptr<kv::StorageNode>> storage;
  std::unique_ptr<Proxy> proxy;
  std::vector<Message> client_inbox;
  std::vector<Message> rm_inbox;

  void SetUp() override { build({1, 5}); }

  void build(QuorumConfig initial) {
    client_inbox.clear();
    rm_inbox.clear();
    storage.clear();
    telemetry.registry().reset();
    kv::ServiceTimes service;
    service.read_jitter = 0;
    service.write_jitter = 0;
    for (std::uint32_t i = 0; i < kStorage; ++i) {
      storage.push_back(std::make_unique<kv::StorageNode>(
          sim, net, sim::storage_id(i), service, 2, Rng(100 + i),
          &telemetry));
      kv::StorageNode* raw = storage.back().get();
      net.register_node(sim::storage_id(i),
                        [raw](const sim::NodeId& from, const Message& m) {
                          raw->on_message(from, m);
                        });
    }
    ProxyOptions options;
    options.initial = initial;
    proxy = std::make_unique<Proxy>(sim, net, sim::proxy_id(0), placement,
                                    options, &telemetry);
    net.register_node(sim::proxy_id(0),
                      [this](const sim::NodeId& from, const Message& m) {
                        proxy->on_message(from, m);
                      });
    net.register_node(sim::client_id(0),
                      [this](const sim::NodeId&, const Message& m) {
                        client_inbox.push_back(m);
                      });
    net.register_node(sim::rm_id(),
                      [this](const sim::NodeId&, const Message& m) {
                        rm_inbox.push_back(m);
                      });
  }

  void client_write(kv::ObjectId oid, std::uint64_t req, std::uint64_t value,
                    std::uint64_t size = 1024) {
    net.send(sim::client_id(0), sim::proxy_id(0),
             kv::ClientWriteReq{oid, req, value, size});
  }

  void client_read(kv::ObjectId oid, std::uint64_t req) {
    net.send(sim::client_id(0), sim::proxy_id(0),
             kv::ClientReadReq{oid, req});
  }

  /// RM-side: run the full two-phase handshake for a change.
  void install(std::uint64_t epno, std::uint64_t cfno,
               kv::QuorumChange change) {
    net.send(sim::rm_id(), sim::proxy_id(0),
             kv::NewQuorumMsg{epno, cfno, std::move(change), {}});
    sim.run();
    net.send(sim::rm_id(), sim::proxy_id(0), kv::ConfirmMsg{epno, cfno, {}});
    sim.run();
  }

  void install_global(std::uint64_t epno, std::uint64_t cfno,
                      QuorumConfig q) {
    kv::QuorumChange change;
    change.is_global = true;
    change.global = q;
    install(epno, cfno, std::move(change));
  }

  /// Registry value of the proxy's `proxy.0.<field>` counter.
  std::uint64_t proxy_metric(const char* field) const {
    return telemetry.registry().counter_value(
        obs::instrument_name("proxy", 0, field));
  }

  std::uint64_t total_reads_served() const {
    std::uint64_t total = 0;
    for (std::uint32_t i = 0; i < kStorage; ++i) {
      total += telemetry.registry().counter_value(
          obs::instrument_name("storage", i, "reads_served"));
    }
    return total;
  }

  std::uint64_t replicas_holding(kv::ObjectId oid) const {
    std::uint64_t count = 0;
    for (const auto& node : storage) count += node->peek(oid) != nullptr;
    return count;
  }
};

TEST_F(ProxyHarness, WriteContactsExactlyWriteQuorum) {
  build({4, 2});
  client_write(7, 1, 99);
  sim.run();
  ASSERT_EQ(client_inbox.size(), 1u);
  EXPECT_TRUE(std::holds_alternative<kv::ClientWriteResp>(client_inbox[0]));
  EXPECT_EQ(replicas_holding(7), 2u);  // W=2
}

TEST_F(ProxyHarness, ReadContactsExactlyReadQuorum) {
  build({3, 3});
  client_write(7, 1, 99);
  sim.run();
  const std::uint64_t reads_before = total_reads_served();
  client_read(7, 2);
  sim.run();
  EXPECT_EQ(total_reads_served() - reads_before, 3u);  // R=3
}

TEST_F(ProxyHarness, ReadReturnsFreshestVersionInQuorum) {
  build({5, 1});  // writes land on one replica; R=5 must find the freshest
  client_write(7, 1, 111);
  sim.run();
  client_write(7, 2, 222);
  sim.run();
  client_read(7, 3);
  sim.run();
  ASSERT_EQ(client_inbox.size(), 3u);
  const auto& resp = std::get<kv::ClientReadResp>(client_inbox[2]);
  EXPECT_TRUE(resp.found);
  EXPECT_EQ(resp.version.value, 222u);
}

TEST_F(ProxyHarness, ReadOfUnknownObjectNotFound) {
  client_read(42, 1);
  sim.run();
  const auto& resp = std::get<kv::ClientReadResp>(client_inbox.at(0));
  EXPECT_FALSE(resp.found);
  EXPECT_EQ(proxy_metric("not_found_reads"), 1u);
}

TEST_F(ProxyHarness, NewQuorumAckedAndConfirmedSwitchesConfig) {
  EXPECT_EQ(proxy->default_quorum(), (QuorumConfig::of(1, 5)));
  install_global(0, 1, {4, 2});
  EXPECT_EQ(proxy->default_quorum(), (QuorumConfig::of(4, 2)));
  EXPECT_EQ(proxy->cfno(), 1u);
  EXPECT_FALSE(proxy->in_transition());
  // Both an ACKNEWQ and an ACKCONFIRM must have reached the RM.
  bool acked_newq = false;
  bool acked_confirm = false;
  for (const Message& m : rm_inbox) {
    acked_newq |= std::holds_alternative<kv::AckNewQuorumMsg>(m);
    acked_confirm |= std::holds_alternative<kv::AckConfirmMsg>(m);
  }
  EXPECT_TRUE(acked_newq);
  EXPECT_TRUE(acked_confirm);
}

TEST_F(ProxyHarness, TransitionQuorumIsMaxOfOldAndNew) {
  build({1, 5});
  net.send(sim::rm_id(), sim::proxy_id(0),
           kv::NewQuorumMsg{0, 1,
                            kv::QuorumChange{true, QuorumConfig::of(5, 1), {}}, {}});
  sim.run();
  EXPECT_TRUE(proxy->in_transition());
  // max(1,5)=5 reads, max(5,1)=5 writes during the transition.
  EXPECT_EQ(proxy->effective_quorum(7), (QuorumConfig::of(5, 5)));
  net.send(sim::rm_id(), sim::proxy_id(0), kv::ConfirmMsg{0, 1, {}});
  sim.run();
  EXPECT_EQ(proxy->effective_quorum(7), (QuorumConfig::of(5, 1)));
}

TEST_F(ProxyHarness, DrainDelaysAckUntilPendingOpsComplete) {
  build({1, 5});
  client_write(7, 1, 99);  // in flight once the proxy processes it
  // Let the proxy start the quorum phase but not finish (storage replies
  // take >= 200us round trip).
  sim.run(microseconds(450));
  EXPECT_EQ(proxy->pending_ops(), 1u);
  net.send(sim::rm_id(), sim::proxy_id(0),
           kv::NewQuorumMsg{0, 1, kv::QuorumChange{true, QuorumConfig::of(2, 4), {}}, {}});
  sim.run(microseconds(700));  // NEWQ delivered, op still pending
  bool acked = false;
  for (const Message& m : rm_inbox) {
    acked |= std::holds_alternative<kv::AckNewQuorumMsg>(m);
  }
  EXPECT_FALSE(acked) << "ACKNEWQ sent before the old-quorum op drained";
  sim.run();  // finish everything
  for (const Message& m : rm_inbox) {
    acked |= std::holds_alternative<kv::AckNewQuorumMsg>(m);
  }
  EXPECT_TRUE(acked);
  EXPECT_EQ(client_inbox.size(), 1u);
}

TEST_F(ProxyHarness, PerObjectOverrideApplied) {
  kv::QuorumChange change;
  change.is_global = false;
  change.overrides = {{7, QuorumConfig::of(5, 1)}, {8, QuorumConfig::of(3, 3)}};
  install(0, 1, std::move(change));
  EXPECT_EQ(proxy->effective_quorum(7), (QuorumConfig::of(5, 1)));
  EXPECT_EQ(proxy->effective_quorum(8), (QuorumConfig::of(3, 3)));
  EXPECT_EQ(proxy->effective_quorum(9), (QuorumConfig::of(1, 5)));  // default
  EXPECT_EQ(proxy->override_count(), 2u);
}

TEST_F(ProxyHarness, ReadRepairUsesHistoricalReadQuorum) {
  // cfno 0: {1,5}. Write under W=5. cfno 1: {5,1}: write lands on one
  // replica. cfno 2: {1,5} again: a read with R=1 may miss the cfno-1
  // version; the proxy must detect v.cfno < lcfno and re-read with the
  // largest historical read quorum (5), returning the fresh value.
  client_write(7, 1, 111);
  sim.run();
  install_global(0, 1, {5, 1});
  client_write(7, 2, 222);  // W=1
  sim.run();
  EXPECT_EQ(proxy->cfno(), 1u);
  install_global(0, 2, {1, 5});
  const auto repairs_before = proxy_metric("repair_reads");
  client_read(7, 3);
  sim.run();
  const auto& resp = std::get<kv::ClientReadResp>(client_inbox.back());
  ASSERT_TRUE(resp.found);
  EXPECT_EQ(resp.version.value, 222u) << "stale version returned";
  EXPECT_GE(proxy_metric("repair_reads"), repairs_before);
}

TEST_F(ProxyHarness, RepairedValueWrittenBackUnderCurrentConfig) {
  client_write(7, 1, 111);
  sim.run();
  install_global(0, 1, {5, 1});
  client_write(7, 2, 222);
  sim.run();
  install_global(0, 2, {1, 5});
  client_read(7, 3);
  sim.run();
  EXPECT_GE(proxy_metric("writebacks"), 1u);
  // After the write-back (W=5), the fresh value lives on all replicas with
  // the current cfno: a later R=1 read needs no repair.
  const auto repairs = proxy_metric("repair_reads");
  client_read(7, 4);
  sim.run();
  EXPECT_EQ(proxy_metric("repair_reads"), repairs);
  const auto& resp = std::get<kv::ClientReadResp>(client_inbox.back());
  EXPECT_EQ(resp.version.value, 222u);
}

TEST_F(ProxyHarness, NackResynchronizesAndRetries) {
  // Advance the storage nodes to epoch 3 with config {4,2} behind the
  // proxy's back (as an RM epoch change would).
  kv::FullConfig config;
  config.epno = 3;
  config.cfno = 2;
  config.default_q = QuorumConfig::of(4, 2);
  config.read_q_history = {{0, 1}, {1, 4}, {2, 4}};
  for (std::uint32_t i = 0; i < kStorage; ++i) {
    net.send(sim::rm_id(), sim::storage_id(i), kv::NewEpochMsg{config, {}});
  }
  sim.run();
  client_write(7, 1, 99);
  sim.run();
  // The operation was NACKed, the proxy adopted epoch 3 / config {4,2} and
  // re-executed; the client still gets exactly one reply.
  ASSERT_EQ(client_inbox.size(), 1u);
  EXPECT_TRUE(std::holds_alternative<kv::ClientWriteResp>(client_inbox[0]));
  EXPECT_GE(proxy_metric("nacks_received"), 1u);
  EXPECT_EQ(proxy_metric("op_retries"), 1u);
  EXPECT_EQ(proxy->epoch(), 3u);
  EXPECT_EQ(proxy->default_quorum(), (QuorumConfig::of(4, 2)));
  EXPECT_EQ(replicas_holding(7), 2u);  // retried with W=2
}

TEST_F(ProxyHarness, FallbackContactsRemainingReplicasOnStorageCrash) {
  build({3, 3});
  client_write(7, 1, 99);
  sim.run();
  // Crash two storage nodes that serve the proxy's preferred read subset.
  // Whichever two we pick, R=3 of 5 replicas stays reachable.
  storage[0]->crash();
  storage[1]->crash();
  client_read(7, 2);
  sim.run();
  ASSERT_EQ(client_inbox.size(), 2u);
  const auto& resp = std::get<kv::ClientReadResp>(client_inbox[1]);
  EXPECT_TRUE(resp.found);
  EXPECT_EQ(resp.version.value, 99u);
}

TEST_F(ProxyHarness, StaleNewQuorumStillAcked) {
  install_global(0, 1, {4, 2});
  const std::size_t acks_before = rm_inbox.size();
  // Re-deliver an old NEWQ (e.g. a retransmission): config must not change,
  // but the ACK must flow for RM progress.
  net.send(sim::rm_id(), sim::proxy_id(0),
           kv::NewQuorumMsg{0, 1, kv::QuorumChange{true, QuorumConfig::of(1, 5), {}}, {}});
  sim.run();
  EXPECT_EQ(proxy->default_quorum(), (QuorumConfig::of(4, 2)));
  EXPECT_GT(rm_inbox.size(), acks_before);
}

TEST_F(ProxyHarness, BackToBackNewQuorumCommitsPrevious) {
  net.send(sim::rm_id(), sim::proxy_id(0),
           kv::NewQuorumMsg{0, 1, kv::QuorumChange{true, QuorumConfig::of(2, 4), {}}, {}});
  sim.run();
  EXPECT_TRUE(proxy->in_transition());
  // Second NEWQ arrives without an intervening CONFIRM (the RM finalized
  // round 1 via an epoch change we did not see).
  net.send(sim::rm_id(), sim::proxy_id(0),
           kv::NewQuorumMsg{1, 2, kv::QuorumChange{true, QuorumConfig::of(3, 3), {}}, {}});
  sim.run();
  EXPECT_TRUE(proxy->in_transition());
  // Transition base is the committed round-1 config {2,4}: max -> {3,4}.
  EXPECT_EQ(proxy->effective_quorum(7), (QuorumConfig::of(3, 4)));
  net.send(sim::rm_id(), sim::proxy_id(0), kv::ConfirmMsg{1, 2, {}});
  sim.run();
  EXPECT_EQ(proxy->default_quorum(), (QuorumConfig::of(3, 3)));
}

TEST_F(ProxyHarness, CrashedProxyStopsResponding) {
  proxy->crash();
  client_read(7, 1);
  sim.run();
  EXPECT_TRUE(client_inbox.empty());
}

TEST_F(ProxyHarness, MonitoringRoundReportsStats) {
  client_write(7, 1, 99, 2048);
  sim.run();
  net.send(sim::am_id(), sim::proxy_id(0),
           kv::NewTopKMsg{0, {7}});
  sim.run();
  std::vector<Message> am_inbox;
  net.register_node(sim::am_id(),
                    [&](const sim::NodeId&, const Message& m) {
                      am_inbox.push_back(m);
                    });
  net.send(sim::am_id(), sim::proxy_id(0),
           kv::NewRoundMsg{1, milliseconds(100)});
  sim.run(sim.now() + milliseconds(40));
  client_write(7, 2, 100, 2048);
  client_read(7, 3);
  client_read(8, 4);
  sim.run();
  ASSERT_EQ(am_inbox.size(), 1u);
  const auto& stats = std::get<kv::RoundStatsMsg>(am_inbox[0]);
  EXPECT_EQ(stats.round, 1u);
  ASSERT_EQ(stats.stats_topk.size(), 1u);
  EXPECT_EQ(stats.stats_topk[0].oid, 7u);
  EXPECT_EQ(stats.stats_topk[0].writes, 1u);
  EXPECT_EQ(stats.stats_topk[0].reads, 1u);
  EXPECT_GT(stats.stats_topk[0].avg_size_bytes, 0.0);
  // Object 8 (not monitored, no override) lands in the tail aggregate.
  EXPECT_GE(stats.stats_tail.reads, 1u);
  EXPECT_GT(stats.throughput_ops, 0.0);
  // Candidate hotspots exclude the already-monitored object 7.
  for (const auto& candidate : stats.topk) EXPECT_NE(candidate.oid, 7u);
}

}  // namespace
}  // namespace qopt::proxy
