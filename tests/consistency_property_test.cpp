// Property-based tests of Dynamic Quorum Consistency (Section 5): across
// randomized seeds, workloads, quorum ping-pong, per-object churn, crashes
// and false suspicions, every read must return a version at least as fresh
// as the last write that completed before it started. Parameterized gtest
// sweeps give wide schedule coverage.
#include <gtest/gtest.h>

#include <cstdint>
#include <tuple>

#include "autonomic/autonomic_manager.hpp"
#include "core/cluster.hpp"
#include "kv/types.hpp"
#include "util/rng.hpp"
#include "workload/workload.hpp"

namespace qopt {
namespace {

ClusterConfig base_config(std::uint64_t seed) {
  ClusterConfig config;
  config.num_storage = 5;
  config.num_proxies = 3;
  config.clients_per_proxy = 3;
  config.replication = 5;
  config.initial_quorum = {3, 3};
  config.seed = seed;
  config.check_consistency = true;
  return config;
}

void expect_clean(const Cluster& cluster) {
  const auto& violations = cluster.checker().violations();
  ASSERT_TRUE(violations.empty())
      << violations.size() << " consistency violations; first on object "
      << violations.front().oid << " at t=" << violations.front().read_start;
  EXPECT_GT(cluster.checker().reads_checked(), 100u);
}

// ----------------------------------------------------- reconfig ping-pong

class ReconfigPingPong
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, double>> {};

TEST_P(ReconfigPingPong, ReadsNeverStale) {
  const auto [seed, write_ratio] = GetParam();
  Cluster cluster(base_config(seed));
  cluster.preload(300, 1024);
  workload::WorkloadSpec spec;
  spec.write_ratio = write_ratio;
  spec.keys = std::make_shared<workload::ZipfianKeys>(300);
  cluster.set_workload(std::make_shared<workload::BasicWorkload>(spec));
  Rng rng(seed * 31 + 7);
  cluster.run_for(milliseconds(500));
  for (int i = 0; i < 8; ++i) {
    const int w = static_cast<int>(rng.next_below(5)) + 1;
    cluster.reconfigure({5 - w + 1, w});
    cluster.run_for(milliseconds(300 + rng.next_below(700)));
  }
  cluster.run_for(seconds(2));
  expect_clean(cluster);
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, ReconfigPingPong,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 5, 6, 7, 8),
                       ::testing::Values(0.1, 0.5, 0.9)),
    [](const auto& param_info) {
      return "seed" + std::to_string(std::get<0>(param_info.param)) + "_w" +
             std::to_string(static_cast<int>(std::get<1>(param_info.param) * 100));
    });

// --------------------------------------------------- per-object churn

class PerObjectChurn : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PerObjectChurn, OverridesPreserveConsistency) {
  const std::uint64_t seed = GetParam();
  Cluster cluster(base_config(seed));
  cluster.preload(100, 1024);
  workload::WorkloadSpec spec;
  spec.write_ratio = 0.5;
  spec.keys = std::make_shared<workload::UniformKeys>(100);
  cluster.set_workload(std::make_shared<workload::BasicWorkload>(spec));
  Rng rng(seed);
  cluster.run_for(milliseconds(300));
  for (int round = 0; round < 6; ++round) {
    std::vector<std::pair<kv::ObjectId, kv::QuorumConfig>> overrides;
    for (int i = 0; i < 5; ++i) {
      const kv::ObjectId oid = rng.next_below(100);
      const int w = static_cast<int>(rng.next_below(5)) + 1;
      overrides.emplace_back(oid, kv::QuorumConfig::of(5 - w + 1, w));
    }
    cluster.reconfigure_objects(std::move(overrides));
    cluster.run_for(milliseconds(200 + rng.next_below(500)));
  }
  cluster.run_for(seconds(2));
  expect_clean(cluster);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PerObjectChurn,
                         ::testing::Range<std::uint64_t>(10, 20));

// ------------------------------------------------ failures during reconfig

class FailureSchedule : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FailureSchedule, FalseSuspicionsAndCrashesAreSafe) {
  const std::uint64_t seed = GetParam();
  Cluster cluster(base_config(seed));
  cluster.preload(200, 1024);
  workload::WorkloadSpec spec;
  spec.write_ratio = 0.4;
  spec.keys = std::make_shared<workload::ZipfianKeys>(200);
  cluster.set_workload(std::make_shared<workload::BasicWorkload>(spec));
  Rng rng(seed ^ 0xF00D);
  cluster.run_for(milliseconds(300));

  bool crashed_one = false;
  for (int i = 0; i < 6; ++i) {
    // Randomly interleave reconfigurations with failure events.
    const int w = static_cast<int>(rng.next_below(5)) + 1;
    cluster.reconfigure({5 - w + 1, w});
    const auto choice = rng.next_below(4);
    if (choice == 0) {
      cluster.inject_false_suspicion(
          static_cast<std::uint32_t>(rng.next_below(3)),
          milliseconds(200 + rng.next_below(800)));
    } else if (choice == 1 && !crashed_one) {
      // Crash at most one proxy (its clients stall, as in a real outage).
      cluster.crash_proxy(2);
      crashed_one = true;
    }
    cluster.run_for(milliseconds(300 + rng.next_below(700)));
  }
  cluster.run_for(seconds(3));
  expect_clean(cluster);
  // Liveness: reconfigurations terminated despite suspicions.
  EXPECT_EQ(cluster.obs().registry().counter_value("rm.reconfigurations_completed"), 6u);
  EXPECT_FALSE(cluster.rm().busy());
}

INSTANTIATE_TEST_SUITE_P(Seeds, FailureSchedule,
                         ::testing::Range<std::uint64_t>(30, 42));

// --------------------------------------------- autotuning under churn

class AutotunedChurn : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AutotunedChurn, SelfTuningNeverViolatesConsistency) {
  const std::uint64_t seed = GetParam();
  Cluster cluster(base_config(seed));
  cluster.preload(1000, 2048);
  // Phase-shifting workload forces repeated adaptation.
  cluster.set_workload(std::make_shared<workload::PhasedWorkload>(
      std::vector<workload::PhasedWorkload::Phase>{
          {seconds(15), workload::ycsb_b(1000)},
          {seconds(15), workload::backup_c(1000)}}));
  autonomic::AutonomicOptions options;
  options.round_window = seconds(2);
  options.quarantine = milliseconds(500);
  cluster.enable_autotuning(options);
  cluster.run_for(seconds(70));
  expect_clean(cluster);
  EXPECT_GT(cluster.obs().registry().counter_value("rm.reconfigurations_completed"), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AutotunedChurn,
                         ::testing::Values(50, 51, 52, 53));

// ------------------------------------------------- storage-crash schedules

class StorageCrash : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StorageCrash, QuorumSurvivesMinorityStorageFailure) {
  const std::uint64_t seed = GetParam();
  ClusterConfig config = base_config(seed);
  config.num_storage = 6;
  config.initial_quorum = {3, 3};
  Cluster cluster(config);
  cluster.preload(200, 1024);
  workload::WorkloadSpec spec;
  spec.write_ratio = 0.5;
  spec.keys = std::make_shared<workload::UniformKeys>(200);
  cluster.set_workload(std::make_shared<workload::BasicWorkload>(spec));
  cluster.run_for(seconds(1));
  cluster.crash_storage(static_cast<std::uint32_t>(seed % 6));
  cluster.run_for(milliseconds(700));
  cluster.reconfigure({4, 2});
  cluster.run_for(seconds(3));
  expect_clean(cluster);
  EXPECT_EQ(cluster.obs().registry().counter_value("rm.reconfigurations_completed"), 1u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, StorageCrash,
                         ::testing::Range<std::uint64_t>(60, 66));

// ------------------------------------- organic suspicion via heartbeats

class HeartbeatChurn : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(HeartbeatChurn, OrganicSuspicionsNeverViolateConsistency) {
  // Suspicions come from real (paused/stopped) heartbeat traffic instead of
  // oracle injection; reconfigurations race against them.
  const std::uint64_t seed = GetParam();
  ClusterConfig config = base_config(seed);
  config.heartbeat_fd = true;
  config.heartbeat_interval = milliseconds(50);
  config.heartbeat_timeout = milliseconds(250);
  Cluster cluster(config);
  cluster.preload(200, 1024);
  workload::WorkloadSpec spec;
  spec.write_ratio = 0.5;
  spec.keys = std::make_shared<workload::ZipfianKeys>(200);
  cluster.set_workload(std::make_shared<workload::BasicWorkload>(spec));
  Rng rng(seed * 7 + 3);
  cluster.run_for(milliseconds(500));

  bool crashed = false;
  for (int i = 0; i < 6; ++i) {
    const int w = static_cast<int>(rng.next_below(5)) + 1;
    cluster.reconfigure({5 - w + 1, w});
    const auto dice = rng.next_below(4);
    if (dice == 0) {
      // Pause a live proxy's beats long enough to be suspected, resume
      // later: an organic false suspicion.
      const auto victim = static_cast<std::uint32_t>(rng.next_below(3));
      cluster.proxy(victim).set_heartbeats_paused(true);
      cluster.simulator().after(
          milliseconds(400 + rng.next_below(600)),
          [&cluster, victim] {
            if (!cluster.proxy(victim).crashed()) {
              cluster.proxy(victim).set_heartbeats_paused(false);
            }
          });
    } else if (dice == 1 && !crashed) {
      cluster.crash_proxy(2);
      crashed = true;
    }
    cluster.run_for(milliseconds(400 + rng.next_below(600)));
  }
  cluster.run_for(seconds(3));
  expect_clean(cluster);
  EXPECT_EQ(cluster.obs().registry().counter_value("rm.reconfigurations_completed"), 6u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, HeartbeatChurn,
                         ::testing::Range<std::uint64_t>(70, 80));

}  // namespace
}  // namespace qopt
