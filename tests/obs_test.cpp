// Unit tests for the observability layer (src/obs): registry snapshot and
// delta semantics, export determinism, tracer ring-buffer eviction, and the
// end-to-end same-seed guarantee — byte-identical trace and RunReport JSON.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "core/cluster.hpp"
#include "obs/obs.hpp"
#include "obs/registry.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "util/histogram.hpp"
#include "workload/workload.hpp"

namespace qopt {
namespace {

// ---------------------------------------------------------------- registry

TEST(MetricRegistryTest, FindOrCreateReturnsStableReferences) {
  obs::MetricRegistry reg;
  obs::Counter& c1 = reg.counter("proxy.0.client_reads");
  c1.inc();
  // Creating unrelated instruments must not move existing ones (node-based
  // map): cached pointers stay valid.
  obs::Counter* cached = &c1;
  for (int i = 0; i < 64; ++i) {
    reg.counter(obs::instrument_name("proxy", static_cast<std::uint32_t>(i),
                                     "client_reads"));
  }
  cached->inc(2);
  EXPECT_EQ(&reg.counter("proxy.0.client_reads"), cached);
  EXPECT_EQ(reg.counter_value("proxy.0.client_reads"), 3u);
  EXPECT_EQ(reg.instrument_count(), 64u);  // i=0 finds the existing counter
}

TEST(MetricRegistryTest, QueriesOnMissingInstrumentsAreZero) {
  obs::MetricRegistry reg;
  EXPECT_EQ(reg.counter_value("no.such.counter"), 0u);
  EXPECT_EQ(reg.gauge_value("no.such.gauge"), 0.0);
  EXPECT_EQ(reg.find_histogram("no.such.histogram"), nullptr);
  // const queries must not create instruments as a side effect.
  EXPECT_EQ(reg.instrument_count(), 0u);
}

TEST(MetricRegistryTest, InstrumentNameComposesHierarchically) {
  EXPECT_EQ(obs::instrument_name("rm", "epoch_changes"), "rm.epoch_changes");
  EXPECT_EQ(obs::instrument_name("proxy", 2, "reads_completed"),
            "proxy.2.reads_completed");
}

TEST(MetricRegistryTest, SnapshotCapturesAllInstrumentKinds) {
  obs::MetricRegistry reg;
  reg.counter("net.messages_sent").inc(5);
  reg.gauge("rm.epoch").set(3.0);
  LatencyHistogram& h = reg.histogram("proxy.0.read_latency_ns");
  h.record(1'000'000.0);
  h.record(2'000'000.0);

  const obs::Snapshot snap = reg.snapshot();
  ASSERT_EQ(snap.counters.size(), 1u);
  EXPECT_EQ(snap.counters.at("net.messages_sent"), 5u);
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_EQ(snap.gauges.at("rm.epoch"), 3.0);
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms.at("proxy.0.read_latency_ns").count, 2u);
  EXPECT_GT(snap.histograms.at("proxy.0.read_latency_ns").p99, 0.0);
}

TEST(MetricRegistryTest, DeltaSubtractsCountersAndKeepsGauges) {
  obs::MetricRegistry reg;
  obs::Counter& reads = reg.counter("proxy.0.reads_completed");
  obs::Gauge& epoch = reg.gauge("rm.epoch");
  LatencyHistogram& h = reg.histogram("proxy.0.read_latency_ns");
  reads.inc(10);
  epoch.set(1.0);
  h.record(5'000.0);

  const obs::Snapshot before = reg.snapshot();
  reads.inc(7);
  epoch.set(4.0);
  h.record(6'000.0);
  h.record(7'000.0);
  // An instrument born inside the window counts from zero.
  reg.counter("proxy.0.writes_completed").inc(2);

  const obs::Snapshot delta = reg.snapshot().delta_since(before);
  EXPECT_EQ(delta.counters.at("proxy.0.reads_completed"), 7u);
  EXPECT_EQ(delta.counters.at("proxy.0.writes_completed"), 2u);
  EXPECT_EQ(delta.gauges.at("rm.epoch"), 4.0);  // gauges: current value
  EXPECT_EQ(delta.histograms.at("proxy.0.read_latency_ns").count, 2u);
}

TEST(MetricRegistryTest, DeltaClampsRegressionsAtZero) {
  obs::MetricRegistry reg;
  reg.counter("c").inc(9);
  const obs::Snapshot before = reg.snapshot();
  reg.reset();  // counter drops below the earlier snapshot
  reg.counter("c").inc(1);
  const obs::Snapshot delta = reg.snapshot().delta_since(before);
  EXPECT_EQ(delta.counters.at("c"), 0u);
}

TEST(MetricRegistryTest, ResetZeroesButKeepsInstruments) {
  obs::MetricRegistry reg;
  obs::Counter& c = reg.counter("c");
  obs::Gauge& g = reg.gauge("g");
  c.inc(4);
  g.set(2.5);
  reg.reset();
  EXPECT_EQ(reg.instrument_count(), 2u);
  EXPECT_EQ(c.value(), 0u);  // cached reference still valid and zeroed
  EXPECT_EQ(g.value(), 0.0);
}

TEST(MetricRegistryTest, ExportsEnumerateInNameOrder) {
  obs::MetricRegistry reg;
  reg.counter("z.last").inc(1);
  reg.counter("a.first").inc(2);
  reg.gauge("m.middle").set(1.5);

  const obs::Snapshot snap = reg.snapshot();
  const std::string json = snap.to_json();
  EXPECT_LT(json.find("a.first"), json.find("z.last"));
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);

  const std::string csv = snap.to_csv();
  EXPECT_LT(csv.find("a.first"), csv.find("z.last"));
  EXPECT_NE(csv.find("a.first,counter,2"), std::string::npos);

  // Identical registry state → byte-identical exports.
  EXPECT_EQ(json, reg.snapshot().to_json());
  EXPECT_EQ(csv, reg.snapshot().to_csv());
}

// ------------------------------------------------------------------ tracer

TEST(TracerTest, DisabledByDefaultAndMaskGatesRecording) {
  obs::Tracer tracer(16);
  EXPECT_EQ(tracer.mask(), 0u);
  tracer.record(1, obs::Category::kOp, "read_start", "proxy.0");
  EXPECT_EQ(tracer.size(), 0u);
  EXPECT_EQ(tracer.recorded(), 0u);

  tracer.enable(static_cast<std::uint32_t>(obs::Category::kQuorum));
  EXPECT_FALSE(tracer.enabled(obs::Category::kOp));
  EXPECT_TRUE(tracer.enabled(obs::Category::kQuorum));
  tracer.record(2, obs::Category::kOp, "read_start", "proxy.0");
  tracer.record(3, obs::Category::kQuorum, "nack", "proxy.0", 7);
  ASSERT_EQ(tracer.size(), 1u);
  const auto events = tracer.events();
  EXPECT_EQ(events[0].name, "nack");
  EXPECT_EQ(events[0].at, 3);
  EXPECT_EQ(events[0].a, 7u);
}

TEST(TracerTest, RingEvictsOldestAndCountsEvictions) {
  obs::Tracer tracer(4);
  tracer.enable_all();
  for (int i = 0; i < 10; ++i) {
    tracer.record(i, obs::Category::kOp, "op", "n",
                  static_cast<std::uint64_t>(i));
  }
  EXPECT_EQ(tracer.size(), 4u);
  EXPECT_EQ(tracer.recorded(), 10u);
  EXPECT_EQ(tracer.evicted(), 6u);
  const auto events = tracer.events();
  ASSERT_EQ(events.size(), 4u);
  // Newest `capacity` events survive, oldest first.
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].a, 6u + i);
  }
}

TEST(TracerTest, SetCapacityDropsEventsButKeepsMask) {
  obs::Tracer tracer(8);
  tracer.enable_all();
  tracer.record(1, obs::Category::kNet, "drop", "net");
  tracer.set_capacity(2);
  EXPECT_EQ(tracer.size(), 0u);
  EXPECT_EQ(tracer.capacity(), 2u);
  EXPECT_EQ(tracer.mask(), obs::kAllCategories);
  tracer.record(2, obs::Category::kNet, "drop", "net");
  tracer.record(3, obs::Category::kNet, "drop", "net");
  tracer.record(4, obs::Category::kNet, "drop", "net");
  EXPECT_EQ(tracer.size(), 2u);
  EXPECT_EQ(tracer.evicted(), 1u);

  tracer.clear();
  EXPECT_EQ(tracer.size(), 0u);
  EXPECT_EQ(tracer.recorded(), 0u);
  EXPECT_EQ(tracer.evicted(), 0u);
}

TEST(TracerTest, ToJsonListsEventsOldestFirst) {
  obs::Tracer tracer(4);
  tracer.enable_all();
  tracer.record(10, obs::Category::kReconfig, "rm_start", "rm", 1, 2, "q=3:3");
  tracer.record(20, obs::Category::kMembership, "crash", "proxy.1");
  const std::string json = tracer.to_json();
  EXPECT_LT(json.find("rm_start"), json.find("crash"));
  EXPECT_NE(json.find("\"detail\":\"q=3:3\""), std::string::npos);
  EXPECT_EQ(json, tracer.to_json());  // stable across calls
}

// --------------------------------------------------- same-seed determinism

ClusterConfig small_config(std::uint64_t seed) {
  ClusterConfig config;
  config.num_storage = 5;
  config.num_proxies = 2;
  config.clients_per_proxy = 2;
  config.replication = 3;
  config.initial_quorum = {2, 2};
  config.seed = seed;
  return config;
}

struct RunArtifacts {
  std::string trace_json;
  std::string report_json;
  std::string instruments_csv;
};

RunArtifacts run_and_export(std::uint64_t seed) {
  Cluster cluster(small_config(seed));
  cluster.obs().tracer().enable_all();
  cluster.preload(200, 1024);
  cluster.set_workload(workload::ycsb_b(200));
  cluster.enable_autotuning({});
  cluster.run_for(seconds(5));
  cluster.reconfigure({1, 3});
  cluster.run_for(seconds(2));
  RunArtifacts out;
  out.trace_json = cluster.obs().tracer().to_json();
  out.report_json = cluster.report().to_json();
  out.instruments_csv = cluster.obs().registry().snapshot().to_csv();
  return out;
}

TEST(ObservabilityDeterminismTest, SameSeedYieldsByteIdenticalExports) {
  const RunArtifacts a = run_and_export(42);
  const RunArtifacts b = run_and_export(42);
  EXPECT_EQ(a.trace_json, b.trace_json);
  EXPECT_EQ(a.report_json, b.report_json);
  EXPECT_EQ(a.instruments_csv, b.instruments_csv);
  // The run actually produced traffic — the comparison is not vacuous.
  EXPECT_NE(a.trace_json, "[]");
  EXPECT_NE(a.report_json.find("\"ops\""), std::string::npos);
}

TEST(ObservabilityDeterminismTest, DifferentSeedsDiverge) {
  const RunArtifacts a = run_and_export(42);
  const RunArtifacts b = run_and_export(43);
  EXPECT_NE(a.report_json, b.report_json);
}

// ------------------------------------------------------------- run report

TEST(RunReportTest, ReportAggregatesClusterActivity) {
  Cluster cluster(small_config(7));
  cluster.preload(100, 512);
  cluster.set_workload(workload::ycsb_a(100));
  cluster.run_for(seconds(3));

  const obs::RunReport report = cluster.report();
  EXPECT_EQ(report.seed, 7u);
  EXPECT_EQ(report.num_storage, 5u);
  EXPECT_EQ(report.num_proxies, 2u);
  EXPECT_GT(report.ops, 0u);
  EXPECT_EQ(report.ops, report.reads + report.writes);
  EXPECT_GT(report.throughput_ops, 0.0);
  EXPECT_GT(report.read_latency.count, 0u);
  EXPECT_GT(report.messages_sent, 0u);
  EXPECT_EQ(report.consistency_violations, 0u);
  EXPECT_FALSE(report.throughput_timeline.empty());
  // Instruments snapshot rides along for drill-down.
  EXPECT_GT(report.instruments.counters.size(), 0u);

  const std::string rendered = report.render();
  EXPECT_NE(rendered.find("throughput"), std::string::npos);
  const std::string json = report.to_json();
  EXPECT_NE(json.find("\"seed\":7"), std::string::npos);
}

TEST(RunReportTest, WindowedReportRestrictsWorkloadTotals) {
  Cluster cluster(small_config(9));
  cluster.preload(100, 512);
  cluster.set_workload(workload::ycsb_b(100));
  cluster.run_for(seconds(4));

  const obs::RunReport full = cluster.report();
  const obs::RunReport tail = cluster.report(seconds(2), cluster.now());
  EXPECT_LT(tail.ops, full.ops);
  EXPECT_GT(tail.ops, 0u);
  EXPECT_EQ(tail.window_start, seconds(2));
}

}  // namespace
}  // namespace qopt
