#include <gtest/gtest.h>

#include "kv/quorum.hpp"
#include "kv/types.hpp"
#include "ml/dataset.hpp"
#include "oracle/oracle.hpp"
#include "util/rng.hpp"

namespace qopt::oracle {
namespace {

TEST(ClampTest, UnconstrainedPassThrough) {
  const QuorumConstraints none;
  for (int w = 1; w <= 5; ++w) {
    EXPECT_EQ(clamp_write_quorum(w, none, 5), w);
  }
  EXPECT_EQ(clamp_write_quorum(0, none, 5), 1);
  EXPECT_EQ(clamp_write_quorum(9, none, 5), 5);
}

TEST(ClampTest, MinWriteForFaultTolerance) {
  // The paper's example: fault-tolerance SLA requiring every write to reach
  // at least k > 1 replicas.
  QuorumConstraints constraints;
  constraints.min_write = 2;
  EXPECT_EQ(clamp_write_quorum(1, constraints, 5), 2);
  EXPECT_EQ(clamp_write_quorum(4, constraints, 5), 4);
}

TEST(ClampTest, ReadConstraintsBoundWriteThroughDerivation) {
  // R = N - W + 1; min_read=2 forbids W=N.
  QuorumConstraints constraints;
  constraints.min_read = 2;
  EXPECT_EQ(clamp_write_quorum(5, constraints, 5), 4);
  // max_read=3 forces W >= N+1-3 = 3.
  QuorumConstraints constraints2;
  constraints2.max_read = 3;
  EXPECT_EQ(clamp_write_quorum(1, constraints2, 5), 3);
}

TEST(ClampTest, InfeasibleConstraintsThrow) {
  QuorumConstraints constraints;
  constraints.min_write = 4;
  constraints.min_read = 4;  // W >= 4 and W <= N+1-4 = 2: empty
  EXPECT_THROW(clamp_write_quorum(3, constraints, 5),
               std::invalid_argument);
}

TEST(ConfigDerivationTest, StrictByConstruction) {
  for (int n : {1, 3, 5, 7}) {
    for (int w = 1; w <= n; ++w) {
      const kv::QuorumConfig q = grid_from_write_quorum(w, n);
      EXPECT_TRUE(kv::is_strict(q, n)) << "n=" << n << " w=" << w;
      EXPECT_EQ(q.read_q + q.write_q, n + 1);  // minimal strict overlap
    }
  }
  EXPECT_EQ(grid_from_write_quorum(0, 5).write_q, 1);
  EXPECT_EQ(grid_from_write_quorum(99, 5).write_q, 5);
}

TEST(LinearRuleOracleTest, MonotoneInWriteRatio) {
  LinearRuleOracle oracle(5);
  WorkloadFeatures read_heavy{0.05, 4.0, 1000.0};
  WorkloadFeatures balanced{0.5, 4.0, 1000.0};
  WorkloadFeatures write_heavy{0.99, 4.0, 1000.0};
  const int w_read = oracle.predict_write_quorum(read_heavy);
  const int w_bal = oracle.predict_write_quorum(balanced);
  const int w_write = oracle.predict_write_quorum(write_heavy);
  EXPECT_EQ(w_read, 5);   // read-heavy -> large W (small R)
  EXPECT_EQ(w_write, 1);  // write-heavy -> small W
  EXPECT_GT(w_read, w_bal);
  EXPECT_GT(w_bal, w_write);
}

TEST(LinearRuleOracleTest, ExtremeRatiosStayInRange) {
  LinearRuleOracle oracle(3);
  for (double ratio : {-0.5, 0.0, 0.5, 1.0, 1.5}) {
    WorkloadFeatures features{ratio, 4.0, 10.0};
    const int w = oracle.predict_write_quorum(features);
    EXPECT_GE(w, 1);
    EXPECT_LE(w, 3);
  }
}

TEST(TreeOracleTest, PredictBeforeTrainThrows) {
  TreeOracle oracle(5);
  WorkloadFeatures features{0.5, 4.0, 10.0};
  EXPECT_THROW(oracle.predict_write_quorum(features), std::logic_error);
  EXPECT_FALSE(oracle.trained());
}

TEST(TreeOracleTest, LearnsNonLinearBoundary) {
  // Ground truth with an interaction the linear rule cannot express:
  // large objects flip the optimum for mid write ratios.
  TreeOracle oracle(5);
  ml::Dataset data(WorkloadFeatures::names());
  Rng rng(21);
  auto truth = [](double write_ratio, double size_kib) {
    if (write_ratio > 0.8) return 1;
    if (write_ratio < 0.2) return 5;
    return size_kib > 64 ? 1 : 3;
  };
  for (int i = 0; i < 600; ++i) {
    const double ratio = rng.next_double();
    const double size = rng.uniform(1, 256);
    data.add_row({ratio, size, 100.0}, truth(ratio, size));
  }
  oracle.train(data);
  EXPECT_TRUE(oracle.trained());
  EXPECT_EQ(oracle.predict_write_quorum({0.9, 16.0, 100.0}), 1);
  EXPECT_EQ(oracle.predict_write_quorum({0.05, 16.0, 100.0}), 5);
  EXPECT_EQ(oracle.predict_write_quorum({0.5, 8.0, 100.0}), 3);
  EXPECT_EQ(oracle.predict_write_quorum({0.5, 200.0, 100.0}), 1);
}

TEST(TreeOracleTest, DescribeNames) {
  EXPECT_EQ(TreeOracle(5).describe(), "decision-tree");
  EXPECT_EQ(LinearRuleOracle(5).describe(), "linear-rule");
}

TEST(TreeOracleTest, ModelPersistenceRoundTrip) {
  TreeOracle trained(5);
  ml::Dataset data(WorkloadFeatures::names());
  Rng rng(31);
  for (int i = 0; i < 300; ++i) {
    const double ratio = rng.next_double();
    data.add_row({ratio, rng.uniform(1, 256), rng.uniform(10, 5000)},
                 ratio > 0.5 ? 1 : 5);
  }
  trained.train(data);
  const std::string blob = trained.save_model();

  TreeOracle deployed(5);  // fresh instance, no training data available
  deployed.load_model(blob);
  for (int i = 0; i < 100; ++i) {
    WorkloadFeatures features{rng.next_double(), rng.uniform(1, 256),
                              rng.uniform(10, 5000)};
    EXPECT_EQ(deployed.predict_write_quorum(features),
              trained.predict_write_quorum(features));
  }
}

TEST(BoostedOracleTest, TrainsAndPredictsWithinRange) {
  BoostedOracle oracle(5);
  ml::Dataset data(WorkloadFeatures::names());
  Rng rng(37);
  for (int i = 0; i < 300; ++i) {
    const double ratio = rng.next_double();
    data.add_row({ratio, rng.uniform(1, 256), rng.uniform(10, 5000)},
                 ratio > 0.5 ? 1 : 5);
  }
  EXPECT_THROW(oracle.predict_write_quorum({0.5, 4, 100}),
               std::logic_error);
  oracle.train(data);
  EXPECT_TRUE(oracle.trained());
  EXPECT_EQ(oracle.predict_write_quorum({0.9, 16.0, 100.0}), 1);
  EXPECT_EQ(oracle.predict_write_quorum({0.1, 16.0, 100.0}), 5);
}

TEST(WorkloadFeaturesTest, VectorMatchesNames) {
  const WorkloadFeatures features{0.25, 4.0, 123.0};
  const auto vec = features.to_vector();
  ASSERT_EQ(vec.size(), WorkloadFeatures::names().size());
  EXPECT_DOUBLE_EQ(vec[0], 0.25);
  EXPECT_DOUBLE_EQ(vec[1], 4.0);
  EXPECT_DOUBLE_EQ(vec[2], 123.0);
}

}  // namespace
}  // namespace qopt::oracle
