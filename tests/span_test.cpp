// Causal span layer: SpanStore invariants, critical-path decomposition, and
// whole-cluster tracing determinism.
//
// The load-bearing guarantees under test:
//  * sampling is decided by trace id, so it is deterministic and exact;
//  * the live-span cap refuses opens loudly (obs.spans_dropped), never grows;
//  * every completed trace is balanced (end_trace force-closes stragglers);
//  * span ids are assigned in open order, so parentage is acyclic;
//  * the critical-path sweep attributes every nanosecond exactly once —
//    phase contributions sum to the root duration with no rounding slack;
//  * two same-seed runs export byte-identical Chrome / CSV traces.
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "core/cluster.hpp"
#include "obs/critical_path.hpp"
#include "obs/registry.hpp"
#include "obs/report.hpp"
#include "obs/span.hpp"
#include "obs/span_export.hpp"
#include "obs/span_store.hpp"
#include "util/histogram.hpp"
#include "util/time.hpp"
#include "workload/workload.hpp"

namespace qopt {
namespace {

using obs::CompletedTrace;
using obs::Phase;
using obs::SpanContext;
using obs::SpanStore;
using obs::TraceKind;

// ---------------------------------------------------------------- SpanStore

TEST(SpanStore, SamplesEveryNthTraceByTraceId) {
  SpanStore store;
  store.enable_all(3);
  std::set<std::uint64_t> sampled;
  for (int i = 0; i < 9; ++i) {
    const SpanContext root = store.start_trace(TraceKind::kRead, "op", "n", 0);
    if (root.valid()) sampled.insert(root.trace_id);
    store.end_trace(root, 1);
  }
  // Trace ids are assigned 1..9; exactly ids 3, 6, 9 satisfy id % 3 == 0.
  EXPECT_EQ(sampled, (std::set<std::uint64_t>{3, 6, 9}));
  EXPECT_EQ(store.traces_completed(), 3u);
}

TEST(SpanStore, DisabledKindCostsNothing) {
  SpanStore store;
  store.set_sampling(TraceKind::kWrite, 1);
  EXPECT_TRUE(store.active());
  const SpanContext read = store.start_trace(TraceKind::kRead, "op", "n", 0);
  EXPECT_FALSE(read.valid());
  // Every downstream call on the zero context is a no-op.
  const SpanContext child =
      store.open_span(read, Phase::kQuorumWait, "qw", "n", 0);
  EXPECT_FALSE(child.valid());
  store.close_span(child, 5);
  store.end_trace(read, 5);
  EXPECT_EQ(store.traces_completed(), 0u);
  store.disable_all();
  EXPECT_FALSE(store.active());
}

TEST(SpanStore, LiveCapRefusesOpensAndCountsDrops) {
  SpanStore store;
  store.enable_all(1);
  store.set_limits(/*max_live_spans=*/2, /*max_completed=*/16);
  const SpanContext root = store.start_trace(TraceKind::kRead, "op", "n", 0);
  ASSERT_TRUE(root.valid());
  const SpanContext first =
      store.open_span(root, Phase::kQuorumWait, "qw", "n", 1);
  ASSERT_TRUE(first.valid());  // 2 live spans: at the cap now
  const SpanContext refused =
      store.open_span(root, Phase::kReplicaRead, "rpc", "n", 1);
  EXPECT_FALSE(refused.valid());
  EXPECT_EQ(store.spans_dropped(), 1u);
  // A whole new trace is refused too (its root would exceed the cap).
  EXPECT_FALSE(store.start_trace(TraceKind::kWrite, "op", "n", 2).valid());
  EXPECT_EQ(store.spans_dropped(), 2u);
  // Ending the trace frees the budget again.
  store.end_trace(root, 3);
  EXPECT_EQ(store.live_spans(), 0u);
  EXPECT_TRUE(store.start_trace(TraceKind::kWrite, "op", "n", 4).valid());
}

TEST(SpanStore, EndTraceForceClosesAndBalances) {
  SpanStore store;
  store.enable_all(1);
  const SpanContext root = store.start_trace(TraceKind::kWrite, "op", "n", 10);
  const SpanContext wait =
      store.open_span(root, Phase::kQuorumWait, "qw", "n", 12);
  const SpanContext rpc =
      store.open_span(wait, Phase::kReplicaWrite, "rpc", "n", 13);
  store.close_span(wait, 40, /*a=*/2, /*b=*/7);
  // `rpc` (a straggler reply) is never closed by the producer.
  store.end_trace(root, 50);

  ASSERT_EQ(store.completed().size(), 1u);
  const CompletedTrace& trace = store.completed().front();
  ASSERT_EQ(trace.spans.size(), 3u);
  for (const obs::Span& span : trace.spans) {
    EXPECT_FALSE(span.open);
    EXPECT_GE(span.end, span.start);
    EXPECT_LT(span.parent_id, span.span_id);  // acyclic by construction
  }
  // Root closes at trace end but does not count as a forced close; the
  // straggler RPC does.
  EXPECT_EQ(trace.forced_closes, 1u);
  EXPECT_EQ(store.spans_forced_closed(), 1u);
  EXPECT_EQ(trace.spans[0].end, 50);
  EXPECT_EQ(trace.spans[2].end, 50);
  // Annotations from the explicit close survive.
  EXPECT_EQ(trace.spans[1].a, 2u);
  EXPECT_EQ(trace.spans[1].b, 7u);
  // Late closes against the ended trace are no-ops.
  store.close_span(rpc, 60);
  EXPECT_EQ(store.completed().front().spans[2].end, 50);
}

TEST(SpanStore, CompletedRingEvictsOldest) {
  SpanStore store;
  store.enable_all(1);
  store.set_limits(64, /*max_completed=*/2);
  for (int i = 0; i < 5; ++i) {
    const SpanContext root = store.start_trace(TraceKind::kRead, "op", "n", i);
    store.end_trace(root, i + 1);
  }
  EXPECT_EQ(store.completed().size(), 2u);
  EXPECT_EQ(store.traces_evicted(), 3u);
  EXPECT_EQ(store.completed().front().trace_id, 4u);
}

// ------------------------------------------------------------ critical path

TEST(CriticalPath, DeepestSpanWinsAndPhasesSumExactly) {
  SpanStore store;
  store.enable_all(1);
  // root [0,100] -> quorum_wait [10,60] -> replica_read [20,40].
  const SpanContext root = store.start_trace(TraceKind::kRead, "op", "p", 0);
  const SpanContext wait =
      store.open_span(root, Phase::kQuorumWait, "qw", "p", 10);
  const SpanContext rpc =
      store.open_span(wait, Phase::kReplicaRead, "rpc", "p", 20);
  store.close_span(rpc, 40);
  store.close_span(wait, 60);
  store.end_trace(root, 100);

  const obs::TraceBreakdown breakdown =
      obs::critical_path(store.completed().front());
  EXPECT_EQ(breakdown.total, 100);
  EXPECT_EQ(breakdown.phase(Phase::kOp), 50);          // [0,10) + [60,100)
  EXPECT_EQ(breakdown.phase(Phase::kQuorumWait), 30);  // [10,20) + [40,60)
  EXPECT_EQ(breakdown.phase(Phase::kReplicaRead), 20);
  EXPECT_EQ(breakdown.phase_sum(), breakdown.total);
  EXPECT_FALSE(to_string(breakdown).empty());
}

TEST(CriticalPath, StragglerComesFromSlowestQuorumWait) {
  SpanStore store;
  store.enable_all(1);
  const SpanContext root = store.start_trace(TraceKind::kRead, "op", "p", 0);
  const SpanContext first =
      store.open_span(root, Phase::kQuorumWait, "qw", "p", 0);
  store.close_span(first, 30, /*a=*/1, /*b=*/5);
  const SpanContext repair =
      store.open_span(root, Phase::kReadRepair, "rr", "p", 30);
  store.close_span(repair, 90, /*a=*/4, /*b=*/25);
  store.end_trace(root, 95);

  const obs::TraceBreakdown breakdown =
      obs::critical_path(store.completed().front());
  EXPECT_TRUE(breakdown.has_straggler);
  EXPECT_EQ(breakdown.straggler_replica, 1u);
  EXPECT_EQ(breakdown.straggler_excess, 5);
  EXPECT_EQ(breakdown.phase_sum(), breakdown.total);
}

// ------------------------------------------------------- cluster-level runs

ClusterConfig traced_config(std::uint32_t sample_every) {
  ClusterConfig config;
  config.num_storage = 6;
  config.num_proxies = 2;
  config.clients_per_proxy = 3;
  config.replication = 5;
  config.initial_quorum = {2, 4};
  config.seed = 7;
  config.span_sample_every = sample_every;
  return config;
}

TEST(ClusterTracing, EveryCompletedTraceIsBalancedAcyclicAndExact) {
  Cluster cluster(traced_config(1));
  cluster.preload(300, 2048);
  cluster.set_workload(workload::ycsb_a(300));
  cluster.run_for(seconds(5));

  const SpanStore& store = cluster.obs().spans();
  ASSERT_GT(store.traces_completed(), 0u);
  bool saw_quorum_wait = false;
  bool saw_storage = false;
  for (const CompletedTrace& trace : store.completed()) {
    for (const obs::Span& span : trace.spans) {
      EXPECT_FALSE(span.open);
      EXPECT_LT(span.parent_id, span.span_id);
      EXPECT_GE(span.end, span.start);
      saw_quorum_wait |= span.phase == Phase::kQuorumWait;
      saw_storage |= span.phase == Phase::kStorageRead ||
                     span.phase == Phase::kStorageWrite;
    }
    const obs::TraceBreakdown breakdown = obs::critical_path(trace);
    EXPECT_EQ(breakdown.phase_sum(), breakdown.total)
        << "trace " << trace.trace_id;
  }
  EXPECT_TRUE(saw_quorum_wait);
  EXPECT_TRUE(saw_storage);  // wire propagation reached the storage nodes
  // Registry mirrors are live.
  const obs::MetricRegistry& reg = cluster.obs().registry();
  EXPECT_EQ(reg.counter_value("obs.traces_completed"),
            store.traces_completed());
  const LatencyHistogram* hist =
      reg.find_histogram("obs.phase.quorum_wait_ns");
  ASSERT_NE(hist, nullptr);
  EXPECT_GT(hist->count(), 0u);
  // The cluster report surfaces the totals.
  const obs::RunReport report = cluster.report(0, cluster.now());
  EXPECT_EQ(report.traces_completed, store.traces_completed());
}

TEST(ClusterTracing, SamplingReducesTraceCountDeterministically) {
  Cluster full(traced_config(1));
  full.preload(300, 2048);
  full.set_workload(workload::ycsb_a(300));
  full.run_for(seconds(5));

  Cluster sampled(traced_config(4));
  sampled.preload(300, 2048);
  sampled.set_workload(workload::ycsb_a(300));
  sampled.run_for(seconds(5));

  EXPECT_GT(full.obs().spans().traces_completed(),
            sampled.obs().spans().traces_completed());
  EXPECT_GT(sampled.obs().spans().traces_completed(), 0u);
}

std::string chrome_export(std::uint32_t sample_every) {
  Cluster cluster(traced_config(sample_every));
  cluster.preload(300, 2048);
  cluster.set_workload(workload::ycsb_a(300));
  cluster.run_for(seconds(5));
  return obs::to_chrome_json(cluster.obs().spans().completed());
}

std::string csv_export(std::uint32_t sample_every) {
  Cluster cluster(traced_config(sample_every));
  cluster.preload(300, 2048);
  cluster.set_workload(workload::ycsb_a(300));
  cluster.run_for(seconds(5));
  return obs::to_span_csv(cluster.obs().spans().completed());
}

TEST(ClusterTracing, SameSeedByteIdenticalExports) {
  EXPECT_EQ(chrome_export(1), chrome_export(1));
  EXPECT_EQ(csv_export(1), csv_export(1));
  EXPECT_EQ(csv_export(4), csv_export(4));
}

TEST(ClusterTracing, ReconfigurationProducesAnnotatedRoundTrace) {
  Cluster cluster(traced_config(1));
  cluster.preload(300, 2048);
  cluster.set_workload(workload::ycsb_a(300));
  cluster.run_for(seconds(2));
  cluster.reconfigure({4, 2});
  cluster.run_for(seconds(3));

  bool saw_reconfig = false;
  bool saw_newq = false;
  bool saw_drain = false;
  for (const CompletedTrace& trace : cluster.obs().spans().completed()) {
    if (trace.kind != TraceKind::kReconfig) continue;
    saw_reconfig = true;
    for (const obs::Span& span : trace.spans) {
      saw_newq |= span.phase == Phase::kRmNewq;
      // Proxy drain spans parent under the RM's NEWQ phase via the wire
      // context — cross-node causality in one trace.
      saw_drain |= span.phase == Phase::kProxyDrain;
    }
  }
  EXPECT_TRUE(saw_reconfig);
  EXPECT_TRUE(saw_newq);
  EXPECT_TRUE(saw_drain);
}

}  // namespace
}  // namespace qopt
