// Eval-E — reconfiguration protocol micro-costs (Section 5): duration and
// message complexity of the two-phase protocol on an idle vs loaded store,
// per-object batches, and the failure-suspicion path with its epoch
// change(s), plus the impact on client throughput while reconfiguring.
#include <cstdio>
#include <functional>

#include "bench/bench_common.hpp"
#include "core/cluster.hpp"
#include "kv/types.hpp"
#include "util/time.hpp"

namespace {

using namespace qopt;

struct CostRow {
  const char* name = "";
  double avg_ms = 0;
  double messages = 0;
  std::uint64_t epoch_changes = 0;
  double tput_ratio = 1.0;  // during-reconfig vs steady throughput
  bool consistent = true;
};

ClusterConfig make_config() {
  ClusterConfig config;
  config.seed = 55;
  config.initial_quorum = {3, 3};
  return config;
}

CostRow run_scenario(const char* name, bool loaded,
                     const std::function<void(Cluster&)>& mutate,
                     int reconfigs,
                     const std::function<void(Cluster&, int)>& reconfigure) {
  Cluster cluster(make_config());
  cluster.preload(5'000, 4096);
  if (loaded) {
    cluster.set_workload(workload::ycsb_a(5'000));
    cluster.run_for(seconds(5));
  }
  mutate(cluster);
  const double steady =
      loaded ? cluster.metrics().throughput(cluster.now() - seconds(3),
                                            cluster.now())
             : 0;
  const auto msg_before = cluster.network_stats().messages_sent;
  const Time t0 = cluster.now();
  for (int i = 0; i < reconfigs; ++i) {
    reconfigure(cluster, i);
    cluster.run_for(seconds(2));
  }
  const Time t1 = cluster.now();

  CostRow row;
  row.name = name;
  const auto& reg = cluster.obs().registry();
  row.avg_ms =
      static_cast<double>(reg.counter_value("rm.reconfig_time_ns")) / 1e6 /
      static_cast<double>(reg.counter_value("rm.reconfigurations_completed"));
  // Message cost attributable to the control plane: on an idle store every
  // message in the window is protocol traffic; under load we report the
  // total delta for context.
  row.messages =
      static_cast<double>(cluster.network_stats().messages_sent - msg_before) /
      static_cast<double>(reconfigs);
  row.epoch_changes = reg.counter_value("rm.epoch_changes");
  if (loaded && steady > 0) {
    row.tput_ratio = cluster.metrics().throughput(t0, t1) / steady;
  }
  row.consistent = cluster.checker().clean();
  return row;
}

}  // namespace

int main() {
  bench::print_header(
      "Reconfiguration protocol cost (two-phase, non-blocking)",
      "reconfiguration completes in a few message delays; operations keep "
      "flowing; suspicions add epoch-change rounds but never block");

  auto flip = [](Cluster& cluster, int i) {
    cluster.reconfigure(i % 2 ? kv::QuorumConfig::of(1, 5)
                              : kv::QuorumConfig::of(5, 1));
  };
  auto per_object = [](Cluster& cluster, int i) {
    std::vector<std::pair<kv::ObjectId, kv::QuorumConfig>> overrides;
    for (kv::ObjectId oid = 0; oid < 8; ++oid) {
      overrides.emplace_back(oid + static_cast<kv::ObjectId>(i) * 8,
                             i % 2 ? kv::QuorumConfig::of(1, 5)
                                   : kv::QuorumConfig::of(5, 1));
    }
    cluster.reconfigure_objects(std::move(overrides));
  };
  auto nothing = [](Cluster&) {};

  const CostRow rows[] = {
      run_scenario("global, idle store", false, nothing, 10, flip),
      run_scenario("global, loaded store", true, nothing, 10, flip),
      run_scenario("per-object batch (8), loaded", true, nothing, 10,
                   per_object),
      run_scenario("global, loaded + false suspicion", true,
                   [](Cluster& cluster) {
                     cluster.inject_false_suspicion(1, seconds(60));
                   },
                   10, flip),
      run_scenario("global, loaded + crashed proxy", true,
                   [](Cluster& cluster) { cluster.crash_proxy(4); }, 10,
                   flip),
  };

  std::printf("%-34s %10s %10s %7s %12s %6s\n", "scenario", "avg ms",
              "msgs/rec", "epochs", "tput-ratio", "safe");
  for (const CostRow& row : rows) {
    std::printf("%-34s %10.2f %10.0f %7llu %11.2f%% %6s\n", row.name,
                row.avg_ms, row.messages,
                static_cast<unsigned long long>(row.epoch_changes),
                row.tput_ratio * 100, row.consistent ? "yes" : "NO");
  }
  std::printf("\n(tput-ratio: throughput during the reconfiguration window "
              "relative to steady state;\n msgs/rec under load includes "
              "data-plane traffic and is an upper bound)\n\n");
  return 0;
}
