// Figure 3 — "Optimal write quorum size vs write percentage".
//
// ~170 workloads (17 write ratios x 10 object sizes, 10 clients per proxy);
// each point's optimal write quorum is measured by sweeping all strict
// configurations. The paper's takeaway: no clean linear relation between
// write percentage and optimal W — the scatter motivates a black-box
// (decision tree) model over hand-written rules.
#include <cmath>
#include <cstdio>
#include <map>

#include "bench/bench_common.hpp"
#include "core/experiment.hpp"

int main() {
  using namespace qopt;
  bench::print_header(
      "Figure 3: optimal write-quorum size vs write percentage (~170 "
      "workloads)",
      "scatter shows a non-linear, size-dependent relation; a linear rule "
      "mispredicts many points");

  const std::vector<CorpusPoint> corpus =
      load_or_generate_corpus(bench::corpus_cache_path(),
                              bench::sweep_spec());

  // Scatter summary: for each write percentage, the range of optimal W
  // across object sizes (the vertical spread of the paper's scatter).
  std::map<int, std::pair<int, int>> spread;  // write% -> (minW, maxW)
  std::map<int, std::map<int, int>> histogram;  // write% -> W -> count
  for (const CorpusPoint& point : corpus) {
    const int pct = static_cast<int>(std::lround(point.write_ratio * 100));
    auto [it, inserted] =
        spread.emplace(pct, std::make_pair(point.optimal_w, point.optimal_w));
    if (!inserted) {
      it->second.first = std::min(it->second.first, point.optimal_w);
      it->second.second = std::max(it->second.second, point.optimal_w);
    }
    ++histogram[pct][point.optimal_w];
  }

  std::printf("%-8s %-14s %s\n", "write%", "optimal-W range",
              "distribution over object sizes (W:count)");
  for (const auto& [pct, range] : spread) {
    std::printf("%5d    W=%d..%-9d ", pct, range.first, range.second);
    for (const auto& [w, count] : histogram[pct]) {
      std::printf(" %d:%d", w, count);
    }
    std::printf("\n");
  }

  // Quantify the non-linearity the paper reports: residuals of the best
  // linear fit optimal_w ~ a + b * write_ratio.
  double sx = 0;
  double sy = 0;
  double sxx = 0;
  double sxy = 0;
  const double n = static_cast<double>(corpus.size());
  for (const CorpusPoint& point : corpus) {
    sx += point.write_ratio;
    sy += point.optimal_w;
    sxx += point.write_ratio * point.write_ratio;
    sxy += point.write_ratio * point.optimal_w;
  }
  const double b = (n * sxy - sx * sy) / (n * sxx - sx * sx);
  const double a = (sy - b * sx) / n;
  int linear_exact = 0;
  for (const CorpusPoint& point : corpus) {
    const int predicted = static_cast<int>(
        std::clamp(std::lround(a + b * point.write_ratio), 1L, 5L));
    linear_exact += predicted == point.optimal_w;
  }
  std::printf("\nworkloads measured:            %zu\n", corpus.size());
  std::printf("best linear fit:               W = %.2f + %.2f * write_ratio\n",
              a, b);
  std::printf("linear-fit exact predictions:  %d/%zu (%.0f%%)  "
              "<- the motivating gap for the ML oracle\n",
              linear_exact, corpus.size(),
              100.0 * linear_exact / n);
  std::printf("\nfull scatter written to %s\n", bench::corpus_cache_path());
  return 0;
}
