// Eval-A (abstract claim) — Q-OPT vs the optimal and worst static
// configurations: "achieves a throughput that is only slightly lower than
// when using the optimal configuration".
//
// For a representative sample of workloads, run (a) every static quorum to
// find the optimum, then (b) Q-OPT starting from a mid-range configuration
// with the decision-tree oracle trained on the measured corpus, and compare
// converged throughput.
#include <cstdio>
#include <memory>
#include <vector>

#include "autonomic/autonomic_manager.hpp"
#include "bench/bench_common.hpp"
#include "core/cluster.hpp"
#include "core/experiment.hpp"
#include "oracle/oracle.hpp"
#include "util/time.hpp"

int main() {
  using namespace qopt;
  bench::print_header(
      "Q-OPT vs static configurations",
      "Q-OPT throughput only slightly below the optimal static quorum; far "
      "above the worst (abstract / Section 7)");

  // Train the oracle on the measured corpus (as the deployed system would).
  const std::vector<CorpusPoint> corpus =
      load_or_generate_corpus(bench::corpus_cache_path(),
                              bench::sweep_spec());
  auto oracle = std::make_shared<oracle::TreeOracle>(5);
  oracle->train(corpus_to_dataset(corpus));

  struct Sample {
    double write_ratio;
    std::uint64_t size;
  };
  const std::vector<Sample> samples = {
      {0.05, 4096}, {0.20, 4096},  {0.50, 4096},  {0.80, 4096},
      {0.99, 4096}, {0.05, 65536}, {0.50, 65536}, {0.95, 65536},
  };

  std::printf("%-22s %9s %9s %9s %12s %9s\n", "workload", "worst", "best",
              "Q-OPT", "Q-OPT/best", "chosen-W");
  double ratio_sum = 0;
  for (const Sample& sample : samples) {
    ExperimentSpec spec = bench::sweep_spec();
    spec.preload_size = sample.size;
    spec.workload = workload::sweep_point(sample.write_ratio, sample.size,
                                          spec.preload_objects);
    // Static sweep.
    double best = 0;
    double worst = 0;
    for (const ExperimentResult& r : sweep_quorums(spec)) {
      if (best == 0 || r.throughput_ops > best) best = r.throughput_ops;
      if (worst == 0 || r.throughput_ops < worst) worst = r.throughput_ops;
    }
    // Q-OPT run: start mid-range, let the Autonomic Manager converge, then
    // measure steady state.
    ClusterConfig config = spec.cluster;
    config.initial_quorum = {3, 3};
    Cluster cluster(config);
    cluster.preload(spec.preload_objects, sample.size);
    cluster.set_workload(spec.workload);
    autonomic::AutonomicOptions tuning;
    tuning.round_window = seconds(4);
    tuning.quarantine = seconds(2);
    cluster.enable_autotuning(tuning, oracle);
    cluster.run_for(seconds(80));
    const Time t1 = cluster.now();
    const double qopt_tput =
        cluster.metrics().throughput(t1 - seconds(25), t1);
    const double ratio = best > 0 ? qopt_tput / best : 0;
    ratio_sum += ratio;
    std::printf("w%%=%-3.0f size=%-9llu %9.0f %9.0f %9.0f %11.2f %6d\n",
                sample.write_ratio * 100,
                static_cast<unsigned long long>(sample.size), worst, best,
                qopt_tput, ratio,
                cluster.rm().config().default_q.write_footprint());
  }
  std::printf("\nmean Q-OPT/optimal ratio: %.2f  (paper: \"only slightly "
              "lower than optimal\")\n\n",
              ratio_sum / static_cast<double>(samples.size()));
  return 0;
}
