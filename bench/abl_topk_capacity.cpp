// Ablation — Space-Saving summary capacity (per-proxy monitoring state).
//
// Q-OPT keeps monitoring overhead low by tracking hotspots approximately
// (Section 3, challenge i). This ablation quantifies the trade-off: summary
// capacity vs recall of the true top-k objects vs memory, on a zipfian
// stream matching YCSB's skew.
#include <algorithm>
#include <cstdio>
#include <map>
#include <vector>

#include "bench/bench_common.hpp"
#include "topk/space_saving.hpp"
#include "util/rng.hpp"
#include "workload/workload.hpp"

int main() {
  using namespace qopt;
  bench::print_header(
      "Ablation: Space-Saving capacity vs hotspot recall",
      "top-k analysis must identify hotspots with low overhead (Section 3); "
      "capacity ~4x the monitored k suffices");

  constexpr std::uint64_t kKeys = 100'000;
  constexpr int kStream = 2'000'000;
  constexpr std::size_t kWanted = 16;  // top-k the AM optimizes per round

  // Ground-truth frequencies.
  workload::ZipfianKeys keys(kKeys, 0.99, /*scramble=*/true);
  Rng rng(13);
  std::map<std::uint64_t, std::uint64_t> truth;
  std::vector<std::uint64_t> stream;
  stream.reserve(kStream);
  for (int i = 0; i < kStream; ++i) {
    const std::uint64_t key = keys.sample(rng);
    stream.push_back(key);
    ++truth[key];
  }
  std::vector<std::pair<std::uint64_t, std::uint64_t>> sorted(truth.begin(),
                                                              truth.end());
  std::sort(sorted.begin(), sorted.end(), [](const auto& a, const auto& b) {
    return a.second > b.second;
  });

  std::printf("%-10s %10s %12s %14s\n", "capacity", "recall@16",
              "avg err/cnt", "approx bytes");
  for (const std::size_t capacity : {8u, 16u, 32u, 64u, 128u, 512u}) {
    topk::SpaceSaving summary(capacity);
    for (const std::uint64_t key : stream) summary.add(key);
    const auto reported = summary.top(kWanted);
    std::size_t hits = 0;
    for (std::size_t i = 0; i < kWanted && i < sorted.size(); ++i) {
      const std::uint64_t true_key = sorted[i].first;
      if (std::any_of(reported.begin(), reported.end(),
                      [&](const topk::TopKEntry& e) {
                        return e.key == true_key;
                      })) {
        ++hits;
      }
    }
    double err_ratio = 0;
    for (const topk::TopKEntry& entry : reported) {
      err_ratio += entry.count
                       ? static_cast<double>(entry.error) /
                             static_cast<double>(entry.count)
                       : 0;
    }
    err_ratio /= static_cast<double>(reported.size());
    std::printf("%-10zu %9.0f%% %12.3f %14zu\n", capacity,
                100.0 * static_cast<double>(hits) / kWanted, err_ratio,
                capacity * 48);  // ~3 words + bookkeeping per slot
  }
  std::printf("\n(stream: %d zipfian(0.99) accesses over %llu keys; "
              "exact per-object counters would need %llu counters)\n\n",
              kStream, static_cast<unsigned long long>(kKeys),
              static_cast<unsigned long long>(truth.size()));
  return 0;
}
