// Ablation — stability machinery (hysteresis + outlier filtering).
//
// Near a decision boundary (write ratio where two quorum configurations
// perform almost equally) the Oracle's prediction can flip round to round.
// Without damping, every flip triggers a reconfiguration whose repair
// transient costs throughput. This ablation runs a boundary workload with
// the stability features on and off and reports reconfiguration churn and
// throughput variability.
#include <cmath>
#include <cstdio>

#include "autonomic/autonomic_manager.hpp"
#include "bench/bench_common.hpp"
#include "core/cluster.hpp"
#include "core/experiment.hpp"
#include "oracle/oracle.hpp"
#include "util/stats.hpp"
#include "util/time.hpp"

namespace {

using namespace qopt;

struct StabilityResult {
  std::uint64_t reconfigs = 0;
  std::uint64_t restarts = 0;
  double mean_tput = 0;
  double cv_tput = 0;  // coefficient of variation across 5 s buckets
};

StabilityResult run(bool stabilized,
                    const std::shared_ptr<oracle::Oracle>& oracle) {
  ClusterConfig config;
  config.seed = 41;
  config.initial_quorum = {3, 3};
  config.check_consistency = false;
  config.num_proxies = 1;
  config.clients_per_proxy = 10;
  Cluster cluster(config);
  constexpr std::uint64_t kObjects = 2'000;
  cluster.preload(kObjects, 4096);
  // Boundary workload: ~42% writes sits right at the learned tree's
  // write-ratio threshold, and the tree's ops_per_sec splits make its
  // prediction sensitive to round-to-round throughput fluctuation.
  cluster.set_workload(workload::sweep_point(0.42, 4096, kObjects));

  autonomic::AutonomicOptions tuning;
  tuning.round_window = seconds(4);
  tuning.quarantine = seconds(2);
  tuning.drift_hysteresis = stabilized;
  tuning.filter_kpi_outliers = stabilized;
  tuning.detect_workload_shift = stabilized;
  if (!stabilized) tuning.restart_drop_fraction = 0.10;  // jumpy restarts
  cluster.enable_autotuning(tuning, oracle);

  const Duration total = seconds(240);
  cluster.run_for(total);

  StabilityResult result;
  result.reconfigs = cluster.obs().registry().counter_value("rm.reconfigurations_completed");
  result.restarts = cluster.obs().registry().counter_value("am.restarts");
  const Duration bucket = seconds(5);
  RunningStats stats;
  for (Time t = seconds(60); t + bucket <= total; t += bucket) {
    stats.add(cluster.metrics().throughput(t, t + bucket));
  }
  result.mean_tput = stats.mean();
  result.cv_tput = stats.mean() > 0 ? stats.stddev() / stats.mean() : 0;
  return result;
}

}  // namespace

int main() {
  bench::print_header(
      "Ablation: stability machinery (hysteresis + KPI outlier filter)",
      "quarantine/moving-average style damping prevents oscillation on "
      "boundary workloads (Section 4's stability trade-off)");

  const std::vector<CorpusPoint> corpus =
      load_or_generate_corpus(bench::corpus_cache_path(),
                              bench::sweep_spec());
  auto oracle = std::make_shared<oracle::TreeOracle>(5);
  oracle->train(corpus_to_dataset(corpus));

  const StabilityResult off = run(false, oracle);
  const StabilityResult on = run(true, oracle);

  std::printf("%-24s %10s %9s %12s %14s\n", "configuration", "reconfigs",
              "restarts", "mean ops/s", "tput CoV");
  std::printf("%-24s %10llu %9llu %12.0f %13.1f%%\n", "damping off",
              static_cast<unsigned long long>(off.reconfigs),
              static_cast<unsigned long long>(off.restarts), off.mean_tput,
              100 * off.cv_tput);
  std::printf("%-24s %10llu %9llu %12.0f %13.1f%%\n", "damping on",
              static_cast<unsigned long long>(on.reconfigs),
              static_cast<unsigned long long>(on.restarts), on.mean_tput,
              100 * on.cv_tput);
  std::printf("\n");
  return 0;
}
