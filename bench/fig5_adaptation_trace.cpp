// Eval-B (abstract claim) — throughput timeline across a workload shift
// with Q-OPT enabled: "incurring negligible throughput penalties during
// reconfigurations in most of the scenarios".
//
// A Dropbox-style commute pattern [14]: a read-intensive day phase followed
// by an upload-only evening phase. The trace shows throughput per 5 s
// bucket, the installed default quorum over time, adaptation events, and a
// quantified reconfiguration penalty.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "autonomic/autonomic_manager.hpp"
#include "bench/bench_common.hpp"
#include "core/cluster.hpp"
#include "util/time.hpp"
#include "workload/workload.hpp"

int main() {
  using namespace qopt;
  bench::print_header(
      "Adaptation trace across a workload shift (read-heavy -> write-heavy)",
      "Q-OPT re-tunes autonomously; throughput penalty during "
      "reconfiguration is negligible");

  constexpr std::uint64_t kObjects = 10'000;
  ClusterConfig config;  // full 5-proxy testbed
  config.seed = 31;
  config.initial_quorum = {3, 3};
  config.check_consistency = false;
  Cluster cluster(config);
  cluster.preload(kObjects, 4096);
  const Duration phase_len = seconds(150);
  cluster.set_workload(std::make_shared<workload::PhasedWorkload>(
      std::vector<workload::PhasedWorkload::Phase>{
          {phase_len, workload::ycsb_b(kObjects)},      // day: 95% reads
          {phase_len, workload::backup_c(kObjects)}}));  // evening: 99% writes

  autonomic::AutonomicOptions tuning;
  tuning.round_window = seconds(5);
  tuning.quarantine = seconds(3);
  cluster.enable_autotuning(tuning);
  std::vector<std::pair<Time, std::string>> events;
  cluster.am()->set_event_callback(
      [&](Time t, const std::string& what) { events.emplace_back(t, what); });

  const Duration total = 2 * phase_len;
  cluster.run_for(total);

  // ---- timeline
  std::printf("%6s %10s   %s\n", "t(s)", "ops/s", "events");
  std::size_t event_index = 0;
  const Duration bucket = seconds(5);
  for (Time t = 0; t < total; t += bucket) {
    std::printf("%6.0f %10.0f   ", to_seconds(t),
                cluster.metrics().throughput(t, t + bucket));
    bool first = true;
    while (event_index < events.size() &&
           events[event_index].first < t + bucket) {
      std::printf("%s%s", first ? "" : "; ",
                  events[event_index].second.c_str());
      first = false;
      ++event_index;
    }
    std::printf("\n");
  }

  // ---- analysis. Three quantities:
  //  * convergence time: when phase-1 throughput first reaches 95% of its
  //    tuned steady level (adaptation speed);
  //  * post-convergence worst dip: the largest relative throughput drop in
  //    any 5 s bucket after convergence while reconfigurations (steady-mode
  //    drift checks, quarantined rounds) keep happening — this is the
  //    "reconfiguration penalty" the paper reports as negligible;
  //  * recovery time after the workload shift.
  auto steady = [&](Time from, Time to) {
    return cluster.metrics().throughput(from, to);
  };
  const double phase1_steady = steady(seconds(100), phase_len);
  Time converged_at = phase_len;
  for (Time t = 0; t + bucket <= phase_len; t += bucket) {
    if (cluster.metrics().throughput(t, t + bucket) >= 0.95 * phase1_steady) {
      converged_at = t;
      break;
    }
  }
  double worst_dip = 0;
  for (Time t = converged_at; t + bucket <= phase_len - bucket; t += bucket) {
    const double bucket_tput = cluster.metrics().throughput(t, t + bucket);
    worst_dip = std::max(worst_dip, 1.0 - bucket_tput / phase1_steady);
  }
  const double phase2_steady = steady(total - seconds(50), total);
  Time recovered_at = total;
  for (Time t = phase_len; t + bucket <= total; t += bucket) {
    if (cluster.metrics().throughput(t, t + bucket) >= 0.95 * phase2_steady) {
      recovered_at = t;
      break;
    }
  }
  std::printf("\nphase-1 steady throughput (tuned, read-heavy):  %8.0f ops/s\n",
              phase1_steady);
  std::printf("phase-2 steady throughput (tuned, write-heavy): %8.0f ops/s\n",
              phase2_steady);
  std::printf("convergence time (start -> 95%% of steady):     %7.0f s\n",
              to_seconds(converged_at));
  std::printf("post-convergence reconfiguration penalty:       %7.1f%% worst "
              "5s-bucket dip\n",
              worst_dip * 100);
  std::printf("recovery time after workload shift:             %7.0f s\n",
              to_seconds(recovered_at - phase_len));
  std::printf("default quorum at end: R=%d W=%d\n",
              cluster.rm().config().default_q.read_footprint(),
              cluster.rm().config().default_q.write_footprint());
  std::printf("reconfigurations: %llu (epoch changes: %llu)\n\n",
              static_cast<unsigned long long>(
                  cluster.obs().registry().counter_value("rm.reconfigurations_completed")),
              static_cast<unsigned long long>(
                  cluster.obs().registry().counter_value("rm.epoch_changes")));
  return 0;
}
