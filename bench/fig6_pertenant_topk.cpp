// Eval-C — fine-grain per-object tuning on a skewed multi-tenant workload
// (Sections 3-4): three tenants with opposing access profiles share the
// store. A single store-wide quorum cannot satisfy all of them; Q-OPT's
// top-k per-object optimization tunes each tenant's hot objects
// individually.
//
// Conditions compared:
//   static      — fixed balanced quorum (R=3, W=3)
//   global-only — Q-OPT restricted to tail (store-wide) tuning (k = 0)
//   q-opt       — full Q-OPT with per-object top-k optimization
#include <cstdio>
#include <memory>
#include <vector>

#include "autonomic/autonomic_manager.hpp"
#include "bench/bench_common.hpp"
#include "core/cluster.hpp"
#include "kv/types.hpp"
#include "util/time.hpp"

namespace {

using namespace qopt;

constexpr std::uint64_t kKeysPerTenant = 4'000;

struct TenantResult {
  double tenant_tput[3] = {0, 0, 0};
  double total = 0;
  std::size_t overrides = 0;
  kv::QuorumConfig default_q;
};

ClusterConfig make_config() {
  ClusterConfig config;
  config.num_storage = 10;
  config.num_proxies = 3;  // one proxy per tenant
  config.clients_per_proxy = 10;
  config.replication = 5;
  config.initial_quorum = {3, 3};
  config.seed = 77;
  config.check_consistency = false;
  return config;
}

void assign_tenants(Cluster& cluster) {
  // Tenant 0: photo-tagging app, 95% reads. Tenant 1: backup service, 99%
  // writes. Tenant 2: session store, 50/50. Distinct key namespaces,
  // zipfian skew inside each (hot objects exist per tenant).
  cluster.set_workload_for_proxy(
      0, workload::ycsb_b(kKeysPerTenant, 4096, 0));
  cluster.set_workload_for_proxy(
      1, workload::backup_c(kKeysPerTenant, 4096, kKeysPerTenant));
  cluster.set_workload_for_proxy(
      2, workload::ycsb_a(kKeysPerTenant, 4096, 2 * kKeysPerTenant));
}

TenantResult run_condition(bool autotune, std::size_t topk_per_round) {
  Cluster cluster(make_config());
  cluster.preload(3 * kKeysPerTenant, 4096);
  assign_tenants(cluster);
  if (autotune) {
    autonomic::AutonomicOptions tuning;
    tuning.round_window = seconds(5);
    tuning.quarantine = seconds(2);
    tuning.topk_per_round = topk_per_round;
    tuning.improvement_threshold = 0.005;
    tuning.improvement_window = 3;
    cluster.enable_autotuning(tuning);
  }
  cluster.run_for(seconds(220));
  const Time t1 = cluster.now();
  const Time t0 = t1 - seconds(40);

  TenantResult result;
  result.total = cluster.metrics().throughput(t0, t1);
  // Per-tenant throughput from each tenant's clients.
  const std::uint32_t per_proxy = cluster.config().clients_per_proxy;
  std::uint64_t before[3] = {0, 0, 0};
  (void)before;
  for (std::uint32_t tenant = 0; tenant < 3; ++tenant) {
    std::uint64_t ops = 0;
    for (std::uint32_t c = tenant * per_proxy; c < (tenant + 1) * per_proxy;
         ++c) {
      ops += cluster.client(c).ops_completed();
    }
    // Approximate per-tenant steady rate from total ops over the whole run
    // scaled by the overall steady/total ratio.
    const double overall_rate =
        static_cast<double>(cluster.metrics().total_ops()) /
        to_seconds(t1);
    const double steady_scale =
        overall_rate > 0 ? result.total / overall_rate : 0;
    result.tenant_tput[tenant] =
        static_cast<double>(ops) / to_seconds(t1) * steady_scale;
  }
  result.overrides = cluster.rm().config().overrides.size();
  result.default_q = cluster.rm().config().default_q.footprint();
  return result;
}

}  // namespace

int main() {
  bench::print_header(
      "Multi-tenant store: per-object top-k tuning vs store-wide tuning",
      "per-item quorums let tenants with opposing profiles coexist; a "
      "single global quorum must compromise");

  const TenantResult statics = run_condition(false, 0);
  const TenantResult global_only = run_condition(true, 0);
  const TenantResult full = run_condition(true, 16);

  auto print_row = [](const char* name, const TenantResult& r) {
    std::printf("%-12s %10.0f %10.0f %10.0f %10.0f   R=%d,W=%d %9zu\n", name,
                r.tenant_tput[0], r.tenant_tput[1], r.tenant_tput[2], r.total,
                r.default_q.read_q, r.default_q.write_q, r.overrides);
  };
  std::printf("%-12s %10s %10s %10s %10s   %-9s %9s\n", "condition",
              "reads-95%", "writes-99%", "mixed-50%", "total", "default",
              "overrides");
  print_row("static", statics);
  print_row("global-only", global_only);
  print_row("q-opt", full);
  std::printf("\nq-opt vs static total:      %.2fx\n",
              full.total / statics.total);
  std::printf("q-opt vs global-only total: %.2fx\n\n",
              full.total / global_only.total);
  return 0;
}
