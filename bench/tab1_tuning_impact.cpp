// Table 1 (claim, Section 1/2.2) — "the correct tuning of the quorum size
// can impact performance by up to 5x".
//
// For every workload in the 170-point corpus, compare the best and worst
// static quorum configurations and report the distribution of the
// best/worst throughput ratio.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/bench_common.hpp"
#include "core/experiment.hpp"
#include "util/stats.hpp"

int main() {
  using namespace qopt;
  bench::print_header(
      "Tuning impact: best vs worst static quorum across the workload sweep",
      "\"correct tuning of the quorum size can impact performance by up to "
      "5x\" (Section 1)");

  const std::vector<CorpusPoint> corpus =
      load_or_generate_corpus(bench::corpus_cache_path(),
                              bench::sweep_spec());

  std::vector<double> ratios;
  const CorpusPoint* worst_case = nullptr;
  for (const CorpusPoint& point : corpus) {
    if (point.worst_throughput <= 0) continue;
    const double ratio = point.best_throughput / point.worst_throughput;
    ratios.push_back(ratio);
    if (!worst_case ||
        ratio > worst_case->best_throughput / worst_case->worst_throughput) {
      worst_case = &point;
    }
  }

  std::printf("%-34s %8s\n", "metric", "value");
  std::printf("%-34s %8zu\n", "workloads", ratios.size());
  std::printf("%-34s %7.2fx\n", "median best/worst ratio",
              exact_percentile(ratios, 50));
  std::printf("%-34s %7.2fx\n", "p90 best/worst ratio",
              exact_percentile(ratios, 90));
  std::printf("%-34s %7.2fx\n", "max best/worst ratio (\"up to\")",
              exact_percentile(ratios, 100));
  if (worst_case) {
    std::printf(
        "%-34s write%%=%.0f size=%lluKiB optW=%d (%.0f vs %.0f ops/s)\n",
        "most tuning-sensitive workload", worst_case->write_ratio * 100,
        static_cast<unsigned long long>(worst_case->object_bytes / 1024),
        worst_case->optimal_w, worst_case->best_throughput,
        worst_case->worst_throughput);
  }
  const double share_above_2x =
      static_cast<double>(std::count_if(ratios.begin(), ratios.end(),
                                        [](double r) { return r >= 2.0; })) /
      static_cast<double>(ratios.size());
  std::printf("%-34s %7.0f%%\n", "workloads with >= 2x impact",
              share_above_2x * 100);

  // ---- saturated regime: with the full client population the storage
  // servers are the bottleneck, and quorum size multiplies per-operation
  // disk work — this is where the "up to 5x" materializes.
  std::printf("\nsaturated regime (full testbed: 5 proxies x 10 clients):\n");
  std::printf("%-28s %10s %10s %8s\n", "workload", "worst", "best",
              "ratio");
  struct Saturated {
    double write_ratio;
    std::uint64_t size;
  };
  const Saturated points[] = {
      {0.99, 256 << 10}, {0.99, 16 << 10}, {0.90, 64 << 10},
      {0.05, 4 << 10},   {0.50, 64 << 10},
  };
  double max_ratio = 0;
  for (const Saturated& point : points) {
    ExperimentSpec spec = bench::sweep_spec();
    spec.cluster.num_proxies = 5;
    spec.cluster.clients_per_proxy = 10;
    spec.preload_size = point.size;
    spec.measure = seconds(6);
    spec.workload = workload::sweep_point(point.write_ratio, point.size,
                                          spec.preload_objects);
    double best = 0;
    double worst = 0;
    for (const ExperimentResult& r : sweep_quorums(spec)) {
      if (best == 0 || r.throughput_ops > best) best = r.throughput_ops;
      if (worst == 0 || r.throughput_ops < worst) worst = r.throughput_ops;
    }
    const double ratio = worst > 0 ? best / worst : 0;
    max_ratio = std::max(max_ratio, ratio);
    std::printf("w%%=%-3.0f size=%-14llu %10.0f %10.0f %7.2fx\n",
                point.write_ratio * 100,
                static_cast<unsigned long long>(point.size), worst, best,
                ratio);
  }
  std::printf("\nmax impact across regimes: %.2fx (paper: \"up to 5x\")\n\n",
              max_ratio);
  return 0;
}
