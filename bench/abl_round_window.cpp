// Ablation — Autonomic Manager round window length.
//
// Section 4: "the more often the Autonomic Manager queries the machine
// learning model, the faster it reacts to workload changes. However, it
// also increases the risk to trigger unnecessary configuration changes upon
// momentary spikes". This ablation sweeps the monitoring window and reports
// reaction time, reconfiguration count, and converged throughput.
#include <cstdio>

#include "autonomic/autonomic_manager.hpp"
#include "bench/bench_common.hpp"
#include "core/cluster.hpp"
#include "util/time.hpp"

int main() {
  using namespace qopt;
  bench::print_header(
      "Ablation: monitoring-round window length",
      "short windows react faster but risk churn; long windows are stable "
      "but slow (classic autonomic trade-off, Section 4)");

  constexpr std::uint64_t kObjects = 8'000;
  std::printf("%-10s %12s %14s %12s %12s\n", "window", "converge(s)",
              "steady ops/s", "reconfigs", "restarts");

  for (const double window_s : {2.0, 5.0, 10.0, 20.0}) {
    ClusterConfig config;
    config.seed = 23;
    config.initial_quorum = {5, 1};  // wrong for the read-heavy workload
    config.check_consistency = false;
    Cluster cluster(config);
    cluster.preload(kObjects, 4096);
    cluster.set_workload(workload::ycsb_b(kObjects));

    autonomic::AutonomicOptions tuning;
    tuning.round_window = seconds(window_s);
    tuning.quarantine = seconds(window_s / 2);
    cluster.enable_autotuning(tuning);

    const Duration total = seconds(420);
    cluster.run_for(total);

    const double steady =
        cluster.metrics().throughput(total - seconds(60), total);
    // Convergence: first 5 s bucket reaching 95% of the steady level.
    Time converged = total;
    for (Time t = 0; t + seconds(5) <= total; t += seconds(5)) {
      if (cluster.metrics().throughput(t, t + seconds(5)) >= 0.95 * steady) {
        converged = t;
        break;
      }
    }
    std::printf("%6.0f s   %12.0f %14.0f %12llu %12llu\n", window_s,
                to_seconds(converged), steady,
                static_cast<unsigned long long>(
                    cluster.obs().registry().counter_value("rm.reconfigurations_completed")),
                static_cast<unsigned long long>(
                    cluster.obs().registry().counter_value("am.restarts")));
  }
  std::printf("\n");
  return 0;
}
