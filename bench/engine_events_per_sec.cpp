// Engine self-benchmark (ROADMAP item 1): how many simulator events per
// wall second does the discrete-event core sustain, and at what memory
// cost? Closed-loop clients drive the raw engine (consistency checker and
// span tracing off — this measures the engine, not the harness) across a
// small scale ladder, and the trajectory lands in BENCH_engine.json so
// successive engine-speed PRs have a committed before/after artifact.
//
// `--profile` enables the engine self-profiler (src/obs/profiler.hpp) and
// appends each scale's attribution table — per-subsystem event/allocation
// counts, per-wire-message-type delivery counts, queue telemetry — to the
// JSON. Attribution counts are simulation facts: they are byte-identical
// across same-seed reruns, and their per-subsystem sum equals the scale's
// event total (asserted by tests/profiler_test.cpp).
//
// Determinism: all simulation-derived fields (events, ops, messages,
// events per virtual second, profile attribution) are byte-identical
// across same-seed reruns. Wall-derived fields (wall seconds, events/sec,
// RSS, profile wall_ns) are host facts; `--deterministic` zeroes them so
// the byte-identity gate can diff the artifact.
//
// Usage: engine_events_per_sec [--deterministic] [--profile] [--out <path>]
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.hpp"
#include "core/cluster.hpp"
#include "obs/profiler.hpp"
#include "obs/report.hpp"
#include "util/time.hpp"
#include "workload/workload.hpp"

namespace {

struct ScalePoint {
  const char* name;
  std::uint32_t num_storage;
  std::uint32_t num_proxies;
  std::uint32_t clients_per_proxy;
  int replication;
  qopt::Duration measure;
};

struct ScaleResult {
  ScalePoint scale;
  std::uint64_t events = 0;
  std::uint64_t ops = 0;
  std::uint64_t messages_delivered = 0;
  double virtual_seconds = 0.0;
  double events_per_virtual_second = 0.0;
  // Wall-derived (zeroed under --deterministic).
  double wall_seconds = 0.0;
  double events_per_second = 0.0;
  std::uint64_t rss_kb = 0;
  // --profile attribution (empty string otherwise).
  std::string profile_json;
};

/// Current resident set in KiB, from /proc/self/statm. getrusage's
/// ru_maxrss is a process-wide monotone high-water mark, so in a ladder of
/// scales every scale after the biggest-so-far would report a stale peak;
/// current RSS sampled while the scale's cluster is still live is a
/// per-scale fact.
std::uint64_t current_rss_kb() {
  std::FILE* f = std::fopen("/proc/self/statm", "r");
  if (f == nullptr) return 0;
  unsigned long long pages_total = 0;
  unsigned long long pages_resident = 0;
  const int matched =
      std::fscanf(f, "%llu %llu", &pages_total, &pages_resident);
  std::fclose(f);
  if (matched != 2) return 0;
  const long page_size = sysconf(_SC_PAGESIZE);
  if (page_size <= 0) return 0;
  return static_cast<std::uint64_t>(pages_resident) *
         static_cast<std::uint64_t>(page_size) / 1024;
}

ScaleResult run_scale(const ScalePoint& scale, bool deterministic,
                      bool profile) {
  qopt::ClusterConfig config;
  config.num_storage = scale.num_storage;
  config.num_proxies = scale.num_proxies;
  config.clients_per_proxy = scale.clients_per_proxy;
  config.replication = scale.replication;
  config.check_consistency = false;  // engine speed, not harness bookkeeping
  config.profile = profile;
  config.seed = 42;
  qopt::Cluster cluster(config);
  cluster.preload(4096, 4096);
  cluster.set_workload(qopt::workload::ycsb_b(4096));

  cluster.run_for(qopt::seconds(1));  // warmup: reach steady state
  const qopt::Time t0 = cluster.now();
  const std::uint64_t events_before = cluster.simulator().events_processed();
  // qopt-lint: allow(wall-clock) measuring host engine speed, not simulated time
  const auto wall_start = std::chrono::steady_clock::now();
  cluster.run_for(scale.measure);
  // qopt-lint: allow(wall-clock) measuring host engine speed, not simulated time
  const auto wall_end = std::chrono::steady_clock::now();
  const qopt::obs::RunReport report = cluster.report(t0, cluster.now());

  ScaleResult r;
  r.scale = scale;
  r.events = cluster.simulator().events_processed() - events_before;
  r.ops = report.ops;
  r.messages_delivered = report.messages_delivered;
  r.virtual_seconds =
      static_cast<double>(cluster.now() - t0) / 1e9;
  r.events_per_virtual_second =
      r.virtual_seconds > 0
          ? static_cast<double>(r.events) / r.virtual_seconds
          : 0.0;
  if (!deterministic) {
    r.wall_seconds =
        std::chrono::duration<double>(wall_end - wall_start).count();
    r.events_per_second =
        r.wall_seconds > 0 ? static_cast<double>(r.events) / r.wall_seconds
                           : 0.0;
    // Sampled while this scale's cluster is still allocated.
    r.rss_kb = current_rss_kb();
  }
  if (profile) {
    qopt::obs::ProfileReport prof = cluster.obs().profiler().report();
    if (deterministic) prof.zero_wall();
    r.profile_json = prof.to_json();
  }
  return r;
}

void append_json(std::string& out, const ScaleResult& r) {
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "    {\n"
      "      \"scale\": \"%s\",\n"
      "      \"storage\": %u,\n"
      "      \"proxies\": %u,\n"
      "      \"clients\": %u,\n"
      "      \"replication\": %d,\n"
      "      \"virtual_seconds\": %.3f,\n"
      "      \"events\": %llu,\n"
      "      \"ops\": %llu,\n"
      "      \"messages_delivered\": %llu,\n"
      "      \"events_per_virtual_second\": %.1f,\n"
      "      \"wall_seconds\": %.3f,\n"
      "      \"events_per_second\": %.1f,\n"
      "      \"rss_kb\": %llu",
      r.scale.name, r.scale.num_storage, r.scale.num_proxies,
      r.scale.num_proxies * r.scale.clients_per_proxy, r.scale.replication,
      r.virtual_seconds, static_cast<unsigned long long>(r.events),
      static_cast<unsigned long long>(r.ops),
      static_cast<unsigned long long>(r.messages_delivered),
      r.events_per_virtual_second, r.wall_seconds, r.events_per_second,
      static_cast<unsigned long long>(r.rss_kb));
  out += buf;
  if (!r.profile_json.empty()) {
    out += ",\n      \"profile\": ";
    out += r.profile_json;
  }
  out += "\n    }";
}

}  // namespace

int main(int argc, char** argv) {
  bool deterministic = false;
  bool profile = false;
  std::string out_path = "BENCH_engine.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--deterministic") {
      deterministic = true;
    } else if (arg == "--profile") {
      profile = true;
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: engine_events_per_sec [--deterministic] "
                   "[--profile] [--out <path>]\n");
      return 2;
    }
  }

  qopt::bench::print_header(
      "engine_events_per_sec — simulator engine throughput trajectory",
      "reproduction infrastructure (ROADMAP item 1): events/sec + RSS "
      "per scale");

  const std::vector<ScalePoint> ladder = {
      {"paper_testbed", 10, 5, 10, 5, qopt::seconds(8)},
      {"single_proxy", 10, 1, 10, 5, qopt::seconds(8)},
      {"wide_proxies", 20, 10, 20, 5, qopt::seconds(4)},
  };

  std::string json = "{\n  \"bench\": \"engine_events_per_sec\",\n";
  json += std::string("  \"deterministic\": ") +
          (deterministic ? "true" : "false") + ",\n";
  json += std::string("  \"profiled\": ") + (profile ? "true" : "false") +
          ",\n";
  json += "  \"seed\": 42,\n  \"scales\": [\n";
  for (std::size_t i = 0; i < ladder.size(); ++i) {
    const ScaleResult r = run_scale(ladder[i], deterministic, profile);
    std::printf(
        "%-14s events %10llu  ops %8llu  evt/vsec %12.1f  "
        "evt/sec %12.1f  rss %8llu KiB\n",
        r.scale.name, static_cast<unsigned long long>(r.events),
        static_cast<unsigned long long>(r.ops), r.events_per_virtual_second,
        r.events_per_second, static_cast<unsigned long long>(r.rss_kb));
    append_json(json, r);
    json += i + 1 < ladder.size() ? ",\n" : "\n";
  }
  json += "  ]\n}\n";

  if (!qopt::bench::write_text_file(out_path, json)) return 1;
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
