// Eval-I — where the time goes: storage-disk utilization per quorum
// configuration. Explains the two regimes behind every other result: when
// disks saturate (utilization ~1), throughput is set by per-operation disk
// work (quorum size multiplies it); below saturation it is set by latency.
#include <cstdio>

#include "bench/bench_common.hpp"
#include "core/cluster.hpp"
#include "workload/workload.hpp"

namespace {

using namespace qopt;

void run_row(const char* name,
             std::shared_ptr<workload::OperationSource> load,
             std::uint32_t clients_per_proxy) {
  std::printf("%-18s", name);
  for (int w = 1; w <= 5; ++w) {
    ClusterConfig config;
    config.num_proxies = 1;
    config.clients_per_proxy = clients_per_proxy;
    config.initial_quorum = {5 - w + 1, w};
    config.seed = 47;
    config.check_consistency = false;
    Cluster cluster(config);
    cluster.preload(10'000, 4096);
    cluster.set_workload(load);
    cluster.run_for(seconds(15));
    double utilization = 0;
    for (std::uint32_t i = 0; i < config.num_storage; ++i) {
      utilization += cluster.storage(i).service_pool().utilization(
          cluster.now());
    }
    utilization /= config.num_storage;
    std::printf("   %5.1f%%", 100 * utilization);
  }
  std::printf("\n");
}

}  // namespace

int main() {
  bench::print_header(
      "Storage-disk utilization vs quorum configuration",
      "saturated disks => throughput tracks per-op quorum work; idle disks "
      "=> latency-bound (context for Figures 2/3 and the 5x claim)");

  std::printf("%-18s", "workload");
  for (int w = 1; w <= 5; ++w) std::printf("   R=%d,W=%d", 6 - w, w);
  std::printf("\n");

  std::printf("--- 10 clients (Figure-2 regime) ---\n");
  run_row("YCSB-B (5% wr)", workload::ycsb_b(10'000), 10);
  run_row("Backup-C (99% wr)", workload::backup_c(10'000), 10);
  std::printf("--- 50 clients (saturated regime) ---\n");
  run_row("YCSB-B (5% wr)", workload::ycsb_b(10'000), 50);
  run_row("Backup-C (99% wr)", workload::backup_c(10'000), 50);
  std::printf("\n");
  return 0;
}
