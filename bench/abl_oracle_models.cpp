// Ablation — Oracle model family.
//
// Compares the three predictors on the measured corpus: the white-box
// linear rule (what Figure 3 argues against), the C4.5-style decision tree
// (the paper's choice, "based on the C5.0 algorithm"), and the boosted
// ensemble (C5.0's boosting). Reports cross-validated accuracy and the
// throughput retained when each model drives the end-to-end system.
#include <cstdio>
#include <memory>

#include "autonomic/autonomic_manager.hpp"
#include "bench/bench_common.hpp"
#include "core/cluster.hpp"
#include "core/experiment.hpp"
#include "ml/boosting.hpp"
#include "ml/cross_validation.hpp"
#include "ml/dataset.hpp"
#include "ml/decision_tree.hpp"
#include "oracle/oracle.hpp"
#include "util/time.hpp"

namespace {

using namespace qopt;

double end_to_end_ratio(const std::shared_ptr<oracle::Oracle>& oracle,
                        double write_ratio, std::uint64_t size) {
  ExperimentSpec spec = bench::sweep_spec();
  spec.preload_size = size;
  spec.workload =
      workload::sweep_point(write_ratio, size, spec.preload_objects);
  double best = 0;
  for (const ExperimentResult& r : sweep_quorums(spec)) {
    best = std::max(best, r.throughput_ops);
  }
  ClusterConfig config = spec.cluster;
  config.initial_quorum = {3, 3};
  Cluster cluster(config);
  cluster.preload(spec.preload_objects, size);
  cluster.set_workload(spec.workload);
  autonomic::AutonomicOptions tuning;
  tuning.round_window = seconds(4);
  tuning.quarantine = seconds(2);
  cluster.enable_autotuning(tuning, oracle);
  cluster.run_for(seconds(80));
  const Time t1 = cluster.now();
  return best > 0
             ? cluster.metrics().throughput(t1 - seconds(25), t1) / best
             : 0;
}

}  // namespace

int main() {
  bench::print_header(
      "Ablation: oracle model family (linear rule vs C4.5 tree vs boosted)",
      "the paper picks a decision-tree classifier because simple rules "
      "cannot capture the non-linear workload->quorum map");

  const std::vector<CorpusPoint> corpus =
      load_or_generate_corpus(bench::corpus_cache_path(),
                              bench::sweep_spec());
  const ml::Dataset data = corpus_to_dataset(corpus);

  // ---- cross-validated accuracy
  const ml::CvResult tree_cv =
      ml::cross_validate_model<ml::DecisionTree>(data, 10, ml::TreeParams{});
  ml::BoostParams boost_params;
  boost_params.rounds = 10;
  const ml::CvResult boost_cv =
      ml::cross_validate_model<ml::BoostedTrees>(data, 10, boost_params);
  oracle::LinearRuleOracle rule(5);
  std::size_t rule_exact = 0;
  for (const CorpusPoint& point : corpus) {
    rule_exact += rule.predict_write_quorum(point.features) == point.optimal_w;
  }

  // ---- end-to-end: mean throughput retained vs the optimal static config
  auto linear_oracle = std::make_shared<oracle::LinearRuleOracle>(5);
  auto tree_oracle = std::make_shared<oracle::TreeOracle>(5);
  tree_oracle->train(data);
  auto boosted_oracle = std::make_shared<oracle::BoostedOracle>(5);
  boosted_oracle->train(data, boost_params);

  // Probe selection: the corpus points where the linear rule is wrong AND
  // being wrong is expensive (large best/worst spread). This is where model
  // quality actually shows up end to end.
  std::vector<const CorpusPoint*> probes;
  {
    std::vector<const CorpusPoint*> mispredicted;
    for (const CorpusPoint& point : corpus) {
      if (rule.predict_write_quorum(point.features) != point.optimal_w) {
        mispredicted.push_back(&point);
      }
    }
    std::sort(mispredicted.begin(), mispredicted.end(),
              [](const CorpusPoint* a, const CorpusPoint* b) {
                const double ra = a->worst_throughput > 0
                                      ? a->best_throughput / a->worst_throughput
                                      : 0;
                const double rb = b->worst_throughput > 0
                                      ? b->best_throughput / b->worst_throughput
                                      : 0;
                return ra > rb;
              });
    for (std::size_t i = 0; i < 3 && i < mispredicted.size(); ++i) {
      probes.push_back(mispredicted[i]);
    }
  }
  std::printf("probes (linear-rule mispredictions with the largest cost):\n");
  for (const CorpusPoint* probe : probes) {
    std::printf("  write%%=%.0f size=%lluKiB optimal W=%d (best/worst %.2fx)\n",
                probe->write_ratio * 100,
                static_cast<unsigned long long>(probe->object_bytes / 1024),
                probe->optimal_w,
                probe->best_throughput / probe->worst_throughput);
  }
  std::printf("\n");
  auto mean_ratio = [&](const std::shared_ptr<oracle::Oracle>& oracle) {
    double total = 0;
    for (const CorpusPoint* probe : probes) {
      total += end_to_end_ratio(oracle, probe->write_ratio,
                                probe->object_bytes);
    }
    return probes.empty() ? 0 : total / static_cast<double>(probes.size());
  };

  std::printf("%-24s %12s %16s\n", "model", "CV exact", "tput vs optimal");
  std::printf("%-24s %11.1f%% %15.2f\n", "linear rule",
              100.0 * static_cast<double>(rule_exact) /
                  static_cast<double>(corpus.size()),
              mean_ratio(linear_oracle));
  std::printf("%-24s %11.1f%% %15.2f\n", "decision tree (C4.5)",
              100.0 * tree_cv.accuracy(), mean_ratio(tree_oracle));
  std::printf("%-24s %11.1f%% %15.2f\n", "boosted trees (C5.0)",
              100.0 * boost_cv.accuracy(), mean_ratio(boosted_oracle));
  std::printf("\n(end-to-end probes: mid write ratios and a large-object "
              "point, where the linear rule mispredicts)\n\n");
  return 0;
}
