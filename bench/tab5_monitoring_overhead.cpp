// Eval-G — monitoring overhead of the autonomic loop.
//
// Q-OPT's design explicitly avoids "consuming too many resources with
// system monitoring or meta-data" (Section 3, challenge i). This bench
// isolates the cost: identical clusters run with (a) no autonomic manager,
// (b) the full loop but an improvement threshold so high it converges
// immediately and only ever monitors. The throughput difference is the
// monitoring tax; we also report the per-round control-message budget.
#include <cstdio>

#include "autonomic/autonomic_manager.hpp"
#include "bench/bench_common.hpp"
#include "core/cluster.hpp"
#include "sim/ids.hpp"
#include "util/time.hpp"

namespace {

using namespace qopt;

double run(bool monitoring, Duration round_window, std::uint64_t* rounds,
           std::uint64_t* control_msgs) {
  ClusterConfig config;
  config.seed = 71;
  config.initial_quorum = {1, 5};  // already optimal for YCSB-B: no tuning
  config.check_consistency = false;
  Cluster cluster(config);
  constexpr std::uint64_t kObjects = 20'000;
  cluster.preload(kObjects, 4096);
  cluster.set_workload(workload::ycsb_b(kObjects));
  // Count control-plane traffic exactly: every message to or from the
  // Autonomic Manager / Reconfiguration Manager.
  std::uint64_t control = 0;
  cluster.network().set_send_tap(
      [&control](const sim::NodeId& from, const sim::NodeId& to) {
        const auto is_control = [](const sim::NodeId& node) {
          return node.kind == sim::NodeKind::kAutonomicManager ||
                 node.kind == sim::NodeKind::kReconfigManager;
        };
        if (is_control(from) || is_control(to)) ++control;
      });
  if (monitoring) {
    autonomic::AutonomicOptions tuning;
    tuning.round_window = round_window;
    tuning.improvement_threshold = 1e9;  // converge instantly, keep watching
    cluster.enable_autotuning(tuning);
  }
  cluster.run_for(seconds(120));
  if (rounds) {
    *rounds = cluster.am() ? cluster.obs().registry().counter_value("am.rounds") : 0;
  }
  if (control_msgs) *control_msgs = control;
  const Time t1 = cluster.now();
  return cluster.metrics().throughput(seconds(10), t1);
}

}  // namespace

int main() {
  bench::print_header(
      "Monitoring overhead of the autonomic loop",
      "probabilistic top-k monitoring and per-round statistics must not "
      "impair throughput (Section 3, challenge i)");

  const double baseline = run(false, 0, nullptr, nullptr);
  std::printf("%-26s %12s %10s %12s %18s\n", "configuration", "ops/s",
              "overhead", "rounds", "ctrl msgs/round");
  std::printf("%-26s %12.0f %10s %12s %18s\n", "monitoring off", baseline,
              "-", "-", "-");
  for (const double window_s : {2.0, 5.0, 10.0, 30.0}) {
    std::uint64_t rounds = 0;
    std::uint64_t msgs = 0;
    const double tput = run(true, seconds(window_s), &rounds, &msgs);
    const double per_round =
        rounds ? static_cast<double>(msgs) / static_cast<double>(rounds) : 0;
    std::printf("round window %5.0f s      %12.0f %9.2f%% %12llu %18.1f\n",
                window_s, tput, 100.0 * (1.0 - tput / baseline),
                static_cast<unsigned long long>(rounds), per_round);
  }
  std::printf("\n(per-access cost on the proxy: one Space-Saving update, "
              "O(log capacity); per round per proxy: NEWROUND + ROUNDSTATS "
              "+ NEWTOPK)\n\n");
  return 0;
}
