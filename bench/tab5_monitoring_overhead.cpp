// Eval-G — monitoring overhead of the autonomic loop.
//
// Q-OPT's design explicitly avoids "consuming too many resources with
// system monitoring or meta-data" (Section 3, challenge i). This bench
// isolates the cost: identical clusters run with (a) no autonomic manager,
// (b) the full loop but an improvement threshold so high it converges
// immediately and only ever monitors. The throughput difference is the
// monitoring tax; we also report the per-round control-message budget.
//
// A second section measures the causal-tracing tax the same way: identical
// clusters at 0% / 10% / 100% span sampling. Spans add no virtual-time
// latency (instrumentation is invisible to the simulated cluster), so the
// cost shows up only as simulator wall-clock time per run.
//
// A third section measures the engine self-profiler the same way: identical
// clusters with the profiler off vs on. Like spans, the profiler never
// touches virtual time, so its entire cost is host wall-clock per run; the
// overhead gate in tests/profiler_test.cpp enforces the budget, this bench
// reports the number alongside the tracing tax.
#include <chrono>
#include <cstddef>
#include <cstdio>
#include <string>

#include "autonomic/autonomic_manager.hpp"
#include "bench/bench_common.hpp"
#include "core/cluster.hpp"
#include "obs/profiler.hpp"
#include "sim/ids.hpp"
#include "util/time.hpp"

namespace {

using namespace qopt;

double run(bool monitoring, Duration round_window, std::uint64_t* rounds,
           std::uint64_t* control_msgs) {
  ClusterConfig config;
  config.seed = 71;
  config.initial_quorum = {1, 5};  // already optimal for YCSB-B: no tuning
  config.check_consistency = false;
  Cluster cluster(config);
  constexpr std::uint64_t kObjects = 20'000;
  cluster.preload(kObjects, 4096);
  cluster.set_workload(workload::ycsb_b(kObjects));
  // Count control-plane traffic exactly: every message to or from the
  // Autonomic Manager / Reconfiguration Manager.
  std::uint64_t control = 0;
  cluster.network().set_send_tap(
      [&control](const sim::NodeId& from, const sim::NodeId& to) {
        const auto is_control = [](const sim::NodeId& node) {
          return node.kind == sim::NodeKind::kAutonomicManager ||
                 node.kind == sim::NodeKind::kReconfigManager;
        };
        if (is_control(from) || is_control(to)) ++control;
      });
  if (monitoring) {
    autonomic::AutonomicOptions tuning;
    tuning.round_window = round_window;
    tuning.improvement_threshold = 1e9;  // converge instantly, keep watching
    cluster.enable_autotuning(tuning);
  }
  cluster.run_for(seconds(120));
  if (rounds) {
    *rounds = cluster.am() ? cluster.obs().registry().counter_value("am.rounds") : 0;
  }
  if (control_msgs) *control_msgs = control;
  const Time t1 = cluster.now();
  return cluster.metrics().throughput(seconds(10), t1);
}

struct TracingRun {
  double ops_s = 0;        // virtual-time throughput (identical by design)
  double wall_ms = 0;      // simulator wall-clock cost of the run
  std::uint64_t traces = 0;
  std::uint64_t dropped = 0;
};

// Same cluster as `run()` but shorter, with span tracing at the given
// sampling rate (0 = off, N = every Nth trace per kind). The overhead of
// interest is host CPU time, so this is the one place in the repo that
// deliberately reads the wall clock.
TracingRun run_tracing(std::uint32_t sample_every) {
  ClusterConfig config;
  config.seed = 71;
  config.initial_quorum = {1, 5};
  config.check_consistency = false;
  config.span_sample_every = sample_every;
  Cluster cluster(config);
  constexpr std::uint64_t kObjects = 20'000;
  cluster.preload(kObjects, 4096);
  cluster.set_workload(workload::ycsb_b(kObjects));
  // qopt-lint: allow(wall-clock) measuring host CPU cost of tracing, not simulated time
  const auto wall0 = std::chrono::steady_clock::now();
  cluster.run_for(seconds(30));
  // qopt-lint: allow(wall-clock) measuring host CPU cost of tracing, not simulated time
  const auto wall1 = std::chrono::steady_clock::now();
  TracingRun out;
  out.wall_ms =
      std::chrono::duration<double, std::milli>(wall1 - wall0).count();
  out.ops_s = cluster.metrics().throughput(seconds(10), cluster.now());
  out.traces = cluster.obs().spans().traces_completed();
  out.dropped = cluster.obs().spans().spans_dropped();
  return out;
}

struct ProfilerRun {
  double wall_ms = 0;           // simulator wall-clock cost of the run
  std::uint64_t events = 0;     // engine events processed (identical by design)
  std::string profile_summary;  // one-line attribution when profiling
};

// Same cluster as `run_tracing()` with the engine self-profiler off or on.
// Virtual-time behavior is identical either way (the replay gate enforces
// it); what this measures is the host CPU cost of the instruments.
ProfilerRun run_profiled(bool profile) {
  ClusterConfig config;
  config.seed = 71;
  config.initial_quorum = {1, 5};
  config.check_consistency = false;
  config.profile = profile;
  Cluster cluster(config);
  constexpr std::uint64_t kObjects = 20'000;
  cluster.preload(kObjects, 4096);
  cluster.set_workload(workload::ycsb_b(kObjects));
  // qopt-lint: allow(wall-clock) measuring host CPU cost of the profiler, not simulated time
  const auto wall0 = std::chrono::steady_clock::now();
  cluster.run_for(seconds(30));
  // qopt-lint: allow(wall-clock) measuring host CPU cost of the profiler, not simulated time
  const auto wall1 = std::chrono::steady_clock::now();
  ProfilerRun out;
  out.wall_ms =
      std::chrono::duration<double, std::milli>(wall1 - wall0).count();
  out.events = cluster.simulator().events_processed();
  if (profile) {
    const obs::ProfileReport prof = cluster.obs().profiler().report();
    // Top two subsystems by event share, to give the number a face.
    std::size_t first = 0;
    std::size_t second = 0;
    for (std::size_t i = 1; i < prof.subsystems.size(); ++i) {
      if (prof.subsystems[i].events > prof.subsystems[first].events) {
        second = first;
        first = i;
      } else if (prof.subsystems[i].events > prof.subsystems[second].events ||
                 second == first) {
        second = i;
      }
    }
    char buf[160];
    std::snprintf(buf, sizeof(buf), "top subsystems: %s %.1f%%, %s %.1f%%",
                  prof.subsystems[first].name.c_str(),
                  100.0 * static_cast<double>(prof.subsystems[first].events) /
                      static_cast<double>(prof.events_total),
                  prof.subsystems[second].name.c_str(),
                  100.0 * static_cast<double>(prof.subsystems[second].events) /
                      static_cast<double>(prof.events_total));
    out.profile_summary = buf;
  }
  return out;
}

}  // namespace

int main() {
  bench::print_header(
      "Monitoring overhead of the autonomic loop",
      "probabilistic top-k monitoring and per-round statistics must not "
      "impair throughput (Section 3, challenge i)");

  const double baseline = run(false, 0, nullptr, nullptr);
  std::printf("%-26s %12s %10s %12s %18s\n", "configuration", "ops/s",
              "overhead", "rounds", "ctrl msgs/round");
  std::printf("%-26s %12.0f %10s %12s %18s\n", "monitoring off", baseline,
              "-", "-", "-");
  for (const double window_s : {2.0, 5.0, 10.0, 30.0}) {
    std::uint64_t rounds = 0;
    std::uint64_t msgs = 0;
    const double tput = run(true, seconds(window_s), &rounds, &msgs);
    const double per_round =
        rounds ? static_cast<double>(msgs) / static_cast<double>(rounds) : 0;
    std::printf("round window %5.0f s      %12.0f %9.2f%% %12llu %18.1f\n",
                window_s, tput, 100.0 * (1.0 - tput / baseline),
                static_cast<unsigned long long>(rounds), per_round);
  }
  std::printf("\n(per-access cost on the proxy: one Space-Saving update, "
              "O(log capacity); per round per proxy: NEWROUND + ROUNDSTATS "
              "+ NEWTOPK)\n\n");

  bench::print_header(
      "Causal-tracing overhead",
      "per-operation spans must stay cheap enough to leave on in production "
      "(observability budget, Section 3 challenge i)");
  const TracingRun trace_base = run_tracing(0);
  std::printf("%-26s %12s %12s %10s %12s %12s\n", "sampling", "ops/s",
              "wall ms", "overhead", "traces", "dropped");
  std::printf("%-26s %12.0f %12.1f %10s %12s %12s\n", "tracing off",
              trace_base.ops_s, trace_base.wall_ms, "-", "-", "-");
  struct Point {
    const char* label;
    std::uint32_t every;
  };
  for (const Point point : {Point{"10% (every 10th)", 10},
                            Point{"100% (every trace)", 1}}) {
    const TracingRun r = run_tracing(point.every);
    std::printf("%-26s %12.0f %12.1f %9.2f%% %12llu %12llu\n", point.label,
                r.ops_s, r.wall_ms,
                100.0 * (r.wall_ms / trace_base.wall_ms - 1.0),
                static_cast<unsigned long long>(r.traces),
                static_cast<unsigned long long>(r.dropped));
  }
  std::printf("\n(spans never touch virtual time — ops/s is identical by "
              "construction; overhead is host wall-clock per identical "
              "simulated run. Target: <= 5%% at 10%% sampling.)\n\n");

  bench::print_header(
      "Engine self-profiler overhead",
      "per-event cost attribution must stay cheap enough to leave on "
      "(observability budget, Section 3 challenge i)");
  // Alternate off/on and keep each side's best wall time: single runs are
  // at the mercy of the host scheduler, and the signal is a few percent.
  run_profiled(false);  // warm caches/allocator
  ProfilerRun prof_off;
  ProfilerRun prof_on;
  prof_off.wall_ms = 1e300;
  prof_on.wall_ms = 1e300;
  for (int i = 0; i < 3; ++i) {
    const ProfilerRun off = run_profiled(false);
    const ProfilerRun on = run_profiled(true);
    if (off.wall_ms < prof_off.wall_ms) prof_off = off;
    if (on.wall_ms < prof_on.wall_ms) prof_on = on;
  }
  std::printf("%-26s %12s %12s %10s\n", "profiler", "events", "wall ms",
              "overhead");
  std::printf("%-26s %12llu %12.1f %10s\n", "off",
              static_cast<unsigned long long>(prof_off.events),
              prof_off.wall_ms, "-");
  std::printf("%-26s %12llu %12.1f %9.2f%%\n", "on",
              static_cast<unsigned long long>(prof_on.events),
              prof_on.wall_ms,
              100.0 * (prof_on.wall_ms / prof_off.wall_ms - 1.0));
  if (!prof_on.profile_summary.empty()) {
    std::printf("  %s\n", prof_on.profile_summary.c_str());
  }
  std::printf("\n(the profiler never touches virtual time — event counts are "
              "identical by construction; overhead is host wall-clock per "
              "identical simulated run. Gate: < 2%% events/sec delta in "
              "tests/profiler_test.cpp; QOPT_PROFILE=OFF compiles every "
              "instrument away entirely.)\n\n");
  return 0;
}
