// Eval-H — KPI choice: throughput vs latency (Section 3: Q-OPT maximizes
// "a user-defined Key Performance Indicator, such as throughput or
// latency").
//
// In a saturated closed-loop system the two coincide (throughput =
// clients / latency). The distinction matters for an *unsaturated* store:
// clients with think time arrive at a fixed rate, so throughput carries no
// tuning signal — only the latency KPI lets Q-OPT find the SLA-friendly
// configuration.
#include <cstdio>

#include "autonomic/autonomic_manager.hpp"
#include "bench/bench_common.hpp"
#include "core/cluster.hpp"
#include "kv/types.hpp"
#include "util/time.hpp"

namespace {

using namespace qopt;

struct KpiResult {
  double tput = 0;
  double read_p99_ms = 0;
  double write_p99_ms = 0;
  kv::QuorumConfig quorum;
};

KpiResult run(autonomic::Kpi kpi) {
  ClusterConfig config;
  config.seed = 83;
  config.initial_quorum = {3, 3};
  config.client_think_time = milliseconds(150);  // deeply unsaturated
  config.check_consistency = false;
  Cluster cluster(config);
  constexpr std::uint64_t kObjects = 10'000;
  cluster.preload(kObjects, 4096);
  cluster.set_workload(workload::ycsb_b(kObjects));  // 95% reads

  autonomic::AutonomicOptions tuning;
  tuning.round_window = seconds(5);
  tuning.quarantine = seconds(2);
  tuning.kpi = kpi;
  cluster.enable_autotuning(tuning);
  cluster.run_for(seconds(180));

  KpiResult result;
  const Time t1 = cluster.now();
  result.tput = cluster.metrics().throughput(t1 - seconds(60), t1);
  result.read_p99_ms = cluster.metrics().read_latency().percentile(99) / 1e6;
  result.write_p99_ms =
      cluster.metrics().write_latency().percentile(99) / 1e6;
  result.quorum = cluster.rm().config().default_q.footprint();
  return result;
}

}  // namespace

int main() {
  bench::print_header(
      "KPI choice on an unsaturated store (clients with 150 ms think time)",
      "Q-OPT accepts a user-defined KPI — throughput or latency (Section "
      "3). The oracle picks the configuration; the KPI steers the stopping/"
      "restart logic, so both reach the same optimum here");

  const KpiResult by_tput = run(autonomic::Kpi::kThroughput);
  const KpiResult by_latency = run(autonomic::Kpi::kLatency);

  std::printf("%-22s %10s %14s %14s %10s\n", "tuning KPI", "ops/s",
              "read p99 (ms)", "write p99 (ms)", "config");
  std::printf("%-22s %10.0f %14.2f %14.2f    R=%d,W=%d\n", "throughput",
              by_tput.tput, by_tput.read_p99_ms, by_tput.write_p99_ms,
              by_tput.quorum.read_q, by_tput.quorum.write_q);
  std::printf("%-22s %10.0f %14.2f %14.2f    R=%d,W=%d\n", "latency",
              by_latency.tput, by_latency.read_p99_ms,
              by_latency.write_p99_ms, by_latency.quorum.read_q,
              by_latency.quorum.write_q);
  std::printf("\n");
  return 0;
}
