// Eval-D — Oracle accuracy (Section 6 methodology): 10-fold cross-validation
// of the C4.5-style decision tree on the measured 170-workload corpus,
// against the white-box linear rule the paper's Figure 3 argues against.
#include <cstdio>
#include <vector>

#include "bench/bench_common.hpp"
#include "core/experiment.hpp"
#include "ml/cross_validation.hpp"
#include "ml/dataset.hpp"
#include "oracle/oracle.hpp"

int main() {
  using namespace qopt;
  bench::print_header(
      "Oracle accuracy: decision tree (C5.0 family) vs linear rule",
      "black-box decision trees capture the non-linear workload->quorum "
      "relation that defeats linear models (Section 2.2/6)");

  const std::vector<CorpusPoint> corpus =
      load_or_generate_corpus(bench::corpus_cache_path(),
                              bench::sweep_spec());
  const ml::Dataset data = corpus_to_dataset(corpus);

  // ---- decision tree, 10-fold CV
  const ml::CvResult tree_cv = ml::cross_validate(data, 10);

  // ---- linear-rule baseline evaluated on the same labels
  oracle::LinearRuleOracle rule(5);
  std::size_t rule_exact = 0;
  std::size_t rule_within_one = 0;
  for (const CorpusPoint& point : corpus) {
    const int predicted = rule.predict_write_quorum(point.features);
    if (predicted == point.optimal_w) ++rule_exact;
    if (std::abs(predicted - point.optimal_w) <= 1) ++rule_within_one;
  }
  const double n = static_cast<double>(corpus.size());

  // ---- throughput cost of mispredictions: if the oracle's pick is off,
  // how much of the optimal throughput does the system still get? Use the
  // full-data tree (as deployed) on its own training points for the bound,
  // and CV accuracy for generalization.
  oracle::TreeOracle tree(5);
  tree.train(data);

  std::printf("%-36s %12s %12s\n", "model", "exact", "within-1");
  std::printf("%-36s %11.1f%% %11.1f%%\n",
              "decision tree (10-fold CV)", 100 * tree_cv.accuracy(),
              100 * tree_cv.within_one_accuracy());
  std::printf("%-36s %11.1f%% %11.1f%%\n", "linear rule (write-ratio only)",
              100 * static_cast<double>(rule_exact) / n,
              100 * static_cast<double>(rule_within_one) / n);

  std::printf("\nconfusion matrix (rows=measured optimal W, cols=predicted, "
              "10-fold CV):\n      ");
  for (int w = 1; w <= 5; ++w) std::printf("  W=%d", w);
  std::printf("\n");
  for (int actual = 1; actual <= 5; ++actual) {
    std::printf("  W=%d ", actual);
    for (int predicted = 1; predicted <= 5; ++predicted) {
      std::size_t count = 0;
      const auto& confusion = tree_cv.confusion;
      if (static_cast<std::size_t>(actual) < confusion.size() &&
          static_cast<std::size_t>(predicted) < confusion[0].size()) {
        count = confusion[static_cast<std::size_t>(actual)]
                         [static_cast<std::size_t>(predicted)];
      }
      std::printf(" %4zu", count);
    }
    std::printf("\n");
  }

  std::printf("\ntree size: %zu nodes, %zu leaves, depth %d\n",
              tree.tree().node_count(), tree.tree().leaf_count(),
              tree.tree().depth());
  std::printf("\nlearned tree:\n%s\n",
              tree.tree().to_string(oracle::WorkloadFeatures::names()).c_str());
  return 0;
}
