// Eval-F — fault-tolerance degradation (beyond the paper's reliable-channel
// assumption, docs/ROBUSTNESS.md): throughput and tail latency as the link
// loss rate grows (0 / 0.1 / 1 / 5 %), with the proxies' timeout/retransmit
// plane keeping every operation live; and the throughput dip/recovery around
// a 2 s storage partition followed by a heal.
#include <cstdio>
#include <cstdint>

#include "bench/bench_common.hpp"
#include "core/cluster.hpp"
#include "obs/registry.hpp"
#include "obs/report.hpp"
#include "sim/ids.hpp"
#include "util/time.hpp"
#include "workload/workload.hpp"

namespace {

using namespace qopt;

ClusterConfig make_config(double loss) {
  ClusterConfig config;
  config.num_storage = 10;
  config.num_proxies = 3;
  config.clients_per_proxy = 10;
  config.replication = 5;
  config.initial_quorum = {3, 3};
  config.seed = 88;
  config.net_loss = loss;
  // The client<->proxy hop is covered by the client's failover timer, the
  // proxy<->storage hop by the retransmit plane.
  config.client_retry_timeout = loss > 0 ? seconds(1) : Duration{0};
  return config;
}

struct LossRow {
  double loss = 0;
  double tput = 0;
  double read_p99 = 0;
  double write_p99 = 0;
  std::uint64_t lost = 0;
  std::uint64_t retries = 0;
  std::uint64_t timeouts = 0;
  bool consistent = true;
};

LossRow run_loss_point(double loss) {
  const ClusterConfig config = make_config(loss);
  Cluster cluster(config);
  cluster.preload(10'000, 4096);
  cluster.set_workload(workload::ycsb_a(10'000, 4096));
  const obs::RunReport report =
      bench::run_and_report(cluster, seconds(2), seconds(12));

  LossRow row;
  row.loss = loss;
  row.tput = report.throughput_ops;
  row.read_p99 = report.read_latency.p99_ms;
  row.write_p99 = report.write_latency.p99_ms;
  row.lost = report.dropped_link_loss;
  for (std::uint32_t i = 0; i < config.num_proxies; ++i) {
    row.retries += cluster.obs().registry().counter_value(
        obs::instrument_name("proxy", i, "retries"));
    row.timeouts += cluster.obs().registry().counter_value(
        obs::instrument_name("proxy", i, "timeouts"));
  }
  row.consistent = report.consistency_violations == 0;
  return row;
}

void partition_degradation() {
  Cluster cluster(make_config(0.0));
  cluster.preload(10'000, 4096);
  cluster.set_workload(workload::ycsb_a(10'000, 4096));
  cluster.run_for(seconds(4));  // warmup

  const auto window_tput = [&](Duration length) {
    const Time t0 = cluster.now();
    cluster.run_for(length);
    return cluster.metrics().throughput(t0, cluster.now());
  };

  const double before = window_tput(seconds(4));
  const std::uint64_t id =
      cluster.isolate({sim::storage_id(0), sim::storage_id(1)});
  const double during = window_tput(seconds(2));
  cluster.heal_partition(id);
  const double after = window_tput(seconds(4));

  std::printf("\n2 s partition of storage {0,1} (symmetric), then heal:\n");
  std::printf("  %-22s %10.0f ops/s\n", "before", before);
  std::printf("  %-22s %10.0f ops/s  (%.0f%% of steady)\n", "during partition",
              during, before > 0 ? 100.0 * during / before : 0.0);
  std::printf("  %-22s %10.0f ops/s  (%.0f%% of steady)\n", "after heal",
              after, before > 0 ? 100.0 * after / before : 0.0);
  std::printf("  partition drops       %10llu messages\n",
              static_cast<unsigned long long>(
                  cluster.network_stats().dropped_partitioned));
  std::printf("  consistency           %10s\n",
              cluster.checker().clean() ? "clean" : "VIOLATED");
}

// Replicated-RM failover cost: the same store-wide reconfiguration, once
// undisturbed and once with the RM leader crashed mid-round — the follower
// resumes the round from the replicated log, so the price of the failure is
// detection delay plus a re-driven phase, not a lost round.
struct RmFailoverRow {
  bool completed = false;
  double latency_ms = 0;
  std::uint64_t leader_changes = 0;
  std::uint64_t rounds_resumed = 0;
  bool consistent = true;
};

RmFailoverRow run_rm_failover_point(bool crash_leader) {
  ClusterConfig config = make_config(0.0);
  config.rm_replicas = 3;
  Cluster cluster(config);
  cluster.preload(10'000, 4096);
  cluster.set_workload(workload::ycsb_a(10'000, 4096));
  cluster.run_for(seconds(4));  // warmup

  RmFailoverRow row;
  const Time started = cluster.now();
  Time finished = started;
  cluster.reconfigure({4, 2}, [&](bool ok) {
    row.completed = ok;
    finished = cluster.now();
  });
  if (crash_leader) {
    cluster.simulator().after(milliseconds(4), [&cluster] {
      cluster.crash_rm(cluster.replicated_rm()->leader());
    });
  }
  cluster.run_for(seconds(5));

  row.latency_ms = to_seconds(finished - started) * 1e3;
  auto& reg = cluster.obs().registry();
  row.leader_changes = reg.counter_value("rm.leader_changes");
  row.rounds_resumed = reg.counter_value("rm.rounds_resumed");
  row.consistent = cluster.report().consistency_violations == 0;
  return row;
}

void rm_failover_section() {
  std::printf("\nreplicated RM (3 replicas): store-wide reconfiguration "
              "latency, leader crashed 4 ms into the round:\n");
  std::printf("  %-22s %12s %9s %9s %6s\n", "scenario", "reconfig",
              "failover", "resumed", "safe");
  for (const bool crash : {false, true}) {
    const RmFailoverRow row = run_rm_failover_point(crash);
    std::printf("  %-22s %9.2f ms %9llu %9llu %6s\n",
                crash ? "leader crash mid-round" : "no failure",
                row.completed ? row.latency_ms : -1.0,
                static_cast<unsigned long long>(row.leader_changes),
                static_cast<unsigned long long>(row.rounds_resumed),
                row.consistent && row.completed ? "yes" : "NO");
  }
}

}  // namespace

int main() {
  bench::print_header(
      "Fault tolerance: throughput/latency vs link loss, partition recovery",
      "departure from Section 3's reliable channels — retransmits with "
      "backoff keep the store live and consistent on lossy links");

  std::printf("%-8s %10s %12s %12s %10s %9s %9s %6s\n", "loss", "ops/s",
              "read p99", "write p99", "lost", "retries", "timeouts", "safe");
  for (const double loss : {0.0, 0.001, 0.01, 0.05}) {
    const LossRow row = run_loss_point(loss);
    std::printf("%-8.3f %10.0f %9.2f ms %9.2f ms %10llu %9llu %9llu %6s\n",
                row.loss * 100.0, row.tput, row.read_p99, row.write_p99,
                static_cast<unsigned long long>(row.lost),
                static_cast<unsigned long long>(row.retries),
                static_cast<unsigned long long>(row.timeouts),
                row.consistent ? "yes" : "NO");
  }

  partition_degradation();
  rm_failover_section();
  return 0;
}
