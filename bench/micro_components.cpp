// Component micro-benchmarks (google-benchmark): per-operation costs of the
// pieces Q-OPT puts on the data path or in the control loop — Space-Saving
// updates (every client access), decision-tree inference (per tuned object
// per round), replica placement, key sampling, and the simulation kernel.
#include <benchmark/benchmark.h>

#include "kv/placement.hpp"
#include "ml/dataset.hpp"
#include "ml/decision_tree.hpp"
#include "sim/ids.hpp"
#include "sim/network.hpp"
#include "sim/simulator.hpp"
#include "topk/space_saving.hpp"
#include "util/rng.hpp"
#include "workload/workload.hpp"

namespace {

using namespace qopt;

void BM_RngNext(benchmark::State& state) {
  Rng rng(1);
  for (auto _ : state) benchmark::DoNotOptimize(rng.next());
}
BENCHMARK(BM_RngNext);

void BM_ZipfianSample(benchmark::State& state) {
  workload::ZipfianKeys keys(static_cast<std::uint64_t>(state.range(0)));
  Rng rng(2);
  for (auto _ : state) benchmark::DoNotOptimize(keys.sample(rng));
}
BENCHMARK(BM_ZipfianSample)->Arg(1000)->Arg(100000);

void BM_SpaceSavingAdd(benchmark::State& state) {
  topk::SpaceSaving summary(static_cast<std::size_t>(state.range(0)));
  workload::ZipfianKeys keys(1'000'000);
  Rng rng(3);
  for (auto _ : state) summary.add(keys.sample(rng));
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_SpaceSavingAdd)->Arg(64)->Arg(1024);

void BM_SpaceSavingTop(benchmark::State& state) {
  topk::SpaceSaving summary(128);
  workload::ZipfianKeys keys(100'000);
  Rng rng(4);
  for (int i = 0; i < 100'000; ++i) summary.add(keys.sample(rng));
  for (auto _ : state) benchmark::DoNotOptimize(summary.top(16));
}
BENCHMARK(BM_SpaceSavingTop);

void BM_TreeTrain(benchmark::State& state) {
  ml::Dataset data({"write_ratio", "avg_size_kib", "ops_per_sec"});
  Rng rng(5);
  for (int i = 0; i < static_cast<int>(state.range(0)); ++i) {
    const double ratio = rng.next_double();
    const double size = rng.uniform(1, 512);
    const int label = ratio > 0.5 ? 1 : (size > 64 ? 2 : 5);
    data.add_row({ratio, size, rng.uniform(10, 5000)}, label);
  }
  for (auto _ : state) {
    ml::DecisionTree tree;
    tree.train(data);
    benchmark::DoNotOptimize(tree);
  }
}
BENCHMARK(BM_TreeTrain)->Arg(170)->Arg(1000);

void BM_TreePredict(benchmark::State& state) {
  ml::Dataset data({"write_ratio", "avg_size_kib", "ops_per_sec"});
  Rng rng(6);
  for (int i = 0; i < 500; ++i) {
    const double ratio = rng.next_double();
    const double size = rng.uniform(1, 512);
    data.add_row({ratio, size, rng.uniform(10, 5000)},
                 ratio > 0.5 ? 1 : (size > 64 ? 2 : 5));
  }
  ml::DecisionTree tree;
  tree.train(data);
  std::vector<double> row{0.4, 32.0, 900.0};
  for (auto _ : state) benchmark::DoNotOptimize(tree.predict(row));
}
BENCHMARK(BM_TreePredict);

void BM_PlacementReplicas(benchmark::State& state) {
  kv::Placement placement(static_cast<std::uint32_t>(state.range(0)), 5, 7);
  std::uint64_t oid = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(placement.replicas(++oid));
  }
}
BENCHMARK(BM_PlacementReplicas)->Arg(10)->Arg(100);

void BM_SimulatorEventChain(benchmark::State& state) {
  // Cost of schedule + dispatch for a chain of dependent events.
  for (auto _ : state) {
    sim::Simulator sim;
    int remaining = 1000;
    std::function<void()> step = [&] {
      if (--remaining > 0) sim.after(10, step);
    };
    sim.after(10, step);
    sim.run();
    benchmark::DoNotOptimize(sim.events_processed());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 1000);
}
BENCHMARK(BM_SimulatorEventChain);

void BM_NetworkSendDeliver(benchmark::State& state) {
  sim::Simulator sim;
  Rng rng(8);
  sim::Network<int> net(sim, sim::LatencyModel{}, rng);
  std::uint64_t received = 0;
  net.register_node(sim::storage_id(0),
                    [&](const sim::NodeId&, const int&) { ++received; });
  for (auto _ : state) {
    net.send(sim::proxy_id(0), sim::storage_id(0), 1);
    sim.run();
  }
  benchmark::DoNotOptimize(received);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_NetworkSendDeliver);

}  // namespace

BENCHMARK_MAIN();
