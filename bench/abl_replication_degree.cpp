// Ablation — replication degree N.
//
// The paper fixes N = 5 (its testbed's configuration); the implementation
// is generic in N. This ablation re-runs the Figure-2 trio at N = 3, 5, 7
// and lets Q-OPT tune each, showing (a) the read/write preference shapes
// hold for every N, and (b) the self-tuner exploits the wider configuration
// space a larger N offers.
#include <cstdio>

#include "autonomic/autonomic_manager.hpp"
#include "bench/bench_common.hpp"
#include "core/cluster.hpp"
#include "kv/types.hpp"
#include "util/time.hpp"

namespace {

using namespace qopt;

double tuned_throughput(int replication, double write_ratio,
                        kv::QuorumConfig* chosen) {
  ClusterConfig config;
  config.num_storage = 14;
  config.num_proxies = 2;
  config.clients_per_proxy = 10;
  config.replication = replication;
  config.initial_quorum = {(replication + 1) / 2 + 1, replication / 2 + 1};
  config.seed = 91;
  config.check_consistency = false;
  Cluster cluster(config);
  constexpr std::uint64_t kObjects = 4'000;
  cluster.preload(kObjects, 4096);
  cluster.set_workload(
      workload::sweep_point(write_ratio, 4096, kObjects));
  autonomic::AutonomicOptions tuning;
  tuning.round_window = seconds(4);
  tuning.quarantine = seconds(2);
  cluster.enable_autotuning(tuning);
  cluster.run_for(seconds(90));
  const Time t1 = cluster.now();
  *chosen = cluster.rm().config().default_q.footprint();
  return cluster.metrics().throughput(t1 - seconds(30), t1);
}

}  // namespace

int main() {
  bench::print_header(
      "Ablation: replication degree N (the implementation is generic in N)",
      "read-heavy tunes to R=1/W=N, write-heavy to R=N/W=1, for every N; "
      "larger N widens the tunable range");

  std::printf("%-6s %-22s %12s %14s\n", "N", "workload", "ops/s",
              "tuned config");
  for (const int n : {3, 5, 7}) {
    for (const double write_ratio : {0.05, 0.5, 0.95}) {
      kv::QuorumConfig chosen;
      const double tput = tuned_throughput(n, write_ratio, &chosen);
      std::printf("%-6d write%%=%-15.0f %12.0f      R=%d,W=%d\n", n,
                  write_ratio * 100, tput, chosen.read_q, chosen.write_q);
    }
  }
  std::printf("\n");
  return 0;
}
