// Figure 2 — "Normalized throughput of the studied workloads".
//
// YCSB Workload A (50/50), Workload B (95% reads) and the paper's backup
// Workload C (99% writes), each run under every strict quorum configuration
// R/W in {(1,5),(2,4),(3,3),(4,2),(5,1)} with N=5, one proxy and 10 clients
// (Section 2.2). Throughput is normalized to the best configuration per
// workload, reproducing the figure's bars.
#include <cstdio>
#include <vector>

#include "bench/bench_common.hpp"
#include "core/experiment.hpp"
#include "kv/types.hpp"
#include "workload/workload.hpp"

int main() {
  using namespace qopt;
  bench::print_header(
      "Figure 2: normalized throughput vs quorum configuration",
      "smaller read quorums win read-dominated workloads (B), smaller write "
      "quorums win write-dominated ones (C); mixed (A) is much flatter");

  ExperimentSpec spec = bench::figure2_spec();
  struct Row {
    const char* name;
    std::shared_ptr<workload::OperationSource> load;
  };
  const std::vector<Row> rows = {
      {"YCSB-A (50% wr)", workload::ycsb_a(spec.preload_objects)},
      {"YCSB-B ( 5% wr)", workload::ycsb_b(spec.preload_objects)},
      {"Backup-C(99% wr)", workload::backup_c(spec.preload_objects)},
  };

  std::printf("%-17s", "workload");
  for (int w = 1; w <= 5; ++w) std::printf("  R=%d,W=%d", 6 - w, w);
  std::printf("   best\n");

  for (const Row& row : rows) {
    spec.workload = row.load;
    const std::vector<ExperimentResult> results = sweep_quorums(spec);
    double best = 0;
    kv::QuorumConfig best_q;
    for (const ExperimentResult& r : results) {
      if (r.throughput_ops > best) {
        best = r.throughput_ops;
        best_q = r.quorum;
      }
    }
    std::printf("%-17s", row.name);
    for (const ExperimentResult& r : results) {
      std::printf("    %5.2f", r.throughput_ops / best);
    }
    std::printf("   R=%d,W=%d (%0.0f ops/s)\n", best_q.read_q, best_q.write_q,
                best);
  }
  std::printf("\n");
  return 0;
}
