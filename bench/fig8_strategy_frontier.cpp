// Figure 8 — "Strategy frontier: optimized quorum strategies vs the uniform
// (r, w) grid".
//
// Q-OPT picks the best strict (r, w) pair per object; "Read-Write Quorum
// Systems Made Practical" (Whittaker et al.) shows the optimum over *all*
// quorum systems usually lies off that grid. This bench quantifies the gap
// on the paper's own setup (N=5 over 10 storage nodes, one proxy, 10
// closed-loop clients):
//
//   1. Analytical frontier: for each write ratio, the best strict grid vs
//      the strategy the optimizer picks (max per-replica load share plus the
//      expected quorum latency proxy it optimizes).
//   2. Measured replay: the full (r, w) sweep of Figure 2 against the
//      optimized strategy installed through the live reconfiguration path,
//      reporting throughput, p99 latency, and the measured hottest-replica
//      load share.
//
// The acceptance bar for the strategy redesign: the optimized strategy meets
// or beats the best uniform (r, w) on at least one mix.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.hpp"
#include "core/cluster.hpp"
#include "kv/quorum.hpp"
#include "kv/types.hpp"
#include "obs/report.hpp"
#include "oracle/oracle.hpp"
#include "oracle/strategy_optimizer.hpp"
#include "util/time.hpp"
#include "workload/workload.hpp"

namespace {

using namespace qopt;

constexpr int kReplication = 5;
constexpr std::uint64_t kObjects = 2'000;
constexpr std::uint64_t kObjectBytes = 4'096;

struct Measured {
  std::string label;
  double throughput = 0;
  double read_p99 = 0;
  double write_p99 = 0;
  double max_share = 0;  // hottest replica's share of replica ops served
};

/// Runs one cluster with `strategy` installed through the live
/// reconfiguration path and measures the window after it settles.
Measured run_one(const kv::QuorumStrategy& strategy, double write_ratio) {
  ClusterConfig config;
  config.num_storage = 10;
  config.num_proxies = 1;
  config.clients_per_proxy = 10;
  config.replication = kReplication;
  config.seed = 2026;
  Cluster cluster(config);
  cluster.preload(kObjects, kObjectBytes);
  cluster.set_workload(workload::sweep_point(write_ratio, kObjectBytes,
                                             kObjects));
  cluster.reconfigure_strategy(strategy);
  cluster.run_for(seconds(2));  // warmup; covers the install round-trip

  // Per-replica ops served, read off the shared metric registry.
  const auto served = [&](std::uint32_t i) {
    auto& reg = cluster.obs().registry();
    return reg.counter(obs::instrument_name("storage", i, "reads_served"))
               .value() +
           reg.counter(obs::instrument_name("storage", i, "writes_applied"))
               .value() +
           reg.counter(obs::instrument_name("storage", i, "writes_discarded"))
               .value();
  };
  std::vector<std::uint64_t> before(config.num_storage, 0);
  for (std::uint32_t i = 0; i < config.num_storage; ++i) before[i] = served(i);
  const Time t0 = cluster.now();
  cluster.run_for(seconds(8));
  const obs::RunReport report = cluster.report(t0, cluster.now());

  std::uint64_t total = 0;
  std::uint64_t hottest = 0;
  for (std::uint32_t i = 0; i < config.num_storage; ++i) {
    const std::uint64_t node = served(i) - before[i];
    total += node;
    hottest = std::max(hottest, node);
  }

  Measured m;
  m.label = strategy.describe();
  m.throughput = report.throughput_ops;
  m.read_p99 = report.read_latency.p99_ms;
  m.write_p99 = report.write_latency.p99_ms;
  m.max_share = total == 0
                    ? 0.0
                    : static_cast<double>(hottest) / static_cast<double>(total);
  return m;
}

void print_measured(const Measured& m, bool best) {
  std::printf("  %-34s %9.0f  %7.2f  %7.2f  %6.3f%s\n", m.label.c_str(),
              m.throughput, m.read_p99, m.write_p99, m.max_share,
              best ? "  <- best" : "");
}

}  // namespace

int main() {
  bench::print_header(
      "Figure 8: optimized quorum strategies vs the uniform (r, w) grid",
      "weighted read/write quorum systems (quoracle-style) can strictly beat "
      "every strict majority grid on load; the gap is widest on mixed "
      "workloads");

  const oracle::StrategyOptimizer optimizer(kReplication);

  // ---- 1. analytical frontier ------------------------------------------
  std::printf("analytical frontier (N=%d, load = hottest replica's expected "
              "share):\n", kReplication);
  std::printf("  %-8s  %-22s %8s   %-30s %8s\n", "wr mix", "best (r, w) grid",
              "load", "optimized strategy", "load");
  const std::vector<double> mixes = {0.05, 0.25, 0.50, 0.75, 0.95};
  double demo_mix = -1;  // first mix where the optimizer leaves the grid
  for (const double mix : mixes) {
    const auto frontier = optimizer.frontier(mix);
    const std::pair<kv::QuorumStrategy, oracle::StrategyScore>* best_grid =
        nullptr;
    for (const auto& entry : frontier) {
      if (!entry.first.is_majority()) continue;
      if (best_grid == nullptr ||
          entry.second.objective < best_grid->second.objective) {
        best_grid = &entry;
      }
    }
    const kv::QuorumStrategy optimized = optimizer.optimize(
        oracle::WorkloadFeatures{mix, kObjectBytes / 1024.0, 0.0});
    const oracle::StrategyScore score = optimizer.evaluate(optimized, mix);
    std::printf("  %-8.2f  %-22s %8.3f   %-30s %8.3f\n", mix,
                best_grid->first.describe().c_str(),
                best_grid->second.max_load, optimized.describe().c_str(),
                score.max_load);
    if (demo_mix < 0 && !optimized.is_majority()) demo_mix = mix;
  }
  std::printf("\n");

  // ---- 2. measured: (r, w) sweep vs the optimized strategy -------------
  if (demo_mix < 0) demo_mix = 0.5;
  std::printf("measured (write ratio %.2f, %llu objects, live strategy "
              "install):\n", demo_mix,
              static_cast<unsigned long long>(kObjects));
  std::printf("  %-34s %9s  %7s  %7s  %6s\n", "strategy", "ops/s",
              "rd p99", "wr p99", "share");

  std::vector<Measured> rows;
  for (int w = 1; w <= kReplication; ++w) {
    rows.push_back(run_one(
        kv::QuorumStrategy::majority(kReplication - w + 1, w, kReplication),
        demo_mix));
  }
  const kv::QuorumStrategy optimized = optimizer.optimize(
      oracle::WorkloadFeatures{demo_mix, kObjectBytes / 1024.0, 0.0});
  rows.push_back(run_one(optimized, demo_mix));

  std::size_t best = 0;
  for (std::size_t i = 1; i < rows.size(); ++i) {
    if (rows[i].throughput > rows[best].throughput) best = i;
  }
  for (std::size_t i = 0; i < rows.size(); ++i) {
    print_measured(rows[i], i == best);
  }

  const Measured& opt = rows.back();
  std::size_t best_grid = 0;
  double best_grid_share = 1.0;
  for (std::size_t i = 0; i + 1 < rows.size(); ++i) {
    if (rows[i].throughput > rows[best_grid].throughput) best_grid = i;
    best_grid_share = std::min(best_grid_share, rows[i].max_share);
  }
  std::printf("\noptimized strategy vs best grid (%s): %+0.1f%% throughput, "
              "hottest-replica share %.3f vs %.3f\n",
              rows[best_grid].label.c_str(),
              100.0 * (opt.throughput / rows[best_grid].throughput - 1.0),
              opt.max_share, best_grid_share);
  return 0;
}
