// Shared helpers for the paper-reproduction bench harnesses.
//
// Measurement flows through `Cluster::report()`: `run_and_report()` runs the
// warmup/measure phases and hands back one `obs::RunReport` with everything
// the harnesses print (throughput, latencies, quorum state, message and
// consistency accounting) instead of each bench polling six stats structs.
#pragma once

#include <cstdio>
#include <string>

#include "core/cluster.hpp"
#include "core/experiment.hpp"
#include "obs/report.hpp"
#include "obs/span_export.hpp"
#include "util/time.hpp"

namespace qopt::bench {

/// The Section-2.2 motivating setup: one proxy, 10 closed-loop clients,
/// replication degree 5 over 10 storage nodes.
inline ExperimentSpec figure2_spec() {
  ExperimentSpec spec;
  spec.cluster.num_storage = 10;
  spec.cluster.num_proxies = 1;
  spec.cluster.clients_per_proxy = 10;
  spec.cluster.replication = 5;
  spec.cluster.seed = 42;
  spec.preload_objects = 20'000;
  spec.warmup = seconds(2);
  spec.measure = seconds(12);
  return spec;
}

/// The sweep setup used for the ~170-workload study (10 clients per proxy,
/// as stated in Section 2.2 for Figure 3).
inline ExperimentSpec sweep_spec() {
  ExperimentSpec spec;
  spec.cluster.num_storage = 10;
  spec.cluster.num_proxies = 1;
  spec.cluster.clients_per_proxy = 10;
  spec.cluster.replication = 5;
  spec.cluster.seed = 17;
  spec.cluster.check_consistency = false;  // pure performance runs
  spec.preload_objects = 2'000;
  spec.warmup = seconds(1);
  spec.measure = seconds(4);
  return spec;
}

inline const char* corpus_cache_path() { return "qopt_corpus_cache.csv"; }

/// Runs warmup then the measurement window on an already-configured cluster
/// and returns the windowed whole-cluster report (throughput and workload
/// totals cover the measurement window only).
inline obs::RunReport run_and_report(Cluster& cluster, Duration warmup,
                                     Duration measure) {
  cluster.run_for(warmup);
  const Time t0 = cluster.now();
  cluster.run_for(measure);
  return cluster.report(t0, cluster.now());
}

/// Convenience: `run_and_report` with the spec's warmup/measure phases.
inline obs::RunReport run_and_report(Cluster& cluster,
                                     const ExperimentSpec& spec) {
  return run_and_report(cluster, spec.warmup, spec.measure);
}

inline void print_report(const obs::RunReport& report) {
  std::fputs(report.render().c_str(), stdout);
}

/// Writes `content` to `path`; returns false (with a stderr note) on error.
inline bool write_text_file(const std::string& path,
                            const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  std::fwrite(content.data(), 1, content.size(), f);
  std::fclose(f);
  return true;
}

/// Dumps the cluster's completed span traces as Chrome trace_event JSON
/// (load in Perfetto / chrome://tracing). Requires span tracing enabled
/// (`ClusterConfig::span_sample_every > 0`).
inline bool export_chrome_trace(const Cluster& cluster,
                                const std::string& path) {
  return write_text_file(path,
                         obs::to_chrome_json(cluster.obs().spans().completed()));
}

/// Same spans as a flat CSV (one row per span).
inline bool export_span_csv(const Cluster& cluster, const std::string& path) {
  return write_text_file(path,
                         obs::to_span_csv(cluster.obs().spans().completed()));
}

inline void print_header(const std::string& title,
                         const std::string& paper_claim) {
  std::printf("==============================================================="
              "=================\n");
  std::printf("%s\n", title.c_str());
  std::printf("paper: %s\n", paper_claim.c_str());
  std::printf("---------------------------------------------------------------"
              "-----------------\n");
}

}  // namespace qopt::bench
