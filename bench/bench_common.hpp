// Shared helpers for the paper-reproduction bench harnesses.
#pragma once

#include <cstdio>
#include <string>

#include "core/experiment.hpp"

namespace qopt::bench {

/// The Section-2.2 motivating setup: one proxy, 10 closed-loop clients,
/// replication degree 5 over 10 storage nodes.
inline ExperimentSpec figure2_spec() {
  ExperimentSpec spec;
  spec.cluster.num_storage = 10;
  spec.cluster.num_proxies = 1;
  spec.cluster.clients_per_proxy = 10;
  spec.cluster.replication = 5;
  spec.cluster.seed = 42;
  spec.preload_objects = 20'000;
  spec.warmup = seconds(2);
  spec.measure = seconds(12);
  return spec;
}

/// The sweep setup used for the ~170-workload study (10 clients per proxy,
/// as stated in Section 2.2 for Figure 3).
inline ExperimentSpec sweep_spec() {
  ExperimentSpec spec;
  spec.cluster.num_storage = 10;
  spec.cluster.num_proxies = 1;
  spec.cluster.clients_per_proxy = 10;
  spec.cluster.replication = 5;
  spec.cluster.seed = 17;
  spec.cluster.check_consistency = false;  // pure performance runs
  spec.preload_objects = 2'000;
  spec.warmup = seconds(1);
  spec.measure = seconds(4);
  return spec;
}

inline const char* corpus_cache_path() { return "qopt_corpus_cache.csv"; }

inline void print_header(const std::string& title,
                         const std::string& paper_claim) {
  std::printf("==============================================================="
              "=================\n");
  std::printf("%s\n", title.c_str());
  std::printf("paper: %s\n", paper_claim.c_str());
  std::printf("---------------------------------------------------------------"
              "-----------------\n");
}

}  // namespace qopt::bench
