// Eval-F — scalability of the data plane and of Q-OPT's control loop.
//
// Sweeps the cluster size (storage nodes + proxies scaled together) under a
// fixed per-proxy client population and reports raw throughput, throughput
// with Q-OPT's monitoring + tuning active, and the control-plane message
// overhead — Q-OPT's design goal i (Section 3) is that self-tuning must not
// impair scalability.
#include <cstdio>

#include "autonomic/autonomic_manager.hpp"
#include "bench/bench_common.hpp"
#include "core/cluster.hpp"
#include "util/time.hpp"

namespace {

using namespace qopt;

struct ScalePoint {
  double tput_static = 0;
  double tput_qopt = 0;
  double control_msgs_per_op = 0;
};

ScalePoint run_scale(std::uint32_t proxies, std::uint32_t storage,
                     bool autotune) {
  ClusterConfig config;
  config.num_proxies = proxies;
  config.num_storage = storage;
  config.clients_per_proxy = 10;
  config.replication = 5;
  config.initial_quorum = {3, 3};
  config.seed = 67;
  config.check_consistency = false;
  Cluster cluster(config);
  const std::uint64_t objects = 4'000ull * storage;
  cluster.preload(objects, 4096);
  cluster.set_workload(workload::ycsb_b(objects));
  if (autotune) {
    autonomic::AutonomicOptions tuning;
    tuning.round_window = seconds(5);
    cluster.enable_autotuning(tuning);
  }
  cluster.run_for(seconds(90));
  const Time t1 = cluster.now();
  ScalePoint point;
  const double tput = cluster.metrics().throughput(t1 - seconds(30), t1);
  if (autotune) {
    point.tput_qopt = tput;
  } else {
    point.tput_static = tput;
  }
  point.control_msgs_per_op =
      static_cast<double>(cluster.network_stats().messages_sent) /
      static_cast<double>(cluster.metrics().total_ops());
  return point;
}

}  // namespace

int main() {
  bench::print_header(
      "Scalability: cluster size vs throughput, with and without Q-OPT",
      "self-tuning must preserve the system's scalability (design challenge "
      "i, Section 3): monitoring is probabilistic and per-round");

  std::printf("%-22s %12s %12s %10s %14s\n", "cluster", "static",
              "with Q-OPT", "ratio", "msgs/op(Q-OPT)");
  struct Size {
    std::uint32_t proxies;
    std::uint32_t storage;
  };
  for (const Size size : {Size{1, 5}, Size{2, 10}, Size{3, 15},
                          Size{5, 20}, Size{8, 30}}) {
    const ScalePoint without = run_scale(size.proxies, size.storage, false);
    const ScalePoint with = run_scale(size.proxies, size.storage, true);
    std::printf("%u proxies / %2u storage %12.0f %12.0f %9.2fx %14.2f\n",
                size.proxies, size.storage, without.tput_static,
                with.tput_qopt, with.tput_qopt / without.tput_static,
                with.control_msgs_per_op);
  }
  std::printf("\n(workload: YCSB-B from a mid-range R=3,W=3 start; Q-OPT's "
              "gain comes from tuning toward R=1;\n the msgs/op column "
              "includes all data-plane traffic — the control plane adds "
              "only the per-round NEWROUND/ROUNDSTATS/NEWTOPK exchanges "
              "per proxy)\n\n");
  return 0;
}
