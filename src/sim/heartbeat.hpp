// Heartbeat-driven failure detection.
//
// The base FailureDetector is an oracle fed directly by the test/cluster
// harness. The HeartbeatWatcher instead derives suspicion from actual
// message traffic: monitored nodes emit periodic beats over the (lossy-on-
// crash, delay-prone) simulated network, and a node is suspected when its
// beats stop arriving for `timeout`. A late beat clears the suspicion —
// this realizes the eventually-perfect detector the paper assumes, with
// false suspicions arising organically from delay rather than injection.
//
// Template-free by design: the watcher only needs beat(from) calls; the
// message plumbing lives with whoever owns the network's message type.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "sim/failure_detector.hpp"
#include "sim/ids.hpp"
#include "sim/simulator.hpp"
#include "util/time.hpp"

namespace qopt::sim {

class HeartbeatWatcher {
 public:
  /// Suspects a monitored node when no beat arrived for `timeout`; sweeps
  /// every `check_interval`. Suspicions are pushed into (and cleared from)
  /// the given FailureDetector so all existing subscribers keep working.
  HeartbeatWatcher(Simulator& sim, FailureDetector& fd,
                   std::vector<NodeId> monitored, Duration timeout,
                   Duration check_interval);

  /// Records a beat from `from` (call on every received heartbeat).
  void beat(const NodeId& from);

  void start();
  void stop() noexcept { running_ = false; }

  std::uint64_t suspicions_raised() const noexcept { return raised_; }
  std::uint64_t suspicions_cleared() const noexcept { return cleared_; }

 private:
  void sweep();

  Simulator& sim_;
  FailureDetector& fd_;
  std::vector<NodeId> monitored_;
  Duration timeout_;
  Duration check_interval_;
  std::unordered_map<NodeId, Time, NodeIdHash> last_beat_;
  bool running_ = false;
  std::uint64_t raised_ = 0;
  std::uint64_t cleared_ = 0;
};

}  // namespace qopt::sim
