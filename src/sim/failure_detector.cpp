#include "sim/failure_detector.hpp"
#include "sim/ids.hpp"
#include "sim/simulator.hpp"
#include "util/time.hpp"

namespace qopt::sim {

FailureDetector::FailureDetector(Simulator& sim, Duration detection_delay)
    : sim_(sim), detection_delay_(detection_delay) {}

void FailureDetector::node_crashed(const NodeId& id) {
  auto& st = states_[id];
  st.crashed = true;
  ++st.generation;
  sim_.after(detection_delay_, [this, id] {
    if (states_[id].crashed) set_suspected(id, true);
  });
}

void FailureDetector::node_recovered(const NodeId& id) {
  auto& st = states_[id];
  if (!st.crashed) return;
  st.crashed = false;
  ++st.generation;
  set_suspected(id, false);
}

void FailureDetector::inject_false_suspicion(const NodeId& id,
                                             Duration duration) {
  auto& st = states_[id];
  if (st.crashed) return;  // already (going to be) a true suspicion
  const std::uint64_t gen = ++st.generation;
  set_suspected(id, true);
  if (duration > 0) {
    sim_.after(duration, [this, id, gen] {
      auto& cur = states_[id];
      if (!cur.crashed && cur.generation == gen) set_suspected(id, false);
    });
  }
}

void FailureDetector::clear_suspicion(const NodeId& id) {
  auto& st = states_[id];
  if (st.crashed) return;
  ++st.generation;
  set_suspected(id, false);
}

bool FailureDetector::suspects(const NodeId& id) const {
  auto it = states_.find(id);
  return it != states_.end() && it->second.suspected;
}

void FailureDetector::set_suspected(const NodeId& id, bool suspected) {
  auto& st = states_[id];
  if (st.suspected == suspected) return;
  st.suspected = suspected;
  for (auto& listener : listeners_) listener(id, suspected);
}

}  // namespace qopt::sim
