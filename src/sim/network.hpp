// Simulated message-passing network.
//
// Models the paper's system assumptions (Section 3): reliable channels
// (messages are delivered unless sender or receiver crashes) with FIFO
// ordering per sender/receiver pair, on an asynchronous system whose
// synchrony lives entirely in the failure detector.
//
// The class is a template over the message type so that the kernel stays
// independent of the Q-OPT wire protocol.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <span>
#include <unordered_map>
#include <utility>

#include "obs/obs.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "sim/ids.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"

namespace qopt::sim {

/// One-way link latency: base + uniform jitter in [0, jitter).
struct LatencyModel {
  Duration base = microseconds(300);   // LAN one-way incl. kernel/HTTP stack
  Duration jitter = microseconds(500);

  Duration sample(Rng& rng) const {
    const Duration j =
        jitter > 0 ? static_cast<Duration>(rng.next_below(
                         static_cast<std::uint64_t>(jitter)))
                   : 0;
    return base + j;
  }
};

struct NetworkStats {
  std::uint64_t messages_sent = 0;
  std::uint64_t messages_delivered = 0;
  std::uint64_t messages_dropped = 0;  // total = sum of the reasons below
  // Drop reasons (each drop is counted exactly once):
  std::uint64_t dropped_sender_crashed = 0;    // refused at send time
  std::uint64_t dropped_receiver_crashed = 0;  // in flight, receiver dead
  std::uint64_t dropped_unroutable = 0;  // unregistered target / no handler
};

template <typename M>
class Network {
 public:
  using Handler = std::function<void(const NodeId& from, const M& msg)>;

  Network(Simulator& sim, LatencyModel latency, Rng rng)
      : sim_(sim), latency_(latency), rng_(rng) {}

  void register_node(const NodeId& id, Handler handler) {
    nodes_[id] = NodeState{std::move(handler), /*crashed=*/false};
  }

  /// A crashed node neither sends nor receives; messages already in flight
  /// to it are dropped at delivery time (fail-stop, no recovery).
  void set_crashed(const NodeId& id, bool crashed = true) {
    if (auto it = nodes_.find(id); it != nodes_.end()) {
      it->second.crashed = crashed;
    }
  }

  bool is_crashed(const NodeId& id) const {
    auto it = nodes_.find(id);
    return it != nodes_.end() && it->second.crashed;
  }

  /// Optional observer invoked for every send (message accounting in
  /// benches/tests; not part of the simulated system).
  using SendTap = std::function<void(const NodeId& from, const NodeId& to)>;
  void set_send_tap(SendTap tap) { tap_ = std::move(tap); }

  /// Mirror message accounting into a shared registry (instruments under
  /// `net.*`) and emit kNet drop traces. The internal NetworkStats stays
  /// authoritative so the template works standalone without an obs bundle.
  void bind_observability(obs::Observability* o) {
    obs_ = o;
    if (!obs_) {
      sent_ = delivered_ = drop_sender_ = drop_receiver_ = drop_unroutable_ =
          nullptr;
      return;
    }
    auto& reg = obs_->registry();
    sent_ = &reg.counter("net.messages_sent");
    delivered_ = &reg.counter("net.messages_delivered");
    drop_sender_ = &reg.counter("net.dropped.sender_crashed");
    drop_receiver_ = &reg.counter("net.dropped.receiver_crashed");
    drop_unroutable_ = &reg.counter("net.dropped.unroutable");
  }

  void send(const NodeId& from, const NodeId& to, M msg) {
    ++stats_.messages_sent;
    if (sent_) sent_->inc();
    if (tap_) tap_(from, to);
    auto from_it = nodes_.find(from);
    if (from_it != nodes_.end() && from_it->second.crashed) {
      ++stats_.messages_dropped;
      ++stats_.dropped_sender_crashed;
      if (drop_sender_) drop_sender_->inc();
      trace_drop("drop_sender_crashed", from, to);
      return;
    }
    const Duration lat = latency_.sample(rng_);
    // FIFO per ordered pair: clamp the delivery instant to strictly after
    // the previous delivery on this link.
    Time deliver_at = sim_.now() + lat;
    auto& last = last_delivery_[{from, to}];
    if (deliver_at <= last) deliver_at = last + 1;
    last = deliver_at;
    sim_.at(deliver_at, [this, from, to, m = std::move(msg)]() {
      deliver(from, to, m);
    });
  }

  template <typename Range>
  void broadcast(const NodeId& from, const Range& targets, const M& msg) {
    for (const NodeId& to : targets) send(from, to, msg);
  }

  const NetworkStats& stats() const noexcept { return stats_; }

 private:
  struct NodeState {
    Handler handler;
    bool crashed = false;
  };

  void deliver(const NodeId& from, const NodeId& to, const M& msg) {
    auto it = nodes_.find(to);
    if (it == nodes_.end() || !it->second.handler) {
      ++stats_.messages_dropped;
      ++stats_.dropped_unroutable;
      if (drop_unroutable_) drop_unroutable_->inc();
      trace_drop("drop_unroutable", from, to);
      return;
    }
    if (it->second.crashed) {
      ++stats_.messages_dropped;
      ++stats_.dropped_receiver_crashed;
      if (drop_receiver_) drop_receiver_->inc();
      trace_drop("drop_receiver_crashed", from, to);
      return;
    }
    ++stats_.messages_delivered;
    if (delivered_) delivered_->inc();
    it->second.handler(from, msg);
  }

  void trace_drop(const char* name, const NodeId& from, const NodeId& to) {
    if (!obs_ || !obs_->tracer().enabled(obs::Category::kNet)) return;
    obs_->tracer().record(sim_.now(), obs::Category::kNet, name,
                          to_string(from), 0, 0, to_string(to));
  }

  Simulator& sim_;
  LatencyModel latency_;
  Rng rng_;
  std::unordered_map<NodeId, NodeState, NodeIdHash> nodes_;
  std::map<std::pair<NodeId, NodeId>, Time> last_delivery_;
  NetworkStats stats_;
  SendTap tap_;
  obs::Observability* obs_ = nullptr;
  obs::Counter* sent_ = nullptr;
  obs::Counter* delivered_ = nullptr;
  obs::Counter* drop_sender_ = nullptr;
  obs::Counter* drop_receiver_ = nullptr;
  obs::Counter* drop_unroutable_ = nullptr;
};

}  // namespace qopt::sim
