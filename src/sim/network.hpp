// Simulated message-passing network.
//
// Models the paper's system assumptions (Section 3) — reliable channels with
// FIFO ordering per sender/receiver pair on an asynchronous system — plus an
// optional deterministic *link-fault plane* that deliberately departs from
// them (see docs/ROBUSTNESS.md): per-message drop probability, delay spikes,
// duplicate delivery, and one-way or symmetric partitions between node sets.
// Every fault is drawn from the network's seeded RNG (same seed, same
// faults) and counted under its own reason in NetworkStats / the registry.
// With the fault plane disabled (all probabilities zero, no partitions) the
// RNG stream is untouched, so baseline runs stay byte-identical.
//
// The class is a template over the message type so that the kernel stays
// independent of the Q-OPT wire protocol.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <span>
#include <unordered_map>
#include <utility>
#include <variant>
#include <vector>

#include "obs/obs.hpp"
#include "obs/profiler.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "sim/ids.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"

namespace qopt::sim {

namespace detail {
/// Detects std::variant message types so the profiler can count deliveries
/// per alternative (non-variant payloads skip the per-type table).
template <typename T>
inline constexpr bool is_variant_v = false;
template <typename... Ts>
inline constexpr bool is_variant_v<std::variant<Ts...>> = true;
}  // namespace detail

/// One-way link latency: base + uniform jitter in [0, jitter).
struct LatencyModel {
  Duration base = microseconds(300);   // LAN one-way incl. kernel/HTTP stack
  Duration jitter = microseconds(500);

  Duration sample(Rng& rng) const {
    const Duration j =
        jitter > 0 ? static_cast<Duration>(rng.next_below(
                         static_cast<std::uint64_t>(jitter)))
                   : 0;
    return base + j;
  }
};

struct NetworkStats {
  std::uint64_t messages_sent = 0;
  std::uint64_t messages_delivered = 0;
  std::uint64_t messages_dropped = 0;  // total = sum of the reasons below
  // Drop reasons (each drop is counted exactly once):
  std::uint64_t dropped_sender_crashed = 0;    // refused at send time
  std::uint64_t dropped_receiver_crashed = 0;  // in flight, receiver dead
  std::uint64_t dropped_unroutable = 0;  // unregistered target / no handler
  std::uint64_t dropped_link_loss = 0;   // fault plane: random loss
  std::uint64_t dropped_partitioned = 0;  // fault plane: blocked direction
  // Fault-plane extras (not drops):
  std::uint64_t duplicates_delivered = 0;  // extra copies handed to receivers
  std::uint64_t delay_spikes = 0;          // messages given the spike extra
};

template <typename M>
class Network {
 public:
  using Handler = std::function<void(const NodeId& from, const M& msg)>;

  Network(Simulator& sim, LatencyModel latency, Rng rng)
      : sim_(sim), latency_(latency), rng_(rng) {}

  void register_node(const NodeId& id, Handler handler) {
    nodes_[id] = NodeState{std::move(handler), /*crashed=*/false};
  }

  /// A crashed node neither sends nor receives; messages already in flight
  /// to it are dropped at delivery time. Pass false to model a recovery
  /// (crash-recovery nodes re-attach with their durable state).
  void set_crashed(const NodeId& id, bool crashed = true) {
    if (auto it = nodes_.find(id); it != nodes_.end()) {
      it->second.crashed = crashed;
    }
  }

  bool is_crashed(const NodeId& id) const {
    auto it = nodes_.find(id);
    return it != nodes_.end() && it->second.crashed;
  }

  // ------------------------------------------------------ link-fault plane

  /// Per-message drop probability in [0, 1): each non-refused send is lost
  /// with this probability (counted as dropped_link_loss).
  void set_loss(double p) { loss_ = clamp_probability(p); }
  double loss() const noexcept { return loss_; }

  /// Per-message duplication probability in [0, 1): the receiver gets a
  /// second copy, delivered after an independent latency draw (still FIFO
  /// per link).
  void set_duplication(double p) { duplication_ = clamp_probability(p); }

  /// With probability `p`, a message's latency grows by `extra` (tail-delay
  /// bursts; exercises timeout/retransmit paths without losing messages).
  void set_delay_spike(double p, Duration extra) {
    delay_spike_p_ = clamp_probability(p);
    delay_spike_ = extra;
  }

  /// Installs a partition blocking traffic from set `a` to set `b` (and from
  /// `b` to `a` when symmetric). In-flight messages crossing the cut are
  /// dropped at delivery time, like messages to a crashed receiver. Returns
  /// a handle for heal_partition(). Partitions stack; a message is blocked
  /// if any active partition blocks its direction.
  std::uint64_t add_partition(std::vector<NodeId> a, std::vector<NodeId> b,
                              bool symmetric = true) {
    Partition p;
    p.id = next_partition_id_++;
    p.a = std::move(a);
    p.b = std::move(b);
    p.symmetric = symmetric;
    std::sort(p.a.begin(), p.a.end());
    std::sort(p.b.begin(), p.b.end());
    // qopt-perf: allow(vector-growth-hot) fault-script control plane, not per-message
    partitions_.push_back(std::move(p));
    return partitions_.back().id;
  }

  /// Heals one partition; returns false when the handle is unknown
  /// (already healed).
  bool heal_partition(std::uint64_t id) {
    for (auto it = partitions_.begin(); it != partitions_.end(); ++it) {
      if (it->id == id) {
        partitions_.erase(it);
        return true;
      }
    }
    return false;
  }

  void heal_all_partitions() { partitions_.clear(); }
  std::size_t active_partitions() const noexcept { return partitions_.size(); }

  /// True when any active partition blocks from -> to.
  bool partitioned(const NodeId& from, const NodeId& to) const {
    for (const Partition& p : partitions_) {
      if (p.blocks(from, to)) return true;
    }
    return false;
  }

  /// Optional observer invoked for every send (message accounting in
  /// benches/tests; not part of the simulated system).
  using SendTap = std::function<void(const NodeId& from, const NodeId& to)>;
  void set_send_tap(SendTap tap) { tap_ = std::move(tap); }

  /// Mirror message accounting into a shared registry (instruments under
  /// `net.*`) and emit kNet drop traces. The internal NetworkStats stays
  /// authoritative so the template works standalone without an obs bundle.
  void bind_observability(obs::Observability* o) {
    obs_ = o;
    if (!obs_) {
      sent_ = delivered_ = drop_sender_ = drop_receiver_ = drop_unroutable_ =
          drop_loss_ = drop_partition_ = duplicated_ = nullptr;
      return;
    }
    auto& reg = obs_->registry();
    sent_ = &reg.counter("net.messages_sent");
    delivered_ = &reg.counter("net.messages_delivered");
    drop_sender_ = &reg.counter("net.dropped.sender_crashed");
    drop_receiver_ = &reg.counter("net.dropped.receiver_crashed");
    drop_unroutable_ = &reg.counter("net.dropped.unroutable");
    drop_loss_ = &reg.counter("net.dropped.link_loss");
    drop_partition_ = &reg.counter("net.dropped.partitioned");
    duplicated_ = &reg.counter("net.duplicated");
  }

  void send(const NodeId& from, const NodeId& to, M msg) {
    ++stats_.messages_sent;
    if (sent_) sent_->inc();
    if (tap_) tap_(from, to);
    auto from_it = nodes_.find(from);
    if (from_it != nodes_.end() && from_it->second.crashed) {
      ++stats_.messages_dropped;
      ++stats_.dropped_sender_crashed;
      if (drop_sender_) drop_sender_->inc();
      trace_drop("drop_sender_crashed", from, to);
      return;
    }
    // Fault-plane decisions happen at send time, in a fixed order, and only
    // when the corresponding fault is enabled — so a disabled plane consumes
    // no RNG and the baseline schedule is unchanged.
    if (loss_ > 0 && rng_.chance(loss_)) {
      ++stats_.messages_dropped;
      ++stats_.dropped_link_loss;
      if (drop_loss_) drop_loss_->inc();
      trace_drop("drop_link_loss", from, to);
      return;
    }
    Duration lat = latency_.sample(rng_);
    if (delay_spike_p_ > 0 && rng_.chance(delay_spike_p_)) {
      ++stats_.delay_spikes;
      lat += delay_spike_;
    }
    schedule_delivery(from, to, msg, lat);
    if (duplication_ > 0 && rng_.chance(duplication_)) {
      // The duplicate takes its own latency draw: it may arrive well after
      // the original (receivers must be idempotent), though never before it
      // on the same link thanks to the FIFO clamp.
      schedule_delivery(from, to, msg, lat + latency_.sample(rng_),
                        /*duplicate=*/true);
    }
  }

  template <typename Range>
  void broadcast(const NodeId& from, const Range& targets, const M& msg) {
    for (const NodeId& to : targets) send(from, to, msg);
  }

  const NetworkStats& stats() const noexcept { return stats_; }

 private:
  struct NodeState {
    Handler handler;
    bool crashed = false;
  };

  struct Partition {
    std::uint64_t id = 0;
    std::vector<NodeId> a;  // sorted
    std::vector<NodeId> b;  // sorted
    bool symmetric = true;

    static bool contains(const std::vector<NodeId>& set, const NodeId& id) {
      return std::binary_search(set.begin(), set.end(), id);
    }
    bool blocks(const NodeId& from, const NodeId& to) const {
      if (contains(a, from) && contains(b, to)) return true;
      return symmetric && contains(b, from) && contains(a, to);
    }
  };

  static double clamp_probability(double p) {
    return std::clamp(p, 0.0, 1.0);
  }

  /// Hash of an ordered (from, to) link. Each NodeId packs exactly into
  /// (kind << 32) | index, so distinct links mix distinct inputs; the FIFO
  /// table is never iterated, only probed, so hash order can't leak into
  /// the deterministic schedule.
  struct LinkHash {
    std::size_t operator()(
        const std::pair<NodeId, NodeId>& link) const noexcept {
      const std::uint64_t a =
          (static_cast<std::uint64_t>(link.first.kind) << 32) |
          link.first.index;
      const std::uint64_t b =
          (static_cast<std::uint64_t>(link.second.kind) << 32) |
          link.second.index;
      std::uint64_t h = a * 0x9E3779B97F4A7C15ull ^ b;
      h ^= h >> 33;
      h *= 0xFF51AFD7ED558CCDull;
      h ^= h >> 33;
      return static_cast<std::size_t>(h);
    }
  };

  void schedule_delivery(const NodeId& from, const NodeId& to, const M& msg,
                         Duration lat, bool duplicate = false) {
    // FIFO per ordered pair: clamp the delivery instant to strictly after
    // the previous delivery on this link.
    Time deliver_at = sim_.now() + lat;
    auto& last = last_delivery_[{from, to}];
    if (deliver_at <= last) {
      deliver_at = last + 1;
#if QOPT_PROFILE_ENABLED
      // Clamp churn feeds the queue-telemetry section: heavy clamping means
      // the latency model is finer than the link's message rate.
      if (obs_ && obs_->profiler().enabled()) {
        obs_->profiler().note_fifo_clamp();
      }
#endif
    }
    last = deliver_at;
    sim_.at(deliver_at, [this, from, to, duplicate, m = msg]() {
      deliver(from, to, m, duplicate);
    });
  }

  void deliver(const NodeId& from, const NodeId& to, const M& msg,
               bool duplicate) {
#if QOPT_PROFILE_ENABLED
    // Claim the event for the network layer; the component handler invoked
    // below overrides the claim with its own subsystem (last claim wins),
    // leaving kNet charged for drops and the delivery machinery itself.
    obs::EngineProfiler* prof =
        obs_ != nullptr ? &obs_->profiler() : nullptr;
    if (prof != nullptr && prof->enabled()) {
      prof->enter(obs::ProfSubsystem::kNet);
    } else {
      prof = nullptr;
    }
#endif
    auto it = nodes_.find(to);
    if (it == nodes_.end() || !it->second.handler) {
      ++stats_.messages_dropped;
      ++stats_.dropped_unroutable;
      if (drop_unroutable_) drop_unroutable_->inc();
      trace_drop("drop_unroutable", from, to);
      return;
    }
    if (it->second.crashed) {
      ++stats_.messages_dropped;
      ++stats_.dropped_receiver_crashed;
      if (drop_receiver_) drop_receiver_->inc();
      trace_drop("drop_receiver_crashed", from, to);
      return;
    }
    // Partitions cut in-flight traffic too, so the check runs at delivery
    // time: a message sent before the partition and arriving during it is
    // lost, exactly like one addressed to a crashed receiver.
    if (!partitions_.empty() && partitioned(from, to)) {
      ++stats_.messages_dropped;
      ++stats_.dropped_partitioned;
      if (drop_partition_) drop_partition_->inc();
      trace_drop("drop_partitioned", from, to);
      return;
    }
    ++stats_.messages_delivered;
    if (delivered_) delivered_->inc();
    if (duplicate) {
      ++stats_.duplicates_delivered;
      if (duplicated_) duplicated_->inc();
    }
#if QOPT_PROFILE_ENABLED
    if (prof != nullptr) {
      if constexpr (detail::is_variant_v<M>) {
        prof->count_message(msg.index());
      }
    }
#endif
    it->second.handler(from, msg);
  }

  void trace_drop(const char* name, const NodeId& from, const NodeId& to) {
    if (!obs_ || !obs_->tracer().enabled(obs::Category::kNet)) return;
    obs_->tracer().record(sim_.now(), obs::Category::kNet, name,
                          to_string(from), 0, 0, to_string(to));
  }

  Simulator& sim_;
  LatencyModel latency_;
  Rng rng_;
  std::unordered_map<NodeId, NodeState, NodeIdHash> nodes_;
  // Hashed, not ordered: probed once per message send (the FIFO clamp), so
  // the red-black tree walk was pure overhead on the hottest path.
  std::unordered_map<std::pair<NodeId, NodeId>, Time, LinkHash>
      last_delivery_;
  NetworkStats stats_;
  SendTap tap_;
  double loss_ = 0.0;
  double duplication_ = 0.0;
  double delay_spike_p_ = 0.0;
  Duration delay_spike_ = 0;
  // Active partitions, in install order (decision paths iterate this, so it
  // must be an ordered container).
  std::vector<Partition> partitions_;
  std::uint64_t next_partition_id_ = 1;
  obs::Observability* obs_ = nullptr;
  obs::Counter* sent_ = nullptr;
  obs::Counter* delivered_ = nullptr;
  obs::Counter* drop_sender_ = nullptr;
  obs::Counter* drop_receiver_ = nullptr;
  obs::Counter* drop_unroutable_ = nullptr;
  obs::Counter* drop_loss_ = nullptr;
  obs::Counter* drop_partition_ = nullptr;
  obs::Counter* duplicated_ = nullptr;
};

}  // namespace qopt::sim
