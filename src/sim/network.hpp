// Simulated message-passing network.
//
// Models the paper's system assumptions (Section 3): reliable channels
// (messages are delivered unless sender or receiver crashes) with FIFO
// ordering per sender/receiver pair, on an asynchronous system whose
// synchrony lives entirely in the failure detector.
//
// The class is a template over the message type so that the kernel stays
// independent of the Q-OPT wire protocol.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <span>
#include <unordered_map>
#include <utility>

#include "sim/ids.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"

namespace qopt::sim {

/// One-way link latency: base + uniform jitter in [0, jitter).
struct LatencyModel {
  Duration base = microseconds(300);   // LAN one-way incl. kernel/HTTP stack
  Duration jitter = microseconds(500);

  Duration sample(Rng& rng) const {
    const Duration j =
        jitter > 0 ? static_cast<Duration>(rng.next_below(
                         static_cast<std::uint64_t>(jitter)))
                   : 0;
    return base + j;
  }
};

struct NetworkStats {
  std::uint64_t messages_sent = 0;
  std::uint64_t messages_delivered = 0;
  std::uint64_t messages_dropped = 0;  // sender or receiver crashed
};

template <typename M>
class Network {
 public:
  using Handler = std::function<void(const NodeId& from, const M& msg)>;

  Network(Simulator& sim, LatencyModel latency, Rng rng)
      : sim_(sim), latency_(latency), rng_(rng) {}

  void register_node(const NodeId& id, Handler handler) {
    nodes_[id] = NodeState{std::move(handler), /*crashed=*/false};
  }

  /// A crashed node neither sends nor receives; messages already in flight
  /// to it are dropped at delivery time (fail-stop, no recovery).
  void set_crashed(const NodeId& id, bool crashed = true) {
    if (auto it = nodes_.find(id); it != nodes_.end()) {
      it->second.crashed = crashed;
    }
  }

  bool is_crashed(const NodeId& id) const {
    auto it = nodes_.find(id);
    return it != nodes_.end() && it->second.crashed;
  }

  /// Optional observer invoked for every send (message accounting in
  /// benches/tests; not part of the simulated system).
  using SendTap = std::function<void(const NodeId& from, const NodeId& to)>;
  void set_send_tap(SendTap tap) { tap_ = std::move(tap); }

  void send(const NodeId& from, const NodeId& to, M msg) {
    ++stats_.messages_sent;
    if (tap_) tap_(from, to);
    auto from_it = nodes_.find(from);
    if (from_it != nodes_.end() && from_it->second.crashed) {
      ++stats_.messages_dropped;
      return;
    }
    const Duration lat = latency_.sample(rng_);
    // FIFO per ordered pair: clamp the delivery instant to strictly after
    // the previous delivery on this link.
    Time deliver_at = sim_.now() + lat;
    auto& last = last_delivery_[{from, to}];
    if (deliver_at <= last) deliver_at = last + 1;
    last = deliver_at;
    sim_.at(deliver_at, [this, from, to, m = std::move(msg)]() {
      deliver(from, to, m);
    });
  }

  template <typename Range>
  void broadcast(const NodeId& from, const Range& targets, const M& msg) {
    for (const NodeId& to : targets) send(from, to, msg);
  }

  const NetworkStats& stats() const noexcept { return stats_; }

 private:
  struct NodeState {
    Handler handler;
    bool crashed = false;
  };

  void deliver(const NodeId& from, const NodeId& to, const M& msg) {
    auto it = nodes_.find(to);
    if (it == nodes_.end() || it->second.crashed || !it->second.handler) {
      ++stats_.messages_dropped;
      return;
    }
    ++stats_.messages_delivered;
    it->second.handler(from, msg);
  }

  Simulator& sim_;
  LatencyModel latency_;
  Rng rng_;
  std::unordered_map<NodeId, NodeState, NodeIdHash> nodes_;
  std::map<std::pair<NodeId, NodeId>, Time> last_delivery_;
  NetworkStats stats_;
  SendTap tap_;
};

}  // namespace qopt::sim
