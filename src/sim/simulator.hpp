// Deterministic discrete-event simulation kernel.
//
// A single virtual clock and a priority queue of closures. Events scheduled
// for the same instant are processed in scheduling order (a monotone
// sequence number breaks ties), which makes every run bit-for-bit
// reproducible from its seed.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <queue>
#include <vector>

#include "obs/profiler.hpp"
#include "util/time.hpp"

namespace qopt::sim {

class Simulator {
 public:
  static constexpr Time kForever = std::numeric_limits<Time>::max();

  Time now() const noexcept { return now_; }

  /// Schedules `fn` at absolute virtual time `t` (clamped to now).
  void at(Time t, std::function<void()> fn);

  /// Schedules `fn` after `d` nanoseconds of virtual time.
  void after(Duration d, std::function<void()> fn);

  /// Runs events until the queue empties, `until` is passed, or stop() is
  /// called. Returns the number of events processed.
  std::uint64_t run(Time until = kForever);

  /// Processes a single event; returns false if the queue is empty.
  bool step();

  /// Makes the innermost run() return after the current event.
  void stop() noexcept { stopped_ = true; }

  bool empty() const noexcept { return queue_.empty(); }
  std::size_t pending() const noexcept { return queue_.size(); }
  std::uint64_t events_processed() const noexcept { return processed_; }

  /// Attaches the engine self-profiler (owned by the obs bundle; Cluster
  /// wires it). Null detaches. Every hook call compiles away under
  /// QOPT_PROFILE=OFF, and a bound-but-disabled profiler costs one branch
  /// per event.
  void bind_profiler(obs::EngineProfiler* profiler) noexcept {
#if QOPT_PROFILE_ENABLED
    profiler_ = profiler;
#else
    (void)profiler;
#endif
  }

  // ---------------------------------------------------- schedule override
  //
  // Hook for exhaustive small-scope interleaving exploration (see
  // tests/interleave_gate_test.cpp). When installed, each step() stages the
  // up-to-`window` earliest pending events and asks the chooser which one
  // runs next; the others go back on the queue with their original time and
  // sequence number, so clearing the chooser restores the deterministic
  // (time, seq) order exactly. The virtual clock never moves backwards:
  // running a later event first pins now() until the displaced earlier
  // events catch up. Off (null chooser) in every production run.

  /// Called with the number of staged candidates (>= 2, earliest first);
  /// must return the index of the event to run next.
  // qopt-perf: allow(heap-alloc-hot) test-only hook, assigned once per explored schedule
  using ScheduleChooser = std::function<std::size_t(std::size_t)>;

  void set_schedule_chooser(ScheduleChooser chooser, std::size_t window);
  void clear_schedule_chooser();
  bool schedule_chooser_active() const noexcept {
    return static_cast<bool>(chooser_);
  }

 private:
  struct Event {
    Time time;
    std::uint64_t seq;
    std::function<void()> fn;
#if QOPT_PROFILE_ENABLED
    Time enqueued_at = 0;  // virtual instant at() staged it (dwell telemetry)
#endif
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  /// Pops the (time, seq)-least event, moving it out of the queue.
  Event pop_least();

  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  Time now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t processed_ = 0;
  bool stopped_ = false;
  // qopt-perf: allow(heap-alloc-hot) null on production runs; step() sees a bool test
  ScheduleChooser chooser_;
  std::size_t chooser_window_ = 0;
  std::vector<Event> staged_;  // scratch reused across chooser steps
#if QOPT_PROFILE_ENABLED
  obs::EngineProfiler* profiler_ = nullptr;
#endif
};

}  // namespace qopt::sim
