// Deterministic discrete-event simulation kernel.
//
// A single virtual clock and a priority queue of closures. Events scheduled
// for the same instant are processed in scheduling order (a monotone
// sequence number breaks ties), which makes every run bit-for-bit
// reproducible from its seed.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <queue>
#include <vector>

#include "util/time.hpp"

namespace qopt::sim {

class Simulator {
 public:
  static constexpr Time kForever = std::numeric_limits<Time>::max();

  Time now() const noexcept { return now_; }

  /// Schedules `fn` at absolute virtual time `t` (clamped to now).
  void at(Time t, std::function<void()> fn);

  /// Schedules `fn` after `d` nanoseconds of virtual time.
  void after(Duration d, std::function<void()> fn);

  /// Runs events until the queue empties, `until` is passed, or stop() is
  /// called. Returns the number of events processed.
  std::uint64_t run(Time until = kForever);

  /// Processes a single event; returns false if the queue is empty.
  bool step();

  /// Makes the innermost run() return after the current event.
  void stop() noexcept { stopped_ = true; }

  bool empty() const noexcept { return queue_.empty(); }
  std::size_t pending() const noexcept { return queue_.size(); }
  std::uint64_t events_processed() const noexcept { return processed_; }

 private:
  struct Event {
    Time time;
    std::uint64_t seq;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  Time now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t processed_ = 0;
  bool stopped_ = false;
};

}  // namespace qopt::sim
