#include "sim/ids.hpp"

namespace qopt::sim {

const char* to_string(NodeKind kind) noexcept {
  switch (kind) {
    case NodeKind::kClient:
      return "client";
    case NodeKind::kProxy:
      return "proxy";
    case NodeKind::kStorage:
      return "storage";
    case NodeKind::kReconfigManager:
      return "rm";
    case NodeKind::kAutonomicManager:
      return "am";
  }
  return "?";
}

std::string to_string(const NodeId& id) {
  return std::string(to_string(id.kind)) + "-" + std::to_string(id.index);
}

}  // namespace qopt::sim
