// Logical node identities for all simulated processes.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <string>

namespace qopt::sim {

enum class NodeKind : std::uint8_t {
  kClient,
  kProxy,
  kStorage,
  kReconfigManager,
  kAutonomicManager,
};

const char* to_string(NodeKind kind) noexcept;

struct NodeId {
  NodeKind kind{NodeKind::kClient};
  std::uint32_t index = 0;

  friend auto operator<=>(const NodeId&, const NodeId&) = default;
};

std::string to_string(const NodeId& id);

inline NodeId client_id(std::uint32_t i) { return {NodeKind::kClient, i}; }
inline NodeId proxy_id(std::uint32_t i) { return {NodeKind::kProxy, i}; }
inline NodeId storage_id(std::uint32_t i) { return {NodeKind::kStorage, i}; }
inline NodeId rm_id() { return {NodeKind::kReconfigManager, 0}; }
/// Replica `i` of a replicated Reconfiguration Manager; rm_replica_id(0)
/// is rm_id(), so single-RM deployments are the degenerate case.
inline NodeId rm_replica_id(std::uint32_t i) {
  return {NodeKind::kReconfigManager, i};
}
inline NodeId am_id() { return {NodeKind::kAutonomicManager, 0}; }

struct NodeIdHash {
  std::size_t operator()(const NodeId& id) const noexcept {
    return (static_cast<std::size_t>(id.kind) << 32) ^ id.index;
  }
};

}  // namespace qopt::sim
