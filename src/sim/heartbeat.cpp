#include "sim/failure_detector.hpp"
#include "sim/heartbeat.hpp"
#include "sim/ids.hpp"
#include "sim/simulator.hpp"
#include "util/time.hpp"

namespace qopt::sim {

HeartbeatWatcher::HeartbeatWatcher(Simulator& sim, FailureDetector& fd,
                                   std::vector<NodeId> monitored,
                                   Duration timeout, Duration check_interval)
    : sim_(sim),
      fd_(fd),
      monitored_(std::move(monitored)),
      timeout_(timeout),
      check_interval_(check_interval) {}

void HeartbeatWatcher::start() {
  if (running_) return;
  running_ = true;
  // Nodes get a full timeout of grace from the start of monitoring.
  for (const NodeId& node : monitored_) last_beat_[node] = sim_.now();
  sim_.after(check_interval_, [this] { sweep(); });
}

void HeartbeatWatcher::beat(const NodeId& from) {
  last_beat_[from] = sim_.now();
  if (running_ && fd_.suspects(from)) {
    ++cleared_;
    fd_.clear_suspicion(from);
  }
}

void HeartbeatWatcher::sweep() {
  if (!running_) return;
  for (const NodeId& node : monitored_) {
    const Time last = last_beat_[node];
    if (sim_.now() - last > timeout_ && !fd_.suspects(node)) {
      ++raised_;
      // Indefinite suspicion; cleared by the next beat (eventual accuracy).
      fd_.inject_false_suspicion(node, 0);
    }
  }
  sim_.after(check_interval_, [this] { sweep(); });
}

}  // namespace qopt::sim
