#include "sim/simulator.hpp"
#include "util/time.hpp"

#include <utility>

namespace qopt::sim {

void Simulator::at(Time t, std::function<void()> fn) {
  if (t < now_) t = now_;
  queue_.push(Event{t, next_seq_++, std::move(fn)});
}

void Simulator::after(Duration d, std::function<void()> fn) {
  at(now_ + (d > 0 ? d : 0), std::move(fn));
}

bool Simulator::step() {
  if (queue_.empty()) return false;
  // priority_queue::top returns const&; move the event out before popping so
  // the closure (and any captured state) is not copied per event. pop() only
  // compares time/seq during the sift-down, and those are trivially copied
  // by the move, so the moved-from element still orders correctly.
  Event ev = std::move(const_cast<Event&>(queue_.top()));
  queue_.pop();
  now_ = ev.time;
  ++processed_;
  ev.fn();
  return true;
}

std::uint64_t Simulator::run(Time until) {
  stopped_ = false;
  std::uint64_t n = 0;
  while (!stopped_ && !queue_.empty() && queue_.top().time <= until) {
    step();
    ++n;
  }
  if (queue_.empty() || queue_.top().time > until) {
    // Advance the clock to the horizon so repeated bounded runs compose.
    if (until != kForever && until > now_) now_ = until;
  }
  return n;
}

}  // namespace qopt::sim
