#include "sim/simulator.hpp"
#include "util/time.hpp"

#include <utility>

namespace qopt::sim {

void Simulator::at(Time t, std::function<void()> fn) {
  if (t < now_) t = now_;
  Event ev{t, next_seq_++, std::move(fn)};
#if QOPT_PROFILE_ENABLED
  ev.enqueued_at = now_;
  if (profiler_ && profiler_->enabled()) profiler_->note_schedule();
#endif
  queue_.push(std::move(ev));
}

void Simulator::after(Duration d, std::function<void()> fn) {
  at(now_ + (d > 0 ? d : 0), std::move(fn));
}

Simulator::Event Simulator::pop_least() {
  // priority_queue::top returns const&; move the event out before popping so
  // the closure (and any captured state) is not copied per event. pop() only
  // compares time/seq during the sift-down, and those are trivially copied
  // by the move, so the moved-from element still orders correctly.
  Event ev = std::move(const_cast<Event&>(queue_.top()));
  queue_.pop();
  return ev;
}

void Simulator::set_schedule_chooser(ScheduleChooser chooser,
                                     std::size_t window) {
  chooser_ = std::move(chooser);
  chooser_window_ = window < 2 ? 2 : window;
  staged_.reserve(chooser_window_);
}

void Simulator::clear_schedule_chooser() {
  chooser_ = nullptr;
  chooser_window_ = 0;
  staged_.clear();
}

bool Simulator::step() {
  if (queue_.empty()) return false;
  Event ev = pop_least();
  if (chooser_ && !queue_.empty()) {
    // Stage the earliest `window` events and let the chooser reorder them.
    staged_.clear();
    staged_.reserve(chooser_window_);
    staged_.push_back(std::move(ev));
    while (staged_.size() < chooser_window_ && !queue_.empty()) {
      staged_.push_back(pop_least());
    }
    std::size_t pick = chooser_(staged_.size());
    if (pick >= staged_.size()) pick = 0;
    ev = std::move(staged_[pick]);
    for (std::size_t i = 0; i < staged_.size(); ++i) {
      // Unchosen events keep their original (time, seq), so removing the
      // chooser restores the canonical order for everything still queued.
      if (i != pick) {
        queue_.push(std::move(staged_[i]));
#if QOPT_PROFILE_ENABLED
        if (profiler_ && profiler_->enabled()) profiler_->note_requeue();
#endif
      }
    }
    staged_.clear();
  }
  // Monotone clock: an event displaced behind a later one runs at the later
  // event's time (delivery was delayed; the clock never rewinds).
  if (ev.time > now_) now_ = ev.time;
  ++processed_;
#if QOPT_PROFILE_ENABLED
  const bool profiled = profiler_ && profiler_->enabled();
  if (profiled) profiler_->begin_event(now_, ev.enqueued_at, queue_.size());
#endif
  ev.fn();
#if QOPT_PROFILE_ENABLED
  if (profiled) profiler_->end_event();
#endif
  return true;
}

std::uint64_t Simulator::run(Time until) {
  stopped_ = false;
  std::uint64_t n = 0;
  while (!stopped_ && !queue_.empty() && queue_.top().time <= until) {
    step();
    ++n;
  }
  if (queue_.empty() || queue_.top().time > until) {
    // Advance the clock to the horizon so repeated bounded runs compose.
    if (until != kForever && until > now_) now_ = until;
  }
  return n;
}

}  // namespace qopt::sim
