// Eventually-perfect failure detector (◇P) used by the Reconfiguration
// Manager, per Section 5.1 of the paper.
//
// Guarantees modelled:
//  - strong completeness: a crashed node is suspected `detection_delay`
//    after its crash;
//  - eventual strong accuracy: false suspicions (injectable for testing the
//    protocol's indulgence) are cleared after their configured duration.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "sim/ids.hpp"
#include "sim/simulator.hpp"
#include "util/time.hpp"

namespace qopt::sim {

class FailureDetector {
 public:
  /// Called with (node, now_suspected) whenever a node's suspicion status
  /// flips.
  using Listener = std::function<void(const NodeId&, bool)>;

  FailureDetector(Simulator& sim, Duration detection_delay);

  /// Reports a real crash; the node becomes (permanently) suspected after
  /// the detection delay.
  void node_crashed(const NodeId& id);

  /// Reports a crash-recovery: the node is no longer crashed and any
  /// standing suspicion is lifted. A detection timer still pending from the
  /// crash is implicitly cancelled (it checks the crashed flag).
  void node_recovered(const NodeId& id);

  /// Injects a false suspicion lasting `duration` (0 = until cleared by a
  /// later crash/clear). Exercises the indulgent path of the protocol.
  void inject_false_suspicion(const NodeId& id, Duration duration);

  /// Clears a false suspicion immediately (no-op for real crashes).
  void clear_suspicion(const NodeId& id);

  /// The `suspect(p)` primitive from the paper's pseudo-code.
  bool suspects(const NodeId& id) const;

  void subscribe(Listener listener) {
    listeners_.push_back(std::move(listener));
  }

 private:
  struct State {
    bool suspected = false;
    bool crashed = false;
    std::uint64_t generation = 0;  // invalidates stale un-suspect timers
  };

  void set_suspected(const NodeId& id, bool suspected);

  Simulator& sim_;
  Duration detection_delay_;
  std::unordered_map<NodeId, State, NodeIdHash> states_;
  std::vector<Listener> listeners_;
};

}  // namespace qopt::sim
