// Deterministic, seedable pseudo-random number generation.
//
// All randomness in the simulator flows through qopt::Rng so that every
// experiment is exactly reproducible from its seed. The engine is
// xoshiro256**, seeded via splitmix64 (the initialization recommended by the
// xoshiro authors); both are tiny, fast, and of far higher quality than
// std::minstd / rand().
#pragma once

#include <array>
#include <cstdint>
#include <limits>

namespace qopt {

/// splitmix64 step; used for seeding and as a cheap stateless hash.
std::uint64_t splitmix64(std::uint64_t& state) noexcept;

/// Stateless 64-bit mix (one splitmix64 round applied to `x`).
std::uint64_t mix64(std::uint64_t x) noexcept;

/// xoshiro256** engine with convenience distributions.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept { return next(); }
  std::uint64_t next() noexcept;

  /// Uniform integer in [0, bound). `bound` must be > 0. Uses Lemire's
  /// multiply-shift rejection method (unbiased).
  std::uint64_t next_below(std::uint64_t bound) noexcept;

  /// Uniform integer in [lo, hi] inclusive; requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;

  /// Uniform double in [0, 1).
  double next_double() noexcept;

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept;

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool chance(double p) noexcept;

  /// Exponentially distributed value with the given mean (> 0).
  double exponential(double mean) noexcept;

  /// Standard normal via Marsaglia polar method.
  double normal(double mean = 0.0, double stddev = 1.0) noexcept;

  /// Derives an independent child generator; `salt` separates streams that
  /// share a parent (e.g. one stream per simulated node).
  Rng fork(std::uint64_t salt) noexcept;

 private:
  std::array<std::uint64_t, 4> s_;
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace qopt
