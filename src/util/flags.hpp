// Minimal command-line flag parser for the example/CLI binaries.
//
// Supports --name=value, --name value, and boolean --name / --no-name.
// Unknown flags are collected so callers can fail with a helpful message.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace qopt {

class Flags {
 public:
  /// Parses argv; positional (non---prefixed) arguments are kept in order.
  Flags(int argc, const char* const argv[]);

  bool has(const std::string& name) const;

  std::string get_string(const std::string& name,
                         const std::string& fallback) const;
  std::int64_t get_int(const std::string& name, std::int64_t fallback) const;
  double get_double(const std::string& name, double fallback) const;
  bool get_bool(const std::string& name, bool fallback) const;

  const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }

  /// Flags that were provided but never queried (typo detection). Call
  /// after all get_*() lookups.
  std::vector<std::string> unused() const;

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
  mutable std::map<std::string, bool> accessed_;
};

}  // namespace qopt
