#include "util/rng.hpp"

#include <cmath>

namespace qopt {

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t mix64(std::uint64_t x) noexcept {
  std::uint64_t s = x;
  return splitmix64(s);
}

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
}

std::uint64_t Rng::next() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) noexcept {
  // Lemire's nearly-divisionless unbiased bounded generation.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto low = static_cast<std::uint64_t>(m);
  if (low < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (low < threshold) {
      x = next();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(next_below(span));
}

double Rng::next_double() noexcept {
  // 53 top bits -> uniform in [0,1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * next_double();
}

bool Rng::chance(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return next_double() < p;
}

double Rng::exponential(double mean) noexcept {
  double u;
  do {
    u = next_double();
  } while (u <= 0.0);
  return -mean * std::log(u);
}

double Rng::normal(double mean, double stddev) noexcept {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return mean + stddev * cached_normal_;
  }
  double u, v, s;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  cached_normal_ = v * factor;
  has_cached_normal_ = true;
  return mean + stddev * u * factor;
}

Rng Rng::fork(std::uint64_t salt) noexcept {
  return Rng(next() ^ mix64(salt));
}

}  // namespace qopt
