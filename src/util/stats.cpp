#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

namespace qopt {

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void RunningStats::reset() noexcept { *this = RunningStats{}; }

double RunningStats::variance() const noexcept {
  return n_ ? m2_ / static_cast<double>(n_) : 0.0;
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

ReservoirSample::ReservoirSample(std::size_t capacity, std::uint64_t seed)
    : capacity_(capacity ? capacity : 1), rng_(seed) {
  data_.reserve(capacity_);
}

void ReservoirSample::add(double x) {
  ++seen_;
  if (data_.size() < capacity_) {
    data_.push_back(x);
  } else {
    const std::uint64_t j = rng_.next_below(seen_);
    if (j < capacity_) data_[static_cast<std::size_t>(j)] = x;
  }
  dirty_ = true;
}

double ReservoirSample::percentile(double pct) const {
  if (data_.empty()) return 0.0;
  if (dirty_) {
    sorted_ = data_;
    std::sort(sorted_.begin(), sorted_.end());
    dirty_ = false;
  }
  const double clamped = std::clamp(pct, 0.0, 100.0);
  const double rank =
      clamped / 100.0 * static_cast<double>(sorted_.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted_.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted_[lo] + (sorted_[hi] - sorted_[lo]) * frac;
}

MovingAverage::MovingAverage(std::size_t window)
    : window_(window ? window : 1) {}

void MovingAverage::add(double x) {
  samples_.push_back(x);
  sum_ += x;
  if (samples_.size() > window_) {
    sum_ -= samples_.front();
    samples_.pop_front();
  }
}

double MovingAverage::mean() const noexcept {
  return samples_.empty() ? 0.0
                          : sum_ / static_cast<double>(samples_.size());
}

void MovingAverage::reset() {
  samples_.clear();
  sum_ = 0.0;
}

double exact_percentile(std::vector<double> values, double pct) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const double clamped = std::clamp(pct, 0.0, 100.0);
  const double rank =
      clamped / 100.0 * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values[lo] + (values[hi] - values[lo]) * frac;
}

}  // namespace qopt
