// Small online-statistics toolkit used by metrics collection, the autonomic
// manager's KPI tracking, and the benchmark harnesses.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <vector>

#include "util/rng.hpp"

namespace qopt {

/// Numerically stable streaming mean/variance (Welford's algorithm).
class RunningStats {
 public:
  void add(double x) noexcept;
  void merge(const RunningStats& other) noexcept;
  void reset() noexcept;

  std::size_t count() const noexcept { return n_; }
  bool empty() const noexcept { return n_ == 0; }
  double mean() const noexcept { return n_ ? mean_ : 0.0; }
  double variance() const noexcept;  // population variance
  double stddev() const noexcept;
  double min() const noexcept { return min_; }
  double max() const noexcept { return max_; }
  double sum() const noexcept { return mean_ * static_cast<double>(n_); }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Fixed-size uniform reservoir sample supporting approximate percentiles
/// over unbounded streams (Vitter's Algorithm R).
class ReservoirSample {
 public:
  explicit ReservoirSample(std::size_t capacity = 4096,
                           std::uint64_t seed = 1);

  void add(double x);
  std::size_t seen() const noexcept { return seen_; }
  bool empty() const noexcept { return data_.empty(); }

  /// Percentile in [0,100]; linear interpolation between order statistics.
  /// Returns 0 on an empty reservoir.
  double percentile(double pct) const;
  double median() const { return percentile(50.0); }

 private:
  std::size_t capacity_;
  std::size_t seen_ = 0;
  std::vector<double> data_;
  mutable std::vector<double> sorted_;
  mutable bool dirty_ = false;
  Rng rng_;
};

/// Simple moving average over the most recent `window` samples; used by the
/// Autonomic Manager to smooth throughput readings (the paper uses a 30 s
/// moving-average window).
class MovingAverage {
 public:
  explicit MovingAverage(std::size_t window);

  void add(double x);
  bool full() const noexcept { return samples_.size() == window_; }
  std::size_t size() const noexcept { return samples_.size(); }
  double mean() const noexcept;
  void reset();

 private:
  std::size_t window_;
  std::deque<double> samples_;
  double sum_ = 0.0;
};

/// Exact percentile over a materialized vector (benchmark post-processing).
double exact_percentile(std::vector<double> values, double pct);

}  // namespace qopt
