#include "util/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace qopt {

LatencyHistogram::LatencyHistogram(double min_value, double growth,
                                   std::size_t num_buckets)
    : min_value_(min_value > 0 ? min_value : 1.0),
      log_growth_(std::log(growth > 1.0 ? growth : 1.02)),
      buckets_(num_buckets ? num_buckets : 1, 0) {}

std::size_t LatencyHistogram::bucket_for(double value) const {
  if (value <= min_value_) return 0;
  const double idx = std::log(value / min_value_) / log_growth_;
  const auto bucket = static_cast<std::size_t>(idx) + 1;
  return std::min(bucket, buckets_.size() - 1);
}

double LatencyHistogram::bucket_upper(std::size_t index) const {
  return min_value_ * std::exp(log_growth_ * static_cast<double>(index));
}

void LatencyHistogram::record(double value) {
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
  ++buckets_[bucket_for(value)];
}

void LatencyHistogram::merge(const LatencyHistogram& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
  // Histograms created with the same parameters merge bucket-wise; this is
  // the only supported use (enforced by construction in the metrics layer).
  const std::size_t n = std::min(buckets_.size(), other.buckets_.size());
  for (std::size_t i = 0; i < n; ++i) buckets_[i] += other.buckets_[i];
}

void LatencyHistogram::reset() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  sum_ = 0.0;
  min_ = max_ = 0.0;
}

double LatencyHistogram::percentile(double pct) const {
  if (count_ == 0) return 0.0;
  const double target =
      std::clamp(pct, 0.0, 100.0) / 100.0 * static_cast<double>(count_);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    cumulative += buckets_[i];
    if (static_cast<double>(cumulative) >= target) {
      return std::min(bucket_upper(i), max_);
    }
  }
  return max_;
}

std::string LatencyHistogram::summary() const {
  std::ostringstream os;
  os << "n=" << count_ << " mean=" << mean() << " p50=" << percentile(50)
     << " p99=" << percentile(99) << " max=" << max();
  return os.str();
}

}  // namespace qopt
