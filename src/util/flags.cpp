#include "util/flags.hpp"

#include <cstdlib>

namespace qopt {

Flags::Flags(int argc, const char* const argv[]) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
      continue;
    }
    // --no-name  =>  name=false
    if (arg.rfind("no-", 0) == 0) {
      values_[arg.substr(3)] = "false";
      continue;
    }
    // --name value  (if the next token is not itself a flag), else --name
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[arg] = argv[++i];
    } else {
      values_[arg] = "true";
    }
  }
}

bool Flags::has(const std::string& name) const {
  accessed_[name] = true;
  return values_.count(name) > 0;
}

std::string Flags::get_string(const std::string& name,
                              const std::string& fallback) const {
  accessed_[name] = true;
  auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second;
}

std::int64_t Flags::get_int(const std::string& name,
                            std::int64_t fallback) const {
  accessed_[name] = true;
  auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  return std::strtoll(it->second.c_str(), nullptr, 10);
}

double Flags::get_double(const std::string& name, double fallback) const {
  accessed_[name] = true;
  auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  return std::strtod(it->second.c_str(), nullptr);
}

bool Flags::get_bool(const std::string& name, bool fallback) const {
  accessed_[name] = true;
  auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  return it->second != "false" && it->second != "0" && it->second != "no";
}

std::vector<std::string> Flags::unused() const {
  std::vector<std::string> out;
  for (const auto& [name, value] : values_) {
    if (!accessed_.count(name)) out.push_back(name);
  }
  return out;
}

}  // namespace qopt
