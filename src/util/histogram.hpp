// Log-scale latency histogram with fixed memory footprint.
//
// Buckets grow geometrically, giving ~2% relative resolution across the full
// nanosecond..minute range, which is plenty for latency reporting while
// staying allocation-free on the hot path.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace qopt {

class LatencyHistogram {
 public:
  /// `growth` is the geometric bucket ratio (>1); default gives ~128 buckets
  /// per decade.
  explicit LatencyHistogram(double min_value = 100.0, double growth = 1.02,
                            std::size_t num_buckets = 1200);

  void record(double value);
  void merge(const LatencyHistogram& other);
  void reset();

  std::uint64_t count() const noexcept { return count_; }
  double min() const noexcept { return count_ ? min_ : 0.0; }
  double max() const noexcept { return count_ ? max_ : 0.0; }
  double mean() const noexcept {
    return count_ ? sum_ / static_cast<double>(count_) : 0.0;
  }

  /// Approximate value at the given percentile in [0,100].
  double percentile(double pct) const;

  /// One-line human-readable summary (used by bench harnesses).
  std::string summary() const;

 private:
  std::size_t bucket_for(double value) const;
  double bucket_upper(std::size_t index) const;

  double min_value_;
  double log_growth_;
  std::vector<std::uint64_t> buckets_;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace qopt
