// Virtual-time representation shared by the whole code base.
//
// The simulator runs on a single signed 64-bit nanosecond clock. Signed
// arithmetic keeps interval subtraction safe; at nanosecond resolution the
// clock covers ~292 years, far beyond any simulated experiment.
#pragma once

#include <cstdint>

namespace qopt {

using Time = std::int64_t;  // nanoseconds of virtual time
using Duration = std::int64_t;

inline constexpr Duration kNanosecond = 1;
inline constexpr Duration kMicrosecond = 1'000;
inline constexpr Duration kMillisecond = 1'000'000;
inline constexpr Duration kSecond = 1'000'000'000;

constexpr Duration nanoseconds(std::int64_t n) { return n * kNanosecond; }
constexpr Duration microseconds(std::int64_t n) { return n * kMicrosecond; }
constexpr Duration milliseconds(std::int64_t n) { return n * kMillisecond; }
constexpr Duration seconds(double n) {
  return static_cast<Duration>(n * static_cast<double>(kSecond));
}

/// Converts a virtual-time duration to fractional seconds (for reporting).
constexpr double to_seconds(Duration d) {
  return static_cast<double>(d) / static_cast<double>(kSecond);
}

/// Converts a virtual-time duration to fractional milliseconds.
constexpr double to_millis(Duration d) {
  return static_cast<double>(d) / static_cast<double>(kMillisecond);
}

}  // namespace qopt
