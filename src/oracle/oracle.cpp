#include "ml/boosting.hpp"
#include "ml/dataset.hpp"
#include "ml/decision_tree.hpp"
#include "oracle/oracle.hpp"

#include <cmath>
#include <stdexcept>

namespace qopt::oracle {

const std::vector<std::string>& WorkloadFeatures::names() {
  static const std::vector<std::string> kNames = {
      "write_ratio", "avg_size_kib", "ops_per_sec"};
  return kNames;
}

int clamp_write_quorum(int w, const QuorumConstraints& constraints,
                       int replication) {
  const int max_write =
      constraints.max_write > 0 ? constraints.max_write : replication;
  const int max_read =
      constraints.max_read > 0 ? constraints.max_read : replication;
  // Read-side constraints translate to write-side bounds through
  // R = N - W + 1:  min_read <= N - W + 1 <= max_read.
  int lo = std::max(constraints.min_write, replication + 1 - max_read);
  int hi = std::min(max_write, replication + 1 - constraints.min_read);
  lo = std::clamp(lo, 1, replication);
  hi = std::clamp(hi, 1, replication);
  if (lo > hi) {
    throw std::invalid_argument(
        "clamp_write_quorum: constraints admit no feasible quorum");
  }
  return std::clamp(w, lo, hi);
}

int LinearRuleOracle::predict_write_quorum(const WorkloadFeatures& features) {
  // Write-heavy -> small W; read-heavy -> large W. Linear in write ratio.
  const double fraction = 1.0 - std::clamp(features.write_ratio, 0.0, 1.0);
  const int w =
      1 + static_cast<int>(std::lround(fraction * (replication_ - 1)));
  return std::clamp(w, 1, replication_);
}

void TreeOracle::train(const ml::Dataset& data, const ml::TreeParams& params) {
  tree_.train(data, params);
}

int TreeOracle::predict_write_quorum(const WorkloadFeatures& features) {
  if (!tree_.trained()) {
    throw std::logic_error("TreeOracle: predict before train");
  }
  const std::vector<double> row = features.to_vector();
  return std::clamp(tree_.predict(row), 1, replication_);
}

void BoostedOracle::train(const ml::Dataset& data,
                          const ml::BoostParams& params) {
  ensemble_.train(data, params);
}

int BoostedOracle::predict_write_quorum(const WorkloadFeatures& features) {
  if (!ensemble_.trained()) {
    throw std::logic_error("BoostedOracle: predict before train");
  }
  const std::vector<double> row = features.to_vector();
  return std::clamp(ensemble_.predict(row), 1, replication_);
}

}  // namespace qopt::oracle
