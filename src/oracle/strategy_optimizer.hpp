// StrategyOptimizer — a quoracle-style Oracle backend.
//
// "Read-Write Quorum Systems Made Practical" (Whittaker et al.) observes
// that the optimal quorum system for a given workload mix is usually *not*
// a uniform (r, w) majority grid: weighted strategies over structured
// quorum systems (e.g. rows x transversals of a node partition) dominate
// the grid on both load and expected latency for skewed mixes. This
// optimizer enumerates a deterministic candidate family — every strict
// majority grid plus rows/transversal grid systems of the node partition
// and their duals — balances the selection weights of each candidate
// against an analytical load model, and picks the strategy minimizing
//
//   objective = max node load + lambda * expected operation cost
//
// where load(v) = fr * P(v in read quorum) + fw * P(v in write quorum) and
// the per-operation cost of a quorum of size s is the harmonic number H(s)
// (the expected maximum of s exponential service draws, the usual
// closed-form proxy for "wait for the slowest of s replicas").
//
// Everything is deterministic: no RNG, fixed iteration counts, stable
// tie-breaking — the same features always yield the same strategy, so
// autonomic runs stay replayable.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "kv/quorum.hpp"
#include "oracle/oracle.hpp"

namespace qopt::oracle {

/// Analytical score of one strategy under a workload mix.
struct StrategyScore {
  double max_load = 0.0;    // busiest node's fraction of all operations
  double read_cost = 0.0;   // expected read quorum cost (harmonic model)
  double write_cost = 0.0;  // expected write quorum cost
  double objective = 0.0;   // minimized: max_load + lambda * mixed cost
};

/// Second Oracle backend (next to the decision-tree family): instead of
/// predicting a write-quorum *size*, it optimizes a full QuorumStrategy.
/// Plugged into the AutonomicManager it drives the coarse tail
/// reconfiguration with the optimized strategy; through the plain Oracle
/// interface it degrades gracefully to the write footprint of that
/// strategy, so the fine-grain per-object path keeps working unchanged.
class StrategyOptimizer final : public Oracle {
 public:
  explicit StrategyOptimizer(int replication,
                             QuorumConstraints constraints = {});

  /// Best strategy for the mix. Always returns a strategy that is valid for
  /// the replication degree; falls back to the best feasible majority grid
  /// when the constraints rule out every structured candidate.
  kv::QuorumStrategy optimize(const WorkloadFeatures& features) const;

  /// Analytical evaluation of an arbitrary strategy (benchmarks, tests).
  StrategyScore evaluate(const kv::QuorumStrategy& strategy,
                         double write_ratio) const;

  /// Every candidate with its score, in generation order (the fig8
  /// load/latency frontier dump).
  std::vector<std::pair<kv::QuorumStrategy, StrategyScore>> frontier(
      double write_ratio) const;

  // Oracle interface.
  int predict_write_quorum(const WorkloadFeatures& features) override;
  std::string describe() const override { return "strategy-optimizer"; }

  int replication() const noexcept { return replication_; }
  const QuorumConstraints& constraints() const noexcept {
    return constraints_;
  }

 private:
  /// Deterministic candidate family: strict majority grids, then
  /// weight-balanced rows/transversal systems (and duals) for row sizes
  /// 2 and 3, filtered by the constraints.
  std::vector<kv::QuorumStrategy> candidates(double write_ratio) const;
  bool feasible(const kv::QuorumStrategy& strategy) const;

  int replication_;
  QuorumConstraints constraints_;
};

}  // namespace qopt::oracle
