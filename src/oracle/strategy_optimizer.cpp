#include "oracle/strategy_optimizer.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

#include "kv/quorum.hpp"
#include "oracle/oracle.hpp"

namespace qopt::oracle {
namespace {

// Latency weight in the combined objective. Load is the primary criterion
// (it bounds saturation throughput); the cost term breaks ties between
// equal-load candidates in favour of smaller quorums.
constexpr double kLatencyWeight = 0.05;

// Expected cost of waiting for s replicas: H(s), the expected maximum of s
// unit-rate exponential draws.
double harmonic(int s) {
  double h = 0.0;
  for (int i = 1; i <= s; ++i) h += 1.0 / static_cast<double>(i);
  return h;
}

// Per-node selection probability under a weighted quorum set.
std::vector<double> membership_probability(
    int n, const std::vector<kv::WeightedQuorum>& quorums) {
  std::vector<double> p(static_cast<std::size_t>(n), 0.0);
  double total = 0.0;
  for (const kv::WeightedQuorum& q : quorums) total += q.weight;
  if (total <= 0.0) return p;
  for (const kv::WeightedQuorum& q : quorums) {
    for (std::uint32_t slot : q.members) {
      if (slot < p.size()) p[slot] += q.weight / total;
    }
  }
  return p;
}

double expected_cost(const std::vector<kv::WeightedQuorum>& quorums) {
  double total = 0.0;
  double cost = 0.0;
  for (const kv::WeightedQuorum& q : quorums) {
    total += q.weight;
    cost += q.weight * harmonic(static_cast<int>(q.members.size()));
  }
  return total > 0.0 ? cost / total : 0.0;
}

// Deterministic multiplicative-weights balancing: repeatedly shift
// selection weight away from quorums touching the hottest nodes. A fixed
// iteration count and a fixed update rate keep the result a pure function
// of the quorum sets and the mix.
void balance_weights(int n, std::vector<kv::WeightedQuorum>& reads,
                     std::vector<kv::WeightedQuorum>& writes,
                     double write_ratio) {
  const double fr = 1.0 - write_ratio;
  const double fw = write_ratio;
  constexpr int kIterations = 200;
  constexpr double kRate = 0.5;
  for (int iter = 0; iter < kIterations; ++iter) {
    const std::vector<double> pr = membership_probability(n, reads);
    const std::vector<double> pw = membership_probability(n, writes);
    std::vector<double> load(static_cast<std::size_t>(n), 0.0);
    double max_load = 0.0;
    for (int v = 0; v < n; ++v) {
      load[static_cast<std::size_t>(v)] =
          fr * pr[static_cast<std::size_t>(v)] +
          fw * pw[static_cast<std::size_t>(v)];
      max_load = std::max(max_load, load[static_cast<std::size_t>(v)]);
    }
    if (max_load <= 0.0) return;
    auto update = [&](std::vector<kv::WeightedQuorum>& side) {
      double total = 0.0;
      for (kv::WeightedQuorum& q : side) {
        double hottest = 0.0;
        for (std::uint32_t slot : q.members) {
          if (slot < load.size()) hottest = std::max(hottest, load[slot]);
        }
        q.weight *= std::exp(-kRate * hottest / max_load);
        total += q.weight;
      }
      if (total > 0.0) {
        for (kv::WeightedQuorum& q : side) q.weight /= total;
      }
    };
    update(reads);
    update(writes);
  }
  // Prune quorums the balancer drove to (numerically) zero, keeping at
  // least one per side; smaller member sets can shrink the strategy's
  // footprint, which the epoch-quorum sizing benefits from.
  auto prune = [](std::vector<kv::WeightedQuorum>& side) {
    constexpr double kNegligible = 1e-6;
    std::vector<kv::WeightedQuorum> kept;
    for (const kv::WeightedQuorum& q : side) {
      if (q.weight >= kNegligible) kept.push_back(q);
    }
    if (!kept.empty()) side = std::move(kept);
  };
  prune(reads);
  prune(writes);
}

// Rows of a consecutive-slot partition of [0, n) into groups of size
// `row_size` (the last row takes the remainder).
std::vector<std::vector<std::uint32_t>> partition_rows(int n, int row_size) {
  std::vector<std::vector<std::uint32_t>> rows;
  for (int base = 0; base < n; base += row_size) {
    std::vector<std::uint32_t> row;
    for (int v = base; v < std::min(base + row_size, n); ++v) {
      row.push_back(static_cast<std::uint32_t>(v));
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

// Every transversal of the partition: one member from each row. Any
// transversal intersects any row, so (rows, transversals) is a quorum
// system by construction. Capped to keep the strategy encoding small.
std::vector<std::vector<std::uint32_t>> transversals(
    const std::vector<std::vector<std::uint32_t>>& rows) {
  constexpr std::size_t kMaxTransversals = 64;
  std::vector<std::vector<std::uint32_t>> result{{}};
  for (const std::vector<std::uint32_t>& row : rows) {
    std::vector<std::vector<std::uint32_t>> next;
    for (const std::vector<std::uint32_t>& prefix : result) {
      for (std::uint32_t v : row) {
        if (next.size() >= kMaxTransversals) break;
        std::vector<std::uint32_t> t = prefix;
        t.push_back(v);
        next.push_back(std::move(t));
      }
      if (next.size() >= kMaxTransversals) break;
    }
    result = std::move(next);
  }
  for (std::vector<std::uint32_t>& t : result) {
    std::sort(t.begin(), t.end());
  }
  return result;
}

std::vector<kv::WeightedQuorum> uniform(
    const std::vector<std::vector<std::uint32_t>>& sets) {
  std::vector<kv::WeightedQuorum> result;
  result.reserve(sets.size());
  for (const std::vector<std::uint32_t>& s : sets) {
    result.push_back(kv::WeightedQuorum{s, 1.0});
  }
  return result;
}

}  // namespace

StrategyOptimizer::StrategyOptimizer(int replication,
                                     QuorumConstraints constraints)
    : replication_(replication), constraints_(constraints) {}

StrategyScore StrategyOptimizer::evaluate(const kv::QuorumStrategy& strategy,
                                          double write_ratio) const {
  const double fr = 1.0 - write_ratio;
  const double fw = write_ratio;
  StrategyScore score;
  if (strategy.is_majority()) {
    // The proxy contacts a deterministic rotation per proxy; across proxies
    // and objects this spreads uniformly, so P(v in quorum) = size / n.
    const int n = replication_;
    const double r = static_cast<double>(strategy.grid.read_q);
    const double w = static_cast<double>(strategy.grid.write_q);
    score.max_load = (fr * r + fw * w) / static_cast<double>(n);
    score.read_cost = harmonic(strategy.grid.read_q);
    score.write_cost = harmonic(strategy.grid.write_q);
  } else {
    const int n = strategy.n;
    const std::vector<double> pr = membership_probability(n, strategy.reads);
    const std::vector<double> pw = membership_probability(n, strategy.writes);
    for (int v = 0; v < n; ++v) {
      score.max_load =
          std::max(score.max_load, fr * pr[static_cast<std::size_t>(v)] +
                                       fw * pw[static_cast<std::size_t>(v)]);
    }
    score.read_cost = expected_cost(strategy.reads);
    score.write_cost = expected_cost(strategy.writes);
  }
  score.objective =
      score.max_load +
      kLatencyWeight * (fr * score.read_cost + fw * score.write_cost);
  return score;
}

bool StrategyOptimizer::feasible(const kv::QuorumStrategy& strategy) const {
  const int max_read =
      constraints_.max_read > 0 ? constraints_.max_read : replication_;
  const int max_write =
      constraints_.max_write > 0 ? constraints_.max_write : replication_;
  if (strategy.is_majority()) {
    return strategy.grid.read_q >= constraints_.min_read &&
           strategy.grid.read_q <= max_read &&
           strategy.grid.write_q >= constraints_.min_write &&
           strategy.grid.write_q <= max_write;
  }
  for (const kv::WeightedQuorum& q : strategy.reads) {
    const int s = static_cast<int>(q.members.size());
    if (s < constraints_.min_read || s > max_read) return false;
  }
  for (const kv::WeightedQuorum& q : strategy.writes) {
    const int s = static_cast<int>(q.members.size());
    if (s < constraints_.min_write || s > max_write) return false;
  }
  return true;
}

std::vector<kv::QuorumStrategy> StrategyOptimizer::candidates(
    double write_ratio) const {
  const int n = replication_;
  std::vector<kv::QuorumStrategy> result;

  // Every strict majority grid (the pre-redesign search space).
  for (int w = 1; w <= n; ++w) {
    for (int r = n - w + 1; r <= n; ++r) {
      result.push_back(kv::QuorumStrategy::majority(r, w, n));
    }
  }

  // Rows/transversal systems of consecutive-slot partitions, plus duals.
  for (int row_size = 2; row_size <= 3 && row_size < n; ++row_size) {
    const auto rows = partition_rows(n, row_size);
    if (rows.size() < 2) continue;
    const auto cols = transversals(rows);
    // Reads = rows, writes = transversals (read-heavy shape) and the dual.
    for (bool dual : {false, true}) {
      std::vector<kv::WeightedQuorum> reads = uniform(dual ? cols : rows);
      std::vector<kv::WeightedQuorum> writes = uniform(dual ? rows : cols);
      balance_weights(n, reads, writes, write_ratio);
      kv::QuorumStrategy s =
          kv::QuorumStrategy::explicit_sets(n, std::move(reads),
                                            std::move(writes));
      if (s.valid(n)) result.push_back(std::move(s));
    }
  }
  return result;
}

std::vector<std::pair<kv::QuorumStrategy, StrategyScore>>
StrategyOptimizer::frontier(double write_ratio) const {
  std::vector<std::pair<kv::QuorumStrategy, StrategyScore>> result;
  for (kv::QuorumStrategy& s : candidates(write_ratio)) {
    StrategyScore score = evaluate(s, write_ratio);
    result.emplace_back(std::move(s), score);
  }
  return result;
}

kv::QuorumStrategy StrategyOptimizer::optimize(
    const WorkloadFeatures& features) const {
  const double write_ratio = std::clamp(features.write_ratio, 0.0, 1.0);
  kv::QuorumStrategy best = kv::QuorumStrategy::majority(
      replication_ / 2 + 1, replication_ / 2 + 1, replication_);
  double best_objective = std::numeric_limits<double>::infinity();
  for (kv::QuorumStrategy& s : candidates(write_ratio)) {
    if (!feasible(s)) continue;
    const StrategyScore score = evaluate(s, write_ratio);
    // Strictly-better wins; generation order breaks ties, so grids (listed
    // first) are preferred over structured systems of equal objective.
    if (score.objective < best_objective) {
      best_objective = score.objective;
      best = std::move(s);
    }
  }
  return best;
}

int StrategyOptimizer::predict_write_quorum(const WorkloadFeatures& features) {
  const kv::QuorumStrategy best = optimize(features);
  return best.is_majority() ? best.grid.write_q : best.min_write_size();
}

}  // namespace qopt::oracle
