// Oracle — the machine-learning predictor of Section 3/6.
//
// Given the observed workload characteristics of an object (or of the
// aggregated tail), the Oracle outputs the write-quorum size W expected to
// maximize the target KPI. The read quorum is derived from the replication
// degree as R = N - W + 1 (the paper's prototype does exactly this), and
// user-supplied fault-tolerance constraints on the minimum/maximum quorum
// sizes are honoured by clamping.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "kv/types.hpp"
#include "ml/boosting.hpp"
#include "ml/dataset.hpp"
#include "ml/decision_tree.hpp"

namespace qopt::oracle {

/// Compact workload characterization gathered by non-intrusive monitoring
/// (Section 3: "a compact set of workload characteristics").
struct WorkloadFeatures {
  double write_ratio = 0.0;     // writes / (reads + writes)
  double avg_size_kib = 0.0;    // mean object size in KiB
  double ops_per_sec = 0.0;     // access rate of the item / aggregate

  std::vector<double> to_vector() const {
    return {write_ratio, avg_size_kib, ops_per_sec};
  }
  static const std::vector<std::string>& names();
};

/// User-defined constraints on quorum sizes (Section 3: e.g. "each write
/// operation [must] contact at least k > 1 replicas" for fault tolerance).
struct QuorumConstraints {
  int min_write = 1;
  int max_write = 0;  // 0 = replication degree
  int min_read = 1;
  int max_read = 0;  // 0 = replication degree
};

/// Clamps a predicted write quorum into the feasible region implied by the
/// constraints and by strictness (R = N - W + 1 must satisfy the read-side
/// constraints). Returns a W in [1, N].
int clamp_write_quorum(int w, const QuorumConstraints& constraints,
                       int replication);

/// Derives the minimal strict majority grid for a write-quorum size.
inline kv::QuorumConfig grid_from_write_quorum(int w, int replication) {
  w = std::clamp(w, 1, replication);
  return kv::QuorumConfig::of(replication - w + 1, w);
}

[[deprecated("use oracle::grid_from_write_quorum (or "
             "kv::QuorumStrategy::majority for a strategy)")]]
inline kv::QuorumConfig config_from_write_quorum(int w, int replication) {
  return grid_from_write_quorum(w, replication);
}

class Oracle {
 public:
  virtual ~Oracle() = default;
  /// Predicted optimal write-quorum size (unclamped) for the workload.
  virtual int predict_write_quorum(const WorkloadFeatures& features) = 0;
  virtual std::string describe() const = 0;
};

/// White-box baseline: picks W by linearly interpolating the write ratio
/// over [1, N]. This is the "obvious" model whose inadequacy Figure 3
/// demonstrates; it serves as the comparison baseline for the decision tree
/// and as a bootstrap predictor before any training data exists.
class LinearRuleOracle final : public Oracle {
 public:
  explicit LinearRuleOracle(int replication) : replication_(replication) {}
  int predict_write_quorum(const WorkloadFeatures& features) override;
  std::string describe() const override { return "linear-rule"; }

 private:
  int replication_;
};

/// The paper's Oracle: a decision-tree classifier (C5.0 family) trained on
/// workloads labelled with their measured-optimal write quorum.
class TreeOracle final : public Oracle {
 public:
  explicit TreeOracle(int replication) : replication_(replication) {}

  /// Trains on a dataset whose label is the optimal write-quorum size.
  void train(const ml::Dataset& data, const ml::TreeParams& params = {});

  bool trained() const noexcept { return tree_.trained(); }
  const ml::DecisionTree& tree() const noexcept { return tree_; }

  /// Model persistence: deploy a trained Oracle without its training data.
  std::string save_model() const { return tree_.serialize(); }
  void load_model(const std::string& text) {
    tree_ = ml::DecisionTree::deserialize(text);
  }

  int predict_write_quorum(const WorkloadFeatures& features) override;
  std::string describe() const override { return "decision-tree"; }

 private:
  int replication_;
  ml::DecisionTree tree_;
};

/// Boosted variant (AdaBoost.M1 over C4.5 trees — the step from C4.5 to
/// C5.0). Slightly more accurate on noisy corpora at higher training cost.
class BoostedOracle final : public Oracle {
 public:
  explicit BoostedOracle(int replication) : replication_(replication) {}

  void train(const ml::Dataset& data, const ml::BoostParams& params = {});
  bool trained() const noexcept { return ensemble_.trained(); }
  const ml::BoostedTrees& ensemble() const noexcept { return ensemble_; }

  int predict_write_quorum(const WorkloadFeatures& features) override;
  std::string describe() const override { return "boosted-trees"; }

 private:
  int replication_;
  ml::BoostedTrees ensemble_;
};

}  // namespace qopt::oracle
