#include "kv/quorum.hpp"
#include "kv/types.hpp"
#include "kv/wire.hpp"
#include "obs/obs.hpp"
#include "obs/profiler.hpp"
#include "obs/span.hpp"
#include "obs/span_store.hpp"
#include "obs/trace.hpp"
#include "reconfig/reconfig_manager.hpp"
#include "sim/failure_detector.hpp"
#include "sim/ids.hpp"
#include "sim/simulator.hpp"
#include "smr/messages.hpp"
#include "util/time.hpp"

#include <algorithm>

namespace qopt::reconfig {

using kv::FullConfig;
using kv::Message;
using kv::QuorumChange;
using kv::QuorumConfig;

ReconfigManager::ReconfigManager(sim::Simulator& sim, Net& net,
                                 sim::NodeId self, sim::FailureDetector& fd,
                                 std::vector<sim::NodeId> proxies,
                                 std::vector<sim::NodeId> storages,
                                 QuorumConfig initial, int replication,
                                 obs::Observability* obs)
    : sim_(sim),
      net_(net),
      self_(self),
      fd_(fd),
      proxies_(std::move(proxies)),
      storages_(std::move(storages)),
      replication_(replication) {
  canonical_.epno = 0;
  canonical_.cfno = 0;
  canonical_.default_q = initial;
  canonical_.read_q_history.emplace_back(0, initial.read_q);
  fd_.subscribe([this](const sim::NodeId& node, bool suspected) {
    on_suspicion_change(node, suspected);
  });
  if (!obs) {
    own_obs_ = std::make_unique<obs::Observability>();
    obs = own_obs_.get();
  }
  obs_ = obs;
  auto& reg = obs_->registry();
  ins_.reconfigurations_completed =
      &reg.counter("rm.reconfigurations_completed");
  ins_.epoch_changes = &reg.counter("rm.epoch_changes");
  ins_.rejected_invalid = &reg.counter("rm.rejected_invalid");
  ins_.retries = &reg.counter("rm.retries");
  ins_.reconfig_time_ns = &reg.counter("rm.reconfig_time_ns");
  ins_.epoch = &reg.gauge("rm.epoch");
  ins_.cfno = &reg.gauge("rm.cfno");
}

ReconfigStats ReconfigManager::stats() const {
  ReconfigStats s;
  s.reconfigurations_completed = ins_.reconfigurations_completed->value();
  s.epoch_changes = ins_.epoch_changes->value();
  s.rejected_invalid = ins_.rejected_invalid->value();
  s.retries = ins_.retries->value();
  s.total_reconfig_time =
      static_cast<Duration>(ins_.reconfig_time_ns->value());
  return s;
}

void ReconfigManager::trace(obs::Category category, const char* name,
                            std::uint64_t a, std::uint64_t b) {
  obs::Tracer& tracer = obs_->tracer();
  if (!tracer.enabled(category)) return;
  tracer.record(sim_.now(), category, name, "rm", a, b);
}

void ReconfigManager::begin_phase_span(obs::Phase phase, const char* name) {
  obs::SpanStore& spans = obs_->spans();
  if (phase_span_.valid()) {
    spans.close_span(phase_span_, sim_.now(), canonical_.epno, current_cfno_);
  }
  phase_span_ = spans.open_span(round_trace_, phase, name, "rm", sim_.now());
}

const kv::QuorumStrategy& ReconfigManager::quorum_for(kv::ObjectId oid) const {
  for (const auto& [object, q] : canonical_.overrides) {
    if (object == oid) return q;
  }
  return canonical_.default_q;
}

void ReconfigManager::change_configuration(QuorumChange change,
                                           DoneCallback done) {
  // Replicated deployments intercept here: the request is validated once and
  // replicated through the current leader, whichever replica it entered at.
  if (request_hook_) {
    request_hook_(std::move(change), std::move(done));
    return;
  }
  if (!kv::validate_change(change, replication_)) {
    ins_.rejected_invalid->inc();
    if (done) done(false);
    return;
  }
  queue_.push_back(Request{std::move(change), std::move(done)});
  if (phase_ == Phase::kIdle) start_next();
}

void ReconfigManager::start_next() {
  if (queue_.empty() || phase_ != Phase::kIdle || !leader_active_) return;
  // The head stays queued until its commit is decided; the driving copy
  // carries no completion callback (the commit-apply path fires the one at
  // the queue head), so an abandoned round loses nothing.
  const Request& head = queue_.front();
  current_ = Request{head.change, {}, head.origin, head.seq};
  current_cfno_ = canonical_.cfno + 1;
  started_at_ = sim_.now();
  acked_proxies_.clear();
  phase_ = Phase::kNewQuorum;
  trace(obs::Category::kReconfig, "rm_start", canonical_.epno, current_cfno_);
  round_trace_ = obs_->spans().start_trace(obs::TraceKind::kReconfig,
                                           "reconfig", "rm", sim_.now());
  begin_phase_span(obs::Phase::kRmNewq, "rm_newq");
  const kv::NewQuorumMsg msg{canonical_.epno, current_cfno_,
                             current_.change, phase_span_};
  for (const sim::NodeId& proxy : proxies_) net_.send(self_, proxy, msg);
  ++retry_gen_;
  arm_phase_retransmit(0);
  // A suspicion may already cover every proxy we would wait for.
  evaluate_phase1();
}

void ReconfigManager::arm_phase_retransmit(int attempt) {
  Duration delay = kRetryBase;
  for (int k = 0; k < attempt && delay < kRetryCap; ++k) delay *= 2;
  delay = std::min(delay, kRetryCap);
  const std::uint64_t gen = retry_gen_;
  sim_.after(delay, [this, gen, attempt] {
    QOPT_PROFILE_SCOPE(obs_, obs::ProfSubsystem::kRm);
    if (gen != retry_gen_) return;  // the phase moved on
    resend_phase();
    arm_phase_retransmit(attempt + 1);
  });
}

void ReconfigManager::resend_phase() {
  ins_.retries->inc();
  trace(obs::Category::kReconfig, "rm_retransmit", canonical_.epno,
        current_cfno_);
  switch (phase_) {
    case Phase::kNewQuorum: {
      const kv::NewQuorumMsg msg{canonical_.epno, current_cfno_,
                                 current_.change, phase_span_};
      for (const sim::NodeId& proxy : proxies_) {
        if (acked_proxies_.contains(proxy.index) || fd_.suspects(proxy)) {
          continue;
        }
        net_.send(self_, proxy, msg);
      }
      break;
    }
    case Phase::kConfirm: {
      const kv::ConfirmMsg msg{canonical_.epno, current_cfno_, phase_span_};
      for (const sim::NodeId& proxy : proxies_) {
        if (acked_proxies_.contains(proxy.index) || fd_.suspects(proxy)) {
          continue;
        }
        net_.send(self_, proxy, msg);
      }
      break;
    }
    case Phase::kEpochChange1:
    case Phase::kEpochChange2: {
      for (const sim::NodeId& storage : storages_) {
        if (acked_storage_.contains(storage.index) || fd_.suspects(storage)) {
          continue;
        }
        net_.send(self_, storage,
                  kv::NewEpochMsg{epoch_payload_, phase_span_});
      }
      break;
    }
    case Phase::kCommitWait:
    case Phase::kIdle:
      break;  // unreachable: the generation guard kills idle timers
  }
}

// ------------------------------------------------------------- state views

FullConfig ReconfigManager::post_change_state() const {
  return post_change_state_for(current_.change, current_cfno_);
}

FullConfig ReconfigManager::post_change_state_for(const QuorumChange& change,
                                                  std::uint64_t cfno) const {
  FullConfig state = canonical_;
  if (change.is_global) {
    state.default_q = change.global;
  } else {
    for (const auto& [oid, q] : change.overrides) {
      bool replaced = false;
      for (auto& [existing_oid, existing_q] : state.overrides) {
        if (existing_oid == oid) {
          existing_q = q;
          replaced = true;
          break;
        }
      }
      if (!replaced) state.overrides.emplace_back(oid, q);
    }
  }
  state.cfno = cfno;
  state.read_q_history.emplace_back(cfno, max_read_q(state));
  return state;
}

FullConfig ReconfigManager::transition_state() const {
  // Component-wise max of old and new quorums, per object: the transition
  // quorum intersects the read and write quorums of both configurations.
  FullConfig next = post_change_state();
  FullConfig state = next;
  state.default_q = kv::transition(canonical_.default_q, next.default_q);
  for (auto& [oid, q] : state.overrides) {
    // Old effective strategy for this object.
    kv::QuorumStrategy old_q = canonical_.default_q;
    for (const auto& [old_oid, candidate] : canonical_.overrides) {
      if (old_oid == oid) {
        old_q = candidate;
        break;
      }
    }
    q = kv::transition(old_q, q);
  }
  return state;
}

int ReconfigManager::max_quorum_dimension(const FullConfig& state) {
  const QuorumConfig d = state.default_q.footprint();
  int m = std::max(d.read_q, d.write_q);
  for (const auto& [oid, q] : state.overrides) {
    const QuorumConfig fp = q.footprint();
    m = std::max({m, fp.read_q, fp.write_q});
  }
  return m;
}

int ReconfigManager::max_read_q(const FullConfig& state) {
  int m = state.default_q.read_footprint();
  for (const auto& [oid, q] : state.overrides) {
    m = std::max(m, q.read_footprint());
  }
  return m;
}

// ------------------------------------------------------------- message i/o

void ReconfigManager::on_message(const sim::NodeId& from, const Message& msg) {
  QOPT_PROFILE_SCOPE(obs_, obs::ProfSubsystem::kRm);
  std::visit(
      [&](const auto& m) {
        using T = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<T, kv::AckNewQuorumMsg>) {
          handle_ack_new_quorum(from, m);
        } else if constexpr (std::is_same_v<T, kv::AckConfirmMsg>) {
          handle_ack_confirm(from, m);
        } else if constexpr (std::is_same_v<T, kv::AckNewEpochMsg>) {
          handle_epoch_ack(from, m);
        }
      },
      msg);
}

void ReconfigManager::handle_ack_new_quorum(const sim::NodeId& from,
                                            const kv::AckNewQuorumMsg& ack) {
  // Phase + generation fencing: a retransmitted or stale ack (an earlier
  // cfno, or a phase this RM already left) must not count toward the
  // current phase's quorum. Re-inserting an already-counted proxy is
  // idempotent (acked_proxies_ is a set).
  if (phase_ != Phase::kNewQuorum || ack.cfno != current_cfno_) return;
  acked_proxies_.insert(from.index);
  evaluate_phase1();
}

void ReconfigManager::handle_ack_confirm(const sim::NodeId& from,
                                         const kv::AckConfirmMsg& ack) {
  if (phase_ != Phase::kConfirm || ack.cfno != current_cfno_) return;
  acked_proxies_.insert(from.index);
  evaluate_phase2();
}

void ReconfigManager::on_suspicion_change(const sim::NodeId& node,
                                          bool suspected) {
  if (node.kind != sim::NodeKind::kProxy || !suspected) return;
  if (phase_ == Phase::kNewQuorum) evaluate_phase1();
  if (phase_ == Phase::kConfirm) evaluate_phase2();
}

void ReconfigManager::evaluate_phase1() {
  if (phase_ != Phase::kNewQuorum) return;
  // Algorithm 2 lines 10-12: wait until every proxy has ACKed or is
  // suspected; then trigger an epoch change if *any* proxy is suspected
  // (conservative: a suspected proxy may be alive with a stale view).
  bool any_suspected = false;
  for (const sim::NodeId& proxy : proxies_) {
    const bool suspected = fd_.suspects(proxy);
    any_suspected |= suspected;
    if (!acked_proxies_.contains(proxy.index) && !suspected) {
      return;  // still waiting on a non-suspected proxy
    }
  }
  if (any_suspected) {
    // Algorithm 2 lines 12-14: invalidate operations that may still run
    // under the old quorum before confirming; storage nodes will NACK any
    // proxy left behind in the previous epoch.
    begin_epoch_change(/*after_phase1=*/true);
  } else {
    begin_confirm();
  }
}

void ReconfigManager::begin_confirm() {
  phase_ = Phase::kConfirm;
  trace(obs::Category::kReconfig, "rm_confirm", canonical_.epno,
        current_cfno_);
  begin_phase_span(obs::Phase::kRmConfirm, "rm_confirm");
  acked_proxies_.clear();
  const kv::ConfirmMsg msg{canonical_.epno, current_cfno_, phase_span_};
  for (const sim::NodeId& proxy : proxies_) net_.send(self_, proxy, msg);
  ++retry_gen_;
  arm_phase_retransmit(0);
  evaluate_phase2();
}

void ReconfigManager::evaluate_phase2() {
  if (phase_ != Phase::kConfirm) return;
  bool any_suspected = false;
  for (const sim::NodeId& proxy : proxies_) {
    const bool suspected = fd_.suspects(proxy);
    any_suspected |= suspected;
    if (!acked_proxies_.contains(proxy.index) && !suspected) {
      return;
    }
  }
  if (any_suspected) {
    begin_epoch_change(/*after_phase1=*/false);
  } else {
    commit();
  }
}

void ReconfigManager::begin_epoch_change(bool after_phase1) {
  ins_.epoch_changes->inc();
  epoch_change_after_phase1_ = after_phase1;
  phase_ = after_phase1 ? Phase::kEpochChange1 : Phase::kEpochChange2;
  acked_storage_.clear();

  // Epoch-change quorum sizing (Section 5.3): after phase 1 the lagging
  // proxies may be using the old or transition quorum, so a quorum of
  // max(oldR, oldW) storage acknowledgements guarantees their operations
  // meet a NACK. After phase 2 they may be using the transition or new
  // quorum, so size by the new configuration.
  FullConfig payload;
  if (after_phase1) {
    // Lagging proxies must run with the transition quorums until CONFIRM;
    // ship the pending change so they can commit it when it arrives.
    payload = transition_state();
    payload.transitional = true;
    payload.pending = current_.change;
  } else {
    payload = post_change_state();
  }
  epoch_quorum_needed_ =
      max_quorum_dimension(after_phase1 ? canonical_ : payload);
  epoch_payload_ = payload;

  // The epoch bump is a canonical-state decision: replicate it so epochs
  // stay totally ordered across RM leader failovers. The broadcast follows
  // in drive_epoch_broadcast() once the bump is decided (inline in classic
  // single-instance mode). Kill the previous phase's retransmit timer so it
  // cannot resend a NEWEP payload carrying a pre-decision epoch.
  ++retry_gen_;
  log_submit(smr::RmLogKind::kEpoch);
}

void ReconfigManager::drive_epoch_broadcast() {
  trace(obs::Category::kReconfig, "rm_epoch_change", canonical_.epno,
        current_cfno_);
  begin_phase_span(obs::Phase::kRmEpoch, "rm_epoch_change");
  epoch_payload_.epno = canonical_.epno;
  // A re-drive (new leader, or a second decided bump landing while this
  // phase waits) restarts the acknowledgement tally: acks are only valid
  // against the epoch they echo.
  acked_storage_.clear();
  for (const sim::NodeId& storage : storages_) {
    net_.send(self_, storage,
              kv::NewEpochMsg{epoch_payload_, phase_span_});
  }
  ++retry_gen_;
  arm_phase_retransmit(0);
}

void ReconfigManager::handle_epoch_ack(const sim::NodeId& from,
                                       const kv::AckNewEpochMsg& ack) {
  if (phase_ != Phase::kEpochChange1 && phase_ != Phase::kEpochChange2) return;
  if (ack.epno != canonical_.epno) return;
  acked_storage_.insert(from.index);
  if (static_cast<int>(acked_storage_.size()) < epoch_quorum_needed_) return;
  if (epoch_change_after_phase1_) {
    begin_confirm();
  } else {
    commit();
  }
}

void ReconfigManager::commit() {
  // The phase protocol is done; whether the round takes effect is now a
  // replicated-log decision. kCommitWait fences late ACKCONFIRM / ACKNEWEP
  // arrivals from re-triggering a second submission.
  phase_ = Phase::kCommitWait;
  ++retry_gen_;  // the decided round needs no more phase retransmits
  log_submit(smr::RmLogKind::kCommit);
}

// --------------------------------------------------- replicated-log plumbing

void ReconfigManager::log_submit(smr::RmLogKind kind) {
  smr::Command entry;
  entry.kind = kind;
  entry.cfno = current_cfno_;
  entry.origin = current_.origin;
  entry.seq = current_.seq;
  if (kind == smr::RmLogKind::kCommit) entry.change = current_.change;
  if (sink_) {
    sink_(std::move(entry));
  } else {
    apply_entry(entry);  // classic single-instance mode: decide inline
  }
}

bool ReconfigManager::apply_entry(const smr::Command& entry) {
  switch (entry.kind) {
    case smr::RmLogKind::kRequest:
      return apply_request(entry);
    case smr::RmLogKind::kEpoch:
      return apply_epoch(entry);
    case smr::RmLogKind::kCommit:
      return apply_commit(entry);
  }
  return false;
}

bool ReconfigManager::apply_request(const smr::Command& entry) {
  // Validation happened before submission (change_configuration or the
  // replicated RM's request path), so every replica queues identically.
  queue_.push_back(Request{entry.change, {}, entry.origin, entry.seq});
  if (leader_active_ && phase_ == Phase::kIdle) start_next();
  return true;
}

bool ReconfigManager::apply_epoch(const smr::Command&) {
  canonical_.epno += 1;  // epochs are totally ordered, log-decided counters
  ins_.epoch->set(static_cast<double>(canonical_.epno));
  // Only the replica driving an epoch-change phase broadcasts; a bump that
  // lands mid-phase (a deposed leader's stray entry) re-drives with the
  // fresh epoch, since acks against the superseded one no longer count.
  if (leader_active_ &&
      (phase_ == Phase::kEpochChange1 || phase_ == Phase::kEpochChange2)) {
    drive_epoch_broadcast();
  }
  return true;
}

bool ReconfigManager::apply_commit(const smr::Command& entry) {
  const bool driving = leader_active_ && phase_ != Phase::kIdle;
  if (entry.cfno != canonical_.cfno + 1 || queue_.empty()) {
    // cfno fence: a duplicate or deposed-leader commit for an installed
    // round mutates nothing. If this replica is (re)driving that ghost
    // round, stop — its request already completed.
    if (driving && current_cfno_ <= canonical_.cfno) abandon_round();
    return false;
  }
  Request finished = std::move(queue_.front());
  queue_.pop_front();
  FullConfig next = post_change_state_for(finished.change, entry.cfno);
  next.epno = canonical_.epno;
  canonical_ = std::move(next);
  const bool this_round = driving && current_cfno_ == entry.cfno;
  if (this_round) {
    ins_.reconfigurations_completed->inc();
    ins_.reconfig_time_ns->inc(
        static_cast<std::uint64_t>(sim_.now() - started_at_));
  }
  ins_.cfno->set(static_cast<double>(canonical_.cfno));
  if (this_round) {
    trace(obs::Category::kReconfig, "rm_commit", canonical_.epno,
          canonical_.cfno);
    if (phase_span_.valid()) {
      obs_->spans().close_span(phase_span_, sim_.now(), canonical_.epno,
                               canonical_.cfno);
      phase_span_ = obs::SpanContext{};
    }
    if (round_trace_.valid()) {
      obs_->spans().end_trace(round_trace_, sim_.now());
      round_trace_ = obs::SpanContext{};
    }
    phase_ = Phase::kIdle;
    ++retry_gen_;  // kill the committed round's retransmit timer
    current_ = Request{};
  } else if (driving && current_cfno_ <= canonical_.cfno) {
    abandon_round();  // this commit retired the round we were re-driving
  }
  // The callback may synchronously enqueue (and start) the next
  // reconfiguration; fire it only after the round state is fully retired.
  if (finished.done) finished.done(true);
  if (leader_active_ && phase_ == Phase::kIdle) start_next();
  return true;
}

void ReconfigManager::set_leader_active(bool active) {
  if (leader_active_ == active) return;
  leader_active_ = active;
  if (!active) {
    if (phase_ != Phase::kIdle) abandon_round();
    ++retry_gen_;  // no timers may survive demotion, busy or not
  } else {
    // Deterministic resume: the queue head (if any) is re-driven from
    // committed state — NEWQ restarts, receivers are idempotent.
    start_next();
  }
}

void ReconfigManager::abandon_round() {
  trace(obs::Category::kReconfig, "rm_round_abandoned", canonical_.epno,
        current_cfno_);
  if (phase_span_.valid()) {
    obs_->spans().close_span(phase_span_, sim_.now(), canonical_.epno,
                             current_cfno_);
    phase_span_ = obs::SpanContext{};
  }
  if (round_trace_.valid()) {
    obs_->spans().end_trace(round_trace_, sim_.now());
    round_trace_ = obs::SpanContext{};
  }
  phase_ = Phase::kIdle;
  ++retry_gen_;
  current_ = Request{};
}

}  // namespace qopt::reconfig
