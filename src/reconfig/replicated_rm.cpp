#include "kv/quorum.hpp"
#include "kv/types.hpp"
#include "kv/wire.hpp"
#include "obs/obs.hpp"
#include "obs/registry.hpp"
#include "reconfig/reconfig_manager.hpp"
#include "reconfig/replicated_rm.hpp"
#include "sim/failure_detector.hpp"
#include "sim/ids.hpp"
#include "sim/network.hpp"
#include "sim/simulator.hpp"
#include "smr/group.hpp"
#include "smr/messages.hpp"
#include "smr/replica.hpp"

#include <utility>

namespace qopt::reconfig {

namespace {
/// Node namespace of RM replicas on the group's private network (kinds are
/// only meaningful per network; smr::Group uses kStorage internally).
sim::NodeId smr_node(std::uint32_t index) {
  return sim::NodeId{sim::NodeKind::kStorage, index};
}
}  // namespace

ReplicatedRm::ReplicatedRm(sim::Simulator& sim, Net& net,
                           sim::FailureDetector& fd,
                           std::vector<sim::NodeId> proxies,
                           std::vector<sim::NodeId> storages,
                           kv::QuorumConfig initial, int replication,
                           const ReplicatedRmOptions& options,
                           obs::Observability* obs)
    : sim_(sim), net_(net), replication_(replication) {
  if (!obs) {
    own_obs_ = std::make_unique<obs::Observability>();
    obs = own_obs_.get();
  }
  obs_ = obs;

  smr::GroupOptions group_options;
  group_options.replicas = options.replicas;
  group_options.network = options.network;
  group_options.fd_detection_delay = options.fd_detection_delay;
  group_options.seed = options.seed;
  group_ = std::make_unique<smr::Group>(sim_, group_options,
                                        smr::Replica::ApplyFn{});
  group_->set_indexed_apply(
      [this](std::uint32_t replica, std::uint64_t slot,
             const smr::Command& command) { on_apply(replica, slot, command); });

  const std::uint32_t n = options.replicas;
  crashed_.assign(n, false);
  applied_upto_.assign(n, 0);
  rms_.reserve(n);
  machines_.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    rms_.push_back(std::make_unique<ReconfigManager>(
        sim_, net_, sim::rm_replica_id(i), fd, proxies, storages, initial,
        replication, obs_));
    ReconfigManager& rm = *rms_.back();
    rm.bind_log([this, i](smr::Command command) {
      command.id = ++next_cmd_id_;
      group_->submit(i, std::move(command));
    });
    rm.set_request_hook(
        [this](kv::QuorumChange change, DoneCallback done) {
          change_configuration(std::move(change), std::move(done));
        });
    // Exactly one replica holds the leader role; replica 0 starts with it
    // (matching the group's initial leader designation).
    if (i != 0) rm.set_leader_active(false);
    machines_.emplace_back(initial, replication);
  }
  // Subscribed after the Group's own listener, so by the time roles are
  // re-derived the replicas have already re-evaluated SMR leadership and
  // unacked commands have been re-driven.
  group_->failure_detector().subscribe(
      [this](const sim::NodeId&, bool) { sync_roles(); });

  auto& reg = obs_->registry();
  leader_changes_ = &reg.counter("rm.leader_changes");
  rounds_resumed_ = &reg.counter("rm.rounds_resumed");
  stale_leader_msgs_ = &reg.counter("rm.stale_leader_msgs_ignored");
  rejected_invalid_ = &reg.counter("rm.rejected_invalid");
}

void ReplicatedRm::change_configuration(kv::QuorumChange change,
                                        DoneCallback done) {
  // Validated once here, so every replica queues identically on apply.
  if (!kv::validate_change(change, replication_)) {
    rejected_invalid_->inc();
    if (done) done(false);
    return;
  }
  smr::Command command;
  command.id = ++next_cmd_id_;
  command.kind = smr::RmLogKind::kRequest;
  command.seq = ++next_seq_;
  command.change = std::move(change);
  if (done) outstanding_.emplace(command.seq, std::move(done));
  group_->submit(group_->leader(), std::move(command));
}

void ReplicatedRm::on_message(std::uint32_t replica, const sim::NodeId& from,
                              const kv::Message& msg) {
  if (crashed_.at(replica)) return;  // the network should have dropped it
  ReconfigManager& rm = *rms_.at(replica);
  if (!rm.leader_active()) {
    // A proxy or storage ack chasing a deposed leader: the generation and
    // cfno guards would reject it anyway; count and drop at the door.
    stale_leader_msgs_->inc();
    return;
  }
  rm.on_message(from, msg);
}

void ReplicatedRm::on_apply(std::uint32_t replica, std::uint64_t slot,
                            const smr::Command& command) {
  applied_upto_[replica] = slot + 1;
  if (slot + 1 > decided_upto_) decided_upto_ = slot + 1;
  const bool mutated = rms_[replica]->apply_entry(command);
  if (command.kind == smr::RmLogKind::kCommit && mutated) {
    // Shadow fold: the standalone config state machine must trace the same
    // cfno trajectory as the RM's canonical state.
    smr::Command as_request = command;
    as_request.kind = smr::RmLogKind::kRequest;
    machines_[replica].apply(as_request);
    if (machines_[replica].config().cfno != rms_[replica]->config().cfno) {
      ++state_divergences_;
    }
    // First replica to apply the commit completes the request, exactly once
    // cluster-wide (later appliers find the callback gone).
    auto it = outstanding_.find(command.seq);
    if (it != outstanding_.end()) {
      DoneCallback done = std::move(it->second);
      outstanding_.erase(it);
      if (done) done(true);
    }
  }
  // Catching up may have just made the designated leader promotable.
  sync_roles();
}

void ReplicatedRm::sync_roles() {
  const std::uint32_t next = group_->leader();
  for (std::uint32_t i = 0; i < rms_.size(); ++i) {
    if (i != next && rms_[i]->leader_active()) {
      rms_[i]->set_leader_active(false);
    }
  }
  ReconfigManager& rm = *rms_[next];
  if (rm.leader_active()) return;
  if (crashed_[next] || applied_upto_[next] < decided_upto_) return;
  leader_changes_->inc();
  // Inactive replicas are always idle, so queued() is the full replicated
  // queue: anything there means the new leader resumes pending work.
  if (rm.queued() > 0) rounds_resumed_->inc();
  rm.set_leader_active(true);
  if (on_leader_change_) on_leader_change_(next);
}

void ReplicatedRm::crash_replica(std::uint32_t index) {
  if (crashed_.at(index)) return;
  crashed_[index] = true;
  // Volatile driving state dies with the process: timers, spans, the phase.
  rms_[index]->set_leader_active(false);
  net_.set_crashed(sim::rm_replica_id(index));
  group_->crash_replica(index);  // group FD flips -> sync_roles fires
  sync_roles();
}

void ReplicatedRm::restart_replica(std::uint32_t index) {
  if (!crashed_.at(index)) return;
  crashed_[index] = false;
  net_.set_crashed(sim::rm_replica_id(index), false);
  // The group replica rejoins with its durable log and catches up through
  // phase 1 once it retakes SMR leadership; RM promotion waits for the
  // applied log to reach every decision applied anywhere (sync_roles).
  group_->restart_replica(index);
  sync_roles();
}

std::uint64_t ReplicatedRm::partition_replica(std::uint32_t index) {
  std::vector<sim::NodeId> isolated{smr_node(index)};
  std::vector<sim::NodeId> rest;
  for (std::uint32_t j = 0; j < rms_.size(); ++j) {
    if (j != index) rest.push_back(smr_node(j));
  }
  const std::uint64_t id =
      group_->network().add_partition(isolated, rest, /*symmetric=*/true);
  // The group FD is an oracle; it cannot observe the partition, so suspect
  // the isolated replica explicitly until the heal clears it. Listeners
  // re-derive SMR leadership and the RM leader role from the flip.
  group_->failure_detector().inject_false_suspicion(smr_node(index),
                                                    /*duration=*/0);
  return id;
}

void ReplicatedRm::heal_replica_partition(std::uint32_t index,
                                          std::uint64_t partition_id) {
  group_->network().heal_partition(partition_id);
  group_->failure_detector().clear_suspicion(smr_node(index));
}

}  // namespace qopt::reconfig
