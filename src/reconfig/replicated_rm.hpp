// Replicated Reconfiguration Manager — the RM as a fault-tolerant service.
//
// The paper treats the RM as logically centralized; here it runs as a group
// of replicas, each hosting a full ReconfigManager bound to a shared
// MultiPaxos log (smr::Group on its own private network). Canonical quorum
// state — the request queue, epoch counter and committed configuration —
// advances only through decided log entries, so every replica folds the
// identical history. Exactly one replica at a time holds the *leader role*:
// only it broadcasts NEWQ/CONFIRM/NEWEP, arms retransmit timers and opens
// spans. When the group's failure detector deposes a leader, the next
// caught-up replica resumes any in-flight round deterministically from
// committed state (the round's request stays at the replicated queue head
// until its commit entry is decided); cfno fences make a deposed leader's
// stray commit a no-op and epno guards cover its retransmits in flight.
//
// See docs/ROBUSTNESS.md (RM failover) for the fault model and guarantees.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "kv/quorum.hpp"
#include "kv/types.hpp"
#include "kv/wire.hpp"
#include "obs/obs.hpp"
#include "obs/registry.hpp"
#include "reconfig/reconfig_manager.hpp"
#include "sim/failure_detector.hpp"
#include "sim/ids.hpp"
#include "sim/network.hpp"
#include "sim/simulator.hpp"
#include "smr/group.hpp"
#include "smr/messages.hpp"
#include "util/time.hpp"

namespace qopt::reconfig {

struct ReplicatedRmOptions {
  std::uint32_t replicas = 3;
  /// Latency model of the group's private replication network.
  sim::LatencyModel network{microseconds(200), microseconds(200)};
  /// Detection delay of the group-private failure detector — the failover
  /// reaction time after an RM leader crash.
  Duration fd_detection_delay = milliseconds(300);
  std::uint64_t seed = 0x524D;
};

class ReplicatedRm {
 public:
  using Net = sim::Network<kv::Message>;
  using DoneCallback = ReconfigManager::DoneCallback;
  /// Fired after a replica is promoted to the leader role (heartbeat
  /// retargeting and the like).
  using LeaderChangeFn = std::function<void(std::uint32_t leader)>;

  /// `net`/`fd` are the kv-plane network and failure detector the classic
  /// RM uses; the replication plane (group network + group FD) is private.
  ReplicatedRm(sim::Simulator& sim, Net& net, sim::FailureDetector& fd,
               std::vector<sim::NodeId> proxies,
               std::vector<sim::NodeId> storages, kv::QuorumConfig initial,
               int replication, const ReplicatedRmOptions& options,
               obs::Observability* obs = nullptr);

  /// The replicated changeConfiguration entry point: validates once, then
  /// replicates the request through the current group leader. Every
  /// replica's ReconfigManager has a request hook pointing here, so calls
  /// made against any replica (the Autonomic Manager's included) land on
  /// the shared log regardless of where they entered.
  void change_configuration(kv::QuorumChange change, DoneCallback done = {});

  /// Wire inbox of replica `replica` on the kv plane. Protocol acks are
  /// delivered only to the replica currently holding the leader role;
  /// deliveries to a deposed leader are counted and dropped.
  void on_message(std::uint32_t replica, const sim::NodeId& from,
                  const kv::Message& msg);

  // ------------------------------------------------------ failure injection

  void crash_replica(std::uint32_t index);
  void restart_replica(std::uint32_t index);
  bool replica_crashed(std::uint32_t index) const {
    return crashed_.at(index);
  }
  /// Isolates `index` on the replication plane (the kv plane is the
  /// caller's to partition) and suspects it until healed; returns the
  /// partition id for heal_replica_partition().
  std::uint64_t partition_replica(std::uint32_t index);
  void heal_replica_partition(std::uint32_t index, std::uint64_t partition_id);

  // -------------------------------------------------------------- accessors

  std::uint32_t size() const {
    return static_cast<std::uint32_t>(rms_.size());
  }
  /// Group-designated leader index (the replica that drives, once caught
  /// up and alive).
  std::uint32_t leader() const { return group_->leader(); }
  /// The designated leader's ReconfigManager — the authoritative view of
  /// committed configuration for report()/tests.
  ReconfigManager& leader_rm() { return *rms_.at(leader()); }
  const ReconfigManager& leader_rm() const { return *rms_.at(leader()); }
  ReconfigManager& rm(std::uint32_t index) { return *rms_.at(index); }
  smr::Group& group() noexcept { return *group_; }
  void set_leader_change_hook(LeaderChangeFn hook) {
    on_leader_change_ = std::move(hook);
  }
  /// Divergences between each replica's RM canonical state and the
  /// standalone ConfigStateMachine folding the same decided log — a
  /// cross-check that must stay at zero.
  std::uint64_t state_divergences() const noexcept {
    return state_divergences_;
  }

 private:
  void on_apply(std::uint32_t replica, std::uint64_t slot,
                const smr::Command& command);
  /// Re-derives the leader role from the group's failure detector: demotes
  /// deposed replicas, promotes the designated leader once it is alive and
  /// its applied log has caught up with every decision applied anywhere (a
  /// lagging promoter would re-drive ghosts of rounds it has not yet
  /// learned were committed).
  void sync_roles();

  sim::Simulator& sim_;
  Net& net_;
  int replication_;

  std::unique_ptr<obs::Observability> own_obs_;
  obs::Observability* obs_ = nullptr;

  std::unique_ptr<smr::Group> group_;
  std::vector<std::unique_ptr<ReconfigManager>> rms_;
  /// Per-replica shadow state machines folding the same kCommit stream.
  std::vector<smr::ConfigStateMachine> machines_;
  std::vector<bool> crashed_;

  /// applied_upto_[i] = highest applied slot + 1 at replica i;
  /// decided_upto_ = max over replicas (promotion gate).
  std::vector<std::uint64_t> applied_upto_;
  std::uint64_t decided_upto_ = 0;

  /// Completion callbacks keyed by request seq; fired exactly once, when
  /// the first replica applies the round's commit entry.
  std::unordered_map<std::uint64_t, DoneCallback> outstanding_;
  std::uint64_t next_cmd_id_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t state_divergences_ = 0;

  LeaderChangeFn on_leader_change_;

  obs::Counter* leader_changes_ = nullptr;
  obs::Counter* rounds_resumed_ = nullptr;
  obs::Counter* stale_leader_msgs_ = nullptr;
  obs::Counter* rejected_invalid_ = nullptr;
};

}  // namespace qopt::reconfig
