// Reconfiguration Manager (RM) — Algorithm 2 of the paper.
//
// Coordinates the two-phase, non-blocking quorum reconfiguration protocol:
//
//   Phase 1: broadcast NEWQ to all proxies, which switch to the transition
//            quorum and ACK once operations issued under the old quorum have
//            drained. If any proxy is suspected instead of ACKing, trigger
//            an epoch change sized max(oldR, oldW) carrying the transition
//            configuration.
//   Phase 2: broadcast CONFIRM; proxies switch to the new quorum. If any
//            proxy is suspected, trigger an epoch change sized
//            max(newR, newW) carrying the new configuration.
//
// Reconfigurations are executed strictly serially; requests queue. The
// protocol is indulgent: false suspicions can force operations to
// re-execute but never violate Dynamic Quorum Consistency nor block the
// reconfiguration (Section 5.3).
//
// Supports both global (default/tail) changes and per-object batches
// (Section 5.4).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "kv/quorum.hpp"
#include "kv/types.hpp"
#include "kv/wire.hpp"
#include "obs/obs.hpp"
#include "obs/registry.hpp"
#include "obs/span.hpp"
#include "obs/trace.hpp"
#include "sim/failure_detector.hpp"
#include "sim/ids.hpp"
#include "sim/network.hpp"
#include "sim/simulator.hpp"
#include "smr/messages.hpp"
#include "util/time.hpp"

namespace qopt::reconfig {

/// Legacy aggregate view; the authoritative instruments live in the shared
/// `obs::MetricRegistry` under `rm.*`.
struct ReconfigStats {
  std::uint64_t reconfigurations_completed = 0;
  std::uint64_t epoch_changes = 0;
  std::uint64_t rejected_invalid = 0;
  std::uint64_t retries = 0;  // phase-message retransmit rounds
  Duration total_reconfig_time = 0;  // summed wall (virtual) time
};

class ReconfigManager {
 public:
  using Net = sim::Network<kv::Message>;
  using DoneCallback = std::function<void(bool ok)>;
  /// Destination for canonical-state decisions (epoch bumps, commits).
  /// Unset (the default), decisions apply inline — the classic
  /// single-instance RM. Set by the replicated RM, they are submitted to
  /// the shared SMR log instead and take effect only when apply_entry()
  /// delivers the chosen entry back, on every replica.
  using LogSink = std::function<void(smr::Command)>;
  /// Reroute for change_configuration(): the replicated RM installs one so
  /// requests made against any replica (the AM's direct calls included) are
  /// validated once and replicated through the current leader.
  using RequestHook = std::function<void(kv::QuorumChange, DoneCallback)>;

  /// `obs` is the cluster-wide observability bundle; when null the RM
  /// allocates a private one (stand-alone component tests).
  ReconfigManager(sim::Simulator& sim, Net& net, sim::NodeId self,
                  sim::FailureDetector& fd,
                  std::vector<sim::NodeId> proxies,
                  std::vector<sim::NodeId> storages,
                  kv::QuorumConfig initial, int replication,
                  obs::Observability* obs = nullptr);

  /// Queues a reconfiguration (the changeConfiguration entry point; callable
  /// by the Autonomic Manager or a human administrator). Validates strict
  /// quorum intersection (R + W > N) for every quorum in the change; invalid
  /// requests complete immediately with ok=false.
  void change_configuration(kv::QuorumChange change, DoneCallback done = {});

  void on_message(const sim::NodeId& from, const kv::Message& msg);

  // ------------------------------------------------ replicated-RM wiring
  //
  // A replicated deployment hosts one ReconfigManager per RM replica, all
  // bound to the same SMR log. Canonical state (epoch counter, committed
  // configuration, request queue) advances only through decided log
  // entries, so every replica folds the identical history; phase side
  // effects (broadcasts, retransmit timers, traces) run only on the replica
  // whose leader flag is set.

  void bind_log(LogSink sink) { sink_ = std::move(sink); }
  void set_request_hook(RequestHook hook) { request_hook_ = std::move(hook); }
  /// Applies a decided log entry to this replica's canonical state.
  /// Returns true when the entry mutated state (a stale kCommit from a
  /// deposed leader is fenced off by its cfno and returns false).
  bool apply_entry(const smr::Command& entry);
  /// Leader-role flag. Demotion abandons any round this replica was
  /// driving (timers die, spans close; committed state is untouched).
  /// Promotion re-drives the queue head — the deterministic resume of an
  /// in-flight round from committed state.
  void set_leader_active(bool active);
  bool leader_active() const noexcept { return leader_active_; }

  /// Canonical committed configuration (source of truth for NEWEP payloads
  /// and for the Autonomic Manager's view of installed quorums).
  const kv::FullConfig& config() const noexcept { return canonical_; }
  /// Strategy installed for `oid` (override, else the default).
  const kv::QuorumStrategy& quorum_for(kv::ObjectId oid) const;
  /// Grid footprint of quorum_for() — the sizes legacy callers reason about.
  kv::QuorumConfig quorum_footprint_for(kv::ObjectId oid) const {
    return quorum_for(oid).footprint();
  }
  bool busy() const noexcept { return phase_ != Phase::kIdle; }
  /// Requests waiting behind the in-flight round. The queue keeps the head
  /// until its commit is decided (so a new leader can re-drive it), hence
  /// the compensation while a round is active.
  std::size_t queued() const noexcept {
    return queue_.size() - (phase_ != Phase::kIdle ? 1 : 0);
  }
  /// Observability bundle in use (the shared one, or the private fallback).
  obs::Observability& observability() noexcept { return *obs_; }
  const obs::Observability& observability() const noexcept { return *obs_; }
  [[deprecated("query the metric registry (rm.*) instead")]]
  ReconfigStats stats() const;

 private:
  enum class Phase {
    kIdle,
    kNewQuorum,      // waiting for ACKNEWQ / suspicions
    kEpochChange1,   // waiting for ACKNEWEP after phase 1
    kConfirm,        // waiting for ACKCONFIRM / suspicions
    kEpochChange2,   // waiting for ACKNEWEP after phase 2
    kCommitWait,     // commit submitted to the log, decision pending
  };

  void start_next();
  /// Routes a canonical-state decision through the log sink (replicated) or
  /// applies it inline (classic single-instance mode).
  void log_submit(smr::RmLogKind kind);
  bool apply_request(const smr::Command& entry);
  bool apply_epoch(const smr::Command& entry);
  bool apply_commit(const smr::Command& entry);
  /// Leader-side continuation of a decided epoch bump: (re)broadcast NEWEP
  /// carrying the now-canonical epoch and re-arm the retransmit timer.
  void drive_epoch_broadcast();
  /// Stops driving the in-flight round without touching committed state:
  /// spans close, timers die, the phase returns to idle. The round itself
  /// stays at the queue head for whichever leader drives it next.
  void abandon_round();
  /// Re-sends the current phase's message (NEWQ / CONFIRM / NEWEP) to every
  /// target that has neither acked nor been suspected, with exponential
  /// backoff. Receivers are idempotent, so lost control messages only delay
  /// a reconfiguration instead of wedging it. The generation counter is
  /// bumped on every phase transition, killing stale timers.
  void arm_phase_retransmit(int attempt);
  void resend_phase();
  void evaluate_phase1();
  void evaluate_phase2();
  void begin_confirm();
  void begin_epoch_change(bool after_phase1);
  void handle_ack_new_quorum(const sim::NodeId& from,
                             const kv::AckNewQuorumMsg&);
  void handle_ack_confirm(const sim::NodeId& from, const kv::AckConfirmMsg&);
  void handle_epoch_ack(const sim::NodeId& from, const kv::AckNewEpochMsg&);
  void commit();
  void on_suspicion_change(const sim::NodeId& node, bool suspected);

  /// Post-change state the current pending change would install.
  kv::FullConfig post_change_state() const;
  /// Same fold for an arbitrary change/cfno (commit-apply runs it against
  /// the replicated queue head, which every replica holds).
  kv::FullConfig post_change_state_for(const kv::QuorumChange& change,
                                       std::uint64_t cfno) const;
  /// Transition state: per-object kv::transition of current and post-change
  /// (component-wise max of grid footprints).
  kv::FullConfig transition_state() const;
  /// Largest read or write quorum footprint across default and overrides of
  /// a state: a storage quorum of this size meets every in-flight quorum.
  static int max_quorum_dimension(const kv::FullConfig& state);
  static int max_read_q(const kv::FullConfig& state);

  sim::Simulator& sim_;
  Net& net_;
  sim::NodeId self_;
  sim::FailureDetector& fd_;
  std::vector<sim::NodeId> proxies_;
  std::vector<sim::NodeId> storages_;
  int replication_;

  kv::FullConfig canonical_;

  struct Request {
    kv::QuorumChange change;
    DoneCallback done;
    // Requester identity, threaded through kCommit entries so the
    // replicated RM fires completion callbacks exactly once cluster-wide.
    std::uint32_t origin = 0;
    std::uint64_t seq = 0;
  };
  std::deque<Request> queue_;

  // Replicated-RM wiring (both unset in classic single-instance mode).
  LogSink sink_;
  RequestHook request_hook_;
  bool leader_active_ = true;

  // In-flight reconfiguration state.
  Phase phase_ = Phase::kIdle;
  Request current_;
  std::uint64_t current_cfno_ = 0;
  Time started_at_ = 0;
  std::unordered_set<std::uint32_t> acked_proxies_;
  std::unordered_set<std::uint32_t> acked_storage_;
  int epoch_quorum_needed_ = 0;
  bool epoch_change_after_phase1_ = false;
  std::uint64_t retry_gen_ = 0;  // invalidates retransmit timers on phase end
  kv::FullConfig epoch_payload_;  // last NEWEP payload, kept for resends
  static constexpr Duration kRetryBase = 300 * kMillisecond;
  static constexpr Duration kRetryCap = 5000 * kMillisecond;

  // Span-layer state: one trace per reconfiguration round; the phase span
  // travels inside NEWQ/CONFIRM/NEWEP so remote adoption markers and proxy
  // drains nest under it.
  obs::SpanContext round_trace_;
  obs::SpanContext phase_span_;
  /// Closes the current phase span (if any) and opens the next one.
  void begin_phase_span(obs::Phase phase, const char* name);

  // Observability: counters cached at construction, bumped on the hot path.
  std::unique_ptr<obs::Observability> own_obs_;  // fallback when none shared
  obs::Observability* obs_ = nullptr;
  struct Instruments {
    obs::Counter* reconfigurations_completed = nullptr;
    obs::Counter* epoch_changes = nullptr;
    obs::Counter* rejected_invalid = nullptr;
    obs::Counter* retries = nullptr;
    obs::Counter* reconfig_time_ns = nullptr;
    obs::Gauge* epoch = nullptr;
    obs::Gauge* cfno = nullptr;
  };
  Instruments ins_;

  void trace(obs::Category category, const char* name, std::uint64_t a = 0,
             std::uint64_t b = 0);
};

}  // namespace qopt::reconfig
