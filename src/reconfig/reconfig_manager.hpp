// Reconfiguration Manager (RM) — Algorithm 2 of the paper.
//
// Coordinates the two-phase, non-blocking quorum reconfiguration protocol:
//
//   Phase 1: broadcast NEWQ to all proxies, which switch to the transition
//            quorum and ACK once operations issued under the old quorum have
//            drained. If any proxy is suspected instead of ACKing, trigger
//            an epoch change sized max(oldR, oldW) carrying the transition
//            configuration.
//   Phase 2: broadcast CONFIRM; proxies switch to the new quorum. If any
//            proxy is suspected, trigger an epoch change sized
//            max(newR, newW) carrying the new configuration.
//
// Reconfigurations are executed strictly serially; requests queue. The
// protocol is indulgent: false suspicions can force operations to
// re-execute but never violate Dynamic Quorum Consistency nor block the
// reconfiguration (Section 5.3).
//
// Supports both global (default/tail) changes and per-object batches
// (Section 5.4).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "kv/quorum.hpp"
#include "kv/types.hpp"
#include "kv/wire.hpp"
#include "obs/obs.hpp"
#include "obs/registry.hpp"
#include "obs/span.hpp"
#include "obs/trace.hpp"
#include "sim/failure_detector.hpp"
#include "sim/ids.hpp"
#include "sim/network.hpp"
#include "sim/simulator.hpp"
#include "util/time.hpp"

namespace qopt::reconfig {

/// Legacy aggregate view; the authoritative instruments live in the shared
/// `obs::MetricRegistry` under `rm.*`.
struct ReconfigStats {
  std::uint64_t reconfigurations_completed = 0;
  std::uint64_t epoch_changes = 0;
  std::uint64_t rejected_invalid = 0;
  std::uint64_t retries = 0;  // phase-message retransmit rounds
  Duration total_reconfig_time = 0;  // summed wall (virtual) time
};

class ReconfigManager {
 public:
  using Net = sim::Network<kv::Message>;
  using DoneCallback = std::function<void(bool ok)>;

  /// `obs` is the cluster-wide observability bundle; when null the RM
  /// allocates a private one (stand-alone component tests).
  ReconfigManager(sim::Simulator& sim, Net& net, sim::NodeId self,
                  sim::FailureDetector& fd,
                  std::vector<sim::NodeId> proxies,
                  std::vector<sim::NodeId> storages,
                  kv::QuorumConfig initial, int replication,
                  obs::Observability* obs = nullptr);

  /// Queues a reconfiguration (the changeConfiguration entry point; callable
  /// by the Autonomic Manager or a human administrator). Validates strict
  /// quorum intersection (R + W > N) for every quorum in the change; invalid
  /// requests complete immediately with ok=false.
  void change_configuration(kv::QuorumChange change, DoneCallback done = {});

  void on_message(const sim::NodeId& from, const kv::Message& msg);

  /// Canonical committed configuration (source of truth for NEWEP payloads
  /// and for the Autonomic Manager's view of installed quorums).
  const kv::FullConfig& config() const noexcept { return canonical_; }
  /// Strategy installed for `oid` (override, else the default).
  const kv::QuorumStrategy& quorum_for(kv::ObjectId oid) const;
  /// Grid footprint of quorum_for() — the sizes legacy callers reason about.
  kv::QuorumConfig quorum_footprint_for(kv::ObjectId oid) const {
    return quorum_for(oid).footprint();
  }
  bool busy() const noexcept { return phase_ != Phase::kIdle; }
  std::size_t queued() const noexcept { return queue_.size(); }
  /// Observability bundle in use (the shared one, or the private fallback).
  obs::Observability& observability() noexcept { return *obs_; }
  const obs::Observability& observability() const noexcept { return *obs_; }
  [[deprecated("query the metric registry (rm.*) instead")]]
  ReconfigStats stats() const;

 private:
  enum class Phase {
    kIdle,
    kNewQuorum,      // waiting for ACKNEWQ / suspicions
    kEpochChange1,   // waiting for ACKNEWEP after phase 1
    kConfirm,        // waiting for ACKCONFIRM / suspicions
    kEpochChange2,   // waiting for ACKNEWEP after phase 2
  };

  void start_next();
  /// Re-sends the current phase's message (NEWQ / CONFIRM / NEWEP) to every
  /// target that has neither acked nor been suspected, with exponential
  /// backoff. Receivers are idempotent, so lost control messages only delay
  /// a reconfiguration instead of wedging it. The generation counter is
  /// bumped on every phase transition, killing stale timers.
  void arm_phase_retransmit(int attempt);
  void resend_phase();
  void evaluate_phase1();
  void evaluate_phase2();
  void begin_confirm();
  void begin_epoch_change(bool after_phase1);
  void handle_ack_new_quorum(const sim::NodeId& from,
                             const kv::AckNewQuorumMsg&);
  void handle_ack_confirm(const sim::NodeId& from, const kv::AckConfirmMsg&);
  void handle_epoch_ack(const sim::NodeId& from, const kv::AckNewEpochMsg&);
  void commit();
  void on_suspicion_change(const sim::NodeId& node, bool suspected);

  /// Post-change state the current pending change would install.
  kv::FullConfig post_change_state() const;
  /// Transition state: per-object kv::transition of current and post-change
  /// (component-wise max of grid footprints).
  kv::FullConfig transition_state() const;
  /// Largest read or write quorum footprint across default and overrides of
  /// a state: a storage quorum of this size meets every in-flight quorum.
  static int max_quorum_dimension(const kv::FullConfig& state);
  static int max_read_q(const kv::FullConfig& state);

  sim::Simulator& sim_;
  Net& net_;
  sim::NodeId self_;
  sim::FailureDetector& fd_;
  std::vector<sim::NodeId> proxies_;
  std::vector<sim::NodeId> storages_;
  int replication_;

  kv::FullConfig canonical_;

  struct Request {
    kv::QuorumChange change;
    DoneCallback done;
  };
  std::deque<Request> queue_;

  // In-flight reconfiguration state.
  Phase phase_ = Phase::kIdle;
  Request current_;
  std::uint64_t current_cfno_ = 0;
  Time started_at_ = 0;
  std::unordered_set<std::uint32_t> acked_proxies_;
  std::unordered_set<std::uint32_t> acked_storage_;
  int epoch_quorum_needed_ = 0;
  bool epoch_change_after_phase1_ = false;
  std::uint64_t retry_gen_ = 0;  // invalidates retransmit timers on phase end
  kv::FullConfig epoch_payload_;  // last NEWEP payload, kept for resends
  static constexpr Duration kRetryBase = 300 * kMillisecond;
  static constexpr Duration kRetryCap = 5000 * kMillisecond;

  // Span-layer state: one trace per reconfiguration round; the phase span
  // travels inside NEWQ/CONFIRM/NEWEP so remote adoption markers and proxy
  // drains nest under it.
  obs::SpanContext round_trace_;
  obs::SpanContext phase_span_;
  /// Closes the current phase span (if any) and opens the next one.
  void begin_phase_span(obs::Phase phase, const char* name);

  // Observability: counters cached at construction, bumped on the hot path.
  std::unique_ptr<obs::Observability> own_obs_;  // fallback when none shared
  obs::Observability* obs_ = nullptr;
  struct Instruments {
    obs::Counter* reconfigurations_completed = nullptr;
    obs::Counter* epoch_changes = nullptr;
    obs::Counter* rejected_invalid = nullptr;
    obs::Counter* retries = nullptr;
    obs::Counter* reconfig_time_ns = nullptr;
    obs::Gauge* epoch = nullptr;
    obs::Gauge* cfno = nullptr;
  };
  Instruments ins_;

  void trace(obs::Category category, const char* name, std::uint64_t a = 0,
             std::uint64_t b = 0);
};

}  // namespace qopt::reconfig
