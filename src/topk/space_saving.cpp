#include "topk/space_saving.hpp"

#include <algorithm>
#include <cassert>
#include <map>

namespace qopt::topk {

SpaceSaving::SpaceSaving(std::size_t capacity)
    : capacity_(capacity ? capacity : 1) {
  slots_.reserve(capacity_);
  heap_.reserve(capacity_);
  index_.reserve(capacity_ * 2);
}

bool SpaceSaving::heap_less(std::size_t a, std::size_t b) const {
  const Slot& sa = slots_[a];
  const Slot& sb = slots_[b];
  if (sa.count != sb.count) return sa.count < sb.count;
  return sa.key < sb.key;
}

void SpaceSaving::heap_swap(std::size_t i, std::size_t j) {
  std::swap(heap_[i], heap_[j]);
  slots_[heap_[i]].heap_pos = i;
  slots_[heap_[j]].heap_pos = j;
}

void SpaceSaving::sift_up(std::size_t i) {
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (!heap_less(heap_[i], heap_[parent])) break;
    heap_swap(i, parent);
    i = parent;
  }
}

void SpaceSaving::sift_down(std::size_t i) {
  const std::size_t n = heap_.size();
  for (;;) {
    std::size_t smallest = i;
    const std::size_t l = 2 * i + 1;
    const std::size_t r = 2 * i + 2;
    if (l < n && heap_less(heap_[l], heap_[smallest])) smallest = l;
    if (r < n && heap_less(heap_[r], heap_[smallest])) smallest = r;
    if (smallest == i) return;
    heap_swap(i, smallest);
    i = smallest;
  }
}

void SpaceSaving::add(std::uint64_t key, std::uint64_t increment) {
  stream_length_ += increment;
  if (auto it = index_.find(key); it != index_.end()) {
    Slot& slot = slots_[it->second];
    slot.count += increment;
    sift_down(slot.heap_pos);
    return;
  }
  if (slots_.size() < capacity_) {
    const std::size_t slot_idx = slots_.size();
    slots_.push_back(Slot{key, increment, 0, heap_.size()});
    heap_.push_back(slot_idx);
    index_.emplace(key, slot_idx);
    sift_up(slots_[slot_idx].heap_pos);
    return;
  }
  // Evict the minimum-count slot: the newcomer inherits its count as the
  // over-estimation error (the Space-Saving replacement rule).
  const std::size_t victim_idx = heap_[0];
  Slot& victim = slots_[victim_idx];
  index_.erase(victim.key);
  index_.emplace(key, victim_idx);
  victim.error = victim.count;
  victim.count += increment;
  victim.key = key;
  sift_down(victim.heap_pos);
}

std::vector<TopKEntry> SpaceSaving::top(std::size_t k) const {
  std::vector<TopKEntry> out;
  out.reserve(slots_.size());
  for (const Slot& slot : slots_) {
    out.push_back(TopKEntry{slot.key, slot.count, slot.error});
  }
  std::sort(out.begin(), out.end(),
            [](const TopKEntry& a, const TopKEntry& b) {
              if (a.count != b.count) return a.count > b.count;
              return a.key < b.key;
            });
  if (out.size() > k) out.resize(k);
  return out;
}

std::uint64_t SpaceSaving::estimate(std::uint64_t key) const {
  auto it = index_.find(key);
  return it == index_.end() ? 0 : slots_[it->second].count;
}

bool SpaceSaving::guaranteed_above(std::uint64_t key,
                                   std::uint64_t threshold) const {
  auto it = index_.find(key);
  if (it == index_.end()) return false;
  const Slot& slot = slots_[it->second];
  return slot.count - slot.error > threshold;
}

void SpaceSaving::clear() {
  slots_.clear();
  heap_.clear();
  index_.clear();
  stream_length_ = 0;
}

void SpaceSaving::merge(const SpaceSaving& other) {
  // Rebuild from the union of entries: counts add; for keys monitored by
  // only one summary the other side's contribution is bounded by its
  // minimum count, which we fold into the error term (standard summary
  // merge, cf. Agarwal et al., "Mergeable summaries").
  std::uint64_t my_min = 0;
  if (slots_.size() == capacity_ && !heap_.empty()) {
    my_min = slots_[heap_[0]].count;
  }
  std::uint64_t other_min = 0;
  if (other.slots_.size() == other.capacity_ && !other.heap_.empty()) {
    other_min = other.slots_[other.heap_[0]].count;
  }

  // Ordered map: the merged entries are re-ranked below with a count/key
  // tiebreak, and equal-count runs must enter the sort in key order for the
  // result to be independent of hash layout.
  std::map<std::uint64_t, TopKEntry> merged;
  for (const Slot& slot : slots_) {
    merged[slot.key] = TopKEntry{slot.key, slot.count, slot.error};
  }
  for (const Slot& slot : other.slots_) {
    auto [it, inserted] =
        merged.emplace(slot.key, TopKEntry{slot.key, slot.count, slot.error});
    if (!inserted) {
      it->second.count += slot.count;
      it->second.error += slot.error;
    } else if (my_min > 0) {
      it->second.count += my_min;
      it->second.error += my_min;
    }
  }
  for (auto& [key, entry] : merged) {
    if (other.index_.find(key) == other.index_.end() && other_min > 0) {
      entry.count += other_min;
      entry.error += other_min;
    }
  }

  std::vector<TopKEntry> entries;
  entries.reserve(merged.size());
  for (auto& [key, entry] : merged) entries.push_back(entry);
  std::sort(entries.begin(), entries.end(),
            [](const TopKEntry& a, const TopKEntry& b) {
              if (a.count != b.count) return a.count > b.count;
              return a.key < b.key;
            });
  if (entries.size() > capacity_) entries.resize(capacity_);

  const std::uint64_t total = stream_length_ + other.stream_length_;
  clear();
  stream_length_ = total;
  for (const TopKEntry& entry : entries) {
    const std::size_t slot_idx = slots_.size();
    slots_.push_back(Slot{entry.key, entry.count, entry.error, heap_.size()});
    heap_.push_back(slot_idx);
    index_.emplace(entry.key, slot_idx);
    sift_up(slots_[slot_idx].heap_pos);
  }
}

}  // namespace qopt::topk
