// Space-Saving top-k stream summary (Metwally, Agrawal, El Abbadi,
// "Efficient computation of frequent and top-k elements in data streams",
// ICDT 2005) — the "state of the art stream analysis algorithm [28]" that
// Q-OPT proxies run to identify hotspot objects with low overhead.
//
// The summary keeps at most `capacity` counters. A monitored key's true
// frequency f satisfies: count - error <= f <= count. Total work per update
// is O(1) using the classic doubly-linked "stream summary" bucket structure;
// this implementation uses a min-indexed layout (intrusive heap over a dense
// vector) that achieves O(log capacity) updates with much simpler code —
// more than fast enough at the proxy's request rates, and the bound
// guarantees are identical.
#pragma once

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

namespace qopt::topk {

struct TopKEntry {
  std::uint64_t key = 0;
  std::uint64_t count = 0;  // upper bound on true frequency
  std::uint64_t error = 0;  // over-estimation bound
};

class SpaceSaving {
 public:
  explicit SpaceSaving(std::size_t capacity);

  void add(std::uint64_t key, std::uint64_t increment = 1);

  /// The k heaviest monitored keys, by count descending (key ascending as a
  /// deterministic tiebreak). k > capacity() returns all monitored keys.
  std::vector<TopKEntry> top(std::size_t k) const;

  /// Count upper bound for a key (0 if not monitored).
  std::uint64_t estimate(std::uint64_t key) const;

  /// Whether a key is guaranteed frequent, i.e. its lower bound
  /// (count - error) exceeds `threshold`.
  bool guaranteed_above(std::uint64_t key, std::uint64_t threshold) const;

  std::size_t capacity() const noexcept { return capacity_; }
  std::size_t size() const noexcept { return slots_.size(); }
  std::uint64_t stream_length() const noexcept { return stream_length_; }

  void clear();

  /// Merges another summary into this one (counts and errors add for shared
  /// keys; the result is re-trimmed to capacity). Used by the Autonomic
  /// Manager to combine per-proxy summaries.
  void merge(const SpaceSaving& other);

 private:
  struct Slot {
    std::uint64_t key;
    std::uint64_t count;
    std::uint64_t error;
    std::size_t heap_pos;  // position in heap_
  };

  // Min-heap over slots_ ordered by count (then key, for determinism).
  bool heap_less(std::size_t a, std::size_t b) const;
  void heap_swap(std::size_t i, std::size_t j);
  void sift_up(std::size_t i);
  void sift_down(std::size_t i);

  std::size_t capacity_;
  std::vector<Slot> slots_;
  std::vector<std::size_t> heap_;  // heap of slot indices
  std::unordered_map<std::uint64_t, std::size_t> index_;  // key -> slot
  std::uint64_t stream_length_ = 0;
};

}  // namespace qopt::topk
