#include "obs/registry.hpp"
#include "util/histogram.hpp"

#include <cstdio>

namespace qopt::obs {

std::string instrument_name(std::string_view component,
                            std::string_view field) {
  std::string name;
  name.reserve(component.size() + field.size() + 1);
  name.append(component);
  name.push_back('.');
  name.append(field);
  return name;
}

std::string instrument_name(std::string_view component, std::uint32_t index,
                            std::string_view field) {
  std::string name;
  name.reserve(component.size() + field.size() + 12);
  name.append(component);
  name.push_back('.');
  name.append(std::to_string(index));
  name.push_back('.');
  name.append(field);
  return name;
}

std::string format_double(double value) {
  char buffer[48];
  std::snprintf(buffer, sizeof(buffer), "%.9g", value);
  return buffer;
}

Counter& MetricRegistry::counter(const std::string& name) {
  return counters_[name];
}

Gauge& MetricRegistry::gauge(const std::string& name) {
  return gauges_[name];
}

LatencyHistogram& MetricRegistry::histogram(const std::string& name) {
  return histograms_.try_emplace(name).first->second;
}

std::uint64_t MetricRegistry::counter_value(const std::string& name) const {
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second.value();
}

double MetricRegistry::gauge_value(const std::string& name) const {
  auto it = gauges_.find(name);
  return it == gauges_.end() ? 0.0 : it->second.value();
}

const LatencyHistogram* MetricRegistry::find_histogram(
    const std::string& name) const {
  auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : &it->second;
}

Snapshot MetricRegistry::snapshot() const {
  Snapshot snap;
  for (const auto& [name, counter] : counters_) {
    snap.counters.emplace(name, counter.value());
  }
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges.emplace(name, gauge.value());
  }
  for (const auto& [name, histogram] : histograms_) {
    HistogramSummary summary;
    summary.count = histogram.count();
    summary.mean = histogram.mean();
    summary.p50 = histogram.percentile(50);
    summary.p95 = histogram.percentile(95);
    summary.p99 = histogram.percentile(99);
    summary.max = histogram.max();
    snap.histograms.emplace(name, summary);
  }
  return snap;
}

void MetricRegistry::reset() {
  for (auto& [name, counter] : counters_) counter = Counter{};
  for (auto& [name, gauge] : gauges_) gauge = Gauge{};
  for (auto& [name, histogram] : histograms_) histogram.reset();
}

Snapshot Snapshot::delta_since(const Snapshot& earlier) const {
  Snapshot delta = *this;
  for (auto& [name, value] : delta.counters) {
    auto it = earlier.counters.find(name);
    if (it != earlier.counters.end()) {
      value = value >= it->second ? value - it->second : 0;
    }
  }
  for (auto& [name, summary] : delta.histograms) {
    auto it = earlier.histograms.find(name);
    if (it != earlier.histograms.end()) {
      summary.count = summary.count >= it->second.count
                          ? summary.count - it->second.count
                          : 0;
    }
  }
  return delta;
}

namespace {

void append_json_string(std::string& out, const std::string& s) {
  out.push_back('"');
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  out.push_back('"');
}

}  // namespace

std::string Snapshot::to_json() const {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : counters) {
    if (!first) out.push_back(',');
    first = false;
    append_json_string(out, name);
    out.push_back(':');
    out.append(std::to_string(value));
  }
  out.append("},\"gauges\":{");
  first = true;
  for (const auto& [name, value] : gauges) {
    if (!first) out.push_back(',');
    first = false;
    append_json_string(out, name);
    out.push_back(':');
    out.append(format_double(value));
  }
  out.append("},\"histograms\":{");
  first = true;
  for (const auto& [name, h] : histograms) {
    if (!first) out.push_back(',');
    first = false;
    append_json_string(out, name);
    out.append(":{\"count\":");
    out.append(std::to_string(h.count));
    out.append(",\"mean\":");
    out.append(format_double(h.mean));
    out.append(",\"p50\":");
    out.append(format_double(h.p50));
    out.append(",\"p95\":");
    out.append(format_double(h.p95));
    out.append(",\"p99\":");
    out.append(format_double(h.p99));
    out.append(",\"max\":");
    out.append(format_double(h.max));
    out.append("}");
  }
  out.append("}}");
  return out;
}

std::string Snapshot::to_csv() const {
  std::string out = "name,kind,value\n";
  for (const auto& [name, value] : counters) {
    out.append(name).append(",counter,").append(std::to_string(value));
    out.push_back('\n');
  }
  for (const auto& [name, value] : gauges) {
    out.append(name).append(",gauge,").append(format_double(value));
    out.push_back('\n');
  }
  for (const auto& [name, h] : histograms) {
    out.append(name).append(".count,histogram,")
        .append(std::to_string(h.count)).push_back('\n');
    out.append(name).append(".mean,histogram,")
        .append(format_double(h.mean)).push_back('\n');
    out.append(name).append(".p50,histogram,")
        .append(format_double(h.p50)).push_back('\n');
    out.append(name).append(".p95,histogram,")
        .append(format_double(h.p95)).push_back('\n');
    out.append(name).append(".p99,histogram,")
        .append(format_double(h.p99)).push_back('\n');
    out.append(name).append(".max,histogram,")
        .append(format_double(h.max)).push_back('\n');
  }
  return out;
}

}  // namespace qopt::obs
