#include "obs/profiler.hpp"

#include <cstdio>
#include <cstdlib>
#include <new>

#include "obs/registry.hpp"

namespace qopt::obs {

namespace detail {
std::atomic<std::uint64_t> g_profile_allocs{0};
}  // namespace detail

const char* to_string(ProfSubsystem s) noexcept {
  switch (s) {
    case ProfSubsystem::kEngine:
      return "engine";
    case ProfSubsystem::kNet:
      return "net";
    case ProfSubsystem::kProxy:
      return "proxy";
    case ProfSubsystem::kStorage:
      return "storage";
    case ProfSubsystem::kClient:
      return "client";
    case ProfSubsystem::kReplicator:
      return "replicator";
    case ProfSubsystem::kRm:
      return "rm";
    case ProfSubsystem::kAm:
      return "am";
  }
  return "unknown";
}

// ---------------------------------------------------------------- histogram

void LogHistogram::merge(const LogHistogram& other) noexcept {
  if (other.count_ == 0) return;
  for (std::size_t i = 0; i < kBucketCount; ++i) buckets_[i] += other.buckets_[i];
  if (count_ == 0 || other.min_ < min_) min_ = other.min_;
  if (other.max_ > max_) max_ = other.max_;
  count_ += other.count_;
  sum_ += other.sum_;
}

void LogHistogram::reset() noexcept {
  buckets_.fill(0);
  count_ = sum_ = min_ = max_ = 0;
}

std::uint64_t LogHistogram::bucket_lower(std::size_t index) noexcept {
  if (index < (std::size_t{1} << kSubBits)) {
    return static_cast<std::uint64_t>(index);
  }
  const std::size_t exp = (index >> kSubBits) + kSubBits - 1;
  const std::size_t sub = index & ((std::size_t{1} << kSubBits) - 1);
  return (std::uint64_t{1} << exp) +
         (static_cast<std::uint64_t>(sub) << (exp - kSubBits));
}

std::uint64_t LogHistogram::bucket_upper(std::size_t index) noexcept {
  if (index < (std::size_t{1} << kSubBits)) {
    return static_cast<std::uint64_t>(index);
  }
  const std::size_t exp = (index >> kSubBits) + kSubBits - 1;
  return bucket_lower(index) + ((std::uint64_t{1} << (exp - kSubBits)) - 1);
}

std::uint64_t LogHistogram::percentile(double pct) const noexcept {
  if (count_ == 0) return 0;
  if (pct < 0.0) pct = 0.0;
  if (pct > 100.0) pct = 100.0;
  auto rank = static_cast<std::uint64_t>(
      (pct / 100.0) * static_cast<double>(count_) + 0.5);
  if (rank < 1) rank = 1;
  if (rank > count_) rank = count_;
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kBucketCount; ++i) {
    seen += buckets_[i];
    if (seen >= rank) {
      const std::uint64_t upper = bucket_upper(i);
      return upper < max_ ? upper : max_;
    }
  }
  return max_;
}

HistogramSummary LogHistogram::summary() const {
  HistogramSummary s;
  s.count = count_;
  if (count_ == 0) return s;
  s.mean = mean();
  s.p50 = static_cast<double>(percentile(50.0));
  s.p95 = static_cast<double>(percentile(95.0));
  s.p99 = static_cast<double>(percentile(99.0));
  s.max = static_cast<double>(max_);
  return s;
}

// ------------------------------------------------------------------ report

namespace {

void summary_json(std::string& out, const char* name,
                  const HistogramSummary& s) {
  out.append(",\"");
  out.append(name);
  out.append("\":{\"count\":");
  out.append(std::to_string(s.count));
  out.append(",\"mean\":");
  out.append(format_double(s.mean));
  out.append(",\"p50\":");
  out.append(format_double(s.p50));
  out.append(",\"p95\":");
  out.append(format_double(s.p95));
  out.append(",\"p99\":");
  out.append(format_double(s.p99));
  out.append(",\"max\":");
  out.append(format_double(s.max));
  out.push_back('}');
}

void csv_counter(std::string& out, const std::string& name,
                 std::uint64_t value) {
  out.append(name);
  out.append(",counter,");
  out.append(std::to_string(value));
  out.push_back('\n');
}

}  // namespace

void ProfileReport::zero_wall() {
  for (ProfilePhaseRow& row : subsystems) row.wall_ns = 0;
}

std::string ProfileReport::to_json() const {
  std::string out = "{\"compiled\":";
  out.append(compiled ? "true" : "false");
  out.append(",\"events_total\":");
  out.append(std::to_string(events_total));
  out.append(",\"subsystems\":[");
  for (std::size_t i = 0; i < subsystems.size(); ++i) {
    const ProfilePhaseRow& row = subsystems[i];
    if (i) out.push_back(',');
    out.append("{\"name\":\"");
    out.append(row.name);
    out.append("\",\"events\":");
    out.append(std::to_string(row.events));
    out.append(",\"allocs\":");
    out.append(std::to_string(row.allocs));
    out.append(",\"wall_ns\":");
    out.append(std::to_string(row.wall_ns));
    out.append(",\"wall_samples\":");
    out.append(std::to_string(row.wall_samples));
    out.push_back('}');
  }
  out.append("],\"messages\":[");
  for (std::size_t i = 0; i < messages.size(); ++i) {
    if (i) out.push_back(',');
    out.append("{\"name\":\"");
    out.append(messages[i].name);
    out.append("\",\"count\":");
    out.append(std::to_string(messages[i].count));
    out.push_back('}');
  }
  out.append("],\"queue\":{\"schedules\":");
  out.append(std::to_string(schedules));
  out.append(",\"requeues\":");
  out.append(std::to_string(requeues));
  out.append(",\"fifo_clamps\":");
  out.append(std::to_string(fifo_clamps));
  out.append(",\"max_depth\":");
  out.append(std::to_string(max_depth));
  summary_json(out, "depth", queue_depth);
  summary_json(out, "dwell_ns", dwell_ns);
  out.push_back('}');
  out.append(",\"timeline_slices\":");
  out.append(std::to_string(timeline_slices));
  out.append(",\"timeline_dropped\":");
  out.append(std::to_string(timeline_dropped));
  out.push_back('}');
  return out;
}

std::string ProfileReport::render() const {
  std::string out;
  char line[192];
  std::snprintf(line, sizeof(line),
                "profile             %llu events (instruments %s)\n",
                static_cast<unsigned long long>(events_total),
                compiled ? "compiled in" : "compiled OUT");
  out.append(line);
  // Wall share over the sampled events only; zeroed under --deterministic.
  std::uint64_t wall_total = 0;
  for (const ProfilePhaseRow& row : subsystems) wall_total += row.wall_ns;
  for (const ProfilePhaseRow& row : subsystems) {
    if (row.events == 0) continue;
    const double share =
        events_total
            ? 100.0 * static_cast<double>(row.events) /
                  static_cast<double>(events_total)
            : 0.0;
    const double wall_share =
        wall_total ? 100.0 * static_cast<double>(row.wall_ns) /
                         static_cast<double>(wall_total)
                   : 0.0;
    std::snprintf(line, sizeof(line),
                  "  %-12s events %10llu (%5.1f%%)  allocs %10llu  "
                  "wall%% %5.1f\n",
                  row.name.c_str(),
                  static_cast<unsigned long long>(row.events), share,
                  static_cast<unsigned long long>(row.allocs), wall_share);
    out.append(line);
  }
  std::snprintf(line, sizeof(line),
                "  queue        depth p50/p99/max %.0f/%.0f/%llu  "
                "dwell_ns p50/p99 %.0f/%.0f\n",
                queue_depth.p50, queue_depth.p99,
                static_cast<unsigned long long>(max_depth), dwell_ns.p50,
                dwell_ns.p99);
  out.append(line);
  std::snprintf(line, sizeof(line),
                "  churn        %llu schedules, %llu requeues, "
                "%llu fifo clamps\n",
                static_cast<unsigned long long>(schedules),
                static_cast<unsigned long long>(requeues),
                static_cast<unsigned long long>(fifo_clamps));
  out.append(line);
  for (const ProfileMessageRow& row : messages) {
    if (row.count == 0) continue;
    std::snprintf(line, sizeof(line), "  msg %-24s %10llu\n",
                  row.name.c_str(),
                  static_cast<unsigned long long>(row.count));
    out.append(line);
  }
  return out;
}

std::string ProfileReport::to_csv() const {
  std::string out;
  csv_counter(out, "profile.events_total", events_total);
  for (const ProfilePhaseRow& row : subsystems) {
    csv_counter(out, "profile." + row.name + ".events", row.events);
    csv_counter(out, "profile." + row.name + ".allocs", row.allocs);
    csv_counter(out, "profile." + row.name + ".wall_ns", row.wall_ns);
    csv_counter(out, "profile." + row.name + ".wall_samples",
                row.wall_samples);
  }
  for (const ProfileMessageRow& row : messages) {
    csv_counter(out, "profile.msg." + row.name, row.count);
  }
  csv_counter(out, "profile.queue.schedules", schedules);
  csv_counter(out, "profile.queue.requeues", requeues);
  csv_counter(out, "profile.queue.fifo_clamps", fifo_clamps);
  csv_counter(out, "profile.queue.max_depth", max_depth);
  return out;
}

// ---------------------------------------------------------------- profiler

void EngineProfiler::reset() noexcept {
  current_ = ProfSubsystem::kEngine;
  tick_ = 0;
  allocs_at_begin_ = 0;
  wall_begin_ = 0;
  wall_pending_ = false;
  phases_.fill(Phase{});
  msg_counts_.fill(0);
  schedules_ = requeues_ = fifo_clamps_ = max_depth_ = 0;
  depth_.reset();
  dwell_.reset();
  timeline_.clear();
  timeline_dropped_ = 0;
}

void EngineProfiler::enable_timeline(std::size_t limit) {
  timeline_on_ = limit > 0;
  timeline_limit_ = limit;
  timeline_.clear();
  timeline_.reserve(limit);
  timeline_dropped_ = 0;
}

void EngineProfiler::record_slice(ProfSubsystem s, std::uint64_t wall_begin_ns,
                                  std::uint64_t wall_end_ns) noexcept {
  if (timeline_.size() < timeline_limit_) {
    // qopt-perf: allow(vector-growth-hot) capacity reserved by enable_timeline; never grows here
    timeline_.push_back(Slice{s, wall_begin_ns, wall_end_ns});
  } else {
    ++timeline_dropped_;
  }
}

void EngineProfiler::set_message_names(const char* const* names,
                                       std::size_t count) {
  msg_names_.clear();
  if (count > kMaxMessageTypes) count = kMaxMessageTypes;
  msg_names_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) msg_names_.emplace_back(names[i]);
}

ProfileReport EngineProfiler::report() const {
  ProfileReport r;
  r.compiled = compiled_on();
  r.subsystems.reserve(kProfSubsystemCount);
  for (std::size_t i = 0; i < kProfSubsystemCount; ++i) {
    ProfilePhaseRow row;
    row.name = to_string(static_cast<ProfSubsystem>(i));
    row.events = phases_[i].events;
    row.allocs = phases_[i].allocs;
    row.wall_ns = phases_[i].wall_ns;
    row.wall_samples = phases_[i].wall_samples;
    r.events_total += row.events;
    r.subsystems.push_back(std::move(row));
  }
  const std::size_t named =
      msg_names_.size() < kMaxMessageTypes ? msg_names_.size()
                                           : kMaxMessageTypes;
  r.messages.reserve(named);
  for (std::size_t i = 0; i < named; ++i) {
    r.messages.push_back(ProfileMessageRow{msg_names_[i], msg_counts_[i]});
  }
  r.schedules = schedules_;
  r.requeues = requeues_;
  r.fifo_clamps = fifo_clamps_;
  r.max_depth = max_depth_;
  r.queue_depth = depth_.summary();
  r.dwell_ns = dwell_.summary();
  r.timeline_slices = timeline_.size();
  r.timeline_dropped = timeline_dropped_;
  return r;
}

std::string EngineProfiler::timeline_chrome_json() const {
  // Same trace_event shape as SpanStore's exporter (src/obs/span_export.cpp):
  // complete events ("ph":"X") with microsecond ts/dur. Timestamps are
  // host-relative to the first slice; this export is a visualization aid and
  // is not covered by the determinism gates.
  std::string out = "{\"traceEvents\":[";
  const std::uint64_t origin = timeline_.empty() ? 0 : timeline_[0].begin_ns;
  for (std::size_t i = 0; i < timeline_.size(); ++i) {
    const Slice& s = timeline_[i];
    if (i) out.push_back(',');
    out.append("{\"name\":\"");
    out.append(to_string(s.sub));
    out.append("\",\"cat\":\"engine\",\"ph\":\"X\",\"pid\":1,\"tid\":1");
    out.append(",\"ts\":");
    const std::uint64_t ts_ns = s.begin_ns - origin;
    const std::uint64_t dur_ns = s.end_ns >= s.begin_ns
                                     ? s.end_ns - s.begin_ns
                                     : 0;
    out.append(std::to_string(ts_ns / 1000));
    out.push_back('.');
    out.append(std::to_string((ts_ns % 1000) / 100));
    out.append(",\"dur\":");
    out.append(std::to_string(dur_ns / 1000));
    out.push_back('.');
    out.append(std::to_string((dur_ns % 1000) / 100));
    out.push_back('}');
  }
  out.append("],\"displayTimeUnit\":\"ms\"}\n");
  return out;
}

}  // namespace qopt::obs

#if QOPT_PROFILE_ENABLED
// Allocation attribution hook: a *weak* replacement of the global allocation
// functions that ticks g_profile_allocs on every operator new. Weak linkage
// means any binary installing its own strong replacement — the alloc-gate
// test, a sanitizer runtime — wins cleanly and the profiler simply reports
// zero allocations. malloc-backed like libstdc++'s default operator new, so
// the (unreplaced) default operator delete frees it correctly.
namespace {

void* profiler_counted_alloc(std::size_t size) {
  qopt::obs::detail::g_profile_allocs.fetch_add(1, std::memory_order_relaxed);
  if (size == 0) size = 1;
  while (true) {
    if (void* p = std::malloc(size)) return p;
    if (std::new_handler handler = std::get_new_handler()) {
      handler();
    } else {
      throw std::bad_alloc();
    }
  }
}

}  // namespace

__attribute__((weak)) void* operator new(std::size_t size) {
  return profiler_counted_alloc(size);
}

__attribute__((weak)) void* operator new[](std::size_t size) {
  return profiler_counted_alloc(size);
}
#endif  // QOPT_PROFILE_ENABLED
