#include "obs/critical_path.hpp"

#include <algorithm>
#include <cstdio>
#include <vector>

#include "obs/span.hpp"
#include "obs/span_store.hpp"
#include "util/time.hpp"

namespace qopt::obs {

Duration TraceBreakdown::phase_sum() const noexcept {
  Duration sum = 0;
  for (const Duration d : by_phase) sum += d;
  return sum;
}

TraceBreakdown critical_path(const CompletedTrace& trace) {
  TraceBreakdown out;
  out.trace_id = trace.trace_id;
  out.kind = trace.kind;
  if (trace.spans.empty()) return out;

  const Span& root = trace.spans.front();
  out.total = root.end - root.start;

  const std::size_t n = trace.spans.size();
  // Depth via the parent chain; parent_id < span_id by construction, so a
  // single forward pass suffices.
  std::vector<std::uint32_t> depth(n, 0);
  for (std::size_t i = 1; i < n; ++i) {
    const std::uint32_t parent = trace.spans[i].parent_id;
    if (parent >= 1 && parent <= i) depth[i] = depth[parent - 1] + 1;
  }

  // Clamp every span to the root interval; spans that end outside it (a
  // storage service completing after the op already met its quorum) only
  // count for the part that overlaps the operation.
  std::vector<Time> cuts;
  cuts.reserve(2 * n);
  for (const Span& span : trace.spans) {
    const Time s = std::max(span.start, root.start);
    const Time e = std::min(span.end, root.end);
    if (e <= s) continue;
    cuts.push_back(s);
    cuts.push_back(e);
  }
  std::sort(cuts.begin(), cuts.end());
  cuts.erase(std::unique(cuts.begin(), cuts.end()), cuts.end());

  for (std::size_t c = 0; c + 1 < cuts.size(); ++c) {
    const Time t0 = cuts[c];
    const Time t1 = cuts[c + 1];
    // Deepest covering span; ties to the latest start, then the largest id.
    std::size_t best = 0;  // the root covers every segment
    for (std::size_t i = 1; i < n; ++i) {
      const Span& span = trace.spans[i];
      if (span.start > t0 || span.end < t1) continue;
      const Span& incumbent = trace.spans[best];
      if (depth[i] > depth[best] ||
          (depth[i] == depth[best] &&
           (span.start > incumbent.start ||
            (span.start == incumbent.start && i > best)))) {
        best = i;
      }
    }
    out.by_phase[static_cast<std::size_t>(trace.spans[best].phase)] +=
        t1 - t0;
  }

  // Straggler: the proxy annotates each quorum-wait span it closes with the
  // replica completing the quorum (`a`) and how long after the previous
  // counted reply it arrived (`b`); surface the worst one.
  for (const Span& span : trace.spans) {
    if (span.phase != Phase::kQuorumWait) continue;
    const auto excess = static_cast<Duration>(span.b);
    if (!out.has_straggler || excess > out.straggler_excess) {
      out.has_straggler = true;
      out.straggler_replica = static_cast<std::uint32_t>(span.a);
      out.straggler_excess = excess;
    }
  }
  return out;
}

std::string to_string(const TraceBreakdown& breakdown) {
  char buffer[96];
  std::snprintf(buffer, sizeof(buffer), "trace %llu %s %.3f ms =",
                static_cast<unsigned long long>(breakdown.trace_id),
                to_string(breakdown.kind), to_millis(breakdown.total));
  std::string out = buffer;
  bool first = true;
  for (std::size_t p = 0; p < kNumPhases; ++p) {
    const Duration d = breakdown.by_phase[p];
    if (d == 0) continue;
    std::snprintf(buffer, sizeof(buffer), "%s %s %.3f ms",
                  first ? "" : " +", to_string(static_cast<Phase>(p)),
                  to_millis(d));
    out.append(buffer);
    first = false;
  }
  if (breakdown.has_straggler && breakdown.straggler_excess > 0) {
    std::snprintf(buffer, sizeof(buffer),
                  " (straggler: storage.%u +%.3f ms)",
                  breakdown.straggler_replica,
                  to_millis(breakdown.straggler_excess));
    out.append(buffer);
  }
  return out;
}

}  // namespace qopt::obs
