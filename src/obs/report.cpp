#include "obs/report.hpp"

#include <cstdio>

namespace qopt::obs {

namespace {

std::string fmt(const char* format, double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), format, value);
  return buffer;
}

void field(std::string& out, const char* name, std::uint64_t value,
           bool first = false) {
  if (!first) out.push_back(',');
  out.push_back('"');
  out.append(name);
  out.append("\":");
  out.append(std::to_string(value));
}

void field(std::string& out, const char* name, double value) {
  out.append(",\"");
  out.append(name);
  out.append("\":");
  out.append(format_double(value));
}

void latency_json(std::string& out, const char* name,
                  const LatencySummary& latency) {
  out.append(",\"");
  out.append(name);
  out.append("\":{\"count\":");
  out.append(std::to_string(latency.count));
  out.append(",\"mean_ms\":");
  out.append(format_double(latency.mean_ms));
  out.append(",\"p50_ms\":");
  out.append(format_double(latency.p50_ms));
  out.append(",\"p95_ms\":");
  out.append(format_double(latency.p95_ms));
  out.append(",\"p99_ms\":");
  out.append(format_double(latency.p99_ms));
  out.append(",\"max_ms\":");
  out.append(format_double(latency.max_ms));
  out.push_back('}');
}

}  // namespace

std::string RunReport::to_json() const {
  std::string out = "{";
  field(out, "seed", seed, /*first=*/true);
  field(out, "num_storage", static_cast<std::uint64_t>(num_storage));
  field(out, "num_proxies", static_cast<std::uint64_t>(num_proxies));
  field(out, "num_clients", static_cast<std::uint64_t>(num_clients));
  field(out, "replication", static_cast<std::uint64_t>(replication));
  field(out, "window_start_ns", static_cast<std::uint64_t>(window_start));
  field(out, "window_end_ns", static_cast<std::uint64_t>(window_end));
  field(out, "ops", ops);
  field(out, "reads", reads);
  field(out, "writes", writes);
  field(out, "throughput_ops", throughput_ops);
  latency_json(out, "read_latency", read_latency);
  latency_json(out, "write_latency", write_latency);
  out.append(",\"throughput_timeline\":[");
  for (std::size_t i = 0; i < throughput_timeline.size(); ++i) {
    if (i) out.push_back(',');
    out.append(format_double(throughput_timeline[i]));
  }
  out.push_back(']');
  field(out, "default_read_q", static_cast<std::uint64_t>(default_read_q));
  field(out, "default_write_q", static_cast<std::uint64_t>(default_write_q));
  field(out, "override_count", override_count);
  field(out, "reconfigurations", reconfigurations);
  field(out, "epoch_changes", epoch_changes);
  field(out, "reconfig_time_s", reconfig_time_s);
  field(out, "am_rounds", am_rounds);
  field(out, "objects_tuned", objects_tuned);
  field(out, "tail_reconfigs", tail_reconfigs);
  field(out, "steady_reconfigs", steady_reconfigs);
  field(out, "am_restarts", am_restarts);
  field(out, "messages_sent", messages_sent);
  field(out, "messages_delivered", messages_delivered);
  field(out, "dropped_sender_crashed", dropped_sender_crashed);
  field(out, "dropped_receiver_crashed", dropped_receiver_crashed);
  field(out, "dropped_unroutable", dropped_unroutable);
  field(out, "dropped_link_loss", dropped_link_loss);
  field(out, "dropped_partitioned", dropped_partitioned);
  field(out, "duplicates_delivered", duplicates_delivered);
  field(out, "delay_spikes", delay_spikes);
  field(out, "reads_checked", reads_checked);
  field(out, "consistency_violations", consistency_violations);
  field(out, "traces_completed", traces_completed);
  field(out, "spans_dropped", spans_dropped);
  if (has_rm_failover) {
    field(out, "rm_replicas", rm_replicas);
    field(out, "rm_leader_changes", rm_leader_changes);
    field(out, "rm_rounds_resumed", rm_rounds_resumed);
    field(out, "rm_stale_leader_msgs", rm_stale_leader_msgs);
  }
  out.append(",\"instruments\":");
  out.append(instruments.to_json());
  if (has_profile) {
    out.append(",\"profile\":");
    out.append(profile.to_json());
  }
  out.push_back('}');
  return out;
}

std::string RunReport::render() const {
  std::string out;
  char line[160];
  std::snprintf(line, sizeof(line),
                "cluster             %u storage / %u proxies / %u clients, "
                "replication %d, seed %llu\n",
                num_storage, num_proxies, num_clients, replication,
                static_cast<unsigned long long>(seed));
  out.append(line);
  std::snprintf(line, sizeof(line),
                "window              [%.1fs, %.1fs)\n",
                to_seconds(window_start), to_seconds(window_end));
  out.append(line);
  std::snprintf(line, sizeof(line),
                "throughput          %.0f ops/s (%llu ops: %llu reads, "
                "%llu writes)\n",
                throughput_ops, static_cast<unsigned long long>(ops),
                static_cast<unsigned long long>(reads),
                static_cast<unsigned long long>(writes));
  out.append(line);
  std::snprintf(line, sizeof(line),
                "read latency        p50 %.2f ms, p95 %.2f ms, p99 %.2f ms\n",
                read_latency.p50_ms, read_latency.p95_ms, read_latency.p99_ms);
  out.append(line);
  std::snprintf(line, sizeof(line),
                "write latency       p50 %.2f ms, p95 %.2f ms, p99 %.2f ms\n",
                write_latency.p50_ms, write_latency.p95_ms,
                write_latency.p99_ms);
  out.append(line);
  std::snprintf(line, sizeof(line),
                "default quorum      R=%d W=%d (+%llu per-object overrides)\n",
                default_read_q, default_write_q,
                static_cast<unsigned long long>(override_count));
  out.append(line);
  std::snprintf(line, sizeof(line),
                "reconfiguration     %llu completed, %llu epoch changes, "
                "%.3f s total\n",
                static_cast<unsigned long long>(reconfigurations),
                static_cast<unsigned long long>(epoch_changes),
                reconfig_time_s);
  out.append(line);
  if (am_rounds > 0) {
    std::snprintf(line, sizeof(line),
                  "autonomic           %llu rounds, %llu objects tuned, "
                  "%llu tail + %llu steady reconfigs, %llu restarts\n",
                  static_cast<unsigned long long>(am_rounds),
                  static_cast<unsigned long long>(objects_tuned),
                  static_cast<unsigned long long>(tail_reconfigs),
                  static_cast<unsigned long long>(steady_reconfigs),
                  static_cast<unsigned long long>(am_restarts));
    out.append(line);
  }
  std::snprintf(line, sizeof(line),
                "messages            %llu sent, %llu delivered, %llu dropped "
                "(%llu sender-crash, %llu receiver-crash, %llu unroutable)\n",
                static_cast<unsigned long long>(messages_sent),
                static_cast<unsigned long long>(messages_delivered),
                static_cast<unsigned long long>(messages_dropped()),
                static_cast<unsigned long long>(dropped_sender_crashed),
                static_cast<unsigned long long>(dropped_receiver_crashed),
                static_cast<unsigned long long>(dropped_unroutable));
  out.append(line);
  if (dropped_link_loss > 0 || dropped_partitioned > 0 ||
      duplicates_delivered > 0 || delay_spikes > 0) {
    std::snprintf(line, sizeof(line),
                  "link faults         %llu lost, %llu partitioned, "
                  "%llu duplicated, %llu delay spikes\n",
                  static_cast<unsigned long long>(dropped_link_loss),
                  static_cast<unsigned long long>(dropped_partitioned),
                  static_cast<unsigned long long>(duplicates_delivered),
                  static_cast<unsigned long long>(delay_spikes));
    out.append(line);
  }
  std::snprintf(line, sizeof(line),
                "consistency         %llu violations over %llu checked "
                "reads\n",
                static_cast<unsigned long long>(consistency_violations),
                static_cast<unsigned long long>(reads_checked));
  out.append(line);
  if (traces_completed > 0 || spans_dropped > 0) {
    std::snprintf(line, sizeof(line),
                  "tracing             %llu traces completed, %llu spans "
                  "dropped\n",
                  static_cast<unsigned long long>(traces_completed),
                  static_cast<unsigned long long>(spans_dropped));
    out.append(line);
  }
  if (has_rm_failover) {
    std::snprintf(line, sizeof(line),
                  "rm failover         %llu replicas, %llu leader changes, "
                  "%llu rounds resumed, %llu stale-leader msgs\n",
                  static_cast<unsigned long long>(rm_replicas),
                  static_cast<unsigned long long>(rm_leader_changes),
                  static_cast<unsigned long long>(rm_rounds_resumed),
                  static_cast<unsigned long long>(rm_stale_leader_msgs));
    out.append(line);
  }
  if (has_profile) out.append(profile.render());
  return out;
}

std::string RunReport::csv_header() {
  // Percentile columns mirror to_json()/render(): p50/p95/p99 for both
  // directions, in that order.
  return "ops_s,ops,reads,writes,read_p50_ms,read_p95_ms,read_p99_ms,"
         "write_p50_ms,write_p95_ms,write_p99_ms,read_q,write_q,overrides,"
         "reconfigs,epoch_changes,messages_sent,messages_dropped,violations,"
         "rm_leader_changes,rm_rounds_resumed,rm_stale_leader_msgs";
}

std::string RunReport::csv_row() const {
  std::string out;
  out.append(fmt("%.0f", throughput_ops));
  out.push_back(',');
  out.append(std::to_string(ops));
  out.push_back(',');
  out.append(std::to_string(reads));
  out.push_back(',');
  out.append(std::to_string(writes));
  out.push_back(',');
  out.append(fmt("%.3f", read_latency.p50_ms));
  out.push_back(',');
  out.append(fmt("%.3f", read_latency.p95_ms));
  out.push_back(',');
  out.append(fmt("%.3f", read_latency.p99_ms));
  out.push_back(',');
  out.append(fmt("%.3f", write_latency.p50_ms));
  out.push_back(',');
  out.append(fmt("%.3f", write_latency.p95_ms));
  out.push_back(',');
  out.append(fmt("%.3f", write_latency.p99_ms));
  out.push_back(',');
  out.append(std::to_string(default_read_q));
  out.push_back(',');
  out.append(std::to_string(default_write_q));
  out.push_back(',');
  out.append(std::to_string(override_count));
  out.push_back(',');
  out.append(std::to_string(reconfigurations));
  out.push_back(',');
  out.append(std::to_string(epoch_changes));
  out.push_back(',');
  out.append(std::to_string(messages_sent));
  out.push_back(',');
  out.append(std::to_string(messages_dropped()));
  out.push_back(',');
  out.append(std::to_string(consistency_violations));
  out.push_back(',');
  out.append(std::to_string(rm_leader_changes));
  out.push_back(',');
  out.append(std::to_string(rm_rounds_resumed));
  out.push_back(',');
  out.append(std::to_string(rm_stale_leader_msgs));
  return out;
}

}  // namespace qopt::obs
