// Unified metrics registry — the single home for every counter, gauge and
// histogram in the system.
//
// Components register named instruments once (construction time) and bump
// them through cached pointers on the hot path, so recording is a plain
// integer increment. Names are hierarchical, dot-separated labels following
// the scheme documented in docs/OBSERVABILITY.md:
//
//   <component>[.<index>].<field>     e.g.  proxy.2.client_reads
//                                           rm.epoch_changes
//                                           net.dropped.sender_crashed
//
// Instruments live in ordered maps, so snapshots, deltas and both export
// formats (CSV, JSON) enumerate deterministically — two runs with the same
// seed produce byte-identical exports.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "util/histogram.hpp"

namespace qopt::obs {

/// Monotone 64-bit event counter.
class Counter {
 public:
  void inc(std::uint64_t delta = 1) noexcept { value_ += delta; }
  std::uint64_t value() const noexcept { return value_; }

 private:
  std::uint64_t value_ = 0;
};

/// Last-value instrument for levels (epoch numbers, KPIs, queue depths).
class Gauge {
 public:
  void set(double value) noexcept { value_ = value; }
  void add(double delta) noexcept { value_ += delta; }
  double value() const noexcept { return value_; }

 private:
  double value_ = 0.0;
};

/// Builds "component.field" / "component.index.field" instrument names.
std::string instrument_name(std::string_view component,
                            std::string_view field);
std::string instrument_name(std::string_view component, std::uint32_t index,
                            std::string_view field);

/// Fixed-quantile digest of a histogram at snapshot time.
struct HistogramSummary {
  std::uint64_t count = 0;
  double mean = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  double max = 0.0;
};

/// Point-in-time copy of every instrument, ordered by name.
struct Snapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSummary> histograms;

  /// Interval view: counters and histogram counts become differences
  /// against `earlier` (instruments absent from `earlier` count from zero);
  /// gauges and histogram quantiles keep their current values.
  Snapshot delta_since(const Snapshot& earlier) const;

  /// {"counters":{...},"gauges":{...},"histograms":{...}} with keys in
  /// name order — deterministic for a deterministic run.
  std::string to_json() const;

  /// Flat "name,kind,value" rows (histograms expand to one row per field).
  std::string to_csv() const;
};

class MetricRegistry {
 public:
  /// Finds or creates; the returned reference is stable for the registry's
  /// lifetime (node-based map), so callers cache pointers.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  LatencyHistogram& histogram(const std::string& name);

  /// Query by name; zero / null when the instrument does not exist.
  std::uint64_t counter_value(const std::string& name) const;
  double gauge_value(const std::string& name) const;
  const LatencyHistogram* find_histogram(const std::string& name) const;

  Snapshot snapshot() const;

  /// Zeroes every instrument (the instruments themselves survive, so cached
  /// pointers stay valid).
  void reset();

  std::size_t instrument_count() const noexcept {
    return counters_.size() + gauges_.size() + histograms_.size();
  }

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, LatencyHistogram> histograms_;
};

/// Deterministic float formatting shared by every obs export (shortest
/// round-trippable-ish "%.9g"); exposed for RunReport.
std::string format_double(double value);

}  // namespace qopt::obs
