// Span exporters — Chrome trace_event JSON (loadable in Perfetto /
// about://tracing) and a compact CSV. Both enumerate traces in completion
// order and spans in id order, with thread ids assigned from the sorted set
// of node names, so two same-seed runs export byte-identical documents.
#pragma once

#include <deque>
#include <string>

#include "obs/span_store.hpp"

namespace qopt::obs {

/// `{"traceEvents":[...]}` — "M" thread-name metadata per node plus one
/// "X" (complete) event per span; `ts`/`dur` are microseconds with
/// nanosecond precision (three decimals), `args` carry the causal context
/// (trace/span/parent ids, phase, annotations).
std::string to_chrome_json(const std::deque<CompletedTrace>& traces);

/// Flat rows:
/// `trace_id,kind,span_id,parent_id,phase,name,node,start_ns,end_ns,dur_ns,a,b`
std::string to_span_csv(const std::deque<CompletedTrace>& traces);

}  // namespace qopt::obs
