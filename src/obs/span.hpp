// Causal spans on the DES virtual clock — the vocabulary of the span layer.
//
// Every client operation (and every RM reconfiguration round / anti-entropy
// sweep) gets a trace: a root span plus child spans for each protocol phase
// it passes through. A `SpanContext` is the wire-safe handle — two integers
// that ride inside `kv::wire` message structs so a storage node can attribute
// its service time to the originating operation. A zero context means "not
// sampled": every span-layer entry point treats it as a no-op, so the
// disabled path costs one integer test.
#pragma once

#include <cstdint>
#include <string>

#include "util/time.hpp"

namespace qopt::obs {

/// Wire-safe span handle: (trace id, span id within the trace). Zero trace
/// id = invalid/unsampled; message structs default to that, so unsampled
/// operations ship two zero integers and nothing else happens.
struct SpanContext {
  std::uint64_t trace_id = 0;
  std::uint32_t span_id = 0;

  bool valid() const noexcept { return trace_id != 0; }
};

/// Protocol-phase taxonomy. One enumerator per distinct place an operation
/// can spend time; the critical-path analyzer attributes every nanosecond of
/// a trace to exactly one phase (the deepest span covering it).
enum class Phase : std::uint8_t {
  kOp = 0,          // root span: whole operation / round / sweep
  kProxyQueue,      // proxy CPU queue + per-op service cost
  kQuorumWait,      // first-phase quorum fan-out until the quorum is met
  kReplicaRead,     // one StorageReadReq RPC (send -> reply receipt)
  kReplicaWrite,    // one StorageWriteReq RPC (send -> reply receipt)
  kStorageRead,     // storage-node queue + read service time
  kStorageWrite,    // storage-node queue + write service time
  kReadRepair,      // Algorithm 4 second-phase read (historical quorum)
  kNackRetry,       // marker: op re-executed after an epoch NACK
  kProxyDrain,      // NEWQ receipt -> ACKNEWQ send (old-quorum drain)
  kProxyConfirm,    // marker: CONFIRM adopted at a proxy
  kRmNewq,          // RM phase 1: NEWQ broadcast -> all ACKed/suspected
  kRmConfirm,       // RM phase 2: CONFIRM broadcast -> all ACKed/suspected
  kRmEpoch,         // RM epoch change: NEWEP broadcast -> storage quorum
  kStorageEpoch,    // marker: NEWEP adopted at a storage node
  kRepairPush,      // anti-entropy push (write service on the target)
  kRetransmit,      // marker: timeout retransmit round (lossy network)
  kOpFailed,        // marker: op abandoned after its retry budget
};

inline constexpr std::size_t kNumPhases = 18;

const char* to_string(Phase phase) noexcept;

/// Trace categories — sampling is configured per kind.
enum class TraceKind : std::uint8_t {
  kRead = 0,
  kWrite,
  kWriteback,    // asynchronous read-repair write-back (own trace)
  kReconfig,     // one RM reconfiguration round
  kAntiEntropy,  // one replicator sweep
};

inline constexpr std::size_t kNumTraceKinds = 5;

const char* to_string(TraceKind kind) noexcept;

/// One span of a trace. `span_id` is 1-based and assigned in open order, so
/// `parent_id < span_id` always holds and parentage is acyclic by
/// construction. `a`/`b` are phase-specific annotations (object id,
/// straggler replica index, excess ns, ...).
struct Span {
  std::uint64_t trace_id = 0;
  std::uint32_t span_id = 0;
  std::uint32_t parent_id = 0;  // 0 = root (no parent)
  Phase phase = Phase::kOp;
  std::string name;
  std::string node;
  Time start = 0;
  Time end = 0;
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  bool open = true;

  Duration duration() const noexcept { return end - start; }
};

}  // namespace qopt::obs
