// RunReport — the whole-cluster summary every harness used to assemble by
// hand from six ad-hoc stats structs. `Cluster::report()` fills one in a
// single call; benches, examples and qopt_cli render it as a human table
// (`render()`), a machine-readable JSON document (`to_json()`), or a flat
// CSV row (`csv_header()` / `csv_row()`).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/profiler.hpp"
#include "obs/registry.hpp"
#include "util/time.hpp"

namespace qopt::obs {

struct LatencySummary {
  std::uint64_t count = 0;
  double mean_ms = 0.0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  double max_ms = 0.0;
};

struct RunReport {
  // ---- identification
  std::uint64_t seed = 0;
  std::uint32_t num_storage = 0;
  std::uint32_t num_proxies = 0;
  std::uint32_t num_clients = 0;
  int replication = 0;
  Time window_start = 0;
  Time window_end = 0;

  // ---- workload totals over the report window
  std::uint64_t ops = 0;
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  double throughput_ops = 0.0;  // ops/s over [window_start, window_end)
  /// Whole-run latency distributions (histograms are cumulative).
  LatencySummary read_latency;
  LatencySummary write_latency;
  /// Ops/s per second of the window (adaptation-trace timeline).
  std::vector<double> throughput_timeline;

  // ---- quorum state and control plane
  int default_read_q = 0;
  int default_write_q = 0;
  std::uint64_t override_count = 0;
  std::uint64_t reconfigurations = 0;
  std::uint64_t epoch_changes = 0;
  double reconfig_time_s = 0.0;
  std::uint64_t am_rounds = 0;
  std::uint64_t objects_tuned = 0;
  std::uint64_t tail_reconfigs = 0;
  std::uint64_t steady_reconfigs = 0;
  std::uint64_t am_restarts = 0;

  // ---- message accounting (drops split by reason)
  std::uint64_t messages_sent = 0;
  std::uint64_t messages_delivered = 0;
  std::uint64_t dropped_sender_crashed = 0;
  std::uint64_t dropped_receiver_crashed = 0;
  std::uint64_t dropped_unroutable = 0;
  // Link-fault plane (zero on a reliable network).
  std::uint64_t dropped_link_loss = 0;
  std::uint64_t dropped_partitioned = 0;
  std::uint64_t duplicates_delivered = 0;
  std::uint64_t delay_spikes = 0;

  // ---- consistency
  std::uint64_t reads_checked = 0;
  std::uint64_t consistency_violations = 0;

  // ---- span tracing (zero when tracing is off)
  std::uint64_t traces_completed = 0;
  std::uint64_t spans_dropped = 0;

  // ---- replicated RM failover (populated only when rm_replicas > 1; the
  // gate keeps single-RM exports byte-identical to the pre-replication era)
  std::uint64_t rm_replicas = 0;
  std::uint64_t rm_leader_changes = 0;
  std::uint64_t rm_rounds_resumed = 0;
  std::uint64_t rm_stale_leader_msgs = 0;
  bool has_rm_failover = false;

  /// Full registry dump (every per-component instrument, ordered by name).
  Snapshot instruments;

  // ---- engine self-profiler (populated only when profiling was enabled)
  //
  // Kept beside the instrument snapshot, not inside it, so that a
  // profiling-on export differs from a profiling-off export by this section
  // alone — the byte-identity gate (tests/profiler_test.cpp) clears
  // `has_profile` and diffs the rest verbatim.
  ProfileReport profile;
  bool has_profile = false;

  std::uint64_t messages_dropped() const noexcept {
    return dropped_sender_crashed + dropped_receiver_crashed +
           dropped_unroutable + dropped_link_loss + dropped_partitioned;
  }

  /// Single deterministic JSON document (byte-identical across same-seed
  /// runs); includes the full instrument snapshot.
  std::string to_json() const;

  /// Human-readable multi-line summary table.
  std::string render() const;

  /// Flat CSV of the headline fields (no instrument dump).
  static std::string csv_header();
  std::string csv_row() const;
};

}  // namespace qopt::obs
