// Bounded deterministic span collector.
//
// Producers (proxies, storage nodes, the RM, the replicator) open and close
// spans against the store; when a trace's root ends, the whole trace moves
// into a bounded completed ring that exporters and the critical-path
// analyzer read. Design rules:
//
//  * Sampling is per trace kind: "every Nth trace", decided by the
//    monotonically assigned trace id, so it is deterministic for a
//    deterministic run and independent of wall time.
//  * Everything is off by default. An unsampled operation gets a zero
//    `SpanContext` and every subsequent call on it is a cheap no-op.
//  * Bounded everywhere, never silently: a hard cap on spans held by live
//    traces (`obs.spans_dropped` counts refused opens) and a cap on
//    completed traces (`obs.traces_evicted` counts ring evictions).
//  * Late closes tolerated: once a trace ends (its open spans force-closed
//    at the trace end), a straggler reply's close is a no-op.
//  * Deterministic storage: live traces in an ordered map keyed by trace
//    id, completed traces in arrival order.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <map>
#include <string_view>
#include <vector>

#include "obs/registry.hpp"
#include "obs/span.hpp"
#include "util/histogram.hpp"
#include "util/time.hpp"

namespace qopt::obs {

/// A finished trace: `spans[i]` has span_id i+1; `spans[0]` is the root.
struct CompletedTrace {
  TraceKind kind = TraceKind::kRead;
  std::uint64_t trace_id = 0;
  std::vector<Span> spans;
  std::uint32_t forced_closes = 0;  // spans still open when the trace ended
};

class SpanStore {
 public:
  /// When a registry is given the store mirrors its counters there
  /// (`obs.spans_dropped`, `obs.traces_completed`, `obs.traces_evicted`,
  /// `obs.spans_forced_closed`) and records per-phase duration histograms
  /// (`obs.phase.<phase>_ns`) on every span close.
  explicit SpanStore(MetricRegistry* registry = nullptr);

  // ------------------------------------------------------------- sampling
  /// 0 disables the kind (default); N samples every Nth trace, decided by
  /// the trace id (`id % N == 0`), so same seed => same sampled set.
  void set_sampling(TraceKind kind, std::uint32_t every_nth);
  std::uint32_t sampling(TraceKind kind) const noexcept;
  void enable_all(std::uint32_t every_nth = 1);
  void disable_all();
  /// True when any kind samples (cheap "is the layer on at all" test).
  bool active() const noexcept { return active_; }

  // --------------------------------------------------------------- bounds
  /// `max_live_spans` caps spans held by not-yet-ended traces (opens beyond
  /// it are refused and counted); `max_completed` caps the finished ring
  /// (oldest evicted and counted).
  void set_limits(std::size_t max_live_spans, std::size_t max_completed);

  // ------------------------------------------------------------ recording
  /// Opens a trace root. Returns a zero context when the kind is not
  /// sampled or the live-span cap is hit.
  SpanContext start_trace(TraceKind kind, std::string_view name,
                          std::string_view node, Time at);
  /// Opens a child span. No-op (zero return) on an invalid parent, an
  /// already-ended trace, or when the live-span cap is hit.
  SpanContext open_span(SpanContext parent, Phase phase, std::string_view name,
                        std::string_view node, Time at);
  /// Closes a span, attaching annotations. No-op on an invalid context, an
  /// ended trace, or an already-closed span (late storage replies).
  void close_span(SpanContext span, Time at, std::uint64_t a = 0,
                  std::uint64_t b = 0);
  /// Ends a trace: force-closes every still-open span at `at` (so completed
  /// traces are always balanced) and moves it to the completed ring.
  void end_trace(SpanContext root, Time at);

  // ----------------------------------------------------------- inspection
  const std::deque<CompletedTrace>& completed() const noexcept {
    return completed_;
  }
  std::size_t live_traces() const noexcept { return live_.size(); }
  std::size_t live_spans() const noexcept { return live_spans_; }
  std::uint64_t traces_started() const noexcept { return traces_started_; }
  std::uint64_t traces_completed() const noexcept { return traces_completed_; }
  std::uint64_t traces_evicted() const noexcept { return traces_evicted_; }
  std::uint64_t spans_dropped() const noexcept { return spans_dropped_; }
  std::uint64_t spans_forced_closed() const noexcept {
    return spans_forced_closed_;
  }

  /// Drops all live and completed traces (sampling config and counters
  /// survive).
  void clear();

 private:
  struct LiveTrace {
    TraceKind kind = TraceKind::kRead;
    std::vector<Span> spans;
  };

  // Ordered by trace id: exports and diagnostics enumerate
  // deterministically.
  std::map<std::uint64_t, LiveTrace> live_;
  std::deque<CompletedTrace> completed_;
  std::uint64_t next_trace_id_ = 1;
  std::array<std::uint32_t, kNumTraceKinds> every_{};  // 0 = off
  bool active_ = false;

  std::size_t max_live_spans_ = 8192;
  std::size_t max_completed_ = 4096;
  std::size_t live_spans_ = 0;

  std::uint64_t traces_started_ = 0;
  std::uint64_t traces_completed_ = 0;
  std::uint64_t traces_evicted_ = 0;
  std::uint64_t spans_dropped_ = 0;
  std::uint64_t spans_forced_closed_ = 0;

  // Registry mirrors (null when constructed without a registry).
  Counter* dropped_counter_ = nullptr;
  Counter* completed_counter_ = nullptr;
  Counter* evicted_counter_ = nullptr;
  Counter* forced_counter_ = nullptr;
  std::array<LatencyHistogram*, kNumPhases> phase_hist_{};

  void note_closed(const Span& span);
};

}  // namespace qopt::obs
