#include "obs/span_store.hpp"

#include <string>
#include <utility>

#include "obs/registry.hpp"
#include "obs/span.hpp"
#include "util/histogram.hpp"
#include "util/time.hpp"

namespace qopt::obs {

SpanStore::SpanStore(MetricRegistry* registry) {
  if (!registry) return;
  dropped_counter_ = &registry->counter("obs.spans_dropped");
  completed_counter_ = &registry->counter("obs.traces_completed");
  evicted_counter_ = &registry->counter("obs.traces_evicted");
  forced_counter_ = &registry->counter("obs.spans_forced_closed");
  for (std::size_t p = 0; p < kNumPhases; ++p) {
    const std::string name =
        std::string("obs.phase.") + to_string(static_cast<Phase>(p)) + "_ns";
    phase_hist_[p] = &registry->histogram(name);
  }
}

void SpanStore::set_sampling(TraceKind kind, std::uint32_t every_nth) {
  every_[static_cast<std::size_t>(kind)] = every_nth;
  active_ = false;
  for (const std::uint32_t every : every_) active_ |= every != 0;
}

std::uint32_t SpanStore::sampling(TraceKind kind) const noexcept {
  return every_[static_cast<std::size_t>(kind)];
}

void SpanStore::enable_all(std::uint32_t every_nth) {
  every_.fill(every_nth);
  active_ = every_nth != 0;
}

void SpanStore::disable_all() {
  every_.fill(0);
  active_ = false;
}

void SpanStore::set_limits(std::size_t max_live_spans,
                           std::size_t max_completed) {
  max_live_spans_ = max_live_spans;
  max_completed_ = max_completed;
}

SpanContext SpanStore::start_trace(TraceKind kind, std::string_view name,
                                   std::string_view node, Time at) {
  const std::uint32_t every = every_[static_cast<std::size_t>(kind)];
  if (every == 0) return {};
  const std::uint64_t id = next_trace_id_++;
  if (id % every != 0) return {};
  if (live_spans_ >= max_live_spans_) {
    ++spans_dropped_;
    if (dropped_counter_) dropped_counter_->inc();
    return {};
  }
  LiveTrace trace;
  trace.kind = kind;
  Span root;
  root.trace_id = id;
  root.span_id = 1;
  root.parent_id = 0;
  root.phase = Phase::kOp;
  root.name = name;
  root.node = node;
  root.start = at;
  root.end = at;
  trace.spans.push_back(std::move(root));
  live_.emplace(id, std::move(trace));
  ++live_spans_;
  ++traces_started_;
  return SpanContext{id, 1};
}

SpanContext SpanStore::open_span(SpanContext parent, Phase phase,
                                 std::string_view name, std::string_view node,
                                 Time at) {
  if (!parent.valid()) return {};
  const auto it = live_.find(parent.trace_id);
  if (it == live_.end()) return {};  // trace already ended
  LiveTrace& trace = it->second;
  if (parent.span_id == 0 || parent.span_id > trace.spans.size()) return {};
  if (live_spans_ >= max_live_spans_) {
    ++spans_dropped_;
    if (dropped_counter_) dropped_counter_->inc();
    return {};
  }
  Span span;
  span.trace_id = parent.trace_id;
  span.span_id = static_cast<std::uint32_t>(trace.spans.size() + 1);
  span.parent_id = parent.span_id;
  span.phase = phase;
  span.name = name;
  span.node = node;
  span.start = at;
  span.end = at;
  trace.spans.push_back(std::move(span));
  ++live_spans_;
  return SpanContext{parent.trace_id, trace.spans.back().span_id};
}

void SpanStore::close_span(SpanContext span, Time at, std::uint64_t a,
                           std::uint64_t b) {
  if (!span.valid()) return;
  const auto it = live_.find(span.trace_id);
  if (it == live_.end()) return;  // late close after end_trace
  LiveTrace& trace = it->second;
  if (span.span_id == 0 || span.span_id > trace.spans.size()) return;
  Span& target = trace.spans[span.span_id - 1];
  if (!target.open) return;
  target.open = false;
  target.end = at >= target.start ? at : target.start;
  target.a = a;
  target.b = b;
  note_closed(target);
}

void SpanStore::note_closed(const Span& span) {
  LatencyHistogram* hist = phase_hist_[static_cast<std::size_t>(span.phase)];
  if (hist) hist->record(static_cast<double>(span.duration()));
}

void SpanStore::end_trace(SpanContext root, Time at) {
  if (!root.valid()) return;
  const auto it = live_.find(root.trace_id);
  if (it == live_.end()) return;
  LiveTrace& trace = it->second;

  CompletedTrace done;
  done.kind = trace.kind;
  done.trace_id = root.trace_id;
  // Balance guarantee: whatever is still open (straggler RPCs, the armed
  // fallback window, the root itself) closes at the trace end.
  for (Span& span : trace.spans) {
    if (!span.open) continue;
    span.open = false;
    span.end = at >= span.start ? at : span.start;
    if (span.span_id != 1) {
      ++done.forced_closes;
      ++spans_forced_closed_;
      if (forced_counter_) forced_counter_->inc();
    }
    note_closed(span);
  }
  live_spans_ -= trace.spans.size();
  done.spans = std::move(trace.spans);
  live_.erase(it);

  completed_.push_back(std::move(done));
  ++traces_completed_;
  if (completed_counter_) completed_counter_->inc();
  while (completed_.size() > max_completed_) {
    completed_.pop_front();
    ++traces_evicted_;
    if (evicted_counter_) evicted_counter_->inc();
  }
}

void SpanStore::clear() {
  live_.clear();
  completed_.clear();
  live_spans_ = 0;
}

}  // namespace qopt::obs
