// Critical-path analysis over a completed trace.
//
// Decomposes a trace's end-to-end latency into per-phase contributions by
// sweeping the root interval: at every instant the time is attributed to the
// *deepest* span covering it (ties broken by latest start, then largest span
// id — i.e. the most recently opened work). Segments are integer
// nanoseconds, so the phase contributions sum to the root duration exactly:
// `phase_sum() == total` for every completed trace, no rounding slack.
//
// Straggler flagging rides on the quorum-wait span annotations the proxy
// records (`a` = replica index of the quorum-completing reply, `b` = excess
// ns it arrived after the previous counted reply).
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "obs/span.hpp"
#include "obs/span_store.hpp"
#include "util/time.hpp"

namespace qopt::obs {

struct TraceBreakdown {
  std::uint64_t trace_id = 0;
  TraceKind kind = TraceKind::kRead;
  Duration total = 0;  // root end - root start
  /// Exclusive time attributed to each phase, indexed by `Phase`.
  std::array<Duration, kNumPhases> by_phase{};

  /// Straggler info from the slowest quorum wait of the trace (reads may
  /// have two: first phase and repair phase).
  bool has_straggler = false;
  std::uint32_t straggler_replica = 0;
  Duration straggler_excess = 0;

  Duration phase_sum() const noexcept;
  Duration phase(Phase p) const noexcept {
    return by_phase[static_cast<std::size_t>(p)];
  }
};

/// Analyzes one completed trace. Safe on any trace the SpanStore produced
/// (balanced by construction); an empty trace yields a zero breakdown.
TraceBreakdown critical_path(const CompletedTrace& trace);

/// One human-readable line: "trace 42 read 4.213 ms = quorum_wait 3.1 ms +
/// storage_read 0.9 ms + ..." (phases with zero contribution omitted).
std::string to_string(const TraceBreakdown& breakdown);

}  // namespace qopt::obs
