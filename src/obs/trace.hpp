// Structured tracing on the DES virtual clock.
//
// Components record typed events (operation start/finish, quorum rounds,
// reconfiguration phases, suspicions, crashes, message drops) stamped with
// the simulator's virtual time. Categories are individually enable-able and
// every category is DISABLED by default: the disabled path is one mask test,
// so instrumented hot paths stay effectively free until a trace is wanted.
// Storage is a bounded ring buffer — the newest `capacity` events win and an
// eviction counter records what was lost.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/time.hpp"

namespace qopt::obs {

/// Event categories — bit flags so callers can enable any subset.
enum class Category : std::uint32_t {
  kOp = 1u << 0,          // client operation start/finish
  kQuorum = 1u << 1,      // repair reads, NACKs, fallbacks, retries
  kReconfig = 1u << 2,    // RM phases, proxy/storage adoption, epochs
  kMembership = 1u << 3,  // suspicions and crashes
  kAutonomic = 1u << 4,   // AM rounds and tuning decisions
  kNet = 1u << 5,         // message drops
};

inline constexpr std::uint32_t kAllCategories = (1u << 6) - 1;

const char* to_string(Category category) noexcept;

/// One recorded event. `a`/`b` are event-specific numeric arguments (object
/// id, latency, cfno, ...); `detail` is an optional free-form annotation.
struct TraceEvent {
  Time at = 0;
  Category category = Category::kOp;
  std::string name;
  std::string node;
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  std::string detail;
};

class Tracer {
 public:
  explicit Tracer(std::size_t capacity = 8192);

  // ------------------------------------------------------- category flags
  void enable(std::uint32_t category_mask) noexcept { mask_ |= category_mask; }
  void disable(std::uint32_t category_mask) noexcept {
    mask_ &= ~category_mask;
  }
  void enable_all() noexcept { mask_ = kAllCategories; }
  void disable_all() noexcept { mask_ = 0; }
  std::uint32_t mask() const noexcept { return mask_; }
  bool enabled(Category category) const noexcept {
    return (mask_ & static_cast<std::uint32_t>(category)) != 0;
  }

  // ------------------------------------------------------------ recording
  /// No-op (single mask test) when the category is disabled.
  void record(Time at, Category category, std::string_view name,
              std::string_view node, std::uint64_t a = 0, std::uint64_t b = 0,
              std::string_view detail = {});

  // ------------------------------------------------------------ inspection
  /// Buffered events, oldest first.
  std::vector<TraceEvent> events() const;
  std::size_t size() const noexcept { return size_; }
  std::size_t capacity() const noexcept { return capacity_; }
  /// Events accepted since construction/clear (including later evictions).
  std::uint64_t recorded() const noexcept { return recorded_; }
  /// Events overwritten because the ring was full.
  std::uint64_t evicted() const noexcept { return evicted_; }

  /// Resizes the ring (drops buffered events, keeps the category mask).
  void set_capacity(std::size_t capacity);
  void clear();

  /// JSON array of buffered events, oldest first — deterministic for a
  /// deterministic run.
  std::string to_json() const;

 private:
  std::uint32_t mask_ = 0;  // everything off: tracing is opt-in
  std::size_t capacity_;
  std::vector<TraceEvent> ring_;
  std::size_t next_ = 0;  // slot the next event lands in
  std::size_t size_ = 0;
  std::uint64_t recorded_ = 0;
  std::uint64_t evicted_ = 0;
};

}  // namespace qopt::obs
