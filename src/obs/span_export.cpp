#include "obs/span_export.hpp"

#include <deque>
#include <map>
#include <string>

#include "obs/span.hpp"
#include "obs/span_store.hpp"
#include "util/time.hpp"

namespace qopt::obs {

namespace {

void append_json_string(std::string& out, const std::string& value) {
  out.push_back('"');
  for (const char c : value) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  out.push_back('"');
}

/// Nanoseconds as decimal microseconds ("12.345"): Chrome's ts/dur unit is
/// microseconds; keeping the three sub-microsecond digits preserves the DES
/// clock exactly and formats deterministically (pure integer arithmetic).
void append_us(std::string& out, Time ns) {
  out.append(std::to_string(ns / 1000));
  const auto rem = static_cast<unsigned>(ns % 1000);
  out.push_back('.');
  out.push_back(static_cast<char>('0' + rem / 100));
  out.push_back(static_cast<char>('0' + (rem / 10) % 10));
  out.push_back(static_cast<char>('0' + rem % 10));
}

/// Deterministic tid per node: sorted node names get 0, 1, 2, ...
std::map<std::string, int> assign_tids(
    const std::deque<CompletedTrace>& traces) {
  std::map<std::string, int> tids;
  for (const CompletedTrace& trace : traces) {
    for (const Span& span : trace.spans) tids.emplace(span.node, 0);
  }
  int next = 0;
  for (auto& [node, tid] : tids) tid = next++;
  return tids;
}

}  // namespace

std::string to_chrome_json(const std::deque<CompletedTrace>& traces) {
  const std::map<std::string, int> tids = assign_tids(traces);
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  for (const auto& [node, tid] : tids) {
    if (!first) out.push_back(',');
    first = false;
    out.append("{\"ph\":\"M\",\"pid\":1,\"tid\":");
    out.append(std::to_string(tid));
    out.append(",\"name\":\"thread_name\",\"args\":{\"name\":");
    append_json_string(out, node);
    out.append("}}");
  }
  for (const CompletedTrace& trace : traces) {
    for (const Span& span : trace.spans) {
      if (!first) out.push_back(',');
      first = false;
      out.append("{\"ph\":\"X\",\"pid\":1,\"tid\":");
      out.append(std::to_string(tids.at(span.node)));
      out.append(",\"ts\":");
      append_us(out, span.start);
      out.append(",\"dur\":");
      append_us(out, span.duration());
      out.append(",\"name\":");
      append_json_string(out, span.name);
      out.append(",\"cat\":\"");
      out.append(to_string(trace.kind));
      out.append("\",\"args\":{\"trace\":");
      out.append(std::to_string(span.trace_id));
      out.append(",\"span\":");
      out.append(std::to_string(span.span_id));
      out.append(",\"parent\":");
      out.append(std::to_string(span.parent_id));
      out.append(",\"phase\":\"");
      out.append(to_string(span.phase));
      out.append("\",\"a\":");
      out.append(std::to_string(span.a));
      out.append(",\"b\":");
      out.append(std::to_string(span.b));
      out.append("}}");
    }
  }
  out.append("],\"displayTimeUnit\":\"ms\"}");
  return out;
}

std::string to_span_csv(const std::deque<CompletedTrace>& traces) {
  std::string out =
      "trace_id,kind,span_id,parent_id,phase,name,node,start_ns,end_ns,"
      "dur_ns,a,b\n";
  for (const CompletedTrace& trace : traces) {
    for (const Span& span : trace.spans) {
      out.append(std::to_string(span.trace_id));
      out.push_back(',');
      out.append(to_string(trace.kind));
      out.push_back(',');
      out.append(std::to_string(span.span_id));
      out.push_back(',');
      out.append(std::to_string(span.parent_id));
      out.push_back(',');
      out.append(to_string(span.phase));
      out.push_back(',');
      out.append(span.name);
      out.push_back(',');
      out.append(span.node);
      out.push_back(',');
      out.append(std::to_string(span.start));
      out.push_back(',');
      out.append(std::to_string(span.end));
      out.push_back(',');
      out.append(std::to_string(span.duration()));
      out.push_back(',');
      out.append(std::to_string(span.a));
      out.push_back(',');
      out.append(std::to_string(span.b));
      out.push_back('\n');
    }
  }
  return out;
}

}  // namespace qopt::obs
