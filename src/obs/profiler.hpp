// Engine self-profiler (ROADMAP item 1): where do events/sec actually go?
//
// EngineProfiler attributes every simulator event to exactly one subsystem
// (network delivery, proxy, storage, client, replicator, RM, AM — or the
// engine itself when nothing claims it), counts heap allocations per
// subsystem, samples wall-time, and keeps event-queue telemetry (depth,
// dwell time, reschedule churn) in log-bucketed HDR-style histograms.
//
// Cost model — the engine sustains millions of events per wall second, so a
// 2% overhead budget is single-digit nanoseconds per event (enforced by
// tests/profiler_test.cpp):
//   * exact integer counters per event (events, allocations, claims);
//   * queue histograms sampled every kTelemetryEvery-th event;
//   * wall-clock read only around every kWallEvery-th event (two clock
//     reads bracketing that one event; the sampled share extrapolates).
//
// Attribution is *last wins*: Network::deliver claims kNet, the component
// handler it invokes overrides with its own subsystem, and end_event()
// charges the final claimant — so per-subsystem event counts always sum to
// the engine total. Events nobody claims (bare timers) stay kEngine.
//
// Zero-cost-when-off: the CMake option QOPT_PROFILE (default ON) defines
// QOPT_PROFILE_ENABLED; every hook call site compiles away under OFF while
// these *types* stay available, so exports build in both modes. At runtime
// the hooks are additionally gated on enabled() (off by default), keeping
// default runs byte-identical whether or not instruments are compiled in.
#pragma once

#ifndef QOPT_PROFILE_ENABLED
#define QOPT_PROFILE_ENABLED 1
#endif

#include <array>
#include <atomic>
#include <bit>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/registry.hpp"
#include "util/time.hpp"

namespace qopt::obs {

namespace detail {
/// Process-wide allocation tick, incremented by the profiler's weak
/// global operator new (profiler.cpp). Stays zero when another translation
/// unit installs a strong replacement (tests/alloc_gate_test.cpp) or a
/// sanitizer runtime intercepts allocation.
extern std::atomic<std::uint64_t> g_profile_allocs;

inline std::uint64_t profiler_wall_ns() noexcept {
  // qopt-lint: allow(wall-clock) self-profiler measures host cost of the engine, not simulated behavior
  const auto since_epoch = std::chrono::steady_clock::now().time_since_epoch();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(since_epoch)
          .count());
}
}  // namespace detail

/// The claimable engine phases. kEngine is the default (unclaimed timers and
/// the event loop itself); the rest mirror the component map in
/// docs/ARCHITECTURE.toml.
enum class ProfSubsystem : std::uint8_t {
  kEngine = 0,
  kNet,
  kProxy,
  kStorage,
  kClient,
  kReplicator,
  kRm,
  kAm,
};
inline constexpr std::size_t kProfSubsystemCount = 8;

const char* to_string(ProfSubsystem s) noexcept;

// ---------------------------------------------------------------- histogram

/// Fixed-footprint HDR-style histogram over unsigned 64-bit values: buckets
/// are power-of-two ranges split into 2^kSubBits linear sub-buckets (~12.5%
/// relative resolution), so record() is a shift and two increments — cheap
/// enough for per-event telemetry, unlike LatencyHistogram's std::log. The
/// last bucket absorbs the top of the u64 range (the overflow bucket);
/// percentile() reports a bucket upper bound clamped to the observed max.
class LogHistogram {
 public:
  static constexpr std::size_t kSubBits = 3;
  static constexpr std::size_t kBucketCount =
      ((64 - kSubBits) << kSubBits) + (std::size_t{1} << kSubBits);  // 496

  static constexpr std::size_t bucket_for(std::uint64_t v) noexcept {
    if (v < (std::uint64_t{1} << kSubBits)) return static_cast<std::size_t>(v);
    const auto exp = static_cast<std::size_t>(std::bit_width(v)) - 1;
    const auto sub = static_cast<std::size_t>(
        (v >> (exp - kSubBits)) & ((std::uint64_t{1} << kSubBits) - 1));
    return ((exp - kSubBits + 1) << kSubBits) + sub;
  }

  void record(std::uint64_t v) noexcept {
    ++buckets_[bucket_for(v)];
    ++count_;
    sum_ += v;
    if (v > max_) max_ = v;
    if (count_ == 1 || v < min_) min_ = v;
  }

  void merge(const LogHistogram& other) noexcept;
  void reset() noexcept;

  std::uint64_t count() const noexcept { return count_; }
  std::uint64_t min() const noexcept { return count_ ? min_ : 0; }
  std::uint64_t max() const noexcept { return max_; }
  double mean() const noexcept {
    return count_ ? static_cast<double>(sum_) / static_cast<double>(count_)
                  : 0.0;
  }

  /// Inclusive lower bound of a bucket's value range (exposed for tests).
  static std::uint64_t bucket_lower(std::size_t index) noexcept;
  /// Inclusive upper bound of a bucket's value range.
  static std::uint64_t bucket_upper(std::size_t index) noexcept;

  /// Value at percentile `pct` in [0, 100]: the upper bound of the bucket
  /// holding that rank, clamped to the observed max. 0 when empty.
  std::uint64_t percentile(double pct) const noexcept;

  /// Fixed-quantile digest in the registry's snapshot shape.
  HistogramSummary summary() const;

 private:
  std::array<std::uint64_t, kBucketCount> buckets_{};
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = 0;
  std::uint64_t max_ = 0;
};

// ------------------------------------------------------------------ report

/// One subsystem's attribution row. `wall_ns` covers only the
/// `wall_samples` events the sampler bracketed; `events`/`allocs` are exact.
struct ProfilePhaseRow {
  std::string name;
  std::uint64_t events = 0;
  std::uint64_t allocs = 0;
  std::uint64_t wall_ns = 0;
  std::uint64_t wall_samples = 0;
};

struct ProfileMessageRow {
  std::string name;
  std::uint64_t count = 0;
};

/// Deterministic export of one profiling window. Every field except the
/// wall_* pair derives from simulation state, so after zero_wall() the
/// JSON/CSV forms are byte-identical across same-seed runs.
struct ProfileReport {
  bool compiled = false;  // QOPT_PROFILE compile option at build time
  std::uint64_t events_total = 0;
  std::vector<ProfilePhaseRow> subsystems;  // enum order; sums to total
  std::vector<ProfileMessageRow> messages;  // wire variant order
  // Event-queue telemetry.
  std::uint64_t schedules = 0;
  std::uint64_t requeues = 0;      // schedule-chooser re-pushes (test-only)
  std::uint64_t fifo_clamps = 0;   // deliveries bumped by the FIFO clamp
  std::uint64_t max_depth = 0;
  HistogramSummary queue_depth;    // sampled
  HistogramSummary dwell_ns;       // virtual ns between at() and execution
  std::uint64_t timeline_slices = 0;
  std::uint64_t timeline_dropped = 0;

  /// Zeroes the host-derived fields (per-subsystem wall_ns) so the export
  /// is byte-identical across same-seed reruns (`--deterministic`).
  void zero_wall();

  std::string to_json() const;
  std::string render() const;
  /// Flat "name,kind,value" rows matching Snapshot::to_csv()'s shape.
  std::string to_csv() const;
};

// ---------------------------------------------------------------- profiler

/// Owned by obs::Observability; Cluster binds it into the Simulator and the
/// hot hooks below are invoked from sim/net/component code. All hot methods
/// are exact-counter cheap; see the cost model at the top of this header.
class EngineProfiler {
 public:
  static constexpr std::size_t kMaxMessageTypes = 32;
  static constexpr std::uint64_t kTelemetryEvery = 32;  // queue histograms
  static constexpr std::uint64_t kWallEvery = 64;       // wall-clock probe

  static constexpr bool compiled_on() noexcept {
    return QOPT_PROFILE_ENABLED != 0;
  }

  bool enabled() const noexcept { return enabled_; }
  void enable() noexcept { enabled_ = true; }
  void disable() noexcept { enabled_ = false; }
  void reset() noexcept;

  // ---- hot hooks (call sites compiled out under QOPT_PROFILE=OFF)

  void note_schedule() noexcept { ++schedules_; }
  void note_requeue() noexcept { ++requeues_; }
  void note_fifo_clamp() noexcept { ++fifo_clamps_; }

  /// The event about to run: `now` is the (monotone) execution instant,
  /// `enqueued_at` the instant at() staged it, `depth` the queue size left.
  void begin_event(Time now, Time enqueued_at, std::size_t depth) noexcept {
    current_ = ProfSubsystem::kEngine;
    allocs_at_begin_ = detail::g_profile_allocs.load(std::memory_order_relaxed);
    if (depth > max_depth_) max_depth_ = depth;
    const std::uint64_t tick = tick_++;
    if ((tick & (kTelemetryEvery - 1)) == 0) {
      depth_.record(depth);
      dwell_.record(now >= enqueued_at
                        ? static_cast<std::uint64_t>(now - enqueued_at)
                        : 0);
    }
    wall_pending_ = (tick & (kWallEvery - 1)) == 0;
    if (wall_pending_) wall_begin_ = detail::profiler_wall_ns();
  }

  /// Charges the event (and its allocation delta) to the last claimant.
  void end_event() noexcept {
    Phase& p = phases_[static_cast<std::size_t>(current_)];
    ++p.events;
    p.allocs += detail::g_profile_allocs.load(std::memory_order_relaxed) -
                allocs_at_begin_;
    if (wall_pending_) {
      p.wall_ns += detail::profiler_wall_ns() - wall_begin_;
      ++p.wall_samples;
      wall_pending_ = false;
    }
  }

  /// Claims the current event for `s` (last claim before end_event wins).
  void enter(ProfSubsystem s) noexcept { current_ = s; }

  /// Per-wire-message-type delivery count (variant index).
  void count_message(std::size_t type_index) noexcept {
    if (type_index < kMaxMessageTypes) ++msg_counts_[type_index];
  }

  // ---- timeline (opt-in visualization; allowed to cost wall-clock reads)

  /// Starts recording wall-clock phase slices for a Chrome trace; at most
  /// `limit` slices are kept (the rest are counted as dropped).
  void enable_timeline(std::size_t limit);
  bool timeline_enabled() const noexcept { return timeline_on_; }
  void record_slice(ProfSubsystem s, std::uint64_t wall_begin_ns,
                    std::uint64_t wall_end_ns) noexcept;

  // ---- export

  /// Injects display names for count_message indices (the obs layer cannot
  /// see src/kv/wire.hpp; Cluster supplies kv::kMessageTypeNames).
  void set_message_names(const char* const* names, std::size_t count);

  ProfileReport report() const;

  /// Chrome trace_event JSON of the recorded timeline slices.
  std::string timeline_chrome_json() const;

 private:
  struct Phase {
    std::uint64_t events = 0;
    std::uint64_t allocs = 0;
    std::uint64_t wall_ns = 0;
    std::uint64_t wall_samples = 0;
  };
  struct Slice {
    ProfSubsystem sub;
    std::uint64_t begin_ns;
    std::uint64_t end_ns;
  };

  bool enabled_ = false;
  bool timeline_on_ = false;
  bool wall_pending_ = false;
  ProfSubsystem current_ = ProfSubsystem::kEngine;
  std::uint64_t tick_ = 0;
  std::uint64_t allocs_at_begin_ = 0;
  std::uint64_t wall_begin_ = 0;
  std::array<Phase, kProfSubsystemCount> phases_{};
  std::array<std::uint64_t, kMaxMessageTypes> msg_counts_{};
  std::uint64_t schedules_ = 0;
  std::uint64_t requeues_ = 0;
  std::uint64_t fifo_clamps_ = 0;
  std::uint64_t max_depth_ = 0;
  LogHistogram depth_;
  LogHistogram dwell_;
  std::vector<std::string> msg_names_;
  std::vector<Slice> timeline_;  // reserved up-front by enable_timeline
  std::size_t timeline_limit_ = 0;
  std::uint64_t timeline_dropped_ = 0;
};

/// RAII claim used by component dispatch code (via QOPT_PROFILE_SCOPE).
/// Claiming is a plain enter(); the destructor only works when the timeline
/// is on, appending a wall-clock slice for Chrome-trace export.
class ProfileScope {
 public:
  ProfileScope(EngineProfiler* profiler, ProfSubsystem s) noexcept {
    if (profiler == nullptr || !profiler->enabled()) return;
    profiler->enter(s);
    if (profiler->timeline_enabled()) {
      profiler_ = profiler;
      sub_ = s;
      begin_ns_ = detail::profiler_wall_ns();
    }
  }
  ~ProfileScope() {
    if (profiler_ != nullptr) {
      profiler_->record_slice(sub_, begin_ns_, detail::profiler_wall_ns());
    }
  }
  ProfileScope(const ProfileScope&) = delete;
  ProfileScope& operator=(const ProfileScope&) = delete;

 private:
  EngineProfiler* profiler_ = nullptr;
  ProfSubsystem sub_ = ProfSubsystem::kEngine;
  std::uint64_t begin_ns_ = 0;
};

}  // namespace qopt::obs

// Component-side claim: `obs_ptr` is the component's (nullable)
// obs::Observability*; compiles to nothing under QOPT_PROFILE=OFF.
#if QOPT_PROFILE_ENABLED
#define QOPT_PROFILE_SCOPE(obs_ptr, subsystem)                 \
  ::qopt::obs::ProfileScope qopt_profile_scope_ {              \
    (obs_ptr) != nullptr ? &(obs_ptr)->profiler() : nullptr,   \
        (subsystem)                                            \
  }
#else
#define QOPT_PROFILE_SCOPE(obs_ptr, subsystem) \
  do {                                         \
  } while (false)
#endif
