#include "obs/span.hpp"

namespace qopt::obs {

const char* to_string(Phase phase) noexcept {
  switch (phase) {
    case Phase::kOp: return "op";
    case Phase::kProxyQueue: return "proxy_queue";
    case Phase::kQuorumWait: return "quorum_wait";
    case Phase::kReplicaRead: return "replica_read";
    case Phase::kReplicaWrite: return "replica_write";
    case Phase::kStorageRead: return "storage_read";
    case Phase::kStorageWrite: return "storage_write";
    case Phase::kReadRepair: return "read_repair";
    case Phase::kNackRetry: return "nack_retry";
    case Phase::kProxyDrain: return "proxy_drain";
    case Phase::kProxyConfirm: return "proxy_confirm";
    case Phase::kRmNewq: return "rm_newq";
    case Phase::kRmConfirm: return "rm_confirm";
    case Phase::kRmEpoch: return "rm_epoch";
    case Phase::kStorageEpoch: return "storage_epoch";
    case Phase::kRepairPush: return "repair_push";
    case Phase::kRetransmit: return "retransmit";
    case Phase::kOpFailed: return "op_failed";
  }
  return "unknown";
}

const char* to_string(TraceKind kind) noexcept {
  switch (kind) {
    case TraceKind::kRead: return "read";
    case TraceKind::kWrite: return "write";
    case TraceKind::kWriteback: return "writeback";
    case TraceKind::kReconfig: return "reconfig";
    case TraceKind::kAntiEntropy: return "anti_entropy";
  }
  return "unknown";
}

}  // namespace qopt::obs
