// Observability bundle: one MetricRegistry + one Tracer + one SpanStore,
// shared by every component of a deployment. `qopt::Cluster` owns one and
// threads it through the network, proxies, storage nodes, RM and AM;
// stand-alone component tests construct their own and pass a pointer.
#pragma once

#include "obs/profiler.hpp"
#include "obs/registry.hpp"
#include "obs/span_store.hpp"
#include "obs/trace.hpp"

namespace qopt::obs {

class Observability {
 public:
  MetricRegistry& registry() noexcept { return registry_; }
  const MetricRegistry& registry() const noexcept { return registry_; }
  Tracer& tracer() noexcept { return tracer_; }
  const Tracer& tracer() const noexcept { return tracer_; }
  SpanStore& spans() noexcept { return spans_; }
  const SpanStore& spans() const noexcept { return spans_; }
  /// Engine self-profiler (off until enabled; see docs/OBSERVABILITY.md).
  EngineProfiler& profiler() noexcept { return profiler_; }
  const EngineProfiler& profiler() const noexcept { return profiler_; }

 private:
  // Registry first: the span store mirrors its counters there.
  MetricRegistry registry_;
  Tracer tracer_;
  SpanStore spans_{&registry_};
  EngineProfiler profiler_;
};

}  // namespace qopt::obs
