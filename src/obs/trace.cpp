#include "obs/trace.hpp"
#include "util/time.hpp"

namespace qopt::obs {

const char* to_string(Category category) noexcept {
  switch (category) {
    case Category::kOp: return "op";
    case Category::kQuorum: return "quorum";
    case Category::kReconfig: return "reconfig";
    case Category::kMembership: return "membership";
    case Category::kAutonomic: return "autonomic";
    case Category::kNet: return "net";
  }
  return "unknown";
}

Tracer::Tracer(std::size_t capacity) : capacity_(capacity ? capacity : 1) {
  ring_.resize(capacity_);
}

void Tracer::record(Time at, Category category, std::string_view name,
                    std::string_view node, std::uint64_t a, std::uint64_t b,
                    std::string_view detail) {
  if (!enabled(category)) return;
  TraceEvent& slot = ring_[next_];
  if (size_ == capacity_) {
    ++evicted_;
  } else {
    ++size_;
  }
  slot.at = at;
  slot.category = category;
  slot.name.assign(name);
  slot.node.assign(node);
  slot.a = a;
  slot.b = b;
  slot.detail.assign(detail);
  next_ = (next_ + 1) % capacity_;
  ++recorded_;
}

std::vector<TraceEvent> Tracer::events() const {
  std::vector<TraceEvent> out;
  out.reserve(size_);
  // Oldest event: when full, the slot about to be overwritten; else slot 0.
  const std::size_t start = size_ == capacity_ ? next_ : 0;
  for (std::size_t i = 0; i < size_; ++i) {
    out.push_back(ring_[(start + i) % capacity_]);
  }
  return out;
}

void Tracer::set_capacity(std::size_t capacity) {
  capacity_ = capacity ? capacity : 1;
  ring_.assign(capacity_, TraceEvent{});
  next_ = 0;
  size_ = 0;
}

void Tracer::clear() {
  for (TraceEvent& slot : ring_) slot = TraceEvent{};
  next_ = 0;
  size_ = 0;
  recorded_ = 0;
  evicted_ = 0;
}

namespace {

void append_json_string(std::string& out, const std::string& s) {
  out.push_back('"');
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  out.push_back('"');
}

}  // namespace

std::string Tracer::to_json() const {
  std::string out = "[";
  bool first = true;
  const std::size_t start = size_ == capacity_ ? next_ : 0;
  for (std::size_t i = 0; i < size_; ++i) {
    const TraceEvent& e = ring_[(start + i) % capacity_];
    if (!first) out.push_back(',');
    first = false;
    out.append("{\"at\":");
    out.append(std::to_string(e.at));
    out.append(",\"cat\":\"");
    out.append(to_string(e.category));
    out.append("\",\"name\":");
    append_json_string(out, e.name);
    out.append(",\"node\":");
    append_json_string(out, e.node);
    out.append(",\"a\":");
    out.append(std::to_string(e.a));
    out.append(",\"b\":");
    out.append(std::to_string(e.b));
    if (!e.detail.empty()) {
      out.append(",\"detail\":");
      append_json_string(out, e.detail);
    }
    out.push_back('}');
  }
  out.push_back(']');
  return out;
}

}  // namespace qopt::obs
