#include "sim/failure_detector.hpp"
#include "sim/ids.hpp"
#include "sim/simulator.hpp"
#include "smr/messages.hpp"
#include "smr/replica.hpp"

#include <algorithm>

namespace qopt::smr {

namespace {
sim::NodeId replica_node(std::uint32_t index) {
  // SMR runs on its own network instance; reuse the storage kind as the
  // node namespace there (kinds are only meaningful per network).
  return sim::NodeId{sim::NodeKind::kStorage, index};
}
}  // namespace

Replica::Replica(sim::Simulator& sim, Net& net, sim::FailureDetector& fd,
                 std::uint32_t index, std::uint32_t group_size, ApplyFn apply)
    : sim_(sim),
      net_(net),
      fd_(fd),
      index_(index),
      group_size_(group_size),
      apply_(std::move(apply)) {}

void Replica::crash() {
  crashed_ = true;
  net_.set_crashed(replica_node(index_));
  // Volatile coordinator state dies with the process: buffered-but-
  // unproposed commands are gone (the group-level resubmit path recovers
  // them) and any leadership must be re-earned through phase 1 after a
  // restart. Acceptor/learner state (promises, accepted slots, applied log)
  // models stable storage and survives.
  pending_.clear();
  leading_ = false;
  preparing_ = false;
}

void Replica::restart() {
  if (!crashed_) return;
  crashed_ = false;
  net_.set_crashed(replica_node(index_), false);
  reevaluate_leadership();
}

std::uint32_t Replica::leader_index() const {
  for (std::uint32_t i = 0; i < group_size_; ++i) {
    if (!fd_.suspects(replica_node(i))) return i;
  }
  return index_;  // all suspected: claim it ourselves (safety unaffected)
}

bool Replica::is_leader() const {
  return !crashed_ && leading_ && leader_index() == index_;
}

void Replica::reevaluate_leadership() {
  if (crashed_) return;
  const std::uint32_t leader = leader_index();
  if (leader == index_ && !leading_ && !preparing_) {
    start_leadership();
  } else if (leader != index_) {
    leading_ = false;
    preparing_ = false;
    // Any buffered commands chase the new leader.
    while (!pending_.empty()) {
      net_.send(replica_node(index_), replica_node(leader),
                Forward{pending_.front()});
      pending_.pop_front();
    }
  }
}

void Replica::start_leadership() {
  ++term_;
  ++stats_.leadership_changes;
  my_ballot_ = term_ * group_size_ + index_ + 1;  // ballots start at 1
  preparing_ = true;
  leading_ = false;
  promises_from_.clear();
  promised_entries_.clear();
  broadcast(Prepare{my_ballot_, next_to_apply_});
}

void Replica::broadcast(const Message& msg) {
  for (std::uint32_t i = 0; i < group_size_; ++i) {
    net_.send(replica_node(index_), replica_node(i), msg);
  }
}

void Replica::on_message(const sim::NodeId& from, const Message& msg) {
  if (crashed_) return;
  std::visit(
      [&](const auto& m) {
        using T = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<T, Prepare>) {
          handle_prepare(from, m);
        } else if constexpr (std::is_same_v<T, Promise>) {
          handle_promise(from, m);
        } else if constexpr (std::is_same_v<T, Accept>) {
          handle_accept(from, m);
        } else if constexpr (std::is_same_v<T, Accepted>) {
          handle_accepted(from, m);
        } else if constexpr (std::is_same_v<T, Learn>) {
          handle_learn(m);
        } else if constexpr (std::is_same_v<T, Forward>) {
          submit(m.command);
        } else if constexpr (std::is_same_v<T, PrepareNack>) {
          handle_prepare_nack(m);
        }
      },
      msg);
}

void Replica::submit(Command command) {
  if (crashed_) return;
  const std::uint32_t leader = leader_index();
  if (leader != index_) {
    net_.send(replica_node(index_), replica_node(leader), Forward{command});
    return;
  }
  pending_.push_back(std::move(command));
  if (leading_) {
    propose_pending();
  } else if (!preparing_) {
    start_leadership();
  }
}

// ------------------------------------------------------------- acceptor

void Replica::handle_prepare(const sim::NodeId& from, const Prepare& msg) {
  if (msg.ballot <= promised_ballot_) {
    // Stale candidate — tell it what it must out-bid. A replica that
    // crashed before ever leading restarts with a lagging durable term, and
    // without the nack it would wait forever for this promise.
    net_.send(replica_node(index_), from,
              PrepareNack{msg.ballot, promised_ballot_});
    return;
  }
  promised_ballot_ = msg.ballot;
  Promise promise;
  promise.ballot = msg.ballot;
  for (const auto& [slot, state] : slots_) {
    if (slot < msg.low_slot) continue;
    if (state.chosen) {
      // Chosen values are reported as accepted at an infinite-like ballot
      // so the new leader must re-propose exactly them.
      promise.accepted.push_back(Promise::AcceptedEntry{
          slot, promised_ballot_, state.chosen_command});
    } else if (state.has_accepted) {
      promise.accepted.push_back(Promise::AcceptedEntry{
          slot, state.accepted_ballot, state.accepted_command});
    }
  }
  net_.send(replica_node(index_), from, promise);
}

void Replica::handle_accept(const sim::NodeId& from, const Accept& msg) {
  if (msg.ballot < promised_ballot_) return;  // promised to a newer leader
  promised_ballot_ = msg.ballot;
  SlotState& state = slots_[msg.slot];
  if (state.chosen) {
    // Already decided — but still acknowledge: a recovering leader that
    // missed the Learn re-proposes exactly the chosen value (phase 1
    // reports chosen slots at the candidate's own ballot, which out-ranks
    // every plain accepted entry), and without this ack it could never
    // gather a majority for a slot the rest of the group already closed.
    net_.send(replica_node(index_), from, Accepted{msg.ballot, msg.slot});
    return;
  }
  state.accepted_ballot = msg.ballot;
  state.accepted_command = msg.command;
  state.has_accepted = true;
  net_.send(replica_node(index_), from, Accepted{msg.ballot, msg.slot});
}

// --------------------------------------------------------------- leader

void Replica::handle_promise(const sim::NodeId& from, const Promise& msg) {
  if (!preparing_ || msg.ballot != my_ballot_) return;
  promises_from_.insert(from.index);
  for (const auto& entry : msg.accepted) {
    promised_entries_.push_back(entry);
  }
  if (promises_from_.size() < majority()) return;

  // Phase 1 complete: adopt, per slot, the accepted value with the highest
  // ballot; re-propose all of them under our ballot, then open for traffic.
  preparing_ = false;
  leading_ = true;
  std::map<std::uint64_t, Promise::AcceptedEntry> to_recover;
  for (const auto& entry : promised_entries_) {
    auto [it, inserted] = to_recover.emplace(entry.slot, entry);
    if (!inserted && entry.ballot > it->second.ballot) it->second = entry;
  }
  next_slot_ = next_to_apply_;
  for (const auto& [slot, entry] : to_recover) {
    next_slot_ = std::max(next_slot_, slot + 1);
  }
  for (const auto& [slot, entry] : to_recover) {
    ++stats_.slots_recovered;
    propose(slot, entry.command);
  }
  propose_pending();
}

void Replica::handle_prepare_nack(const PrepareNack& msg) {
  // Only the prepare currently in flight matters; the first nack restarts
  // phase 1 with a ballot out-ranking the promised one, and later nacks for
  // the old ballot no longer match.
  if (!preparing_ || msg.ballot != my_ballot_ || msg.promised < my_ballot_) {
    return;
  }
  ++stats_.prepare_rejections;
  // start_leadership pre-increments, so after the bump the new ballot is
  // (promised/group + 1)*group + index + 1 > promised.
  term_ = std::max(term_, msg.promised / group_size_);
  preparing_ = false;
  if (leader_index() == index_) start_leadership();
}

void Replica::propose_pending() {
  while (!pending_.empty()) {
    propose(next_slot_++, std::move(pending_.front()));
    pending_.pop_front();
  }
}

void Replica::propose(std::uint64_t slot, Command command) {
  SlotState& state = slots_[slot];
  state.accepted_from.clear();
  state.proposed_command = command;
  broadcast(Accept{my_ballot_, slot, std::move(command)});
}

void Replica::handle_accepted(const sim::NodeId& from, const Accepted& msg) {
  if (!leading_ || msg.ballot != my_ballot_) return;
  SlotState& state = slots_[msg.slot];
  if (state.chosen) return;
  state.accepted_from.insert(from.index);
  if (state.accepted_from.size() >= majority()) {
    // Chosen: the value is exactly what we proposed under my_ballot_ (the
    // tally only counts Accepted messages carrying that ballot).
    broadcast(Learn{msg.slot, state.proposed_command});
  }
}

// --------------------------------------------------------------- learner

void Replica::handle_learn(const Learn& msg) {
  choose(msg.slot, msg.command);
}

void Replica::choose(std::uint64_t slot, const Command& command) {
  SlotState& state = slots_[slot];
  if (!state.chosen) {
    state.chosen = true;
    state.chosen_command = command;
  }
  try_apply();
}

void Replica::try_apply() {
  for (;;) {
    auto it = slots_.find(next_to_apply_);
    if (it == slots_.end() || !it->second.chosen) return;
    const Command& command = it->second.chosen_command;
    // Exactly-once: a command can occupy two slots if a recovering leader
    // re-proposed it while the old leader's proposal was also chosen.
    if (applied_ids_.insert(command.id).second) {
      ++stats_.commands_applied;
      applied_log_.push_back(command);
      if (apply_) apply_(next_to_apply_, command);
    }
    ++next_to_apply_;
  }
}

}  // namespace qopt::smr
