// MultiPaxos replica — the state-machine-replication substrate the paper
// points to for removing Q-OPT's control-plane single points of failure
// (Section 3: "standard replication techniques, such as state-machine
// replication [18, 38, 5], can be used to derive fault-tolerant
// implementations of any of these components").
//
// Design (classic leader-based MultiPaxos, simplified for a fixed group):
//  * every replica is proposer + acceptor + learner;
//  * leadership follows the failure detector: the lowest-indexed
//    non-suspected replica leads; a leadership change runs phase 1
//    (Prepare/Promise) over all unchosen slots, re-proposes the highest-
//    ballot accepted values it finds, then serves new commands with
//    phase 2 only;
//  * ballots are (term * group_size + replica_index), globally unique;
//  * a slot is chosen on a majority of Accepted; Learn messages disseminate
//    the decision; replicas apply commands in slot order once contiguous;
//  * command ids give exactly-once application (a command re-proposed
//    during recovery may occupy two slots; the second apply is a no-op).
//
// Safety holds under any asynchrony/suspicion pattern; liveness requires a
// majority of correct replicas and eventually accurate suspicion (the same
// ◇P assumption the paper makes for the RM).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <set>
#include <unordered_set>
#include <vector>

#include "sim/failure_detector.hpp"
#include "sim/ids.hpp"
#include "sim/network.hpp"
#include "sim/simulator.hpp"
#include "smr/messages.hpp"

namespace qopt::smr {

struct ReplicaStats {
  std::uint64_t commands_applied = 0;
  std::uint64_t leadership_changes = 0;
  std::uint64_t slots_recovered = 0;   // re-proposed during phase 1
  std::uint64_t prepare_rejections = 0;  // ballot out-bid; re-prepared higher
};

class Replica {
 public:
  using Net = sim::Network<Message>;
  /// Called exactly once per command, in log order.
  using ApplyFn = std::function<void(std::uint64_t slot, const Command&)>;

  Replica(sim::Simulator& sim, Net& net, sim::FailureDetector& fd,
          std::uint32_t index, std::uint32_t group_size, ApplyFn apply);

  void on_message(const sim::NodeId& from, const Message& msg);

  /// Submits a command for replication. Any replica accepts submissions;
  /// non-leaders forward to their current leader. Commands are buffered
  /// across leadership changes until chosen.
  void submit(Command command);

  void crash();
  /// Crash-recovery: rejoins with its durable acceptor/learner state (the
  /// volatile pending queue and any leadership were lost at crash time).
  void restart();
  bool crashed() const noexcept { return crashed_; }

  bool is_leader() const;
  std::uint32_t index() const noexcept { return index_; }
  std::uint64_t applied_upto() const noexcept { return next_to_apply_; }
  const std::vector<Command>& applied_log() const noexcept {
    return applied_log_;
  }
  const ReplicaStats& stats() const noexcept { return stats_; }

  /// Reacts to failure-detector output; wired by the group (also invoked
  /// directly by tests).
  void reevaluate_leadership();

 private:
  struct SlotState {
    std::uint64_t accepted_ballot = 0;
    Command accepted_command;
    bool has_accepted = false;
    bool chosen = false;
    Command chosen_command;
    // Leader-side phase-2 state for this replica's own proposal.
    Command proposed_command;
    std::set<std::uint32_t> accepted_from;
  };

  std::uint32_t leader_index() const;
  void start_leadership();
  void handle_prepare(const sim::NodeId& from, const Prepare& msg);
  void handle_promise(const sim::NodeId& from, const Promise& msg);
  void handle_accept(const sim::NodeId& from, const Accept& msg);
  void handle_accepted(const sim::NodeId& from, const Accepted& msg);
  void handle_learn(const Learn& msg);
  void handle_prepare_nack(const PrepareNack& msg);
  void propose(std::uint64_t slot, Command command);
  void propose_pending();
  void choose(std::uint64_t slot, const Command& command);
  void try_apply();
  void broadcast(const Message& msg);
  std::uint32_t majority() const { return group_size_ / 2 + 1; }

  sim::Simulator& sim_;
  Net& net_;
  sim::FailureDetector& fd_;
  std::uint32_t index_;
  std::uint32_t group_size_;
  ApplyFn apply_;
  bool crashed_ = false;

  // Acceptor state.
  std::uint64_t promised_ballot_ = 0;
  std::map<std::uint64_t, SlotState> slots_;

  // Leader state.
  std::uint64_t term_ = 0;
  std::uint64_t my_ballot_ = 0;
  bool leading_ = false;        // completed phase 1 for my_ballot_
  bool preparing_ = false;      // phase 1 in flight
  std::set<std::uint32_t> promises_from_;
  std::vector<Promise::AcceptedEntry> promised_entries_;
  std::uint64_t next_slot_ = 0;
  std::deque<Command> pending_;  // submitted, not yet proposed

  // Learner state.
  std::uint64_t next_to_apply_ = 0;
  std::vector<Command> applied_log_;
  std::unordered_set<std::uint64_t> applied_ids_;

  ReplicaStats stats_;
};

}  // namespace qopt::smr
