// Convenience wiring for a state-machine-replication group, plus the
// replicated configuration store: the Reconfiguration Manager's canonical
// quorum state (FullConfig) expressed as a deterministic state machine over
// the replicated log of QuorumChange commands. With this, the component the
// paper treats as logically centralized survives minority replica crashes
// with an identical configuration history on every surviving replica.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "kv/quorum.hpp"
#include "kv/types.hpp"
#include "sim/failure_detector.hpp"
#include "sim/network.hpp"
#include "sim/simulator.hpp"
#include "smr/messages.hpp"
#include "smr/replica.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"

namespace qopt::smr {

struct GroupOptions {
  std::uint32_t replicas = 3;
  sim::LatencyModel network{microseconds(200), microseconds(200)};
  Duration fd_detection_delay = milliseconds(300);
  std::uint64_t seed = 0x5312;
};

/// A self-contained MultiPaxos group over its own simulated network.
class Group {
 public:
  /// `apply` is invoked on every replica for every decided command (tests
  /// typically capture the replica-local state machines separately through
  /// each Replica's applied_log()).
  Group(sim::Simulator& sim, const GroupOptions& options,
        Replica::ApplyFn apply);

  /// Submits through a given replica (tests exercise both leader and
  /// follower submission paths).
  void submit(std::uint32_t via_replica, Command command);

  void crash_replica(std::uint32_t index);
  Replica& replica(std::uint32_t index) { return *replicas_.at(index); }
  std::uint32_t size() const {
    return static_cast<std::uint32_t>(replicas_.size());
  }
  /// Index of the current (failure-detector-designated) leader.
  std::uint32_t leader() const;
  sim::FailureDetector& failure_detector() noexcept { return fd_; }

 private:
  sim::Simulator& sim_;
  Rng rng_;
  sim::Network<Message> net_;
  sim::FailureDetector fd_;
  std::vector<std::unique_ptr<Replica>> replicas_;
};

/// Deterministic state machine folding QuorumChange commands into a
/// FullConfig — the replicated equivalent of ReconfigManager::commit's
/// canonical-state update.
class ConfigStateMachine {
 public:
  explicit ConfigStateMachine(kv::QuorumConfig initial, int replication);

  void apply(const Command& command);

  const kv::FullConfig& config() const noexcept { return config_; }
  std::uint64_t applied() const noexcept { return applied_; }

 private:
  kv::FullConfig config_;
  int replication_;
  std::uint64_t applied_ = 0;
};

}  // namespace qopt::smr
