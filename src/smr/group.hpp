// Convenience wiring for a state-machine-replication group, plus the
// replicated configuration store: the Reconfiguration Manager's canonical
// quorum state (FullConfig) expressed as a deterministic state machine over
// the replicated log of QuorumChange commands. With this, the component the
// paper treats as logically centralized survives minority replica crashes
// with an identical configuration history on every surviving replica.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "kv/quorum.hpp"
#include "kv/types.hpp"
#include "sim/failure_detector.hpp"
#include "sim/network.hpp"
#include "sim/simulator.hpp"
#include "smr/messages.hpp"
#include "smr/replica.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"

namespace qopt::smr {

struct GroupOptions {
  std::uint32_t replicas = 3;
  sim::LatencyModel network{microseconds(200), microseconds(200)};
  Duration fd_detection_delay = milliseconds(300);
  std::uint64_t seed = 0x5312;
};

/// A self-contained MultiPaxos group over its own simulated network.
class Group {
 public:
  /// Per-replica apply hook: which replica applied, plus the slot/command.
  using IndexedApplyFn =
      std::function<void(std::uint32_t replica, std::uint64_t slot,
                         const Command& command)>;

  /// `apply` is invoked on every replica for every decided command (tests
  /// typically capture the replica-local state machines separately through
  /// each Replica's applied_log()).
  Group(sim::Simulator& sim, const GroupOptions& options,
        Replica::ApplyFn apply);
  /// Replaces the apply hook with one that learns which replica applied —
  /// the replicated RM dispatches each decision to that replica's state
  /// machine. Must be installed before any submission.
  void set_indexed_apply(IndexedApplyFn apply) { apply_ = std::move(apply); }

  /// Submits through a given replica (tests exercise both leader and
  /// follower submission paths). The group remembers the command until some
  /// replica applies it, and resubmits through the current leader on every
  /// leadership change: a command handed to a replica that dies before
  /// proposing is re-driven instead of silently lost (command-id dedup makes
  /// the duplicates harmless).
  void submit(std::uint32_t via_replica, Command command);

  void crash_replica(std::uint32_t index);
  /// Crash-recovery counterpart of crash_replica: the replica rejoins with
  /// its durable state and in-flight unapplied commands are re-driven.
  void restart_replica(std::uint32_t index);
  Replica& replica(std::uint32_t index) { return *replicas_.at(index); }
  std::uint32_t size() const {
    return static_cast<std::uint32_t>(replicas_.size());
  }
  /// Index of the current (failure-detector-designated) leader.
  std::uint32_t leader() const;
  sim::FailureDetector& failure_detector() noexcept { return fd_; }
  sim::Network<Message>& network() noexcept { return net_; }
  /// Commands re-driven through a new leader after a leadership change.
  std::uint64_t resubmissions() const noexcept { return resubmissions_; }
  /// Commands submitted but not yet applied by any replica.
  std::size_t unacked() const noexcept { return unacked_.size(); }

 private:
  void wire(const GroupOptions& options);
  void resubmit_unacked();

  sim::Simulator& sim_;
  Rng rng_;
  sim::Network<Message> net_;
  sim::FailureDetector fd_;
  IndexedApplyFn apply_;
  std::vector<std::unique_ptr<Replica>> replicas_;

  // Submitted-but-not-yet-applied commands, keyed by command id; erased on
  // the first apply anywhere. Insertion-ordered ids keep resubmission order
  // deterministic.
  std::unordered_map<std::uint64_t, Command> unacked_;
  std::vector<std::uint64_t> unacked_order_;
  std::uint64_t resubmissions_ = 0;
};

/// Deterministic state machine folding QuorumChange commands into a
/// FullConfig — the replicated equivalent of ReconfigManager::commit's
/// canonical-state update.
class ConfigStateMachine {
 public:
  explicit ConfigStateMachine(kv::QuorumConfig initial, int replication);

  void apply(const Command& command);

  const kv::FullConfig& config() const noexcept { return config_; }
  std::uint64_t applied() const noexcept { return applied_; }

 private:
  kv::FullConfig config_;
  int replication_;
  std::uint64_t applied_ = 0;
};

}  // namespace qopt::smr
