// Wire protocol for the state-machine-replication substrate (src/smr).
//
// The SMR group runs on its own Network<smr::Message> instance: the control
// plane's replication traffic is independent of the data-plane protocol.
#pragma once

#include <cstdint>
#include <variant>
#include <vector>

#include "kv/quorum.hpp"

namespace qopt::smr {

/// A replicated command. Q-OPT's control plane replicates quorum
/// reconfiguration decisions; `id` provides exactly-once application across
/// leader re-proposals.
struct Command {
  std::uint64_t id = 0;
  kv::QuorumChange change;
};

/// Phase-1a: a candidate leader claims `ballot` for all slots >= low_slot.
struct Prepare {
  std::uint64_t ballot = 0;
  std::uint64_t low_slot = 0;
};

/// Phase-1b: acceptor's promise, carrying every accepted-but-possibly-
/// unchosen entry at or above the prepare's low slot.
struct Promise {
  std::uint64_t ballot = 0;
  struct AcceptedEntry {
    std::uint64_t slot = 0;
    std::uint64_t ballot = 0;
    Command command;
  };
  std::vector<AcceptedEntry> accepted;
};

/// Phase-2a: proposal for one slot.
struct Accept {
  std::uint64_t ballot = 0;
  std::uint64_t slot = 0;
  Command command;
};

/// Phase-2b: acceptance.
struct Accepted {
  std::uint64_t ballot = 0;
  std::uint64_t slot = 0;
};

/// Learn/commit notification (sent once a slot is chosen).
struct Learn {
  std::uint64_t slot = 0;
  Command command;
};

/// Follower-to-leader command forwarding.
struct Forward {
  Command command;
};

using Message =
    std::variant<Prepare, Promise, Accept, Accepted, Learn, Forward>;

}  // namespace qopt::smr
