// Wire protocol for the state-machine-replication substrate (src/smr).
//
// The SMR group runs on its own Network<smr::Message> instance: the control
// plane's replication traffic is independent of the data-plane protocol.
#pragma once

#include <cstdint>
#include <variant>
#include <vector>

#include "kv/quorum.hpp"

namespace qopt::smr {

/// Log-entry kinds for the replicated Reconfiguration Manager. Plain
/// quorum-change replication (kRequest, the zero default) predates the
/// other kinds, so legacy commands decode unchanged.
enum class RmLogKind : std::uint8_t {
  kRequest = 0,  // enqueue a validated reconfiguration request
  kEpoch = 1,    // advance the canonical epoch counter by one
  kCommit = 2,   // fold the queue head into the canonical configuration
};

/// A replicated command. Q-OPT's control plane replicates quorum
/// reconfiguration decisions; `id` provides exactly-once application across
/// leader re-proposals. `origin`/`seq` identify the requester (so completion
/// callbacks survive RM leader failover) and `cfno` fences kCommit entries
/// against stale-leader duplicates.
struct Command {
  std::uint64_t id = 0;
  kv::QuorumChange change;
  RmLogKind kind = RmLogKind::kRequest;
  std::uint32_t origin = 0;
  std::uint64_t seq = 0;
  std::uint64_t cfno = 0;
};

/// Phase-1a: a candidate leader claims `ballot` for all slots >= low_slot.
struct Prepare {
  std::uint64_t ballot = 0;
  std::uint64_t low_slot = 0;
};

/// Phase-1b: acceptor's promise, carrying every accepted-but-possibly-
/// unchosen entry at or above the prepare's low slot.
struct Promise {
  std::uint64_t ballot = 0;
  struct AcceptedEntry {
    std::uint64_t slot = 0;
    std::uint64_t ballot = 0;
    Command command;
  };
  std::vector<AcceptedEntry> accepted;
};

/// Phase-2a: proposal for one slot.
struct Accept {
  std::uint64_t ballot = 0;
  std::uint64_t slot = 0;
  Command command;
};

/// Phase-2b: acceptance.
struct Accepted {
  std::uint64_t ballot = 0;
  std::uint64_t slot = 0;
};

/// Learn/commit notification (sent once a slot is chosen).
struct Learn {
  std::uint64_t slot = 0;
  Command command;
};

/// Follower-to-leader command forwarding.
struct Forward {
  Command command;
};

/// Phase-1 rejection: the acceptor already promised `promised` > ballot.
/// Without it a candidate whose durable term lags the group (a replica that
/// crashed before ever leading) would wait forever on a majority of
/// promises that can never arrive.
struct PrepareNack {
  std::uint64_t ballot = 0;    // the rejected prepare's ballot
  std::uint64_t promised = 0;  // what the acceptor is holding out for
};

using Message = std::variant<Prepare, Promise, Accept, Accepted, Learn,
                             Forward, PrepareNack>;

}  // namespace qopt::smr
