#include "kv/types.hpp"
#include "kv/quorum.hpp"
#include "sim/ids.hpp"
#include "sim/simulator.hpp"
#include "smr/group.hpp"
#include "smr/messages.hpp"
#include "smr/replica.hpp"

#include <algorithm>

namespace qopt::smr {

namespace {
sim::NodeId replica_node(std::uint32_t index) {
  return sim::NodeId{sim::NodeKind::kStorage, index};
}
}  // namespace

Group::Group(sim::Simulator& sim, const GroupOptions& options,
             Replica::ApplyFn apply)
    : sim_(sim),
      rng_(options.seed),
      net_(sim, options.network, rng_.fork(1)),
      fd_(sim, options.fd_detection_delay) {
  if (apply) {
    apply_ = [fn = std::move(apply)](std::uint32_t, std::uint64_t slot,
                                     const Command& command) {
      fn(slot, command);
    };
  }
  wire(options);
}

void Group::wire(const GroupOptions& options) {
  for (std::uint32_t i = 0; i < options.replicas; ++i) {
    // The first apply anywhere retires the command from the resubmit set;
    // the user hook then sees every (replica, slot, command) decision.
    auto apply = [this, i](std::uint64_t slot, const Command& command) {
      unacked_.erase(command.id);
      if (apply_) apply_(i, slot, command);
    };
    replicas_.push_back(
        std::make_unique<Replica>(sim_, net_, fd_, i, options.replicas,
                                  std::move(apply)));
    Replica* raw = replicas_.back().get();
    net_.register_node(replica_node(i),
                       [raw](const sim::NodeId& from, const Message& msg) {
                         raw->on_message(from, msg);
                       });
  }
  fd_.subscribe([this](const sim::NodeId&, bool) {
    for (auto& replica : replicas_) replica->reevaluate_leadership();
    resubmit_unacked();
  });
}

void Group::submit(std::uint32_t via_replica, Command command) {
  if (unacked_.emplace(command.id, command).second) {
    unacked_order_.push_back(command.id);
  }
  Replica* via = replicas_.at(via_replica).get();
  // A submission handed to a crashed replica would vanish silently; route
  // it through the current leader instead (the resubmit path would recover
  // it anyway, but only after the next leadership change).
  if (via->crashed()) via = replicas_.at(leader()).get();
  via->submit(std::move(command));
}

void Group::resubmit_unacked() {
  if (unacked_.empty()) return;
  // Compact the ordering vector (ids applied since the last sweep), then
  // re-drive survivors through the current leader. Replica-side command-id
  // dedup makes re-driving an in-flight (not actually lost) command a
  // harmless duplicate.
  std::size_t keep = 0;
  for (const std::uint64_t id : unacked_order_) {
    if (unacked_.contains(id)) unacked_order_[keep++] = id;
  }
  unacked_order_.resize(keep);
  Replica& lead = *replicas_.at(leader());
  if (lead.crashed()) return;  // no live leader: wait for the next change
  for (const std::uint64_t id : unacked_order_) {
    ++resubmissions_;
    lead.submit(unacked_.at(id));
  }
}

void Group::crash_replica(std::uint32_t index) {
  replicas_.at(index)->crash();
  fd_.node_crashed(replica_node(index));
}

void Group::restart_replica(std::uint32_t index) {
  if (!replicas_.at(index)->crashed()) return;
  replicas_.at(index)->restart();
  fd_.node_recovered(replica_node(index));
}

std::uint32_t Group::leader() const {
  for (std::uint32_t i = 0; i < replicas_.size(); ++i) {
    if (!fd_.suspects(replica_node(i))) return i;
  }
  return 0;
}

// --------------------------------------------------- ConfigStateMachine

ConfigStateMachine::ConfigStateMachine(kv::QuorumConfig initial,
                                       int replication)
    : replication_(replication) {
  config_.default_q = initial;
  config_.read_q_history.emplace_back(0, initial.read_q);
}

void ConfigStateMachine::apply(const Command& command) {
  // Control entries of the replicated RM (epoch bumps, commit fences) carry
  // no quorum change; only kRequest entries mutate the folded config.
  if (command.kind != RmLogKind::kRequest) return;
  const kv::QuorumChange& change = command.change;
  // Reject invalid strategies deterministically (every replica agrees),
  // through the same centralized check the RM uses.
  if (!kv::validate_change(change, replication_)) return;
  if (change.is_global) {
    config_.default_q = change.global;
  } else {
    for (const auto& [oid, q] : change.overrides) {
      bool replaced = false;
      for (auto& [existing, existing_q] : config_.overrides) {
        if (existing == oid) {
          existing_q = q;
          replaced = true;
          break;
        }
      }
      if (!replaced) config_.overrides.emplace_back(oid, q);
    }
  }
  config_.cfno += 1;
  int max_r = config_.default_q.read_footprint();
  for (const auto& [oid, q] : config_.overrides) {
    max_r = std::max(max_r, q.read_footprint());
  }
  config_.read_q_history.emplace_back(config_.cfno, max_r);
  ++applied_;
}

}  // namespace qopt::smr
