#include "kv/types.hpp"
#include "kv/quorum.hpp"
#include "sim/ids.hpp"
#include "sim/simulator.hpp"
#include "smr/group.hpp"
#include "smr/messages.hpp"
#include "smr/replica.hpp"

#include <algorithm>

namespace qopt::smr {

namespace {
sim::NodeId replica_node(std::uint32_t index) {
  return sim::NodeId{sim::NodeKind::kStorage, index};
}
}  // namespace

Group::Group(sim::Simulator& sim, const GroupOptions& options,
             Replica::ApplyFn apply)
    : sim_(sim),
      rng_(options.seed),
      net_(sim, options.network, rng_.fork(1)),
      fd_(sim, options.fd_detection_delay) {
  for (std::uint32_t i = 0; i < options.replicas; ++i) {
    replicas_.push_back(
        std::make_unique<Replica>(sim_, net_, fd_, i, options.replicas,
                                  apply));
    Replica* raw = replicas_.back().get();
    net_.register_node(replica_node(i),
                       [raw](const sim::NodeId& from, const Message& msg) {
                         raw->on_message(from, msg);
                       });
  }
  fd_.subscribe([this](const sim::NodeId&, bool) {
    for (auto& replica : replicas_) replica->reevaluate_leadership();
  });
}

void Group::submit(std::uint32_t via_replica, Command command) {
  replicas_.at(via_replica)->submit(std::move(command));
}

void Group::crash_replica(std::uint32_t index) {
  replicas_.at(index)->crash();
  fd_.node_crashed(replica_node(index));
}

std::uint32_t Group::leader() const {
  for (std::uint32_t i = 0; i < replicas_.size(); ++i) {
    if (!fd_.suspects(replica_node(i))) return i;
  }
  return 0;
}

// --------------------------------------------------- ConfigStateMachine

ConfigStateMachine::ConfigStateMachine(kv::QuorumConfig initial,
                                       int replication)
    : replication_(replication) {
  config_.default_q = initial;
  config_.read_q_history.emplace_back(0, initial.read_q);
}

void ConfigStateMachine::apply(const Command& command) {
  const kv::QuorumChange& change = command.change;
  // Reject invalid strategies deterministically (every replica agrees),
  // through the same centralized check the RM uses.
  if (!kv::validate_change(change, replication_)) return;
  if (change.is_global) {
    config_.default_q = change.global;
  } else {
    for (const auto& [oid, q] : change.overrides) {
      bool replaced = false;
      for (auto& [existing, existing_q] : config_.overrides) {
        if (existing == oid) {
          existing_q = q;
          replaced = true;
          break;
        }
      }
      if (!replaced) config_.overrides.emplace_back(oid, q);
    }
  }
  config_.cfno += 1;
  int max_r = config_.default_q.read_footprint();
  for (const auto& [oid, q] : config_.overrides) {
    max_r = std::max(max_r, q.read_footprint());
  }
  config_.read_q_history.emplace_back(config_.cfno, max_r);
  ++applied_;
}

}  // namespace qopt::smr
