#include "core/cluster.hpp"
#include "core/experiment.hpp"
#include "kv/types.hpp"
#include "ml/dataset.hpp"
#include "obs/report.hpp"
#include "oracle/oracle.hpp"
#include "util/time.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace qopt {

ExperimentResult run_static(const ExperimentSpec& spec,
                            kv::QuorumConfig quorum) {
  if (!spec.workload) {
    throw std::invalid_argument("run_static: spec has no workload");
  }
  ClusterConfig config = spec.cluster;
  config.initial_quorum = quorum;
  Cluster cluster(config);
  cluster.preload(spec.preload_objects, spec.preload_size);
  cluster.set_workload(spec.workload);

  cluster.run_for(spec.warmup);
  const Time t0 = cluster.now();
  cluster.run_for(spec.measure);
  const Time t1 = cluster.now();

  const obs::RunReport report = cluster.report(t0, t1);
  ExperimentResult result;
  result.quorum = quorum;
  result.throughput_ops = report.throughput_ops;
  result.ops = report.ops;
  result.read_p50_ms = report.read_latency.p50_ms;
  result.read_p99_ms = report.read_latency.p99_ms;
  result.write_p50_ms = report.write_latency.p50_ms;
  result.write_p99_ms = report.write_latency.p99_ms;
  result.consistent = cluster.checker().clean();
  return result;
}

std::vector<ExperimentResult> sweep_quorums(const ExperimentSpec& spec) {
  const int n = spec.cluster.replication;
  std::vector<ExperimentResult> results;
  results.reserve(static_cast<std::size_t>(n));
  for (int w = 1; w <= n; ++w) {
    results.push_back(run_static(spec, oracle::grid_from_write_quorum(w, n)));
  }
  return results;
}

int optimal_write_quorum(const ExperimentSpec& spec) {
  const std::vector<ExperimentResult> results = sweep_quorums(spec);
  const auto best = std::max_element(
      results.begin(), results.end(),
      [](const ExperimentResult& a, const ExperimentResult& b) {
        return a.throughput_ops < b.throughput_ops;
      });
  return best->quorum.write_q;
}

CorpusPoint measure_corpus_point(const ExperimentSpec& base,
                                 double write_ratio,
                                 std::uint64_t object_bytes) {
  ExperimentSpec spec = base;
  spec.preload_size = object_bytes;
  spec.workload = workload::sweep_point(write_ratio, object_bytes,
                                        spec.preload_objects);
  const std::vector<ExperimentResult> results = sweep_quorums(spec);

  CorpusPoint point;
  point.write_ratio = write_ratio;
  point.object_bytes = object_bytes;
  point.best_throughput = 0;
  point.worst_throughput = results.front().throughput_ops;
  double total_ops = 0;
  double measure_s = to_seconds(spec.measure);
  for (const ExperimentResult& result : results) {
    if (result.throughput_ops > point.best_throughput) {
      point.best_throughput = result.throughput_ops;
      point.optimal_w = result.quorum.write_q;
    }
    point.worst_throughput =
        std::min(point.worst_throughput, result.throughput_ops);
    total_ops += static_cast<double>(result.ops);
  }
  // Features as the Oracle would observe them at runtime: the realized
  // write ratio equals the generator parameter in expectation; the observed
  // rate is the average over the sweep.
  point.features.write_ratio = write_ratio;
  point.features.avg_size_kib =
      static_cast<double>(object_bytes) / 1024.0;
  point.features.ops_per_sec =
      measure_s > 0 ? total_ops / (static_cast<double>(results.size()) *
                                   measure_s)
                    : 0;
  return point;
}

ml::Dataset corpus_to_dataset(const std::vector<CorpusPoint>& corpus) {
  ml::Dataset data(oracle::WorkloadFeatures::names());
  for (const CorpusPoint& point : corpus) {
    const std::vector<double> row = point.features.to_vector();
    data.add_row(row, point.optimal_w);
  }
  return data;
}

std::vector<CorpusPoint> generate_corpus(
    const ExperimentSpec& base, const std::vector<double>& write_ratios,
    const std::vector<std::uint64_t>& object_sizes) {
  std::vector<CorpusPoint> corpus;
  corpus.reserve(write_ratios.size() * object_sizes.size());
  for (const double ratio : write_ratios) {
    for (const std::uint64_t size : object_sizes) {
      corpus.push_back(measure_corpus_point(base, ratio, size));
    }
  }
  return corpus;
}

const std::vector<double>& paper_write_ratios() {
  static const std::vector<double> kRatios = {
      0.01, 0.05, 0.10, 0.15, 0.20, 0.25, 0.30, 0.35, 0.40,
      0.45, 0.50, 0.60, 0.70, 0.80, 0.90, 0.95, 0.99};
  return kRatios;
}

const std::vector<std::uint64_t>& paper_object_sizes() {
  static const std::vector<std::uint64_t> kSizes = {
      1 << 10, 2 << 10, 4 << 10,  8 << 10,  16 << 10,
      32 << 10, 64 << 10, 128 << 10, 256 << 10, 512 << 10};
  return kSizes;
}

void save_corpus(const std::string& path,
                 const std::vector<CorpusPoint>& corpus) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("save_corpus: cannot open " + path);
  out << "write_ratio,object_bytes,optimal_w,best_tput,worst_tput,"
         "f_write_ratio,f_avg_size_kib,f_ops_per_sec\n";
  for (const CorpusPoint& point : corpus) {
    out << point.write_ratio << ',' << point.object_bytes << ','
        << point.optimal_w << ',' << point.best_throughput << ','
        << point.worst_throughput << ',' << point.features.write_ratio << ','
        << point.features.avg_size_kib << ',' << point.features.ops_per_sec
        << '\n';
  }
}

std::vector<CorpusPoint> load_corpus(const std::string& path) {
  std::ifstream in(path);
  if (!in) return {};
  std::vector<CorpusPoint> corpus;
  std::string line;
  std::getline(in, line);  // header
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream row(line);
    CorpusPoint point;
    char comma;
    row >> point.write_ratio >> comma >> point.object_bytes >> comma >>
        point.optimal_w >> comma >> point.best_throughput >> comma >>
        point.worst_throughput >> comma >> point.features.write_ratio >>
        comma >> point.features.avg_size_kib >> comma >>
        point.features.ops_per_sec;
    if (row.fail()) return {};  // corrupt cache: force regeneration
    corpus.push_back(point);
  }
  return corpus;
}

std::vector<CorpusPoint> load_or_generate_corpus(
    const std::string& cache_path, const ExperimentSpec& base) {
  std::vector<CorpusPoint> corpus = load_corpus(cache_path);
  const std::size_t expected =
      paper_write_ratios().size() * paper_object_sizes().size();
  if (corpus.size() == expected) return corpus;
  std::fprintf(stderr,
               "[corpus] measuring %zu workloads x 5 quorum configs "
               "(cached at %s for later runs)...\n",
               expected, cache_path.c_str());
  corpus = generate_corpus(base, paper_write_ratios(), paper_object_sizes());
  save_corpus(cache_path, corpus);
  return corpus;
}

}  // namespace qopt
