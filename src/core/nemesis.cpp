#include "core/cluster.hpp"
#include "core/nemesis.hpp"
#include "kv/types.hpp"
#include "util/time.hpp"

#include <algorithm>
#include <array>

namespace qopt {

Nemesis::Nemesis(Cluster& cluster, const NemesisOptions& options)
    : cluster_(cluster), options_(options), rng_(options.seed ^ 0xBADC0DE) {}

void Nemesis::start() {
  if (running_) return;
  running_ = true;
  schedule_next();
}

void Nemesis::schedule_next() {
  const auto delay = static_cast<Duration>(
      rng_.exponential(static_cast<double>(options_.mean_interval)));
  cluster_.simulator().after(std::max<Duration>(delay, microseconds(1)),
                             [this] {
                               if (!running_) return;
                               fire();
                               schedule_next();
                             });
}

int Nemesis::pick_write_quorum() {
  // Liveness discipline: when storage crashes are enabled, every quorum the
  // nemesis installs (now or later) stays servable even after the allowed
  // number of crashes — W and R = N - W + 1 both <= N - max_storage_crashes.
  const int n = cluster_.config().replication;
  const int margin = options_.crash_storage > 0
                         ? static_cast<int>(options_.max_storage_crashes)
                         : 0;
  const int lo = std::min(n, 1 + margin);
  const int hi = std::max(lo, n - margin);
  return lo + static_cast<int>(rng_.next_below(
                  static_cast<std::uint64_t>(hi - lo + 1)));
}

namespace {
int max_quorum_dimension(const kv::FullConfig& state) {
  int m = std::max(state.default_q.read_q, state.default_q.write_q);
  for (const auto& [oid, q] : state.overrides) {
    m = std::max({m, q.read_q, q.write_q});
  }
  return m;
}
}  // namespace

void Nemesis::fire() {
  struct Choice {
    double weight;
    int kind;
  };
  const bool can_crash_proxy =
      proxies_crashed_ < options_.max_proxy_crashes &&
      proxies_crashed_ + 1 < cluster_.config().num_proxies;
  // A storage crash is only safe when every installed quorum (default and
  // overrides, which bounds the transition quorums of any in-flight
  // reconfiguration too) remains servable by each object's survivors.
  const bool can_crash_storage =
      storage_crashed_ < options_.max_storage_crashes &&
      max_quorum_dimension(cluster_.rm().config()) <=
          cluster_.config().replication -
              static_cast<int>(storage_crashed_) - 1;
  const std::array<Choice, 6> choices = {{
      {options_.reconfigure, 0},
      {options_.per_object_reconfigure, 1},
      {options_.false_suspicion, 2},
      {cluster_.config().heartbeat_fd ? options_.pause_heartbeats : 0.0, 3},
      {can_crash_proxy ? options_.crash_proxy : 0.0, 4},
      {can_crash_storage ? options_.crash_storage : 0.0, 5},
  }};
  double total = 0;
  for (const Choice& choice : choices) total += choice.weight;
  if (total <= 0) return;
  double pick = rng_.next_double() * total;
  int kind = 0;
  for (const Choice& choice : choices) {
    pick -= choice.weight;
    if (pick <= 0) {
      kind = choice.kind;
      break;
    }
  }

  const int n = cluster_.config().replication;
  switch (kind) {
    case 0: {
      ++stats_.reconfigurations;
      const int w = pick_write_quorum();
      cluster_.reconfigure({n - w + 1, w});
      break;
    }
    case 1: {
      ++stats_.per_object_reconfigurations;
      std::vector<std::pair<kv::ObjectId, kv::QuorumConfig>> overrides;
      const std::uint64_t count = 1 + rng_.next_below(4);
      for (std::uint64_t i = 0; i < count; ++i) {
        const int w = pick_write_quorum();
        overrides.emplace_back(rng_.next_below(1000),
                               kv::QuorumConfig{n - w + 1, w});
      }
      cluster_.reconfigure_objects(std::move(overrides));
      break;
    }
    case 2: {
      ++stats_.false_suspicions;
      const auto victim = static_cast<std::uint32_t>(
          rng_.next_below(cluster_.config().num_proxies));
      if (!cluster_.proxy(victim).crashed()) {
        cluster_.inject_false_suspicion(
            victim, 1 + static_cast<Duration>(rng_.next_below(
                        static_cast<std::uint64_t>(options_.max_suspicion))));
      }
      break;
    }
    case 3: {
      ++stats_.heartbeat_pauses;
      const auto victim = static_cast<std::uint32_t>(
          rng_.next_below(cluster_.config().num_proxies));
      if (!cluster_.proxy(victim).crashed()) {
        cluster_.proxy(victim).set_heartbeats_paused(true);
        const auto pause = 1 + static_cast<Duration>(rng_.next_below(
                               static_cast<std::uint64_t>(
                                   options_.max_suspicion)));
        cluster_.simulator().after(pause, [this, victim] {
          if (!cluster_.proxy(victim).crashed()) {
            cluster_.proxy(victim).set_heartbeats_paused(false);
          }
        });
      }
      break;
    }
    case 4: {
      // Crash a not-yet-crashed proxy (linear probe from a random start).
      const std::uint32_t proxies = cluster_.config().num_proxies;
      auto victim =
          static_cast<std::uint32_t>(rng_.next_below(proxies));
      for (std::uint32_t i = 0; i < proxies; ++i) {
        const std::uint32_t candidate = (victim + i) % proxies;
        if (!cluster_.proxy(candidate).crashed()) {
          ++stats_.proxy_crashes;
          ++proxies_crashed_;
          cluster_.crash_proxy(candidate);
          break;
        }
      }
      break;
    }
    case 5: {
      const std::uint32_t storage = cluster_.config().num_storage;
      auto victim =
          static_cast<std::uint32_t>(rng_.next_below(storage));
      for (std::uint32_t i = 0; i < storage; ++i) {
        const std::uint32_t candidate = (victim + i) % storage;
        if (!cluster_.storage(candidate).crashed()) {
          ++stats_.storage_crashes;
          ++storage_crashed_;
          cluster_.crash_storage(candidate);
          break;
        }
      }
      break;
    }
    default:
      break;
  }
}

}  // namespace qopt
