#include "core/cluster.hpp"
#include "core/nemesis.hpp"
#include "kv/quorum.hpp"
#include "kv/types.hpp"
#include "sim/ids.hpp"
#include "util/time.hpp"

#include <algorithm>
#include <array>

namespace qopt {

Nemesis::Nemesis(Cluster& cluster, const NemesisOptions& options)
    : cluster_(cluster), options_(options), rng_(options.seed ^ 0xBADC0DE) {
  auto& reg = cluster_.obs().registry();
  ins_.reconfigurations = &reg.counter("nemesis.reconfigurations");
  ins_.per_object_reconfigurations =
      &reg.counter("nemesis.per_object_reconfigurations");
  ins_.false_suspicions = &reg.counter("nemesis.false_suspicions");
  ins_.heartbeat_pauses = &reg.counter("nemesis.heartbeat_pauses");
  ins_.proxy_crashes = &reg.counter("nemesis.proxy_crashes");
  ins_.storage_crashes = &reg.counter("nemesis.storage_crashes");
  ins_.partitions = &reg.counter("nemesis.partitions");
  ins_.heals = &reg.counter("nemesis.heals");
  ins_.loss_bursts = &reg.counter("nemesis.loss_bursts");
  ins_.restarts = &reg.counter("nemesis.restarts");
  ins_.rm_crashes = &reg.counter("nemesis.rm_crashes");
  ins_.rm_partitions = &reg.counter("nemesis.rm_partitions");
}

void Nemesis::start() {
  if (running_) return;
  running_ = true;
  schedule_next();
}

void Nemesis::schedule_next() {
  const auto delay = static_cast<Duration>(
      rng_.exponential(static_cast<double>(options_.mean_interval)));
  cluster_.simulator().after(std::max<Duration>(delay, microseconds(1)),
                             [this] {
                               if (!running_) return;
                               fire();
                               schedule_next();
                             });
}

int Nemesis::pick_write_quorum() {
  // Liveness discipline: when storage crashes are enabled, every quorum the
  // nemesis installs (now or later) stays servable even after the allowed
  // number of crashes — W and R = N - W + 1 both <= N - max_storage_crashes.
  const int n = cluster_.config().replication;
  const int margin = options_.crash_storage > 0
                         ? static_cast<int>(options_.max_storage_crashes)
                         : 0;
  const int lo = std::min(n, 1 + margin);
  const int hi = std::max(lo, n - margin);
  return lo + static_cast<int>(rng_.next_below(
                  static_cast<std::uint64_t>(hi - lo + 1)));
}

namespace {
int max_quorum_dimension(const kv::FullConfig& state) {
  // Footprints bound the servability requirement for explicit strategies
  // too (any footprint-many live replicas can form the quorum).
  int m = std::max(state.default_q.read_footprint(),
                   state.default_q.write_footprint());
  for (const auto& [oid, q] : state.overrides) {
    m = std::max({m, q.read_footprint(), q.write_footprint()});
  }
  return m;
}
}  // namespace

void Nemesis::fire() {
  struct Choice {
    double weight;
    int kind;
  };
  const bool can_crash_proxy =
      proxies_crashed_ < options_.max_proxy_crashes &&
      proxies_crashed_ + 1 < cluster_.config().num_proxies;
  // A storage crash is only safe when every installed quorum (default and
  // overrides, which bounds the transition quorums of any in-flight
  // reconfiguration too) remains servable by each object's survivors.
  // An isolated (partitioned) storage node is as unavailable as a crashed
  // one for the duration of the partition, so it eats into the same margin.
  const int storage_unavailable =
      static_cast<int>(storage_crashed_) + (partition_active_ ? 1 : 0);
  const bool can_crash_storage =
      storage_crashed_ < options_.max_storage_crashes &&
      max_quorum_dimension(cluster_.rm().config()) <=
          cluster_.config().replication - storage_unavailable - 1;
  // Isolating a storage node is a temporary outage, so it obeys the same
  // quorum-servability margin as a crash; one partition at a time keeps the
  // isolated-set bookkeeping (and the margin math) trivial.
  const bool can_partition =
      !partition_active_ &&
      max_quorum_dimension(cluster_.rm().config()) <=
          cluster_.config().replication - storage_unavailable - 1;
  const bool can_restart = proxies_crashed_ > 0 || storage_crashed_ > 0;
  // An RM fault needs a replicated RM with at least 3 replicas (one outage
  // leaves the SMR group a live majority); one outage at a time keeps that
  // invariant under the auto-heal that follows every injection.
  const bool can_fault_rm = !rm_fault_active_ &&
                            cluster_.replicated_rm() != nullptr &&
                            cluster_.config().rm_replicas >= 3;
  // New kinds are appended with zero default weights: a legacy options
  // struct draws the exact same event sequence as before they existed.
  const std::array<Choice, 11> choices = {{
      {options_.reconfigure, 0},
      {options_.per_object_reconfigure, 1},
      {options_.false_suspicion, 2},
      {cluster_.config().heartbeat_fd ? options_.pause_heartbeats : 0.0, 3},
      {can_crash_proxy ? options_.crash_proxy : 0.0, 4},
      {can_crash_storage ? options_.crash_storage : 0.0, 5},
      {can_partition ? options_.partition : 0.0, 6},
      {burst_active_ ? 0.0 : options_.loss_burst, 7},
      {can_restart ? options_.restart : 0.0, 8},
      {can_fault_rm ? options_.rm_crash : 0.0, 9},
      {can_fault_rm ? options_.rm_partition : 0.0, 10},
  }};
  double total = 0;
  for (const Choice& choice : choices) total += choice.weight;
  if (total <= 0) return;
  double pick = rng_.next_double() * total;
  int kind = 0;
  for (const Choice& choice : choices) {
    pick -= choice.weight;
    if (pick <= 0) {
      kind = choice.kind;
      break;
    }
  }

  const int n = cluster_.config().replication;
  switch (kind) {
    case 0: {
      ++stats_.reconfigurations;
      ins_.reconfigurations->inc();
      const int w = pick_write_quorum();
      cluster_.reconfigure(kv::QuorumConfig::of(n - w + 1, w));
      break;
    }
    case 1: {
      ++stats_.per_object_reconfigurations;
      ins_.per_object_reconfigurations->inc();
      std::vector<std::pair<kv::ObjectId, kv::QuorumConfig>> overrides;
      const std::uint64_t count = 1 + rng_.next_below(4);
      for (std::uint64_t i = 0; i < count; ++i) {
        const int w = pick_write_quorum();
        overrides.emplace_back(rng_.next_below(1000),
                               kv::QuorumConfig::of(n - w + 1, w));
      }
      cluster_.reconfigure_objects(std::move(overrides));
      break;
    }
    case 2: {
      ++stats_.false_suspicions;
      ins_.false_suspicions->inc();
      const auto victim = static_cast<std::uint32_t>(
          rng_.next_below(cluster_.config().num_proxies));
      if (!cluster_.proxy(victim).crashed()) {
        cluster_.inject_false_suspicion(
            victim, 1 + static_cast<Duration>(rng_.next_below(
                        static_cast<std::uint64_t>(options_.max_suspicion))));
      }
      break;
    }
    case 3: {
      ++stats_.heartbeat_pauses;
      ins_.heartbeat_pauses->inc();
      const auto victim = static_cast<std::uint32_t>(
          rng_.next_below(cluster_.config().num_proxies));
      if (!cluster_.proxy(victim).crashed()) {
        cluster_.proxy(victim).set_heartbeats_paused(true);
        const auto pause = 1 + static_cast<Duration>(rng_.next_below(
                               static_cast<std::uint64_t>(
                                   options_.max_suspicion)));
        cluster_.simulator().after(pause, [this, victim] {
          if (!cluster_.proxy(victim).crashed()) {
            cluster_.proxy(victim).set_heartbeats_paused(false);
          }
        });
      }
      break;
    }
    case 4: {
      // Crash a not-yet-crashed proxy (linear probe from a random start).
      const std::uint32_t proxies = cluster_.config().num_proxies;
      auto victim =
          static_cast<std::uint32_t>(rng_.next_below(proxies));
      for (std::uint32_t i = 0; i < proxies; ++i) {
        const std::uint32_t candidate = (victim + i) % proxies;
        if (!cluster_.proxy(candidate).crashed()) {
          ++stats_.proxy_crashes;
          ins_.proxy_crashes->inc();
          ++proxies_crashed_;
          cluster_.crash_proxy(candidate);
          break;
        }
      }
      break;
    }
    case 5: {
      const std::uint32_t storage = cluster_.config().num_storage;
      auto victim =
          static_cast<std::uint32_t>(rng_.next_below(storage));
      for (std::uint32_t i = 0; i < storage; ++i) {
        const std::uint32_t candidate = (victim + i) % storage;
        if (!cluster_.storage(candidate).crashed()) {
          ++stats_.storage_crashes;
          ins_.storage_crashes->inc();
          ++storage_crashed_;
          cluster_.crash_storage(candidate);
          break;
        }
      }
      break;
    }
    case 6: {
      // Isolate a live storage node from the rest of the cluster; heal
      // after a bounded delay. One partition at a time (gated above).
      const std::uint32_t storage = cluster_.config().num_storage;
      auto victim = static_cast<std::uint32_t>(rng_.next_below(storage));
      bool found = false;
      for (std::uint32_t i = 0; i < storage; ++i) {
        const std::uint32_t candidate = (victim + i) % storage;
        if (!cluster_.storage(candidate).crashed()) {
          victim = candidate;
          found = true;
          break;
        }
      }
      if (!found) break;
      ++stats_.partitions;
      ins_.partitions->inc();
      partition_active_ = true;
      const std::uint64_t id =
          cluster_.isolate({sim::storage_id(victim)}, /*symmetric=*/true);
      const auto hold = 1 + static_cast<Duration>(rng_.next_below(
                            static_cast<std::uint64_t>(
                                options_.max_partition)));
      cluster_.simulator().after(hold, [this, id] {
        cluster_.heal_partition(id);
        partition_active_ = false;
        ++stats_.heals;
        ins_.heals->inc();
      });
      break;
    }
    case 7: {
      ++stats_.loss_bursts;
      ins_.loss_bursts->inc();
      burst_active_ = true;
      cluster_.network().set_loss(options_.burst_loss);
      const auto hold = 1 + static_cast<Duration>(rng_.next_below(
                            static_cast<std::uint64_t>(
                                options_.max_loss_burst)));
      cluster_.simulator().after(hold, [this] {
        // Back to the configured baseline, not necessarily zero.
        cluster_.network().set_loss(cluster_.config().net_loss);
        burst_active_ = false;
      });
      break;
    }
    case 8: {
      // Recover the first crashed node (proxies first): exercises the
      // crash-recovery path — durable state, NACK resync, FD recovery.
      ++stats_.restarts;
      ins_.restarts->inc();
      bool restarted = false;
      for (std::uint32_t i = 0; i < cluster_.config().num_proxies; ++i) {
        if (cluster_.proxy(i).crashed()) {
          cluster_.restart_proxy(i);
          --proxies_crashed_;
          restarted = true;
          break;
        }
      }
      if (!restarted) {
        for (std::uint32_t i = 0; i < cluster_.config().num_storage; ++i) {
          if (cluster_.storage(i).crashed()) {
            cluster_.restart_storage(i);
            --storage_crashed_;
            break;
          }
        }
      }
      break;
    }
    case 9: {
      // Crash the current RM leader mid-whatever-it-is-doing; the next
      // caught-up replica resumes any in-flight round from the replicated
      // log. Restart after a bounded hold so the group regains full size.
      ++stats_.rm_crashes;
      ins_.rm_crashes->inc();
      rm_fault_active_ = true;
      const std::uint32_t victim = cluster_.replicated_rm()->leader();
      cluster_.crash_rm(victim);
      const auto hold = 1 + static_cast<Duration>(rng_.next_below(
                            static_cast<std::uint64_t>(
                                options_.max_rm_outage)));
      cluster_.simulator().after(hold, [this, victim] {
        cluster_.restart_rm(victim);
        rm_fault_active_ = false;
      });
      break;
    }
    case 10: {
      // Isolate the RM leader on both planes (kv and the replication
      // network): it keeps driving into the void until the group deposes
      // it, exercising the stale-leader guards. Heal after a bounded hold.
      ++stats_.rm_partitions;
      ins_.rm_partitions->inc();
      rm_fault_active_ = true;
      const std::uint32_t victim = cluster_.replicated_rm()->leader();
      const std::uint64_t handle = cluster_.isolate_rm(victim);
      const auto hold = 1 + static_cast<Duration>(rng_.next_below(
                            static_cast<std::uint64_t>(
                                options_.max_rm_outage)));
      cluster_.simulator().after(hold, [this, handle] {
        cluster_.heal_rm_partition(handle);
        rm_fault_active_ = false;
      });
      break;
    }
    default:
      break;
  }
}

}  // namespace qopt
