// Experiment runner helpers shared by the benchmark harnesses, the Oracle
// trainer, and the integration tests: run a workload on a fresh cluster
// under a given static quorum, sweep all strict quorum configurations, find
// the measured-optimal configuration, and build the labelled corpus the
// decision-tree Oracle trains on.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/cluster.hpp"
#include "kv/types.hpp"
#include "ml/dataset.hpp"
#include "oracle/oracle.hpp"
#include "util/time.hpp"
#include "workload/workload.hpp"

namespace qopt {

struct ExperimentSpec {
  ClusterConfig cluster;
  std::shared_ptr<workload::OperationSource> workload;
  std::uint64_t preload_objects = 10'000;
  std::uint64_t preload_size = 4096;
  Duration warmup = seconds(2);
  Duration measure = seconds(10);
};

struct ExperimentResult {
  kv::QuorumConfig quorum;
  double throughput_ops = 0;     // ops/s over the measurement window
  double read_p50_ms = 0;
  double read_p99_ms = 0;
  double write_p50_ms = 0;
  double write_p99_ms = 0;
  std::uint64_t ops = 0;
  bool consistent = true;
};

/// Runs the workload on a fresh cluster pinned to the given static quorum.
ExperimentResult run_static(const ExperimentSpec& spec,
                            kv::QuorumConfig quorum);

/// Runs every strict configuration with R = N - W + 1, W in [1, N].
std::vector<ExperimentResult> sweep_quorums(const ExperimentSpec& spec);

/// The write-quorum size maximizing measured throughput for this spec.
int optimal_write_quorum(const ExperimentSpec& spec);

/// One labelled point of the Oracle's training corpus.
struct CorpusPoint {
  oracle::WorkloadFeatures features;
  int optimal_w = 0;
  double best_throughput = 0;
  double worst_throughput = 0;
  double write_ratio = 0;       // generator parameter (ground truth)
  std::uint64_t object_bytes = 0;
};

/// Measures one (write ratio, object size) workload: sweeps all quorums,
/// labels the point with the measured-optimal W, and extracts the observed
/// features the Oracle would see at runtime.
CorpusPoint measure_corpus_point(const ExperimentSpec& base,
                                 double write_ratio,
                                 std::uint64_t object_bytes);

/// Builds the decision-tree training set from measured corpus points.
/// Labels are write-quorum sizes (class = W).
ml::Dataset corpus_to_dataset(const std::vector<CorpusPoint>& corpus);

/// Generates the full sweep used by Figure 3 / the Oracle corpus:
/// `write_ratios` x `object_sizes` measured points.
std::vector<CorpusPoint> generate_corpus(
    const ExperimentSpec& base, const std::vector<double>& write_ratios,
    const std::vector<std::uint64_t>& object_sizes);

/// The write-ratio x object-size grid of the paper's ~170-workload study
/// (17 ratios x 10 sizes = 170 points).
const std::vector<double>& paper_write_ratios();
const std::vector<std::uint64_t>& paper_object_sizes();

/// CSV persistence so the (expensive) corpus is measured once and shared by
/// the Figure-3, tuning-impact and oracle-accuracy benches.
void save_corpus(const std::string& path,
                 const std::vector<CorpusPoint>& corpus);
std::vector<CorpusPoint> load_corpus(const std::string& path);  // {} if absent

/// Loads the corpus from `cache_path` or measures and caches it.
std::vector<CorpusPoint> load_or_generate_corpus(
    const std::string& cache_path, const ExperimentSpec& base);

}  // namespace qopt
