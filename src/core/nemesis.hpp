// Nemesis — a seeded chaos schedule for a running cluster.
//
// Repeatedly injects randomized events (reconfigurations, false suspicions,
// heartbeat pauses, proxy/storage crashes) at exponentially distributed
// intervals, within bounds that preserve the protocol's liveness
// assumptions (enough correct storage replicas for every quorum it
// installs). Property tests drive dense schedules through it and assert the
// consistency checker stays clean; the CLI exposes it via --nemesis.
#pragma once

#include <cstdint>

#include "core/cluster.hpp"
#include "obs/registry.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"

namespace qopt {

struct NemesisOptions {
  Duration mean_interval = milliseconds(500);
  // Relative event weights (0 disables the event kind).
  double reconfigure = 4.0;
  double per_object_reconfigure = 2.0;
  double false_suspicion = 2.0;
  double pause_heartbeats = 1.0;  // effective only in heartbeat-FD mode
  double crash_proxy = 0.5;
  double crash_storage = 0.5;
  // Link-fault events (all default 0 so legacy schedules draw the same
  // event sequence; enable explicitly or via --nemesis-partitions).
  double partition = 0.0;   // isolate one storage node, heal later
  double loss_burst = 0.0;  // temporarily raise the link-loss rate
  double restart = 0.0;     // recover a previously crashed node
  // RM-failover events (default 0; need a replicated RM and rm_replicas >= 3
  // so a single fault leaves the SMR group a live majority).
  double rm_crash = 0.0;      // crash the RM leader, restart after a hold
  double rm_partition = 0.0;  // isolate the RM leader, heal after a hold
  // Bounds preserving liveness: crashed storage shrinks the quorum range
  // the nemesis installs (W and R both kept <= N - crashed_storage).
  std::uint32_t max_proxy_crashes = 1;
  std::uint32_t max_storage_crashes = 1;
  Duration max_suspicion = seconds(2);
  Duration max_partition = seconds(2);
  Duration max_loss_burst = seconds(1);
  Duration max_rm_outage = seconds(2);  // RM crash/partition hold bound
  double burst_loss = 0.05;  // loss rate during a burst
  std::uint64_t seed = 1;
};

/// Legacy aggregate view; the authoritative instruments live in the shared
/// `obs::MetricRegistry` under `nemesis.*`.
struct NemesisStats {
  std::uint64_t reconfigurations = 0;
  std::uint64_t per_object_reconfigurations = 0;
  std::uint64_t false_suspicions = 0;
  std::uint64_t heartbeat_pauses = 0;
  std::uint64_t proxy_crashes = 0;
  std::uint64_t storage_crashes = 0;
  std::uint64_t partitions = 0;
  std::uint64_t heals = 0;  // partition heals (trails `partitions` by <= 1)
  std::uint64_t loss_bursts = 0;
  std::uint64_t restarts = 0;
  std::uint64_t rm_crashes = 0;
  std::uint64_t rm_partitions = 0;
  std::uint64_t total() const {
    return reconfigurations + per_object_reconfigurations +
           false_suspicions + heartbeat_pauses + proxy_crashes +
           storage_crashes + partitions + loss_bursts + restarts +
           rm_crashes + rm_partitions;
  }
};

class Nemesis {
 public:
  Nemesis(Cluster& cluster, const NemesisOptions& options);

  void start();
  void stop() noexcept { running_ = false; }
  const NemesisStats& stats() const noexcept { return stats_; }

 private:
  void schedule_next();
  void fire();
  int pick_write_quorum();

  Cluster& cluster_;
  NemesisOptions options_;
  Rng rng_;
  NemesisStats stats_;
  bool running_ = false;
  std::uint32_t proxies_crashed_ = 0;
  std::uint32_t storage_crashed_ = 0;
  bool partition_active_ = false;
  bool burst_active_ = false;
  bool rm_fault_active_ = false;  // one RM outage at a time keeps a majority

  // Mirrors of stats_ in the cluster's metric registry (`nemesis.*`), so
  // chaos schedules appear in RunReport snapshots alongside everything else.
  struct Instruments {
    obs::Counter* reconfigurations = nullptr;
    obs::Counter* per_object_reconfigurations = nullptr;
    obs::Counter* false_suspicions = nullptr;
    obs::Counter* heartbeat_pauses = nullptr;
    obs::Counter* proxy_crashes = nullptr;
    obs::Counter* storage_crashes = nullptr;
    obs::Counter* partitions = nullptr;
    obs::Counter* heals = nullptr;
    obs::Counter* loss_bursts = nullptr;
    obs::Counter* restarts = nullptr;
    obs::Counter* rm_crashes = nullptr;
    obs::Counter* rm_partitions = nullptr;
  };
  Instruments ins_;
};

}  // namespace qopt
