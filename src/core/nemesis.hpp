// Nemesis — a seeded chaos schedule for a running cluster.
//
// Repeatedly injects randomized events (reconfigurations, false suspicions,
// heartbeat pauses, proxy/storage crashes) at exponentially distributed
// intervals, within bounds that preserve the protocol's liveness
// assumptions (enough correct storage replicas for every quorum it
// installs). Property tests drive dense schedules through it and assert the
// consistency checker stays clean; the CLI exposes it via --nemesis.
#pragma once

#include <cstdint>

#include "core/cluster.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"

namespace qopt {

struct NemesisOptions {
  Duration mean_interval = milliseconds(500);
  // Relative event weights (0 disables the event kind).
  double reconfigure = 4.0;
  double per_object_reconfigure = 2.0;
  double false_suspicion = 2.0;
  double pause_heartbeats = 1.0;  // effective only in heartbeat-FD mode
  double crash_proxy = 0.5;
  double crash_storage = 0.5;
  // Bounds preserving liveness: crashed storage shrinks the quorum range
  // the nemesis installs (W and R both kept <= N - crashed_storage).
  std::uint32_t max_proxy_crashes = 1;
  std::uint32_t max_storage_crashes = 1;
  Duration max_suspicion = seconds(2);
  std::uint64_t seed = 1;
};

struct NemesisStats {
  std::uint64_t reconfigurations = 0;
  std::uint64_t per_object_reconfigurations = 0;
  std::uint64_t false_suspicions = 0;
  std::uint64_t heartbeat_pauses = 0;
  std::uint64_t proxy_crashes = 0;
  std::uint64_t storage_crashes = 0;
  std::uint64_t total() const {
    return reconfigurations + per_object_reconfigurations +
           false_suspicions + heartbeat_pauses + proxy_crashes +
           storage_crashes;
  }
};

class Nemesis {
 public:
  Nemesis(Cluster& cluster, const NemesisOptions& options);

  void start();
  void stop() noexcept { running_ = false; }
  const NemesisStats& stats() const noexcept { return stats_; }

 private:
  void schedule_next();
  void fire();
  int pick_write_quorum();

  Cluster& cluster_;
  NemesisOptions options_;
  Rng rng_;
  NemesisStats stats_;
  bool running_ = false;
  std::uint32_t proxies_crashed_ = 0;
  std::uint32_t storage_crashed_ = 0;
};

}  // namespace qopt
