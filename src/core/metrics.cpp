#include "core/metrics.hpp"
#include "proxy/proxy.hpp"
#include "util/time.hpp"

#include <algorithm>

namespace qopt {

Metrics::Metrics(Duration bucket_width)
    : bucket_width_(bucket_width > 0 ? bucket_width : milliseconds(100)),
      read_lat_(/*min_value=*/1000.0),   // 1us floor, values in ns
      write_lat_(/*min_value=*/1000.0) {}

void Metrics::record(const proxy::OpRecord& record) {
  ++total_ops_;
  const auto latency_ns = static_cast<double>(record.end - record.start);
  if (record.is_write) {
    ++total_writes_;
    write_lat_.record(latency_ns);
  } else {
    ++total_reads_;
    read_lat_.record(latency_ns);
  }
  const auto index = static_cast<std::size_t>(record.end / bucket_width_);
  if (index >= buckets_.size()) buckets_.resize(index + 1);
  Bucket& bucket = buckets_[index];
  ++bucket.ops;
  if (record.is_write) {
    ++bucket.writes;
  } else {
    ++bucket.reads;
  }
}

void Metrics::reset() {
  buckets_.clear();
  total_ops_ = total_reads_ = total_writes_ = 0;
  read_lat_.reset();
  write_lat_.reset();
}

std::uint64_t Metrics::ops_between(Time t0, Time t1) const {
  return sum_between(t0, t1, [](const Bucket& b) { return b.ops; });
}

std::uint64_t Metrics::reads_between(Time t0, Time t1) const {
  return sum_between(t0, t1, [](const Bucket& b) { return b.reads; });
}

std::uint64_t Metrics::writes_between(Time t0, Time t1) const {
  return sum_between(t0, t1, [](const Bucket& b) { return b.writes; });
}

double Metrics::throughput(Time t0, Time t1) const {
  const double span = to_seconds(t1 - t0);
  return span > 0 ? static_cast<double>(ops_between(t0, t1)) / span : 0.0;
}

}  // namespace qopt
