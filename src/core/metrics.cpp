#include "core/metrics.hpp"

#include <algorithm>

namespace qopt {

Metrics::Metrics(Duration bucket_width)
    : bucket_width_(bucket_width > 0 ? bucket_width : milliseconds(100)),
      read_lat_(/*min_value=*/1000.0),   // 1us floor, values in ns
      write_lat_(/*min_value=*/1000.0) {}

void Metrics::record(const proxy::OpRecord& record) {
  ++total_ops_;
  const auto latency_ns = static_cast<double>(record.end - record.start);
  if (record.is_write) {
    ++total_writes_;
    write_lat_.record(latency_ns);
  } else {
    ++total_reads_;
    read_lat_.record(latency_ns);
  }
  const auto index = static_cast<std::size_t>(record.end / bucket_width_);
  if (index >= buckets_.size()) buckets_.resize(index + 1);
  Bucket& bucket = buckets_[index];
  ++bucket.ops;
  if (record.is_write) {
    ++bucket.writes;
  } else {
    ++bucket.reads;
  }
}

void Metrics::reset() {
  buckets_.clear();
  total_ops_ = total_reads_ = total_writes_ = 0;
  read_lat_.reset();
  write_lat_.reset();
}

std::uint64_t Metrics::ops_between(Time t0, Time t1) const {
  if (t1 <= t0 || buckets_.empty()) return 0;
  const auto first = static_cast<std::size_t>(std::max<Time>(t0, 0) /
                                              bucket_width_);
  const auto last = static_cast<std::size_t>(std::max<Time>(t1 - 1, 0) /
                                             bucket_width_);
  std::uint64_t total = 0;
  for (std::size_t i = first; i <= last && i < buckets_.size(); ++i) {
    total += buckets_[i].ops;
  }
  return total;
}

double Metrics::throughput(Time t0, Time t1) const {
  const double span = to_seconds(t1 - t0);
  return span > 0 ? static_cast<double>(ops_between(t0, t1)) / span : 0.0;
}

}  // namespace qopt
