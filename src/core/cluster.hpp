// qopt::Cluster — the library's main entry point.
//
// Builds and wires a complete simulated deployment mirroring the paper's
// testbed: storage nodes, proxies, closed-loop clients, the Reconfiguration
// Manager, and (optionally) the Autonomic Manager with an Oracle. Exposes
// workload assignment, manual and autonomic reconfiguration, failure
// injection, metrics, and the Dynamic Quorum Consistency checker.
//
// Typical use (see examples/quickstart.cpp):
//
//   qopt::ClusterConfig config;           // defaults = the paper's testbed
//   qopt::Cluster cluster(config);
//   cluster.preload(100'000, 4096);
//   cluster.set_workload(qopt::workload::ycsb_b(100'000));
//   cluster.enable_autotuning({});        // Q-OPT self-tuning on
//   cluster.run_for(qopt::seconds(120));
//   double tput = cluster.metrics().throughput(0, cluster.now());
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "autonomic/autonomic_manager.hpp"
#include "core/client.hpp"
#include "core/consistency.hpp"
#include "core/metrics.hpp"
#include "kv/placement.hpp"
#include "kv/quorum.hpp"
#include "kv/replicator.hpp"
#include "kv/service_model.hpp"
#include "kv/storage_node.hpp"
#include "kv/types.hpp"
#include "obs/obs.hpp"
#include "obs/report.hpp"
#include "oracle/oracle.hpp"
#include "proxy/proxy.hpp"
#include "reconfig/reconfig_manager.hpp"
#include "reconfig/replicated_rm.hpp"
#include "sim/failure_detector.hpp"
#include "sim/heartbeat.hpp"
#include "sim/ids.hpp"
#include "sim/network.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"
#include "workload/workload.hpp"

namespace qopt {

struct ClusterConfig {
  // Topology — defaults follow the paper's testbed (Section 2.2): 10
  // storage VMs (2 cores each), 5 proxies, 10 client threads per proxy,
  // replication degree 5.
  std::uint32_t num_storage = 10;
  std::uint32_t num_proxies = 5;
  std::uint32_t clients_per_proxy = 10;
  int replication = 5;

  /// Initial quorum (must be strict: R + W > N).
  kv::QuorumConfig initial_quorum = kv::QuorumConfig::of(3, 3);

  kv::ServiceTimes storage_service;
  std::size_t storage_servers = 2;  // virtual cores per storage VM
  sim::LatencyModel network;
  // Link-fault plane (all off by default — the paper's reliable channels).
  // Probabilities are clamped to [0, 1]; see docs/ROBUSTNESS.md.
  double net_loss = 0.0;         // per-message drop probability
  double net_duplication = 0.0;  // per-message duplicate-delivery probability
  double net_delay_spike_p = 0.0;  // per-message latency-spike probability
  Duration net_delay_spike = milliseconds(50);  // extra latency per spike
  proxy::ProxyOptions proxy;  // `initial` is overwritten by initial_quorum
  Duration fd_detection_delay = milliseconds(500);
  /// > 1 replicates the Reconfiguration Manager: that many RM replicas run
  /// over a private SMR log, the leader role fails over on crashes and
  /// partitions (crash_rm / isolate_rm, nemesis rm_crash / rm_partition).
  /// 1 (default) keeps the paper's single logically-centralized RM — the
  /// two deployments are byte-identical when no RM faults are injected.
  std::uint32_t rm_replicas = 1;
  /// Detection delay of the RM group's private failure detector — the RM
  /// failover reaction time. Only meaningful when rm_replicas > 1.
  Duration rm_fd_detection_delay = milliseconds(300);
  /// When set, suspicion of proxies is derived from heartbeat traffic over
  /// the simulated network instead of the omniscient oracle: crash_proxy()
  /// stops the beats and the watcher suspects the proxy organically.
  bool heartbeat_fd = false;
  Duration heartbeat_interval = milliseconds(100);
  Duration heartbeat_timeout = milliseconds(500);
  Duration client_think_time = 0;
  /// > 0 enables client proxy failover after this unanswered-for duration.
  Duration client_retry_timeout = 0;
  bool check_consistency = true;
  /// Causal span tracing: 0 = off (default); N = record every Nth trace of
  /// each kind (1 = all). Selection is deterministic by trace id.
  std::uint32_t span_sample_every = 0;
  /// Hard cap on spans held by live (in-flight) traces; opens beyond it are
  /// refused and counted in `obs.spans_dropped`.
  std::size_t span_live_limit = 8192;
  /// Completed-trace ring size; evictions are counted in
  /// `obs.traces_evicted`.
  std::size_t span_completed_limit = 4096;
  /// Engine self-profiler: per-subsystem event/allocation/wall attribution
  /// plus queue telemetry, exported as the report's `profile` section. Has
  /// no effect on simulation behavior (exports stay byte-identical modulo
  /// that section); costs <2% events/sec when on, nothing when the
  /// QOPT_PROFILE CMake option compiled the instruments out.
  bool profile = false;
  std::uint64_t seed = 1;
};

class Cluster {
 public:
  explicit Cluster(const ClusterConfig& config);
  ~Cluster();

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  // -------------------------------------------------------------- workload

  /// Directly installs `count` objects of `size_bytes` on all replicas
  /// (bypassing the protocol), so reads have data from t=0 — the YCSB load
  /// phase. `first_oid` offsets the key range (tenant namespaces).
  void preload(std::uint64_t count, std::uint64_t size_bytes,
               kv::ObjectId first_oid = 0);

  /// Assigns the workload source to every client.
  void set_workload(std::shared_ptr<workload::OperationSource> source);
  /// Assigns a workload to the clients of one proxy (per-tenant setups).
  void set_workload_for_proxy(
      std::uint32_t proxy_index,
      std::shared_ptr<workload::OperationSource> source);
  void set_workload_for_client(
      std::uint32_t client_index,
      std::shared_ptr<workload::OperationSource> source);

  // ------------------------------------------------------------- execution

  /// Advances virtual time by `duration`, starting clients on first call.
  void run_for(Duration duration);
  Time now() const;

  /// Stops all clients (in-flight operations complete).
  void stop_clients();

  // -------------------------------------------------------- reconfiguration

  /// Manual store-wide reconfiguration via the RM (the paper's "Manual
  /// Reconfiguration" arrow in Figure 4). Completion is asynchronous.
  void reconfigure(kv::QuorumConfig quorum,
                   std::function<void(bool)> done = {});
  /// Store-wide install of a generalized quorum strategy (majority grid or
  /// explicit weighted quorum system) through the same two-phase protocol.
  void reconfigure_strategy(kv::QuorumStrategy strategy,
                            std::function<void(bool)> done = {});
  /// Manual per-object reconfiguration.
  void reconfigure_objects(
      std::vector<std::pair<kv::ObjectId, kv::QuorumConfig>> overrides,
      std::function<void(bool)> done = {});

  // ------------------------------------------------------------ autotuning

  /// Installs the Autonomic Manager with the given oracle and starts the
  /// optimization loop. The oracle must outlive the cluster (shared).
  void enable_autotuning(const autonomic::AutonomicOptions& options,
                         std::shared_ptr<oracle::Oracle> oracle);
  /// Convenience: autotuning with the built-in linear-rule oracle.
  void enable_autotuning(const autonomic::AutonomicOptions& options = {});

  /// Starts the anti-entropy replicator daemon (background replication of
  /// fresh versions to stale replicas, as Swift's object replicator does).
  void enable_anti_entropy(const kv::ReplicatorOptions& options = {});
  kv::Replicator* replicator() noexcept { return replicator_.get(); }

  // ------------------------------------------------------ failure injection

  void crash_proxy(std::uint32_t index);
  void crash_storage(std::uint32_t index);
  /// Crash-recovery: the node rejoins with its durable state (no-ops when
  /// not crashed). The failure detector learns of the recovery; a proxy
  /// whose epoch went stale while down resynchronizes via the NACK path.
  void restart_proxy(std::uint32_t index);
  void restart_storage(std::uint32_t index);
  void inject_false_suspicion(std::uint32_t proxy_index, Duration duration);

  /// RM-replica faults (no-ops unless rm_replicas > 1). Crashing the
  /// current leader deposes it; the next caught-up replica resumes any
  /// in-flight reconfiguration from the replicated log.
  void crash_rm(std::uint32_t index);
  void restart_rm(std::uint32_t index);
  /// Isolates RM replica `index` on both planes (kv network and the group's
  /// private replication network). Returns a handle for heal_rm_partition();
  /// 0 in single-RM mode (nothing isolated).
  std::uint64_t isolate_rm(std::uint32_t index);
  void heal_rm_partition(std::uint64_t handle);

  /// Partitions `nodes` away from every other node in the cluster (one-way
  /// when `symmetric` is false: the isolated side cannot reach out, but
  /// still receives). Returns an id for heal_partition().
  std::uint64_t isolate(const std::vector<sim::NodeId>& nodes,
                        bool symmetric = true);
  void heal_partition(std::uint64_t id);
  void heal_all_partitions();

  // -------------------------------------------------------------- accessors

  sim::Simulator& simulator() noexcept { return sim_; }
  /// Shared observability bundle: every component's instruments live in
  /// `obs().registry()`, trace events in `obs().tracer()`.
  obs::Observability& obs() noexcept { return obs_; }
  const obs::Observability& obs() const noexcept { return obs_; }
  /// Whole-cluster summary over [0, now()); deterministic for a
  /// deterministic run (same seed → byte-identical to_json()).
  obs::RunReport report() const;
  /// Summary restricted to the window [t0, t1) (workload totals and
  /// throughput only; cumulative fields cover the whole run).
  obs::RunReport report(Time t0, Time t1) const;
  Metrics& metrics() noexcept { return metrics_; }
  const Metrics& metrics() const noexcept { return metrics_; }
  ConsistencyChecker& checker() noexcept { return checker_; }
  const ConsistencyChecker& checker() const noexcept { return checker_; }
  /// The authoritative RM view: the single instance, or (replicated mode)
  /// the current leader replica's manager.
  reconfig::ReconfigManager& rm() noexcept {
    return rm_ ? *rm_ : rrm_->leader_rm();
  }
  const reconfig::ReconfigManager& rm() const noexcept {
    return rm_ ? *rm_ : rrm_->leader_rm();
  }
  /// Replicated control plane; null when rm_replicas <= 1.
  reconfig::ReplicatedRm* replicated_rm() noexcept { return rrm_.get(); }
  autonomic::AutonomicManager* am() noexcept { return am_.get(); }
  proxy::Proxy& proxy(std::uint32_t i) { return *proxies_.at(i); }
  kv::StorageNode& storage(std::uint32_t i) { return *storage_.at(i); }
  Client& client(std::uint32_t i) { return *clients_.at(i); }
  std::uint32_t num_clients() const {
    return static_cast<std::uint32_t>(clients_.size());
  }
  const kv::Placement& placement() const noexcept { return placement_; }
  sim::FailureDetector& failure_detector() noexcept { return fd_; }
  sim::HeartbeatWatcher* heartbeat_watcher() noexcept {
    return heartbeat_watcher_.get();
  }
  const ClusterConfig& config() const noexcept { return config_; }
  const sim::NetworkStats& network_stats() const { return net_.stats(); }
  sim::Network<kv::Message>& network() noexcept { return net_; }

 private:
  using Net = sim::Network<kv::Message>;

  /// The RM's wire inbox: routes heartbeats to the watcher, protocol
  /// messages to the ReconfigManager (see docs/PROTOCOL.toml).
  void handle_rm_message(const sim::NodeId& from, const kv::Message& msg);
  /// Replicated-mode inbox of RM replica `replica` (same routing, with
  /// leader-role gating inside ReplicatedRm).
  void handle_rm_replica_message(std::uint32_t replica,
                                 const sim::NodeId& from,
                                 const kv::Message& msg);

  ClusterConfig config_;
  // Declared before every component: they cache pointers into the registry,
  // so the bundle must outlive them (destroyed last).
  obs::Observability obs_;
  sim::Simulator sim_;
  Rng master_rng_;
  Net net_;
  sim::FailureDetector fd_;
  kv::Placement placement_;
  Metrics metrics_;
  ConsistencyChecker checker_;

  std::vector<std::unique_ptr<kv::StorageNode>> storage_;
  std::vector<std::unique_ptr<proxy::Proxy>> proxies_;
  std::vector<std::unique_ptr<Client>> clients_;
  std::unique_ptr<reconfig::ReconfigManager> rm_;   // single-RM mode
  std::unique_ptr<reconfig::ReplicatedRm> rrm_;     // rm_replicas > 1
  /// isolate_rm() handle -> (replica, kv-plane partition, smr-plane
  /// partition), so a heal reconnects both planes.
  struct RmPartition {
    std::uint32_t replica;
    std::uint64_t kv_partition;
    std::uint64_t smr_partition;
  };
  std::unordered_map<std::uint64_t, RmPartition> rm_partitions_;
  std::uint64_t rm_partition_seq_ = 0;
  std::unique_ptr<autonomic::AutonomicManager> am_;
  std::shared_ptr<oracle::Oracle> oracle_;
  std::unique_ptr<kv::Replicator> replicator_;
  std::unique_ptr<sim::HeartbeatWatcher> heartbeat_watcher_;

  bool clients_started_ = false;
};

}  // namespace qopt
