#include "core/client.hpp"
#include "core/consistency.hpp"
#include "core/metrics.hpp"
#include "obs/obs.hpp"
#include "obs/profiler.hpp"
#include "kv/wire.hpp"
#include "proxy/proxy.hpp"
#include "sim/ids.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"

namespace qopt {

Client::Client(sim::Simulator& sim, Net& net, sim::NodeId self,
               sim::NodeId proxy, Rng rng, Metrics* metrics,
               ConsistencyChecker* checker, Duration think_time,
               std::uint32_t num_proxies, Duration retry_timeout)
    : sim_(sim),
      net_(net),
      self_(self),
      proxy_(proxy),
      rng_(rng),
      metrics_(metrics),
      checker_(checker),
      think_time_(think_time),
      num_proxies_(num_proxies ? num_proxies : 1),
      retry_timeout_(retry_timeout) {}

void Client::start() {
  if (running_ || !source_) return;
  running_ = true;
  if (!op_in_flight_) issue_next();
}

void Client::issue_next() {
  if (!running_) return;
  pending_op_ = source_->next(rng_, sim_.now());
  issued_at_ = sim_.now();
  op_in_flight_ = true;
  send_pending();
}

void Client::send_pending() {
  pending_req_ = next_req_++;
  if (pending_op_.is_write) {
    // Unique opaque value token: (client id, sequence).
    const std::uint64_t value =
        (static_cast<std::uint64_t>(self_.index) << 40) | ++value_seq_;
    net_.send(self_, proxy_,
              kv::ClientWriteReq{pending_op_.oid, pending_req_, value,
                                 pending_op_.size_bytes});
  } else {
    if (checker_) read_snapshot_ = checker_->snapshot(pending_op_.oid);
    net_.send(self_, proxy_,
              kv::ClientReadReq{pending_op_.oid, pending_req_});
  }
  arm_retry();
}

void Client::arm_retry() {
  if (retry_timeout_ <= 0 || num_proxies_ < 2) return;
  const std::uint64_t req = pending_req_;
  sim_.after(retry_timeout_, [this, req] {
    QOPT_PROFILE_SCOPE(obs_, obs::ProfSubsystem::kClient);
    if (!op_in_flight_ || pending_req_ != req) return;
    // Unanswered: fail over to the next proxy and re-issue. A late reply to
    // the abandoned request id is ignored by the dispatch check.
    ++retries_;
    proxy_ = sim::proxy_id((proxy_.index + 1) % num_proxies_);
    send_pending();
  });
}

void Client::on_message(const sim::NodeId& /*from*/, const kv::Message& msg) {
  QOPT_PROFILE_SCOPE(obs_, obs::ProfSubsystem::kClient);
  if (const auto* read = std::get_if<kv::ClientReadResp>(&msg)) {
    handle_read_resp(*read);
  } else if (const auto* write = std::get_if<kv::ClientWriteResp>(&msg)) {
    handle_write_resp(*write);
  }
}

void Client::handle_read_resp(const kv::ClientReadResp& read) {
  // Request-id fencing doubles as at-least-once dedup: a duplicated reply,
  // or a late reply to a request abandoned by the proxy-failover retry,
  // carries a req_id != pending_req_ and is dropped here.
  if (!op_in_flight_ || read.req_id != pending_req_) return;
  if (checker_ && !read.failed) {
    checker_->read_completed(pending_op_.oid, issued_at_, sim_.now(),
                             read.found, read.version.ts, read_snapshot_);
    if (read.found) {
      checker_->observe(self_.index, pending_op_.oid, read.version.ts);
    }
  }
  complete_op(read.failed);
}

void Client::handle_write_resp(const kv::ClientWriteResp& write) {
  if (!op_in_flight_ || write.req_id != pending_req_) return;
  // A failed write is indeterminate (it may have reached some replicas);
  // the checker only lower-bounds the store by *completed* writes, so
  // skipping it is safe either way.
  if (checker_ && !write.failed) {
    checker_->write_completed(pending_op_.oid, write.ts);
    checker_->observe(self_.index, pending_op_.oid, write.ts);
  }
  complete_op(write.failed);
}

void Client::complete_op(bool failed) {
  op_in_flight_ = false;
  if (failed) {
    // Reported-failed after the proxy's retry budget: not a completion, so
    // neither the latency metrics nor the checker see it; the closed loop
    // moves on to the next operation.
    ++failures_;
    if (!running_) return;
    if (think_time_ > 0) {
      sim_.after(think_time_, [this] {
        QOPT_PROFILE_SCOPE(obs_, obs::ProfSubsystem::kClient);
        if (running_ && !op_in_flight_) issue_next();
      });
    } else {
      issue_next();
    }
    return;
  }
  ++ops_completed_;
  if (metrics_) {
    // Clients never learn the serving replica set; an empty quorum opts the
    // record out of the intersection audit.
    metrics_->record(proxy::OpRecord{pending_op_.oid, pending_op_.is_write,
                                     issued_at_, sim_.now(), proxy_.index, 0,
                                     {}});
  }
  if (!running_) return;
  if (think_time_ > 0) {
    sim_.after(think_time_, [this] {
      QOPT_PROFILE_SCOPE(obs_, obs::ProfSubsystem::kClient);
      if (running_ && !op_in_flight_) issue_next();
    });
  } else {
    issue_next();
  }
}

}  // namespace qopt
