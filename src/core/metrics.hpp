// Experiment metrics: end-to-end operation latencies and a bucketed
// throughput timeline (used for adaptation traces and all benchmark
// harnesses).
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "proxy/proxy.hpp"
#include "util/histogram.hpp"
#include "util/time.hpp"

namespace qopt {

class Metrics {
 public:
  struct Bucket {
    std::uint64_t ops = 0;
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
  };

  explicit Metrics(Duration bucket_width = milliseconds(100));

  void record(const proxy::OpRecord& record);
  void reset();

  std::uint64_t total_ops() const noexcept { return total_ops_; }
  std::uint64_t total_reads() const noexcept { return total_reads_; }
  std::uint64_t total_writes() const noexcept { return total_writes_; }

  const LatencyHistogram& read_latency() const noexcept { return read_lat_; }
  const LatencyHistogram& write_latency() const noexcept {
    return write_lat_;
  }

  /// Completed operations in [t0, t1), resolved to bucket granularity.
  std::uint64_t ops_between(Time t0, Time t1) const;
  std::uint64_t reads_between(Time t0, Time t1) const;
  std::uint64_t writes_between(Time t0, Time t1) const;

  /// Throughput (ops/s) over [t0, t1).
  double throughput(Time t0, Time t1) const;

  Duration bucket_width() const noexcept { return bucket_width_; }
  const std::vector<Bucket>& buckets() const noexcept { return buckets_; }

 private:
  template <typename F>
  std::uint64_t sum_between(Time t0, Time t1, F pick) const {
    if (t1 <= t0 || buckets_.empty()) return 0;
    const auto first =
        static_cast<std::size_t>(std::max<Time>(t0, 0) / bucket_width_);
    const auto last =
        static_cast<std::size_t>(std::max<Time>(t1 - 1, 0) / bucket_width_);
    std::uint64_t total = 0;
    for (std::size_t i = first; i <= last && i < buckets_.size(); ++i) {
      total += pick(buckets_[i]);
    }
    return total;
  }

  Duration bucket_width_;
  std::vector<Bucket> buckets_;
  std::uint64_t total_ops_ = 0;
  std::uint64_t total_reads_ = 0;
  std::uint64_t total_writes_ = 0;
  LatencyHistogram read_lat_;
  LatencyHistogram write_lat_;
};

}  // namespace qopt
