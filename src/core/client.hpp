// Closed-loop client driver: issues one operation at a time against its
// assigned proxy (the paper's client VMs run closed workloads with zero
// think time, each statically associated with one proxy), records
// end-to-end latency, and feeds the consistency checker.
#pragma once

#include <cstdint>
#include <memory>

#include "core/consistency.hpp"
#include "core/metrics.hpp"
#include "kv/types.hpp"
#include "obs/obs.hpp"
#include "kv/wire.hpp"
#include "sim/ids.hpp"
#include "sim/network.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"
#include "workload/workload.hpp"

namespace qopt {

class Client {
 public:
  using Net = sim::Network<kv::Message>;

  /// `retry_timeout` > 0 enables proxy failover: an operation unanswered
  /// for that long is re-issued (fresh request id) through the next proxy
  /// in round-robin order — how SDS clients survive a proxy outage.
  Client(sim::Simulator& sim, Net& net, sim::NodeId self, sim::NodeId proxy,
         Rng rng, Metrics* metrics, ConsistencyChecker* checker,
         Duration think_time, std::uint32_t num_proxies = 1,
         Duration retry_timeout = 0);

  void set_source(std::shared_ptr<workload::OperationSource> source) {
    source_ = std::move(source);
  }

  /// Optional: lets the engine profiler attribute client-driven events
  /// (response handling, think-time and retry timers). Null detaches.
  void bind_observability(obs::Observability* obs) noexcept { obs_ = obs; }

  /// Begins the closed loop (no-op without a workload source).
  void start();
  /// Stops after the in-flight operation completes.
  void stop() { running_ = false; }
  bool running() const noexcept { return running_; }

  void on_message(const sim::NodeId& from, const kv::Message& msg);

  std::uint64_t ops_completed() const noexcept { return ops_completed_; }
  std::uint64_t retries() const noexcept { return retries_; }
  /// Operations the proxy reported failed (retry budget exhausted). They do
  /// not feed the checker or the latency metrics; the closed loop continues.
  std::uint64_t failures() const noexcept { return failures_; }
  /// True while an operation is outstanding — after the run drains, a stuck
  /// client is one whose op neither completed nor failed.
  bool op_in_flight() const noexcept { return op_in_flight_; }
  sim::NodeId current_proxy() const noexcept { return proxy_; }

 private:
  void issue_next();
  void send_pending();
  void arm_retry();
  void handle_read_resp(const kv::ClientReadResp& read);
  void handle_write_resp(const kv::ClientWriteResp& write);
  /// Common completion tail: closes the loop and schedules the next op.
  void complete_op(bool failed);

  sim::Simulator& sim_;
  Net& net_;
  sim::NodeId self_;
  sim::NodeId proxy_;
  Rng rng_;
  Metrics* metrics_;
  ConsistencyChecker* checker_;
  Duration think_time_;
  std::uint32_t num_proxies_;
  Duration retry_timeout_;
  obs::Observability* obs_ = nullptr;
  std::uint64_t retries_ = 0;
  std::shared_ptr<workload::OperationSource> source_;

  bool running_ = false;
  bool op_in_flight_ = false;
  std::uint64_t next_req_ = 1;
  std::uint64_t value_seq_ = 0;
  std::uint64_t ops_completed_ = 0;
  std::uint64_t failures_ = 0;

  // In-flight operation context.
  std::uint64_t pending_req_ = 0;
  workload::Operation pending_op_;
  Time issued_at_ = 0;
  kv::Timestamp read_snapshot_;
  kv::Timestamp write_ts_pending_;  // filled on completion for the checker
};

}  // namespace qopt
