// Online checker for the Dynamic Quorum Consistency property (Section 5):
//
//   "The quorum used by a read operation intersects with the write quorum of
//    any concurrent write operation, and, if no concurrent write operation
//    exists, with the quorum used by the last completed write operation."
//
// Observable consequence checked here (regular-register semantics): a read
// must return a version at least as fresh as the freshest write that
// *completed* (client-visibly) before the read started. The simulator's
// global clock makes "before" well defined. Property tests run this checker
// across reconfigurations, crashes and false suspicions.
#pragma once

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "kv/quorum.hpp"
#include "kv/types.hpp"
#include "util/time.hpp"

namespace qopt {

class ConsistencyChecker {
 public:
  struct Violation {
    kv::ObjectId oid = 0;
    Time read_start = 0;
    Time read_end = 0;
    bool found = false;
    kv::Timestamp returned;
    kv::Timestamp expected_min;
  };

  /// Records a client-visible write completion.
  void write_completed(kv::ObjectId oid, const kv::Timestamp& ts) {
    ++writes_tracked_;
    auto [it, inserted] = freshest_.try_emplace(oid, ts);
    if (!inserted && ts > it->second) it->second = ts;
  }

  /// Snapshot taken when a read is issued: the freshest write known to have
  /// completed by then. Reads must return at least this version.
  kv::Timestamp snapshot(kv::ObjectId oid) const {
    auto it = freshest_.find(oid);
    return it == freshest_.end() ? kv::Timestamp{} : it->second;
  }

  /// Validates a completed read against the snapshot captured at its start.
  void read_completed(kv::ObjectId oid, Time start, Time end, bool found,
                      const kv::Timestamp& returned,
                      const kv::Timestamp& expected_min) {
    ++reads_checked_;
    const bool had_completed_write = expected_min != kv::Timestamp{};
    const bool ok =
        had_completed_write ? (found && returned >= expected_min) : true;
    if (!ok) {
      violations_.push_back(
          Violation{oid, start, end, found, returned, expected_min});
    }
  }

  const std::vector<Violation>& violations() const noexcept {
    return violations_;
  }
  std::uint64_t reads_checked() const noexcept { return reads_checked_; }
  std::uint64_t writes_tracked() const noexcept { return writes_tracked_; }
  bool clean() const noexcept {
    return violations_.empty() && quorum_violations_.empty();
  }

  // ---- session observation (measurement, not a violation) -------------
  //
  // Regular-register semantics permit "new-old inversion": a read
  // overlapping a write may return the new version while a later read
  // still returns the old one. Dynamic Quorum Consistency does not forbid
  // this, so it is *counted*, never flagged. The counter quantifies how
  // often clients actually observe time going backwards per object.

  /// Records what `client` observed for `oid`; returns true if this
  /// observation is older than one the same client saw before (an
  /// inversion).
  bool observe(std::uint32_t client, kv::ObjectId oid,
               const kv::Timestamp& ts) {
    auto [it, inserted] = last_observed_.try_emplace({client, oid}, ts);
    if (inserted) return false;
    if (ts < it->second) {
      ++inversions_;
      return true;
    }
    it->second = ts;
    return false;
  }

  std::uint64_t new_old_inversions() const noexcept { return inversions_; }

  // ---- quorum intersection audit --------------------------------------
  //
  // Intersection-aware validation for generalized strategies: the replica
  // sets that actually served each operation are reported here, and every
  // read quorum must share at least one node with the quorum of the last
  // completed write of the same object *within the same configuration
  // generation*. This catches a broken strategy (or a broken sampler)
  // structurally, even when the freshness check above happens to pass
  // because the intersection-free read raced a replica that coincidentally
  // had the newest version.
  //
  // Across generations static intersection is the wrong invariant: after a
  // reconfiguration, r_new + w_old may legitimately be <= n, and safety is
  // provided by cfno-tagged versions, read_q_history and read repair — all
  // validated by the freshness check — so cross-cfno pairs are skipped.

  struct QuorumViolation {
    kv::ObjectId oid = 0;
    std::uint64_t cfno = 0;
    Time at = 0;
    std::vector<std::uint32_t> read_quorum;
    std::vector<std::uint32_t> write_quorum;
  };

  /// Records the replica set that served a completed operation under
  /// configuration `cfno`. `replicas` must be sorted (proxies report the
  /// counted-reply set, which is). Repair-phase reads may legitimately use
  /// historical quorums larger than the installed strategy, so only
  /// emptiness of the same-generation intersection is flagged — never set
  /// shapes. `cfno == 0` (unknown generation) opts the record out.
  void quorum_used(kv::ObjectId oid, bool is_write, std::uint64_t cfno,
                   Time at, const std::vector<std::uint32_t>& replicas) {
    if (cfno == 0) return;
    if (is_write) {
      last_write_quorum_[oid] = {cfno, replicas};
      return;
    }
    auto it = last_write_quorum_.find(oid);
    if (it == last_write_quorum_.end()) return;  // nothing to intersect yet
    if (it->second.first != cfno) return;        // cross-generation pair
    if (!kv::sets_intersect(replicas, it->second.second)) {
      quorum_violations_.push_back(
          QuorumViolation{oid, cfno, at, replicas, it->second.second});
    }
  }

  const std::vector<QuorumViolation>& quorum_violations() const noexcept {
    return quorum_violations_;
  }

 private:
  // Ordered maps so any future export of the checker's state (diagnostic
  // dumps of per-object freshness, per-client observations) enumerates
  // deterministically; the checker is off the simulator's hot path.
  std::map<kv::ObjectId, kv::Timestamp> freshest_;
  std::map<std::pair<std::uint32_t, kv::ObjectId>, kv::Timestamp>
      last_observed_;
  std::map<kv::ObjectId,
           std::pair<std::uint64_t, std::vector<std::uint32_t>>>
      last_write_quorum_;
  std::vector<QuorumViolation> quorum_violations_;
  std::vector<Violation> violations_;
  std::uint64_t reads_checked_ = 0;
  std::uint64_t writes_tracked_ = 0;
  std::uint64_t inversions_ = 0;
};

}  // namespace qopt
