// Online checker for the Dynamic Quorum Consistency property (Section 5):
//
//   "The quorum used by a read operation intersects with the write quorum of
//    any concurrent write operation, and, if no concurrent write operation
//    exists, with the quorum used by the last completed write operation."
//
// Observable consequence checked here (regular-register semantics): a read
// must return a version at least as fresh as the freshest write that
// *completed* (client-visibly) before the read started. The simulator's
// global clock makes "before" well defined. Property tests run this checker
// across reconfigurations, crashes and false suspicions.
#pragma once

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "kv/types.hpp"
#include "util/time.hpp"

namespace qopt {

class ConsistencyChecker {
 public:
  struct Violation {
    kv::ObjectId oid = 0;
    Time read_start = 0;
    Time read_end = 0;
    bool found = false;
    kv::Timestamp returned;
    kv::Timestamp expected_min;
  };

  /// Records a client-visible write completion.
  void write_completed(kv::ObjectId oid, const kv::Timestamp& ts) {
    ++writes_tracked_;
    auto [it, inserted] = freshest_.try_emplace(oid, ts);
    if (!inserted && ts > it->second) it->second = ts;
  }

  /// Snapshot taken when a read is issued: the freshest write known to have
  /// completed by then. Reads must return at least this version.
  kv::Timestamp snapshot(kv::ObjectId oid) const {
    auto it = freshest_.find(oid);
    return it == freshest_.end() ? kv::Timestamp{} : it->second;
  }

  /// Validates a completed read against the snapshot captured at its start.
  void read_completed(kv::ObjectId oid, Time start, Time end, bool found,
                      const kv::Timestamp& returned,
                      const kv::Timestamp& expected_min) {
    ++reads_checked_;
    const bool had_completed_write = expected_min != kv::Timestamp{};
    const bool ok =
        had_completed_write ? (found && returned >= expected_min) : true;
    if (!ok) {
      violations_.push_back(
          Violation{oid, start, end, found, returned, expected_min});
    }
  }

  const std::vector<Violation>& violations() const noexcept {
    return violations_;
  }
  std::uint64_t reads_checked() const noexcept { return reads_checked_; }
  std::uint64_t writes_tracked() const noexcept { return writes_tracked_; }
  bool clean() const noexcept { return violations_.empty(); }

  // ---- session observation (measurement, not a violation) -------------
  //
  // Regular-register semantics permit "new-old inversion": a read
  // overlapping a write may return the new version while a later read
  // still returns the old one. Dynamic Quorum Consistency does not forbid
  // this, so it is *counted*, never flagged. The counter quantifies how
  // often clients actually observe time going backwards per object.

  /// Records what `client` observed for `oid`; returns true if this
  /// observation is older than one the same client saw before (an
  /// inversion).
  bool observe(std::uint32_t client, kv::ObjectId oid,
               const kv::Timestamp& ts) {
    auto [it, inserted] = last_observed_.try_emplace({client, oid}, ts);
    if (inserted) return false;
    if (ts < it->second) {
      ++inversions_;
      return true;
    }
    it->second = ts;
    return false;
  }

  std::uint64_t new_old_inversions() const noexcept { return inversions_; }

 private:
  // Ordered maps so any future export of the checker's state (diagnostic
  // dumps of per-object freshness, per-client observations) enumerates
  // deterministically; the checker is off the simulator's hot path.
  std::map<kv::ObjectId, kv::Timestamp> freshest_;
  std::map<std::pair<std::uint32_t, kv::ObjectId>, kv::Timestamp>
      last_observed_;
  std::vector<Violation> violations_;
  std::uint64_t reads_checked_ = 0;
  std::uint64_t writes_tracked_ = 0;
  std::uint64_t inversions_ = 0;
};

}  // namespace qopt
